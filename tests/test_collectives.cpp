// Tests for the BDM collectives (reduce_to_root, allreduce, exscan,
// all_to_all): results, cost ledgers, and edge cases.
#include <gtest/gtest.h>

#include <numeric>

#include "histcc/bdm/collectives.hpp"

namespace sc = histcc::splitc;
namespace bdm = histcc::bdm;

namespace {
constexpr auto plus_op = [](std::uint32_t a, std::uint32_t b) { return a + b; };
constexpr auto max_op = [](std::uint32_t a, std::uint32_t b) {
  return a > b ? a : b;
};
}  // namespace

class ReduceTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ReduceTest, SumsElementwiseOnRoot) {
  const std::uint32_t p = GetParam();
  const std::size_t count = 16;
  sc::Machine m(p);
  sc::Spread<std::uint32_t> src(m, count), dst(m, count);
  for (std::uint32_t rank = 0; rank < p; ++rank) {
    auto b = src.block(rank);
    for (std::size_t e = 0; e < count; ++e) {
      b[e] = rank + static_cast<std::uint32_t>(e);
    }
  }
  m.run([&](sc::Proc& self) {
    bdm::reduce_to_root(self, dst, src, count, plus_op);
  });
  const std::uint32_t rank_sum = p * (p - 1) / 2;
  auto out = dst.block(0);
  for (std::size_t e = 0; e < count; ++e) {
    EXPECT_EQ(out[e], rank_sum + p * e);
  }
}

INSTANTIATE_TEST_SUITE_P(Procs, ReduceTest, ::testing::Values(1, 2, 8, 32));

TEST(ReduceTest, NonZeroRootAndMaxOp) {
  const std::uint32_t p = 8;
  sc::Machine m(p);
  sc::Spread<std::uint32_t> src(m, 4), dst(m, 4);
  for (std::uint32_t rank = 0; rank < p; ++rank) {
    auto b = src.block(rank);
    for (std::uint32_t e = 0; e < 4; ++e) b[e] = (rank * 7 + e * 3) % 23;
  }
  m.run([&](sc::Proc& self) {
    bdm::reduce_to_root(self, dst, src, 4, max_op, 5);
  });
  auto out = dst.block(5);
  for (std::size_t e = 0; e < 4; ++e) {
    std::uint32_t expected = 0;
    for (std::uint32_t rank = 0; rank < p; ++rank) {
      expected = std::max(expected, (rank * 7 + static_cast<std::uint32_t>(e) * 3) % 23);
    }
    EXPECT_EQ(out[e], expected);
  }
}

TEST(ReduceTest, RootMovesAllRemoteWordsInOneBatch) {
  const std::uint32_t p = 8;
  const std::size_t count = 32;
  sc::Machine m(p);
  sc::Spread<std::uint32_t> src(m, count), dst(m, count);
  m.run([&](sc::Proc& self) {
    bdm::reduce_to_root(self, dst, src, count, plus_op);
  });
  EXPECT_EQ(m.stats(0).words, (p - 1) * count);
  EXPECT_EQ(m.stats(0).batches, 1u);
  for (std::uint32_t rank = 1; rank < p; ++rank) {
    EXPECT_EQ(m.stats(rank).words, 0u);
  }
}

class AllreduceTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AllreduceTest, EveryoneHoldsTheSum) {
  const std::uint32_t p = GetParam();
  const std::size_t count = 8 * p;
  sc::Machine m(p);
  sc::Spread<std::uint32_t> src(m, count), dst(m, count),
      scratch(m, count / p);
  for (std::uint32_t rank = 0; rank < p; ++rank) {
    auto b = src.block(rank);
    for (std::size_t e = 0; e < count; ++e) {
      b[e] = rank * 1000 + static_cast<std::uint32_t>(e);
    }
  }
  m.run([&](sc::Proc& self) {
    bdm::allreduce(self, dst, src, scratch, count, plus_op);
  });
  const std::uint32_t rank_sum = 1000 * p * (p - 1) / 2;
  for (std::uint32_t rank = 0; rank < p; ++rank) {
    auto out = dst.block(rank);
    for (std::size_t e = 0; e < count; ++e) {
      ASSERT_EQ(out[e], rank_sum + p * e) << "rank " << rank << " e " << e;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Procs, AllreduceTest,
                         ::testing::Values(1, 2, 4, 16, 32));

TEST(AllreduceTest, CommVolumeMatchesTwoTransposes) {
  const std::uint32_t p = 8;
  const std::size_t count = 64;
  sc::Machine m(p);
  sc::Spread<std::uint32_t> src(m, count), dst(m, count),
      scratch(m, count / p);
  m.run([&](sc::Proc& self) {
    bdm::allreduce(self, dst, src, scratch, count, plus_op);
  });
  for (std::uint32_t rank = 0; rank < p; ++rank) {
    EXPECT_EQ(m.stats(rank).words, 2 * (count - count / p));
    EXPECT_EQ(m.stats(rank).batches, 2u);
  }
}

TEST(ExscanTest, ExclusivePrefixSums) {
  const std::uint32_t p = 16;
  sc::Machine m(p);
  sc::Spread<std::uint32_t> slots(m, 1);
  std::vector<std::uint32_t> results(p);
  m.run([&](sc::Proc& self) {
    results[self.rank()] =
        bdm::exscan(self, slots, self.rank() + 1, plus_op);
  });
  // Value of rank r is r+1; exclusive prefix is sum 1..r = r(r+1)/2.
  for (std::uint32_t rank = 0; rank < p; ++rank) {
    EXPECT_EQ(results[rank], rank * (rank + 1) / 2);
  }
}

TEST(ExscanTest, RankZeroGetsIdentity) {
  sc::Machine m(4);
  sc::Spread<std::uint32_t> slots(m, 1);
  std::vector<std::uint32_t> results(4, 99);
  m.run([&](sc::Proc& self) {
    results[self.rank()] = bdm::exscan(self, slots, 7u, plus_op);
  });
  EXPECT_EQ(results[0], 0u);
  EXPECT_EQ(results[3], 21u);
}

TEST(AllToAllTest, SlicesArriveTransposed) {
  const std::uint32_t p = 8;
  const std::size_t slice = 4;
  sc::Machine m(p);
  sc::Spread<std::uint32_t> src(m, p * slice), dst(m, p * slice);
  for (std::uint32_t rank = 0; rank < p; ++rank) {
    auto b = src.block(rank);
    for (std::uint32_t j = 0; j < p; ++j) {
      for (std::size_t e = 0; e < slice; ++e) {
        b[j * slice + e] = rank * 10000 + j * 100 + static_cast<std::uint32_t>(e);
      }
    }
  }
  m.run([&](sc::Proc& self) { bdm::all_to_all(self, dst, src, slice); });
  for (std::uint32_t rank = 0; rank < p; ++rank) {
    auto b = dst.block(rank);
    for (std::uint32_t from = 0; from < p; ++from) {
      for (std::uint32_t e = 0; e < slice; ++e) {
        // dst[rank] slice `from` = src[from] slice `rank`.
        EXPECT_EQ(b[from * slice + e], from * 10000 + rank * 100 + e);
      }
    }
  }
}
