// Tests of the barrier-epoch race ledger (race_ledger.hpp): a deliberately
// protocol-violating program must be detected with a full diagnostic —
// array name, element index, both ranks, and epoch — while the repo's real
// algorithms run clean at several machine sizes.
//
// The racy programs sequence their conflicting accesses with an atomic
// flag, so the two accesses are *physically* ordered on every run: there
// is no C++ data race (ThreadSanitizer stays silent) and no UB.  They
// still violate the publication protocol — same element, different ranks,
// no barrier in between — which is exactly the property the ledger checks,
// and why its detection is deterministic where TSan's is scheduling luck.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "histcc/cc/parallel_cc.hpp"
#include "histcc/hist/histogram.hpp"
#include "histcc/image/generators.hpp"
#include "histcc/splitc/machine.hpp"
#include "histcc/splitc/race_ledger.hpp"
#include "histcc/splitc/spread.hpp"

namespace cc = histcc::cc;
namespace im = histcc::img;
namespace sc = histcc::splitc;

namespace {

/// Spin until `flag` reaches `want`; yields so single-CPU hosts make
/// progress.
void await(const std::atomic<int>& flag, int want) {
  while (flag.load(std::memory_order_acquire) != want) {
    std::this_thread::yield();
  }
}

}  // namespace

TEST(RaceLedger, CompileFlagIsReportedConsistently) {
  sc::Machine machine(2);
  if (sc::Machine::race_ledger_compiled()) {
    EXPECT_NE(machine.race_ledger_registry(), nullptr);
    EXPECT_NE(machine.race_ledger(), nullptr);
  } else {
    EXPECT_EQ(machine.race_ledger_registry(), nullptr);
    EXPECT_EQ(machine.race_ledger(), nullptr);
  }
}

TEST(RaceLedger, EpochStartsAtOneAndCountsBarriers) {
  sc::Machine machine(4);
  machine.run([](sc::Proc& self) {
    EXPECT_EQ(self.epoch(), 1u);
    self.barrier();
    EXPECT_EQ(self.epoch(), 2u);
    self.barrier();
    self.barrier();
    EXPECT_EQ(self.epoch(), 4u);
  });
}

TEST(RaceLedger, WriteWriteConflictIsDetectedWithFullDiagnostic) {
  if (!sc::Machine::race_ledger_compiled()) {
    GTEST_SKIP() << "built without HISTCC_RACE_LEDGER";
  }
  sc::Machine machine(4);
  machine.set_race_policy(sc::RacePolicy::kRecord);
  sc::Spread<std::uint32_t> data(machine, 8, "racy_buf");

  // Ranks 0 and 1 both put to element 5 of rank 2's block in epoch 1,
  // physically ordered by the flag: a protocol race, not a C++ one.
  std::atomic<int> turn{0};
  machine.run([&](sc::Proc& self) {
    if (self.rank() == 0) {
      data.put(self, 2, 5, 111u);
      turn.store(1, std::memory_order_release);
    } else if (self.rank() == 1) {
      await(turn, 1);
      data.put(self, 2, 5, 222u);
    }
    self.barrier();
  });

  auto* ledger = machine.race_ledger_registry();
  ASSERT_NE(ledger, nullptr);
  ASSERT_GE(ledger->conflict_count(), 1u);
  const auto diags = ledger->diagnostics();
  ASSERT_FALSE(diags.empty());
  const auto& d = diags.front();
  EXPECT_EQ(d.array, "racy_buf");
  EXPECT_EQ(d.owner, 2u);
  EXPECT_EQ(d.offset, 5u);
  EXPECT_EQ(d.epoch, 1u);
  EXPECT_EQ(d.first_rank, 0u);
  EXPECT_EQ(d.second_rank, 1u);
  EXPECT_EQ(d.first_kind, sc::RaceAccess::kWrite);
  EXPECT_EQ(d.second_kind, sc::RaceAccess::kWrite);

  // The rendered message names everything a user needs to find the bug.
  const std::string msg = d.to_string();
  EXPECT_NE(msg.find("racy_buf"), std::string::npos) << msg;
  EXPECT_NE(msg.find("element 5"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("epoch 1"), std::string::npos) << msg;
}

TEST(RaceLedger, ReadOfUnpublishedWriteIsDetected) {
  if (!sc::Machine::race_ledger_compiled()) {
    GTEST_SKIP() << "built without HISTCC_RACE_LEDGER";
  }
  sc::Machine machine(2);
  machine.set_race_policy(sc::RacePolicy::kRecord);
  sc::Spread<std::uint32_t> data(machine, 4, "unpublished");

  // Rank 0 writes its own block; rank 1 reads it in the same epoch —
  // the missing-barrier bug the publication discipline forbids.
  std::atomic<int> turn{0};
  machine.run([&](sc::Proc& self) {
    if (self.rank() == 0) {
      data.local(self)[0] = 7;
      data.note_local_write(self, 0, 1);
      turn.store(1, std::memory_order_release);
    } else {
      await(turn, 1);
      (void)data.get(self, 0, 0);
    }
    self.barrier();
  });

  auto* ledger = machine.race_ledger_registry();
  ASSERT_NE(ledger, nullptr);
  ASSERT_GE(ledger->conflict_count(), 1u);
  const auto diags = ledger->diagnostics();
  ASSERT_FALSE(diags.empty());
  const auto& d = diags.front();
  EXPECT_EQ(d.array, "unpublished");
  EXPECT_EQ(d.owner, 0u);
  EXPECT_EQ(d.offset, 0u);
  EXPECT_EQ(d.first_kind, sc::RaceAccess::kWrite);
  EXPECT_EQ(d.second_kind, sc::RaceAccess::kRead);
}

TEST(RaceLedger, ThrowPolicyRaisesViolationFromRun) {
  if (!sc::Machine::race_ledger_compiled()) {
    GTEST_SKIP() << "built without HISTCC_RACE_LEDGER";
  }
  sc::Machine machine(2);
  sc::Spread<std::uint32_t> data(machine, 2, "throwing");
  std::atomic<int> turn{0};
  EXPECT_THROW(machine.run([&](sc::Proc& self) {
    if (self.rank() == 0) {
      data.put(self, 1, 0, 1u);
      turn.store(1, std::memory_order_release);
    } else {
      await(turn, 1);
      data.put(self, 1, 0, 2u);
    }
    self.barrier();
  }),
               sc::RaceLedgerViolation);
}

TEST(RaceLedger, BarrierSeparatedAccessesAreClean) {
  if (!sc::Machine::race_ledger_compiled()) {
    GTEST_SKIP() << "built without HISTCC_RACE_LEDGER";
  }
  sc::Machine machine(4);
  sc::Spread<std::uint32_t> data(machine, 4, "published");
  // The correct version of the protocol: write, barrier, then read.
  machine.run([&](sc::Proc& self) {
    data.local(self)[0] = self.rank();
    data.note_local_write(self, 0, 1);
    self.barrier();
    const std::uint32_t next = (self.rank() + 1) % machine.nprocs();
    EXPECT_EQ(data.get(self, next, 0), next);
    self.sync();
    self.barrier();
  });
  auto* ledger = machine.race_ledger_registry();
  ASSERT_NE(ledger, nullptr);
  EXPECT_EQ(ledger->conflict_count(), 0u);
  EXPECT_GT(ledger->check_count(), 0u);
}

TEST(RaceLedger, LedgerStateResetsBetweenRuns) {
  if (!sc::Machine::race_ledger_compiled()) {
    GTEST_SKIP() << "built without HISTCC_RACE_LEDGER";
  }
  sc::Machine machine(2);
  machine.set_race_policy(sc::RacePolicy::kRecord);
  sc::Spread<std::uint32_t> data(machine, 2, "reset_me");
  std::atomic<int> turn{0};
  machine.run([&](sc::Proc& self) {
    if (self.rank() == 0) {
      data.put(self, 1, 0, 1u);
      turn.store(1, std::memory_order_release);
    } else {
      await(turn, 1);
      data.put(self, 1, 0, 2u);
    }
    self.barrier();
  });
  ASSERT_GE(machine.race_ledger_registry()->conflict_count(), 1u);

  // A clean follow-up program must start from a blank ledger: neither the
  // old diagnostics nor the old shadow cells may leak into this run.
  machine.run([&](sc::Proc& self) {
    data.local(self)[0] = 9;
    data.note_local_write(self, 0, 1);
    self.barrier();
  });
  EXPECT_EQ(machine.race_ledger_registry()->conflict_count(), 0u);
}

TEST(RaceLedger, RuntimeDisableSwitchesCheckingOff) {
  if (!sc::Machine::race_ledger_compiled()) {
    GTEST_SKIP() << "built without HISTCC_RACE_LEDGER";
  }
  sc::Machine machine(2);
  machine.set_race_ledger_enabled(false);
  sc::Spread<std::uint32_t> data(machine, 2, "disabled");
  std::atomic<int> turn{0};
  machine.run([&](sc::Proc& self) {
    if (self.rank() == 0) {
      data.put(self, 1, 0, 1u);
      turn.store(1, std::memory_order_release);
    } else {
      await(turn, 1);
      data.put(self, 1, 0, 2u);
    }
    self.barrier();
  });
  EXPECT_EQ(machine.race_ledger_registry()->conflict_count(), 0u);
}

// The acceptance gate: the paper's algorithms, which follow the
// publication discipline, must produce zero conflicts — no false
// positives — at several machine sizes, under the throwing policy.
class RaceLedgerCleanAlgorithms : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RaceLedgerCleanAlgorithms, ParallelCcRunsClean) {
  const std::uint32_t p = GetParam();
  sc::Machine machine(p);  // RacePolicy::kThrow is the default
  const auto image = im::make_test_pattern(im::TestPattern::kDualSpiral, 64);
  EXPECT_NO_THROW({
    (void)cc::connected_components_parallel(machine, image, cc::CcOptions{});
  });
  if (sc::Machine::race_ledger_compiled()) {
    EXPECT_EQ(machine.race_ledger_registry()->conflict_count(), 0u);
    EXPECT_GT(machine.race_ledger_registry()->check_count(), 0u);
  }
}

TEST_P(RaceLedgerCleanAlgorithms, HistogramRunsClean) {
  const std::uint32_t p = GetParam();
  sc::Machine machine(p);
  const auto image = im::make_test_pattern(im::TestPattern::kCircles, 64);
  EXPECT_NO_THROW({ (void)histcc::hist::histogram_parallel(machine, image, 64); });
  if (sc::Machine::race_ledger_compiled()) {
    EXPECT_EQ(machine.race_ledger_registry()->conflict_count(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, RaceLedgerCleanAlgorithms,
                         ::testing::Values(1u, 4u, 16u));
