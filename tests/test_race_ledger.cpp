// Tests of the barrier-epoch race ledger (race_ledger.hpp): a deliberately
// protocol-violating program must be detected with a full diagnostic —
// array name, element index, both ranks, and epoch — while the repo's real
// algorithms run clean at several machine sizes.
//
// The racy programs sequence their conflicting accesses with an atomic
// flag, so the two accesses are *physically* ordered on every run: there
// is no C++ data race (ThreadSanitizer stays silent) and no UB.  They
// still violate the publication protocol — same element, different ranks,
// no barrier in between — which is exactly the property the ledger checks,
// and why its detection is deterministic where TSan's is scheduling luck.
//
// Every deliberate-race test runs under both shadow stores (the sharded
// default and the PR-1 mutex oracle) and expects identical diagnostics:
// the sharded store is a performance representation, not a new checker.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "histcc/cc/parallel_cc.hpp"
#include "histcc/hist/histogram.hpp"
#include "histcc/image/generators.hpp"
#include "histcc/splitc/machine.hpp"
#include "histcc/splitc/race_ledger.hpp"
#include "histcc/splitc/spread.hpp"

namespace cc = histcc::cc;
namespace im = histcc::img;
namespace sc = histcc::splitc;

namespace {

/// Spin until `flag` reaches `want`; yields so single-CPU hosts make
/// progress.
void await(const std::atomic<int>& flag, int want) {
  while (flag.load(std::memory_order_acquire) != want) {
    std::this_thread::yield();
  }
}

/// Order-insensitive fingerprint of a diagnostic list.  The two shadow
/// stores interleave their per-element checks differently, so equality is
/// up to ordering — exactly the acceptance criterion.
using DiagKey = std::tuple<std::string, std::uint32_t, std::size_t,
                           std::uint64_t, std::uint32_t, int, std::uint32_t,
                           int, int>;

std::multiset<DiagKey> diag_keys(const std::vector<sc::RaceDiagnostic>& ds) {
  std::multiset<DiagKey> keys;
  for (const auto& d : ds) {
    keys.insert({d.array, d.owner, d.offset, d.epoch, d.first_rank,
                 static_cast<int>(d.first_kind), d.second_rank,
                 static_cast<int>(d.second_kind),
                 static_cast<int>(d.target)});
  }
  return keys;
}

std::string mode_name(const ::testing::TestParamInfo<sc::LedgerMode>& info) {
  return info.param == sc::LedgerMode::kSharded ? "Sharded" : "Mutex";
}

}  // namespace

TEST(RaceLedger, CompileFlagIsReportedConsistently) {
  sc::Machine machine(2);
  if (sc::Machine::race_ledger_compiled()) {
    EXPECT_NE(machine.race_ledger_registry(), nullptr);
    EXPECT_NE(machine.race_ledger(), nullptr);
  } else {
    EXPECT_EQ(machine.race_ledger_registry(), nullptr);
    EXPECT_EQ(machine.race_ledger(), nullptr);
  }
}

TEST(RaceLedger, EpochStartsAtOneAndCountsBarriers) {
  sc::Machine machine(4);
  machine.run([](sc::Proc& self) {
    EXPECT_EQ(self.epoch(), 1u);
    self.barrier();
    EXPECT_EQ(self.epoch(), 2u);
    self.barrier();
    self.barrier();
    EXPECT_EQ(self.epoch(), 4u);
  });
}

// ---------------------------------------------------------------------------
// Deliberate races, parameterized over the shadow-store implementation.

class RaceLedgerModes : public ::testing::TestWithParam<sc::LedgerMode> {
 protected:
  void SetUp() override {
    if (!sc::Machine::race_ledger_compiled()) {
      GTEST_SKIP() << "built without HISTCC_RACE_LEDGER";
    }
  }
};

TEST_P(RaceLedgerModes, WriteWriteConflictIsDetectedWithFullDiagnostic) {
  sc::Machine machine(4);
  machine.set_race_policy(sc::RacePolicy::kRecord);
  machine.set_race_ledger_mode(GetParam());
  sc::Spread<std::uint32_t> data(machine, 8, "racy_buf");

  // Ranks 0 and 1 both put to element 5 of rank 2's block in epoch 1,
  // physically ordered by the flag: a protocol race, not a C++ one.
  std::atomic<int> turn{0};
  machine.run([&](sc::Proc& self) {
    if (self.rank() == 0) {
      data.put(self, 2, 5, 111u);
      turn.store(1, std::memory_order_release);
    } else if (self.rank() == 1) {
      await(turn, 1);
      data.put(self, 2, 5, 222u);
    }
    self.barrier();
  });

  auto* ledger = machine.race_ledger_registry();
  ASSERT_NE(ledger, nullptr);
  ASSERT_GE(ledger->conflict_count(), 1u);
  const auto diags = ledger->diagnostics();
  ASSERT_FALSE(diags.empty());
  const auto& d = diags.front();
  EXPECT_EQ(d.array, "racy_buf");
  EXPECT_EQ(d.owner, 2u);
  EXPECT_EQ(d.offset, 5u);
  EXPECT_EQ(d.epoch, 1u);
  EXPECT_EQ(d.first_rank, 0u);
  EXPECT_EQ(d.second_rank, 1u);
  EXPECT_EQ(d.first_kind, sc::RaceAccess::kWrite);
  EXPECT_EQ(d.second_kind, sc::RaceAccess::kWrite);
  EXPECT_EQ(d.target, sc::RaceTarget::kPayload);

  // The rendered message names everything a user needs to find the bug.
  const std::string msg = d.to_string();
  EXPECT_NE(msg.find("racy_buf"), std::string::npos) << msg;
  EXPECT_NE(msg.find("element 5"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("epoch 1"), std::string::npos) << msg;
}

TEST_P(RaceLedgerModes, ReadOfUnpublishedWriteIsDetected) {
  sc::Machine machine(2);
  machine.set_race_policy(sc::RacePolicy::kRecord);
  machine.set_race_ledger_mode(GetParam());
  sc::Spread<std::uint32_t> data(machine, 4, "unpublished");

  // Rank 0 writes its own block; rank 1 reads it in the same epoch —
  // the missing-barrier bug the publication discipline forbids.
  std::atomic<int> turn{0};
  machine.run([&](sc::Proc& self) {
    if (self.rank() == 0) {
      data.local(self)[0] = 7;
      data.note_local_write(self, 0, 1);
      turn.store(1, std::memory_order_release);
    } else {
      await(turn, 1);
      (void)data.get(self, 0, 0);
    }
    self.barrier();
  });

  auto* ledger = machine.race_ledger_registry();
  ASSERT_NE(ledger, nullptr);
  ASSERT_GE(ledger->conflict_count(), 1u);
  const auto diags = ledger->diagnostics();
  ASSERT_FALSE(diags.empty());
  const auto& d = diags.front();
  EXPECT_EQ(d.array, "unpublished");
  EXPECT_EQ(d.owner, 0u);
  EXPECT_EQ(d.offset, 0u);
  EXPECT_EQ(d.first_kind, sc::RaceAccess::kWrite);
  EXPECT_EQ(d.second_kind, sc::RaceAccess::kRead);
}

TEST_P(RaceLedgerModes, ThrowPolicyRaisesViolationFromRun) {
  sc::Machine machine(2);
  machine.set_race_ledger_mode(GetParam());
  sc::Spread<std::uint32_t> data(machine, 2, "throwing");
  std::atomic<int> turn{0};
  EXPECT_THROW(machine.run([&](sc::Proc& self) {
    if (self.rank() == 0) {
      data.put(self, 1, 0, 1u);
      turn.store(1, std::memory_order_release);
    } else {
      await(turn, 1);
      data.put(self, 1, 0, 2u);
    }
    self.barrier();
  }),
               sc::RaceLedgerViolation);
}

// A size published on a different barrier than its probe: the owner
// resizes (note_local_write republishes the size) and a peer calls
// size_of in the same epoch.  The payload is never read, so only the new
// size pseudo-cell can catch this.
TEST_P(RaceLedgerModes, SizeProbeDesyncIsDetected) {
  sc::Machine machine(2);
  machine.set_race_policy(sc::RacePolicy::kRecord);
  machine.set_race_ledger_mode(GetParam());
  sc::SpreadVec<std::uint32_t> chg(machine, "chg");

  std::atomic<int> turn{0};
  machine.run([&](sc::Proc& self) {
    if (self.rank() == 0) {
      chg.local(self).assign(5, 42u);
      chg.note_local_write(self);
      turn.store(1, std::memory_order_release);
    } else {
      await(turn, 1);
      (void)chg.size_of(self, 0);  // probes the un-barriered size
    }
    self.barrier();
  });

  auto* ledger = machine.race_ledger_registry();
  ASSERT_NE(ledger, nullptr);
  ASSERT_EQ(ledger->conflict_count(), 1u);
  const auto diags = ledger->diagnostics();
  ASSERT_FALSE(diags.empty());
  const auto& d = diags.front();
  EXPECT_EQ(d.array, "chg");
  EXPECT_EQ(d.owner, 0u);
  EXPECT_EQ(d.epoch, 1u);
  EXPECT_EQ(d.target, sc::RaceTarget::kSize);
  EXPECT_EQ(d.first_rank, 0u);
  EXPECT_EQ(d.first_kind, sc::RaceAccess::kWrite);
  EXPECT_EQ(d.second_rank, 1u);
  EXPECT_EQ(d.second_kind, sc::RaceAccess::kRead);

  const std::string msg = d.to_string();
  EXPECT_NE(msg.find("size of rank 0's block"), std::string::npos) << msg;
  EXPECT_NE(msg.find("epoch 1"), std::string::npos) << msg;
}

TEST_P(RaceLedgerModes, SizePublishedAcrossBarrierIsClean) {
  sc::Machine machine(2);
  machine.set_race_ledger_mode(GetParam());
  sc::SpreadVec<std::uint32_t> chg(machine, "chg_clean");
  machine.run([&](sc::Proc& self) {
    chg.local(self).assign(3 + self.rank(), self.rank());
    chg.note_local_write(self);
    self.barrier();  // publishes payload *and* size
    const std::uint32_t peer = 1 - self.rank();
    EXPECT_EQ(chg.size_of(self, peer), 3 + peer);
    self.sync();
    self.barrier();
  });
  EXPECT_EQ(machine.race_ledger_registry()->conflict_count(), 0u);
}

// Host-side block() taken while the SPMD program runs bypasses the Proc
// access paths; the ledger records it under the host pseudo-rank at the
// machine's current barrier generation and diagnoses the conflict.
TEST_P(RaceLedgerModes, HostBlockProbeDuringRunIsDetected) {
  sc::Machine machine(2);
  machine.set_race_policy(sc::RacePolicy::kRecord);
  machine.set_race_ledger_mode(GetParam());
  sc::Spread<std::uint32_t> data(machine, 4, "host_probed");

  std::atomic<int> turn{0};
  machine.run([&](sc::Proc& self) {
    if (self.rank() == 0) {
      data.local(self)[2] = 9u;
      data.note_local_write(self, 2, 1);
      turn.store(1, std::memory_order_release);
    } else {
      await(turn, 1);
      // A host-style probe of rank 0's block from inside the run — the
      // bypass the instrumented access paths used to miss entirely.
      (void)data.block(0);
    }
    self.barrier();
  });

  auto* ledger = machine.race_ledger_registry();
  ASSERT_NE(ledger, nullptr);
  ASSERT_GE(ledger->conflict_count(), 1u);
  const auto diags = ledger->diagnostics();
  ASSERT_FALSE(diags.empty());
  const auto& d = diags.front();
  EXPECT_EQ(d.array, "host_probed");
  EXPECT_EQ(d.owner, 0u);
  EXPECT_EQ(d.offset, 2u);
  EXPECT_EQ(d.epoch, 1u);
  EXPECT_EQ(d.first_rank, 0u);
  EXPECT_EQ(d.second_rank, sc::kHostRank);
  const std::string msg = d.to_string();
  EXPECT_NE(msg.find("the host"), std::string::npos) << msg;
}

TEST_P(RaceLedgerModes, HostBlockProbeOutsideRunIsFree) {
  sc::Machine machine(2);
  machine.set_race_ledger_mode(GetParam());
  sc::Spread<std::uint32_t> data(machine, 4, "host_outside");
  data.block(0)[0] = 1u;  // before the run: host owns everything
  machine.run([&](sc::Proc& self) {
    data.note_local_write(self);
    self.barrier();
  });
  EXPECT_EQ(data.block(0)[0], 1u);  // after the run: equally free
  EXPECT_EQ(machine.race_ledger_registry()->conflict_count(), 0u);
}

// Overlapping multi-element races: both stores must agree element by
// element (as a multiset — their check interleavings differ).
TEST(RaceLedger, ShardedAndMutexAgreeOnOverlappingRaces) {
  if (!sc::Machine::race_ledger_compiled()) {
    GTEST_SKIP() << "built without HISTCC_RACE_LEDGER";
  }
  auto run_racy = [](sc::LedgerMode mode) {
    sc::Machine machine(4);
    machine.set_race_policy(sc::RacePolicy::kRecord);
    machine.set_race_ledger_mode(mode);
    sc::Spread<std::uint32_t> data(machine, 16, "mode_cmp");
    std::vector<std::uint32_t> buf(8, 1u);
    std::atomic<int> turn{0};
    machine.run([&](sc::Proc& self) {
      if (self.rank() == 0) {
        data.put_block(self, 3, 0, std::span<const std::uint32_t>(buf).first(6));
        turn.store(1, std::memory_order_release);
      } else if (self.rank() == 1) {
        await(turn, 1);
        data.put_block(self, 3, 4, std::span<const std::uint32_t>(buf).first(4));
        turn.store(2, std::memory_order_release);
      } else if (self.rank() == 2) {
        await(turn, 2);
        std::vector<std::uint32_t> dst(4);
        data.prefetch(self, dst, 3, 6, 4);
      }
      self.barrier();
    });
    return diag_keys(machine.race_ledger_registry()->diagnostics());
  };

  const auto sharded = run_racy(sc::LedgerMode::kSharded);
  const auto mutex = run_racy(sc::LedgerMode::kMutex);
  // Writes [0,6) and [4,8) overlap on {4,5}; the read [6,10) overlaps the
  // second write on {6,7}: two WW and two WR diagnostics.
  EXPECT_EQ(sharded.size(), 4u);
  EXPECT_EQ(sharded, mutex);
}

// ledger_checks metering must stay exact under sharding: every recorded
// element is one check, size probes count one each, in both stores.
TEST(RaceLedger, CheckMeteringIsExactInBothModes) {
  if (!sc::Machine::race_ledger_compiled()) {
    GTEST_SKIP() << "built without HISTCC_RACE_LEDGER";
  }
  for (const auto mode : {sc::LedgerMode::kSharded, sc::LedgerMode::kMutex}) {
    sc::Machine machine(2);
    machine.set_race_ledger_mode(mode);
    sc::Spread<std::uint32_t> data(machine, 4, "metered");
    machine.run([&](sc::Proc& self) {
      data.note_local_write(self, 0, 4);  // 4 checks
      self.barrier();
      (void)data.get(self, 1 - self.rank(), 0);  // 1 check
      self.sync();
      self.barrier();
    });
    EXPECT_EQ(machine.race_ledger_registry()->check_count(), 2u * (4u + 1u));
    EXPECT_EQ(machine.stats(0).ledger_checks, 5u);
    EXPECT_EQ(machine.stats(1).ledger_checks, 5u);
  }
}

INSTANTIATE_TEST_SUITE_P(ShadowStores, RaceLedgerModes,
                         ::testing::Values(sc::LedgerMode::kSharded,
                                           sc::LedgerMode::kMutex),
                         mode_name);

// ---------------------------------------------------------------------------

TEST(RaceLedger, BarrierSeparatedAccessesAreClean) {
  if (!sc::Machine::race_ledger_compiled()) {
    GTEST_SKIP() << "built without HISTCC_RACE_LEDGER";
  }
  sc::Machine machine(4);
  sc::Spread<std::uint32_t> data(machine, 4, "published");
  // The correct version of the protocol: write, barrier, then read.
  machine.run([&](sc::Proc& self) {
    data.local(self)[0] = self.rank();
    data.note_local_write(self, 0, 1);
    self.barrier();
    const std::uint32_t next = (self.rank() + 1) % machine.nprocs();
    EXPECT_EQ(data.get(self, next, 0), next);
    self.sync();
    self.barrier();
  });
  auto* ledger = machine.race_ledger_registry();
  ASSERT_NE(ledger, nullptr);
  EXPECT_EQ(ledger->conflict_count(), 0u);
  EXPECT_GT(ledger->check_count(), 0u);
}

TEST(RaceLedger, LedgerStateResetsBetweenRuns) {
  if (!sc::Machine::race_ledger_compiled()) {
    GTEST_SKIP() << "built without HISTCC_RACE_LEDGER";
  }
  sc::Machine machine(2);
  machine.set_race_policy(sc::RacePolicy::kRecord);
  sc::Spread<std::uint32_t> data(machine, 2, "reset_me");
  std::atomic<int> turn{0};
  machine.run([&](sc::Proc& self) {
    if (self.rank() == 0) {
      data.put(self, 1, 0, 1u);
      turn.store(1, std::memory_order_release);
    } else {
      await(turn, 1);
      data.put(self, 1, 0, 2u);
    }
    self.barrier();
  });
  ASSERT_GE(machine.race_ledger_registry()->conflict_count(), 1u);

  // A clean follow-up program must start from a blank ledger: neither the
  // old diagnostics nor the old shadow cells may leak into this run.
  machine.run([&](sc::Proc& self) {
    data.local(self)[0] = 9;
    data.note_local_write(self, 0, 1);
    self.barrier();
  });
  EXPECT_EQ(machine.race_ledger_registry()->conflict_count(), 0u);
}

TEST(RaceLedger, RuntimeDisableSwitchesCheckingOff) {
  if (!sc::Machine::race_ledger_compiled()) {
    GTEST_SKIP() << "built without HISTCC_RACE_LEDGER";
  }
  sc::Machine machine(2);
  machine.set_race_ledger_enabled(false);
  sc::Spread<std::uint32_t> data(machine, 2, "disabled");
  std::atomic<int> turn{0};
  machine.run([&](sc::Proc& self) {
    if (self.rank() == 0) {
      data.put(self, 1, 0, 1u);
      turn.store(1, std::memory_order_release);
    } else {
      await(turn, 1);
      data.put(self, 1, 0, 2u);
    }
    self.barrier();
  });
  EXPECT_EQ(machine.race_ledger_registry()->conflict_count(), 0u);
}

// The acceptance gate: the paper's algorithms, which follow the
// publication discipline, must produce zero conflicts — no false
// positives — at several machine sizes, under the throwing policy.  This
// now also exercises the size-probe tracking: parallel_cc's merge phase
// probes SpreadVec sizes every round.
class RaceLedgerCleanAlgorithms : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RaceLedgerCleanAlgorithms, ParallelCcRunsClean) {
  const std::uint32_t p = GetParam();
  sc::Machine machine(p);  // RacePolicy::kThrow is the default
  const auto image = im::make_test_pattern(im::TestPattern::kDualSpiral, 64);
  EXPECT_NO_THROW({
    (void)cc::connected_components_parallel(machine, image, cc::CcOptions{});
  });
  if (sc::Machine::race_ledger_compiled()) {
    EXPECT_EQ(machine.race_ledger_registry()->conflict_count(), 0u);
    EXPECT_GT(machine.race_ledger_registry()->check_count(), 0u);
  }
}

TEST_P(RaceLedgerCleanAlgorithms, HistogramRunsClean) {
  const std::uint32_t p = GetParam();
  sc::Machine machine(p);
  const auto image = im::make_test_pattern(im::TestPattern::kCircles, 64);
  EXPECT_NO_THROW({ (void)histcc::hist::histogram_parallel(machine, image, 64); });
  if (sc::Machine::race_ledger_compiled()) {
    EXPECT_EQ(machine.race_ledger_registry()->conflict_count(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, RaceLedgerCleanAlgorithms,
                         ::testing::Values(1u, 4u, 16u));
