// Tests for the region adjacency graph: known tiny cases, sequential
// semantics under both connectivities, and exact agreement of the
// halo-based parallel construction.
#include <gtest/gtest.h>

#include "histcc/cc/parallel_cc.hpp"
#include "histcc/cc/region_graph.hpp"
#include "histcc/cc_seq/bfs_label.hpp"
#include "histcc/image/generators.hpp"
#include "histcc/splitc/machine.hpp"

namespace cc = histcc::cc;
namespace cs = histcc::ccseq;
namespace im = histcc::img;
namespace sc = histcc::splitc;

namespace {

im::LabelImage labels_from_rows(const std::vector<std::vector<int>>& rows) {
  im::LabelImage labels(static_cast<std::uint32_t>(rows.size()),
                        static_cast<std::uint32_t>(rows[0].size()));
  for (std::uint32_t i = 0; i < labels.height(); ++i) {
    for (std::uint32_t j = 0; j < labels.width(); ++j) {
      labels(i, j) = static_cast<std::uint32_t>(rows[i][j]);
    }
  }
  return labels;
}

}  // namespace

TEST(RegionGraphTest, TwoTouchingRegions) {
  const auto labels = labels_from_rows({{1, 1, 2, 2}});
  const auto edges = cc::region_adjacency(labels);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0], (cc::RegionEdge{1, 2}));
}

TEST(RegionGraphTest, BackgroundSeparatesRegions) {
  const auto labels = labels_from_rows({{1, 0, 2}});
  EXPECT_TRUE(cc::region_adjacency(labels).empty());
}

TEST(RegionGraphTest, DiagonalOnlyUnderEightConn) {
  const auto labels = labels_from_rows({{1, 0},  //
                                        {0, 2}});
  EXPECT_TRUE(
      cc::region_adjacency(labels, cs::Connectivity::kFour).empty());
  const auto edges = cc::region_adjacency(labels, cs::Connectivity::kEight);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0], (cc::RegionEdge{1, 2}));
}

TEST(RegionGraphTest, EdgesSortedUniqueNormalized) {
  const auto labels = labels_from_rows({{3, 1, 3},  //
                                        {1, 3, 1},  //
                                        {3, 1, 2}});
  const auto edges = cc::region_adjacency(labels);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_LT(edges[i].a, edges[i].b);
    if (i > 0) {
      EXPECT_LT(edges[i - 1], edges[i]);
    }
  }
}

TEST(RegionGraphTest, CheckerboardOfTwoColours) {
  // A grey checkerboard labeled with the same-colour rule: under
  // 4-connectivity every cell is its own component, each touching its 4
  // neighbours (in the 8-conn RAG sense the diagonals of the same colour
  // merge instead).
  const std::uint32_t n = 8;
  im::GreyImage image(n, n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      image(i, j) = static_cast<std::uint8_t>(1 + ((i + j) % 2));
    }
  }
  const auto labels = cs::label_components_bfs(
      image, cs::Connectivity::kFour, cs::ColourRule::kSameColour);
  const auto edges = cc::region_adjacency(labels, cs::Connectivity::kFour);
  // n^2 cells, grid adjacencies: 2 n (n-1).
  EXPECT_EQ(edges.size(), 2u * n * (n - 1));
}

class RegionGraphParallelSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(RegionGraphParallelSweep, MatchesSequential) {
  const auto [conn_int, p] = GetParam();
  const auto conn = static_cast<cs::Connectivity>(conn_int);
  const auto image = im::make_darpa_like(64, 77);
  const auto labels = cs::label_components_bfs(
      image, conn, cs::ColourRule::kSameColour);
  const auto expected = cc::region_adjacency(labels, conn);
  sc::Machine machine(p);
  EXPECT_EQ(cc::region_adjacency_parallel(machine, labels, conn), expected);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RegionGraphParallelSweep,
                         ::testing::Combine(::testing::Values(4, 8),
                                            ::testing::Values(1, 2, 8, 16,
                                                              32)));

TEST(RegionGraphParallelTest, DistributedPipeline) {
  // Label in parallel, build the RAG from the distributed labels.
  const std::uint32_t n = 64, p = 16;
  const auto image = im::make_darpa_like(n, 5);
  sc::Machine machine(p);
  const im::TileLayout layout(n, p);
  sc::Spread<std::uint8_t> tiles(machine, layout.max_tile_size());
  sc::Spread<std::uint32_t> labels(machine, layout.max_tile_size());
  layout.scatter(image, tiles);
  cc::CcOptions options;
  options.rule = cs::ColourRule::kSameColour;
  cc::connected_components_parallel(machine, layout, tiles, labels, options);
  const auto edges =
      cc::region_adjacency_parallel(machine, layout, labels,
                                    cs::Connectivity::kEight);
  const auto reference = cc::region_adjacency(
      cs::label_components_bfs(image, cs::Connectivity::kEight,
                               cs::ColourRule::kSameColour),
      cs::Connectivity::kEight);
  EXPECT_EQ(edges, reference);
}

TEST(RegionGraphTest, PatternsHaveExpectedStructure) {
  // Concentric rings under the binary rule are separated by background:
  // no edges.  The same image labeled per-colour as filled disc + frame
  // shapes would differ; here we simply require an empty RAG.
  const auto circles =
      im::make_test_pattern(im::TestPattern::kCircles, 64);
  const auto labels = cs::label_components_bfs(circles);
  EXPECT_TRUE(cc::region_adjacency(labels).empty());
}
