// Tests for the label-propagation baseline: correctness against the
// sequential labeler and its round count (the reason the paper's algorithm
// wins on "difficult" images).
#include <gtest/gtest.h>

#include "histcc/cc/label_prop.hpp"
#include "histcc/cc/parallel_cc.hpp"
#include "histcc/cc_seq/bfs_label.hpp"
#include "histcc/image/generators.hpp"
#include "histcc/splitc/machine.hpp"

namespace cc = histcc::cc;
namespace cs = histcc::ccseq;
namespace im = histcc::img;
namespace sc = histcc::splitc;

class LabelPropSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(LabelPropSweep, MatchesSequential) {
  const auto [pattern, p] = GetParam();
  const auto image =
      im::make_test_pattern(static_cast<im::TestPattern>(pattern), 64);
  sc::Machine machine(p);
  const auto labels = cc::connected_components_label_prop(machine, image);
  EXPECT_EQ(labels, cs::label_components_bfs(image));
}

INSTANTIATE_TEST_SUITE_P(Catalog, LabelPropSweep,
                         ::testing::Combine(::testing::Range(1, 10),
                                            ::testing::Values(1, 4, 16)));

TEST(LabelPropTest, FourConnectivity) {
  const auto image = im::make_percolation(64, 0.55, 5);
  sc::Machine machine(16);
  const auto labels = cc::connected_components_label_prop(
      machine, image, cs::Connectivity::kFour);
  EXPECT_EQ(labels,
            cs::label_components_bfs(image, cs::Connectivity::kFour));
}

TEST(LabelPropTest, GreyColourRule) {
  const auto image = im::make_darpa_like(64, 17);
  sc::Machine machine(8);
  const auto labels = cc::connected_components_label_prop(
      machine, image, cs::Connectivity::kEight, cs::ColourRule::kSameColour);
  EXPECT_EQ(labels,
            cs::label_components_bfs(image, cs::Connectivity::kEight,
                                     cs::ColourRule::kSameColour));
}

TEST(LabelPropTest, SingleProcessorNeedsOneRound) {
  const auto image = im::make_percolation(64, 0.5, 9);
  sc::Machine machine(1);
  cc::LabelPropStats stats;
  const auto labels = cc::connected_components_label_prop(
      machine, image, cs::Connectivity::kEight, cs::ColourRule::kBinary,
      &stats);
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_EQ(labels, cs::label_components_bfs(image));
}

TEST(LabelPropTest, SpiralNeedsManyMoreRoundsThanLogP) {
  // The dual spiral snakes across the grid; min-label propagation needs a
  // number of rounds proportional to the arm length in tiles, far more
  // than the paper's log p merges.  This is the experiment behind the
  // baseline comparison in the benches.
  const auto image = im::make_test_pattern(im::TestPattern::kDualSpiral, 128);
  sc::Machine machine(16);
  cc::LabelPropStats stats;
  const auto labels = cc::connected_components_label_prop(
      machine, image, cs::Connectivity::kEight, cs::ColourRule::kBinary,
      &stats);
  EXPECT_EQ(labels, cs::label_components_bfs(image));
  EXPECT_GT(stats.rounds, 4u);  // log p = 4
}

TEST(LabelPropTest, EasyImageConvergesFast) {
  const auto image = im::make_test_pattern(im::TestPattern::kFourSquares, 64);
  sc::Machine machine(16);
  cc::LabelPropStats stats;
  (void)cc::connected_components_label_prop(machine, image,
                                            cs::Connectivity::kEight,
                                            cs::ColourRule::kBinary, &stats);
  EXPECT_LE(stats.rounds, 4u);
}

TEST(LabelPropTest, AgreesWithPaperAlgorithmEverywhere) {
  for (const double occ : {0.3, 0.6, 0.9}) {
    const auto image = im::make_percolation(64, occ, 123);
    sc::Machine machine(8);
    const auto prop = cc::connected_components_label_prop(machine, image);
    const auto merge = cc::connected_components_parallel(machine, image);
    EXPECT_EQ(prop, merge) << "occupancy " << occ;
  }
}
