// Tests for the image container, tile layout (Section 3), the nine catalog
// generators (Figure 1), the DARPA-like generator, and PGM I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "histcc/image/generators.hpp"
#include "histcc/image/image.hpp"
#include "histcc/image/layout.hpp"
#include "histcc/image/pgm_io.hpp"
#include "histcc/splitc/machine.hpp"
#include "histcc/util/require.hpp"

namespace im = histcc::img;
namespace sc = histcc::splitc;

TEST(ImageTest, ConstructionAndAccess) {
  im::GreyImage image(4, 6, 9);
  EXPECT_EQ(image.height(), 4u);
  EXPECT_EQ(image.width(), 6u);
  EXPECT_EQ(image.size(), 24u);
  EXPECT_EQ(image(3, 5), 9);
  image(2, 1) = 42;
  EXPECT_EQ(image.at(2, 1), 42);
  EXPECT_THROW((void)image.at(4, 0), histcc::util::contract_error);
  EXPECT_THROW((void)image.at(0, 6), histcc::util::contract_error);
}

TEST(ImageTest, Equality) {
  im::GreyImage a(3, 3, 1), b(3, 3, 1);
  EXPECT_EQ(a, b);
  b(1, 1) = 2;
  EXPECT_FALSE(a == b);
  im::GreyImage c(3, 4, 1);
  EXPECT_FALSE(a == c);
}

TEST(LayoutTest, PaperGeometry) {
  // 512 x 512 on p = 32: 4 x 8 grid, 128 x 64 tiles (the Figure 4 example).
  const im::TileLayout layout(512, 32);
  EXPECT_EQ(layout.grid_rows(), 4u);
  EXPECT_EQ(layout.grid_cols(), 8u);
  EXPECT_EQ(layout.max_tile_rows(), 128u);
  EXPECT_EQ(layout.max_tile_cols(), 64u);
  EXPECT_EQ(layout.max_tile_size(), 128u * 64u);
  // Divisible shape: every rank's tile is full-size.
  for (std::uint32_t rank = 0; rank < 32; ++rank) {
    EXPECT_EQ(layout.tile_rows(rank), 128u);
    EXPECT_EQ(layout.tile_cols(rank), 64u);
  }
  EXPECT_EQ(layout.height(), 512u);
  EXPECT_EQ(layout.width(), 512u);
  EXPECT_EQ(layout.pixels(), 512ull * 512);
}

TEST(LayoutTest, RaggedCeilPartition) {
  // 100 x 100 on p = 32 (4 x 8 grid): qmax = 25, rmax = ceil(100/8) = 13;
  // the last grid column gets the 9-wide remainder.
  const im::TileLayout layout(100, 32);
  EXPECT_EQ(layout.max_tile_rows(), 25u);
  EXPECT_EQ(layout.max_tile_cols(), 13u);
  for (std::uint32_t gr = 0; gr < 4; ++gr) EXPECT_EQ(layout.rows_in(gr), 25u);
  for (std::uint32_t gc = 0; gc < 7; ++gc) EXPECT_EQ(layout.cols_in(gc), 13u);
  EXPECT_EQ(layout.cols_in(7), 100u - 7u * 13u);  // 9
  // Rank 0 owns the largest tile.
  EXPECT_EQ(layout.tile_size(0), layout.max_tile_size());
  // Per-rank sizes cover the image exactly.
  std::uint64_t covered = 0;
  for (std::uint32_t rank = 0; rank < 32; ++rank) {
    covered += layout.tile_size(rank);
  }
  EXPECT_EQ(covered, layout.pixels());
}

TEST(LayoutTest, EmptyTrailingTiles) {
  // 1000 x 3 on p = 16 (4 x 4 grid): rmax = 1, grid column 3 is empty.
  const im::TileLayout layout(1000, 3, 16);
  EXPECT_EQ(layout.max_tile_rows(), 250u);
  EXPECT_EQ(layout.max_tile_cols(), 1u);
  EXPECT_EQ(layout.cols_in(3), 0u);
  EXPECT_EQ(layout.tile_size(layout.rank_at(0, 3)), 0u);
  EXPECT_GT(layout.tile_size(0), 0u);
  // 1 x 1 on p = 16: only rank 0 owns the pixel.
  const im::TileLayout tiny(1, 1, 16);
  EXPECT_EQ(tiny.tile_size(0), 1u);
  std::uint64_t covered = 0;
  for (std::uint32_t rank = 0; rank < 16; ++rank) {
    covered += tiny.tile_size(rank);
  }
  EXPECT_EQ(covered, 1u);
}

TEST(LayoutTest, RowMajorProcessorAssignment) {
  const im::TileLayout layout(512, 32);
  EXPECT_EQ(layout.proc_row(0), 0u);
  EXPECT_EQ(layout.proc_col(7), 7u);
  EXPECT_EQ(layout.proc_row(8), 1u);
  EXPECT_EQ(layout.proc_col(8), 0u);
  EXPECT_EQ(layout.rank_at(3, 7), 31u);
}

TEST(LayoutTest, GlobalCoordinates) {
  const im::TileLayout layout(512, 32);
  // Processor 9 sits at grid (1, 1): rows 128.., cols 64..
  EXPECT_EQ(layout.global_row(9, 0), 128u);
  EXPECT_EQ(layout.global_col(9, 0), 64u);
  EXPECT_EQ(layout.global_row(9, 127), 255u);
  EXPECT_EQ(layout.global_col(9, 63), 127u);
}

TEST(LayoutTest, InitialLabelFormula) {
  // (I*q + i)*n + (J*r + j) + 1 (Section 5.1).
  const im::TileLayout layout(512, 32);
  EXPECT_EQ(layout.initial_label(0, 0, 0), 1u);
  EXPECT_EQ(layout.initial_label(9, 2, 3), (128u + 2) * 512 + 64 + 3 + 1);
}

TEST(LayoutTest, RejectsBadShapes) {
  // Non-divisible and non-square shapes are fine now; only a non-power-of-
  // two processor count or an empty image is rejected.
  EXPECT_NO_THROW(im::TileLayout(100, 32));
  EXPECT_NO_THROW(im::TileLayout(97, 63, 4));
  EXPECT_THROW(im::TileLayout(512, 31), histcc::util::contract_error);
  EXPECT_THROW(im::TileLayout(0, 4), histcc::util::contract_error);
  EXPECT_THROW(im::TileLayout(512, 0, 4), histcc::util::contract_error);
}

class ScatterGatherTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ScatterGatherTest, RoundTripsExactly) {
  const std::uint32_t p = GetParam();
  const std::uint32_t n = 64;
  sc::Machine machine(p);
  const im::TileLayout layout(n, p);
  auto image = im::make_darpa_like(n, 5);
  sc::Spread<std::uint8_t> tiles(machine, layout.max_tile_size());
  layout.scatter(image, tiles);
  EXPECT_EQ(layout.gather(tiles), image);
}

INSTANTIATE_TEST_SUITE_P(Procs, ScatterGatherTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

class RaggedScatterGatherTest
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RaggedScatterGatherTest, RoundTripsNonSquareShapes) {
  const std::uint32_t p = GetParam();
  sc::Machine machine(p);
  const std::pair<std::uint32_t, std::uint32_t> shapes[] = {
      {1, 1}, {7, 513}, {640, 480}, {1000, 3}, {97, 63}};
  for (const auto& [h, w] : shapes) {
    const im::TileLayout layout(h, w, p);
    im::GreyImage image(h, w);
    std::uint32_t seed = 1;
    for (std::uint32_t i = 0; i < h; ++i) {
      for (std::uint32_t j = 0; j < w; ++j) {
        seed = seed * 1664525u + 1013904223u;
        image(i, j) = static_cast<std::uint8_t>(seed >> 24);
      }
    }
    sc::Spread<std::uint8_t> tiles(machine, layout.max_tile_size());
    layout.scatter(image, tiles);
    EXPECT_EQ(layout.gather(tiles), image) << h << "x" << w << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Procs, RaggedScatterGatherTest,
                         ::testing::Values(1, 4, 16));

TEST(ScatterTest, TilePixelsRowMajor) {
  const std::uint32_t n = 8;
  sc::Machine machine(4);  // 2 x 2 grid, 4 x 4 tiles
  const im::TileLayout layout(n, 4);
  im::GreyImage image(n, n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      image(i, j) = static_cast<std::uint8_t>(i * n + j);
    }
  }
  sc::Spread<std::uint8_t> tiles(machine, layout.max_tile_size());
  layout.scatter(image, tiles);
  // Processor 3 owns rows 4..7, cols 4..7.
  auto block = tiles.block(3);
  EXPECT_EQ(block[0], image(4, 4));
  EXPECT_EQ(block[1], image(4, 5));
  EXPECT_EQ(block[4], image(5, 4));
  EXPECT_EQ(block[15], image(7, 7));
}

class PatternTest : public ::testing::TestWithParam<int> {};

TEST_P(PatternTest, BinaryScalableDeterministic) {
  const auto pattern = static_cast<im::TestPattern>(GetParam());
  for (const std::uint32_t n : {32u, 64u, 128u}) {
    const auto image = im::make_test_pattern(pattern, n);
    EXPECT_EQ(image.height(), n);
    EXPECT_EQ(image.width(), n);
    std::size_t foreground = 0;
    for (const auto px : image.pixels()) {
      ASSERT_LE(px, 1) << "catalog images are binary";
      foreground += px;
    }
    // Every pattern has both foreground and background.
    EXPECT_GT(foreground, 0u) << im::pattern_name(pattern) << " n=" << n;
    EXPECT_LT(foreground, image.size()) << im::pattern_name(pattern);
    // Deterministic.
    EXPECT_EQ(im::make_test_pattern(pattern, n), image);
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, PatternTest, ::testing::Range(1, 10));

TEST(PatternTest, NamesAreDistinct) {
  std::set<std::string_view> names;
  for (int id = 1; id <= im::kNumTestPatterns; ++id) {
    names.insert(im::pattern_name(static_cast<im::TestPattern>(id)));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(im::kNumTestPatterns));
}

TEST(PatternTest, RejectsTinyImages) {
  EXPECT_THROW((void)im::make_test_pattern(im::TestPattern::kCross, 16),
               histcc::util::contract_error);
}

TEST(PatternTest, CrossIsSymmetricAndCentred) {
  const auto image = im::make_test_pattern(im::TestPattern::kCross, 64);
  EXPECT_EQ(image(32, 0), 1);   // horizontal bar reaches the edge
  EXPECT_EQ(image(0, 32), 1);   // vertical bar reaches the edge
  EXPECT_EQ(image(0, 0), 0);    // corners are background
  EXPECT_EQ(image(63, 63), 0);
}

TEST(PatternTest, DiscIsFilledAndRound) {
  const std::uint32_t n = 128;
  const auto image = im::make_test_pattern(im::TestPattern::kDisc, n);
  EXPECT_EQ(image(n / 2, n / 2), 1);  // centre
  EXPECT_EQ(image(0, 0), 0);          // corner
  EXPECT_EQ(image(n / 2, 0), 0);      // radius is n/3 < n/2
}

TEST(DarpaLikeTest, GreyLevelsAndDeterminism) {
  const auto image = im::make_darpa_like(128, 99);
  EXPECT_EQ(image.height(), 128u);
  bool has_big_grey = false;
  for (const auto px : image.pixels()) {
    if (px >= 32) has_big_grey = true;
  }
  EXPECT_TRUE(has_big_grey);
  EXPECT_EQ(im::make_darpa_like(128, 99), image);
  EXPECT_FALSE(im::make_darpa_like(128, 100) == image);
}

TEST(PercolationTest, OccupancyIsRespected) {
  const auto sparse = im::make_percolation(128, 0.1, 3);
  const auto dense = im::make_percolation(128, 0.9, 3);
  auto count = [](const im::GreyImage& image) {
    std::size_t fg = 0;
    for (const auto px : image.pixels()) fg += px;
    return fg;
  };
  const double total = 128.0 * 128.0;
  EXPECT_NEAR(static_cast<double>(count(sparse)) / total, 0.1, 0.03);
  EXPECT_NEAR(static_cast<double>(count(dense)) / total, 0.9, 0.03);
  EXPECT_EQ(count(im::make_percolation(64, 0.0, 1)), 0u);
  EXPECT_EQ(count(im::make_percolation(64, 1.0, 1)), 64u * 64u);
}

TEST(IsingTest, TwoPhasesOnly) {
  const auto image = im::make_ising(64, 0.6);
  for (const auto px : image.pixels()) {
    ASSERT_TRUE(px == 1 || px == 2);
  }
}

TEST(RandomGreyTest, RespectsLevelBound) {
  const auto image = im::make_random_grey(64, 16, 4);
  for (const auto px : image.pixels()) ASSERT_LT(px, 16);
  EXPECT_THROW((void)im::make_random_grey(64, 257, 1),
               histcc::util::contract_error);
}

TEST(BandedGreyTest, ExactAreaPerLevel) {
  const std::uint32_t n = 64, k = 8;
  const auto image = im::make_banded_grey(n, k);
  std::vector<std::size_t> counts(k, 0);
  for (const auto px : image.pixels()) counts[px]++;
  for (const auto c : counts) EXPECT_EQ(c, n * n / k);
}

TEST(PgmIoTest, BinaryRoundTrip) {
  const auto image = im::make_darpa_like(64, 7);
  std::stringstream stream;
  im::write_pgm(stream, image);
  EXPECT_EQ(im::read_pgm(stream), image);
}

TEST(PgmIoTest, ReadsAsciiP2) {
  std::stringstream stream("P2\n# a comment\n2 2\n255\n0 7\n128 255\n");
  const auto image = im::read_pgm(stream);
  EXPECT_EQ(image.height(), 2u);
  EXPECT_EQ(image.width(), 2u);
  EXPECT_EQ(image(0, 0), 0);
  EXPECT_EQ(image(0, 1), 7);
  EXPECT_EQ(image(1, 0), 128);
  EXPECT_EQ(image(1, 1), 255);
}

TEST(PgmIoTest, RejectsMalformedInput) {
  std::stringstream not_pgm("JUNK");
  EXPECT_THROW((void)im::read_pgm(not_pgm), histcc::util::contract_error);
  std::stringstream truncated("P5\n4 4\n255\nab");
  EXPECT_THROW((void)im::read_pgm(truncated), histcc::util::contract_error);
  std::stringstream deep("P5\n2 2\n70000\n....");
  EXPECT_THROW((void)im::read_pgm(deep), histcc::util::contract_error);
}

TEST(PgmIoTest, LabelPpmHasHeaderAndSize) {
  im::LabelImage labels(2, 2, 0);
  labels(0, 0) = 5;
  std::stringstream stream;
  im::write_label_ppm(stream, labels);
  const std::string data = stream.str();
  EXPECT_EQ(data.substr(0, 2), "P6");
  // header + 4 pixels * 3 bytes
  EXPECT_GE(data.size(), 12u);
  // Background pixel must be black: last 3 bytes are the (1,1) pixel.
  EXPECT_EQ(data[data.size() - 1], '\0');
  EXPECT_EQ(data[data.size() - 2], '\0');
  EXPECT_EQ(data[data.size() - 3], '\0');
}
