// Tests for the BDM primitives: transpose (Algorithm 1), broadcast
// (Algorithm 2), truncated transpose, gather-to-root, and the eq. (9)
// group distribution — including their communication-cost bounds.
#include <gtest/gtest.h>

#include <numeric>

#include "histcc/bdm/primitives.hpp"

namespace sc = histcc::splitc;
namespace bdm = histcc::bdm;

namespace {

/// Fill spread column i (processor i's block) with values rank*stride + j.
void fill_columns(sc::Spread<std::uint32_t>& a, std::size_t q) {
  for (std::uint32_t rank = 0; rank < a.nprocs(); ++rank) {
    auto b = a.block(rank);
    for (std::size_t j = 0; j < q; ++j) {
      b[j] = rank * 100000 + static_cast<std::uint32_t>(j);
    }
  }
}

}  // namespace

class TransposeTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TransposeTest, MatchesDefinition) {
  const std::uint32_t p = GetParam();
  const std::size_t q = 8 * p;  // p | q
  sc::Machine m(p);
  sc::Spread<std::uint32_t> a(m, q), b(m, q);
  fill_columns(a, q);
  m.run([&](sc::Proc& self) { bdm::transpose(self, b, a, q); });

  const std::size_t blk = q / p;
  for (std::uint32_t i = 0; i < p; ++i) {
    auto out = b.block(i);
    for (std::uint32_t r = 0; r < p; ++r) {
      for (std::size_t j = 0; j < blk; ++j) {
        // b[i][r*blk + j] == a[r][i*blk + j]
        EXPECT_EQ(out[r * blk + j], r * 100000 + i * blk + j);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Procs, TransposeTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

TEST(TransposeTest, RequiresDivisibility) {
  sc::Machine m(4);
  sc::Spread<std::uint32_t> a(m, 6), b(m, 6);
  EXPECT_THROW(
      m.run([&](sc::Proc& self) { bdm::transpose(self, b, a, 6); }),
      histcc::util::contract_error);
}

TEST(TransposeTest, CommCostMatchesEquation1) {
  // Eq. (1): Tcomm = tau + q - q/p: each processor moves q - q/p remote
  // words in one pipelined batch.
  const std::uint32_t p = 8;
  const std::size_t q = 64;
  sc::Machine m(p);
  sc::Spread<std::uint32_t> a(m, q), b(m, q);
  m.run([&](sc::Proc& self) { bdm::transpose(self, b, a, q); });
  for (std::uint32_t rank = 0; rank < p; ++rank) {
    EXPECT_EQ(m.stats(rank).words, q - q / p) << "rank " << rank;
    EXPECT_EQ(m.stats(rank).batches, 1u) << "rank " << rank;
    EXPECT_EQ(m.stats(rank).messages, p - 1) << "rank " << rank;
  }
}

class BroadcastTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BroadcastTest, EveryoneGetsTheColumn) {
  const std::uint32_t p = GetParam();
  const std::size_t q = 4 * p;
  sc::Machine m(p);
  sc::Spread<std::uint32_t> src(m, q), dst(m, q), scratch(m, q);
  {
    auto b = src.block(0);
    std::iota(b.begin(), b.end(), 1000u);
  }
  m.run([&](sc::Proc& self) { bdm::broadcast(self, dst, src, scratch, q); });
  for (std::uint32_t rank = 0; rank < p; ++rank) {
    auto out = dst.block(rank);
    for (std::size_t j = 0; j < q; ++j) {
      EXPECT_EQ(out[j], 1000u + j) << "rank " << rank << " elem " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Procs, BroadcastTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

TEST(BroadcastTest, CommCostMatchesEquation2) {
  // Eq. (2): Tcomm = 2(tau + q - q/p) — exactly twice Algorithm 1, since
  // step 1 is a full transpose and step 3 moves the same volume again.
  const std::uint32_t p = 8;
  const std::size_t q = 64;
  sc::Machine m(p);
  sc::Spread<std::uint32_t> src(m, q), dst(m, q), scratch(m, q);
  m.run([&](sc::Proc& self) { bdm::broadcast(self, dst, src, scratch, q); });
  for (std::uint32_t rank = 0; rank < p; ++rank) {
    EXPECT_EQ(m.stats(rank).words, 2 * (q - q / p)) << "rank " << rank;
    EXPECT_EQ(m.stats(rank).batches, 2u) << "rank " << rank;
  }
}

TEST(TruncatedTransposeTest, FirstKProcsGetRows) {
  const std::uint32_t p = 8;
  const std::size_t k = 4;  // k < p
  sc::Machine m(p);
  sc::Spread<std::uint32_t> a(m, k), b(m, p);
  for (std::uint32_t rank = 0; rank < p; ++rank) {
    auto blk = a.block(rank);
    for (std::size_t i = 0; i < k; ++i) {
      blk[i] = rank * 10 + static_cast<std::uint32_t>(i);
    }
  }
  m.run([&](sc::Proc& self) { bdm::truncated_transpose(self, b, a, k); });
  for (std::uint32_t i = 0; i < k; ++i) {
    auto out = b.block(i);
    for (std::uint32_t r = 0; r < p; ++r) {
      EXPECT_EQ(out[r], r * 10 + i);
    }
  }
}

TEST(GatherTest, RootAssemblesInRankOrder) {
  const std::uint32_t p = 8;
  sc::Machine m(p);
  sc::Spread<std::uint32_t> src(m, 4), dst(m, 4 * p);
  for (std::uint32_t rank = 0; rank < p; ++rank) {
    auto blk = src.block(rank);
    for (std::size_t i = 0; i < 4; ++i) {
      blk[i] = rank * 4 + static_cast<std::uint32_t>(i);
    }
  }
  m.run([&](sc::Proc& self) { bdm::gather_to_root(self, dst, src, 4); });
  auto out = dst.block(0);
  for (std::size_t i = 0; i < 4 * p; ++i) {
    EXPECT_EQ(out[i], i);
  }
}

TEST(GatherTest, LimitedBlockCount) {
  const std::uint32_t p = 8;
  sc::Machine m(p);
  sc::Spread<std::uint32_t> src(m, 1), dst(m, 3);
  for (std::uint32_t rank = 0; rank < p; ++rank) {
    src.block(rank)[0] = rank + 50;
  }
  m.run([&](sc::Proc& self) {
    bdm::gather_to_root(self, dst, src, 1, 0, 0, 3);
  });
  auto out = dst.block(0);
  EXPECT_EQ(out[0], 50u);
  EXPECT_EQ(out[1], 51u);
  EXPECT_EQ(out[2], 52u);
}

TEST(GroupDistributionTest, ScatterThenAllgatherReassembles) {
  const std::uint32_t p = 8;
  sc::Machine m(p);
  sc::SpreadVec<std::uint32_t> data(m);
  sc::SpreadVec<std::uint32_t> stage(m);
  // Group = ranks {2, 3, 6, 7}; root = 6 holds 10 elements.
  const std::vector<std::uint32_t> members{2, 3, 6, 7};
  {
    auto& root_data = data.block(6);
    root_data.resize(10);
    std::iota(root_data.begin(), root_data.end(), 900u);
  }
  std::vector<std::vector<std::uint32_t>> results(p);
  m.run([&](sc::Proc& self) {
    const auto it =
        std::find(members.begin(), members.end(), self.rank());
    self.barrier();  // data published before entry, as in the merge loop
    if (it != members.end()) {
      const std::size_t my_index =
          static_cast<std::size_t>(it - members.begin());
      bdm::scatter_group(self, members, my_index, 2, data, stage);
      self.barrier();
      bdm::allgather_group(self, members, my_index, 10, stage,
                           results[self.rank()]);
    } else {
      // Non-members pass the same number of barrier episodes (the shared
      // one above plus this one, matching the members' mid-distribution
      // barrier).
      self.barrier();
    }
  });
  for (const auto rank : members) {
    ASSERT_EQ(results[rank].size(), 10u);
    for (std::size_t i = 0; i < 10; ++i) {
      EXPECT_EQ(results[rank][i], 900u + i) << "rank " << rank;
    }
  }
}

TEST(GroupDistributionTest, EmptyListIsHandled) {
  const std::uint32_t p = 4;
  sc::Machine m(p);
  sc::SpreadVec<std::uint32_t> data(m);
  sc::SpreadVec<std::uint32_t> stage(m);
  const std::vector<std::uint32_t> members{0, 1, 2, 3};
  m.run([&](sc::Proc& self) {
    self.barrier();
    bdm::scatter_group(self, members, self.rank(), 0, data, stage);
    self.barrier();
    std::vector<std::uint32_t> out{123u};  // must be cleared
    bdm::allgather_group(self, members, self.rank(), 0, stage, out);
    EXPECT_TRUE(out.empty());
  });
}

TEST(GroupDistributionTest, UnevenSliceSizes) {
  // 7 elements over 4 members: slices 2,2,2,1.
  const std::uint32_t p = 4;
  sc::Machine m(p);
  sc::SpreadVec<std::uint32_t> data(m);
  sc::SpreadVec<std::uint32_t> stage(m);
  const std::vector<std::uint32_t> members{0, 1, 2, 3};
  {
    auto& root = data.block(0);
    root.resize(7);
    std::iota(root.begin(), root.end(), 0u);
  }
  std::vector<std::vector<std::uint32_t>> results(p);
  m.run([&](sc::Proc& self) {
    self.barrier();
    const std::size_t len = bdm::scatter_group(self, members, self.rank(), 0,
                                               data, stage);
    EXPECT_EQ(len, self.rank() < 3 ? 2u : 1u);
    self.barrier();
    bdm::allgather_group(self, members, self.rank(), 7, stage,
                         results[self.rank()]);
  });
  for (std::uint32_t rank = 0; rank < p; ++rank) {
    ASSERT_EQ(results[rank].size(), 7u);
    for (std::uint32_t i = 0; i < 7; ++i) EXPECT_EQ(results[rank][i], i);
  }
}
