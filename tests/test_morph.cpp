// Tests for binary morphology: sequential kernel semantics, algebraic
// properties (duality, ordering, idempotence), and exact agreement of the
// halo-exchange parallel versions with the sequential ones.
#include <gtest/gtest.h>

#include "histcc/image/generators.hpp"
#include "histcc/image/halo.hpp"
#include "histcc/morph/morphology.hpp"
#include "histcc/splitc/machine.hpp"

namespace im = histcc::img;
namespace mo = histcc::morph;
namespace sc = histcc::splitc;

namespace {

im::GreyImage binarize(im::GreyImage image) {
  for (auto& px : image.pixels()) px = px != 0;
  return image;
}

std::size_t foreground(const im::GreyImage& image) {
  std::size_t count = 0;
  for (const auto px : image.pixels()) count += px != 0;
  return count;
}

}  // namespace

TEST(MorphSeqTest, ErodeSinglePixelVanishes) {
  im::GreyImage image(8, 8, 0);
  image(4, 4) = 1;
  EXPECT_EQ(foreground(mo::erode(image)), 0u);
  EXPECT_EQ(foreground(mo::erode(image, mo::Structuring::kCross)), 0u);
}

TEST(MorphSeqTest, DilateSinglePixelGrows) {
  im::GreyImage image(8, 8, 0);
  image(4, 4) = 1;
  EXPECT_EQ(foreground(mo::dilate(image, mo::Structuring::kCross)), 5u);
  EXPECT_EQ(foreground(mo::dilate(image, mo::Structuring::kSquare)), 9u);
}

TEST(MorphSeqTest, ErodeSquareShrinksByOne) {
  im::GreyImage image(16, 16, 0);
  for (std::uint32_t i = 4; i < 12; ++i) {
    for (std::uint32_t j = 4; j < 12; ++j) image(i, j) = 1;
  }
  const auto eroded = mo::erode(image);
  EXPECT_EQ(foreground(eroded), 6u * 6u);
  EXPECT_EQ(eroded(5, 5), 1);
  EXPECT_EQ(eroded(4, 4), 0);
}

TEST(MorphSeqTest, ZeroPaddingErodesImageEdge) {
  const im::GreyImage image(8, 8, 1);  // all foreground
  const auto eroded = mo::erode(image);
  EXPECT_EQ(foreground(eroded), 6u * 6u);  // edge ring removed
  const auto dilated = mo::dilate(image);
  EXPECT_EQ(foreground(dilated), 64u);  // cannot grow past the image
}

TEST(MorphPropertyTest, OrderingErodeLeOriginalLeDilate) {
  const auto image = binarize(im::make_percolation(64, 0.6, 9));
  const auto eroded = mo::erode(image);
  const auto dilated = mo::dilate(image);
  for (std::size_t idx = 0; idx < image.size(); ++idx) {
    EXPECT_LE(eroded.pixels()[idx], image.pixels()[idx] != 0 ? 1 : 0);
    EXPECT_GE(dilated.pixels()[idx], image.pixels()[idx] != 0 ? 1 : 0);
  }
}

TEST(MorphPropertyTest, OpeningAndClosingAreIdempotent) {
  const auto image = binarize(im::make_percolation(64, 0.55, 10));
  const auto opened = mo::open(image);
  EXPECT_EQ(mo::open(opened), opened);
  const auto closed = mo::close(image);
  EXPECT_EQ(mo::close(closed), closed);
}

TEST(MorphPropertyTest, OpeningRemovesSpecks) {
  // Sparse isolated pixels vanish under opening; a solid block survives.
  im::GreyImage image(32, 32, 0);
  image(2, 2) = image(10, 20) = image(25, 7) = 1;  // specks
  for (std::uint32_t i = 14; i < 20; ++i) {
    for (std::uint32_t j = 14; j < 20; ++j) image(i, j) = 1;
  }
  const auto opened = mo::open(image);
  EXPECT_EQ(opened(2, 2), 0);
  EXPECT_EQ(opened(10, 20), 0);
  EXPECT_EQ(opened(25, 7), 0);
  EXPECT_EQ(opened(16, 16), 1);
}

TEST(MorphPropertyTest, DualityErodeDilateOnComplement) {
  // dilate(x) == NOT erode(NOT x) under zero padding... padding breaks
  // exact duality at the border, so check the interior only.
  const auto image = binarize(im::make_percolation(32, 0.5, 11));
  im::GreyImage complement(32, 32);
  for (std::size_t idx = 0; idx < image.size(); ++idx) {
    complement.pixels()[idx] = image.pixels()[idx] ? 0 : 1;
  }
  const auto dilated = mo::dilate(image);
  const auto eroded_complement = mo::erode(complement);
  for (std::uint32_t i = 1; i < 31; ++i) {
    for (std::uint32_t j = 1; j < 31; ++j) {
      EXPECT_EQ(dilated(i, j), eroded_complement(i, j) ? 0 : 1)
          << i << "," << j;
    }
  }
}

class MorphParallelSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>> {};

TEST_P(MorphParallelSweep, MatchesSequential) {
  const auto [p, element_int] = GetParam();
  const auto element = static_cast<mo::Structuring>(element_int);
  const auto image = binarize(im::make_percolation(64, 0.55, 21));

  sc::Machine machine(p);
  const im::TileLayout layout(64, p);
  sc::Spread<std::uint8_t> tiles(machine, layout.max_tile_size());
  sc::Spread<std::uint8_t> out(machine, layout.max_tile_size());
  layout.scatter(image, tiles);

  mo::erode_parallel(machine, layout, tiles, out, element);
  EXPECT_EQ(layout.gather(out), mo::erode(image, element));

  mo::dilate_parallel(machine, layout, tiles, out, element);
  EXPECT_EQ(layout.gather(out), mo::dilate(image, element));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MorphParallelSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8, 16,
                                                              32),
                                            ::testing::Values(4, 8)));

TEST(MorphParallelTest, PatternsAcrossTileBoundaries) {
  // Shapes straddling every tile border: the halo must carry exactly the
  // right neighbour pixels.
  for (const auto id : {im::TestPattern::kCross, im::TestPattern::kCircles,
                        im::TestPattern::kDualSpiral}) {
    const auto image = im::make_test_pattern(id, 64);
    sc::Machine machine(16);
    const im::TileLayout layout(64, 16);
    sc::Spread<std::uint8_t> tiles(machine, layout.max_tile_size());
    sc::Spread<std::uint8_t> out(machine, layout.max_tile_size());
    layout.scatter(image, tiles);
    mo::erode_parallel(machine, layout, tiles, out);
    EXPECT_EQ(layout.gather(out), mo::erode(image))
        << im::pattern_name(id);
  }
}

TEST(MorphParallelTest, HaloCommCostIsOneExchange)
{
  const std::uint32_t p = 16, n = 64;
  const auto image = binarize(im::make_percolation(n, 0.5, 1));
  sc::Machine machine(p);
  const im::TileLayout layout(n, p);
  sc::Spread<std::uint8_t> tiles(machine, layout.max_tile_size());
  sc::Spread<std::uint8_t> out(machine, layout.max_tile_size());
  layout.scatter(image, tiles);
  mo::erode_parallel(machine, layout, tiles, out);
  // An interior processor pulls 2(q + r) + 4 words in one batch.
  const auto stats = machine.max_stats();
  EXPECT_LE(stats.words,
            2ull * (layout.max_tile_rows() + layout.max_tile_cols()) + 4);
  EXPECT_EQ(stats.batches, 1u);
}

TEST(HaloExchangerTest, RingContentsAreExact) {
  const std::uint32_t n = 8, p = 4;  // 2x2 grid of 4x4 tiles
  im::GreyImage image(n, n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      image(i, j) = static_cast<std::uint8_t>(i * n + j);
    }
  }
  sc::Machine machine(p);
  const im::TileLayout layout(n, p);
  sc::Spread<std::uint8_t> tiles(machine, layout.max_tile_size());
  layout.scatter(image, tiles);
  im::HaloExchanger halos(machine, layout);

  std::vector<std::vector<std::uint8_t>> halos_out(p);
  machine.run([&](sc::Proc& self) {
    halos.exchange(self, tiles, halos_out[self.rank()]);
  });

  // Processor 3 owns rows 4..7, cols 4..7; its halo row 0 should be image
  // row 3 (cols 3..8 clipped), its (0,0) corner image(3,3).
  const auto& h = halos_out[3];
  const std::uint32_t hr = 6;  // r + 2
  EXPECT_EQ(h[0 * hr + 0], image(3, 3));  // NW corner
  EXPECT_EQ(h[0 * hr + 1], image(3, 4));  // north line
  EXPECT_EQ(h[0 * hr + 4], image(3, 7));
  EXPECT_EQ(h[1 * hr + 0], image(4, 3));  // west line
  EXPECT_EQ(h[1 * hr + 1], image(4, 4));  // own tile
  EXPECT_EQ(h[0 * hr + 5], 0);            // NE corner: outside image? no —
  // (3, 8) is outside; zero.
  EXPECT_EQ(h[5 * hr + 5], 0);            // SE corner outside the image
}
