// spmdlint corpus: R4 omp-epoch-hooks.  A `#pragma omp parallel` region
// that references state declared outside it must carry epoch_check hooks
// so the OpenMP epoch checker can audit it.

#include <cstdint>
#include <vector>

namespace corpus {

struct EpochChecker {
  void note_write(std::size_t off, std::size_t len);
  void note_read(std::size_t off, std::size_t len);
  void epoch_barrier();
};

int omp_get_thread_num();

// --- violation -------------------------------------------------------------

void unaudited_region(std::vector<std::uint32_t>& partial, int threads) {
#pragma omp parallel num_threads(threads)
  {
    const int tid = omp_get_thread_num();
    partial[static_cast<std::size_t>(tid)] += 1;  // shared, unaudited
  }
}

void unaudited_parallel_for(std::vector<std::uint32_t>& hist) {
#pragma omp parallel for
  for (std::size_t i = 0; i < 64; ++i) {
    hist[i] += 1;  // shared, unaudited
  }
}

// --- near-misses (must NOT fire) -------------------------------------------

void audited_region(std::vector<std::uint32_t>& partial, EpochChecker* chk,
                    int threads) {
#pragma omp parallel num_threads(threads)
  {
    const int tid = omp_get_thread_num();
    partial[static_cast<std::size_t>(tid)] += 1;
    chk->note_write(static_cast<std::size_t>(tid), 1);  // audited: fine
  }
}

void thread_private_region(int threads) {
#pragma omp parallel num_threads(threads)
  {
    int acc = 0;
    for (int i = 0; i < 100; ++i) {
      acc += i;  // touches nothing declared outside the region: fine
    }
  }
}

}  // namespace corpus
