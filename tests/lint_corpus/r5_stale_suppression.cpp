// spmdlint corpus: R5 stale-suppression.  allow() comments must suppress a
// real finding, name a real rule, and carry a justification.

#include <cstdint>

namespace corpus {

struct Proc {
  std::uint32_t rank() const;
  void barrier();
  void sync();
};

// --- violations ------------------------------------------------------------

void stale_allow(Proc& self) {
  // spmdlint: allow(barrier-divergence) -- VIOLATION: nothing diverges below
  self.barrier();
}

void unknown_rule(Proc& self) {
  self.sync();  // spmdlint: allow(no-such-rule) -- VIOLATION: unknown rule
}

void missing_justification(Proc& self) {
  if (self.rank() == 0) {
    self.barrier();  // spmdlint: allow(barrier-divergence)
  }
}

// --- near-misses (must NOT fire) -------------------------------------------

void live_allow_standalone(Proc& self) {
  if (self.rank() == 0) {
    // spmdlint: allow(barrier-divergence) -- corpus: standalone comment form
    self.barrier();
  }
}

void ordinary_comment(Proc& self) {
  // Mentioning the tool name spmdlint in prose is not a directive.
  self.barrier();
}

}  // namespace corpus
