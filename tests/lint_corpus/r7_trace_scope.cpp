// spmdlint corpus: TRACE_SCOPE/TRACE_SPAN awareness.  This file is linted,
// never compiled.  The macros (histcc/trace/trace.hpp) are transparent to
// control flow: TRACE_SCOPE(...) declares an RAII recorder and
// TRACE_SPAN(...) { ... } wraps its block in an if-with-initializer.  The
// analyzer must neither treat a span body as a lambda (its `) {` shape)
// nor leave a control header dangling across a skipped macro — both
// misreads existed before the TRACE_* handler and are pinned here.

#include <cstdint>

namespace corpus {

struct Proc {
  std::uint32_t rank() const;
  std::uint32_t nprocs() const;
  void barrier();
  void sync();
};

template <typename T>
struct Spread {
  Spread(const char* name);
  T* local(Proc& self);
  void note_local_write(Proc& self);
};

// --- violations ------------------------------------------------------------

void divergent_barrier_inside_span(Proc& self) {
  if (self.rank() == 0) {
    TRACE_SPAN(self, "cc/border") {
      self.barrier();  // VIOLATION: span body is not a callable boundary
    }
  }
}

// --- near-misses (must NOT fire) -------------------------------------------

void span_as_unbraced_control_body(Proc& self) {
  const bool leader = self.rank() == 0;
  if (leader) TRACE_SPAN(self, "serve/lease") { self.sync(); }
  self.barrier();  // all ranks arrive: the guard ended with the span body
}

void scope_statement_under_guard(Proc& self) {
  if (self.rank() == 0) {
    TRACE_SCOPE(self, "cc/graph");  // declaration only, no barrier inside
    self.sync();
  }
  self.barrier();  // uniform
}

void span_keeps_barrier_region(Proc& self) {
  Spread<std::uint32_t> tiles("tiles");
  TRACE_SPAN(self, "hist/tally") {
    tiles.local(self)[0] = 1;  // mutation inside the span...
  }
  tiles.note_local_write(self);  // ...annotated outside it, same region
  self.barrier();
}

void uniform_barrier_inside_span(Proc& self) {
  TRACE_SPAN(self, "hist/transpose") {
    self.barrier();  // every rank opens the span: fine
  }
}

}  // namespace corpus
