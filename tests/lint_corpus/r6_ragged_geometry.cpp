// spmdlint corpus: R1 on ragged-geometry idioms.  The ragged tile layout
// makes per-rank loop bounds (`layout.tile_rows(rank)`) the *normal* SPMD
// shape: every rank crosses the same barrier sequence even though each
// runs a different trip count.  A `continue`/`break` inside such a loop
// lands at the end of the loop, so only a barrier INSIDE the loop body is
// divergence — one after the loop is not.  Same for a `return` inside an
// inline lambda: it leaves the lambda, not the SPMD body.  Expected
// findings live in expected.txt (exact lines).

#include <cstddef>
#include <cstdint>

namespace corpus {

struct Proc {
  std::uint32_t rank() const;
  std::uint32_t nprocs() const;
  void barrier();
  void sync();
};

struct Layout {
  std::uint32_t tile_rows(std::uint32_t rank) const;
  std::uint32_t tile_cols(std::uint32_t rank) const;
  std::uint32_t rows_in(std::uint32_t grid_row) const;
};

// --- violations ------------------------------------------------------------

void barrier_inside_ragged_loop(Proc& self, const Layout& layout) {
  const std::uint32_t q = layout.tile_rows(self.rank());
  for (std::uint32_t i = 0; i < q; ++i) {
    self.barrier();  // VIOLATION: trip count differs per rank
  }
}

void continue_skips_barrier_inside_loop(Proc& self, const Layout& layout) {
  const std::uint32_t q = layout.tile_rows(self.rank());
  for (std::uint32_t i = 0; i < 8; ++i) {
    if (i >= q) {
      continue;  // VIOLATION: skips the in-loop barrier on some ranks
    }
    self.barrier();
  }
}

// --- near-misses (must NOT fire) -------------------------------------------

void ragged_loop_then_barrier(Proc& self, const Layout& layout) {
  const std::uint32_t rank = self.rank();
  const std::uint32_t q = layout.tile_rows(rank);
  const std::uint32_t r = layout.tile_cols(rank);
  std::uint32_t sum = 0;
  for (std::uint32_t i = 0; i < q; ++i) {
    for (std::uint32_t j = 0; j < r; ++j) {
      if (sum == 0) {
        continue;  // lands at the end of the loop; the barrier below is
      }            // still crossed by every rank
      sum += i * r + j;
    }
  }
  self.barrier();  // uniform: all ranks arrive whatever their q, r
}

void break_out_of_ragged_loop(Proc& self, const Layout& layout) {
  const std::uint32_t q = layout.tile_rows(self.rank());
  std::uint32_t found = 0;
  for (std::uint32_t i = 0; i < q; ++i) {
    if (i == 3) {
      found = i;
      break;  // leaves the loop only; the barrier below is uniform
    }
  }
  self.barrier();
  (void)found;
}

void lambda_return_under_taint(Proc& self, const Layout& layout) {
  const std::uint32_t rank = self.rank();
  const bool nonempty = layout.tile_rows(rank) > 0;
  auto strip_words = [&](std::uint32_t idx) -> std::size_t {
    if (!nonempty) {
      return 0;  // leaves the lambda, not the SPMD body below
    }
    return layout.rows_in(idx);
  };
  std::size_t total = 0;
  for (std::uint32_t idx = 0; idx < 4; ++idx) total += strip_words(idx);
  self.barrier();  // uniform: the guarded return above cannot skip this
  (void)total;
}

}  // namespace corpus
