// spmdlint corpus: R2 note-local-write.  Writes through Spread/SpreadVec
// local() storage must be annotated in the same barrier-delimited region.

#include <cstdint>
#include <vector>

namespace corpus {

struct Proc {
  std::uint32_t rank() const;
  void barrier();
};

template <typename T>
struct Spread {
  Spread(int machine, std::size_t n, const char* name);
  T* local(Proc& self);
  void note_local_write(Proc& self);
};

template <typename T>
struct SpreadVec {
  SpreadVec(int machine, const char* name);
  std::vector<T>& local(Proc& self);
  void note_local_write(Proc& self);
};

template <typename C, typename F>
void sort_by(C& c, F key);

// --- violations ------------------------------------------------------------

void unannotated_store(int machine, Proc& self) {
  Spread<std::uint32_t> data(machine, 16, "data");
  data.local(self)[0] = 1;  // VIOLATION: no note_local_write before barrier
  self.barrier();
}

void annotation_in_earlier_region(int machine, Proc& self) {
  Spread<std::uint32_t> data(machine, 16, "data");
  data.note_local_write(self);
  self.barrier();  // region boundary: the note above covers nothing below
  data.local(self)[1] = 2;  // VIOLATION: this region has no annotation
  self.barrier();
}

void unannotated_alias_mutation(int machine, Proc& self) {
  SpreadVec<std::uint32_t> items(machine, "items");
  auto& mine = items.local(self);
  mine.push_back(7);  // VIOLATION: mutation through alias, no annotation
  self.barrier();
}

// --- near-misses (must NOT fire) -------------------------------------------

void annotated_store(int machine, Proc& self) {
  Spread<std::uint32_t> data(machine, 16, "data");
  data.local(self)[0] = 1;
  data.note_local_write(self);  // same region: fine
  self.barrier();
}

void annotated_across_inline_lambda(int machine, Proc& self) {
  SpreadVec<std::uint32_t> items(machine, "items");
  auto& mine = items.local(self);
  mine.push_back(3);
  // An inline lambda (sort comparator) must not sever the region between
  // the mutation above and the annotation below.
  sort_by(mine, [](std::uint32_t v) { return v; });
  items.note_local_write(self);
  self.barrier();
}

void read_only_alias(int machine, Proc& self) {
  Spread<std::uint32_t> data(machine, 16, "data");
  auto view = data.local(self);
  const std::uint32_t x = view[0];  // read, not a write: fine
  (void)x;
  self.barrier();
}

}  // namespace corpus
