// spmdlint corpus: R1 barrier-divergence.  This file is linted, never
// compiled; it mirrors the runtime's idioms closely enough for the lexical
// rules to apply.  Expected findings live in expected.txt (exact lines).

#include <cstdint>

namespace corpus {

struct Proc {
  std::uint32_t rank() const;
  std::uint32_t nprocs() const;
  void barrier();
  void sync();
};

void broadcast(Proc& self, int* value, std::uint32_t root);

// --- violations ------------------------------------------------------------

void rank_guarded_barrier(Proc& self) {
  if (self.rank() == 0) {
    self.barrier();  // VIOLATION: only rank 0 arrives
  }
}

void tainted_guard_collective(Proc& self) {
  int value = 0;
  const bool is_manager = self.rank() == 0;
  if (is_manager) {
    broadcast(self, &value, 0);  // VIOLATION: collective under taint
  }
}

void else_branch_barrier(Proc& self) {
  if (self.rank() == 0) {
    self.sync();  // local split-phase completion, not a collective
  } else {
    self.barrier();  // VIOLATION: the else of a rank-if diverges too
  }
}

void rank_bounded_loop(Proc& self) {
  for (std::uint32_t i = 0; i < self.rank(); ++i) {
    self.barrier();  // VIOLATION: iteration count differs per rank
  }
}

void guarded_early_return(Proc& self) {
  if (self.rank() != 0) {
    return;  // VIOLATION: skips the barrier below on most ranks
  }
  self.barrier();
}

// --- near-misses (must NOT fire) -------------------------------------------

void barrier_after_guard(Proc& self) {
  if (self.rank() == 0) {
    self.sync();  // rank-guarded, but no collective inside
  }
  self.barrier();  // all ranks arrive: fine
}

void untainted_guard(Proc& self, bool option) {
  if (option) {
    self.barrier();  // every rank sees the same `option`: fine
  }
}

void guarded_return_no_barrier_after(Proc& self) {
  self.barrier();
  if (self.rank() != 0) {
    return;  // nothing collective follows in this function: fine
  }
  self.sync();
}

void suppressed_divergence(Proc& self) {
  if (self.rank() == 0) {
    self.barrier();  // spmdlint: allow(barrier-divergence) -- corpus: exercises trailing suppression
  }
}

}  // namespace corpus
