// spmdlint corpus: R3 named-spread.  Every Spread/SpreadVec construction
// must carry a debug-name string; references and parameters are bindings,
// not constructions.

#include <cstdint>
#include <string>

namespace corpus {

template <typename T>
struct Spread {
  Spread(int machine, std::size_t n);
  Spread(int machine, std::size_t n, const char* name);
};

template <typename T>
struct SpreadVec {
  SpreadVec(int machine);
  SpreadVec(int machine, std::string name);
};

// --- violations ------------------------------------------------------------

void unnamed_spread(int machine) {
  Spread<std::uint8_t> tiles(machine, 64);  // VIOLATION: no debug name
}

void unnamed_spreadvec(int machine) {
  SpreadVec<std::uint32_t> edges(machine);  // VIOLATION: no debug name
}

void unnamed_nested_template(int machine) {
  Spread<std::pair<std::uint32_t, std::uint32_t>> spans(machine, 8);  // VIOLATION
}

// --- near-misses (must NOT fire) -------------------------------------------

void named_spread(int machine) {
  Spread<std::uint8_t> tiles(machine, 64, "tiles");
}

void named_via_variable_is_still_flagged_elsewhere(int machine) {
  // A std::string variable would defeat the lexical check; the repo idiom
  // is a literal, and the corpus pins only the literal form as a pass.
  SpreadVec<std::uint32_t> edges(machine, "edges");
}

void reference_binding(Spread<std::uint8_t>& tiles, int machine) {
  // Parameters and references construct nothing.
  Spread<std::uint8_t>* alias = &tiles;
  (void)alias;
  (void)machine;
}

}  // namespace corpus
