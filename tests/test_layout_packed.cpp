// Differential proof of SpreadLayout::kPacked: every parallel kernel must
// produce byte-identical results whether Spread blocks are padded to the
// uniform max_tile_size() stride (kStrided, the PR-5 contract, kept as the
// oracle) or sized exactly per rank from the TileLayout prefix-sum table
// (kPacked, the default).  The sweep runs the ragged-shape catalog at
// p in {1, 4, 16}; the allocation-accounting tests then pin down *why*
// packed exists: strictly fewer payload bytes on ragged shapes, exactly
// equal bytes when the grid divides the image evenly.
//
// Labelled `shapes`; under the race-ledger preset the p = 4 ledger tests
// additionally certify both modes follow the publication protocol.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <memory>
#include <utility>
#include <vector>

#include "histcc/cc/label_prop.hpp"
#include "histcc/cc/parallel_cc.hpp"
#include "histcc/cc/region_graph.hpp"
#include "histcc/cc/stats_parallel.hpp"
#include "histcc/cc_seq/analysis.hpp"
#include "histcc/cc_seq/bfs_label.hpp"
#include "histcc/hist/equalize.hpp"
#include "histcc/hist/histogram.hpp"
#include "histcc/image/layout.hpp"
#include "histcc/morph/morphology.hpp"
#include "histcc/splitc/machine.hpp"
#include "histcc/splitc/spread.hpp"

namespace cc = histcc::cc;
namespace ccseq = histcc::ccseq;
namespace hist = histcc::hist;
namespace im = histcc::img;
namespace morph = histcc::morph;
namespace sc = histcc::splitc;

namespace {

// The ISSUE's ragged catalog.  640 x 480 is the expensive VGA frame: it
// runs through cc + histogram only (the cheap subset), the smaller shapes
// through every kernel.
constexpr std::pair<std::uint32_t, std::uint32_t> kShapes[] = {
    {1, 1}, {7, 513}, {1000, 3}, {97, 63}, {96, 64}, {640, 480},
};

constexpr bool is_cheap_subset_only(std::uint32_t h, std::uint32_t w) {
  return h >= 640 || w >= 640;
}

im::GreyImage make_random_shape(std::uint32_t h, std::uint32_t w,
                                std::uint32_t k, std::uint32_t seed) {
  im::GreyImage image(h, w);
  std::uint64_t state = seed;
  for (std::uint32_t i = 0; i < h; ++i) {
    for (std::uint32_t j = 0; j < w; ++j) {
      state += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = state;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      image(i, j) = static_cast<std::uint8_t>((z ^ (z >> 31)) % k);
    }
  }
  return image;
}

std::unique_ptr<sc::Machine> make_machine(std::uint32_t p,
                                          sc::SpreadLayout mode) {
  // Pin the mode explicitly: the suite must compare both layouts even
  // when CI exported HISTCC_SPREAD_LAYOUT for the rest of the matrix.
  // (unique_ptr because Machine is neither copyable nor movable.)
  auto machine = std::make_unique<sc::Machine>(p);
  machine->set_spread_layout(mode);
  return machine;
}

constexpr sc::SpreadLayout kModes[] = {sc::SpreadLayout::kStrided,
                                       sc::SpreadLayout::kPacked};

std::string shape_tag(std::uint32_t h, std::uint32_t w, std::uint32_t p) {
  return std::to_string(h) + "x" + std::to_string(w) + "_p" +
         std::to_string(p);
}

/// True when the grid divides the image evenly, i.e. every rank's tile has
/// the maximal size and packing reclaims nothing.
bool evenly_divisible(const im::TileLayout& layout) {
  for (std::uint32_t rank = 0; rank < layout.nprocs(); ++rank) {
    if (layout.tile_size(rank) != layout.max_tile_size()) return false;
  }
  return true;
}

class PackedDifferential : public ::testing::TestWithParam<std::uint32_t> {};

}  // namespace

// ---- Kernel-by-kernel equivalence: run in each mode, compare outputs.

TEST_P(PackedDifferential, ConnectedComponentsIdenticalAcrossModes) {
  const std::uint32_t p = GetParam();
  for (const auto& [h, w] : kShapes) {
    const auto image = make_random_shape(h, w, 4, h * 1000 + w);
    cc::CcOptions options;
    options.rule = ccseq::ColourRule::kSameColour;
    std::vector<im::LabelImage> results;
    for (const auto mode : kModes) {
      const auto owner = make_machine(p, mode);
      sc::Machine& machine = *owner;
      results.push_back(
          cc::connected_components_parallel(machine, image, options));
    }
    EXPECT_EQ(results[0], results[1]) << shape_tag(h, w, p);
    // Both modes must also still be *correct*, not merely consistent.
    EXPECT_EQ(results[1],
              ccseq::label_components_bfs(image, options.connectivity,
                                          options.rule))
        << shape_tag(h, w, p);
  }
}

TEST_P(PackedDifferential, HistogramIdenticalAcrossModes) {
  const std::uint32_t p = GetParam();
  for (const auto& [h, w] : kShapes) {
    const auto image = make_random_shape(h, w, 64, h * 31 + w);
    std::vector<std::vector<std::uint32_t>> results;
    for (const auto mode : kModes) {
      const auto owner = make_machine(p, mode);
      sc::Machine& machine = *owner;
      results.push_back(hist::histogram_parallel(machine, image, 64));
    }
    EXPECT_EQ(results[0], results[1]) << shape_tag(h, w, p);
    EXPECT_EQ(results[1], hist::histogram_seq(image, 64))
        << shape_tag(h, w, p);
  }
}

TEST_P(PackedDifferential, EqualizeIdenticalAcrossModes) {
  const std::uint32_t p = GetParam();
  for (const auto& [h, w] : kShapes) {
    if (is_cheap_subset_only(h, w)) continue;
    const auto image = make_random_shape(h, w, 256, h * 7 + w);
    std::vector<im::GreyImage> results;
    for (const auto mode : kModes) {
      const auto owner = make_machine(p, mode);
      sc::Machine& machine = *owner;
      const im::TileLayout layout(h, w, p);
      sc::Spread<std::uint8_t> tiles(machine, layout.tile_sizes(),
                                     "eq_tiles");
      layout.scatter(image, tiles);
      hist::equalize_parallel(machine, layout, tiles, 256);
      results.push_back(layout.gather(tiles));
    }
    EXPECT_EQ(results[0], results[1]) << shape_tag(h, w, p);
  }
}

TEST_P(PackedDifferential, LabelPropIdenticalAcrossModes) {
  const std::uint32_t p = GetParam();
  for (const auto& [h, w] : kShapes) {
    if (is_cheap_subset_only(h, w)) continue;  // label-prop is O(diameter)
    const auto image = make_random_shape(h, w, 2, h * 13 + w);
    std::vector<im::LabelImage> results;
    for (const auto mode : kModes) {
      const auto owner = make_machine(p, mode);
      sc::Machine& machine = *owner;
      results.push_back(cc::connected_components_label_prop(machine, image));
    }
    EXPECT_EQ(results[0], results[1]) << shape_tag(h, w, p);
  }
}

TEST_P(PackedDifferential, RegionGraphAndStatsIdenticalAcrossModes) {
  const std::uint32_t p = GetParam();
  for (const auto& [h, w] : kShapes) {
    if (is_cheap_subset_only(h, w)) continue;
    const auto image = make_random_shape(h, w, 3, h * 3 + w);
    const auto labels = ccseq::label_components_bfs(
        image, ccseq::Connectivity::kEight, ccseq::ColourRule::kSameColour);
    std::vector<std::vector<cc::RegionEdge>> edges;
    std::vector<std::vector<ccseq::ComponentStats>> stats;
    for (const auto mode : kModes) {
      const auto owner = make_machine(p, mode);
      sc::Machine& machine = *owner;
      edges.push_back(cc::region_adjacency_parallel(machine, labels));
      stats.push_back(cc::component_stats_parallel(machine, image, labels));
    }
    EXPECT_EQ(edges[0], edges[1]) << shape_tag(h, w, p);
    ASSERT_EQ(stats[0].size(), stats[1].size()) << shape_tag(h, w, p);
    for (std::size_t i = 0; i < stats[0].size(); ++i) {
      const auto& a = stats[0][i];
      const auto& b = stats[1][i];
      EXPECT_EQ(a.label, b.label) << shape_tag(h, w, p);
      EXPECT_EQ(a.colour, b.colour) << shape_tag(h, w, p);
      EXPECT_EQ(a.pixels, b.pixels) << shape_tag(h, w, p);
      EXPECT_EQ(a.min_row, b.min_row) << shape_tag(h, w, p);
      EXPECT_EQ(a.min_col, b.min_col) << shape_tag(h, w, p);
      EXPECT_EQ(a.max_row, b.max_row) << shape_tag(h, w, p);
      EXPECT_EQ(a.max_col, b.max_col) << shape_tag(h, w, p);
      EXPECT_EQ(a.sum_row, b.sum_row) << shape_tag(h, w, p);
      EXPECT_EQ(a.sum_col, b.sum_col) << shape_tag(h, w, p);
    }
  }
}

TEST_P(PackedDifferential, MorphologyIdenticalAcrossModes) {
  const std::uint32_t p = GetParam();
  for (const auto& [h, w] : kShapes) {
    if (is_cheap_subset_only(h, w)) continue;
    const auto image = make_random_shape(h, w, 2, h * 57 + w);
    std::vector<im::GreyImage> eroded;
    std::vector<im::GreyImage> dilated;
    for (const auto mode : kModes) {
      const auto owner = make_machine(p, mode);
      sc::Machine& machine = *owner;
      const im::TileLayout layout(h, w, p);
      sc::Spread<std::uint8_t> tiles(machine, layout.tile_sizes(),
                                     "morph_tiles");
      sc::Spread<std::uint8_t> out(machine, layout.tile_sizes(),
                                   "morph_out");
      layout.scatter(image, tiles);
      morph::erode_parallel(machine, layout, tiles, out);
      eroded.push_back(layout.gather(out));
      morph::dilate_parallel(machine, layout, tiles, out);
      dilated.push_back(layout.gather(out));
    }
    EXPECT_EQ(eroded[0], eroded[1]) << shape_tag(h, w, p);
    EXPECT_EQ(dilated[0], dilated[1]) << shape_tag(h, w, p);
  }
}

INSTANTIATE_TEST_SUITE_P(Procs, PackedDifferential,
                         ::testing::Values(1, 4, 16));

// ---- Ledger certification at p = 4: under the race-ledger preset both
// allocation modes must follow the publication protocol on every shape
// (RacePolicy::kThrow turns a violation into a test failure); in plain
// builds this is a both-modes correctness smoke.
TEST(PackedLedger, BothModesRunLedgerCleanAtP4) {
  for (const auto mode : kModes) {
    for (const auto& [h, w] : kShapes) {
      const auto owner = make_machine(4, mode);
      sc::Machine& machine = *owner;
      const auto image = make_random_shape(h, w, 2, h * 31 + w);
      EXPECT_NO_THROW({
        (void)cc::connected_components_parallel(machine, image,
                                                cc::CcOptions{});
      }) << h << "x" << w;
      EXPECT_NO_THROW({ (void)hist::histogram_parallel(machine, image, 2); })
          << h << "x" << w;
    }
  }
}

// ---- Allocation accounting: packing must reclaim bytes exactly where the
// layout is ragged and nowhere else.

TEST(PackedFootprint, SpreadFootprintMatchesTheLayoutArithmetic) {
  for (const auto& [h, w] : kShapes) {
    for (const std::uint32_t p : {1u, 4u, 16u}) {
      const im::TileLayout layout(h, w, p);
      std::size_t packed_sum = 0;
      for (std::uint32_t rank = 0; rank < p; ++rank) {
        packed_sum += layout.tile_size(rank);
      }
      const auto packed = make_machine(p, sc::SpreadLayout::kPacked);
      sc::Spread<std::uint32_t> a(*packed, layout.tile_sizes(), "a");
      EXPECT_EQ(a.footprint_bytes(), packed_sum * sizeof(std::uint32_t))
          << shape_tag(h, w, p);

      const auto strided = make_machine(p, sc::SpreadLayout::kStrided);
      sc::Spread<std::uint32_t> b(*strided, layout.tile_sizes(), "b");
      EXPECT_EQ(b.footprint_bytes(),
                std::size_t{p} * layout.max_tile_size() *
                    sizeof(std::uint32_t))
          << shape_tag(h, w, p);

      EXPECT_LE(a.footprint_bytes(), b.footprint_bytes())
          << shape_tag(h, w, p);
      EXPECT_EQ(a.footprint_bytes() == b.footprint_bytes(),
                evenly_divisible(layout))
          << shape_tag(h, w, p);
      // per_proc() still reports the uniform stride in both modes, so
      // capacity reasoning against the old contract stays valid.
      EXPECT_EQ(a.per_proc(), layout.max_tile_size());
      EXPECT_EQ(b.per_proc(), layout.max_tile_size());
    }
  }
}

namespace {

/// Spread payload bytes a full cc + histogram pipeline allocates on a
/// fresh machine in `mode`.
std::uint64_t pipeline_alloc_bytes(std::uint32_t h, std::uint32_t w,
                                   std::uint32_t p, sc::SpreadLayout mode) {
  const auto owner = make_machine(p, mode);
  sc::Machine& machine = *owner;
  const auto image = make_random_shape(h, w, 4, h * 11 + w);
  machine.reset_alloc_stats();
  (void)cc::connected_components_parallel(machine, image, cc::CcOptions{});
  (void)hist::histogram_parallel(machine, image, 16);
  return machine.spread_bytes_allocated();
}

}  // namespace

TEST(PackedFootprint, KernelRunsNeverAllocateMoreThanStrided) {
  for (const auto& [h, w] : kShapes) {
    if (is_cheap_subset_only(h, w)) continue;
    for (const std::uint32_t p : {1u, 4u, 16u}) {
      const auto packed =
          pipeline_alloc_bytes(h, w, p, sc::SpreadLayout::kPacked);
      const auto strided =
          pipeline_alloc_bytes(h, w, p, sc::SpreadLayout::kStrided);
      EXPECT_LE(packed, strided) << shape_tag(h, w, p);
      // At p = 1 the single block IS the image: nothing to reclaim.
      if (p == 1) {
        EXPECT_EQ(packed, strided) << shape_tag(h, w, p);
      }
    }
  }
}

TEST(PackedFootprint, RaggedShapesReclaimStrictly) {
  // The ISSUE's acceptance shapes: very wide and very tall at p = 4 carry
  // real max_tile_size() padding, so packed must land strictly below.
  for (const auto& [h, w] :
       {std::pair{7u, 513u}, std::pair{1000u, 3u}, std::pair{97u, 63u}}) {
    const auto packed =
        pipeline_alloc_bytes(h, w, 4, sc::SpreadLayout::kPacked);
    const auto strided =
        pipeline_alloc_bytes(h, w, 4, sc::SpreadLayout::kStrided);
    EXPECT_LT(packed, strided) << h << "x" << w;
  }
}

TEST(PackedFootprint, DivisibleShapesAllocateIdentically) {
  // 96 x 64 divides evenly on the 2 x 2 and 4 x 4 grids: every tile is
  // maximal, packing reclaims nothing, and the two modes must agree to
  // the byte — the "equality exactly on divisible shapes" half of the
  // accounting contract.
  for (const std::uint32_t p : {4u, 16u}) {
    ASSERT_TRUE(evenly_divisible(im::TileLayout(96, 64, p)));
    EXPECT_EQ(pipeline_alloc_bytes(96, 64, p, sc::SpreadLayout::kPacked),
              pipeline_alloc_bytes(96, 64, p, sc::SpreadLayout::kStrided))
        << "p=" << p;
  }
}

TEST(PackedFootprint, AllocCountersSurviveRunsAndResetExplicitly) {
  const auto owner = make_machine(4, sc::SpreadLayout::kPacked);
  sc::Machine& machine = *owner;
  EXPECT_EQ(machine.spread_bytes_allocated(), 0u);
  EXPECT_EQ(machine.spread_alloc_count(), 0u);
  const im::TileLayout layout(97, 63, 4);
  sc::Spread<std::uint8_t> tiles(machine, layout.tile_sizes(), "tiles");
  EXPECT_EQ(machine.spread_bytes_allocated(), tiles.footprint_bytes());
  EXPECT_EQ(machine.spread_alloc_count(), 1u);
  // run() keeps the counters (footprints are per-workload, not per-run) …
  machine.run([&](sc::Proc& self) { (void)tiles.local(self); });
  EXPECT_EQ(machine.spread_alloc_count(), 1u);
  // … and only the explicit reset clears them.
  machine.reset_alloc_stats();
  EXPECT_EQ(machine.spread_bytes_allocated(), 0u);
  EXPECT_EQ(machine.spread_alloc_count(), 0u);
}
