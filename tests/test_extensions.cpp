// Tests for the library extensions: fully parallel histogram equalization
// (Algorithm 2 broadcast of the remap table) and the "complete image per
// PE" replicated baseline.
#include <gtest/gtest.h>

#include "histcc/cc/replicated.hpp"
#include "histcc/cc_seq/bfs_label.hpp"
#include "histcc/hist/equalize.hpp"
#include "histcc/hist/histogram.hpp"
#include "histcc/image/generators.hpp"
#include "histcc/splitc/machine.hpp"
#include "histcc/util/require.hpp"
#include "histcc/util/rng.hpp"

namespace cc = histcc::cc;
namespace cs = histcc::ccseq;
namespace hh = histcc::hist;
namespace im = histcc::img;
namespace sc = histcc::splitc;

class EqualizeParallelSweep : public ::testing::TestWithParam<std::uint32_t> {
};

TEST_P(EqualizeParallelSweep, MatchesSequentialEqualize) {
  const std::uint32_t p = GetParam();
  const std::uint32_t n = 64, k = 256;
  const auto image = im::make_darpa_like(n, 12345);
  const auto expected = hh::equalize(image, k);

  sc::Machine machine(p);
  const im::TileLayout layout(n, p);
  sc::Spread<std::uint8_t> tiles(machine, layout.max_tile_size());
  layout.scatter(image, tiles);
  hh::equalize_parallel(machine, layout, tiles, k);
  EXPECT_EQ(layout.gather(tiles), expected);
}

INSTANTIATE_TEST_SUITE_P(Procs, EqualizeParallelSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

TEST(EqualizeParallelTest, LowContrastInputGainsRange) {
  const std::uint32_t n = 64, k = 256, p = 8;
  im::GreyImage image(n, n);
  histcc::util::Rng rng(5);
  for (auto& px : image.pixels()) {
    px = static_cast<std::uint8_t>(120 + rng.next_below(8));
  }
  sc::Machine machine(p);
  const im::TileLayout layout(n, p);
  sc::Spread<std::uint8_t> tiles(machine, layout.max_tile_size());
  layout.scatter(image, tiles);
  hh::equalize_parallel(machine, layout, tiles, k);
  const auto out = layout.gather(tiles);
  std::uint8_t lo = 255, hi = 0;
  for (const auto px : out.pixels()) {
    lo = std::min(lo, px);
    hi = std::max(hi, px);
  }
  EXPECT_EQ(lo, 0);
  EXPECT_GE(hi, 250);
}

TEST(EqualizeParallelTest, RequiresPDividesK) {
  sc::Machine machine(32);
  const im::TileLayout layout(64, 32);
  sc::Spread<std::uint8_t> tiles(machine, layout.max_tile_size());
  EXPECT_THROW(hh::equalize_parallel(machine, layout, tiles, 16),
               histcc::util::contract_error);
}

class ReplicatedSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(ReplicatedSweep, MatchesSequential) {
  const auto [pattern, p] = GetParam();
  const auto image =
      im::make_test_pattern(static_cast<im::TestPattern>(pattern), 64);
  sc::Machine machine(p);
  const auto labels = cc::connected_components_replicated(machine, image);
  EXPECT_EQ(labels, cs::label_components_bfs(image));
}

INSTANTIATE_TEST_SUITE_P(Catalog, ReplicatedSweep,
                         ::testing::Combine(::testing::Values(1, 5, 9),
                                            ::testing::Values(1, 4, 16)));

TEST(ReplicatedTest, GreyRuleAndFourConn) {
  const auto image = im::make_darpa_like(64, 9);
  sc::Machine machine(8);
  const auto labels = cc::connected_components_replicated(
      machine, image, cs::Connectivity::kFour, cs::ColourRule::kSameColour);
  EXPECT_EQ(labels, cs::label_components_bfs(image, cs::Connectivity::kFour,
                                             cs::ColourRule::kSameColour));
}

TEST(ReplicatedTest, CommCostIsTheWholeImageTwice) {
  // The baseline's downfall: every processor receives ~2 n^2 pixel-words
  // (Algorithm 2 over n^2 elements), where the paper's algorithm moves
  // O(n) border words.
  const std::uint32_t n = 64, p = 8;
  const auto image = im::make_percolation(n, 0.5, 3);
  sc::Machine machine(p);
  (void)cc::connected_components_replicated(machine, image);
  const auto words = machine.max_stats().words;
  const auto total = static_cast<std::uint64_t>(n) * n;
  EXPECT_EQ(words, 2 * (total - total / p));
}

TEST(ReplicatedTest, ComputationDoesNotScaleWithP) {
  const auto image = im::make_percolation(64, 0.5, 3);
  std::uint64_t ops_p2 = 0, ops_p16 = 0;
  {
    sc::Machine machine(2);
    (void)cc::connected_components_replicated(machine, image);
    ops_p2 = machine.max_stats().local_ops;
  }
  {
    sc::Machine machine(16);
    (void)cc::connected_components_replicated(machine, image);
    ops_p16 = machine.max_stats().local_ops;
  }
  EXPECT_EQ(ops_p2, ops_p16) << "replicated work is independent of p";
}
