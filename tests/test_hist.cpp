// Tests for histogramming (Section 4): sequential reference, the parallel
// algorithm across p and k regimes (k < p, k = p, k > p), the paper's
// correctness criteria (sum = n^2, exact band areas), and equalization.
#include <gtest/gtest.h>

#include <numeric>

#include "histcc/hist/equalize.hpp"
#include "histcc/hist/histogram.hpp"
#include "histcc/image/generators.hpp"
#include "histcc/splitc/machine.hpp"
#include "histcc/util/require.hpp"
#include "histcc/util/rng.hpp"

namespace hh = histcc::hist;
namespace im = histcc::img;
namespace sc = histcc::splitc;

TEST(HistogramSeqTest, CountsAreExact) {
  im::GreyImage image(2, 4, 0);
  image(0, 1) = 3;
  image(1, 2) = 3;
  image(1, 3) = 7;
  const auto counts = hh::histogram_seq(image, 8);
  EXPECT_EQ(counts[0], 5u);
  EXPECT_EQ(counts[3], 2u);
  EXPECT_EQ(counts[7], 1u);
  EXPECT_EQ(counts[1] + counts[2] + counts[4] + counts[5] + counts[6], 0u);
}

TEST(HistogramSeqTest, RejectsBadK) {
  const im::GreyImage image(4, 4, 0);
  EXPECT_THROW((void)hh::histogram_seq(image, 3), histcc::util::contract_error);
  EXPECT_THROW((void)hh::histogram_seq(image, 0), histcc::util::contract_error);
  EXPECT_THROW((void)hh::histogram_seq(image, 512),
               histcc::util::contract_error);
}

TEST(HistogramSeqTest, RejectsOutOfRangePixels) {
  im::GreyImage image(4, 4, 0);
  image(1, 1) = 9;
  EXPECT_THROW((void)hh::histogram_seq(image, 8),
               histcc::util::contract_error);
}

// The paper's first correctness criterion: sum of H equals n^2.
// Sweep p x k including k < p, k = p, and k > p.
class HistParallel
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(HistParallel, MatchesSequential) {
  const auto [p, k] = GetParam();
  const std::uint32_t n = 64;
  const auto image = im::make_random_grey(n, k, 1234 + p + k);
  const auto expected = hh::histogram_seq(image, k);

  sc::Machine machine(p);
  const auto counts = hh::histogram_parallel(machine, image, k);
  EXPECT_EQ(counts, expected);
  const auto total =
      std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  EXPECT_EQ(total, static_cast<std::uint64_t>(n) * n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HistParallel,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 16, 32),
                       ::testing::Values(2, 4, 16, 32, 64, 256)));

// The paper's second criterion: for regular patterns each H[i]/n^2 equals
// the fraction of area that grey level i covers.
TEST(HistParallelTest, BandedImageHasExactAreas) {
  const std::uint32_t n = 64, k = 8;
  const auto image = im::make_banded_grey(n, k);
  sc::Machine machine(8);
  const auto counts = hh::histogram_parallel(machine, image, k);
  for (const auto c : counts) EXPECT_EQ(c, n * n / k);
}

TEST(HistParallelTest, WorksOnPredistributedTiles) {
  const std::uint32_t n = 64, k = 16, p = 8;
  const auto image = im::make_random_grey(n, k, 77);
  sc::Machine machine(p);
  const im::TileLayout layout(n, p);
  sc::Spread<std::uint8_t> tiles(machine, layout.max_tile_size());
  layout.scatter(image, tiles);
  const auto counts = hh::histogram_parallel(machine, layout, tiles, k);
  EXPECT_EQ(counts, hh::histogram_seq(image, k));
}

TEST(HistParallelTest, PhaseTimesArePopulated) {
  const auto image = im::make_random_grey(128, 256, 5);
  sc::Machine machine(4);
  hh::HistPhases phases;
  (void)hh::histogram_parallel(machine, image, 256, &phases);
  EXPECT_GT(phases.tally_s, 0.0);
  EXPECT_GT(phases.transpose_s, 0.0);
  EXPECT_GT(phases.combine_s, 0.0);
  EXPECT_GT(phases.gather_s, 0.0);
}

// Eq. (3): communication volume is independent of the image size n.
TEST(HistParallelTest, CommVolumeIndependentOfN) {
  const std::uint32_t p = 8, k = 256;
  std::uint64_t words_small = 0, words_large = 0;
  {
    sc::Machine machine(p);
    (void)hh::histogram_parallel(machine,
                                 im::make_random_grey(64, k, 1), k);
    words_small = machine.total_stats().words;
  }
  {
    sc::Machine machine(p);
    (void)hh::histogram_parallel(machine,
                                 im::make_random_grey(256, k, 2), k);
    words_large = machine.total_stats().words;
  }
  EXPECT_EQ(words_small, words_large);
  EXPECT_GT(words_small, 0u);
}

// And it is bounded by roughly 2k words per processor (two k-sized
// movements) — the 2(tau + k) of eq. (3).
TEST(HistParallelTest, CommVolumeBoundedByTwoK) {
  const std::uint32_t p = 16, k = 256;
  sc::Machine machine(p);
  (void)hh::histogram_parallel(machine, im::make_random_grey(64, k, 3), k);
  EXPECT_LE(machine.max_stats().words, 2u * k);
}

TEST(HistParallelTest, OutOfRangePixelFailsCleanly) {
  im::GreyImage image(64, 64, 0);
  image(10, 10) = 200;  // >= k below
  sc::Machine machine(4);
  EXPECT_THROW((void)hh::histogram_parallel(machine, image, 16),
               histcc::util::contract_error);
  // The machine must remain usable after the aborted SPMD program.
  const auto counts =
      hh::histogram_parallel(machine, im::make_random_grey(64, 16, 9), 16);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0u), 64u * 64u);
}

TEST(EqualizeTest, MapIsMonotonic) {
  const auto image = im::make_darpa_like(128, 3);
  const auto counts = hh::histogram_seq(image, 256);
  const auto map = hh::equalization_map(counts, image.size());
  for (std::size_t g = 1; g < map.size(); ++g) {
    EXPECT_LE(map[g - 1], map[g]);
  }
}

TEST(EqualizeTest, FlattensConcentratedHistogram) {
  // An image squeezed into levels 100..115 must spread to the full range.
  im::GreyImage image(64, 64);
  histcc::util::Rng rng(8);
  for (auto& px : image.pixels()) {
    px = static_cast<std::uint8_t>(100 + rng.next_below(16));
  }
  const auto out = hh::equalize(image, 256);
  std::uint8_t lo = 255, hi = 0;
  for (const auto px : out.pixels()) {
    lo = std::min(lo, px);
    hi = std::max(hi, px);
  }
  EXPECT_EQ(lo, 0);
  EXPECT_GE(hi, 250);
}

TEST(EqualizeTest, UniformImageIsStable) {
  const im::GreyImage image(16, 16, 5);
  const auto out = hh::equalize(image, 16);
  for (const auto px : out.pixels()) EXPECT_EQ(px, 0);
}

TEST(EqualizeTest, PreservesPixelCount) {
  const auto image = im::make_random_grey(64, 64, 21);
  const auto out = hh::equalize(image, 64);
  EXPECT_EQ(out.size(), image.size());
  // Equalization is a per-level remap: equal inputs stay equal.
  for (std::size_t idx = 1; idx < image.size(); ++idx) {
    if (image.pixels()[idx] == image.pixels()[0]) {
      EXPECT_EQ(out.pixels()[idx], out.pixels()[0]);
    }
  }
}
