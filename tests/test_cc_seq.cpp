// Tests for the sequential labelers (Section 5.1 BFS and the union-find
// baseline): known tiny cases, connectivity/colour-rule semantics, the
// canonical labeling property, and cross-validation of the two labelers.
#include <gtest/gtest.h>

#include "histcc/cc_seq/analysis.hpp"
#include "histcc/cc_seq/bfs_label.hpp"
#include "histcc/cc_seq/union_find.hpp"
#include "histcc/image/generators.hpp"

namespace cs = histcc::ccseq;
namespace im = histcc::img;

namespace {

im::GreyImage from_rows(const std::vector<std::vector<int>>& rows) {
  im::GreyImage image(static_cast<std::uint32_t>(rows.size()),
                      static_cast<std::uint32_t>(rows[0].size()));
  for (std::uint32_t i = 0; i < image.height(); ++i) {
    for (std::uint32_t j = 0; j < image.width(); ++j) {
      image(i, j) = static_cast<std::uint8_t>(rows[i][j]);
    }
  }
  return image;
}

}  // namespace

TEST(BfsLabelTest, EmptyImageAllBackground) {
  const im::GreyImage image(4, 4, 0);
  const auto labels = cs::label_components_bfs(image);
  for (const auto l : labels.pixels()) EXPECT_EQ(l, 0u);
}

TEST(BfsLabelTest, SingleComponentGetsSeedLabel) {
  const im::GreyImage image(3, 3, 1);
  const auto labels = cs::label_components_bfs(image);
  for (const auto l : labels.pixels()) EXPECT_EQ(l, 1u);  // seed at (0,0)
}

TEST(BfsLabelTest, CanonicalLabelsAreMinIndexPlusOne) {
  const auto image = from_rows({{1, 0, 1},   //
                                {0, 0, 0},   //
                                {1, 0, 1}});
  const auto labels = cs::label_components_bfs(image, cs::Connectivity::kFour);
  EXPECT_EQ(labels(0, 0), 1u);  // index 0
  EXPECT_EQ(labels(0, 2), 3u);  // index 2
  EXPECT_EQ(labels(2, 0), 7u);  // index 6
  EXPECT_EQ(labels(2, 2), 9u);  // index 8
  EXPECT_EQ(cs::count_components(labels), 4u);
}

TEST(BfsLabelTest, DiagonalConnectivityDiffers) {
  const auto image = from_rows({{1, 0},  //
                                {0, 1}});
  const auto four = cs::label_components_bfs(image, cs::Connectivity::kFour);
  const auto eight = cs::label_components_bfs(image, cs::Connectivity::kEight);
  EXPECT_EQ(cs::count_components(four), 2u);
  EXPECT_EQ(cs::count_components(eight), 1u);
  EXPECT_EQ(eight(1, 1), eight(0, 0));
}

TEST(BfsLabelTest, ColourRuleSeparatesGreyLevels) {
  const auto image = from_rows({{1, 2},  //
                                {2, 1}});
  const auto binary = cs::label_components_bfs(image, cs::Connectivity::kEight,
                                               cs::ColourRule::kBinary);
  const auto grey = cs::label_components_bfs(image, cs::Connectivity::kEight,
                                             cs::ColourRule::kSameColour);
  EXPECT_EQ(cs::count_components(binary), 1u);
  EXPECT_EQ(cs::count_components(grey), 2u);
  EXPECT_EQ(grey(0, 0), grey(1, 1));
  EXPECT_EQ(grey(0, 1), grey(1, 0));
  EXPECT_NE(grey(0, 0), grey(0, 1));
}

TEST(BfsLabelTest, SnakeComponentIsOne) {
  const auto image = from_rows({{1, 1, 1, 1, 1},
                                {0, 0, 0, 0, 1},
                                {1, 1, 1, 1, 1},
                                {1, 0, 0, 0, 0},
                                {1, 1, 1, 1, 1}});
  const auto labels = cs::label_components_bfs(image, cs::Connectivity::kFour);
  EXPECT_EQ(cs::count_components(labels), 1u);
}

TEST(UnionFindTest, MatchesBfsExactlyOnPatterns) {
  for (int id = 1; id <= im::kNumTestPatterns; ++id) {
    const auto image =
        im::make_test_pattern(static_cast<im::TestPattern>(id), 64);
    for (const auto conn :
         {cs::Connectivity::kFour, cs::Connectivity::kEight}) {
      const auto bfs = cs::label_components_bfs(image, conn);
      const auto uf = cs::label_components_unionfind(image, conn);
      EXPECT_EQ(bfs, uf) << "pattern " << id << " conn "
                         << static_cast<int>(conn);
    }
  }
}

TEST(UnionFindTest, MatchesBfsOnGreyImages) {
  const auto image = im::make_darpa_like(96, 11);
  for (const auto conn : {cs::Connectivity::kFour, cs::Connectivity::kEight}) {
    const auto bfs = cs::label_components_bfs(image, conn,
                                              cs::ColourRule::kSameColour);
    const auto uf = cs::label_components_unionfind(
        image, conn, cs::ColourRule::kSameColour);
    EXPECT_EQ(bfs, uf);
  }
}

TEST(UnionFindTest, MatchesBfsOnPercolation) {
  for (const double occ : {0.2, 0.4, 0.592746, 0.8}) {
    const auto image = im::make_percolation(80, occ, 21);
    const auto bfs = cs::label_components_bfs(image);
    const auto uf = cs::label_components_unionfind(image);
    EXPECT_EQ(bfs, uf) << "occupancy " << occ;
  }
}

TEST(DisjointSetsTest, RootIsMinimumMember) {
  cs::DisjointSets sets(10);
  sets.unite(3, 7);
  sets.unite(7, 5);
  sets.unite(9, 3);
  EXPECT_EQ(sets.find(7), 3u);
  EXPECT_EQ(sets.find(5), 3u);
  EXPECT_EQ(sets.find(9), 3u);
  EXPECT_EQ(sets.find(0), 0u);
  sets.unite(5, 1);
  EXPECT_EQ(sets.find(9), 1u);
}

TEST(AnalysisTest, ComponentSizesSorted) {
  const auto image = from_rows({{1, 1, 0, 1},  //
                                {1, 0, 0, 0},  //
                                {0, 0, 0, 0}});
  const auto labels = cs::label_components_bfs(image, cs::Connectivity::kFour);
  const auto sizes = cs::component_sizes(labels);
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0].pixels, 3u);
  EXPECT_EQ(sizes[1].pixels, 1u);
  EXPECT_EQ(sizes[1].label, 4u);  // the singleton at index 3
}

TEST(AnalysisTest, PartitionsEqualDetectsMismatch) {
  const auto image = from_rows({{1, 0, 1}});
  auto a = cs::label_components_bfs(image);
  auto b = a;
  EXPECT_TRUE(cs::partitions_equal(a, b));
  // Renaming labels consistently keeps partitions equal.
  for (auto& l : b.pixels()) {
    if (l != 0) l += 100;
  }
  EXPECT_TRUE(cs::partitions_equal(a, b));
  // Merging two labels into one breaks it.
  auto c = a;
  c(0, 2) = c(0, 0);
  EXPECT_FALSE(cs::partitions_equal(a, c));
  // And so does disagreeing about background.
  auto d = a;
  d(0, 1) = 99;
  EXPECT_FALSE(cs::partitions_equal(a, d));
}

TEST(AnalysisTest, IsValidLabelingAcceptsAndRejects) {
  const auto image = im::make_test_pattern(im::TestPattern::kFourSquares, 64);
  auto labels = cs::label_components_bfs(image);
  EXPECT_TRUE(cs::is_valid_labeling(image, labels, cs::Connectivity::kEight,
                                    cs::ColourRule::kBinary));
  labels(8, 8) = 77777;  // breaks component constancy
  EXPECT_FALSE(cs::is_valid_labeling(image, labels, cs::Connectivity::kEight,
                                     cs::ColourRule::kBinary));
}

TEST(AnalysisTest, RelabelConsecutive) {
  const auto image = from_rows({{1, 0, 1, 0, 1}});
  auto labels = cs::label_components_bfs(image);
  const auto count = cs::relabel_consecutive(labels);
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(labels(0, 0), 1u);
  EXPECT_EQ(labels(0, 2), 2u);
  EXPECT_EQ(labels(0, 4), 3u);
}

// Known component counts for the catalog patterns at n = 64 are locked in
// as regression anchors (stripe width 4 at n = 64).
TEST(CatalogComponents, HorizontalBarsCount) {
  const auto image =
      im::make_test_pattern(im::TestPattern::kHorizontalBars, 64);
  const auto labels = cs::label_components_bfs(image);
  // Bars at i/4 even: 8 stripes.
  EXPECT_EQ(cs::count_components(labels), 8u);
}

TEST(CatalogComponents, VerticalBarsCount) {
  const auto image = im::make_test_pattern(im::TestPattern::kVerticalBars, 64);
  EXPECT_EQ(cs::count_components(cs::label_components_bfs(image)), 8u);
}

TEST(CatalogComponents, CrossAndDiscAreSingle) {
  for (const auto id : {im::TestPattern::kCross, im::TestPattern::kDisc}) {
    const auto image = im::make_test_pattern(id, 64);
    EXPECT_EQ(cs::count_components(cs::label_components_bfs(image)), 1u);
  }
}

TEST(CatalogComponents, FourSquaresAreFour) {
  const auto image = im::make_test_pattern(im::TestPattern::kFourSquares, 64);
  EXPECT_EQ(cs::count_components(cs::label_components_bfs(image)), 4u);
}

TEST(CatalogComponents, DualSpiralIsTwoArms) {
  const auto image = im::make_test_pattern(im::TestPattern::kDualSpiral, 256);
  EXPECT_EQ(cs::count_components(cs::label_components_bfs(image)), 2u);
}

// ---- Hoshen-Kopelman cross-checks ----
#include "histcc/cc_seq/hoshen_kopelman.hpp"

TEST(HoshenKopelmanTest, MatchesBfsOnPatterns) {
  for (int id = 1; id <= im::kNumTestPatterns; ++id) {
    const auto image =
        im::make_test_pattern(static_cast<im::TestPattern>(id), 64);
    for (const auto conn :
         {cs::Connectivity::kFour, cs::Connectivity::kEight}) {
      EXPECT_EQ(cs::label_components_hoshen_kopelman(image, conn),
                cs::label_components_bfs(image, conn))
          << "pattern " << id;
    }
  }
}

TEST(HoshenKopelmanTest, MatchesBfsOnPercolationSweep) {
  for (const double occ : {0.2, 0.5, 0.592746, 0.8, 1.0}) {
    const auto image = im::make_percolation(96, occ, 31);
    EXPECT_EQ(cs::label_components_hoshen_kopelman(image),
              cs::label_components_bfs(image))
        << "occupancy " << occ;
  }
}

TEST(HoshenKopelmanTest, GreyColourRule) {
  const auto image = im::make_darpa_like(96, 13);
  for (const auto conn : {cs::Connectivity::kFour, cs::Connectivity::kEight}) {
    EXPECT_EQ(cs::label_components_hoshen_kopelman(
                  image, conn, cs::ColourRule::kSameColour),
              cs::label_components_bfs(image, conn,
                                       cs::ColourRule::kSameColour));
  }
}

TEST(HoshenKopelmanTest, UShapeMergesAcrossScan) {
  // The classic HK stress: two arms discovered separately, merged at the
  // bottom of the U; canonical label must be the first arm's.
  const auto image = from_rows({{1, 0, 1},  //
                                {1, 0, 1},  //
                                {1, 1, 1}});
  const auto labels = cs::label_components_hoshen_kopelman(image);
  for (std::uint32_t i = 0; i < 3; ++i) {
    for (std::uint32_t j = 0; j < 3; ++j) {
      if (image(i, j)) {
        EXPECT_EQ(labels(i, j), 1u);
      }
    }
  }
}

// ---- Section 3 augmentation semantics: images 1-4, 7, 9 are "augmented"
// (component count grows with n), images 5, 6, 8 are "scaled" (constant).
TEST(CatalogComponents, AugmentedBarsGrowWithN) {
  auto bars = [](std::uint32_t n) {
    return cs::count_components(cs::label_components_bfs(
        im::make_test_pattern(im::TestPattern::kHorizontalBars, n)));
  };
  EXPECT_EQ(bars(64), 8u);
  EXPECT_EQ(bars(128), 16u);
  EXPECT_EQ(bars(256), 32u);
}

TEST(CatalogComponents, ScaledShapesStayConstant) {
  for (const auto id : {im::TestPattern::kCross, im::TestPattern::kDisc}) {
    for (const std::uint32_t n : {64u, 128u, 256u}) {
      EXPECT_EQ(cs::count_components(cs::label_components_bfs(
                    im::make_test_pattern(id, n))),
                1u)
          << "pattern " << static_cast<int>(id) << " n=" << n;
    }
  }
  auto squares = [](std::uint32_t n) {
    return cs::count_components(cs::label_components_bfs(
        im::make_test_pattern(im::TestPattern::kFourSquares, n)));
  };
  EXPECT_EQ(squares(64), 4u);
  EXPECT_EQ(squares(256), 4u);
}

TEST(CatalogComponents, AugmentedCirclesGrowWithN) {
  auto rings = [](std::uint32_t n) {
    return cs::count_components(cs::label_components_bfs(
        im::make_test_pattern(im::TestPattern::kCircles, n)));
  };
  EXPECT_GT(rings(256), rings(64));
}

TEST(CatalogComponents, SpiralStaysTwoArmsAtLargeSizes) {
  for (const std::uint32_t n : {512u, 1024u}) {
    EXPECT_EQ(cs::count_components(cs::label_components_bfs(
                  im::make_test_pattern(im::TestPattern::kDualSpiral, n))),
              2u)
        << "n=" << n;
  }
}
