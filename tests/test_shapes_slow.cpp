// The heavyweight half of the shape sweep (see test_shapes.cpp): a full
// 640 x 480 VGA frame — the ISSUE's acceptance shape — through the
// parallel connected-components stack at p in {1, 4, 16}, checked
// pixel-for-pixel against the three sequential labelers, plus the
// distributed component statistics.  Labelled `slow-ledger`: excluded
// from the quick presets, run instrumented in the race-ledger job where
// the default RacePolicy::kThrow certifies the protocol on a shape with
// ragged tiles in both dimensions.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "histcc/cc/parallel_cc.hpp"
#include "histcc/cc/stats_parallel.hpp"
#include "histcc/cc_seq/analysis.hpp"
#include "histcc/cc_seq/bfs_label.hpp"
#include "histcc/cc_seq/hoshen_kopelman.hpp"
#include "histcc/cc_seq/union_find.hpp"
#include "histcc/image/generators.hpp"
#include "histcc/splitc/machine.hpp"

namespace cc = histcc::cc;
namespace ccseq = histcc::ccseq;
namespace im = histcc::img;
namespace sc = histcc::splitc;

namespace {

im::GreyImage make_vga_scene() {
  const auto square = im::make_darpa_like(640);
  im::GreyImage scene(640, 480);
  for (std::uint32_t i = 0; i < 640; ++i) {
    for (std::uint32_t j = 0; j < 480; ++j) scene(i, j) = square(i, j);
  }
  return scene;
}

class VgaFrame : public ::testing::TestWithParam<std::uint32_t> {};

}  // namespace

TEST_P(VgaFrame, ParallelComponentsMatchAllSequentialLabelers) {
  const std::uint32_t p = GetParam();
  const auto scene = make_vga_scene();
  cc::CcOptions options;
  options.rule = ccseq::ColourRule::kSameColour;
  const auto reference =
      ccseq::label_components_bfs(scene, options.connectivity, options.rule);
  EXPECT_EQ(
      ccseq::label_components_unionfind(scene, options.connectivity,
                                        options.rule),
      reference);
  EXPECT_EQ(ccseq::label_components_hoshen_kopelman(scene,
                                                    options.connectivity,
                                                    options.rule),
            reference);
  sc::Machine machine(p);  // RacePolicy::kThrow: ledger-clean or fail
  EXPECT_EQ(cc::connected_components_parallel(machine, scene, options),
            reference)
      << "p=" << p;
}

TEST_P(VgaFrame, DistributedStatsMatchSequentialReference) {
  const std::uint32_t p = GetParam();
  const auto scene = make_vga_scene();
  const cc::CcOptions options;
  const auto labels =
      ccseq::label_components_bfs(scene, options.connectivity, options.rule);
  const auto reference = ccseq::component_stats(scene, labels);
  sc::Machine machine(p);
  const auto stats = cc::component_stats_parallel(machine, scene, labels);
  ASSERT_EQ(stats.size(), reference.size()) << "p=" << p;
  for (std::size_t i = 0; i < stats.size(); ++i) {
    EXPECT_EQ(stats[i].label, reference[i].label);
    EXPECT_EQ(stats[i].pixels, reference[i].pixels);
    EXPECT_EQ(stats[i].min_row, reference[i].min_row);
    EXPECT_EQ(stats[i].min_col, reference[i].min_col);
    EXPECT_EQ(stats[i].max_row, reference[i].max_row);
    EXPECT_EQ(stats[i].max_col, reference[i].max_col);
  }
}

INSTANTIATE_TEST_SUITE_P(Procs, VgaFrame, ::testing::Values(1, 4, 16));
