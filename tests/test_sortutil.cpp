// Tests for the radix / hybrid sorting kernels (paper footnotes 3 and 4).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "histcc/sortutil/radix.hpp"
#include "histcc/util/rng.hpp"

namespace su = histcc::sortutil;

namespace {

std::vector<std::uint32_t> random_keys(std::size_t n, std::uint64_t seed,
                                       std::uint64_t bound = 0) {
  histcc::util::Rng rng(seed);
  std::vector<std::uint32_t> keys(n);
  for (auto& k : keys) {
    k = static_cast<std::uint32_t>(bound == 0 ? rng.next_u64()
                                              : rng.next_below(bound));
  }
  return keys;
}

}  // namespace

TEST(RadixSortTest, EmptyAndSingle) {
  std::vector<std::uint32_t> empty;
  su::radix_sort(empty);
  EXPECT_TRUE(empty.empty());

  std::vector<std::uint32_t> one{42};
  su::radix_sort(one);
  EXPECT_EQ(one[0], 42u);
}

TEST(RadixSortTest, SortsRandomFullRange) {
  auto keys = random_keys(10000, 1);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  su::radix_sort(keys);
  EXPECT_EQ(keys, expected);
}

TEST(RadixSortTest, SortsWithSharedHighBytes) {
  // The merge step sorts labels that share their high bytes; pass skipping
  // must not break correctness.
  auto keys = random_keys(5000, 2, 256);  // only low byte varies
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  su::radix_sort(keys);
  EXPECT_EQ(keys, expected);
}

TEST(RadixSortTest, AllEqual) {
  std::vector<std::uint32_t> keys(1000, 7);
  su::radix_sort(keys);
  for (const auto k : keys) EXPECT_EQ(k, 7u);
}

TEST(RadixSortTest, AlreadySortedAndReversed) {
  std::vector<std::uint32_t> keys(1000);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<std::uint32_t>(i);
  }
  su::radix_sort(keys);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));

  std::vector<std::uint32_t> rev(1000);
  for (std::size_t i = 0; i < rev.size(); ++i) {
    rev[i] = static_cast<std::uint32_t>(rev.size() - i);
  }
  su::radix_sort(rev);
  EXPECT_TRUE(std::is_sorted(rev.begin(), rev.end()));
}

TEST(RadixSortTest, ExtremeValues) {
  std::vector<std::uint32_t> keys{0xFFFFFFFFu, 0u, 0x80000000u, 1u,
                                  0x7FFFFFFFu};
  su::radix_sort(keys);
  EXPECT_EQ(keys, (std::vector<std::uint32_t>{0u, 1u, 0x7FFFFFFFu,
                                              0x80000000u, 0xFFFFFFFFu}));
}

TEST(RadixSortByTest, SortsRecordsStably) {
  struct Rec {
    std::uint32_t key;
    std::uint32_t seq;
  };
  histcc::util::Rng rng(3);
  std::vector<Rec> records(4000);
  for (std::uint32_t i = 0; i < records.size(); ++i) {
    records[i] = Rec{static_cast<std::uint32_t>(rng.next_below(50)), i};
  }
  su::radix_sort_by(records, [](const Rec& r) { return r.key; });
  for (std::size_t i = 1; i < records.size(); ++i) {
    ASSERT_LE(records[i - 1].key, records[i].key);
    if (records[i - 1].key == records[i].key) {
      // LSD radix sort is stable; equal keys keep input order.
      ASSERT_LT(records[i - 1].seq, records[i].seq);
    }
  }
}

TEST(HybridSortTest, SmallInputsUseComparisonPathCorrectly) {
  for (std::size_t n : {0u, 1u, 2u, 5u, 30u, 95u}) {
    auto keys = random_keys(n, 100 + n);
    auto expected = keys;
    std::sort(expected.begin(), expected.end());
    su::hybrid_sort(keys);
    EXPECT_EQ(keys, expected) << "n=" << n;
  }
}

TEST(HybridSortTest, LargeInputsUseRadixPathCorrectly) {
  for (std::size_t n : {96u, 100u, 1000u, 20000u}) {
    auto keys = random_keys(n, 200 + n);
    auto expected = keys;
    std::sort(expected.begin(), expected.end());
    su::hybrid_sort(keys);
    EXPECT_EQ(keys, expected) << "n=" << n;
  }
}

TEST(HybridSortTest, ExplicitThresholdRespected) {
  // With threshold 0 everything goes through radix; with a huge threshold
  // everything goes through comparison sort.  Both must agree.
  auto keys1 = random_keys(500, 5);
  auto keys2 = keys1;
  su::hybrid_sort(keys1, 0);
  su::hybrid_sort(keys2, 1u << 20);
  EXPECT_EQ(keys1, keys2);
}

// Property sweep: radix == std::sort across sizes and key ranges.
class SortProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(SortProperty, MatchesStdSort) {
  const auto [n, bound] = GetParam();
  auto keys = random_keys(n, 31 * n + bound, bound);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  su::radix_sort(keys);
  EXPECT_EQ(keys, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SortProperty,
    ::testing::Combine(::testing::Values(3, 17, 64, 255, 1024, 9999),
                       ::testing::Values(0ull, 2ull, 256ull, 65536ull,
                                         1ull << 31)));
