// Tests for the serving layer (histcc/serve): bounded job queue, machine
// pool, size-based routing, and the pipeline's end-to-end semantics —
// correctness against the sequential references, deadlines, cancellation,
// degradation, backpressure, and shutdown.
//
// Concurrency-sensitive scenarios are sequenced with an explicit gate
// (the PipelineOptions::before_parallel hook) rather than sleeps, so they
// hold under TSan and the race-ledger preset.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "histcc/cc_seq/analysis.hpp"
#include "histcc/cc_seq/bfs_label.hpp"
#include "histcc/hist/equalize.hpp"
#include "histcc/hist/histogram.hpp"
#include "histcc/image/generators.hpp"
#include "histcc/serve/job_queue.hpp"
#include "histcc/serve/machine_pool.hpp"
#include "histcc/serve/pipeline.hpp"
#include "histcc/splitc/machine.hpp"

namespace im = histcc::img;
namespace sv = histcc::serve;
namespace ccseq = histcc::ccseq;
namespace hist = histcc::hist;

using namespace std::chrono_literals;

namespace {

/// One-shot rendezvous for pipeline tests: the first parallel execution
/// announces itself on `started` and then parks until release() — so a
/// test can fill the queue / cancel / shut down behind a provably busy
/// worker without a single timing assumption.
struct Gate {
  std::promise<void> started_promise;
  std::future<void> started = started_promise.get_future();
  std::promise<void> release_promise;
  std::shared_future<void> release = release_promise.get_future().share();
  std::atomic<bool> armed{true};

  [[nodiscard]] std::function<void()> hook() {
    return [this] {
      if (armed.exchange(false)) {
        started_promise.set_value();
        release.wait();
      }
    };
  }
  void open() { release_promise.set_value(); }
};

void expect_stats_equal(const std::vector<ccseq::ComponentStats>& a,
                        const std::vector<ccseq::ComponentStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].colour, b[i].colour);
    EXPECT_EQ(a[i].pixels, b[i].pixels);
    EXPECT_EQ(a[i].min_row, b[i].min_row);
    EXPECT_EQ(a[i].min_col, b[i].min_col);
    EXPECT_EQ(a[i].max_row, b[i].max_row);
    EXPECT_EQ(a[i].max_col, b[i].max_col);
    EXPECT_DOUBLE_EQ(a[i].sum_row, b[i].sum_row);
    EXPECT_DOUBLE_EQ(a[i].sum_col, b[i].sum_col);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// JobQueue

TEST(JobQueueTest, FifoWithinCapacity) {
  sv::JobQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(int{i}));
  EXPECT_FALSE(q.try_push(99));  // full
  EXPECT_EQ(q.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    auto item = q.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(JobQueueTest, CloseDrainsThenEndsPop) {
  sv::JobQueue<int> q(4);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.try_push(3));
  EXPECT_FALSE(q.push(4));
  // A closed queue still drains what it holds...
  EXPECT_EQ(q.pop().value_or(-1), 1);
  EXPECT_EQ(q.pop().value_or(-1), 2);
  // ...then pop reports end-of-stream instead of blocking.
  EXPECT_FALSE(q.pop().has_value());
}

TEST(JobQueueTest, DrainClaimsLeftovers) {
  sv::JobQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(int{i}));
  q.close();
  const auto leftovers = q.drain();
  EXPECT_EQ(leftovers, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(q.size(), 0u);
}

TEST(JobQueueTest, BlockedPushResumesAfterPop) {
  sv::JobQueue<int> q(1);
  EXPECT_TRUE(q.try_push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));  // blocks: queue full
    pushed = true;
  });
  EXPECT_EQ(q.pop().value_or(-1), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value_or(-1), 2);
}

TEST(JobQueueTest, ManyProducersManyConsumers) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  sv::JobQueue<int> q(16);
  std::atomic<long> sum{0};
  std::atomic<int> received{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (auto item = q.pop()) {
        sum += *item;
        received++;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  for (std::size_t t = 3; t < threads.size(); ++t) threads[t].join();
  q.close();
  for (std::size_t t = 0; t < 3; ++t) threads[t].join();
  const int n = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), n);
  EXPECT_EQ(sum.load(), static_cast<long>(n) * (n - 1) / 2);
}

// ---------------------------------------------------------------------------
// MachinePool

TEST(MachinePoolTest, ReusesSameSizeMachineWithoutRebuild) {
  sv::MachinePool pool(1, 16);
  EXPECT_EQ(pool.machines_built(), 0u);
  { auto lease = pool.acquire(4); }
  EXPECT_EQ(pool.machines_built(), 1u);
  {
    auto lease = pool.acquire(4);  // warm hit: same size, same slot
    EXPECT_EQ(lease.machine().nprocs(), 4u);
    EXPECT_EQ(lease.machine().worker_mode(),
              histcc::splitc::WorkerMode::kPersistent);
  }
  EXPECT_EQ(pool.machines_built(), 1u);
}

TEST(MachinePoolTest, SizeShiftRebuilds) {
  sv::MachinePool pool(1, 16);
  { auto lease = pool.acquire(4); }
  { auto lease = pool.acquire(8); }  // job mix shifted: rebuild
  EXPECT_EQ(pool.machines_built(), 2u);
  { auto lease = pool.acquire(8); }  // steady again: no churn
  EXPECT_EQ(pool.machines_built(), 2u);
}

TEST(MachinePoolTest, PrefersExactSizeIdleSlot) {
  sv::MachinePool pool(2, 16);
  {
    auto a = pool.acquire(2);
    auto b = pool.acquire(8);
  }
  EXPECT_EQ(pool.machines_built(), 2u);
  EXPECT_EQ(pool.idle(), 2u);
  // Both slots idle, one holds an 8-wide machine: asking for 8 must pick
  // it instead of rebuilding the 2-wide slot.
  { auto lease = pool.acquire(8); }
  EXPECT_EQ(pool.machines_built(), 2u);
}

TEST(MachinePoolTest, AcquireBlocksUntilRelease) {
  sv::MachinePool pool(1, 4);
  auto first = pool.acquire(2);
  EXPECT_EQ(pool.idle(), 0u);
  std::promise<void> got_promise;
  auto got = got_promise.get_future();
  std::thread waiter([&] {
    auto second = pool.acquire(2);
    got_promise.set_value();
  });
  EXPECT_EQ(got.wait_for(50ms), std::future_status::timeout);
  first.release();
  got.wait();
  waiter.join();
  EXPECT_EQ(pool.idle(), 1u);
}

TEST(MachinePoolTest, LeasedMachineRunsPrograms) {
  sv::MachinePool pool(1, 8);
  auto lease = pool.acquire(8);
  std::atomic<int> count{0};
  lease.machine().run([&](histcc::splitc::Proc& self) {
    self.barrier();
    count++;
  });
  EXPECT_EQ(count.load(), 8);
}

TEST(MachinePoolTest, RejectsInvalidWidths) {
  sv::MachinePool pool(1, 8);
  EXPECT_ANY_THROW({ auto lease = pool.acquire(3); });
  EXPECT_ANY_THROW({ auto lease = pool.acquire(16); });  // > max_procs
  EXPECT_ANY_THROW({ auto lease = pool.acquire(0); });
}

TEST(MachinePoolTest, MovedFromLeaseIsInert) {
  sv::MachinePool pool(1, 8);
  {
    auto lease = pool.acquire(4);
    auto moved = std::move(lease);
    // The moved-from lease must not hold the slot: releasing it (or
    // letting it die) is a no-op, and the slot frees exactly once when
    // `moved` goes away.
    lease.release();  // NOLINT(bugprone-use-after-move): inertness test
    EXPECT_EQ(pool.idle(), 0u);  // `moved` still owns the slot
    EXPECT_EQ(moved.machine().nprocs(), 4u);
  }
  EXPECT_EQ(pool.idle(), 1u);
}

TEST(MachinePoolTest, DoubleReleaseIsIdempotent) {
  sv::MachinePool pool(1, 8);
  auto lease = pool.acquire(2);
  lease.release();
  EXPECT_EQ(pool.idle(), 1u);
  lease.release();  // second release: no double-free, no idle over-count
  EXPECT_EQ(pool.idle(), 1u);
  // The slot is genuinely reusable afterwards.
  { auto again = pool.acquire(2); }
  EXPECT_EQ(pool.machines_built(), 1u);
}

TEST(MachinePoolTest, HeterogeneousSlotKeepsMixedSizesWarm) {
  // machines_per_slot = 3: one slot can keep a 2-, 4-, and 8-wide machine
  // warm at once, so a mixed job mix stops rebuilding after warmup.
  sv::MachinePool pool(1, 8, 3);
  EXPECT_EQ(pool.machines_per_slot(), 3u);
  for (int round = 0; round < 4; ++round) {
    { auto lease = pool.acquire(2); }
    { auto lease = pool.acquire(4); }
    { auto lease = pool.acquire(8); }
  }
  EXPECT_EQ(pool.machines_built(), 3u);  // one build per width, ever
}

TEST(MachinePoolTest, HeterogeneousSlotEvictsLeastRecentlyUsed) {
  sv::MachinePool pool(1, 8, 2);
  { auto lease = pool.acquire(2); }
  { auto lease = pool.acquire(4); }
  EXPECT_EQ(pool.machines_built(), 2u);
  // Capacity 2 is full; an 8-wide request evicts the LRU entry (the
  // 2-wide machine).
  { auto lease = pool.acquire(8); }
  EXPECT_EQ(pool.machines_built(), 3u);
  { auto lease = pool.acquire(4); }  // still warm
  EXPECT_EQ(pool.machines_built(), 3u);
  { auto lease = pool.acquire(2); }  // was evicted: rebuild
  EXPECT_EQ(pool.machines_built(), 4u);
}

TEST(MachinePoolTest, HeterogeneousLeasedMachineRunsPrograms) {
  sv::MachinePool pool(2, 8, 2);
  auto a = pool.acquire(4);
  auto b = pool.acquire(8);
  std::atomic<int> count{0};
  a.machine().run([&](histcc::splitc::Proc& self) {
    self.barrier();
    count++;
  });
  b.machine().run([&](histcc::splitc::Proc& self) {
    self.barrier();
    count++;
  });
  EXPECT_EQ(count.load(), 12);
}

// ---------------------------------------------------------------------------
// Routing (choose_procs): the paper's n^2/p tradeoff as an admission rule.

TEST(RoutingTest, SmallImagesRunSequentially) {
  const sv::PipelineOptions opt;  // grain = sequential = 64*64
  EXPECT_EQ(sv::choose_procs(64, 64, opt), 1u);
  EXPECT_EQ(sv::choose_procs(32, 32, opt), 1u);
  EXPECT_EQ(sv::choose_procs(0, 0, opt), 1u);
}

TEST(RoutingTest, NonSquareImagesRouteByArea) {
  // The ragged layout hosts any rectangle, so routing is pixel-count only.
  const sv::PipelineOptions opt;
  EXPECT_EQ(sv::choose_procs(96, 64, opt), 1u);     // 6144 px / 4096 grain
  EXPECT_EQ(sv::choose_procs(512, 256, opt), 16u);  // capped at max_procs
  EXPECT_EQ(sv::choose_procs(640, 480, opt), 16u);
  EXPECT_EQ(sv::choose_procs(1000, 3, opt), 1u);  // 3000 px: sequential
}

TEST(RoutingTest, ProcsGrowWithImageArea) {
  const sv::PipelineOptions opt;
  EXPECT_EQ(sv::choose_procs(96, 96, opt), 2u);    // 9216 px / 4096 grain
  EXPECT_EQ(sv::choose_procs(128, 128, opt), 4u);  // 16384 / 4096
  EXPECT_EQ(sv::choose_procs(256, 256, opt), 16u);
}

TEST(RoutingTest, CappedAtMaxProcs) {
  sv::PipelineOptions opt;
  EXPECT_EQ(sv::choose_procs(512, 512, opt), 16u);  // would be 64 uncapped
  opt.max_procs = 4;
  EXPECT_EQ(sv::choose_procs(512, 512, opt), 4u);
}

TEST(RoutingTest, PrimeDimensionsNoLongerForceSequential) {
  const sv::PipelineOptions opt;
  // 97x97 clears the grain threshold at p=2; the ragged layout tiles it,
  // so the old shrink-until-divisible fallback is gone.
  EXPECT_EQ(sv::choose_procs(97, 97, opt), 2u);
}

// ---------------------------------------------------------------------------
// Pipeline end-to-end: every job kind agrees with its sequential reference.

TEST(PipelineTest, HistogramMatchesSequentialReference) {
  const auto image = im::make_random_grey(128, 16, 42);
  const auto reference = hist::histogram_seq(image, 16);
  sv::Pipeline pipeline;
  auto job = pipeline.submit_histogram(image, 16);
  auto result = job.result.get();
  EXPECT_EQ(result.status, sv::JobStatus::kOk);
  EXPECT_EQ(result.procs, 4u);  // 128x128 routes to p=4
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result.value, reference);
}

TEST(PipelineTest, ComponentsMatchSequentialReference) {
  const auto image = im::make_test_pattern(im::TestPattern::kDualSpiral, 128);
  const histcc::cc::CcOptions options;
  const auto reference = ccseq::label_components_bfs(image, options.connectivity,
                                                     options.rule);
  sv::Pipeline pipeline;
  auto job = pipeline.submit_components(image, options);
  auto result = job.result.get();
  EXPECT_EQ(result.status, sv::JobStatus::kOk);
  EXPECT_EQ(result.procs, 4u);
  ASSERT_TRUE(result.has_value());
  // Canonical labeling: exact pixel-for-pixel agreement, not just a
  // label bijection.
  EXPECT_EQ(*result.value, reference);
}

TEST(PipelineTest, EqualizeMatchesSequentialReference) {
  const auto image = im::make_darpa_like(128);
  const auto reference = hist::equalize(image, 256);
  sv::Pipeline pipeline;
  auto job = pipeline.submit_equalize(image, 256);
  auto result = job.result.get();
  EXPECT_EQ(result.status, sv::JobStatus::kOk);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result.value, reference);
}

TEST(PipelineTest, StatsMatchSequentialReference) {
  const auto image = im::make_test_pattern(im::TestPattern::kFourSquares, 128);
  const histcc::cc::CcOptions options;
  const auto labels = ccseq::label_components_bfs(image, options.connectivity,
                                                  options.rule);
  const auto reference = ccseq::component_stats(image, labels);
  sv::Pipeline pipeline;
  auto job = pipeline.submit_stats(image, options);
  auto result = job.result.get();
  EXPECT_EQ(result.status, sv::JobStatus::kOk);
  ASSERT_TRUE(result.has_value());
  expect_stats_equal(*result.value, reference);
}

TEST(PipelineTest, TinyImagesSkipTheMachinePool) {
  sv::Pipeline pipeline;
  auto job = pipeline.submit_histogram(im::make_random_grey(32, 8, 1), 8);
  auto result = job.result.get();
  EXPECT_EQ(result.status, sv::JobStatus::kOk);
  EXPECT_EQ(result.procs, 1u);
  ASSERT_TRUE(result.has_value());
  // The sequential path never touched a machine: no pool builds at all.
  EXPECT_EQ(pipeline.metrics().machines_built, 0u);
}

TEST(PipelineTest, ForcedProcsOverrideRouting) {
  const auto image = im::make_random_grey(128, 16, 7);
  const auto reference = hist::histogram_seq(image, 16);
  sv::Pipeline pipeline;
  sv::JobOptions job;
  job.force_procs = 16;  // routing alone would pick 4
  auto pending = pipeline.submit_histogram(image, 16, job);
  auto result = pending.result.get();
  EXPECT_EQ(result.status, sv::JobStatus::kOk);
  EXPECT_EQ(result.procs, 16u);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result.value, reference);
}

TEST(PipelineTest, ConcurrentMixedJobsAllCorrect) {
  const auto grey = im::make_random_grey(96, 8, 11);
  const auto pattern = im::make_test_pattern(im::TestPattern::kFourSquares, 96);
  const auto hist_ref = hist::histogram_seq(grey, 8);
  const auto cc_ref = ccseq::label_components_bfs(pattern);
  sv::PipelineOptions opt;
  opt.pool_size = 4;
  sv::Pipeline pipeline(opt);
  std::vector<sv::PendingJob<std::vector<std::uint32_t>>> hist_jobs;
  std::vector<sv::PendingJob<im::LabelImage>> cc_jobs;
  for (int i = 0; i < 8; ++i) {
    hist_jobs.push_back(pipeline.submit_histogram(grey, 8));
    cc_jobs.push_back(pipeline.submit_components(pattern));
  }
  for (auto& job : hist_jobs) {
    auto result = job.result.get();
    EXPECT_EQ(result.status, sv::JobStatus::kOk);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(*result.value, hist_ref);
  }
  for (auto& job : cc_jobs) {
    auto result = job.result.get();
    EXPECT_EQ(result.status, sv::JobStatus::kOk);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(*result.value, cc_ref);
  }
  const auto metrics = pipeline.metrics();
  EXPECT_EQ(metrics.submitted, 16u);
  EXPECT_EQ(metrics.completed, 16u);
  EXPECT_EQ(metrics.rejected, 0u);
}

// ---------------------------------------------------------------------------
// Degradation: a failing parallel path downgrades to the sequential
// reference and says so; the job is never dropped.

TEST(PipelineTest, ParallelFaultDegradesToSequential) {
  const auto image = im::make_random_grey(128, 16, 3);
  const auto reference = hist::histogram_seq(image, 16);
  sv::PipelineOptions opt;
  std::atomic<bool> arm{true};
  opt.before_parallel = [&] {
    if (arm.exchange(false)) throw std::runtime_error("injected fault");
  };
  sv::Pipeline pipeline(opt);
  auto job = pipeline.submit_histogram(image, 16);
  auto result = job.result.get();
  EXPECT_EQ(result.status, sv::JobStatus::kDegraded);
  EXPECT_EQ(result.procs, 1u);  // the fallback served it
  EXPECT_NE(result.error.find("injected fault"), std::string::npos);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result.value, reference);
  EXPECT_EQ(pipeline.metrics().degraded, 1u);

  // The hook is disarmed now: the next job completes on the intended path.
  auto ok = pipeline.submit_histogram(image, 16).result.get();
  EXPECT_EQ(ok.status, sv::JobStatus::kOk);
}

TEST(PipelineTest, ForcedParallelOnOddShapeSucceeds) {
  // 97x63 used to be untileable; under the ragged layout a forced
  // parallel run handles it exactly.
  im::GreyImage image(97, 63, 0);
  image.at(5, 5) = 1;
  const auto reference = ccseq::label_components_bfs(image);
  sv::Pipeline pipeline;
  sv::JobOptions job;
  job.force_procs = 4;
  auto pending = pipeline.submit_components(image, {}, job);
  auto result = pending.result.get();
  EXPECT_EQ(result.status, sv::JobStatus::kOk);
  EXPECT_EQ(result.procs, 4u);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result.value, reference);
}

TEST(PipelineTest, ForcedParallelOnIncompatibleParamsDegrades) {
  // equalize_parallel requires p | k; force_procs=4 with k=2 throws on
  // the parallel path and degrades to the sequential reference.
  const auto image = im::make_random_grey(96, 2, 13);
  const auto reference = hist::equalize(image, 2);
  sv::Pipeline pipeline;
  sv::JobOptions job;
  job.force_procs = 4;
  auto pending = pipeline.submit_equalize(image, 2, job);
  auto result = pending.result.get();
  EXPECT_EQ(result.status, sv::JobStatus::kDegraded);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result.value, reference);
  EXPECT_FALSE(result.error.empty());
}

TEST(PipelineTest, VgaFrameParallelMatchesSequentialExactly) {
  // The acceptance shape: 640x480 routes to p=16, runs on the SPMD
  // machine (not the sequential fallback), and the canonical labeling
  // agrees with the reference pixel for pixel.
  const auto square = im::make_darpa_like(640);
  im::GreyImage image(640, 480);
  for (std::uint32_t i = 0; i < 640; ++i) {
    for (std::uint32_t j = 0; j < 480; ++j) image(i, j) = square(i, j);
  }
  const histcc::cc::CcOptions options;
  const auto reference =
      ccseq::label_components_bfs(image, options.connectivity, options.rule);
  sv::Pipeline pipeline;
  auto pending = pipeline.submit_components(image, options);
  auto result = pending.result.get();
  EXPECT_EQ(result.status, sv::JobStatus::kOk);
  EXPECT_EQ(result.procs, 16u);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result.value, reference);
  EXPECT_EQ(pipeline.metrics().degraded, 0u);
  EXPECT_GE(pipeline.metrics().machines_built, 1u);
}

// ---------------------------------------------------------------------------
// Deadlines and cancellation.

TEST(PipelineTest, DeadlineExpiresInQueue) {
  sv::PipelineOptions opt;
  opt.pool_size = 1;
  Gate gate;
  opt.before_parallel = gate.hook();
  sv::Pipeline pipeline(opt);
  // Occupy the only worker behind the gate...
  sv::JobOptions blocker;
  blocker.force_procs = 2;
  auto first =
      pipeline.submit_histogram(im::make_random_grey(96, 8, 1), 8, blocker);
  gate.started.wait();
  // ...then queue a job whose deadline has already passed by the time the
  // worker frees up.
  sv::JobOptions job;
  job.deadline = 1ms;
  auto second = pipeline.submit_histogram(im::make_random_grey(96, 8, 2), 8, job);
  std::this_thread::sleep_for(20ms);  // let the 1ms budget lapse
  gate.open();
  auto result = second.result.get();
  EXPECT_EQ(result.status, sv::JobStatus::kTimedOut);
  EXPECT_FALSE(result.has_value());  // never ran
  EXPECT_NE(result.error.find("queue"), std::string::npos);
  EXPECT_EQ(first.result.get().status, sv::JobStatus::kOk);
  EXPECT_EQ(pipeline.metrics().timed_out, 1u);
}

TEST(PipelineTest, LateFinishIsTimedOutWithValue) {
  const auto image = im::make_random_grey(96, 8, 5);
  const auto reference = hist::histogram_seq(image, 8);
  sv::PipelineOptions opt;
  opt.pool_size = 1;
  Gate gate;
  opt.before_parallel = gate.hook();
  sv::Pipeline pipeline(opt);
  sv::JobOptions job;
  job.deadline = 100ms;  // generous: the dequeue check must pass
  job.force_procs = 2;
  auto pending = pipeline.submit_histogram(image, 8, job);
  gate.started.wait();  // the job is executing, inside its deadline
  std::this_thread::sleep_for(150ms);  // now the deadline lapses mid-run
  gate.open();
  auto result = pending.result.get();
  // An SPMD run is never torn down mid-flight; the job reports kTimedOut
  // but the computed value is still attached.
  EXPECT_EQ(result.status, sv::JobStatus::kTimedOut);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result.value, reference);
}

TEST(PipelineTest, CancellationWinsWhileQueued) {
  sv::PipelineOptions opt;
  opt.pool_size = 1;
  Gate gate;
  opt.before_parallel = gate.hook();
  sv::Pipeline pipeline(opt);
  sv::JobOptions blocker;
  blocker.force_procs = 2;
  auto first =
      pipeline.submit_histogram(im::make_random_grey(96, 8, 1), 8, blocker);
  gate.started.wait();
  auto second = pipeline.submit_histogram(im::make_random_grey(96, 8, 2), 8);
  second.control->cancel();
  EXPECT_TRUE(second.control->cancelled());
  gate.open();
  auto result = second.result.get();
  EXPECT_EQ(result.status, sv::JobStatus::kCancelled);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(first.result.get().status, sv::JobStatus::kOk);
  EXPECT_EQ(pipeline.metrics().cancelled, 1u);
}

// ---------------------------------------------------------------------------
// Backpressure and shutdown.

TEST(PipelineTest, FailFastRejectsWhenQueueFull) {
  sv::PipelineOptions opt;
  opt.pool_size = 1;
  opt.queue_capacity = 2;
  Gate gate;
  opt.before_parallel = gate.hook();
  sv::Pipeline pipeline(opt);
  const auto image = im::make_random_grey(96, 8, 1);
  sv::JobOptions blocker;
  blocker.force_procs = 2;
  auto in_flight = pipeline.submit_histogram(image, 8, blocker);
  gate.started.wait();
  // Fill the bounded queue behind the busy worker.
  auto q1 = pipeline.submit_histogram(image, 8);
  auto q2 = pipeline.submit_histogram(image, 8);
  // Fail-fast submission against a full queue resolves immediately.
  sv::JobOptions fail_fast;
  fail_fast.overflow = sv::OverflowPolicy::kReject;
  auto overflow = pipeline.submit_histogram(image, 8, fail_fast);
  ASSERT_EQ(overflow.result.wait_for(0s), std::future_status::ready);
  auto rejected = overflow.result.get();
  EXPECT_EQ(rejected.status, sv::JobStatus::kRejected);
  EXPECT_FALSE(rejected.has_value());
  EXPECT_NE(rejected.error.find("full"), std::string::npos);
  gate.open();
  EXPECT_EQ(in_flight.result.get().status, sv::JobStatus::kOk);
  EXPECT_EQ(q1.result.get().status, sv::JobStatus::kOk);
  EXPECT_EQ(q2.result.get().status, sv::JobStatus::kOk);
  const auto metrics = pipeline.metrics();
  EXPECT_EQ(metrics.submitted, 3u);
  EXPECT_EQ(metrics.rejected, 1u);
  EXPECT_EQ(metrics.completed, 3u);
}

TEST(PipelineTest, ShutdownDrainFinishesQueuedJobs) {
  const auto image = im::make_random_grey(96, 8, 9);
  const auto reference = hist::histogram_seq(image, 8);
  sv::PipelineOptions opt;
  opt.pool_size = 1;
  sv::Pipeline pipeline(opt);
  std::vector<sv::PendingJob<std::vector<std::uint32_t>>> jobs;
  for (int i = 0; i < 6; ++i) jobs.push_back(pipeline.submit_histogram(image, 8));
  pipeline.shutdown(sv::DrainMode::kDrain);
  for (auto& job : jobs) {
    auto result = job.result.get();
    EXPECT_EQ(result.status, sv::JobStatus::kOk);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(*result.value, reference);
  }
  // After shutdown every submission is refused.
  auto late = pipeline.submit_histogram(image, 8);
  auto result = late.result.get();
  EXPECT_EQ(result.status, sv::JobStatus::kRejected);
  EXPECT_NE(result.error.find("shut down"), std::string::npos);
  const auto metrics = pipeline.metrics();
  EXPECT_EQ(metrics.submitted, 6u);
  EXPECT_EQ(metrics.finished(), 6u);
  EXPECT_EQ(metrics.rejected, 1u);
}

TEST(PipelineTest, ShutdownAbortCancelsQueuedJobs) {
  sv::PipelineOptions opt;
  opt.pool_size = 1;
  Gate gate;
  opt.before_parallel = gate.hook();
  sv::Pipeline pipeline(opt);
  const auto image = im::make_random_grey(96, 8, 1);
  sv::JobOptions blocker;
  blocker.force_procs = 2;
  auto in_flight = pipeline.submit_histogram(image, 8, blocker);
  gate.started.wait();
  auto q1 = pipeline.submit_histogram(image, 8);
  auto q2 = pipeline.submit_histogram(image, 8);
  // Let the gated job proceed once shutdown is underway; abort must not
  // wait for it to be released first.
  std::thread opener([&] {
    std::this_thread::sleep_for(30ms);
    gate.open();
  });
  pipeline.shutdown(sv::DrainMode::kAbort);
  opener.join();
  // Queued jobs were resolved cancelled without running; the in-flight
  // one ran to completion.
  EXPECT_EQ(q1.result.get().status, sv::JobStatus::kCancelled);
  EXPECT_EQ(q2.result.get().status, sv::JobStatus::kCancelled);
  EXPECT_EQ(in_flight.result.get().status, sv::JobStatus::kOk);
  EXPECT_EQ(pipeline.metrics().cancelled, 2u);
}

TEST(PipelineTest, DestructorDrains) {
  const auto image = im::make_random_grey(96, 8, 4);
  std::vector<sv::PendingJob<std::vector<std::uint32_t>>> jobs;
  {
    sv::Pipeline pipeline;
    for (int i = 0; i < 4; ++i) {
      jobs.push_back(pipeline.submit_histogram(image, 8));
    }
  }  // ~Pipeline drains
  for (auto& job : jobs) {
    EXPECT_EQ(job.result.get().status, sv::JobStatus::kOk);
  }
}

TEST(PipelineTest, MetricsRecordLatencies) {
  sv::Pipeline pipeline;
  const auto image = im::make_random_grey(96, 8, 8);
  for (int i = 0; i < 4; ++i) {
    auto result = pipeline.submit_histogram(image, 8).result.get();
    EXPECT_EQ(result.status, sv::JobStatus::kOk);
    EXPECT_GE(result.run_s, 0.0);
    EXPECT_GE(result.queue_s, 0.0);
  }
  const auto metrics = pipeline.metrics();
  EXPECT_EQ(metrics.completed, 4u);
  EXPECT_GT(metrics.wall_p50_s, 0.0);
  EXPECT_LE(metrics.wall_p50_s, metrics.wall_p99_s);
  EXPECT_GT(metrics.mean_run_s, 0.0);
  EXPECT_EQ(metrics.queue_depth, 0u);
  EXPECT_EQ(metrics.in_flight, 0u);
  EXPECT_EQ(metrics.pool_size, pipeline.options().pool_size);
}
