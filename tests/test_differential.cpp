// Differential conformance suite: every implementation in the library —
// the paper's splitc parallel algorithm, the OpenMP mirror, the
// replicated baseline, the three sequential labelers, and jobs routed
// through the serving pipeline's machine pool — must agree on every
// image, machine size, and thread count.
//
// All labelers emit the library-wide *canonical* labeling (each component
// labeled by its minimum pixel index + 1), so label isomorphism collapses
// to pixel-for-pixel equality and the comparison below is exact.
//
// Thread/processor sweep: the splitc machine models the paper and
// requires a power-of-two p, so it runs at p in {1, 4, 16}; the OpenMP
// mirror takes any team size and covers the non-power-of-two counts
// {3, 7} (plus 1, 4, 16).  Awkward shapes come from the image sides:
// 96 = 2^5 * 3 and the 97 x 63 comb (both sides odd and prime-ish) —
// the ragged tile layout hosts every one of them on every machine size.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "histcc/cc/parallel_cc.hpp"
#include "histcc/cc/replicated.hpp"
#include "histcc/cc_seq/bfs_label.hpp"
#include "histcc/cc_seq/hoshen_kopelman.hpp"
#include "histcc/cc_seq/union_find.hpp"
#include "histcc/hist/histogram.hpp"
#include "histcc/image/generators.hpp"
#include "histcc/omp/parallel_host.hpp"
#include "histcc/serve/pipeline.hpp"
#include "histcc/splitc/machine.hpp"

namespace cc = histcc::cc;
namespace ccseq = histcc::ccseq;
namespace hist = histcc::hist;
namespace im = histcc::img;
namespace omp = histcc::omp;
namespace sc = histcc::splitc;

namespace {

// p sweep requested by the conformance plan; the splitc machine uses the
// power-of-two subset, the OpenMP mirror uses all of them.
constexpr std::uint32_t kSplitcProcs[] = {1, 4, 16};
constexpr unsigned kOmpThreads[] = {1, 3, 4, 7, 16};

void expect_labels_equal(const im::LabelImage& got, const im::LabelImage& want,
                         const std::string& what) {
  ASSERT_EQ(got.height(), want.height()) << what;
  ASSERT_EQ(got.width(), want.width()) << what;
  const auto g = got.pixels();
  const auto w = want.pixels();
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (g[i] != w[i]) {
      if (++mismatches <= 3) {
        ADD_FAILURE() << what << ": label mismatch at pixel " << i << ": got "
                      << g[i] << ", want " << w[i];
      }
    }
  }
  EXPECT_EQ(mismatches, 0u) << what;
}

/// Adversarial comb: a full top spine with every other column a tooth
/// running the whole height.  One giant component whose connectivity is
/// discovered only at the strip/tile boundaries — the worst case for the
/// merge phases — at a deliberately awkward odd size.
im::GreyImage make_comb(std::uint32_t rows, std::uint32_t cols) {
  im::GreyImage image(rows, cols);
  auto px = image.pixels();
  for (std::uint32_t j = 0; j < cols; ++j) px[j] = 1;
  for (std::uint32_t i = 1; i < rows; ++i) {
    for (std::uint32_t j = 0; j < cols; j += 2) {
      px[static_cast<std::size_t>(i) * cols + j] = 1;
    }
  }
  return image;
}

struct CcCase {
  std::string name;
  im::GreyImage image;
  ccseq::Connectivity conn;
  ccseq::ColourRule rule;
};

std::vector<CcCase> cc_cases() {
  std::vector<CcCase> cases;
  cases.push_back({"random_percolation", im::make_percolation(96, 0.55, 42),
                   ccseq::Connectivity::kEight, ccseq::ColourRule::kBinary});
  cases.push_back({"random_percolation_4conn",
                   im::make_percolation(96, 0.62, 7),
                   ccseq::Connectivity::kFour, ccseq::ColourRule::kBinary});
  cases.push_back({"darpa_like_grey", im::make_darpa_like(96),
                   ccseq::Connectivity::kEight,
                   ccseq::ColourRule::kSameColour});
  cases.push_back({"dual_spiral",
                   im::make_test_pattern(im::TestPattern::kDualSpiral, 96),
                   ccseq::Connectivity::kEight, ccseq::ColourRule::kBinary});
  cases.push_back({"comb_97x63", make_comb(97, 63),
                   ccseq::Connectivity::kEight, ccseq::ColourRule::kBinary});
  return cases;
}

class DifferentialCc : public ::testing::TestWithParam<std::size_t> {};

}  // namespace

TEST_P(DifferentialCc, AllImplementationsAgree) {
  const auto test = cc_cases()[GetParam()];

  // Sequential references: BFS is the anchor; the other two must match it
  // exactly (all three emit the canonical labeling).
  const auto reference =
      ccseq::label_components_bfs(test.image, test.conn, test.rule);
  expect_labels_equal(
      ccseq::label_components_unionfind(test.image, test.conn, test.rule),
      reference, test.name + "/unionfind");
  expect_labels_equal(
      ccseq::label_components_hoshen_kopelman(test.image, test.conn,
                                              test.rule),
      reference, test.name + "/hoshen_kopelman");

  // OpenMP mirror at every requested team size, including the
  // non-power-of-two counts the splitc machine cannot model.
  for (const unsigned threads : kOmpThreads) {
    expect_labels_equal(
        omp::connected_components_omp(test.image, test.conn, test.rule,
                                      threads),
        reference, test.name + "/omp_t" + std::to_string(threads));
  }

  // The paper's algorithm and the replicated baseline on the virtual
  // machine (power-of-two p; the ragged layout hosts every image shape).
  for (const std::uint32_t p : kSplitcProcs) {
    sc::Machine machine(p);
    cc::CcOptions options;
    options.connectivity = test.conn;
    options.rule = test.rule;
    expect_labels_equal(
        cc::connected_components_parallel(machine, test.image, options),
        reference, test.name + "/parallel_p" + std::to_string(p));
    expect_labels_equal(
        cc::connected_components_replicated(machine, test.image, test.conn,
                                            test.rule),
        reference, test.name + "/replicated_p" + std::to_string(p));
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, DifferentialCc,
                         ::testing::Range<std::size_t>(0, cc_cases().size()),
                         [](const auto& suite_info) {
                           return cc_cases()[suite_info.param].name;
                         });

namespace {

struct HistCase {
  std::string name;
  im::GreyImage image;
  std::uint32_t k;
};

std::vector<HistCase> hist_cases() {
  std::vector<HistCase> cases;
  cases.push_back({"random_grey_k8", im::make_random_grey(96, 8, 99), 8});
  cases.push_back({"random_grey_k64", im::make_random_grey(96, 64, 5), 64});
  cases.push_back({"darpa_like_k256", im::make_darpa_like(96), 256});
  cases.push_back({"banded_k16", im::make_banded_grey(96, 16), 16});
  return cases;
}

class DifferentialHist : public ::testing::TestWithParam<std::size_t> {};

}  // namespace

TEST_P(DifferentialHist, AllImplementationsAgree) {
  const auto test = hist_cases()[GetParam()];
  const auto reference = hist::histogram_seq(test.image, test.k);

  for (const unsigned threads : kOmpThreads) {
    EXPECT_EQ(omp::histogram_omp(test.image, test.k, threads), reference)
        << test.name << "/omp_t" << threads;
  }
  for (const std::uint32_t p : kSplitcProcs) {
    sc::Machine machine(p);
    EXPECT_EQ(hist::histogram_parallel(machine, test.image, test.k),
              reference)
        << test.name << "/parallel_p" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, DifferentialHist,
                         ::testing::Range<std::size_t>(0, hist_cases().size()),
                         [](const auto& suite_info) {
                           return hist_cases()[suite_info.param].name;
                         });

// ---------------------------------------------------------------------------
// Serving pipeline vs direct calls: a job routed through the pool at a
// pinned p must agree exactly with a direct call on a standalone machine
// of the same width, at every machine size in the sweep.  Each job must
// complete kOk — in race-ledger builds the pooled machines keep the
// default RacePolicy::kThrow, so a clean status also certifies that the
// pipeline's warm-machine reuse stays ledger-clean under
// LedgerMode::kSharded.

TEST_P(DifferentialCc, PipelineAgreesWithDirectCalls) {
  const auto test = cc_cases()[GetParam()];
  const auto reference =
      ccseq::label_components_bfs(test.image, test.conn, test.rule);
  histcc::serve::Pipeline pipeline;
  for (const std::uint32_t p : kSplitcProcs) {
    cc::CcOptions options;
    options.connectivity = test.conn;
    options.rule = test.rule;
    histcc::serve::JobOptions job;
    job.force_procs = p;
    auto pending = pipeline.submit_components(test.image, options, job);
    auto result = pending.result.get();
    EXPECT_EQ(result.status, histcc::serve::JobStatus::kOk)
        << test.name << "/pipeline_p" << p << ": " << result.error;
    EXPECT_EQ(result.procs, p) << test.name << "/pipeline_p" << p;
    ASSERT_TRUE(result.has_value()) << test.name << "/pipeline_p" << p;
    expect_labels_equal(*result.value, reference,
                        test.name + "/pipeline_p" + std::to_string(p));
  }
}

TEST_P(DifferentialHist, PipelineAgreesWithDirectCalls) {
  const auto test = hist_cases()[GetParam()];
  const auto reference = hist::histogram_seq(test.image, test.k);
  histcc::serve::Pipeline pipeline;
  for (const std::uint32_t p : kSplitcProcs) {
    histcc::serve::JobOptions job;
    job.force_procs = p;
    auto pending = pipeline.submit_histogram(test.image, test.k, job);
    auto result = pending.result.get();
    EXPECT_EQ(result.status, histcc::serve::JobStatus::kOk)
        << test.name << "/pipeline_p" << p << ": " << result.error;
    EXPECT_EQ(result.procs, p) << test.name << "/pipeline_p" << p;
    ASSERT_TRUE(result.has_value()) << test.name << "/pipeline_p" << p;
    EXPECT_EQ(*result.value, reference) << test.name << "/pipeline_p" << p;
  }
}
