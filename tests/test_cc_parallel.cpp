// End-to-end tests of the parallel connected-components algorithm
// (Sections 5-6): exact equality with the sequential canonical labeling
// across the nine catalog patterns, processor counts, connectivities,
// colour rules, and all option ablations.
#include <gtest/gtest.h>

#include "histcc/cc/parallel_cc.hpp"
#include "histcc/cc_seq/analysis.hpp"
#include "histcc/cc_seq/bfs_label.hpp"
#include "histcc/image/generators.hpp"
#include "histcc/splitc/machine.hpp"

namespace cc = histcc::cc;
namespace cs = histcc::ccseq;
namespace im = histcc::img;
namespace sc = histcc::splitc;

namespace {

void expect_matches_sequential(const im::GreyImage& image, std::uint32_t p,
                               const cc::CcOptions& options,
                               const char* what) {
  sc::Machine machine(p);
  const auto parallel =
      cc::connected_components_parallel(machine, image, options);
  const auto sequential =
      cs::label_components_bfs(image, options.connectivity, options.rule);
  EXPECT_EQ(parallel, sequential) << what << " p=" << p;
}

}  // namespace

// The main correctness sweep: every catalog pattern on every machine size.
class CcPatternSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(CcPatternSweep, MatchesSequentialEightConn) {
  const auto [pattern, p] = GetParam();
  const auto image =
      im::make_test_pattern(static_cast<im::TestPattern>(pattern), 64);
  expect_matches_sequential(image, p, cc::CcOptions{},
                            im::pattern_name(static_cast<im::TestPattern>(pattern)).data());
}

TEST_P(CcPatternSweep, MatchesSequentialFourConn) {
  const auto [pattern, p] = GetParam();
  const auto image =
      im::make_test_pattern(static_cast<im::TestPattern>(pattern), 64);
  cc::CcOptions options;
  options.connectivity = cs::Connectivity::kFour;
  expect_matches_sequential(image, p, options, "four-conn");
}

INSTANTIATE_TEST_SUITE_P(Catalog, CcPatternSweep,
                         ::testing::Combine(::testing::Range(1, 10),
                                            ::testing::Values(1, 2, 4, 8, 16,
                                                              32)));

TEST(CcParallelTest, AllBackground) {
  const im::GreyImage image(64, 64, 0);
  sc::Machine machine(8);
  const auto labels = cc::connected_components_parallel(machine, image);
  for (const auto l : labels.pixels()) EXPECT_EQ(l, 0u);
}

TEST(CcParallelTest, AllForegroundSingleComponent) {
  const im::GreyImage image(64, 64, 1);
  sc::Machine machine(16);
  const auto labels = cc::connected_components_parallel(machine, image);
  for (const auto l : labels.pixels()) EXPECT_EQ(l, 1u);
}

TEST(CcParallelTest, SinglePixelComponents) {
  // A sparse grid of isolated pixels: no merging ever happens, but hooks
  // and border updates must still behave.
  im::GreyImage image(64, 64, 0);
  for (std::uint32_t i = 0; i < 64; i += 4) {
    for (std::uint32_t j = 0; j < 64; j += 4) {
      image(i, j) = 1;
    }
  }
  expect_matches_sequential(image, 16, cc::CcOptions{}, "sparse-dots");
}

TEST(CcParallelTest, ComponentAlongAllTileBorders) {
  // A single-pixel-wide frame around every tile boundary of a 4x4 grid.
  im::GreyImage image(64, 64, 0);
  for (std::uint32_t i = 0; i < 64; ++i) {
    for (std::uint32_t j = 0; j < 64; ++j) {
      if (i % 16 == 15 || i % 16 == 0 || j % 16 == 15 || j % 16 == 0) {
        image(i, j) = 1;
      }
    }
  }
  expect_matches_sequential(image, 16, cc::CcOptions{}, "tile-frames");
}

TEST(CcParallelTest, GreyLevelsStaySeparate) {
  const auto image = im::make_darpa_like(64, 31);
  cc::CcOptions options;
  options.rule = cs::ColourRule::kSameColour;
  for (const std::uint32_t p : {1u, 4u, 8u, 32u}) {
    expect_matches_sequential(image, p, options, "darpa-grey");
  }
}

TEST(CcParallelTest, IsingClustersBothPhases) {
  const auto image = im::make_ising(64, 0.8);
  cc::CcOptions options;
  options.rule = cs::ColourRule::kSameColour;
  expect_matches_sequential(image, 16, options, "ising");
}

class CcPercolationSweep : public ::testing::TestWithParam<double> {};

TEST_P(CcPercolationSweep, RandomLatticesMatch) {
  const double occupancy = GetParam();
  const auto image = im::make_percolation(64, occupancy, 1000);
  for (const std::uint32_t p : {4u, 16u}) {
    expect_matches_sequential(image, p, cc::CcOptions{}, "percolation");
    cc::CcOptions four;
    four.connectivity = cs::Connectivity::kFour;
    expect_matches_sequential(image, p, four, "percolation-4");
  }
}

INSTANTIATE_TEST_SUITE_P(Occupancies, CcPercolationSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.592746, 0.7,
                                           0.95));

TEST(CcParallelTest, NonSquareTilesAndOddLogP) {
  // p = 8 gives a 2x4 grid (odd d): exercises the extra horizontal merge.
  const auto image = im::make_percolation(64, 0.6, 4242);
  expect_matches_sequential(image, 8, cc::CcOptions{}, "2x4-grid");
  expect_matches_sequential(image, 2, cc::CcOptions{}, "1x2-grid");
  expect_matches_sequential(image, 128, cc::CcOptions{}, "8x16-grid");
}

// Option ablations must not change the answer, only the cost.
class CcOptionSweep : public ::testing::TestWithParam<std::tuple<bool, bool, bool>> {
};

TEST_P(CcOptionSweep, AblationsPreserveCorrectness) {
  const auto [shadow, eq9, full] = GetParam();
  cc::CcOptions options;
  options.use_shadow_manager = shadow;
  options.eq9_distribution = eq9;
  options.full_relabel_each_phase = full;
  const auto spiral =
      im::make_test_pattern(im::TestPattern::kDualSpiral, 64);
  expect_matches_sequential(spiral, 16, options, "ablation-spiral");
  const auto perc = im::make_percolation(64, 0.55, 7);
  expect_matches_sequential(perc, 8, options, "ablation-percolation");
}

INSTANTIATE_TEST_SUITE_P(Options, CcOptionSweep,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

TEST(CcParallelTest, LargerImageAt32Procs) {
  const auto image = im::make_darpa_like(128, 8);
  cc::CcOptions options;
  options.rule = cs::ColourRule::kSameColour;
  expect_matches_sequential(image, 32, options, "darpa-128");
}

TEST(CcParallelTest, PhasesReported) {
  const auto image = im::make_percolation(64, 0.5, 11);
  sc::Machine machine(16);
  cc::CcPhases phases;
  (void)cc::connected_components_parallel(machine, image, {}, &phases);
  EXPECT_EQ(phases.merge_phases, 4u);  // log 16
  EXPECT_GT(phases.init_s, 0.0);
  EXPECT_GT(phases.border_s, 0.0);
  EXPECT_GT(phases.update_s, 0.0);
  EXPECT_GT(phases.final_s, 0.0);
}

TEST(CcParallelTest, CommCostFarBelowImageSize) {
  // The whole point: merging moves O(n) border words, not O(n^2) pixels.
  const std::uint32_t n = 128;
  const auto image = im::make_percolation(n, 0.6, 13);
  sc::Machine machine(16);
  (void)cc::connected_components_parallel(machine, image);
  const auto total = machine.total_stats();
  EXPECT_GT(total.words, 0u);
  EXPECT_LT(total.words, static_cast<std::uint64_t>(n) * n)
      << "merge communication should be far below n^2 pixels";
}

TEST(CcParallelTest, ValidLabelingOnEveryPattern) {
  for (int id = 1; id <= im::kNumTestPatterns; ++id) {
    const auto image =
        im::make_test_pattern(static_cast<im::TestPattern>(id), 64);
    sc::Machine machine(8);
    const auto labels = cc::connected_components_parallel(machine, image);
    EXPECT_TRUE(cs::is_valid_labeling(image, labels,
                                      cs::Connectivity::kEight,
                                      cs::ColourRule::kBinary))
        << "pattern " << id;
  }
}
