// Tests for the merge schedule and group geometry (Sections 5.2-5.3):
// phase counts, alternation, group sizes (2^t members), manager/shadow
// adjacency, and the paper's Figure 4 example.
#include <gtest/gtest.h>

#include <set>

#include "histcc/cc/merge_schedule.hpp"

namespace cc = histcc::cc;
namespace hu = histcc::util;

TEST(MergeScheduleTest, PhaseCountIsLogP) {
  for (const std::uint32_t p : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const auto grid = hu::grid_shape(p);
    const auto schedule = cc::merge_schedule(grid);
    EXPECT_EQ(schedule.size(), hu::log2_exact(p)) << "p=" << p;
  }
}

TEST(MergeScheduleTest, AlternatesStartingHorizontal) {
  const auto schedule = cc::merge_schedule(hu::grid_shape(64));  // 8x8
  ASSERT_EQ(schedule.size(), 6u);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(schedule[i].t, i + 1);
    EXPECT_EQ(schedule[i].horizontal, (i % 2) == 0);
  }
}

TEST(MergeScheduleTest, HorizontalAndVerticalCountsMatchGrid) {
  for (const std::uint32_t p : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const auto grid = hu::grid_shape(p);
    const auto schedule = cc::merge_schedule(grid);
    std::size_t horizontals = 0, verticals = 0;
    for (const auto& phase : schedule) {
      (phase.horizontal ? horizontals : verticals)++;
    }
    EXPECT_EQ(horizontals, hu::log2_exact(grid.cols)) << "p=" << p;
    EXPECT_EQ(verticals, hu::log2_exact(grid.rows)) << "p=" << p;
  }
}

TEST(MergeScheduleTest, GroupsGrowToFullGrid) {
  for (const std::uint32_t p : {2u, 8u, 32u, 128u}) {
    const auto grid = hu::grid_shape(p);
    const auto schedule = cc::merge_schedule(grid);
    // Each phase doubles the merged-region area; the last covers the grid.
    std::uint32_t area = 1;
    for (const auto& phase : schedule) {
      EXPECT_EQ(phase.group_rows * phase.group_cols, 2 * area);
      EXPECT_EQ(phase.region_rows * phase.region_cols, area);
      area *= 2;
    }
    EXPECT_EQ(schedule.back().group_rows, grid.rows);
    EXPECT_EQ(schedule.back().group_cols, grid.cols);
  }
}

TEST(MergeScheduleTest, GroupSizeIsTwoToTheT) {
  const auto grid = hu::grid_shape(128);
  for (const auto& phase : cc::merge_schedule(grid)) {
    EXPECT_EQ(phase.group_rows * phase.group_cols, 1u << phase.t)
        << "phase " << phase.t;
  }
}

// Figure 4 of the paper: 512 x 512 image, p = 32 (4 x 8 grid), t = 2 is a
// vertical merge whose group managers sit at even (row, col) positions.
TEST(GroupOfTest, Figure4Example) {
  const auto grid = hu::grid_shape(32);
  ASSERT_EQ(grid.rows, 4u);
  ASSERT_EQ(grid.cols, 8u);
  const auto schedule = cc::merge_schedule(grid);
  const auto& phase2 = schedule[1];
  EXPECT_FALSE(phase2.horizontal);
  EXPECT_EQ(phase2.group_rows, 2u);
  EXPECT_EQ(phase2.group_cols, 2u);

  std::set<std::uint32_t> managers;
  for (std::uint32_t i = 0; i < grid.rows; ++i) {
    for (std::uint32_t j = 0; j < grid.cols; ++j) {
      managers.insert(cc::group_of(phase2, grid, i, j).manager);
    }
  }
  // One manager per 2x2 group: 8 managers, each at even (row, col).
  EXPECT_EQ(managers.size(), 8u);
  for (const auto m : managers) {
    EXPECT_EQ((m / grid.cols) % 2, 0u);
    EXPECT_EQ((m % grid.cols) % 2, 0u);
  }
  EXPECT_TRUE(managers.contains(0u));  // P0 manages rows {0,1} x cols {0,1}
}

TEST(GroupOfTest, ShadowIsDirectlyAcrossTheBorder) {
  for (const std::uint32_t p : {4u, 16u, 64u, 128u}) {
    const auto grid = hu::grid_shape(p);
    for (const auto& phase : cc::merge_schedule(grid)) {
      for (std::uint32_t i = 0; i < grid.rows; ++i) {
        for (std::uint32_t j = 0; j < grid.cols; ++j) {
          const auto g = cc::group_of(phase, grid, i, j);
          const std::uint32_t mr = g.manager / grid.cols;
          const std::uint32_t mc = g.manager % grid.cols;
          const std::uint32_t sr = g.shadow / grid.cols;
          const std::uint32_t sc = g.shadow % grid.cols;
          if (phase.horizontal) {
            EXPECT_EQ(sr, mr);
            EXPECT_EQ(sc, mc + 1);
            EXPECT_EQ(mc, g.border_lo);
          } else {
            EXPECT_EQ(sc, mc);
            EXPECT_EQ(sr, mr + 1);
            EXPECT_EQ(mr, g.border_lo);
          }
        }
      }
    }
  }
}

TEST(GroupOfTest, AllMembersAgreeOnTheirGroup) {
  const auto grid = hu::grid_shape(32);
  for (const auto& phase : cc::merge_schedule(grid)) {
    for (std::uint32_t i = 0; i < grid.rows; ++i) {
      for (std::uint32_t j = 0; j < grid.cols; ++j) {
        const auto mine = cc::group_of(phase, grid, i, j);
        for (const auto member : cc::group_members(mine, grid)) {
          const auto theirs = cc::group_of(phase, grid, member / grid.cols,
                                           member % grid.cols);
          EXPECT_EQ(theirs.manager, mine.manager);
          EXPECT_EQ(theirs.row0, mine.row0);
          EXPECT_EQ(theirs.col0, mine.col0);
        }
      }
    }
  }
}

TEST(GroupOfTest, GroupsPartitionTheGrid) {
  const auto grid = hu::grid_shape(64);
  for (const auto& phase : cc::merge_schedule(grid)) {
    std::set<std::uint32_t> covered;
    std::set<std::uint32_t> managers;
    for (std::uint32_t i = 0; i < grid.rows; ++i) {
      for (std::uint32_t j = 0; j < grid.cols; ++j) {
        managers.insert(cc::group_of(phase, grid, i, j).manager);
      }
    }
    for (const auto m : managers) {
      const auto g =
          cc::group_of(phase, grid, m / grid.cols, m % grid.cols);
      for (const auto member : cc::group_members(g, grid)) {
        EXPECT_TRUE(covered.insert(member).second)
            << "member " << member << " in two groups at phase " << phase.t;
      }
    }
    EXPECT_EQ(covered.size(), static_cast<std::size_t>(64));
  }
}

TEST(GroupOfTest, SidesHaveExpectedProcessorCounts) {
  const auto grid = hu::grid_shape(128);  // 8 x 16
  const auto schedule = cc::merge_schedule(grid);
  // Horizontal phase t: side spans the group's rows = 2^((t-1)/2).
  for (const auto& phase : schedule) {
    const auto g = cc::group_of(phase, grid, 0, 0);
    if (phase.horizontal) {
      EXPECT_EQ(g.side_procs, phase.group_rows);
    } else {
      EXPECT_EQ(g.side_procs, phase.group_cols);
    }
  }
}

TEST(MergeScheduleTest, RejectsNonPaperGrids) {
  EXPECT_THROW((void)cc::merge_schedule(hu::GridShape{2, 8}),
               histcc::util::contract_error);
  EXPECT_THROW((void)cc::merge_schedule(hu::GridShape{3, 3}),
               histcc::util::contract_error);
}
