// Tests for histcc::trace — the barrier-epoch span recorder, the comm
// accounting piggybacked on CommStats, the Chrome/Perfetto and phase-
// report exporters, and the serve-pipeline integration.  The Chrome JSON
// exporter output is schema-checked with a small recursive-descent JSON
// parser so a malformed escape or a missing comma fails here rather than
// in ui.perfetto.dev.
//
// Also hosts the PoolMetrics log-bucket latency-histogram edge cases
// (empty, single sample, exact bucket boundaries, percentile
// monotonicity) — the serve/trace counter bridge samples the same gauges.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <numeric>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "histcc/cc/label_prop.hpp"
#include "histcc/cc/parallel_cc.hpp"
#include "histcc/hist/histogram.hpp"
#include "histcc/image/generators.hpp"
#include "histcc/image/image.hpp"
#include "histcc/image/layout.hpp"
#include "histcc/morph/morphology.hpp"
#include "histcc/serve/metrics.hpp"
#include "histcc/serve/pipeline.hpp"
#include "histcc/splitc/machine.hpp"
#include "histcc/splitc/profile.hpp"
#include "histcc/trace/export.hpp"
#include "histcc/trace/trace.hpp"

namespace im = histcc::img;
namespace sv = histcc::serve;
namespace tr = histcc::trace;
namespace hist = histcc::hist;
namespace cc = histcc::cc;
namespace splitc = histcc::splitc;

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader, just enough to schema-check the Chrome exporter:
// parses the full value grammar (objects, arrays, strings with escapes,
// numbers, true/false/null) and surfaces objects/arrays for inspection.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  /// Parses the whole input as one value; sets ok=false on any error.
  [[nodiscard]] JsonValue parse(bool& ok) {
    ok_ = true;
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes");
    ok = ok_;
    return v;
  }

 private:
  void fail(const char* what) {
    if (ok_) error_ = what;
    ok_ = false;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  [[nodiscard]] bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue value() {
    skip_ws();
    if (!ok_ || pos_ >= text_.size()) {
      fail("eof");
      return {};
    }
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null();
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (!eat('{')) fail("expected {");
    if (eat('}')) return v;
    while (ok_) {
      JsonValue key = string_value();
      if (!eat(':')) fail("expected :");
      v.object.emplace(key.string, value());
      if (eat('}')) break;
      if (!eat(',')) {
        fail("expected , or }");
        break;
      }
    }
    return v;
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (!eat('[')) fail("expected [");
    if (eat(']')) return v;
    while (ok_) {
      v.array.push_back(value());
      if (eat(']')) break;
      if (!eat(',')) {
        fail("expected , or ]");
        break;
      }
    }
    return v;
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    if (!eat('"')) {
      fail("expected string");
      return v;
    }
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          fail("bad escape");
          return v;
        }
        const char e = text_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) {
              fail("bad \\u escape");
              return v;
            }
            pos_ += 4;  // schema check only; don't decode the code point
            c = '?';
            break;
          default:
            fail("unknown escape");
            return v;
        }
      }
      v.string.push_back(c);
    }
    if (!eat('"')) fail("unterminated string");
    return v;
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonValue null() {
    JsonValue v;
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonValue number() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    v.number = std::strtod(begin, &end);
    if (end == begin) {
      fail("bad number");
      return v;
    }
    pos_ += static_cast<std::size_t>(end - begin);
    return v;
  }

  std::string text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  const char* error_ = "";
};

[[nodiscard]] std::vector<tr::Span> spans_named(const tr::Tracer& tracer,
                                                const std::string& name) {
  std::vector<tr::Span> out;
  for (const tr::Span& s : tracer.spans()) {
    if (name == s.name) out.push_back(s);
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Tracer core

TEST(TracerTest, HostScopeRecordsOneSpan) {
  tr::Tracer tracer;
  {
    TRACE_SCOPE(&tracer, "test/host", 42u);
  }
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "test/host");
  EXPECT_EQ(spans[0].tid, tr::kHostTid);
  EXPECT_EQ(spans[0].arg, 42u);
  EXPECT_GE(spans[0].t1_ns, spans[0].t0_ns);
  EXPECT_EQ(spans[0].begin_epoch, 0u);  // no SPMD program running
  EXPECT_EQ(spans[0].end_epoch, 0u);
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  tr::Tracer tracer;
  tracer.set_enabled(false);
  {
    TRACE_SCOPE(&tracer, "test/ignored");
    TRACE_COUNTER(&tracer, "test/gauge", 1.0);
  }
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_TRUE(tracer.counters().empty());

  tracer.set_enabled(true);
  {
    TRACE_SCOPE(&tracer, "test/seen");
  }
  EXPECT_EQ(tracer.spans().size(), 1u);
}

TEST(TracerTest, NullTracerScopeIsInactive) {
  tr::Scope scope(static_cast<tr::Tracer*>(nullptr), "test/null");
  EXPECT_FALSE(scope.active());
  // The counter macro on a null owner must be a no-op, not a crash.
  TRACE_COUNTER(static_cast<tr::Tracer*>(nullptr), "test/gauge", 3.0);
}

TEST(TracerTest, CountersRecordTimeOrderedSamples) {
  tr::Tracer tracer;
  TRACE_COUNTER(&tracer, "test/depth", 1.0);
  TRACE_COUNTER(&tracer, "test/depth", 5.0);
  const auto counters = tracer.counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_STREQ(counters[0].name, "test/depth");
  EXPECT_DOUBLE_EQ(counters[0].value, 1.0);
  EXPECT_DOUBLE_EQ(counters[1].value, 5.0);
  EXPECT_LE(counters[0].t_ns, counters[1].t_ns);
}

TEST(TracerTest, ClearDropsRecordedData) {
  tr::Tracer tracer;
  {
    TRACE_SCOPE(&tracer, "test/span");
  }
  TRACE_COUNTER(&tracer, "test/gauge", 1.0);
  tracer.clear();
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_TRUE(tracer.counters().empty());
}

TEST(TracerTest, MachineWithoutTracerRunsUninstrumented) {
  // The default state: no tracer attached, kernels still run.
  splitc::Machine machine(4);
  const auto image = im::make_darpa_like(64);
  const auto h = hist::histogram_parallel(machine, image, 256);
  EXPECT_EQ(std::accumulate(h.begin(), h.end(), 0u), 64u * 64u);
}

// ---------------------------------------------------------------------------
// Barrier-epoch alignment

TEST(TraceEpochTest, SpansAlignToBarrierEpochs) {
  tr::Tracer tracer;
  splitc::Machine machine(4);
  machine.set_trace(&tracer);
  machine.run([](splitc::Proc& self) {
    {
      TRACE_SCOPE(self, "test/epoch1");  // no barrier inside
    }
    {
      TRACE_SCOPE(self, "test/across");
      self.barrier();
    }
    {
      TRACE_SCOPE(self, "test/epoch2");
    }
  });
  machine.set_trace(nullptr);

  const auto flat = spans_named(tracer, "test/epoch1");
  ASSERT_EQ(flat.size(), 4u);
  for (const tr::Span& s : flat) {
    EXPECT_EQ(s.begin_epoch, 1u);  // epoch starts at 1 inside run()
    EXPECT_EQ(s.end_epoch, 1u);
    EXPECT_EQ(s.barriers, 0u);
  }

  const auto across = spans_named(tracer, "test/across");
  ASSERT_EQ(across.size(), 4u);
  std::set<std::uint32_t> tids;
  for (const tr::Span& s : across) {
    EXPECT_EQ(s.begin_epoch, 1u);
    EXPECT_EQ(s.end_epoch, 2u);  // the span closed after one barrier
    EXPECT_EQ(s.barriers, 1u);
    tids.insert(s.tid);
  }
  // One span per rank, each on its own track.
  EXPECT_EQ(tids, (std::set<std::uint32_t>{tr::rank_tid(0), tr::rank_tid(1),
                                           tr::rank_tid(2), tr::rank_tid(3)}));

  for (const tr::Span& s : spans_named(tracer, "test/epoch2")) {
    EXPECT_EQ(s.begin_epoch, 2u);
    EXPECT_EQ(s.end_epoch, 2u);
  }
}

// ---------------------------------------------------------------------------
// Kernel instrumentation: histogram on the DARPA-like image

namespace {

/// Runs the parallel histogram on a DARPA-like image with tracing on and
/// returns the tracer (p = 4, the acceptance configuration).
void trace_darpa_histogram(tr::Tracer& tracer, std::uint32_t k = 256) {
  splitc::Machine machine(4);
  machine.set_trace(&tracer);
  const auto image = im::make_darpa_like(128);
  const auto h = hist::histogram_parallel(machine, image, k);
  machine.set_trace(nullptr);
  ASSERT_EQ(std::accumulate(h.begin(), h.end(), 0u), 128u * 128u);
}

}  // namespace

TEST(HistTraceTest, DarpaRunEmitsEveryStepSpanOnEveryRank) {
  tr::Tracer tracer;
  trace_darpa_histogram(tracer);
  for (const char* step : hist::kHistStepSpans) {
    const auto spans = spans_named(tracer, step);
    std::set<std::uint32_t> tids;
    for (const tr::Span& s : spans) tids.insert(s.tid);
    EXPECT_EQ(tids.size(), 4u) << "step " << step
                               << " missing from some rank's track";
  }
  // The transpose is the k*p remote scatter: it must have moved words.
  std::uint64_t transpose_words = 0;
  for (const tr::Span& s : spans_named(tracer, "hist/transpose")) {
    transpose_words += s.words;
  }
  EXPECT_GT(transpose_words, 0u);
}

TEST(HistTraceTest, PhaseBreakdownListsSameStepsAsFig11Bench) {
  // Acceptance: the live per-phase breakdown lists the same steps as
  // bench_fig11_hist_breakdown — both iterate hist::kHistStepSpans.
  tr::Tracer tracer;
  trace_darpa_histogram(tracer);
  const auto rows = tr::phase_breakdown(tracer, splitc::cm5());
  std::vector<std::string> names;
  names.reserve(rows.size());
  for (const tr::PhaseRow& row : rows) names.push_back(row.name);
  std::size_t last = 0;
  for (const char* step : hist::kHistStepSpans) {
    const auto it = std::find(names.begin(), names.end(), std::string(step));
    ASSERT_NE(it, names.end()) << "breakdown missing " << step;
    // Rows appear in execution order, so the four steps stay ordered.
    const auto pos = static_cast<std::size_t>(it - names.begin());
    EXPECT_GE(pos, last);
    last = pos;
  }
  // Modeled comm time must be charged where words moved.
  for (const tr::PhaseRow& row : rows) {
    if (row.name == "hist/transpose") {
      EXPECT_GT(row.words, 0u);
      EXPECT_GT(row.modeled_comm_s, 0.0);
    }
  }
}

TEST(HistTraceTest, PhaseReportMentionsEveryStep) {
  tr::Tracer tracer;
  trace_darpa_histogram(tracer);
  std::ostringstream out;
  tr::write_phase_report(tracer, splitc::cm5(), out);
  const std::string report = out.str();
  for (const char* step : hist::kHistStepSpans) {
    EXPECT_NE(report.find(step), std::string::npos)
        << "phase report missing " << step;
  }
}

// ---------------------------------------------------------------------------
// Chrome/Perfetto exporter schema

TEST(ChromeJsonTest, ExportIsValidJsonWithCompleteEvents) {
  tr::Tracer tracer;
  trace_darpa_histogram(tracer);
  TRACE_COUNTER(&tracer, "test/gauge", 7.0);

  std::ostringstream out;
  tr::write_chrome_json(tracer, out);

  bool ok = false;
  JsonParser parser(out.str());
  const JsonValue root = parser.parse(ok);
  ASSERT_TRUE(ok) << "exporter emitted malformed JSON";
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);

  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArray);
  ASSERT_FALSE(events->array.empty());

  std::size_t complete = 0, metadata = 0, counter = 0;
  std::set<std::string> named_tracks;
  std::set<std::string> span_names;
  for (const JsonValue& e : events->array) {
    ASSERT_EQ(e.kind, JsonValue::Kind::kObject);
    const JsonValue* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_EQ(ph->kind, JsonValue::Kind::kString);
    // Every event carries pid/tid per the trace-event format.
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    if (ph->string == "X") {
      ++complete;
      ASSERT_NE(e.find("name"), nullptr);
      const JsonValue* ts = e.find("ts");
      const JsonValue* dur = e.find("dur");
      ASSERT_NE(ts, nullptr);
      ASSERT_NE(dur, nullptr);
      EXPECT_EQ(ts->kind, JsonValue::Kind::kNumber);
      EXPECT_EQ(dur->kind, JsonValue::Kind::kNumber);
      EXPECT_GE(dur->number, 0.0);
      span_names.insert(e.find("name")->string);
    } else if (ph->string == "M") {
      ++metadata;
      ASSERT_NE(e.find("args"), nullptr);
      const JsonValue* args = e.find("args");
      const JsonValue* name = args->find("name");
      ASSERT_NE(name, nullptr);
      named_tracks.insert(name->string);
    } else if (ph->string == "C") {
      ++counter;
      ASSERT_NE(e.find("args"), nullptr);
    } else {
      FAIL() << "unexpected event phase " << ph->string;
    }
  }
  EXPECT_GT(complete, 0u);
  EXPECT_GT(metadata, 0u);
  EXPECT_EQ(counter, 1u);

  // Track-name metadata covers host + all four ranks.
  EXPECT_TRUE(named_tracks.count("host"));
  for (int r = 0; r < 4; ++r) {
    EXPECT_TRUE(named_tracks.count("rank " + std::to_string(r)))
        << "missing thread_name for rank " << r;
  }
  // Every histogram step appears as a complete event.
  for (const char* step : hist::kHistStepSpans) {
    EXPECT_TRUE(span_names.count(step)) << "trace.json missing " << step;
  }
}

// ---------------------------------------------------------------------------
// CC phase + label-propagation instrumentation

TEST(CcTraceTest, ParallelCcEmitsPhaseSpans) {
  tr::Tracer tracer;
  splitc::Machine machine(4);
  machine.set_trace(&tracer);
  const auto image = im::make_darpa_like(64);
  const auto labels = cc::connected_components_parallel(machine, image);
  machine.set_trace(nullptr);
  EXPECT_EQ(labels.width(), 64u);

  for (const char* phase :
       {"cc/init", "cc/border", "cc/graph", "cc/update", "cc/final"}) {
    EXPECT_FALSE(spans_named(tracer, phase).empty())
        << "missing CC phase span " << phase;
  }
}

TEST(CcTraceTest, LabelPropEmitsOneSpanPerRound) {
  tr::Tracer tracer;
  splitc::Machine machine(4);
  machine.set_trace(&tracer);
  const auto image = im::make_darpa_like(64);
  cc::LabelPropStats stats;
  const auto labels = cc::connected_components_label_prop(
      machine, image, histcc::ccseq::Connectivity::kEight,
      histcc::ccseq::ColourRule::kBinary, &stats);
  machine.set_trace(nullptr);
  EXPECT_EQ(labels.width(), 64u);

  EXPECT_FALSE(spans_named(tracer, "cc/prop_init").empty());
  const auto rounds = spans_named(tracer, "cc/prop_round");
  ASSERT_FALSE(rounds.empty());
  // One round span per rank per propagation round.
  EXPECT_EQ(rounds.size(), 4u * stats.rounds);
}

TEST(MorphTraceTest, StencilEmitsHaloExchangeSpans) {
  tr::Tracer tracer;
  splitc::Machine machine(4);
  machine.set_trace(&tracer);
  const auto image = im::make_darpa_like(64);
  const im::TileLayout layout(image.height(), image.width(),
                              machine.nprocs());
  splitc::Spread<std::uint8_t> tiles(machine, layout.tile_sizes(), "tiles");
  splitc::Spread<std::uint8_t> out(machine, layout.tile_sizes(), "eroded");
  layout.scatter(image, tiles);
  histcc::morph::erode_parallel(machine, layout, tiles, out);
  machine.set_trace(nullptr);

  // One exchange per rank: the single-halo stencil.
  const auto halo = spans_named(tracer, "img/halo_exchange");
  EXPECT_EQ(halo.size(), 4u);
}

// ---------------------------------------------------------------------------
// Serve-pipeline integration

TEST(ServeTraceTest, PipelineEmitsJobSpansAndGauges) {
  tr::Tracer tracer;
  sv::PipelineOptions options;
  options.pool_size = 1;
  options.max_procs = 4;
  options.trace = &tracer;
  const auto image = im::make_darpa_like(192);  // big enough to go parallel

  std::uint64_t job_id = 0;
  {
    sv::Pipeline pipeline(options);
    auto pending = pipeline.submit_histogram(image, 256);
    job_id = pending.control->id();
    const auto result = pending.result.get();
    ASSERT_EQ(result.status, sv::JobStatus::kOk);
    EXPECT_GT(result.procs, 1u);
    pipeline.shutdown();
  }

  // Queue-wait and run spans on the worker's serve track, correlated to
  // the job id through Span::arg.
  for (const char* name : {"serve/queue", "serve/lease", "serve/run"}) {
    const auto spans = spans_named(tracer, name);
    ASSERT_EQ(spans.size(), 1u) << name;
    EXPECT_EQ(spans[0].arg, job_id) << name;
    EXPECT_EQ(spans[0].tid, tr::serve_tid(0)) << name;
    EXPECT_GE(spans[0].t1_ns, spans[0].t0_ns) << name;
  }
  EXPECT_TRUE(spans_named(tracer, "serve/degrade").empty());

  // The leased machine had the tracer attached, so kernel steps landed
  // in the same trace.
  for (const char* step : hist::kHistStepSpans) {
    EXPECT_FALSE(spans_named(tracer, step).empty()) << step;
  }

  // PoolMetrics gauges bridged as counter samples.
  std::set<std::string> counter_names;
  for (const tr::CounterSample& c : tracer.counters()) {
    counter_names.insert(c.name);
  }
  EXPECT_TRUE(counter_names.count("serve/queue_depth"));
  EXPECT_TRUE(counter_names.count("serve/in_flight"));
}

TEST(ServeTraceTest, DegradedJobEmitsDegradeSpan) {
  tr::Tracer tracer;
  sv::PipelineOptions options;
  options.pool_size = 1;
  options.max_procs = 4;
  options.trace = &tracer;
  options.before_parallel = [] {
    throw std::runtime_error("injected parallel failure");
  };
  const auto image = im::make_darpa_like(192);

  {
    sv::Pipeline pipeline(options);
    auto pending = pipeline.submit_histogram(image, 256);
    const auto result = pending.result.get();
    ASSERT_EQ(result.status, sv::JobStatus::kDegraded);
    pipeline.shutdown();
  }

  const auto degrade = spans_named(tracer, "serve/degrade");
  ASSERT_EQ(degrade.size(), 1u);
  EXPECT_EQ(degrade[0].tid, tr::serve_tid(0));
  ASSERT_EQ(spans_named(tracer, "serve/run").size(), 1u);
}

TEST(ServeTraceTest, UntracedPipelineRecordsNothing) {
  tr::Tracer tracer;
  tracer.set_enabled(false);
  sv::PipelineOptions options;
  options.pool_size = 1;
  options.trace = &tracer;  // attached but disabled
  {
    sv::Pipeline pipeline(options);
    auto pending = pipeline.submit_histogram(im::make_darpa_like(128), 256);
    ASSERT_EQ(pending.result.get().status, sv::JobStatus::kOk);
    pipeline.shutdown();
  }
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_TRUE(tracer.counters().empty());
}

// ---------------------------------------------------------------------------
// PoolMetrics log-bucket latency histogram edge cases

namespace {

/// Geometric midpoint of log2 bucket b, in seconds — what quantile()
/// reports for any sample landing in that bucket.
[[nodiscard]] double bucket_mid_s(int b) {
  return std::exp2(static_cast<double>(b) + 0.5) * 1e-9;
}

}  // namespace

TEST(PoolMetricsTest, EmptyHistogramReportsZeroPercentiles) {
  sv::MetricsRecorder rec;
  const sv::PoolMetrics m = rec.snapshot(0, 0, 0);
  EXPECT_DOUBLE_EQ(m.wall_p50_s, 0.0);
  EXPECT_DOUBLE_EQ(m.wall_p90_s, 0.0);
  EXPECT_DOUBLE_EQ(m.wall_p99_s, 0.0);
  EXPECT_DOUBLE_EQ(m.mean_queue_s, 0.0);
  EXPECT_DOUBLE_EQ(m.mean_run_s, 0.0);
  EXPECT_EQ(m.in_flight, 0u);
}

TEST(PoolMetricsTest, SingleSampleSetsAllPercentilesToItsBucket) {
  sv::MetricsRecorder rec;
  rec.on_dequeue(0.5e-3);
  rec.on_finish(sv::JobStatus::kOk, /*wall_s=*/1e-6, /*run_s=*/1e-6);
  const sv::PoolMetrics m = rec.snapshot(0, 0, 0);
  // 1000 ns lands in bucket floor(log2(1000)) = 9.
  EXPECT_DOUBLE_EQ(m.wall_p50_s, bucket_mid_s(9));
  EXPECT_DOUBLE_EQ(m.wall_p90_s, bucket_mid_s(9));
  EXPECT_DOUBLE_EQ(m.wall_p99_s, bucket_mid_s(9));
  EXPECT_EQ(m.completed, 1u);
}

TEST(PoolMetricsTest, ExactBucketBoundariesLandInTheirOwnBucket) {
  // A wall time of exactly 2^b ns is the *lower* edge of bucket b:
  // bit_width(2^b) - 1 == b.
  for (const int b : {4, 10, 20}) {
    sv::MetricsRecorder rec;
    rec.on_dequeue(0);
    rec.on_finish(sv::JobStatus::kOk, std::exp2(b) * 1e-9, 0);
    EXPECT_DOUBLE_EQ(rec.snapshot(0, 0, 0).wall_p50_s, bucket_mid_s(b))
        << "2^" << b << " ns";
  }
  // One tick below the edge belongs to the previous bucket.
  {
    sv::MetricsRecorder rec;
    rec.on_dequeue(0);
    rec.on_finish(sv::JobStatus::kOk, (std::exp2(10) - 1.0) * 1e-9, 0);
    EXPECT_DOUBLE_EQ(rec.snapshot(0, 0, 0).wall_p50_s, bucket_mid_s(9));
  }
  // Sub-nanosecond walls clamp into bucket 0.
  {
    sv::MetricsRecorder rec;
    rec.on_dequeue(0);
    rec.on_finish(sv::JobStatus::kOk, 0.25e-9, 0);
    EXPECT_DOUBLE_EQ(rec.snapshot(0, 0, 0).wall_p50_s, bucket_mid_s(0));
  }
}

TEST(PoolMetricsTest, PercentilesMonotoneUnderRandomFills) {
  std::mt19937_64 rng(0xB0DE1995ULL);
  std::uniform_real_distribution<double> log_wall(-6.0, 1.0);  // 1 µs .. 10 s
  sv::MetricsRecorder rec;
  for (int i = 0; i < 1000; ++i) {
    rec.on_dequeue(0);
    rec.on_finish(sv::JobStatus::kOk, std::pow(10.0, log_wall(rng)), 0);
    if (i % 97 == 0) {
      const sv::PoolMetrics m = rec.snapshot(0, 0, 0);
      EXPECT_LE(m.wall_p50_s, m.wall_p90_s);
      EXPECT_LE(m.wall_p90_s, m.wall_p99_s);
    }
  }
  const sv::PoolMetrics m = rec.snapshot(0, 0, 0);
  EXPECT_LE(m.wall_p50_s, m.wall_p90_s);
  EXPECT_LE(m.wall_p90_s, m.wall_p99_s);
  EXPECT_GT(m.wall_p50_s, 0.0);
  EXPECT_EQ(m.completed, 1000u);
}

TEST(PoolMetricsTest, InFlightGaugeTracksDequeueAndFinish) {
  sv::MetricsRecorder rec;
  EXPECT_EQ(rec.in_flight(), 0u);
  rec.on_dequeue(0);
  rec.on_dequeue(0);
  EXPECT_EQ(rec.in_flight(), 2u);
  rec.on_finish(sv::JobStatus::kOk, 1e-3, 1e-3);
  EXPECT_EQ(rec.in_flight(), 1u);
  rec.on_finish(sv::JobStatus::kDegraded, 1e-3, 1e-3);
  EXPECT_EQ(rec.in_flight(), 0u);
}

// ---------------------------------------------------------------------------
// Per-category span sampling (SamplingPolicy / Tracer::should_record)

namespace {

/// Recorded span counts per name — the "inventory" two identical sampled
/// runs must agree on.
[[nodiscard]] std::map<std::string, std::size_t> span_inventory(
    const tr::Tracer& tracer) {
  std::map<std::string, std::size_t> counts;
  for (const tr::Span& s : tracer.spans()) counts[std::string(s.name)]++;
  return counts;
}

/// Spans in the four kernel categories (everything sampled by
/// SamplingPolicy::kernels).
[[nodiscard]] std::uint64_t kernel_span_count(const tr::Tracer& tracer) {
  std::uint64_t n = 0;
  for (const tr::Span& s : tracer.spans()) {
    const tr::Category cat = tr::category_of(s.name);
    if (cat != tr::Category::kServe && cat != tr::Category::kOther) ++n;
  }
  return n;
}

}  // namespace

TEST(SamplingTest, CategoryOfKeysOnNamePrefix) {
  EXPECT_EQ(tr::category_of("bdm/get"), tr::Category::kBdm);
  EXPECT_EQ(tr::category_of("hist/tally"), tr::Category::kHist);
  EXPECT_EQ(tr::category_of("cc/init"), tr::Category::kCc);
  EXPECT_EQ(tr::category_of("img/halo_exchange"), tr::Category::kImg);
  EXPECT_EQ(tr::category_of("serve/run"), tr::Category::kServe);
  EXPECT_EQ(tr::category_of("test/span"), tr::Category::kOther);
  // Prefix matching must not read past a short or prefix-only name.
  EXPECT_EQ(tr::category_of(""), tr::Category::kOther);
  EXPECT_EQ(tr::category_of("b"), tr::Category::kOther);
  EXPECT_EQ(tr::category_of("hist"), tr::Category::kOther);
  EXPECT_EQ(tr::category_of("histx/y"), tr::Category::kOther);
}

TEST(SamplingTest, EveryNthSpanRecordedFirstAlways) {
  tr::Tracer tracer;
  tracer.set_sampling(tr::SamplingPolicy::kernels(4));
  for (int i = 0; i < 10; ++i) {
    TRACE_SCOPE(&tracer, "bdm/get");
  }
  // 10 calls at 1/4: indices 0, 4, 8 admitted — the first always is.
  EXPECT_EQ(spans_named(tracer, "bdm/get").size(), 3u);
  // Categories left at rate 1 are untouched.
  for (int i = 0; i < 5; ++i) {
    TRACE_SCOPE(&tracer, "serve/run");
    TRACE_SCOPE(&tracer, "test/other");
  }
  EXPECT_EQ(spans_named(tracer, "serve/run").size(), 5u);
  EXPECT_EQ(spans_named(tracer, "test/other").size(), 5u);
}

TEST(SamplingTest, SharedCategoryCounterSpansNames) {
  // Sampling is per category, not per name: alternating bdm spans share
  // one 1/2 counter, so the even stream positions (all gets) are kept.
  tr::Tracer tracer;
  tracer.set_sampling(tr::SamplingPolicy::kernels(2));
  for (int i = 0; i < 4; ++i) {
    {
      TRACE_SCOPE(&tracer, "bdm/get");
    }
    {
      TRACE_SCOPE(&tracer, "bdm/put");
    }
  }
  EXPECT_EQ(spans_named(tracer, "bdm/get").size(), 4u);
  EXPECT_EQ(spans_named(tracer, "bdm/put").size(), 0u);
}

TEST(SamplingTest, ClearRestartsTheSamplingSequence) {
  tr::Tracer tracer;
  tracer.set_sampling(tr::SamplingPolicy::kernels(4));
  for (int i = 0; i < 6; ++i) {
    TRACE_SCOPE(&tracer, "bdm/get");
  }
  EXPECT_EQ(tracer.spans().size(), 2u);  // indices 0 and 4
  tracer.clear();
  for (int i = 0; i < 6; ++i) {
    TRACE_SCOPE(&tracer, "bdm/get");
  }
  // Identical sequence after clear(): same inventory, not a phase-shifted
  // continuation of the old counter.
  EXPECT_EQ(tracer.spans().size(), 2u);
}

TEST(SamplingTest, ZeroRateIsCoercedToOne) {
  tr::Tracer tracer;
  tr::SamplingPolicy policy;
  policy.set(tr::Category::kBdm, 0);  // 0 would divide by zero; means "off"
  tracer.set_sampling(policy);
  EXPECT_EQ(tracer.sample_every(tr::Category::kBdm), 1u);
  for (int i = 0; i < 3; ++i) {
    TRACE_SCOPE(&tracer, "bdm/get");
  }
  EXPECT_EQ(tracer.spans().size(), 3u);
}

TEST(SamplingTest, MachineRunsSampleDeterministically) {
  // Fixed schedule + fixed rate => identical span inventory run over run
  // (each rank's span sequence is program order, and fresh machines start
  // every per-thread counter at zero).
  tr::Tracer a;
  tr::Tracer b;
  a.set_sampling(tr::SamplingPolicy::kernels(16));
  b.set_sampling(tr::SamplingPolicy::kernels(16));
  trace_darpa_histogram(a);
  trace_darpa_histogram(b);
  EXPECT_EQ(span_inventory(a), span_inventory(b));
}

TEST(SamplingTest, RescaledKernelInventoryBracketsUnsampled) {
  tr::Tracer full;
  tr::Tracer sampled;
  constexpr std::uint64_t kEvery = 16;
  sampled.set_sampling(tr::SamplingPolicy::kernels(kEvery));
  trace_darpa_histogram(full);
  trace_darpa_histogram(sampled);

  const std::uint64_t exact = kernel_span_count(full);
  const std::uint64_t rescaled = kernel_span_count(sampled) * kEvery;
  ASSERT_GT(exact, 0u);
  // Per (thread, category) the first span is always admitted, so the
  // rescaled estimate is >= the truth and overshoots by < N-1 per
  // recording stream: 5 threads (4 ranks + host) x 4 kernel categories.
  EXPECT_GE(rescaled, exact);
  EXPECT_LE(rescaled, exact + (kEvery - 1) * 5 * 4);
}

TEST(SamplingTest, EffectiveRateRescalesCategoryTotalsExactly) {
  // The phase report rescales by the measured decimation factor
  // (spans seen / spans recorded per category), not the nominal N:
  // summing a category's rescaled span counts must reproduce the
  // unsampled inventory of the identical deterministic run exactly —
  // nominal xN cannot (see the bracket bound above).
  tr::Tracer full;
  tr::Tracer sampled;
  sampled.set_sampling(tr::SamplingPolicy::kernels(16));
  trace_darpa_histogram(full);
  trace_darpa_histogram(sampled);

  double rescaled = 0.0;
  for (const tr::PhaseRow& row : tr::phase_breakdown(sampled, splitc::cm5())) {
    const tr::Category cat = tr::category_of(row.name.c_str());
    if (cat != tr::Category::kServe && cat != tr::Category::kOther) {
      EXPECT_GE(row.effective_rate, 1.0) << row.name;
      EXPECT_LE(row.effective_rate, 16.0) << row.name;
      rescaled += static_cast<double>(row.spans) * row.effective_rate;
    }
  }
  EXPECT_NEAR(rescaled, static_cast<double>(kernel_span_count(full)), 1e-6);
}

TEST(SamplingTest, PhaseBreakdownCarriesSampleRateAndReportRescales) {
  tr::Tracer tracer;
  tracer.set_sampling(tr::SamplingPolicy::kernels(16));
  trace_darpa_histogram(tracer);

  const auto rows = tr::phase_breakdown(tracer, splitc::cm5());
  ASSERT_FALSE(rows.empty());
  bool saw_hist = false;
  for (const tr::PhaseRow& row : rows) {
    if (tr::category_of(row.name.c_str()) == tr::Category::kHist) {
      EXPECT_EQ(row.sample_every, 16u) << row.name;
      saw_hist = true;
    }
  }
  EXPECT_TRUE(saw_hist);

  std::ostringstream out;
  tr::write_phase_report(tracer, splitc::cm5(), out);
  const std::string report = out.str();
  EXPECT_NE(report.find("x16"), std::string::npos)
      << "sampled rows must carry their rate marker";
  EXPECT_NE(report.find("rescaled"), std::string::npos)
      << "report must explain the rescaling";
}

TEST(SamplingTest, ChromeJsonRecordsSamplingRates) {
  tr::Tracer tracer;
  tracer.set_sampling(tr::SamplingPolicy::kernels(16));
  trace_darpa_histogram(tracer);

  std::ostringstream out;
  tr::write_chrome_json(tracer, out);
  bool ok = false;
  JsonParser parser(out.str());
  const JsonValue root = parser.parse(ok);
  ASSERT_TRUE(ok) << "sampled export emitted malformed JSON";

  const JsonValue* other = root.find("otherData");
  ASSERT_NE(other, nullptr);
  const JsonValue* sampling = other->find("sampling");
  ASSERT_NE(sampling, nullptr) << "sampled trace must declare its rates";
  const JsonValue* hist_rate = sampling->find("hist");
  ASSERT_NE(hist_rate, nullptr);
  EXPECT_DOUBLE_EQ(hist_rate->number, 16.0);
  // Unsampled categories are omitted rather than written as 1.
  EXPECT_EQ(sampling->find("serve"), nullptr);
}

TEST(ServeTraceTest, KernelSamplingKeepsJobSpansExact) {
  const auto image = im::make_darpa_like(192);
  constexpr int kJobs = 3;
  const auto run_jobs = [&](tr::Tracer& tracer,
                            std::uint32_t trace_sample_every) {
    sv::PipelineOptions options;
    options.pool_size = 1;
    options.max_procs = 4;
    options.trace = &tracer;
    options.trace_sample_every = trace_sample_every;
    sv::Pipeline pipeline(options);
    for (int i = 0; i < kJobs; ++i) {
      ASSERT_EQ(pipeline.submit_histogram(image, 256).result.get().status,
                sv::JobStatus::kOk);
    }
    pipeline.shutdown();
  };

  tr::Tracer full;
  run_jobs(full, 1);
  tr::Tracer sampled;
  run_jobs(sampled, 16);

  // Per-job accounting never sampled: one queue/run span per job.
  for (const char* name : {"serve/queue", "serve/run"}) {
    EXPECT_EQ(spans_named(sampled, name).size(),
              static_cast<std::size_t>(kJobs))
        << name;
  }
  // Kernel spans decimated but not extinguished.
  const std::uint64_t kernels_full = kernel_span_count(full);
  const std::uint64_t kernels_sampled = kernel_span_count(sampled);
  EXPECT_GT(kernels_sampled, 0u);
  EXPECT_LT(kernels_sampled, kernels_full);
}

// ---------------------------------------------------------------------------
// Per-thread buffer registry (TLS cache reuse)

TEST(TracerBufferTest, AlternatingBetweenTracersReusesOneBufferEach) {
  // Regression: the old single-entry TLS cache registered a fresh buffer
  // on every switch between two live tracers, so a long-lived worker
  // alternating per-job tracers leaked one buffer per span.
  tr::Tracer a;
  tr::Tracer b;
  for (int i = 0; i < 64; ++i) {
    {
      TRACE_SCOPE(&a, "test/a");
    }
    {
      TRACE_SCOPE(&b, "test/b");
    }
  }
  EXPECT_EQ(a.buffer_count(), 1u);
  EXPECT_EQ(b.buffer_count(), 1u);
  EXPECT_EQ(a.spans().size(), 64u);
  EXPECT_EQ(b.spans().size(), 64u);
}

TEST(TracerBufferTest, CacheEvictionDoesNotDuplicateBuffers) {
  // More live tracers than TLS cache slots: eviction forces the slow
  // path, which must re-find the registered buffer, not grow a new one.
  constexpr int kTracers = 12;
  constexpr int kRounds = 4;
  std::vector<std::unique_ptr<tr::Tracer>> tracers;
  tracers.reserve(kTracers);
  for (int i = 0; i < kTracers; ++i) {
    tracers.push_back(std::make_unique<tr::Tracer>());
  }
  for (int round = 0; round < kRounds; ++round) {
    for (auto& t : tracers) {
      TRACE_SCOPE(t.get(), "test/evict");
    }
  }
  for (const auto& t : tracers) {
    EXPECT_EQ(t->buffer_count(), 1u);
    EXPECT_EQ(t->spans().size(), static_cast<std::size_t>(kRounds));
  }
}

TEST(TracerBufferTest, OneBufferPerRecordingThread) {
  tr::Tracer tracer;
  constexpr int kThreads = 3;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&tracer] {
      for (int j = 0; j < 10; ++j) {
        TRACE_SCOPE(&tracer, "test/worker");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracer.buffer_count(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(tracer.spans().size(), kThreads * 10u);
}

// ---------------------------------------------------------------------------
// HISTCC_TRACE parsing (parse_trace_env)

TEST(TraceEnvTest, DisabledSpellingsAreCaseAndWhitespaceInsensitive) {
  for (const char* v :
       {"", "  ", "0", " 0 ", "off", "OFF", "Off", "\toff\n", "false",
        "False", "FALSE"}) {
    EXPECT_FALSE(tr::parse_trace_env(v).enabled) << "\"" << v << "\"";
  }
}

TEST(TraceEnvTest, DestinationSelectsJsonOrStderrReport) {
  {
    const tr::EnvSpec spec = tr::parse_trace_env("1");
    EXPECT_TRUE(spec.enabled);
    EXPECT_TRUE(spec.json_path.empty());  // stderr phase report
    EXPECT_TRUE(spec.error.empty());
    EXPECT_EQ(spec.sampling, tr::SamplingPolicy{});
  }
  {
    const tr::EnvSpec spec = tr::parse_trace_env("trace.json");
    EXPECT_TRUE(spec.enabled);
    EXPECT_EQ(spec.json_path, "trace.json");
  }
  {
    // Extension match is case-insensitive (the old parser sent
    // trace.JSON to the stderr report).
    const tr::EnvSpec spec = tr::parse_trace_env(" out/Trace.JSON ");
    EXPECT_TRUE(spec.enabled);
    EXPECT_EQ(spec.json_path, "out/Trace.JSON");
  }
  {
    const tr::EnvSpec spec = tr::parse_trace_env("report");
    EXPECT_TRUE(spec.enabled);
    EXPECT_TRUE(spec.json_path.empty());
  }
}

TEST(TraceEnvTest, SamplingPairsParse) {
  {
    const tr::EnvSpec spec = tr::parse_trace_env("trace.json:bdm=16");
    EXPECT_EQ(spec.json_path, "trace.json");
    EXPECT_EQ(spec.sampling.of(tr::Category::kBdm), 16u);
    EXPECT_EQ(spec.sampling.of(tr::Category::kHist), 1u);
    EXPECT_TRUE(spec.error.empty());
  }
  {
    const tr::EnvSpec spec = tr::parse_trace_env("report:kernels=8,serve=2");
    EXPECT_TRUE(spec.json_path.empty());
    for (const tr::Category cat :
         {tr::Category::kBdm, tr::Category::kHist, tr::Category::kCc,
          tr::Category::kImg}) {
      EXPECT_EQ(spec.sampling.of(cat), 8u);
    }
    EXPECT_EQ(spec.sampling.of(tr::Category::kServe), 2u);
    EXPECT_EQ(spec.sampling.of(tr::Category::kOther), 1u);
  }
  {
    const tr::EnvSpec spec = tr::parse_trace_env("trace.json:all=4");
    for (std::size_t c = 0; c < tr::kNumCategories; ++c) {
      EXPECT_EQ(spec.sampling.of(static_cast<tr::Category>(c)), 4u);
    }
  }
  {
    // ':' and ',' both separate pairs.
    const tr::EnvSpec spec = tr::parse_trace_env("trace.json:bdm=16:hist=8");
    EXPECT_EQ(spec.sampling.of(tr::Category::kBdm), 16u);
    EXPECT_EQ(spec.sampling.of(tr::Category::kHist), 8u);
  }
}

TEST(TraceEnvTest, MalformedPairsKeepTracingOnAndReportTheError) {
  {
    const tr::EnvSpec spec = tr::parse_trace_env("trace.json:bogus=4");
    EXPECT_TRUE(spec.enabled);  // a typo must not silently disable tracing
    EXPECT_EQ(spec.json_path, "trace.json");
    EXPECT_FALSE(spec.error.empty());
  }
  {
    const tr::EnvSpec spec = tr::parse_trace_env("trace.json:bdm=0");
    EXPECT_TRUE(spec.enabled);
    EXPECT_FALSE(spec.error.empty());
    EXPECT_EQ(spec.sampling.of(tr::Category::kBdm), 1u);
  }
  {
    const tr::EnvSpec spec = tr::parse_trace_env("trace.json:bdm");
    EXPECT_FALSE(spec.error.empty());
  }
  {
    // A bad pair must not clobber a good one.
    const tr::EnvSpec spec = tr::parse_trace_env("trace.json:bdm=16,bogus");
    EXPECT_EQ(spec.sampling.of(tr::Category::kBdm), 16u);
    EXPECT_FALSE(spec.error.empty());
  }
}

