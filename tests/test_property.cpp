// Property and stress tests across the whole stack: randomized
// cross-validation of all four labelers, determinism under thread
// scheduling, ledger reproducibility, and larger-scale smoke runs.
#include <gtest/gtest.h>

#include "histcc/histcc.hpp"

using namespace histcc;

// ---- Randomized cross-validation: all labelers agree on arbitrary
// images, across connectivities, colour rules, sizes and machine sizes.
class LabelerAgreement
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, std::uint32_t, int>> {};

TEST_P(LabelerAgreement, FourWay) {
  const auto [n, k, p, conn_int] = GetParam();
  const auto conn = static_cast<ccseq::Connectivity>(conn_int);
  const auto rule =
      k == 2 ? ccseq::ColourRule::kBinary : ccseq::ColourRule::kSameColour;
  const auto image = img::make_random_grey(n, k, 7777 + n * k + p);

  const auto bfs = ccseq::label_components_bfs(image, conn, rule);
  EXPECT_EQ(bfs, ccseq::label_components_unionfind(image, conn, rule));
  EXPECT_EQ(bfs, ccseq::label_components_hoshen_kopelman(image, conn, rule));

  splitc::Machine machine(p);
  cc::CcOptions options;
  options.connectivity = conn;
  options.rule = rule;
  EXPECT_EQ(bfs, cc::connected_components_parallel(machine, image, options));
}

INSTANTIATE_TEST_SUITE_P(
    RandomImages, LabelerAgreement,
    ::testing::Combine(::testing::Values(32u, 64u),       // n
                       ::testing::Values(2u, 4u, 16u),    // k
                       ::testing::Values(2u, 8u, 32u),    // p
                       ::testing::Values(4, 8)));         // connectivity

// ---- Ragged-shape agreement under both Spread allocation modes: H x W
// drawn from a seeded splitmix stream (no square bias, dimensions logged
// so a failure is reproducible from the seed alone), every labeler
// compared against BFS, and the parallel labeler run under kPacked AND
// kStrided so the differential guarantee extends to random shapes.
TEST_P(LabelerAgreement, RaggedShapesBothAllocationModes) {
  const auto [n, k, p, conn_int] = GetParam();
  const auto conn = static_cast<ccseq::Connectivity>(conn_int);
  const auto rule =
      k == 2 ? ccseq::ColourRule::kBinary : ccseq::ColourRule::kSameColour;

  const std::uint32_t seed = 90210 + n * 131 + k * 17 + p * 3 +
                             static_cast<std::uint32_t>(conn_int);
  std::uint64_t state = seed;
  auto next = [&state] {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  const auto h = static_cast<std::uint32_t>(1 + next() % (2 * n));
  const auto w = static_cast<std::uint32_t>(1 + next() % (2 * n));
  SCOPED_TRACE("seed=" + std::to_string(seed) + " shape=" +
               std::to_string(h) + "x" + std::to_string(w) + " p=" +
               std::to_string(p));

  img::GreyImage image(h, w);
  for (auto& px : image.pixels()) {
    px = static_cast<std::uint8_t>(next() % k);
  }

  const auto bfs = ccseq::label_components_bfs(image, conn, rule);
  EXPECT_EQ(bfs, ccseq::label_components_unionfind(image, conn, rule));
  EXPECT_EQ(bfs, ccseq::label_components_hoshen_kopelman(image, conn, rule));

  cc::CcOptions options;
  options.connectivity = conn;
  options.rule = rule;
  for (const auto mode :
       {splitc::SpreadLayout::kPacked, splitc::SpreadLayout::kStrided}) {
    splitc::Machine machine(p);
    machine.set_spread_layout(mode);
    EXPECT_EQ(bfs, cc::connected_components_parallel(machine, image, options))
        << (mode == splitc::SpreadLayout::kPacked ? "packed" : "strided");
  }
}

// ---- Determinism: re-running the same parallel program must produce the
// same labels AND the same communication ledger, regardless of thread
// interleaving.
TEST(DeterminismTest, RepeatedCcRunsIdentical) {
  const auto image = img::make_darpa_like(96, 55);
  splitc::Machine machine(16);
  cc::CcOptions options;
  options.rule = ccseq::ColourRule::kSameColour;

  const auto first = cc::connected_components_parallel(machine, image, options);
  const auto first_stats = machine.total_stats();
  for (int round = 0; round < 3; ++round) {
    const auto again =
        cc::connected_components_parallel(machine, image, options);
    EXPECT_EQ(again, first);
    const auto stats = machine.total_stats();
    EXPECT_EQ(stats.words, first_stats.words);
    EXPECT_EQ(stats.messages, first_stats.messages);
    EXPECT_EQ(stats.batches, first_stats.batches);
    EXPECT_EQ(stats.barriers, first_stats.barriers);
    EXPECT_EQ(stats.local_ops, first_stats.local_ops);
  }
}

TEST(DeterminismTest, RepeatedHistogramRunsIdentical) {
  const auto image = img::make_random_grey(128, 256, 2);
  splitc::Machine machine(32);
  const auto first = hist::histogram_parallel(machine, image, 256);
  const auto first_words = machine.total_stats().words;
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(hist::histogram_parallel(machine, image, 256), first);
    EXPECT_EQ(machine.total_stats().words, first_words);
  }
}

// ---- Scale smoke tests (kept to a few seconds total).
TEST(ScaleTest, Cc512At64Procs) {
  const auto image = img::make_darpa_like(512, 1);
  splitc::Machine machine(64);
  cc::CcOptions options;
  options.rule = ccseq::ColourRule::kSameColour;
  const auto labels = cc::connected_components_parallel(machine, image, options);
  EXPECT_EQ(labels, ccseq::label_components_bfs(
                        image, ccseq::Connectivity::kEight,
                        ccseq::ColourRule::kSameColour));
}

TEST(ScaleTest, Cc256At128Procs) {
  // 128 virtual processors on a small host: heavy oversubscription, the
  // full 7-phase merge schedule on an 8x16 grid.
  const auto image = img::make_test_pattern(img::TestPattern::kDualSpiral, 256);
  splitc::Machine machine(128);
  const auto labels = cc::connected_components_parallel(machine, image);
  EXPECT_EQ(labels, ccseq::label_components_bfs(image));
}

TEST(ScaleTest, Histogram1024At128Procs) {
  const auto image = img::make_random_grey(1024, 256, 3);
  splitc::Machine machine(128);
  const auto counts = hist::histogram_parallel(machine, image, 256);
  EXPECT_EQ(counts, hist::histogram_seq(image, 256));
}

TEST(ScaleTest, ManyBarrierEpisodesSurviveOversubscription) {
  splitc::Machine machine(128);
  std::vector<int> rounds(128, 0);
  machine.run([&](splitc::Proc& self) {
    for (int i = 0; i < 50; ++i) {
      self.barrier();
      rounds[self.rank()]++;
    }
  });
  for (const int r : rounds) EXPECT_EQ(r, 50);
}

// ---- Ledger reproducibility across machine instances.
TEST(LedgerTest, FreshMachineSameCosts) {
  const auto image = img::make_percolation(64, 0.6, 17);
  std::uint64_t words_a = 0, words_b = 0;
  {
    splitc::Machine machine(16);
    (void)cc::connected_components_parallel(machine, image);
    words_a = machine.total_stats().words;
  }
  {
    splitc::Machine machine(16);
    (void)cc::connected_components_parallel(machine, image);
    words_b = machine.total_stats().words;
  }
  EXPECT_EQ(words_a, words_b);
}

// ---- The merge algorithm's communication grows like O(n), not O(n^2).
TEST(AsymptoticsTest, CcWordsGrowLinearlyInN) {
  auto words_for = [](std::uint32_t n) {
    const auto image = img::make_percolation(n, 0.6, 5);
    splitc::Machine machine(16);
    (void)cc::connected_components_parallel(machine, image);
    return machine.total_stats().words;
  };
  const auto w128 = words_for(128);
  const auto w256 = words_for(256);
  const auto w512 = words_for(512);
  // Doubling n should roughly double the words (ratio far below the 4x
  // that O(n^2) would give).
  EXPECT_LT(static_cast<double>(w256) / static_cast<double>(w128), 2.6);
  EXPECT_LT(static_cast<double>(w512) / static_cast<double>(w256), 2.6);
  EXPECT_GT(static_cast<double>(w512) / static_cast<double>(w256), 1.5);
}

TEST(AsymptoticsTest, HistWordsConstantInN) {
  auto words_for = [](std::uint32_t n) {
    const auto image = img::make_random_grey(n, 64, 5);
    splitc::Machine machine(16);
    (void)hist::histogram_parallel(machine, image, 64);
    return machine.total_stats().words;
  };
  EXPECT_EQ(words_for(64), words_for(512));
}
