// Schedule-perturbation stress: Machine::set_schedule_perturbation injects
// seeded pre-barrier delays per rank, shuffling which interleavings the OS
// realises.  Two properties must hold across seeds:
//
//   1. The paper's algorithms are schedule-independent: identical results
//      and zero ledger conflicts under every perturbation seed.
//   2. The ledger's *detection* is schedule-independent — the gap TSan
//      leaves.  A protocol-racy program yields the identical diagnostic
//      under every seed, because the check keys on (rank, barrier epoch),
//      not on physical timing.
//
// Seed selection: the fixed catalog below runs everywhere (deterministic,
// reproducible).  Setting HISTCC_STRESS_RANDOM=1 switches to freshly
// drawn random seeds — the nightly CI mode, which walks a different part
// of the schedule space on every run.  HISTCC_STRESS_SEEDS sets how many
// (default 8).  Every seed is printed, and every assertion names its
// seed, so a nightly failure is replayable with the fixed catalog
// temporarily extended by the printed value.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <random>
#include <string_view>
#include <thread>
#include <vector>

#include "histcc/cc/parallel_cc.hpp"
#include "histcc/cc_seq/bfs_label.hpp"
#include "histcc/hist/histogram.hpp"
#include "histcc/image/generators.hpp"
#include "histcc/splitc/machine.hpp"
#include "histcc/splitc/race_ledger.hpp"
#include "histcc/splitc/spread.hpp"

namespace cc = histcc::cc;
namespace ccseq = histcc::ccseq;
namespace hist = histcc::hist;
namespace im = histcc::img;
namespace sc = histcc::splitc;

namespace {

constexpr std::uint64_t kFixedSeeds[] = {1,          2,       42,
                                         0xDEADBEEF, 7777777, 987654321012345ull};

/// The seed sweep for this process: the fixed catalog, or — with
/// HISTCC_STRESS_RANDOM=1 — freshly drawn seeds (nightly mode).  Drawn
/// once and printed so any failure can be replayed.
const std::vector<std::uint64_t>& stress_seeds() {
  static const std::vector<std::uint64_t> seeds = [] {
    const char* random_mode = std::getenv("HISTCC_STRESS_RANDOM");
    if (random_mode == nullptr || std::string_view(random_mode) != "1") {
      return std::vector<std::uint64_t>(std::begin(kFixedSeeds),
                                        std::end(kFixedSeeds));
    }
    std::size_t count = 8;
    if (const char* n = std::getenv("HISTCC_STRESS_SEEDS")) {
      count = std::max<std::size_t>(1, std::strtoull(n, nullptr, 10));
    }
    std::random_device device;
    std::vector<std::uint64_t> drawn(count);
    for (auto& seed : drawn) {
      seed = (static_cast<std::uint64_t>(device()) << 32) | device();
      if (seed == 0) seed = 1;  // 0 means "perturbation off"
    }
    std::cout << "[stress] HISTCC_STRESS_RANDOM=1: drew " << drawn.size()
              << " random seeds:";
    for (const auto seed : drawn) std::cout << ' ' << seed;
    std::cout << '\n';
    return drawn;
  }();
  return seeds;
}

void await(const std::atomic<int>& flag, int want) {
  while (flag.load(std::memory_order_acquire) != want) {
    std::this_thread::yield();
  }
}

}  // namespace

TEST(ScheduleStress, AlgorithmsAreScheduleIndependent) {
  const auto image = im::make_test_pattern(im::TestPattern::kDualSpiral, 64);
  const auto want_labels = ccseq::label_components_bfs(image);
  const auto want_hist = hist::histogram_seq(image, 2);

  for (const std::uint64_t seed : stress_seeds()) {
    sc::Machine machine(16);  // RacePolicy::kThrow: conflicts abort the run
    machine.set_schedule_perturbation(seed);

    const auto labels =
        cc::connected_components_parallel(machine, image, cc::CcOptions{});
    ASSERT_EQ(labels.pixels().size(), want_labels.pixels().size());
    for (std::size_t i = 0; i < labels.pixels().size(); ++i) {
      ASSERT_EQ(labels.pixels()[i], want_labels.pixels()[i])
          << "seed " << seed << " pixel " << i;
    }

    EXPECT_EQ(hist::histogram_parallel(machine, image, 2), want_hist)
        << "seed " << seed;

    if (sc::Machine::race_ledger_compiled()) {
      EXPECT_EQ(machine.race_ledger_registry()->conflict_count(), 0u)
          << "seed " << seed;
    }
  }
}

TEST(ScheduleStress, DetectionIsScheduleIndependent) {
  if (!sc::Machine::race_ledger_compiled()) {
    GTEST_SKIP() << "built without HISTCC_RACE_LEDGER";
  }
  for (const std::uint64_t seed : stress_seeds()) {
    sc::Machine machine(4);
    machine.set_race_policy(sc::RacePolicy::kRecord);
    machine.set_schedule_perturbation(seed);
    sc::Spread<std::uint32_t> data(machine, 8, "stress_racy");

    // The same flag-sequenced protocol race as the ledger suite: no C++
    // data race, but a write-write conflict in epoch 1.
    std::atomic<int> turn{0};
    machine.run([&](sc::Proc& self) {
      if (self.rank() == 0) {
        data.put(self, 2, 5, 111u);
        turn.store(1, std::memory_order_release);
      } else if (self.rank() == 1) {
        await(turn, 1);
        data.put(self, 2, 5, 222u);
      }
      self.barrier();
    });

    auto* ledger = machine.race_ledger_registry();
    ASSERT_EQ(ledger->conflict_count(), 1u) << "seed " << seed;
    const auto diags = ledger->diagnostics();
    ASSERT_EQ(diags.size(), 1u) << "seed " << seed;
    const auto& d = diags.front();
    EXPECT_EQ(d.array, "stress_racy") << "seed " << seed;
    EXPECT_EQ(d.owner, 2u);
    EXPECT_EQ(d.offset, 5u);
    EXPECT_EQ(d.epoch, 1u);
    EXPECT_EQ(d.first_rank, 0u);
    EXPECT_EQ(d.second_rank, 1u);
  }
}

TEST(ScheduleStress, PerturbationOffByDefaultAndResettable) {
  sc::Machine machine(4);
  // Seed 0 explicitly turns perturbation off again after a seeded run.
  machine.set_schedule_perturbation(123);
  machine.run([](sc::Proc& self) { self.barrier(); });
  machine.set_schedule_perturbation(0);
  machine.run([](sc::Proc& self) {
    self.barrier();
    EXPECT_EQ(self.epoch(), 2u);
  });
}
