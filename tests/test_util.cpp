// Tests for histcc/util: math helpers, RNG determinism, contracts.
#include <gtest/gtest.h>

#include <set>

#include "histcc/util/math.hpp"
#include "histcc/util/require.hpp"
#include "histcc/util/rng.hpp"
#include "histcc/util/timer.hpp"

namespace hu = histcc::util;

TEST(MathTest, IsPow2) {
  EXPECT_TRUE(hu::is_pow2(1u));
  EXPECT_TRUE(hu::is_pow2(2u));
  EXPECT_TRUE(hu::is_pow2(64u));
  EXPECT_TRUE(hu::is_pow2(1u << 30));
  EXPECT_FALSE(hu::is_pow2(0u));
  EXPECT_FALSE(hu::is_pow2(3u));
  EXPECT_FALSE(hu::is_pow2(6u));
  EXPECT_FALSE(hu::is_pow2(255u));
}

TEST(MathTest, Log2Floor) {
  EXPECT_EQ(hu::log2_floor(1u), 0u);
  EXPECT_EQ(hu::log2_floor(2u), 1u);
  EXPECT_EQ(hu::log2_floor(3u), 1u);
  EXPECT_EQ(hu::log2_floor(1024u), 10u);
  EXPECT_EQ(hu::log2_floor(1025u), 10u);
}

TEST(MathTest, CeilDiv) {
  EXPECT_EQ(hu::ceil_div(10u, 3u), 4u);
  EXPECT_EQ(hu::ceil_div(9u, 3u), 3u);
  EXPECT_EQ(hu::ceil_div(1u, 100u), 1u);
  EXPECT_EQ(hu::ceil_div(0u, 5u), 0u);
}

TEST(MathTest, NextPow2) {
  EXPECT_EQ(hu::next_pow2(1u), 1u);
  EXPECT_EQ(hu::next_pow2(3u), 4u);
  EXPECT_EQ(hu::next_pow2(64u), 64u);
  EXPECT_EQ(hu::next_pow2(65u), 128u);
}

// The paper's logical grid: v = 2^floor(d/2) rows, w = 2^ceil(d/2) columns.
TEST(MathTest, GridShapeMatchesPaper) {
  struct Case {
    std::uint32_t p, v, w;
  };
  const Case cases[] = {{1, 1, 1},   {2, 1, 2},   {4, 2, 2},  {8, 2, 4},
                        {16, 4, 4},  {32, 4, 8},  {64, 8, 8}, {128, 8, 16},
                        {256, 16, 16}};
  for (const auto& c : cases) {
    const auto g = hu::grid_shape(c.p);
    EXPECT_EQ(g.rows, c.v) << "p=" << c.p;
    EXPECT_EQ(g.cols, c.w) << "p=" << c.p;
    EXPECT_EQ(g.rows * g.cols, c.p) << "p=" << c.p;
    EXPECT_GE(g.cols, g.rows) << "p=" << c.p;
  }
}

TEST(RequireTest, ThrowsContractError) {
  EXPECT_THROW(HISTCC_REQUIRE(false, "detail goes here"),
               hu::contract_error);
  EXPECT_NO_THROW(HISTCC_REQUIRE(true, "never thrown"));
}

TEST(RequireTest, MessageNamesConditionAndDetail) {
  try {
    HISTCC_REQUIRE(1 == 2, "the detail");
    FAIL() << "expected contract_error";
  } catch (const hu::contract_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("1 == 2"), std::string::npos);
    EXPECT_NE(msg.find("the detail"), std::string::npos);
  }
}

TEST(RngTest, DeterministicForSeed) {
  hu::Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  hu::Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, NextBelowInRange) {
  hu::Rng rng(7);
  for (const std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowCoversSmallRange) {
  hu::Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, DoubleInUnitInterval) {
  hu::Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  hu::Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  hu::Rng rng(17);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.next_bool(0.3)) ++hits;
  }
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(TimerTest, MeasuresElapsedTime) {
  hu::Timer t;
  const double a = t.seconds();
  EXPECT_GE(a, 0.0);
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.seconds(), a);
  EXPECT_GE(t.nanoseconds(), 0);
}

TEST(TimerTest, PhaseTimerAccumulates) {
  hu::PhaseTimer t;
  EXPECT_EQ(t.seconds(), 0.0);
  t.start();
  t.stop();
  const double first = t.seconds();
  EXPECT_GE(first, 0.0);
  t.start();
  t.stop();
  EXPECT_GE(t.seconds(), first);
  t.reset();
  EXPECT_EQ(t.seconds(), 0.0);
}
