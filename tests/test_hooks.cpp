// Tests for tile hooks (Procedure 2, Figure 5), border-only updating, and
// the final interior relabeling — the paper's core novelty.
#include <gtest/gtest.h>

#include "histcc/cc/hooks.hpp"
#include "histcc/cc_seq/bfs_label.hpp"

namespace cc = histcc::cc;
namespace cs = histcc::ccseq;

namespace {

/// Label a rows x cols tile with labels = row-major seed index + 1.
std::vector<std::uint32_t> label(const std::vector<std::uint8_t>& px,
                                 std::uint32_t rows, std::uint32_t cols,
                                 cs::Connectivity conn = cs::Connectivity::kEight) {
  std::vector<std::uint32_t> lb(px.size());
  cs::BfsScratch scratch;
  cs::label_tile(
      px, lb, rows, cols, conn, cs::ColourRule::kBinary,
      [cols](std::uint32_t i, std::uint32_t j) { return i * cols + j + 1; },
      scratch);
  return lb;
}

}  // namespace

TEST(BorderOffsetsTest, CountsAndUniqueness) {
  const auto offsets = cc::tile_border_offsets(4, 6);
  EXPECT_EQ(offsets.size(), 2u * (4 + 6) - 4);
  std::set<std::uint32_t> unique(offsets.begin(), offsets.end());
  EXPECT_EQ(unique.size(), offsets.size());
  for (const auto off : offsets) {
    const auto i = off / 6;
    const auto j = off % 6;
    EXPECT_TRUE(i == 0 || i == 3 || j == 0 || j == 5) << off;
  }
}

TEST(BorderOffsetsTest, DegenerateTiles) {
  EXPECT_EQ(cc::tile_border_offsets(1, 5).size(), 5u);
  EXPECT_EQ(cc::tile_border_offsets(5, 1).size(), 5u);
  EXPECT_EQ(cc::tile_border_offsets(1, 1).size(), 1u);
  EXPECT_EQ(cc::tile_border_offsets(2, 2).size(), 4u);
}

TEST(TileHooksTest, OneHookPerBorderComponent) {
  // 4x4 tile: component A occupies the top row, component B the bottom
  // row; a third component sits strictly inside no tile this small, so add
  // a bigger example below.
  const std::vector<std::uint8_t> px{1, 1, 1, 1,  //
                                     0, 0, 0, 0,  //
                                     0, 0, 0, 0,  //
                                     1, 1, 1, 1};
  const auto lb = label(px, 4, 4);
  const auto offsets = cc::tile_border_offsets(4, 4);
  const auto hooks = cc::make_tile_hooks(px, lb, offsets);
  ASSERT_EQ(hooks.size(), 2u);
  EXPECT_EQ(hooks[0].label, 1u);   // top row, seed (0,0)
  EXPECT_EQ(hooks[1].label, 13u);  // bottom row, seed (3,0)
  // Hook offsets point at border pixels of the right component.
  EXPECT_EQ(lb[hooks[0].offset], 1u);
  EXPECT_EQ(lb[hooks[1].offset], 13u);
}

TEST(TileHooksTest, InteriorComponentsGetNoHook) {
  // 5x5 tile with an isolated centre pixel: it touches no border.
  std::vector<std::uint8_t> px(25, 0);
  px[12] = 1;        // centre (2,2)
  px[0] = 1;         // corner component
  const auto lb = label(px, 5, 5);
  const auto hooks =
      cc::make_tile_hooks(px, lb, cc::tile_border_offsets(5, 5));
  ASSERT_EQ(hooks.size(), 1u);
  EXPECT_EQ(hooks[0].label, 1u);
}

TEST(TileHooksTest, HooksAreSortedByLabel) {
  std::vector<std::uint8_t> px(64, 0);
  // Components at the four corners of an 8x8 tile.
  px[0] = px[7] = px[56] = px[63] = 1;
  const auto lb = label(px, 8, 8);
  const auto hooks =
      cc::make_tile_hooks(px, lb, cc::tile_border_offsets(8, 8));
  ASSERT_EQ(hooks.size(), 4u);
  for (std::size_t i = 1; i < hooks.size(); ++i) {
    EXPECT_LT(hooks[i - 1].label, hooks[i].label);
  }
}

TEST(UpdateBordersTest, OnlyBorderPixelsChange) {
  // 4x4 all-foreground tile, single component labeled 1 everywhere.
  std::vector<std::uint8_t> px(16, 1);
  auto lb = label(px, 4, 4);
  const std::vector<cc::ChangePair> changes{{1, 42}};
  cc::update_border_labels(lb, px, cc::tile_border_offsets(4, 4), changes);
  // Border pixels now 42; the four interior pixels still 1.
  EXPECT_EQ(lb[0], 42u);
  EXPECT_EQ(lb[3], 42u);
  EXPECT_EQ(lb[12], 42u);
  EXPECT_EQ(lb[5], 1u);
  EXPECT_EQ(lb[6], 1u);
  EXPECT_EQ(lb[9], 1u);
  EXPECT_EQ(lb[10], 1u);
}

TEST(UpdateBordersTest, BackgroundAndUnlistedLabelsUntouched) {
  std::vector<std::uint8_t> px{1, 0, 1, 1};
  std::vector<std::uint32_t> lb{5, 0, 9, 9};
  const std::vector<cc::ChangePair> changes{{5, 2}};
  cc::update_border_labels(lb, px, cc::tile_border_offsets(2, 2), changes);
  EXPECT_EQ(lb, (std::vector<std::uint32_t>{2, 0, 9, 9}));
}

TEST(UpdateAllTest, EveryPixelChanges) {
  std::vector<std::uint8_t> px(16, 1);
  auto lb = label(px, 4, 4);
  const std::vector<cc::ChangePair> changes{{1, 42}};
  cc::update_all_labels(lb, px, changes);
  for (const auto l : lb) EXPECT_EQ(l, 42u);
}

TEST(RelabelInteriorTest, StaleInteriorIsFixed) {
  // All-foreground 4x4 tile: labels 1; border updated to 42; the final
  // pass must pull the interior to 42 via the hook.
  std::vector<std::uint8_t> px(16, 1);
  auto lb = label(px, 4, 4);
  const auto hooks = cc::make_tile_hooks(px, lb, cc::tile_border_offsets(4, 4));
  cc::update_border_labels(lb, px, cc::tile_border_offsets(4, 4),
                           {{cc::ChangePair{1, 42}}});
  std::vector<std::uint8_t> visited;
  cc::relabel_interior(lb, 4, 4, hooks, cs::Connectivity::kEight, visited);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(lb[i], 42u) << i;
}

TEST(RelabelInteriorTest, UnchangedComponentsAreSkipped) {
  std::vector<std::uint8_t> px(16, 1);
  auto lb = label(px, 4, 4);
  const auto hooks = cc::make_tile_hooks(px, lb, cc::tile_border_offsets(4, 4));
  std::vector<std::uint8_t> visited;
  cc::relabel_interior(lb, 4, 4, hooks, cs::Connectivity::kEight, visited);
  for (const auto l : lb) EXPECT_EQ(l, 1u);
}

TEST(RelabelInteriorTest, MultipleComponentsIndependently) {
  // Two components: top row (label 1) and bottom row (label 13); only the
  // bottom one was merged away.
  std::vector<std::uint8_t> px{1, 1, 1, 1,  //
                               0, 0, 0, 0,  //
                               1, 1, 1, 1,  //
                               1, 1, 1, 1};
  auto lb = label(px, 4, 4);
  const auto hooks = cc::make_tile_hooks(px, lb, cc::tile_border_offsets(4, 4));
  cc::update_border_labels(lb, px, cc::tile_border_offsets(4, 4),
                           {{cc::ChangePair{9, 3}}});
  std::vector<std::uint8_t> visited;
  cc::relabel_interior(lb, 4, 4, hooks, cs::Connectivity::kEight, visited);
  for (std::uint32_t j = 0; j < 4; ++j) {
    EXPECT_EQ(lb[j], 1u);
    EXPECT_EQ(lb[8 + j], 3u);
    EXPECT_EQ(lb[12 + j], 3u);
  }
}

TEST(RelabelInteriorTest, UShapedComponentFullyRelabeled) {
  // A U-shape whose interior pixels connect only through border pixels:
  // the BFS must traverse already-updated border pixels to reach all
  // stale ones.
  std::vector<std::uint8_t> px{1, 0, 0, 1,  //
                               1, 0, 0, 1,  //
                               1, 0, 0, 1,  //
                               1, 1, 1, 1};
  auto lb = label(px, 4, 4);
  // One component (seed (0,0) -> label 1).
  for (std::size_t i = 0; i < px.size(); ++i) {
    if (px[i]) {
      ASSERT_EQ(lb[i], 1u);
    }
  }
  const auto hooks = cc::make_tile_hooks(px, lb, cc::tile_border_offsets(4, 4));
  ASSERT_EQ(hooks.size(), 1u);
  cc::update_border_labels(lb, px, cc::tile_border_offsets(4, 4),
                           {{cc::ChangePair{1, 77}}});
  std::vector<std::uint8_t> visited;
  cc::relabel_interior(lb, 4, 4, hooks, cs::Connectivity::kEight, visited);
  for (std::size_t i = 0; i < px.size(); ++i) {
    if (px[i]) {
      EXPECT_EQ(lb[i], 77u) << i;
    }
  }
}

TEST(RelabelInteriorTest, FourConnectivityRespected) {
  // Diagonal-only pair: under 4-connectivity they are separate components
  // with separate hooks; relabeling one must not leak into the other.
  std::vector<std::uint8_t> px{1, 0,  //
                               0, 1};
  auto lb = label(px, 2, 2, cs::Connectivity::kFour);
  ASSERT_EQ(lb[0], 1u);
  ASSERT_EQ(lb[3], 4u);
  const auto hooks = cc::make_tile_hooks(px, lb, cc::tile_border_offsets(2, 2));
  cc::update_border_labels(lb, px, cc::tile_border_offsets(2, 2),
                           {{cc::ChangePair{1, 99}}});
  std::vector<std::uint8_t> visited;
  cc::relabel_interior(lb, 2, 2, hooks, cs::Connectivity::kFour, visited);
  EXPECT_EQ(lb[0], 99u);
  EXPECT_EQ(lb[3], 4u);
}
