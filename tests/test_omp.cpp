// Tests for the shared-memory (OpenMP) host backend: exact agreement with
// the sequential references across workloads, connectivities, and colour
// rules, plus strip-boundary edge cases.
#include <gtest/gtest.h>

#include "histcc/cc_seq/bfs_label.hpp"
#include "histcc/hist/histogram.hpp"
#include "histcc/image/generators.hpp"
#include "histcc/omp/parallel_host.hpp"
#include "histcc/util/require.hpp"

namespace cs = histcc::ccseq;
namespace hh = histcc::hist;
namespace im = histcc::img;
namespace ho = histcc::omp;

TEST(OmpBackendTest, ReportsThreads) {
  EXPECT_GE(ho::backend_threads(), 1u);
}

class OmpHistSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(OmpHistSweep, MatchesSequential) {
  const auto [n, k] = GetParam();
  const auto image = im::make_random_grey(n, k, n * 3 + k);
  EXPECT_EQ(ho::histogram_omp(image, k), hh::histogram_seq(image, k));
}

INSTANTIATE_TEST_SUITE_P(Sweep, OmpHistSweep,
                         ::testing::Combine(::testing::Values(32u, 64u, 257u),
                                            ::testing::Values(2u, 16u, 256u)));

TEST(OmpHistTest, RejectsBadInputs) {
  const auto image = im::make_random_grey(32, 256, 1);
  EXPECT_THROW((void)ho::histogram_omp(image, 3),
               histcc::util::contract_error);
  EXPECT_THROW((void)ho::histogram_omp(image, 16),  // pixels >= 16 exist
               histcc::util::contract_error);
}

class OmpCcSweep : public ::testing::TestWithParam<int> {};

TEST_P(OmpCcSweep, MatchesBfsOnCatalog) {
  const auto pattern = static_cast<im::TestPattern>(GetParam());
  for (const std::uint32_t n : {64u, 127u, 128u}) {  // odd size too
    const auto image = im::make_test_pattern(pattern, n);
    for (const auto conn :
         {cs::Connectivity::kFour, cs::Connectivity::kEight}) {
      EXPECT_EQ(ho::connected_components_omp(image, conn),
                cs::label_components_bfs(image, conn))
          << im::pattern_name(pattern) << " n=" << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, OmpCcSweep, ::testing::Range(1, 10));

TEST(OmpCcTest, GreyRule) {
  const auto image = im::make_darpa_like(96, 77);
  EXPECT_EQ(ho::connected_components_omp(image, cs::Connectivity::kEight,
                                         cs::ColourRule::kSameColour),
            cs::label_components_bfs(image, cs::Connectivity::kEight,
                                     cs::ColourRule::kSameColour));
}

TEST(OmpCcTest, PercolationSweep) {
  for (const double occ : {0.3, 0.592746, 0.9}) {
    const auto image = im::make_percolation(128, occ, 11);
    EXPECT_EQ(ho::connected_components_omp(image),
              cs::label_components_bfs(image)) << occ;
  }
}

TEST(OmpCcTest, ComponentsSpanningStripBoundaries) {
  // Vertical lines cross every strip boundary; one component per column.
  im::GreyImage image(64, 64, 0);
  for (std::uint32_t i = 0; i < 64; ++i) {
    for (std::uint32_t j = 0; j < 64; j += 4) image(i, j) = 1;
  }
  EXPECT_EQ(ho::connected_components_omp(image, cs::Connectivity::kFour),
            cs::label_components_bfs(image, cs::Connectivity::kFour));
}

TEST(OmpCcTest, TinyImages) {
  for (const std::uint32_t n : {1u, 2u, 3u}) {
    im::GreyImage image(n, n, 1);
    const auto labels = ho::connected_components_omp(image);
    for (const auto l : labels.pixels()) EXPECT_EQ(l, 1u);
  }
  const im::GreyImage empty_row(1, 8, 0);
  const auto labels = ho::connected_components_omp(empty_row);
  for (const auto l : labels.pixels()) EXPECT_EQ(l, 0u);
}

TEST(OmpCcTest, DeterministicAcrossRuns) {
  const auto image = im::make_darpa_like(128, 4);
  const auto first = ho::connected_components_omp(
      image, cs::Connectivity::kEight, cs::ColourRule::kSameColour);
  for (int round = 0; round < 5; ++round) {
    EXPECT_EQ(ho::connected_components_omp(image, cs::Connectivity::kEight,
                                           cs::ColourRule::kSameColour),
              first);
  }
}
