// Tests for the shared-memory (OpenMP) host backend: exact agreement with
// the sequential references across workloads, connectivities, and colour
// rules, strip-boundary edge cases, explicit team sizes, and the
// barrier-epoch checker (epoch_check.hpp) — including a deliberately racy
// OpenMP program that must be detected with full diagnostics.
#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include <atomic>
#include <thread>
#include <vector>

#include "histcc/cc_seq/bfs_label.hpp"
#include "histcc/hist/histogram.hpp"
#include "histcc/image/generators.hpp"
#include "histcc/omp/epoch_check.hpp"
#include "histcc/omp/parallel_host.hpp"
#include "histcc/splitc/race_ledger.hpp"
#include "histcc/util/require.hpp"

namespace cs = histcc::ccseq;
namespace hh = histcc::hist;
namespace im = histcc::img;
namespace ho = histcc::omp;
namespace sc = histcc::splitc;

namespace {

/// Spin until `flag` reaches `want`.
void await(const std::atomic<int>& flag, int want) {
  while (flag.load(std::memory_order_acquire) != want) {
    std::this_thread::yield();
  }
}

/// RAII toggle for the built-in algorithms' self-instrumentation.
struct ScopedEpochCheck {
  ScopedEpochCheck() { ho::set_epoch_check_enabled(true); }
  ~ScopedEpochCheck() { ho::set_epoch_check_enabled(false); }
};

}  // namespace

TEST(OmpBackendTest, ReportsThreads) {
  EXPECT_GE(ho::backend_threads(), 1u);
}

class OmpHistSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(OmpHistSweep, MatchesSequential) {
  const auto [n, k] = GetParam();
  const auto image = im::make_random_grey(n, k, n * 3 + k);
  EXPECT_EQ(ho::histogram_omp(image, k), hh::histogram_seq(image, k));
}

INSTANTIATE_TEST_SUITE_P(Sweep, OmpHistSweep,
                         ::testing::Combine(::testing::Values(32u, 64u, 257u),
                                            ::testing::Values(2u, 16u, 256u)));

TEST(OmpHistTest, RejectsBadInputs) {
  const auto image = im::make_random_grey(32, 256, 1);
  EXPECT_THROW((void)ho::histogram_omp(image, 3),
               histcc::util::contract_error);
  EXPECT_THROW((void)ho::histogram_omp(image, 16),  // pixels >= 16 exist
               histcc::util::contract_error);
}

class OmpCcSweep : public ::testing::TestWithParam<int> {};

TEST_P(OmpCcSweep, MatchesBfsOnCatalog) {
  const auto pattern = static_cast<im::TestPattern>(GetParam());
  for (const std::uint32_t n : {64u, 127u, 128u}) {  // odd size too
    const auto image = im::make_test_pattern(pattern, n);
    for (const auto conn :
         {cs::Connectivity::kFour, cs::Connectivity::kEight}) {
      EXPECT_EQ(ho::connected_components_omp(image, conn),
                cs::label_components_bfs(image, conn))
          << im::pattern_name(pattern) << " n=" << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, OmpCcSweep, ::testing::Range(1, 10));

TEST(OmpCcTest, GreyRule) {
  const auto image = im::make_darpa_like(96, 77);
  EXPECT_EQ(ho::connected_components_omp(image, cs::Connectivity::kEight,
                                         cs::ColourRule::kSameColour),
            cs::label_components_bfs(image, cs::Connectivity::kEight,
                                     cs::ColourRule::kSameColour));
}

TEST(OmpCcTest, PercolationSweep) {
  for (const double occ : {0.3, 0.592746, 0.9}) {
    const auto image = im::make_percolation(128, occ, 11);
    EXPECT_EQ(ho::connected_components_omp(image),
              cs::label_components_bfs(image)) << occ;
  }
}

TEST(OmpCcTest, ComponentsSpanningStripBoundaries) {
  // Vertical lines cross every strip boundary; one component per column.
  im::GreyImage image(64, 64, 0);
  for (std::uint32_t i = 0; i < 64; ++i) {
    for (std::uint32_t j = 0; j < 64; j += 4) image(i, j) = 1;
  }
  EXPECT_EQ(ho::connected_components_omp(image, cs::Connectivity::kFour),
            cs::label_components_bfs(image, cs::Connectivity::kFour));
}

TEST(OmpCcTest, TinyImages) {
  for (const std::uint32_t n : {1u, 2u, 3u}) {
    im::GreyImage image(n, n, 1);
    const auto labels = ho::connected_components_omp(image);
    for (const auto l : labels.pixels()) EXPECT_EQ(l, 1u);
  }
  const im::GreyImage empty_row(1, 8, 0);
  const auto labels = ho::connected_components_omp(empty_row);
  for (const auto l : labels.pixels()) EXPECT_EQ(l, 0u);
}

TEST(OmpCcTest, DeterministicAcrossRuns) {
  const auto image = im::make_darpa_like(128, 4);
  const auto first = ho::connected_components_omp(
      image, cs::Connectivity::kEight, cs::ColourRule::kSameColour);
  for (int round = 0; round < 5; ++round) {
    EXPECT_EQ(ho::connected_components_omp(image, cs::Connectivity::kEight,
                                           cs::ColourRule::kSameColour),
              first);
  }
}

TEST(OmpCcTest, ExplicitTeamSizesMatchSequential) {
  const auto image = im::make_percolation(97, 0.58, 13);  // odd side
  const auto want = cs::label_components_bfs(image);
  for (const unsigned threads : {1u, 3u, 7u, 16u}) {
    EXPECT_EQ(ho::connected_components_omp(image, cs::Connectivity::kEight,
                                           cs::ColourRule::kBinary, threads),
              want)
        << "threads=" << threads;
  }
  for (const unsigned threads : {1u, 3u, 7u, 16u}) {
    EXPECT_EQ(ho::histogram_omp(image, 2, threads),
              hh::histogram_seq(image, 2))
        << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Barrier-epoch checking of the OpenMP mirror (epoch_check.hpp).

TEST(OmpEpochCheck, BuiltInAlgorithmsSelfVerifyClean) {
  ScopedEpochCheck guard;
  const auto image = im::make_test_pattern(im::TestPattern::kDualSpiral, 64);
  // Under the checker both algorithms annotate every shared access and
  // throw on a protocol violation — so completing is the assertion; the
  // results must also still be exact.
  for (const unsigned threads : {1u, 3u, 4u, 7u}) {
    EXPECT_EQ(ho::connected_components_omp(image, cs::Connectivity::kEight,
                                           cs::ColourRule::kBinary, threads),
              cs::label_components_bfs(image))
        << "threads=" << threads;
    EXPECT_EQ(ho::histogram_omp(image, 2, threads),
              hh::histogram_seq(image, 2))
        << "threads=" << threads;
  }
}

TEST(OmpEpochCheck, EpochCheckDisabledByDefault) {
  EXPECT_FALSE(ho::epoch_check_enabled());
}

// A deliberately racy program checked through the EpochChecker directly:
// thread 1 reads thread 0's slot in the same epoch thread 0 wrote it —
// no barrier between.  The accesses are flag-sequenced (no C++ data race,
// TSan silent); the protocol violation must still be diagnosed with the
// array name, both thread ids, the element, and the epoch.
TEST(OmpEpochCheck, RacyProgramIsDetectedWithFullDiagnostics) {
  ho::EpochChecker chk(2);
  auto shadow = chk.attach("omp_shared");
  std::vector<std::uint32_t> shared(2, 0);
  std::atomic<int> turn{0};

  auto worker = [&](unsigned tid) {
    if (tid == 0) {
      shared[0] = 7;
      chk.note_write(*shadow, 0, 0, 1);
      turn.store(1, std::memory_order_release);
    } else {
      await(turn, 1);
      shared[1] = shared[0];  // reads slot 0 with no barrier since its write
      chk.note_write(*shadow, 1, 1, 1);
      chk.note_read(*shadow, 1, 0, 1);
    }
  };
  std::thread t0(worker, 0);
  std::thread t1(worker, 1);
  t0.join();
  t1.join();

  ASSERT_EQ(chk.conflict_count(), 1u);
  const auto diags = chk.diagnostics();
  ASSERT_EQ(diags.size(), 1u);
  const auto& d = diags.front();
  EXPECT_EQ(d.array, "omp_shared");
  EXPECT_EQ(d.offset, 0u);
  EXPECT_EQ(d.epoch, 1u);
  EXPECT_EQ(d.first_rank, 0u);
  EXPECT_EQ(d.first_kind, sc::RaceAccess::kWrite);
  EXPECT_EQ(d.second_rank, 1u);
  EXPECT_EQ(d.second_kind, sc::RaceAccess::kRead);
  const auto msg = d.to_string();
  EXPECT_NE(msg.find("omp_shared"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("epoch 1"), std::string::npos) << msg;
  EXPECT_THROW(chk.throw_if_conflicts(), sc::RaceLedgerViolation);
}

#ifdef _OPENMP
// The same protocol bug inside a real `#pragma omp parallel` region, and
// its fix: with `epoch_barrier` between the write and the read phases the
// program is clean; without it, every cross-thread read is flagged.
TEST(OmpEpochCheck, OmpParallelRegionRaceAndFix) {
  if (ho::tsan_active()) {
    // This test opens a raw multi-threaded `omp parallel` region, whose
    // libgomp fork/join barriers TSan cannot see (false positives).
    GTEST_SKIP() << "libgomp teams are not TSan-instrumented";
  }
  constexpr unsigned kTeam = 4;
  for (const bool use_barrier : {true, false}) {
    ho::EpochChecker chk(kTeam);
    auto shadow = chk.attach("omp_slots");
    std::vector<std::uint32_t> slots(kTeam, 0);
    std::atomic<unsigned> ready{0};
    unsigned team = kTeam;

#pragma omp parallel num_threads(kTeam)
    {
      const auto tid = static_cast<unsigned>(omp_get_thread_num());
#pragma omp single
      team = static_cast<unsigned>(omp_get_num_threads());

      slots[tid] = tid + 1;
      chk.note_write(*shadow, tid, tid, 1);
      if (use_barrier) {
        chk.epoch_barrier(tid);
      } else {
        // Physically sequence the phases without a *protocol* barrier, so
        // the reads below are data-race-free yet still epoch-conflicting.
        ready.fetch_add(1, std::memory_order_acq_rel);
        while (ready.load(std::memory_order_acquire) < team) {
          std::this_thread::yield();
        }
      }
      std::uint32_t sum = 0;
      for (unsigned t = 0; t < team; ++t) sum += slots[t];
      chk.note_read(*shadow, tid, 0, team);
      EXPECT_EQ(sum, team * (team + 1) / 2);
    }

    if (team < 2) GTEST_SKIP() << "OpenMP provided a single thread";
    if (use_barrier) {
      EXPECT_EQ(chk.conflict_count(), 0u);
    } else {
      EXPECT_GE(chk.conflict_count(), 1u);
      const auto diags = chk.diagnostics();
      ASSERT_FALSE(diags.empty());
      EXPECT_EQ(diags.front().array, "omp_slots");
      EXPECT_EQ(diags.front().epoch, 1u);
    }
  }
}
#endif  // _OPENMP

TEST(OmpEpochCheck, AdvanceEpochAllOrdersForkJoinTransitions) {
  ho::EpochChecker chk(3);
  auto shadow = chk.attach("staged");
  // Parallel write epoch 1 (disjoint), join, serial full pass as thread 0
  // in epoch 2, fork, parallel read epoch 3: the components_omp shape.
  for (unsigned tid = 0; tid < 3; ++tid) chk.note_write(*shadow, tid, tid, 1);
  chk.advance_epoch_all();
  chk.note_write(*shadow, 0, 0, 3);
  chk.advance_epoch_all();
  EXPECT_EQ(chk.epoch(1), 3u);
  for (unsigned tid = 0; tid < 3; ++tid) chk.note_read(*shadow, tid, 0, 3);
  EXPECT_EQ(chk.conflict_count(), 0u);
  EXPECT_EQ(chk.check_count(), 3u + 3u + 9u);
}
