// Cross-module integration tests: the public facade, full pipelines over
// the DARPA-like benchmark scene, machine reuse across algorithms, and the
// paper's end-to-end workflows (histogram -> equalize; label -> analyse).
#include <gtest/gtest.h>

#include <numeric>

#include "histcc/histcc.hpp"

using namespace histcc;

TEST(FacadeTest, VersionString) {
  EXPECT_STREQ(version(), "1.0.0");
}

TEST(FacadeTest, OneCallHistogram) {
  const auto image = img::make_random_grey(64, 32, 7);
  const auto counts = histogram(image, 32, 8);
  EXPECT_EQ(counts, hist::histogram_seq(image, 32));
}

TEST(FacadeTest, OneCallConnectedComponents) {
  const auto image = img::make_test_pattern(img::TestPattern::kCircles, 64);
  const auto labels = connected_components(image, 8);
  EXPECT_EQ(labels, ccseq::label_components_bfs(image));
}

TEST(IntegrationTest, DarpaScenePipeline) {
  // The paper's headline experiment: a 256-grey-level DARPA-style scene,
  // histogrammed and component-labeled on the same machine.
  const std::uint32_t n = 128, p = 16;
  const auto scene = img::make_darpa_like(n, 42);
  splitc::Machine machine(p);
  const img::TileLayout layout(n, p);
  splitc::Spread<std::uint8_t> tiles(machine, layout.max_tile_size());
  layout.scatter(scene, tiles);

  const auto counts = hist::histogram_parallel(machine, layout, tiles, 256);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::uint64_t{0}),
            static_cast<std::uint64_t>(n) * n);
  EXPECT_EQ(counts, hist::histogram_seq(scene, 256));

  cc::CcOptions options;
  options.rule = ccseq::ColourRule::kSameColour;
  const auto labels =
      cc::connected_components_parallel(machine, layout, tiles, options);
  EXPECT_EQ(labels, ccseq::label_components_bfs(
                        scene, ccseq::Connectivity::kEight,
                        ccseq::ColourRule::kSameColour));
  EXPECT_GT(ccseq::count_components(labels), 50u)
      << "a DARPA-style scene has many components";
}

TEST(IntegrationTest, MachineReusedAcrossManyRuns) {
  splitc::Machine machine(8);
  for (int round = 0; round < 3; ++round) {
    const auto image = img::make_percolation(64, 0.5 + 0.1 * round,
                                             static_cast<std::uint64_t>(round));
    const auto labels = cc::connected_components_parallel(machine, image);
    EXPECT_EQ(labels, ccseq::label_components_bfs(image));
    const auto counts = hist::histogram_parallel(machine, image, 2);
    EXPECT_EQ(counts, hist::histogram_seq(image, 2));
  }
}

TEST(IntegrationTest, EqualizeAfterParallelHistogram) {
  const auto image = img::make_darpa_like(64, 19);
  splitc::Machine machine(4);
  const auto counts = hist::histogram_parallel(machine, image, 256);
  const auto map = hist::equalization_map(counts, image.size());
  // The parallel histogram drives the same equalization as the sequential.
  EXPECT_EQ(hist::equalize(image, 256).pixels()[0], map[image.pixels()[0]]);
}

TEST(IntegrationTest, PercolationClusterAnalysis) {
  // The percolation application (paper Section 1 cites [41], [5]): above
  // the 2-D site-percolation threshold with 8-connectivity, a giant
  // cluster dominates.
  const auto lattice = img::make_percolation(128, 0.7, 555);
  const auto labels = connected_components(lattice, 16);
  const auto sizes = ccseq::component_sizes(labels);
  ASSERT_FALSE(sizes.empty());
  std::uint64_t total = 0;
  for (const auto& s : sizes) total += s.pixels;
  EXPECT_GT(sizes[0].pixels, total / 2)
      << "the giant cluster holds most occupied sites above threshold";
}

TEST(IntegrationTest, AllLabelersAgreeOnDarpaScene) {
  const auto scene = img::make_darpa_like(96, 23);
  splitc::Machine machine(8);
  const auto seq_bfs = ccseq::label_components_bfs(
      scene, ccseq::Connectivity::kEight, ccseq::ColourRule::kSameColour);
  const auto seq_uf = ccseq::label_components_unionfind(
      scene, ccseq::Connectivity::kEight, ccseq::ColourRule::kSameColour);
  cc::CcOptions options;
  options.rule = ccseq::ColourRule::kSameColour;
  const auto par = cc::connected_components_parallel(machine, scene, options);
  const auto prop = cc::connected_components_label_prop(
      machine, scene, ccseq::Connectivity::kEight,
      ccseq::ColourRule::kSameColour);
  EXPECT_EQ(seq_bfs, seq_uf);
  EXPECT_EQ(seq_bfs, par);
  EXPECT_EQ(seq_bfs, prop);
}

TEST(IntegrationTest, BdmStatsAccumulateSensiblyAcrossPipeline) {
  const auto image = img::make_darpa_like(64, 3);
  splitc::Machine machine(8);
  (void)cc::connected_components_parallel(machine, image);
  const auto cc_stats = machine.max_stats();
  EXPECT_GT(cc_stats.barriers, 0u);
  EXPECT_GT(cc_stats.words, 0u);
  // Modeled times must be positive and larger on a machine that is worse
  // on both axes (SP-1: higher latency and lower bandwidth than Paragon).
  const double on_sp1 = cc_stats.modeled_comm_seconds(splitc::sp1());
  const double on_paragon = cc_stats.modeled_comm_seconds(splitc::paragon());
  EXPECT_GT(on_sp1, 0.0);
  EXPECT_GT(on_sp1, on_paragon);
}
