// Shape-sweep differential suite for the ragged tile layout: arbitrary
// H x W images — degenerate (1 x 1), wide (7 x 513), tall (1000 x 3),
// odd/prime-sided (97 x 63) — through the paper's parallel connected
// components at p in {1, 4, 16}, checked pixel-for-pixel against all
// three sequential labelers (BFS anchor, union-find, Hoshen-Kopelman).
//
// Under the race-ledger preset these tests also certify the protocol:
// the pooled machines keep RacePolicy::kThrow, so any unsynchronized
// Spread access on a ragged shape (empty tiles, unequal halo lines)
// fails the test rather than merely racing.
//
// The heavyweight VGA-frame sweep lives in test_shapes_slow.cpp
// (labelled `slow-ledger`); this binary is the quick `shapes` label.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "histcc/cc/parallel_cc.hpp"
#include "histcc/cc_seq/bfs_label.hpp"
#include "histcc/cc_seq/hoshen_kopelman.hpp"
#include "histcc/cc_seq/union_find.hpp"
#include "histcc/hist/histogram.hpp"
#include "histcc/image/generators.hpp"
#include "histcc/image/layout.hpp"
#include "histcc/splitc/machine.hpp"

namespace cc = histcc::cc;
namespace ccseq = histcc::ccseq;
namespace hist = histcc::hist;
namespace im = histcc::img;
namespace sc = histcc::splitc;

namespace {

constexpr std::pair<std::uint32_t, std::uint32_t> kShapes[] = {
    {1, 1},    // a single pixel: every rank but one owns an empty tile
    {7, 513},  // wide: more grid columns than image rows at p = 16
    {1000, 3}, // tall: empty trailing grid columns
    {97, 63},  // both sides odd, every tile boundary ragged
    {96, 64},  // divisible rectangle: the easy non-square case
};

/// Deterministic splitmix-style fill with values in [0, k).
im::GreyImage make_random_shape(std::uint32_t h, std::uint32_t w,
                                std::uint32_t k, std::uint32_t seed) {
  im::GreyImage image(h, w);
  std::uint64_t state = seed;
  for (std::uint32_t i = 0; i < h; ++i) {
    for (std::uint32_t j = 0; j < w; ++j) {
      state += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = state;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      image(i, j) = static_cast<std::uint8_t>((z ^ (z >> 31)) % k);
    }
  }
  return image;
}

void expect_labels_equal(const im::LabelImage& got, const im::LabelImage& want,
                         const std::string& what) {
  ASSERT_EQ(got.height(), want.height()) << what;
  ASSERT_EQ(got.width(), want.width()) << what;
  const auto g = got.pixels();
  const auto w = want.pixels();
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (g[i] != w[i]) {
      if (++mismatches <= 3) {
        ADD_FAILURE() << what << ": label mismatch at pixel " << i << ": got "
                      << g[i] << ", want " << w[i];
      }
    }
  }
  EXPECT_EQ(mismatches, 0u) << what;
}

class ShapeSweep : public ::testing::TestWithParam<std::uint32_t> {};

}  // namespace

TEST_P(ShapeSweep, BinaryComponentsMatchAllSequentialLabelers) {
  const std::uint32_t p = GetParam();
  for (const auto& [h, w] : kShapes) {
    const auto image = make_random_shape(h, w, 2, h * 1000 + w);
    const std::string what =
        std::to_string(h) + "x" + std::to_string(w) + "_p" + std::to_string(p);
    for (const auto conn :
         {ccseq::Connectivity::kFour, ccseq::Connectivity::kEight}) {
      cc::CcOptions options;
      options.connectivity = conn;
      options.rule = ccseq::ColourRule::kBinary;
      const auto reference =
          ccseq::label_components_bfs(image, conn, options.rule);
      expect_labels_equal(
          ccseq::label_components_unionfind(image, conn, options.rule),
          reference, what + "/unionfind");
      expect_labels_equal(
          ccseq::label_components_hoshen_kopelman(image, conn, options.rule),
          reference, what + "/hoshen_kopelman");
      sc::Machine machine(p);
      expect_labels_equal(
          cc::connected_components_parallel(machine, image, options),
          reference, what + "/parallel");
    }
  }
}

TEST_P(ShapeSweep, GreyComponentsMatchBfsReference) {
  const std::uint32_t p = GetParam();
  for (const auto& [h, w] : kShapes) {
    const auto image = make_random_shape(h, w, 4, h * 77 + w);
    cc::CcOptions options;
    options.rule = ccseq::ColourRule::kSameColour;
    const auto reference = ccseq::label_components_bfs(
        image, options.connectivity, options.rule);
    sc::Machine machine(p);
    expect_labels_equal(
        cc::connected_components_parallel(machine, image, options), reference,
        std::to_string(h) + "x" + std::to_string(w) + "_grey_p" +
            std::to_string(p));
  }
}

TEST_P(ShapeSweep, HistogramMatchesSequentialReference) {
  const std::uint32_t p = GetParam();
  for (const auto& [h, w] : kShapes) {
    const auto image = make_random_shape(h, w, 16, h + w);
    const auto reference = hist::histogram_seq(image, 16);
    sc::Machine machine(p);
    EXPECT_EQ(hist::histogram_parallel(machine, image, 16), reference)
        << h << "x" << w << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Procs, ShapeSweep, ::testing::Values(1, 4, 16));

// Ledger certification at p = 4 (the ISSUE's pinned width): the default
// RacePolicy::kThrow turns any publication-protocol violation on a
// ragged shape into a test failure under the race-ledger preset; in
// plain builds this is a correctness smoke over the same shapes.
TEST(ShapeLedger, RaggedShapesRunLedgerCleanAtP4) {
  for (const auto& [h, w] : kShapes) {
    sc::Machine machine(4);  // RacePolicy::kThrow is the default
    const auto image = make_random_shape(h, w, 2, h * 31 + w);
    EXPECT_NO_THROW({
      (void)cc::connected_components_parallel(machine, image,
                                              cc::CcOptions{});
    }) << h << "x" << w;
    EXPECT_NO_THROW({ (void)hist::histogram_parallel(machine, image, 2); })
        << h << "x" << w;
  }
}
