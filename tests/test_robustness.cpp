// Robustness and deep-property tests: fuzzing the PGM reader, brute-force
// cross-checks of the border-graph kernel, exhaustive layout/schedule
// sweeps, runtime misuse guards, and spread put_block semantics.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "histcc/histcc.hpp"

using namespace histcc;

// ---- Runtime misuse guards ----

TEST(RuntimeGuardTest, NestedRunIsRejected) {
  splitc::Machine machine(2);
  EXPECT_THROW(machine.run([&](splitc::Proc& self) {
    if (self.rank() == 0) {
      machine.run([](splitc::Proc&) {});  // reentrant: must throw
    }
    self.barrier();
  }),
               util::contract_error);
  // And the machine still works afterwards.
  machine.run([](splitc::Proc& self) { self.barrier(); });
}

TEST(RuntimeGuardTest, SequentialRunsAfterGuard) {
  splitc::Machine machine(4);
  for (int i = 0; i < 3; ++i) {
    machine.run([](splitc::Proc& self) { self.barrier(); });
  }
}

// ---- Spread put_block (the push-style transfer) ----

TEST(SpreadPutBlockTest, PushesToRemote) {
  splitc::Machine machine(4);
  splitc::Spread<std::uint32_t> a(machine, 8);
  machine.run([&](splitc::Proc& self) {
    // Everyone pushes 4 values into the upper half of the next rank.
    std::vector<std::uint32_t> data(4, self.rank() + 100);
    a.put_block(self, (self.rank() + 1) % 4, 4, data);
    self.barrier();
    auto mine = a.local(self);
    const std::uint32_t pusher = (self.rank() + 3) % 4;
    for (std::size_t e = 4; e < 8; ++e) EXPECT_EQ(mine[e], pusher + 100);
  });
  EXPECT_EQ(machine.stats(0).words, 4u);
}

TEST(SpreadPutBlockTest, BoundsChecked) {
  splitc::Machine machine(2);
  splitc::Spread<std::uint32_t> a(machine, 4);
  machine.run([&](splitc::Proc& self) {
    std::vector<std::uint32_t> data(8, 0);
    EXPECT_THROW(a.put_block(self, 0, 0, data), util::contract_error);
    EXPECT_THROW(a.put_block(self, 9, 0, std::span<const std::uint32_t>(
                                             data.data(), 2)),
                 util::contract_error);
  });
}

TEST(SpreadTest, WideElementsCountMoreWords) {
  struct Wide {
    std::uint64_t a, b;  // 16 bytes = 4 words
  };
  splitc::Machine machine(2);
  splitc::Spread<Wide> a(machine, 4);
  machine.run([&](splitc::Proc& self) {
    if (self.rank() == 0) {
      std::vector<Wide> buf(4);
      a.prefetch(self, buf, 1, 0, 4);
      self.sync();
    }
    self.barrier();
  });
  EXPECT_EQ(machine.stats(0).words, 16u);  // 4 elements x 4 words
}

// ---- PGM reader fuzzing: arbitrary bytes must either parse or throw,
// never crash or hang.
TEST(PgmFuzzTest, RandomBytesNeverCrash) {
  util::Rng rng(2024);
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string junk;
    const std::size_t len = rng.next_below(64);
    for (std::size_t i = 0; i < len; ++i) {
      junk.push_back(static_cast<char>(rng.next_below(256)));
    }
    // Bias some trials towards near-valid headers.
    if (trial % 3 == 0) junk = "P5\n" + junk;
    if (trial % 7 == 0) junk = "P2 4 4 255 " + junk;
    std::stringstream stream(junk);
    try {
      const auto image = img::read_pgm(stream);
      ++parsed;
      EXPECT_GT(image.size(), 0u);
    } catch (const util::contract_error&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
  (void)parsed;
}

TEST(PgmFuzzTest, HeaderEdgeCases) {
  for (const char* bad : {"", "P", "P5", "P5\n0 4\n255\n", "P5\n4 0\n255\n",
                          "P5\n4 4\n0\n", "P6\n4 4\n255\n", "P5\n-1 4\n255\n"}) {
    std::stringstream stream(bad);
    EXPECT_THROW((void)img::read_pgm(stream), util::contract_error)
        << "input: " << bad;
  }
}

// ---- Border graph vs brute force: build the two strips as a 2 x s image,
// label it sequentially, and check merge_border's change array produces
// the identical final labels.
TEST(BorderGraphBruteForce, RandomStripsMatchSequentialLabeling) {
  util::Rng rng(555);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint32_t s = 4 + static_cast<std::uint32_t>(rng.next_below(60));
    // Build a 2 x s image; rows are the two border strips.
    img::GreyImage strip_pair(2, s);
    for (auto& px : strip_pair.pixels()) {
      px = rng.next_bool(0.65)
               ? static_cast<std::uint8_t>(1 + rng.next_below(3))
               : 0;
    }
    for (const auto conn :
         {ccseq::Connectivity::kFour, ccseq::Connectivity::kEight}) {
      for (const auto rule :
           {ccseq::ColourRule::kBinary, ccseq::ColourRule::kSameColour}) {
        // "Region labels": label each row independently (the state before
        // a merge), with row 1 labels offset so they are globally unique.
        img::GreyImage row0(1, s), row1(1, s);
        for (std::uint32_t j = 0; j < s; ++j) {
          row0(0, j) = strip_pair(0, j);
          row1(0, j) = strip_pair(1, j);
        }
        auto lab0 = ccseq::label_components_bfs(row0, conn, rule);
        auto lab1 = ccseq::label_components_bfs(row1, conn, rule);
        for (auto& l : lab1.pixels()) {
          if (l != 0) l += s;  // unique vs row0
        }

        // The algorithm under test.
        const auto changes = cc::merge_border(
            cc::BorderSide{row0.pixels(), lab0.pixels()},
            cc::BorderSide{row1.pixels(), lab1.pixels()}, conn, rule);
        img::LabelImage merged(2, s);
        for (std::uint32_t j = 0; j < s; ++j) {
          merged(0, j) = cc::apply_changes(changes, lab0(0, j));
          merged(1, j) = cc::apply_changes(changes, lab1(0, j));
        }

        // Brute force: label the 2 x s image from scratch; partitions
        // must agree.
        const auto reference =
            ccseq::label_components_bfs(strip_pair, conn, rule);
        EXPECT_TRUE(ccseq::partitions_equal(merged, reference))
            << "trial " << trial << " s=" << s << " conn "
            << static_cast<int>(conn) << " rule " << static_cast<int>(rule);
      }
    }
  }
}

// ---- Exhaustive layout and schedule sweeps ----

TEST(LayoutSweepTest, LabelsUniqueAndCoverEveryPixel) {
  for (const std::uint32_t p : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    const std::uint32_t n = 64;
    const img::TileLayout layout(n, p);
    std::set<std::uint32_t> seen;
    for (std::uint32_t rank = 0; rank < p; ++rank) {
      for (std::uint32_t i = 0; i < layout.tile_rows(rank); ++i) {
        for (std::uint32_t j = 0; j < layout.tile_cols(rank); ++j) {
          const auto label = layout.initial_label(rank, i, j);
          EXPECT_TRUE(seen.insert(label).second)
              << "duplicate label at p=" << p;
          EXPECT_GE(label, 1u);
          EXPECT_LE(label, n * n);
        }
      }
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(n) * n) << "p=" << p;
  }
}

TEST(LayoutSweepTest, RaggedLabelsUniqueAndCoverEveryPixel) {
  const std::pair<std::uint32_t, std::uint32_t> shapes[] = {
      {1, 1}, {7, 513}, {100, 32}, {1000, 3}, {97, 63}};
  for (const std::uint32_t p : {1u, 4u, 16u, 64u}) {
    for (const auto& [h, w] : shapes) {
      const img::TileLayout layout(h, w, p);
      std::set<std::uint32_t> seen;
      for (std::uint32_t rank = 0; rank < p; ++rank) {
        for (std::uint32_t i = 0; i < layout.tile_rows(rank); ++i) {
          for (std::uint32_t j = 0; j < layout.tile_cols(rank); ++j) {
            const auto label = layout.initial_label(rank, i, j);
            EXPECT_TRUE(seen.insert(label).second)
                << "duplicate label at " << h << "x" << w << " p=" << p;
            EXPECT_GE(label, 1u);
            EXPECT_LE(label, h * w);
          }
        }
      }
      EXPECT_EQ(seen.size(), static_cast<std::size_t>(h) * w)
          << h << "x" << w << " p=" << p;
    }
  }
}

TEST(ScheduleSweepTest, LargeGridsStayConsistent) {
  for (unsigned d = 0; d <= 16; ++d) {
    const std::uint32_t p = 1u << d;
    const auto grid = util::grid_shape(p);
    const auto schedule = cc::merge_schedule(grid);
    EXPECT_EQ(schedule.size(), d);
    std::uint32_t area = 1;
    for (const auto& phase : schedule) {
      EXPECT_EQ(phase.region_rows * phase.region_cols, area);
      area *= 2;
      EXPECT_EQ(phase.group_rows * phase.group_cols, area);
      EXPECT_LE(phase.group_rows, grid.rows);
      EXPECT_LE(phase.group_cols, grid.cols);
    }
    if (d > 0) {
      EXPECT_EQ(schedule.back().group_rows, grid.rows);
      EXPECT_EQ(schedule.back().group_cols, grid.cols);
    }
  }
}

// ---- Equalization map properties on random histograms ----
TEST(EqualizeMapProperty, MonotoneAndInRange) {
  util::Rng rng(8);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t k = std::size_t{1} << (1 + rng.next_below(8));  // 2..256
    std::vector<std::uint32_t> counts(k);
    std::uint64_t total = 0;
    for (auto& c : counts) {
      c = static_cast<std::uint32_t>(rng.next_below(1000));
      total += c;
    }
    if (total == 0) {
      counts[0] = 1;
      total = 1;
    }
    const auto map = hist::equalization_map(counts, total);
    ASSERT_EQ(map.size(), k);
    for (std::size_t g = 1; g < k; ++g) {
      EXPECT_LE(map[g - 1], map[g]);
      EXPECT_LE(map[g], k - 1);
    }
  }
}
