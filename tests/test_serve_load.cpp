// Closed-loop load test for the serving pipeline (labelled `slow`): a few
// submitter threads keep a bounded number of mixed jobs in flight against
// a small pool, which exercises queue backpressure, machine reuse across
// tenants, per-size slot churn, and metrics accounting under sustained
// concurrency.  Correctness of every single response is checked against
// the sequential references.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "histcc/cc_seq/bfs_label.hpp"
#include "histcc/hist/histogram.hpp"
#include "histcc/image/generators.hpp"
#include "histcc/serve/pipeline.hpp"

namespace im = histcc::img;
namespace sv = histcc::serve;
namespace ccseq = histcc::ccseq;
namespace hist = histcc::hist;

TEST(ServeLoadTest, SustainedMixedTenantsAllCorrect) {
  // Two tenants with different shapes: a 96x96 histogram workload
  // (routes to p=2) and a 128x128 labeling workload (routes to p=4), so
  // the pool keeps serving two machine sizes at once.
  const auto grey = im::make_random_grey(96, 8, 21);
  const auto hist_ref = hist::histogram_seq(grey, 8);
  const auto pattern = im::make_test_pattern(im::TestPattern::kFourSquares, 128);
  const auto cc_ref = ccseq::label_components_bfs(pattern);

  sv::PipelineOptions opt;
  opt.pool_size = 3;
  opt.queue_capacity = 8;  // small on purpose: submitters feel backpressure
  sv::Pipeline pipeline(opt);

  constexpr int kSubmitters = 4;
  constexpr int kJobsPerSubmitter = 24;
  std::atomic<std::uint64_t> hist_ok{0};
  std::atomic<std::uint64_t> cc_ok{0};
  std::atomic<std::uint64_t> wrong{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int i = 0; i < kJobsPerSubmitter; ++i) {
        // Closed loop: one job in flight per submitter at a time.
        if ((s + i) % 2 == 0) {
          auto result = pipeline.submit_histogram(grey, 8).result.get();
          if (result.status == sv::JobStatus::kOk && result.has_value() &&
              *result.value == hist_ref) {
            hist_ok++;
          } else {
            wrong++;
          }
        } else {
          auto result = pipeline.submit_components(pattern).result.get();
          if (result.status == sv::JobStatus::kOk && result.has_value() &&
              *result.value == cc_ref) {
            cc_ok++;
          } else {
            wrong++;
          }
        }
      }
    });
  }
  for (auto& t : submitters) t.join();

  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kSubmitters) * kJobsPerSubmitter;
  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_EQ(hist_ok.load() + cc_ok.load(), kTotal);

  const auto metrics = pipeline.metrics();
  EXPECT_EQ(metrics.submitted, kTotal);
  EXPECT_EQ(metrics.completed, kTotal);
  EXPECT_EQ(metrics.rejected, 0u);
  EXPECT_EQ(metrics.finished(), kTotal);
  EXPECT_GT(metrics.wall_p50_s, 0.0);
  EXPECT_GE(metrics.machines_built, 1u);

  // Convergence: once the workload settles on one machine size, every
  // slot rebuilds at most once more and then the pool serves warm
  // machines only.
  const auto built_before_steady = pipeline.metrics().machines_built;
  constexpr int kSteadyJobs = 30;
  for (int i = 0; i < kSteadyJobs; ++i) {
    auto result = pipeline.submit_histogram(grey, 8).result.get();
    EXPECT_EQ(result.status, sv::JobStatus::kOk);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(*result.value, hist_ref);
  }
  const auto built_after_steady = pipeline.metrics().machines_built;
  EXPECT_LE(built_after_steady - built_before_steady,
            static_cast<std::uint64_t>(opt.pool_size));
}
