// Tests for the border-graph merge kernel (Section 5.3) and Procedure 1:
// edge semantics (same-label chains, cross-border adjacency under both
// connectivities and colour rules), minimum-label representatives, and the
// sorted-unique change array.
#include <gtest/gtest.h>

#include "histcc/cc/border_graph.hpp"

#include "histcc/util/require.hpp"
#include "histcc/util/rng.hpp"

namespace cc = histcc::cc;
namespace cs = histcc::ccseq;

namespace {

struct SideData {
  std::vector<std::uint8_t> px;
  std::vector<std::uint32_t> lb;
  [[nodiscard]] cc::BorderSide side() const { return {px, lb}; }
};

}  // namespace

TEST(SortSideTest, OrdersColouredPixelsByLabel) {
  SideData s{{1, 0, 1, 1, 0, 1}, {30, 0, 10, 30, 0, 20}};
  const auto sorted = cc::sort_side_by_label(s.side());
  ASSERT_EQ(sorted.size(), 4u);  // background excluded
  EXPECT_EQ(sorted[0], 2u);      // label 10
  EXPECT_EQ(sorted[1], 5u);      // label 20
  // labels 30 at positions 0 and 3 (stable order)
  EXPECT_EQ(sorted[2], 0u);
  EXPECT_EQ(sorted[3], 3u);
}

TEST(MergeBorderTest, EmptyBordersYieldNoChanges) {
  SideData lo{{0, 0, 0}, {0, 0, 0}};
  SideData hi{{0, 0, 0}, {0, 0, 0}};
  const auto changes = cc::merge_border(lo.side(), hi.side(),
                                        cs::Connectivity::kEight,
                                        cs::ColourRule::kBinary);
  EXPECT_TRUE(changes.empty());
}

TEST(MergeBorderTest, AdjacentPixelsMergeToMinimum) {
  // One pixel on each side, directly adjacent: the larger label changes.
  SideData lo{{1}, {5}};
  SideData hi{{1}, {9}};
  const auto changes = cc::merge_border(lo.side(), hi.side(),
                                        cs::Connectivity::kFour,
                                        cs::ColourRule::kBinary);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0], (cc::ChangePair{9, 5}));
}

TEST(MergeBorderTest, FourConnectivityIgnoresDiagonals) {
  // lo pixel at position 0, hi pixel at position 1: diagonal neighbours.
  SideData lo{{1, 0}, {5, 0}};
  SideData hi{{0, 1}, {0, 9}};
  const auto four = cc::merge_border(lo.side(), hi.side(),
                                     cs::Connectivity::kFour,
                                     cs::ColourRule::kBinary);
  EXPECT_TRUE(four.empty());
  const auto eight = cc::merge_border(lo.side(), hi.side(),
                                      cs::Connectivity::kEight,
                                      cs::ColourRule::kBinary);
  ASSERT_EQ(eight.size(), 1u);
  EXPECT_EQ(eight[0], (cc::ChangePair{9, 5}));
}

TEST(MergeBorderTest, ColourRuleBlocksDifferentGreys) {
  SideData lo{{3}, {5}};
  SideData hi{{4}, {9}};
  EXPECT_TRUE(cc::merge_border(lo.side(), hi.side(), cs::Connectivity::kFour,
                               cs::ColourRule::kSameColour)
                  .empty());
  // Binary rule connects any two nonzero colours.
  EXPECT_EQ(cc::merge_border(lo.side(), hi.side(), cs::Connectivity::kFour,
                             cs::ColourRule::kBinary)
                .size(),
            1u);
}

TEST(MergeBorderTest, SameLabelChainsPropagateTransitively) {
  // lo has label 7 at both ends (same region component); hi has two
  // different labels adjacent to each end.  Chaining the 7s must put all
  // four pixels into one graph component labeled min = 3.
  SideData lo{{1, 0, 0, 1}, {7, 0, 0, 7}};
  SideData hi{{1, 0, 0, 1}, {3, 0, 0, 12}};
  const auto changes = cc::merge_border(lo.side(), hi.side(),
                                        cs::Connectivity::kFour,
                                        cs::ColourRule::kBinary);
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[0], (cc::ChangePair{7, 3}));
  EXPECT_EQ(changes[1], (cc::ChangePair{12, 3}));
}

TEST(MergeBorderTest, ChangesAreSortedAndUnique) {
  // Several alphas, each possibly appearing at many positions.
  SideData lo{{1, 1, 1, 1, 1, 1}, {40, 40, 41, 41, 42, 42}};
  SideData hi{{1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2}};
  const auto changes = cc::merge_border(lo.side(), hi.side(),
                                        cs::Connectivity::kFour,
                                        cs::ColourRule::kBinary);
  ASSERT_EQ(changes.size(), 3u);
  for (std::size_t i = 1; i < changes.size(); ++i) {
    EXPECT_LT(changes[i - 1].alpha, changes[i].alpha);
  }
  for (const auto& c : changes) EXPECT_EQ(c.beta, 2u);
}

TEST(MergeBorderTest, BetaIsNeverRemappedItself) {
  // Representatives are minimum labels, so no change pair's beta appears
  // as another pair's alpha (no chains to resolve).
  SideData lo{{1, 1, 1, 1}, {10, 20, 30, 40}};
  SideData hi{{1, 1, 1, 1}, {20, 30, 40, 50}};
  const auto changes = cc::merge_border(lo.side(), hi.side(),
                                        cs::Connectivity::kEight,
                                        cs::ColourRule::kBinary);
  for (const auto& c : changes) {
    EXPECT_LT(c.beta, c.alpha);
    for (const auto& other : changes) {
      EXPECT_NE(other.alpha, c.beta);
    }
  }
}

TEST(MergeBorderTest, DisjointRunsOfOneLabelStillOneComponent) {
  // Label 9 appears at positions 0 and 5 on the lo side with no adjacency
  // between them; the type-1 chain must still unify their component, so a
  // merge at position 5 renames the pixel at position 0 too.
  SideData lo{{1, 0, 0, 0, 0, 1}, {9, 0, 0, 0, 0, 9}};
  SideData hi{{0, 0, 0, 0, 0, 1}, {0, 0, 0, 0, 0, 4}};
  const auto changes = cc::merge_border(lo.side(), hi.side(),
                                        cs::Connectivity::kFour,
                                        cs::ColourRule::kBinary);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0], (cc::ChangePair{9, 4}));
}

TEST(MergeBorderTest, PresortedOverloadMatchesSelfSorting) {
  SideData lo{{1, 1, 0, 1, 1}, {9, 8, 0, 8, 9}};
  SideData hi{{1, 0, 1, 0, 1}, {3, 0, 7, 0, 7}};
  const auto lo_sorted = cc::sort_side_by_label(lo.side());
  const auto hi_sorted = cc::sort_side_by_label(hi.side());
  const auto a = cc::merge_border(lo.side(), lo_sorted, hi.side(), hi_sorted,
                                  cs::Connectivity::kEight,
                                  cs::ColourRule::kBinary);
  const auto b = cc::merge_border(lo.side(), hi.side(),
                                  cs::Connectivity::kEight,
                                  cs::ColourRule::kBinary);
  EXPECT_EQ(a, b);
}

TEST(MergeBorderTest, MismatchedSidesRejected) {
  SideData lo{{1, 1}, {1, 2}};
  SideData hi{{1}, {3}};
  EXPECT_THROW((void)cc::merge_border(lo.side(), hi.side(),
                                      cs::Connectivity::kFour,
                                      cs::ColourRule::kBinary),
               histcc::util::contract_error);
}

TEST(ApplyChangesTest, BinarySearchSemantics) {
  const std::vector<cc::ChangePair> changes{{10, 1}, {20, 2}, {30, 3}};
  EXPECT_EQ(cc::apply_changes(changes, 10), 1u);
  EXPECT_EQ(cc::apply_changes(changes, 20), 2u);
  EXPECT_EQ(cc::apply_changes(changes, 30), 3u);
  EXPECT_EQ(cc::apply_changes(changes, 15), 15u);
  EXPECT_EQ(cc::apply_changes(changes, 5), 5u);
  EXPECT_EQ(cc::apply_changes(changes, 31), 31u);
  EXPECT_EQ(cc::apply_changes({}, 7), 7u);
}

TEST(MergeBorderTest, LongRandomBorderIsConsistent) {
  // Randomised consistency: on a long border, every change pair must map
  // to a label that exists on the border and is a minimum of its merged
  // set; applying the changes must leave both sides with consistent labels
  // for every cross-border adjacency.
  histcc::util::Rng rng(99);
  const std::size_t s = 512;
  SideData lo, hi;
  lo.px.resize(s);
  lo.lb.resize(s);
  hi.px.resize(s);
  hi.lb.resize(s);
  std::uint32_t run_label = 0;
  for (std::size_t i = 0; i < s; ++i) {
    if (i % 8 == 0 || rng.next_bool(0.3)) run_label += 2;
    lo.px[i] = rng.next_bool(0.7) ? 1 : 0;
    lo.lb[i] = lo.px[i] ? run_label : 0;
    hi.px[i] = rng.next_bool(0.7) ? 1 : 0;
    hi.lb[i] = hi.px[i] ? run_label + 1001 : 0;
  }
  const auto changes = cc::merge_border(lo.side(), hi.side(),
                                        cs::Connectivity::kEight,
                                        cs::ColourRule::kBinary);
  auto final_lo = lo.lb;
  auto final_hi = hi.lb;
  for (auto& l : final_lo) {
    if (l != 0) l = cc::apply_changes(changes, l);
  }
  for (auto& l : final_hi) {
    if (l != 0) l = cc::apply_changes(changes, l);
  }
  // Adjacent coloured pixels across the border now share a label.
  for (std::size_t i = 0; i < s; ++i) {
    if (lo.px[i] == 0) continue;
    for (const std::size_t j : {i - 1, i, i + 1}) {
      if (j >= s || hi.px[j] == 0) continue;
      EXPECT_EQ(final_lo[i], final_hi[j]) << "positions " << i << "," << j;
    }
  }
}
