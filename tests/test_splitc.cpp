// Tests for the SPMD runtime: machine lifecycle, barriers, spread arrays,
// split-phase semantics, BDM cost accounting, and error propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "histcc/splitc/machine.hpp"
#include "histcc/splitc/profile.hpp"
#include "histcc/splitc/spread.hpp"
#include "histcc/util/require.hpp"

namespace sc = histcc::splitc;

TEST(MachineTest, RejectsNonPowerOfTwo) {
  EXPECT_THROW(sc::Machine m(3), histcc::util::contract_error);
  EXPECT_THROW(sc::Machine m(0), histcc::util::contract_error);
  EXPECT_THROW(sc::Machine m(12), histcc::util::contract_error);
}

TEST(MachineTest, GridShape) {
  sc::Machine m(8);
  EXPECT_EQ(m.nprocs(), 8u);
  EXPECT_EQ(m.grid().rows, 2u);
  EXPECT_EQ(m.grid().cols, 4u);
}

TEST(MachineTest, RunsAllRanksExactlyOnce) {
  sc::Machine m(16);
  std::vector<std::atomic<int>> counts(16);
  m.run([&](sc::Proc& self) { counts[self.rank()]++; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(MachineTest, SingleProcessorRunsInline) {
  sc::Machine m(1);
  const auto host_thread = std::this_thread::get_id();
  std::thread::id seen;
  m.run([&](sc::Proc& self) {
    seen = std::this_thread::get_id();
    EXPECT_EQ(self.rank(), 0u);
    EXPECT_EQ(self.nprocs(), 1u);
    self.barrier();  // must not deadlock with one participant
  });
  EXPECT_TRUE(seen == host_thread);
}

TEST(MachineTest, GridPositionRowMajor) {
  sc::Machine m(8);  // 2 x 4
  m.run([&](sc::Proc& self) {
    EXPECT_EQ(self.grid_row(), self.rank() / 4);
    EXPECT_EQ(self.grid_col(), self.rank() % 4);
  });
}

TEST(MachineTest, BarrierSynchronizes) {
  sc::Machine m(8);
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  m.run([&](sc::Proc& self) {
    before++;
    self.barrier();
    if (before.load() != 8) violated = true;
  });
  EXPECT_FALSE(violated.load());
}

TEST(MachineTest, ManyConsecutiveBarriers) {
  sc::Machine m(8);
  std::atomic<long> sum{0};
  m.run([&](sc::Proc&) {
    for (int i = 0; i < 200; ++i) sum++;
  });
  // Sanity only; the real check is that this pattern terminates.
  sc::Machine m2(4);
  std::vector<int> counter(4, 0);
  m2.run([&](sc::Proc& self) {
    for (int i = 0; i < 100; ++i) {
      self.barrier();
      counter[self.rank()]++;
    }
  });
  for (int c : counter) EXPECT_EQ(c, 100);
}

TEST(MachineTest, ExceptionPropagatesToHost) {
  sc::Machine m(4);
  EXPECT_THROW(m.run([&](sc::Proc& self) {
    if (self.rank() == 2) throw std::runtime_error("boom");
    // Peers head to a barrier; the abort must release them rather than
    // deadlock the join.
    self.barrier();
  }),
               std::runtime_error);
}

TEST(MachineTest, MachineUsableAfterAbortedRun) {
  sc::Machine m(4);
  EXPECT_THROW(m.run([&](sc::Proc& self) {
    if (self.rank() == 0) throw std::runtime_error("first");
    self.barrier();
  }),
               std::runtime_error);
  std::atomic<int> ok{0};
  m.run([&](sc::Proc& self) {
    self.barrier();
    ok++;
    self.barrier();
  });
  EXPECT_EQ(ok.load(), 4);
}

TEST(SpreadTest, LocalBlocksAreIndependent) {
  sc::Machine m(8);
  sc::Spread<std::uint32_t> a(m, 16);
  m.run([&](sc::Proc& self) {
    auto block = a.local(self);
    ASSERT_EQ(block.size(), 16u);
    for (auto& x : block) x = self.rank();
  });
  for (std::uint32_t rank = 0; rank < 8; ++rank) {
    for (const auto x : a.block(rank)) EXPECT_EQ(x, rank);
  }
}

TEST(SpreadTest, PrefetchMovesRemoteBlock) {
  sc::Machine m(4);
  sc::Spread<std::uint32_t> src(m, 8);
  sc::Spread<std::uint32_t> dst(m, 8);
  for (std::uint32_t rank = 0; rank < 4; ++rank) {
    auto b = src.block(rank);
    std::iota(b.begin(), b.end(), rank * 100);
  }
  m.run([&](sc::Proc& self) {
    const std::uint32_t from = (self.rank() + 1) % 4;
    auto mine = dst.local(self);
    src.prefetch(self, mine, from, 0, 8);
    self.sync();
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_EQ(mine[i], from * 100 + i);
    }
  });
}

TEST(SpreadTest, GetPutSingleElements) {
  sc::Machine m(4);
  sc::Spread<std::uint32_t> a(m, 4);
  m.run([&](sc::Proc& self) {
    // Everybody writes slot `rank` of processor (rank+1)%4.
    a.put(self, (self.rank() + 1) % 4, self.rank(), self.rank() + 7);
    self.barrier();
    // Processor (rank+3)%4's slot (rank+2)%4 was written by writer
    // (rank+2)%4 with value (rank+2)%4 + 7.
    const auto value = a.get(self, (self.rank() + 3) % 4, (self.rank() + 2) % 4);
    EXPECT_EQ(value, ((self.rank() + 2) % 4) + 7);
  });
}

TEST(SpreadTest, BoundsAreChecked) {
  sc::Machine m(2);
  sc::Spread<std::uint32_t> a(m, 4);
  EXPECT_THROW((void)a.block(2), histcc::util::contract_error);
  m.run([&](sc::Proc& self) {
    std::vector<std::uint32_t> buf(8);
    EXPECT_THROW(a.prefetch(self, buf, 5, 0, 4), histcc::util::contract_error);
    EXPECT_THROW(a.prefetch(self, buf, 0, 2, 4), histcc::util::contract_error);
    EXPECT_THROW((void)a.get(self, 0, 99), histcc::util::contract_error);
  });
}

TEST(StatsTest, LocalAccessIsFree) {
  sc::Machine m(2);
  sc::Spread<std::uint32_t> a(m, 8);
  m.run([&](sc::Proc& self) {
    std::vector<std::uint32_t> buf(8);
    a.prefetch(self, buf, self.rank(), 0, 8);  // local
    self.sync();
  });
  EXPECT_EQ(m.total_stats().words, 0u);
  EXPECT_EQ(m.total_stats().messages, 0u);
}

TEST(StatsTest, RemoteWordsCounted) {
  sc::Machine m(2);
  sc::Spread<std::uint32_t> a(m, 8);
  m.run([&](sc::Proc& self) {
    if (self.rank() == 0) {
      std::vector<std::uint32_t> buf(8);
      a.prefetch(self, buf, 1, 0, 8);
      self.sync();
    }
    self.barrier();
  });
  EXPECT_EQ(m.stats(0).words, 8u);     // 8 x uint32 = 8 words
  EXPECT_EQ(m.stats(0).messages, 1u);
  EXPECT_EQ(m.stats(1).words, 0u);
}

TEST(StatsTest, BatchingFollowsSyncs) {
  sc::Machine m(2);
  sc::Spread<std::uint32_t> a(m, 4);
  m.run([&](sc::Proc& self) {
    if (self.rank() == 0) {
      std::vector<std::uint32_t> buf(4);
      // Two prefetches, one sync: one pipelined batch.
      a.prefetch(self, buf, 1, 0, 2);
      a.prefetch(self, buf, 1, 2, 2);
      self.sync();
      // One prefetch, one sync: a second batch.
      a.prefetch(self, buf, 1, 0, 4);
      self.sync();
      // Empty sync: no batch.
      self.sync();
    }
    self.barrier();
  });
  EXPECT_EQ(m.stats(0).batches, 2u);
  EXPECT_EQ(m.stats(0).messages, 3u);
  EXPECT_EQ(m.stats(0).words, 8u);
}

TEST(StatsTest, SmallElementsRoundUpToWords) {
  sc::Machine m(2);
  sc::Spread<std::uint8_t> bytes(m, 16);
  m.run([&](sc::Proc& self) {
    if (self.rank() == 0) {
      std::vector<std::uint8_t> buf(16);
      bytes.prefetch(self, buf, 1, 0, 16);
      self.sync();
    }
    self.barrier();
  });
  // A uint8_t still occupies (at least) one BDM word per element.
  EXPECT_EQ(m.stats(0).words, 16u);
}

TEST(StatsTest, AggregatesAndReset) {
  sc::Machine m(4);
  sc::Spread<std::uint32_t> a(m, 4);
  m.run([&](sc::Proc& self) {
    std::vector<std::uint32_t> buf(4);
    a.prefetch(self, buf, (self.rank() + 1) % 4, 0, 4);
    self.sync();
    self.barrier();
  });
  EXPECT_EQ(m.total_stats().words, 16u);
  EXPECT_EQ(m.max_stats().words, 4u);
  EXPECT_EQ(m.max_stats().barriers, 1u);
  m.reset_stats();
  EXPECT_EQ(m.total_stats().words, 0u);
}

TEST(SpreadVecTest, ResizePublishRead) {
  sc::Machine m(4);
  sc::SpreadVec<std::uint32_t> v(m);
  m.run([&](sc::Proc& self) {
    auto& mine = v.local(self);
    mine.assign(self.rank() + 1, self.rank());
    self.barrier();
    const std::uint32_t peer = (self.rank() + 1) % 4;
    const std::size_t len = v.size_of(self, peer);
    EXPECT_EQ(len, peer + 1);
    std::vector<std::uint32_t> buf(len);
    v.prefetch(self, buf, peer, 0, len);
    self.sync();
    for (const auto x : buf) EXPECT_EQ(x, peer);
  });
}

TEST(ProfileTest, PaperMachinesResolvable) {
  for (const char* name : {"CM-5", "SP-1", "SP-2", "CS-2", "Paragon"}) {
    const auto prof = sc::profile_by_name(name);
    EXPECT_EQ(prof.name, name);
    EXPECT_GT(prof.bandwidth_MBps, 0.0);
    EXPECT_GT(prof.latency_us, 0.0);
    EXPECT_LE(prof.bandwidth_MBps, prof.peak_MBps);
  }
}

TEST(ProfileTest, CommModelScalesWithWordsAndBatches) {
  const auto cm5 = sc::cm5();
  const double one_batch = cm5.comm_seconds(1, 1000);
  const double two_batches = cm5.comm_seconds(2, 1000);
  const double more_words = cm5.comm_seconds(1, 2000);
  EXPECT_GT(two_batches, one_batch);
  EXPECT_GT(more_words, one_batch);
  // Latency term: exactly one extra tau.
  EXPECT_NEAR(two_batches - one_batch, cm5.latency_us * 1e-6, 1e-12);
}

TEST(ProfileTest, ModeledTimesFromStats) {
  sc::CommStats stats;
  stats.batches = 10;
  stats.words = 1000;
  stats.barriers = 5;
  stats.local_ops = 1000000;
  const auto prof = sc::sp2();
  EXPECT_GT(stats.modeled_comm_seconds(prof), 0.0);
  EXPECT_GT(stats.modeled_comp_seconds(prof), 0.0);
  // Word term alone: 1000 words * 4 bytes at 24.8 MB/s.
  const double words_only = 1000.0 * 4.0 / (24.8e6);
  EXPECT_GT(stats.modeled_comm_seconds(prof), words_only);
}

TEST(ServedWordsTest, SourceSideAccounting) {
  sc::Machine m(4);
  sc::Spread<std::uint32_t> a(m, 8);
  m.run([&](sc::Proc& self) {
    // Every processor pulls all 8 words from processor 2 (rank 2's pull
    // is local and free).
    std::vector<std::uint32_t> buf(8);
    a.prefetch(self, buf, 2, 0, 8);
    self.sync();
  });
  EXPECT_EQ(m.served_words(2), 3u * 8u);
  EXPECT_EQ(m.served_words(0), 0u);
  // Port load at rank 2: served 24, moved 0; everyone else moved 8.
  EXPECT_EQ(m.max_port_words(), 24u);
}

TEST(ServedWordsTest, ResetBetweenRuns) {
  sc::Machine m(2);
  sc::Spread<std::uint32_t> a(m, 4);
  m.run([&](sc::Proc& self) {
    if (self.rank() == 0) {
      std::vector<std::uint32_t> buf(4);
      a.prefetch(self, buf, 1, 0, 4);
      self.sync();
    }
    self.barrier();
  });
  EXPECT_EQ(m.served_words(1), 4u);
  m.run([](sc::Proc& self) { self.barrier(); });
  EXPECT_EQ(m.served_words(1), 0u);
}

// ---------------------------------------------------------------------------
// Machine reuse.  The serving pool (histcc/serve/machine_pool.hpp) keeps
// machines warm across jobs, so nothing may leak from one run() to the
// next: ledgers, served counters, barrier state, epochs, diagnostics.

TEST(MachineReuseTest, StatsFullyResetBetweenRuns) {
  sc::Machine m(4);
  sc::Spread<std::uint32_t> a(m, 8);
  m.run([&](sc::Proc& self) {
    std::vector<std::uint32_t> buf(8);
    a.prefetch(self, buf, (self.rank() + 1) % 4, 0, 8);
    self.sync();
    self.barrier();
  });
  EXPECT_GT(m.total_stats().words, 0u);
  EXPECT_GT(m.total_stats().messages, 0u);
  EXPECT_GT(m.max_port_words(), 0u);

  m.run([](sc::Proc&) {});
  const auto total = m.total_stats();
  EXPECT_EQ(total.words, 0u);
  EXPECT_EQ(total.messages, 0u);
  EXPECT_EQ(total.batches, 0u);
  EXPECT_EQ(total.barriers, 0u);
  EXPECT_EQ(total.local_ops, 0u);
  EXPECT_EQ(m.max_port_words(), 0u);
  for (std::uint32_t rank = 0; rank < 4; ++rank) {
    EXPECT_EQ(m.served_words(rank), 0u);
  }
}

TEST(MachineReuseTest, EpochRestartsAtOneEachRun) {
  sc::Machine m(4);
  std::atomic<std::uint64_t> max_epoch{0};
  m.run([&](sc::Proc& self) {
    EXPECT_EQ(self.epoch(), 1u);
    self.barrier();
    self.barrier();
    std::uint64_t seen = max_epoch.load();
    while (seen < self.epoch() &&
           !max_epoch.compare_exchange_weak(seen, self.epoch())) {
    }
  });
  EXPECT_EQ(max_epoch.load(), 3u);
  // The second program must not inherit the first one's barrier count.
  m.run([&](sc::Proc& self) { EXPECT_EQ(self.epoch(), 1u); });
}

TEST(MachineReuseTest, LedgerDiagnosticsClearedBetweenRuns) {
  if (!sc::Machine::race_ledger_compiled()) {
    GTEST_SKIP() << "race ledger not compiled in";
  }
  sc::Machine m(2);
  m.set_race_policy(sc::RacePolicy::kRecord);
  sc::Spread<std::uint32_t> a(m, 4);
  m.run([&](sc::Proc& self) {
    // Both ranks write the same remote element in the same epoch: a
    // deliberate write-write conflict.
    a.put(self, 0, 0, self.rank());
    self.barrier();
  });
  auto* ledger = m.race_ledger_registry();
  ASSERT_NE(ledger, nullptr);
  EXPECT_GT(ledger->conflict_count(), 0u);

  // A clean follow-up program on the same machine: the previous run's
  // shadow cells and diagnostics must all be gone.
  m.run([&](sc::Proc& self) {
    a.put(self, self.rank(), 0, 7u);
    self.barrier();
  });
  EXPECT_EQ(ledger->conflict_count(), 0u);
  EXPECT_TRUE(ledger->diagnostics().empty());
}

// ---------------------------------------------------------------------------
// Persistent worker mode (WorkerMode::kPersistent): warm parked threads
// instead of per-run spawn/join, observationally identical to kPerRun.

TEST(PersistentModeTest, MatchesPerRunResults) {
  sc::Machine per_run(4, sc::WorkerMode::kPerRun);
  sc::Machine persistent(4, sc::WorkerMode::kPersistent);
  const auto program = [](sc::Machine& m) {
    sc::Spread<std::uint32_t> a(m, 8);
    m.run([&](sc::Proc& self) {
      for (auto& x : a.local(self)) x = self.rank() + 1;
      self.barrier();
      std::vector<std::uint32_t> buf(8);
      a.prefetch(self, buf, (self.rank() + 1) % 4, 0, 8);
      self.sync();
      self.barrier();
    });
    std::vector<std::uint32_t> flat;
    for (std::uint32_t rank = 0; rank < 4; ++rank) {
      for (const auto x : a.block(rank)) flat.push_back(x);
    }
    return std::pair{flat, m.total_stats().words};
  };
  const auto a = program(per_run);
  const auto b = program(persistent);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(PersistentModeTest, WorkerThreadsPersistAcrossRuns) {
  sc::Machine m(4, sc::WorkerMode::kPersistent);
  std::vector<std::thread::id> first(4), second(4);
  m.run([&](sc::Proc& self) {
    first[self.rank()] = std::this_thread::get_id();
  });
  m.run([&](sc::Proc& self) {
    second[self.rank()] = std::this_thread::get_id();
  });
  // Same parked thread serves the same rank in both programs — the whole
  // point of the mode: no per-run thread churn for a pooled machine.
  EXPECT_EQ(first, second);
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (std::uint32_t j = i + 1; j < 4; ++j) {
      EXPECT_NE(first[i], first[j]);
    }
  }
}

TEST(PersistentModeTest, UsableAfterException) {
  sc::Machine m(4, sc::WorkerMode::kPersistent);
  EXPECT_THROW(m.run([&](sc::Proc& self) {
    if (self.rank() == 1) throw std::runtime_error("job failed");
    self.barrier();
  }),
               std::runtime_error);
  std::atomic<int> ok{0};
  m.run([&](sc::Proc& self) {
    self.barrier();
    ok++;
    self.barrier();
  });
  EXPECT_EQ(ok.load(), 4);
}

TEST(PersistentModeTest, ManyConsecutiveRuns) {
  sc::Machine m(8, sc::WorkerMode::kPersistent);
  std::atomic<int> total{0};
  for (int i = 0; i < 32; ++i) {
    m.run([&](sc::Proc& self) {
      self.barrier();
      total++;
    });
  }
  EXPECT_EQ(total.load(), 32 * 8);
}
