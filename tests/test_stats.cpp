// Tests for component statistics: the sequential reference, the parallel
// gather-and-merge version, and their agreement on every workload.
#include <gtest/gtest.h>

#include "histcc/cc/parallel_cc.hpp"
#include "histcc/cc/stats_parallel.hpp"
#include "histcc/cc_seq/analysis.hpp"
#include "histcc/cc_seq/bfs_label.hpp"
#include "histcc/image/generators.hpp"
#include "histcc/splitc/machine.hpp"

namespace cc = histcc::cc;
namespace cs = histcc::ccseq;
namespace im = histcc::img;
namespace sc = histcc::splitc;

namespace {

void expect_stats_equal(const std::vector<cs::ComponentStats>& a,
                        const std::vector<cs::ComponentStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].colour, b[i].colour);
    EXPECT_EQ(a[i].pixels, b[i].pixels);
    EXPECT_EQ(a[i].min_row, b[i].min_row);
    EXPECT_EQ(a[i].min_col, b[i].min_col);
    EXPECT_EQ(a[i].max_row, b[i].max_row);
    EXPECT_EQ(a[i].max_col, b[i].max_col);
    EXPECT_DOUBLE_EQ(a[i].centroid_row(), b[i].centroid_row());
    EXPECT_DOUBLE_EQ(a[i].centroid_col(), b[i].centroid_col());
  }
}

}  // namespace

TEST(ComponentStatsTest, SingleSquare) {
  im::GreyImage image(8, 8, 0);
  for (std::uint32_t i = 2; i <= 5; ++i) {
    for (std::uint32_t j = 3; j <= 6; ++j) image(i, j) = 9;
  }
  const auto labels = cs::label_components_bfs(image);
  const auto stats = cs::component_stats(image, labels);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].pixels, 16u);
  EXPECT_EQ(stats[0].colour, 9);
  EXPECT_EQ(stats[0].min_row, 2u);
  EXPECT_EQ(stats[0].max_row, 5u);
  EXPECT_EQ(stats[0].min_col, 3u);
  EXPECT_EQ(stats[0].max_col, 6u);
  EXPECT_DOUBLE_EQ(stats[0].centroid_row(), 3.5);
  EXPECT_DOUBLE_EQ(stats[0].centroid_col(), 4.5);
}

TEST(ComponentStatsTest, SortedByLabelAndComplete) {
  const auto image = im::make_test_pattern(im::TestPattern::kFourSquares, 64);
  const auto labels = cs::label_components_bfs(image);
  const auto stats = cs::component_stats(image, labels);
  ASSERT_EQ(stats.size(), 4u);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < stats.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(stats[i - 1].label, stats[i].label);
    }
    total += stats[i].pixels;
    // All four squares are congruent.
    EXPECT_EQ(stats[i].pixels, stats[0].pixels);
    EXPECT_EQ(stats[i].max_row - stats[i].min_row,
              stats[i].max_col - stats[i].min_col);
  }
  std::uint64_t foreground = 0;
  for (const auto px : image.pixels()) foreground += px != 0;
  EXPECT_EQ(total, foreground);
}

TEST(ComponentStatsTest, EmptyImage) {
  const im::GreyImage image(16, 16, 0);
  const auto labels = cs::label_components_bfs(image);
  EXPECT_TRUE(cs::component_stats(image, labels).empty());
}

TEST(ComponentStatsTest, MergePartialRecords) {
  cs::ComponentStats a;
  a.label = 5;
  a.colour = 3;
  a.pixels = 2;
  a.min_row = 1;
  a.max_row = 2;
  a.min_col = 4;
  a.max_col = 4;
  a.sum_row = 3;
  a.sum_col = 8;
  cs::ComponentStats b = a;
  b.min_row = 0;
  b.max_col = 9;
  a.merge(b);
  EXPECT_EQ(a.pixels, 4u);
  EXPECT_EQ(a.min_row, 0u);
  EXPECT_EQ(a.max_col, 9u);
  EXPECT_DOUBLE_EQ(a.sum_row, 6.0);

  cs::ComponentStats empty;
  empty.merge(a);
  EXPECT_EQ(empty.pixels, 4u);
  a.merge(cs::ComponentStats{});
  EXPECT_EQ(a.pixels, 4u);
}

class StatsParallelSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(StatsParallelSweep, MatchesSequential) {
  const auto [pattern, p] = GetParam();
  const auto image =
      im::make_test_pattern(static_cast<im::TestPattern>(pattern), 64);
  const auto labels = cs::label_components_bfs(image);
  const auto expected = cs::component_stats(image, labels);
  sc::Machine machine(p);
  const auto actual = cc::component_stats_parallel(machine, image, labels);
  expect_stats_equal(expected, actual);
}

INSTANTIATE_TEST_SUITE_P(Catalog, StatsParallelSweep,
                         ::testing::Combine(::testing::Range(1, 10),
                                            ::testing::Values(1, 4, 8, 32)));

TEST(StatsParallelTest, GreySceneMatches) {
  const auto image = im::make_darpa_like(96, 4);
  const auto labels = cs::label_components_bfs(
      image, cs::Connectivity::kEight, cs::ColourRule::kSameColour);
  const auto expected = cs::component_stats(image, labels);
  sc::Machine machine(16);
  expect_stats_equal(expected,
                     cc::component_stats_parallel(machine, image, labels));
}

TEST(StatsParallelTest, DistributedPipelineEndToEnd) {
  // The intended use: label with the parallel algorithm into a Spread,
  // then measure without ever assembling the labeling on the host.
  const std::uint32_t n = 64, p = 16;
  const auto image = im::make_darpa_like(n, 21);
  sc::Machine machine(p);
  const im::TileLayout layout(n, p);
  sc::Spread<std::uint8_t> tiles(machine, layout.max_tile_size());
  sc::Spread<std::uint32_t> labels(machine, layout.max_tile_size());
  layout.scatter(image, tiles);
  cc::CcOptions options;
  options.rule = cs::ColourRule::kSameColour;
  cc::connected_components_parallel(machine, layout, tiles, labels, options);
  const auto stats =
      cc::component_stats_parallel(machine, layout, tiles, labels);

  const auto reference = cs::component_stats(
      image, cs::label_components_bfs(image, cs::Connectivity::kEight,
                                      cs::ColourRule::kSameColour));
  expect_stats_equal(reference, stats);
}

TEST(StatsParallelTest, ShapeMismatchRejected) {
  const auto image = im::make_percolation(64, 0.5, 1);
  const auto labels = cs::label_components_bfs(image);
  sc::Machine machine(4);
  const im::TileLayout layout(64, 4);
  sc::Spread<std::uint8_t> tiles(machine, layout.max_tile_size());
  sc::Spread<std::uint32_t> small(machine, 1);
  layout.scatter(image, tiles);
  EXPECT_THROW(
      (void)cc::component_stats_parallel(machine, layout, tiles, small),
      histcc::util::contract_error);
}
