# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_splitc[1]_include.cmake")
include("/root/repo/build/tests/test_sortutil[1]_include.cmake")
include("/root/repo/build/tests/test_bdm[1]_include.cmake")
include("/root/repo/build/tests/test_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_image[1]_include.cmake")
include("/root/repo/build/tests/test_cc_seq[1]_include.cmake")
include("/root/repo/build/tests/test_hist[1]_include.cmake")
include("/root/repo/build/tests/test_merge_schedule[1]_include.cmake")
include("/root/repo/build/tests/test_border_graph[1]_include.cmake")
include("/root/repo/build/tests/test_hooks[1]_include.cmake")
include("/root/repo/build/tests/test_cc_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_label_prop[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_region_graph[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_omp[1]_include.cmake")
include("/root/repo/build/tests/test_morph[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
