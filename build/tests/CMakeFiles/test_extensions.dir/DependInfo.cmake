
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/test_extensions.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/test_extensions.dir/test_extensions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/histcc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/histcc_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/hist/CMakeFiles/histcc_hist.dir/DependInfo.cmake"
  "/root/repo/build/src/bdm/CMakeFiles/histcc_bdm.dir/DependInfo.cmake"
  "/root/repo/build/src/morph/CMakeFiles/histcc_morph.dir/DependInfo.cmake"
  "/root/repo/build/src/omp/CMakeFiles/histcc_omp.dir/DependInfo.cmake"
  "/root/repo/build/src/cc_seq/CMakeFiles/histcc_cc_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/histcc_image.dir/DependInfo.cmake"
  "/root/repo/build/src/sortutil/CMakeFiles/histcc_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/splitc/CMakeFiles/histcc_splitc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/histcc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
