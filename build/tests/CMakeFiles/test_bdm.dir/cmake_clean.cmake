file(REMOVE_RECURSE
  "CMakeFiles/test_bdm.dir/test_bdm.cpp.o"
  "CMakeFiles/test_bdm.dir/test_bdm.cpp.o.d"
  "test_bdm"
  "test_bdm.pdb"
  "test_bdm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
