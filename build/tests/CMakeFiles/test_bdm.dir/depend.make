# Empty dependencies file for test_bdm.
# This may be replaced when dependencies are built.
