# Empty dependencies file for test_border_graph.
# This may be replaced when dependencies are built.
