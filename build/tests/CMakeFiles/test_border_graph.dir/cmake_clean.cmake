file(REMOVE_RECURSE
  "CMakeFiles/test_border_graph.dir/test_border_graph.cpp.o"
  "CMakeFiles/test_border_graph.dir/test_border_graph.cpp.o.d"
  "test_border_graph"
  "test_border_graph.pdb"
  "test_border_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_border_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
