file(REMOVE_RECURSE
  "CMakeFiles/test_label_prop.dir/test_label_prop.cpp.o"
  "CMakeFiles/test_label_prop.dir/test_label_prop.cpp.o.d"
  "test_label_prop"
  "test_label_prop.pdb"
  "test_label_prop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_label_prop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
