# Empty compiler generated dependencies file for test_label_prop.
# This may be replaced when dependencies are built.
