file(REMOVE_RECURSE
  "CMakeFiles/test_merge_schedule.dir/test_merge_schedule.cpp.o"
  "CMakeFiles/test_merge_schedule.dir/test_merge_schedule.cpp.o.d"
  "test_merge_schedule"
  "test_merge_schedule.pdb"
  "test_merge_schedule[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_merge_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
