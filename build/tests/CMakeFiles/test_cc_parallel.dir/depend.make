# Empty dependencies file for test_cc_parallel.
# This may be replaced when dependencies are built.
