file(REMOVE_RECURSE
  "CMakeFiles/test_morph.dir/test_morph.cpp.o"
  "CMakeFiles/test_morph.dir/test_morph.cpp.o.d"
  "test_morph"
  "test_morph.pdb"
  "test_morph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_morph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
