# Empty compiler generated dependencies file for test_morph.
# This may be replaced when dependencies are built.
