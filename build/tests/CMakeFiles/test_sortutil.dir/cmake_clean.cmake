file(REMOVE_RECURSE
  "CMakeFiles/test_sortutil.dir/test_sortutil.cpp.o"
  "CMakeFiles/test_sortutil.dir/test_sortutil.cpp.o.d"
  "test_sortutil"
  "test_sortutil.pdb"
  "test_sortutil[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sortutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
