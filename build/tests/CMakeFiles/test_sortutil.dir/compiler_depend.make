# Empty compiler generated dependencies file for test_sortutil.
# This may be replaced when dependencies are built.
