# Empty compiler generated dependencies file for test_cc_seq.
# This may be replaced when dependencies are built.
