file(REMOVE_RECURSE
  "CMakeFiles/test_hooks.dir/test_hooks.cpp.o"
  "CMakeFiles/test_hooks.dir/test_hooks.cpp.o.d"
  "test_hooks"
  "test_hooks.pdb"
  "test_hooks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hooks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
