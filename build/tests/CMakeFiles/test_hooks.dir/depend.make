# Empty dependencies file for test_hooks.
# This may be replaced when dependencies are built.
