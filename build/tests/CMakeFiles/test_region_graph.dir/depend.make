# Empty dependencies file for test_region_graph.
# This may be replaced when dependencies are built.
