file(REMOVE_RECURSE
  "CMakeFiles/test_region_graph.dir/test_region_graph.cpp.o"
  "CMakeFiles/test_region_graph.dir/test_region_graph.cpp.o.d"
  "test_region_graph"
  "test_region_graph.pdb"
  "test_region_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_region_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
