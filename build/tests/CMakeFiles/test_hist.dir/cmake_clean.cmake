file(REMOVE_RECURSE
  "CMakeFiles/test_hist.dir/test_hist.cpp.o"
  "CMakeFiles/test_hist.dir/test_hist.cpp.o.d"
  "test_hist"
  "test_hist.pdb"
  "test_hist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
