# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli.generate_and_info "sh" "-c" "/root/repo/build/tools/histcc generate --kind dual-spiral --n 64 --out /root/repo/build/tools/spiral.pgm && /root/repo/build/tools/histcc info --in /root/repo/build/tools/spiral.pgm")
set_tests_properties(cli.generate_and_info PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.components_merge "/root/repo/build/tools/histcc" "components" "--kind" "four-squares" "--n" "64" "--p" "8" "--stats")
set_tests_properties(cli.components_merge PROPERTIES  PASS_REGULAR_EXPRESSION "4 components" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.components_prop "/root/repo/build/tools/histcc" "components" "--kind" "dual-spiral" "--n" "64" "--p" "4" "--algo" "prop")
set_tests_properties(cli.components_prop PROPERTIES  PASS_REGULAR_EXPRESSION "2 components" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.components_replicated "/root/repo/build/tools/histcc" "components" "--kind" "disc" "--n" "64" "--p" "4" "--algo" "replicated")
set_tests_properties(cli.components_replicated PROPERTIES  PASS_REGULAR_EXPRESSION "1 components" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.histogram "/root/repo/build/tools/histcc" "histogram" "--kind" "banded" "--n" "64" "--k" "8" "--p" "4" "--phases")
set_tests_properties(cli.histogram PROPERTIES  PASS_REGULAR_EXPRESSION "4096 pixels" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.equalize "/root/repo/build/tools/histcc" "equalize" "--kind" "darpa" "--n" "64" "--p" "4" "--k" "256" "--out" "/root/repo/build/tools/eq.pgm")
set_tests_properties(cli.equalize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.grey_components "/root/repo/build/tools/histcc" "components" "--kind" "darpa" "--n" "64" "--p" "8" "--rule" "grey" "--conn" "4")
set_tests_properties(cli.grey_components PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;28;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.morph_open "/root/repo/build/tools/histcc" "morph" "--kind" "four-squares" "--n" "64" "--op" "open" "--out" "/root/repo/build/tools/opened.pgm")
set_tests_properties(cli.morph_open PROPERTIES  PASS_REGULAR_EXPRESSION "foreground px" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;31;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.components_omp "/root/repo/build/tools/histcc" "components" "--kind" "four-squares" "--n" "64" "--algo" "omp")
set_tests_properties(cli.components_omp PROPERTIES  PASS_REGULAR_EXPRESSION "4 components" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;36;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.rejects_bad_command "/root/repo/build/tools/histcc" "frobnicate")
set_tests_properties(cli.rejects_bad_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;40;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.rejects_missing_file "/root/repo/build/tools/histcc" "info" "--in" "/root/repo/build/tools/no-such.pgm")
set_tests_properties(cli.rejects_missing_file PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;42;add_test;/root/repo/tools/CMakeLists.txt;0;")
