# Empty dependencies file for histcc_cli.
# This may be replaced when dependencies are built.
