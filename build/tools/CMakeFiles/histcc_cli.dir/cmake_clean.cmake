file(REMOVE_RECURSE
  "CMakeFiles/histcc_cli.dir/histcc_cli.cpp.o"
  "CMakeFiles/histcc_cli.dir/histcc_cli.cpp.o.d"
  "histcc"
  "histcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histcc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
