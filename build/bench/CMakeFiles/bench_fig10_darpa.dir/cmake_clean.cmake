file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_darpa.dir/bench_fig10_darpa.cpp.o"
  "CMakeFiles/bench_fig10_darpa.dir/bench_fig10_darpa.cpp.o.d"
  "bench_fig10_darpa"
  "bench_fig10_darpa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_darpa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
