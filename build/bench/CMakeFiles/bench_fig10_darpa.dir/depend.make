# Empty dependencies file for bench_fig10_darpa.
# This may be replaced when dependencies are built.
