file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12to17_cm5.dir/bench_fig12to17_cm5.cpp.o"
  "CMakeFiles/bench_fig12to17_cm5.dir/bench_fig12to17_cm5.cpp.o.d"
  "bench_fig12to17_cm5"
  "bench_fig12to17_cm5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12to17_cm5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
