# Empty compiler generated dependencies file for bench_fig12to17_cm5.
# This may be replaced when dependencies are built.
