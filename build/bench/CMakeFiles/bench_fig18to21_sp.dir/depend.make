# Empty dependencies file for bench_fig18to21_sp.
# This may be replaced when dependencies are built.
