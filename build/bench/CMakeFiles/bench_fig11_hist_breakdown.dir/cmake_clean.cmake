file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_hist_breakdown.dir/bench_fig11_hist_breakdown.cpp.o"
  "CMakeFiles/bench_fig11_hist_breakdown.dir/bench_fig11_hist_breakdown.cpp.o.d"
  "bench_fig11_hist_breakdown"
  "bench_fig11_hist_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_hist_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
