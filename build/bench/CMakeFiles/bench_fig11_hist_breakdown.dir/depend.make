# Empty dependencies file for bench_fig11_hist_breakdown.
# This may be replaced when dependencies are built.
