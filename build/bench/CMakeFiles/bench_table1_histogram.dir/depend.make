# Empty dependencies file for bench_table1_histogram.
# This may be replaced when dependencies are built.
