file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_histogram.dir/bench_table1_histogram.cpp.o"
  "CMakeFiles/bench_table1_histogram.dir/bench_table1_histogram.cpp.o.d"
  "bench_table1_histogram"
  "bench_table1_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
