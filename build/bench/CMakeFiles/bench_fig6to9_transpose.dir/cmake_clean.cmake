file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6to9_transpose.dir/bench_fig6to9_transpose.cpp.o"
  "CMakeFiles/bench_fig6to9_transpose.dir/bench_fig6to9_transpose.cpp.o.d"
  "bench_fig6to9_transpose"
  "bench_fig6to9_transpose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6to9_transpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
