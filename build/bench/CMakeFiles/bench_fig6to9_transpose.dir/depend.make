# Empty dependencies file for bench_fig6to9_transpose.
# This may be replaced when dependencies are built.
