# Empty dependencies file for bench_fig3_scalability.
# This may be replaced when dependencies are built.
