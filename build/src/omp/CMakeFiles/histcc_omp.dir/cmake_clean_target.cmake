file(REMOVE_RECURSE
  "libhistcc_omp.a"
)
