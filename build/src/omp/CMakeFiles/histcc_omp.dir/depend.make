# Empty dependencies file for histcc_omp.
# This may be replaced when dependencies are built.
