file(REMOVE_RECURSE
  "CMakeFiles/histcc_omp.dir/src/components_omp.cpp.o"
  "CMakeFiles/histcc_omp.dir/src/components_omp.cpp.o.d"
  "CMakeFiles/histcc_omp.dir/src/histogram_omp.cpp.o"
  "CMakeFiles/histcc_omp.dir/src/histogram_omp.cpp.o.d"
  "libhistcc_omp.a"
  "libhistcc_omp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histcc_omp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
