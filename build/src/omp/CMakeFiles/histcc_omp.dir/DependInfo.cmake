
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/omp/src/components_omp.cpp" "src/omp/CMakeFiles/histcc_omp.dir/src/components_omp.cpp.o" "gcc" "src/omp/CMakeFiles/histcc_omp.dir/src/components_omp.cpp.o.d"
  "/root/repo/src/omp/src/histogram_omp.cpp" "src/omp/CMakeFiles/histcc_omp.dir/src/histogram_omp.cpp.o" "gcc" "src/omp/CMakeFiles/histcc_omp.dir/src/histogram_omp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cc_seq/CMakeFiles/histcc_cc_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/histcc_image.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/histcc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/splitc/CMakeFiles/histcc_splitc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
