file(REMOVE_RECURSE
  "libhistcc_sort.a"
)
