file(REMOVE_RECURSE
  "CMakeFiles/histcc_sort.dir/src/radix.cpp.o"
  "CMakeFiles/histcc_sort.dir/src/radix.cpp.o.d"
  "libhistcc_sort.a"
  "libhistcc_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histcc_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
