# Empty compiler generated dependencies file for histcc_sort.
# This may be replaced when dependencies are built.
