file(REMOVE_RECURSE
  "libhistcc_cc_seq.a"
)
