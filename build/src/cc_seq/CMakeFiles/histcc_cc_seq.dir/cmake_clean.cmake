file(REMOVE_RECURSE
  "CMakeFiles/histcc_cc_seq.dir/src/analysis.cpp.o"
  "CMakeFiles/histcc_cc_seq.dir/src/analysis.cpp.o.d"
  "CMakeFiles/histcc_cc_seq.dir/src/bfs_label.cpp.o"
  "CMakeFiles/histcc_cc_seq.dir/src/bfs_label.cpp.o.d"
  "CMakeFiles/histcc_cc_seq.dir/src/hoshen_kopelman.cpp.o"
  "CMakeFiles/histcc_cc_seq.dir/src/hoshen_kopelman.cpp.o.d"
  "CMakeFiles/histcc_cc_seq.dir/src/union_find.cpp.o"
  "CMakeFiles/histcc_cc_seq.dir/src/union_find.cpp.o.d"
  "libhistcc_cc_seq.a"
  "libhistcc_cc_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histcc_cc_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
