
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc_seq/src/analysis.cpp" "src/cc_seq/CMakeFiles/histcc_cc_seq.dir/src/analysis.cpp.o" "gcc" "src/cc_seq/CMakeFiles/histcc_cc_seq.dir/src/analysis.cpp.o.d"
  "/root/repo/src/cc_seq/src/bfs_label.cpp" "src/cc_seq/CMakeFiles/histcc_cc_seq.dir/src/bfs_label.cpp.o" "gcc" "src/cc_seq/CMakeFiles/histcc_cc_seq.dir/src/bfs_label.cpp.o.d"
  "/root/repo/src/cc_seq/src/hoshen_kopelman.cpp" "src/cc_seq/CMakeFiles/histcc_cc_seq.dir/src/hoshen_kopelman.cpp.o" "gcc" "src/cc_seq/CMakeFiles/histcc_cc_seq.dir/src/hoshen_kopelman.cpp.o.d"
  "/root/repo/src/cc_seq/src/union_find.cpp" "src/cc_seq/CMakeFiles/histcc_cc_seq.dir/src/union_find.cpp.o" "gcc" "src/cc_seq/CMakeFiles/histcc_cc_seq.dir/src/union_find.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/image/CMakeFiles/histcc_image.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/histcc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/splitc/CMakeFiles/histcc_splitc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
