# Empty dependencies file for histcc_cc_seq.
# This may be replaced when dependencies are built.
