file(REMOVE_RECURSE
  "libhistcc_hist.a"
)
