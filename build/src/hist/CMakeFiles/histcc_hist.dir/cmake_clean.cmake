file(REMOVE_RECURSE
  "CMakeFiles/histcc_hist.dir/src/equalize.cpp.o"
  "CMakeFiles/histcc_hist.dir/src/equalize.cpp.o.d"
  "CMakeFiles/histcc_hist.dir/src/histogram.cpp.o"
  "CMakeFiles/histcc_hist.dir/src/histogram.cpp.o.d"
  "libhistcc_hist.a"
  "libhistcc_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histcc_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
