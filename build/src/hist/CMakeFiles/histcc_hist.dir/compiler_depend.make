# Empty compiler generated dependencies file for histcc_hist.
# This may be replaced when dependencies are built.
