# Empty dependencies file for histcc_image.
# This may be replaced when dependencies are built.
