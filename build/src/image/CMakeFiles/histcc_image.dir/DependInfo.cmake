
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/image/src/generators.cpp" "src/image/CMakeFiles/histcc_image.dir/src/generators.cpp.o" "gcc" "src/image/CMakeFiles/histcc_image.dir/src/generators.cpp.o.d"
  "/root/repo/src/image/src/halo.cpp" "src/image/CMakeFiles/histcc_image.dir/src/halo.cpp.o" "gcc" "src/image/CMakeFiles/histcc_image.dir/src/halo.cpp.o.d"
  "/root/repo/src/image/src/layout.cpp" "src/image/CMakeFiles/histcc_image.dir/src/layout.cpp.o" "gcc" "src/image/CMakeFiles/histcc_image.dir/src/layout.cpp.o.d"
  "/root/repo/src/image/src/pgm_io.cpp" "src/image/CMakeFiles/histcc_image.dir/src/pgm_io.cpp.o" "gcc" "src/image/CMakeFiles/histcc_image.dir/src/pgm_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/splitc/CMakeFiles/histcc_splitc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/histcc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
