file(REMOVE_RECURSE
  "CMakeFiles/histcc_image.dir/src/generators.cpp.o"
  "CMakeFiles/histcc_image.dir/src/generators.cpp.o.d"
  "CMakeFiles/histcc_image.dir/src/halo.cpp.o"
  "CMakeFiles/histcc_image.dir/src/halo.cpp.o.d"
  "CMakeFiles/histcc_image.dir/src/layout.cpp.o"
  "CMakeFiles/histcc_image.dir/src/layout.cpp.o.d"
  "CMakeFiles/histcc_image.dir/src/pgm_io.cpp.o"
  "CMakeFiles/histcc_image.dir/src/pgm_io.cpp.o.d"
  "libhistcc_image.a"
  "libhistcc_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histcc_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
