file(REMOVE_RECURSE
  "libhistcc_image.a"
)
