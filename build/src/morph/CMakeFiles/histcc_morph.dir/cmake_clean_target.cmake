file(REMOVE_RECURSE
  "libhistcc_morph.a"
)
