
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/morph/src/morphology.cpp" "src/morph/CMakeFiles/histcc_morph.dir/src/morphology.cpp.o" "gcc" "src/morph/CMakeFiles/histcc_morph.dir/src/morphology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/image/CMakeFiles/histcc_image.dir/DependInfo.cmake"
  "/root/repo/build/src/splitc/CMakeFiles/histcc_splitc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/histcc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
