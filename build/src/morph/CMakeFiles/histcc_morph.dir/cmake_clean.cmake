file(REMOVE_RECURSE
  "CMakeFiles/histcc_morph.dir/src/morphology.cpp.o"
  "CMakeFiles/histcc_morph.dir/src/morphology.cpp.o.d"
  "libhistcc_morph.a"
  "libhistcc_morph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histcc_morph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
