# Empty compiler generated dependencies file for histcc_morph.
# This may be replaced when dependencies are built.
