file(REMOVE_RECURSE
  "CMakeFiles/histcc_splitc.dir/src/barrier.cpp.o"
  "CMakeFiles/histcc_splitc.dir/src/barrier.cpp.o.d"
  "CMakeFiles/histcc_splitc.dir/src/machine.cpp.o"
  "CMakeFiles/histcc_splitc.dir/src/machine.cpp.o.d"
  "CMakeFiles/histcc_splitc.dir/src/profile.cpp.o"
  "CMakeFiles/histcc_splitc.dir/src/profile.cpp.o.d"
  "CMakeFiles/histcc_splitc.dir/src/stats.cpp.o"
  "CMakeFiles/histcc_splitc.dir/src/stats.cpp.o.d"
  "libhistcc_splitc.a"
  "libhistcc_splitc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histcc_splitc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
