# Empty dependencies file for histcc_splitc.
# This may be replaced when dependencies are built.
