file(REMOVE_RECURSE
  "libhistcc_splitc.a"
)
