
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/splitc/src/barrier.cpp" "src/splitc/CMakeFiles/histcc_splitc.dir/src/barrier.cpp.o" "gcc" "src/splitc/CMakeFiles/histcc_splitc.dir/src/barrier.cpp.o.d"
  "/root/repo/src/splitc/src/machine.cpp" "src/splitc/CMakeFiles/histcc_splitc.dir/src/machine.cpp.o" "gcc" "src/splitc/CMakeFiles/histcc_splitc.dir/src/machine.cpp.o.d"
  "/root/repo/src/splitc/src/profile.cpp" "src/splitc/CMakeFiles/histcc_splitc.dir/src/profile.cpp.o" "gcc" "src/splitc/CMakeFiles/histcc_splitc.dir/src/profile.cpp.o.d"
  "/root/repo/src/splitc/src/stats.cpp" "src/splitc/CMakeFiles/histcc_splitc.dir/src/stats.cpp.o" "gcc" "src/splitc/CMakeFiles/histcc_splitc.dir/src/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/histcc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
