
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/src/border_graph.cpp" "src/cc/CMakeFiles/histcc_cc.dir/src/border_graph.cpp.o" "gcc" "src/cc/CMakeFiles/histcc_cc.dir/src/border_graph.cpp.o.d"
  "/root/repo/src/cc/src/hooks.cpp" "src/cc/CMakeFiles/histcc_cc.dir/src/hooks.cpp.o" "gcc" "src/cc/CMakeFiles/histcc_cc.dir/src/hooks.cpp.o.d"
  "/root/repo/src/cc/src/label_prop.cpp" "src/cc/CMakeFiles/histcc_cc.dir/src/label_prop.cpp.o" "gcc" "src/cc/CMakeFiles/histcc_cc.dir/src/label_prop.cpp.o.d"
  "/root/repo/src/cc/src/merge_schedule.cpp" "src/cc/CMakeFiles/histcc_cc.dir/src/merge_schedule.cpp.o" "gcc" "src/cc/CMakeFiles/histcc_cc.dir/src/merge_schedule.cpp.o.d"
  "/root/repo/src/cc/src/parallel_cc.cpp" "src/cc/CMakeFiles/histcc_cc.dir/src/parallel_cc.cpp.o" "gcc" "src/cc/CMakeFiles/histcc_cc.dir/src/parallel_cc.cpp.o.d"
  "/root/repo/src/cc/src/region_graph.cpp" "src/cc/CMakeFiles/histcc_cc.dir/src/region_graph.cpp.o" "gcc" "src/cc/CMakeFiles/histcc_cc.dir/src/region_graph.cpp.o.d"
  "/root/repo/src/cc/src/replicated.cpp" "src/cc/CMakeFiles/histcc_cc.dir/src/replicated.cpp.o" "gcc" "src/cc/CMakeFiles/histcc_cc.dir/src/replicated.cpp.o.d"
  "/root/repo/src/cc/src/stats_parallel.cpp" "src/cc/CMakeFiles/histcc_cc.dir/src/stats_parallel.cpp.o" "gcc" "src/cc/CMakeFiles/histcc_cc.dir/src/stats_parallel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bdm/CMakeFiles/histcc_bdm.dir/DependInfo.cmake"
  "/root/repo/build/src/cc_seq/CMakeFiles/histcc_cc_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/histcc_image.dir/DependInfo.cmake"
  "/root/repo/build/src/sortutil/CMakeFiles/histcc_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/splitc/CMakeFiles/histcc_splitc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/histcc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
