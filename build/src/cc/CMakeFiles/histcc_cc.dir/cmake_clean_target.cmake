file(REMOVE_RECURSE
  "libhistcc_cc.a"
)
