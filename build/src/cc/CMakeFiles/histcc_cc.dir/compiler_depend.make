# Empty compiler generated dependencies file for histcc_cc.
# This may be replaced when dependencies are built.
