file(REMOVE_RECURSE
  "CMakeFiles/histcc_cc.dir/src/border_graph.cpp.o"
  "CMakeFiles/histcc_cc.dir/src/border_graph.cpp.o.d"
  "CMakeFiles/histcc_cc.dir/src/hooks.cpp.o"
  "CMakeFiles/histcc_cc.dir/src/hooks.cpp.o.d"
  "CMakeFiles/histcc_cc.dir/src/label_prop.cpp.o"
  "CMakeFiles/histcc_cc.dir/src/label_prop.cpp.o.d"
  "CMakeFiles/histcc_cc.dir/src/merge_schedule.cpp.o"
  "CMakeFiles/histcc_cc.dir/src/merge_schedule.cpp.o.d"
  "CMakeFiles/histcc_cc.dir/src/parallel_cc.cpp.o"
  "CMakeFiles/histcc_cc.dir/src/parallel_cc.cpp.o.d"
  "CMakeFiles/histcc_cc.dir/src/region_graph.cpp.o"
  "CMakeFiles/histcc_cc.dir/src/region_graph.cpp.o.d"
  "CMakeFiles/histcc_cc.dir/src/replicated.cpp.o"
  "CMakeFiles/histcc_cc.dir/src/replicated.cpp.o.d"
  "CMakeFiles/histcc_cc.dir/src/stats_parallel.cpp.o"
  "CMakeFiles/histcc_cc.dir/src/stats_parallel.cpp.o.d"
  "libhistcc_cc.a"
  "libhistcc_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histcc_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
