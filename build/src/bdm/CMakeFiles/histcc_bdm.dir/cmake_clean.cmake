file(REMOVE_RECURSE
  "CMakeFiles/histcc_bdm.dir/src/primitives.cpp.o"
  "CMakeFiles/histcc_bdm.dir/src/primitives.cpp.o.d"
  "libhistcc_bdm.a"
  "libhistcc_bdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histcc_bdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
