file(REMOVE_RECURSE
  "libhistcc_bdm.a"
)
