# Empty dependencies file for histcc_bdm.
# This may be replaced when dependencies are built.
