file(REMOVE_RECURSE
  "CMakeFiles/histcc_core.dir/src/api.cpp.o"
  "CMakeFiles/histcc_core.dir/src/api.cpp.o.d"
  "CMakeFiles/histcc_core.dir/src/version.cpp.o"
  "CMakeFiles/histcc_core.dir/src/version.cpp.o.d"
  "libhistcc_core.a"
  "libhistcc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histcc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
