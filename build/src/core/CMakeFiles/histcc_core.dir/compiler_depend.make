# Empty compiler generated dependencies file for histcc_core.
# This may be replaced when dependencies are built.
