file(REMOVE_RECURSE
  "libhistcc_core.a"
)
