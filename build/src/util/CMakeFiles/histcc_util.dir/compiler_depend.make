# Empty compiler generated dependencies file for histcc_util.
# This may be replaced when dependencies are built.
