file(REMOVE_RECURSE
  "libhistcc_util.a"
)
