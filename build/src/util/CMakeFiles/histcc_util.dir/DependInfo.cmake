
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/src/require.cpp" "src/util/CMakeFiles/histcc_util.dir/src/require.cpp.o" "gcc" "src/util/CMakeFiles/histcc_util.dir/src/require.cpp.o.d"
  "/root/repo/src/util/src/rng.cpp" "src/util/CMakeFiles/histcc_util.dir/src/rng.cpp.o" "gcc" "src/util/CMakeFiles/histcc_util.dir/src/rng.cpp.o.d"
  "/root/repo/src/util/src/timer.cpp" "src/util/CMakeFiles/histcc_util.dir/src/timer.cpp.o" "gcc" "src/util/CMakeFiles/histcc_util.dir/src/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
