file(REMOVE_RECURSE
  "CMakeFiles/histcc_util.dir/src/require.cpp.o"
  "CMakeFiles/histcc_util.dir/src/require.cpp.o.d"
  "CMakeFiles/histcc_util.dir/src/rng.cpp.o"
  "CMakeFiles/histcc_util.dir/src/rng.cpp.o.d"
  "CMakeFiles/histcc_util.dir/src/timer.cpp.o"
  "CMakeFiles/histcc_util.dir/src/timer.cpp.o.d"
  "libhistcc_util.a"
  "libhistcc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histcc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
