file(REMOVE_RECURSE
  "CMakeFiles/ising_clusters.dir/ising_clusters.cpp.o"
  "CMakeFiles/ising_clusters.dir/ising_clusters.cpp.o.d"
  "ising_clusters"
  "ising_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ising_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
