# Empty dependencies file for ising_clusters.
# This may be replaced when dependencies are built.
