file(REMOVE_RECURSE
  "CMakeFiles/percolation.dir/percolation.cpp.o"
  "CMakeFiles/percolation.dir/percolation.cpp.o.d"
  "percolation"
  "percolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/percolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
