# Empty dependencies file for percolation.
# This may be replaced when dependencies are built.
