file(REMOVE_RECURSE
  "CMakeFiles/darpa_scene.dir/darpa_scene.cpp.o"
  "CMakeFiles/darpa_scene.dir/darpa_scene.cpp.o.d"
  "darpa_scene"
  "darpa_scene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darpa_scene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
