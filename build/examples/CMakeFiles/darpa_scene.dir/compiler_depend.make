# Empty compiler generated dependencies file for darpa_scene.
# This may be replaced when dependencies are built.
