# Empty compiler generated dependencies file for object_recognition.
# This may be replaced when dependencies are built.
