file(REMOVE_RECURSE
  "CMakeFiles/object_recognition.dir/object_recognition.cpp.o"
  "CMakeFiles/object_recognition.dir/object_recognition.cpp.o.d"
  "object_recognition"
  "object_recognition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_recognition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
