// Quickstart: histogram and label a generated image on a virtual
// distributed-memory machine, print the results and the BDM cost ledger.
//
//   ./quickstart [h] [w] [p]
//
// h x w: image shape (default 256 x 320 — any rectangle works under the
// ragged tile layout), p: virtual processors (default 16).
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "histcc/histcc.hpp"

int main(int argc, char** argv) {
  using namespace histcc;
  const std::uint32_t h = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 256;
  const std::uint32_t w = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 320;
  const std::uint32_t p = argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 16;

  std::printf("histcc %s quickstart: h=%u, w=%u, p=%u\n", version(), h, w, p);

  // 1. Build a machine and a test scene (generated square, cropped to the
  // requested rectangle).
  splitc::Machine machine(p);
  const auto square = img::make_darpa_like(std::max(h, w));
  img::GreyImage scene(h, w);
  for (std::uint32_t i = 0; i < h; ++i) {
    for (std::uint32_t j = 0; j < w; ++j) scene(i, j) = square(i, j);
  }
  std::printf("generated a %ux%u DARPA-style scene (256 grey levels)\n", h, w);

  // 2. Distribute it once; both algorithms reuse the same tiles.
  const img::TileLayout layout(h, w, p);
  splitc::Spread<std::uint8_t> tiles(machine, layout.tile_sizes(), "quickstart_tiles");
  layout.scatter(scene, tiles);
  std::printf("layout: %ux%u processor grid, tiles up to %ux%u "
              "(edge tiles may be smaller)\n",
              layout.grid_rows(), layout.grid_cols(), layout.max_tile_rows(),
              layout.max_tile_cols());

  // 3. Histogram (Section 4 of the paper).
  util::Timer timer;
  const auto counts = hist::histogram_parallel(machine, layout, tiles, 256);
  const double hist_s = timer.seconds();
  std::uint64_t total = 0;
  std::uint32_t busiest = 0;
  for (std::uint32_t g = 0; g < 256; ++g) {
    total += counts[g];
    if (counts[g] > counts[busiest]) busiest = g;
  }
  std::printf("histogram: %llu pixels tallied, busiest grey level %u (%u px), "
              "%.3f ms\n",
              static_cast<unsigned long long>(total), busiest,
              counts[busiest], hist_s * 1e3);
  const auto hist_stats = machine.max_stats();
  std::printf("  BDM ledger (max over procs): %llu remote words, "
              "%llu batches, %llu barriers\n",
              static_cast<unsigned long long>(hist_stats.words),
              static_cast<unsigned long long>(hist_stats.batches),
              static_cast<unsigned long long>(hist_stats.barriers));

  // 4. Connected components (Sections 5-6).
  cc::CcOptions options;
  options.rule = ccseq::ColourRule::kSameColour;
  timer.reset();
  const auto labels =
      cc::connected_components_parallel(machine, layout, tiles, options);
  const double cc_s = timer.seconds();
  auto sizes = ccseq::component_sizes(labels);
  std::printf("connected components: %zu components, largest %llu px, "
              "%.3f ms\n",
              sizes.size(),
              sizes.empty() ? 0ull
                            : static_cast<unsigned long long>(sizes[0].pixels),
              cc_s * 1e3);
  const auto cc_stats = machine.max_stats();
  std::printf("  BDM ledger (max over procs): %llu remote words, "
              "%llu batches, %llu barriers\n",
              static_cast<unsigned long long>(cc_stats.words),
              static_cast<unsigned long long>(cc_stats.batches),
              static_cast<unsigned long long>(cc_stats.barriers));

  // 5. What would this cost on the paper's machines?
  for (const char* name : {"CM-5", "SP-2", "CS-2", "Paragon"}) {
    const auto prof = splitc::profile_by_name(name);
    std::printf("  modeled CC comm time on %-8s %8.3f ms\n", name,
                cc_stats.modeled_comm_seconds(prof) * 1e3);
  }
  return 0;
}
