// Ising spin-cluster identification — the cluster Monte Carlo application
// the paper cites ([2]-[4] Apostolakis/Baillie/Coddington, [39]-[40]
// Sokal).  Generates correlated two-phase spin configurations at several
// temperatures and labels the same-spin clusters (grey-level connected
// components with the same-colour rule), reporting how cluster structure
// changes with temperature.
//
//   ./ising_clusters [n] [p]
#include <cstdio>
#include <cstdlib>

#include "histcc/histcc.hpp"

int main(int argc, char** argv) {
  using namespace histcc;
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 256;
  const std::uint32_t p = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 16;

  splitc::Machine machine(p);
  cc::CcOptions options;
  options.rule = ccseq::ColourRule::kSameColour;
  options.connectivity = ccseq::Connectivity::kFour;  // nearest-neighbour Ising

  std::printf("Ising spin clusters on a %ux%u lattice, p=%u\n", n, n, p);
  std::printf("%-6s %-12s %-14s %-14s %-10s\n", "beta", "clusters",
              "largest-frac", "mean-size", "rounds(lp)");

  // beta = 0 is random spins; the 2-D Ising critical point is
  // beta_c = ln(1+sqrt(2))/2 ~ 0.4407, above which clusters coarsen.
  for (const double beta : {0.0, 0.2, 0.4, 0.4407, 0.6, 0.8}) {
    const auto spins = img::make_ising(n, beta, 5, 99);
    const auto labels =
        cc::connected_components_parallel(machine, spins, options);
    const auto sizes = ccseq::component_sizes(labels);

    double mean = 0.0;
    for (const auto& s : sizes) mean += static_cast<double>(s.pixels);
    mean /= sizes.empty() ? 1.0 : static_cast<double>(sizes.size());
    const double largest =
        sizes.empty() ? 0.0
                      : static_cast<double>(sizes[0].pixels) /
                            (static_cast<double>(n) * n);

    // How many halo rounds would the label-propagation baseline need on
    // this configuration?  (The paper's algorithm always needs log p.)
    cc::LabelPropStats lp;
    (void)cc::connected_components_label_prop(machine, spins,
                                              options.connectivity,
                                              options.rule, &lp);
    std::printf("%-6.4f %-12zu %-14.4f %-14.1f %-10u\n", beta, sizes.size(),
                largest, mean, lp.rounds);
  }
  std::printf("expected: fewer, larger clusters as beta grows past the "
              "critical point ~0.4407\n");
  return 0;
}
