// Histogram equalization — the application Section 4 of the paper
// motivates histogramming with.  Builds a low-contrast scene, equalizes it
// through the *parallel* histogram, and writes before/after PGMs.
//
//   ./histogram_equalization [n] [p] [output-prefix]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "histcc/histcc.hpp"

namespace {

/// Shannon entropy of a histogram in bits — higher = flatter = more
/// contrast after equalization.
double entropy_bits(const std::vector<std::uint32_t>& counts,
                    std::uint64_t total) {
  double h = 0.0;
  for (const auto c : counts) {
    if (c == 0) continue;
    const double prob = static_cast<double>(c) / static_cast<double>(total);
    h -= prob * std::log2(prob);
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace histcc;
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 512;
  const std::uint32_t p = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 16;
  const std::string prefix = argc > 3 ? argv[3] : "equalize";

  // A deliberately low-contrast input: the DARPA-like scene compressed
  // into a narrow band of grey levels.
  auto scene = img::make_darpa_like(n);
  for (auto& px : scene.pixels()) {
    px = static_cast<std::uint8_t>(96 + px / 4);  // squeeze into [96, 160)
  }

  splitc::Machine machine(p);
  const auto before = hist::histogram_parallel(machine, scene, 256);
  const auto map = hist::equalization_map(before, scene.size());

  img::GreyImage equalized(n, n);
  for (std::size_t idx = 0; idx < scene.size(); ++idx) {
    equalized.pixels()[idx] = map[scene.pixels()[idx]];
  }
  const auto after = hist::histogram_parallel(machine, equalized, 256);

  std::printf("histogram equalization on %ux%u, p=%u\n", n, n, p);
  std::printf("  entropy before: %.3f bits\n",
              entropy_bits(before, scene.size()));
  std::printf("  entropy after:  %.3f bits\n",
              entropy_bits(after, scene.size()));

  std::uint8_t lo = 255, hi = 0;
  for (const auto px : equalized.pixels()) {
    lo = std::min(lo, px);
    hi = std::max(hi, px);
  }
  std::printf("  output dynamic range: [%u, %u]\n", lo, hi);

  const auto before_path = prefix + "_before.pgm";
  const auto after_path = prefix + "_after.pgm";
  img::write_pgm_file(before_path, scene);
  img::write_pgm_file(after_path, equalized);
  std::printf("  wrote %s and %s\n", before_path.c_str(), after_path.c_str());
  return 0;
}
