// Object recognition measurements — the use the DARPA Image Understanding
// benchmarks put connected components to (the paper's Section 1).  Labels
// a DARPA-style scene with the parallel algorithm, keeps the labeling
// distributed, measures every component in parallel (area, bounding box,
// centroid), and prints the largest recognized objects.
//
//   ./object_recognition [h] [w] [p]
//
// The scene may be any rectangle (ragged tile layout); it is generated
// square and cropped to h x w.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "histcc/histcc.hpp"

int main(int argc, char** argv) {
  using namespace histcc;
  const std::uint32_t h = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 256;
  const std::uint32_t w = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 192;
  const std::uint32_t p = argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 16;

  std::printf("object recognition on a %ux%u DARPA-style scene, p=%u\n", h,
              w, p);
  const auto square = img::make_darpa_like(std::max(h, w));
  img::GreyImage scene(h, w);
  for (std::uint32_t i = 0; i < h; ++i) {
    for (std::uint32_t j = 0; j < w; ++j) scene(i, j) = square(i, j);
  }

  splitc::Machine machine(p);
  const img::TileLayout layout(h, w, p);
  splitc::Spread<std::uint8_t> tiles(machine, layout.tile_sizes(),
                                     "objrec_tiles");
  splitc::Spread<std::uint32_t> labels(machine, layout.tile_sizes(),
                                       "objrec_labels");
  layout.scatter(scene, tiles);

  // Label in parallel, leaving the labeling distributed...
  cc::CcOptions options;
  options.rule = ccseq::ColourRule::kSameColour;
  util::Timer timer;
  cc::connected_components_parallel(machine, layout, tiles, labels, options);
  const double label_s = timer.seconds();

  // ...then measure every component without assembling it on the host.
  timer.reset();
  auto stats = cc::component_stats_parallel(machine, layout, tiles, labels);
  const double measure_s = timer.seconds();

  std::printf("found %zu objects (labeling %.2f ms, measuring %.2f ms)\n",
              stats.size(), label_s * 1e3, measure_s * 1e3);

  std::sort(stats.begin(), stats.end(),
            [](const ccseq::ComponentStats& a, const ccseq::ComponentStats& b) {
              return a.pixels > b.pixels;
            });
  std::printf("%-8s %-7s %-8s %-22s %-18s %-8s\n", "label", "grey", "area",
              "bbox (r0,c0)-(r1,c1)", "centroid", "fill");
  for (std::size_t i = 0; i < stats.size() && i < 10; ++i) {
    const auto& s = stats[i];
    const auto box_area =
        static_cast<double>(s.max_row - s.min_row + 1) *
        static_cast<double>(s.max_col - s.min_col + 1);
    std::printf("%-8u %-7u %-8llu (%4u,%4u)-(%4u,%4u)   (%6.1f,%6.1f)   %5.2f\n",
                s.label, s.colour,
                static_cast<unsigned long long>(s.pixels), s.min_row,
                s.min_col, s.max_row, s.max_col, s.centroid_row(),
                s.centroid_col(), static_cast<double>(s.pixels) / box_area);
  }
  std::printf("(fill = area / bounding-box area; 1.00 means a full "
              "rectangle, ~0.79 a disc)\n");

  // Which objects touch?  The region adjacency graph, also built from the
  // distributed labeling.
  timer.reset();
  const auto edges =
      cc::region_adjacency_parallel(machine, layout, labels);
  std::printf("region adjacency graph: %zu touching pairs (%.2f ms); "
              "occluding pieces touch their background neighbours\n",
              edges.size(), timer.seconds() * 1e3);
  return 0;
}
