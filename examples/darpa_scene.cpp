// The paper's headline workload: connected components of a 512 x 512
// 256-grey-level DARPA Image Understanding Benchmark-style scene
// (Section 6, Figure 10), plus its histogram, with per-phase timing and
// the modeled cost on every machine the paper evaluated.  Optionally
// writes the scene (PGM) and a false-colour labeling (PPM).
//
//   ./darpa_scene [n] [p] [--write]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "histcc/histcc.hpp"

int main(int argc, char** argv) {
  using namespace histcc;
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 512;
  const std::uint32_t p = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 16;
  const bool write = argc > 3 && std::strcmp(argv[3], "--write") == 0;

  std::printf("DARPA-style scene benchmark: %ux%u, 256 grey levels, p=%u\n",
              n, n, p);
  const auto scene = img::make_darpa_like(n);

  splitc::Machine machine(p);
  const img::TileLayout layout(n, p);
  splitc::Spread<std::uint8_t> tiles(machine, layout.tile_sizes(),
                                     "scene_tiles");
  layout.scatter(scene, tiles);

  hist::HistPhases hist_phases;
  const auto counts =
      hist::histogram_parallel(machine, layout, tiles, 256, &hist_phases);
  std::size_t used_levels = 0;
  for (const auto c : counts) used_levels += c != 0;
  std::printf("histogram: %zu of 256 levels used; phases: tally %.3f ms, "
              "transpose %.3f ms, combine %.3f ms, gather %.3f ms\n",
              used_levels, hist_phases.tally_s * 1e3,
              hist_phases.transpose_s * 1e3, hist_phases.combine_s * 1e3,
              hist_phases.gather_s * 1e3);

  cc::CcOptions options;
  options.rule = ccseq::ColourRule::kSameColour;
  cc::CcPhases cc_phases;
  util::Timer timer;
  auto labels = cc::connected_components_parallel(machine, layout, tiles,
                                                  options, &cc_phases);
  const double wall = timer.seconds();

  auto sizes = ccseq::component_sizes(labels);
  std::printf("connected components: %zu components in %.3f ms wall "
              "(%u merge phases)\n",
              sizes.size(), wall * 1e3, cc_phases.merge_phases);
  std::printf("  phases: init %.3f ms, border %.3f ms, graph %.3f ms, "
              "update %.3f ms, final %.3f ms\n",
              cc_phases.init_s * 1e3, cc_phases.border_s * 1e3,
              cc_phases.graph_s * 1e3, cc_phases.update_s * 1e3,
              cc_phases.final_s * 1e3);
  std::printf("  largest components (px):");
  for (std::size_t i = 0; i < sizes.size() && i < 5; ++i) {
    std::printf(" %llu", static_cast<unsigned long long>(sizes[i].pixels));
  }
  std::printf("\n");

  const auto stats = machine.max_stats();
  std::printf("  BDM ledger (max/proc): %llu words, %llu batches, "
              "%llu barriers\n",
              static_cast<unsigned long long>(stats.words),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.barriers));
  std::printf("  modeled total time on the paper's machines "
              "(comm + comp):\n");
  for (const char* name : {"CM-5", "SP-1", "SP-2", "CS-2", "Paragon"}) {
    const auto prof = splitc::profile_by_name(name);
    std::printf("    %-8s %8.1f ms\n", name,
                (stats.modeled_comm_seconds(prof) +
                 stats.modeled_comp_seconds(prof)) *
                    1e3);
  }

  if (write) {
    img::write_pgm_file("darpa_scene.pgm", scene);
    img::write_label_ppm_file("darpa_labels.ppm", labels);
    std::printf("wrote darpa_scene.pgm and darpa_labels.ppm\n");
  }
  return 0;
}
