// Site-percolation study — one of the computational-physics applications
// the paper cites for connected components ([41] Stauffer, [5] Brower et
// al.).  Sweeps the site occupancy probability, labels each lattice with
// the parallel algorithm, and reports spanning-cluster statistics around
// the 2-D site-percolation threshold.
//
//   ./percolation [n] [p] [trials]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "histcc/histcc.hpp"

namespace {

using namespace histcc;

/// Does any cluster touch both the top and bottom rows?
bool spans_vertically(const img::LabelImage& labels) {
  std::unordered_set<std::uint32_t> top;
  const std::uint32_t n = labels.height();
  for (std::uint32_t j = 0; j < labels.width(); ++j) {
    if (labels(0, j) != 0) top.insert(labels(0, j));
  }
  for (std::uint32_t j = 0; j < labels.width(); ++j) {
    const auto l = labels(n - 1, j);
    if (l != 0 && top.contains(l)) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 256;
  const std::uint32_t p = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 16;
  const std::uint32_t trials = static_cast<std::uint32_t>(
      std::max(1, argc > 3 ? std::atoi(argv[3]) : 8));

  splitc::Machine machine(p);
  cc::CcOptions options;
  options.connectivity = ccseq::Connectivity::kFour;  // classic site model

  std::printf("site percolation on a %ux%u lattice, 4-connectivity, p=%u, "
              "%u trials per point\n",
              n, n, p, trials);
  std::printf("%-6s %-10s %-14s %-14s\n", "occ", "P(span)", "max-cluster",
              "n-clusters");

  // The 2-D site percolation threshold is ~0.5927; the spanning
  // probability should jump across it.
  for (const double occ : {0.50, 0.55, 0.58, 0.59, 0.60, 0.62, 0.65, 0.70}) {
    std::uint32_t spans = 0;
    double mean_max = 0.0;
    double mean_clusters = 0.0;
    for (std::uint32_t trial = 0; trial < trials; ++trial) {
      const auto lattice =
          img::make_percolation(n, occ, 1000 * trial + 17);
      const auto labels =
          cc::connected_components_parallel(machine, lattice, options);
      if (spans_vertically(labels)) ++spans;
      const auto sizes = ccseq::component_sizes(labels);
      mean_clusters += static_cast<double>(sizes.size());
      if (!sizes.empty()) {
        mean_max += static_cast<double>(sizes[0].pixels) /
                    (static_cast<double>(n) * n);
      }
    }
    std::printf("%-6.2f %-10.2f %-14.4f %-14.0f\n", occ,
                static_cast<double>(spans) / trials, mean_max / trials,
                mean_clusters / trials);
  }
  std::printf("expected: P(span) rises sharply near occ = 0.5927\n");
  return 0;
}
