// Ablations of the connected-components design choices DESIGN.md calls
// out, all on the same workloads:
//   * limited (borders-only) vs full per-iteration relabeling — the
//     paper's core novelty;
//   * shadow manager on/off (Section 5.3);
//   * eq. (9) transpose-based change distribution vs naive direct fetch
//     (Section 5.4);
//   * the whole algorithm vs the label-propagation baseline (rounds vs
//     log p merge phases).
#include "bench_util.hpp"

namespace {

using namespace histcc;

struct Variant {
  const char* name;
  cc::CcOptions options;
};

void run_workload(const char* title, const img::GreyImage& image,
                  ccseq::ColourRule rule, std::uint32_t p) {
  const auto profile = splitc::cm5();
  std::printf("%s (p = %u, %ux%u)\n", title, p, image.height(),
              image.width());
  bench::rule();
  std::printf("%-28s | %10s %10s | %10s %8s\n", "variant", "model comp",
              "model comm", "words", "wall");
  bench::rule();

  std::vector<Variant> variants;
  {
    cc::CcOptions base;
    base.rule = rule;
    variants.push_back({"paper (limited relabel)", base});
    auto v = base;
    v.full_relabel_each_phase = true;
    variants.push_back({"full relabel every phase", v});
    v = base;
    v.use_shadow_manager = false;
    variants.push_back({"no shadow manager", v});
    v = base;
    v.eq9_distribution = false;
    variants.push_back({"direct change distribution", v});
  }

  splitc::Machine machine(p);
  for (const auto& variant : variants) {
    util::Timer timer;
    (void)cc::connected_components_parallel(machine, image, variant.options);
    const double wall = timer.seconds();
    const auto modeled = bench::model(machine, profile);
    std::printf("%-28s | %8.1fms %8.2fms | %10llu %6.1fms\n", variant.name,
                modeled.comp_s * 1e3, modeled.comm_s * 1e3,
                static_cast<unsigned long long>(machine.max_stats().words),
                wall * 1e3);
  }

  // The replicated complete-image-per-PE baseline (Table 2's other
  // divide-and-conquer family): no merge phase, but 2n^2 words of
  // broadcast and unscaled computation.
  {
    util::Timer timer;
    (void)cc::connected_components_replicated(
        machine, image, ccseq::Connectivity::kEight, rule);
    const double wall = timer.seconds();
    const auto modeled = bench::model(machine, profile);
    std::printf("%-28s | %8.1fms %8.2fms | %10llu %6.1fms\n",
                "replicated (image per PE)", modeled.comp_s * 1e3,
                modeled.comm_s * 1e3,
                static_cast<unsigned long long>(machine.max_stats().words),
                wall * 1e3);
  }

  // The label-propagation baseline, with its round count.
  {
    util::Timer timer;
    cc::LabelPropStats stats;
    (void)cc::connected_components_label_prop(
        machine, image, ccseq::Connectivity::kEight, rule, &stats);
    const double wall = timer.seconds();
    const auto modeled = bench::model(machine, profile);
    char name[64];
    std::snprintf(name, sizeof name, "label propagation (%u rounds)",
                  stats.rounds);
    std::printf("%-28s | %8.1fms %8.2fms | %10llu %6.1fms\n", name,
                modeled.comp_s * 1e3, modeled.comm_s * 1e3,
                static_cast<unsigned long long>(machine.max_stats().words),
                wall * 1e3);
  }
  bench::rule();
  std::printf("\n");
}

}  // namespace

void distribution_p_sweep() {
  // Section 5.4's point: the naive distribution makes all 2^t - 1 clients
  // fetch the full change list from one manager — (2^t - 1) * c words per
  // group — where eq. (9) moves ~2c per group in two balanced rounds.
  // The total network load (sum over processors) shows it directly; the
  // per-processor max is unaffected because our pull-based ledger charges
  // the fetching client, while on a real machine the manager would also
  // *serve* all those requests — the contention eq. (9) exists to avoid.
  std::printf("eq. (9) vs direct distribution — port congestion vs p "
              "(dual spiral 256x256)\n");
  bench::rule();
  std::printf("%6s | %17s %17s %8s\n", "p", "direct port words",
              "eq.(9) port words", "ratio");
  bench::rule();
  const auto image =
      img::make_test_pattern(img::TestPattern::kDualSpiral, 256);
  for (const std::uint32_t p : {16u, 32u, 64u, 128u}) {
    splitc::Machine machine(p);
    cc::CcOptions options;
    options.eq9_distribution = false;
    (void)cc::connected_components_parallel(machine, image, options);
    const auto direct = machine.max_port_words();
    options.eq9_distribution = true;
    (void)cc::connected_components_parallel(machine, image, options);
    const auto eq9 = machine.max_port_words();
    std::printf("%6u | %17llu %17llu %8.2f\n", p,
                static_cast<unsigned long long>(direct),
                static_cast<unsigned long long>(eq9),
                static_cast<double>(direct) / static_cast<double>(eq9));
  }
  bench::rule();
  std::printf("(port words = max over processors of words moved + words "
              "served: the BDM\nconstraint that no processor sends or "
              "receives more than one word at a time\nmakes this the "
              "distribution bottleneck the eq. (9) scheme balances)\n\n");
}

int main() {
  std::printf("Connected-components ablation study (modeled on the "
              "CM-5)\n\n");
  distribution_p_sweep();
  run_workload("dual spiral — the 'difficult' image",
               img::make_test_pattern(img::TestPattern::kDualSpiral, 512),
               ccseq::ColourRule::kBinary, 32);
  run_workload("DARPA-like scene",
               img::make_darpa_like(512), ccseq::ColourRule::kSameColour,
               32);
  run_workload("percolation at threshold",
               img::make_percolation(512, 0.5927, 77),
               ccseq::ColourRule::kBinary, 32);
  std::printf("shape checks: full relabeling inflates model comp (the "
              "novelty pays);\nthe spiral forces label propagation into "
              "many rounds (words and comm blow up)\nwhile the paper's "
              "algorithm is flat at log p phases; shadow manager and "
              "eq. (9)\nreduce comm modestly at this scale and matter "
              "more as p grows.\n");
  return 0;
}
