// Figure 3 reproduction: scalability of histogramming and connected
// components on the CM-5 — modeled time vs n^2 for p = 16, 32, 64, 128.
// The paper's claims: time is linear in n^2 at fixed p (computation
// dominates), and doubling p roughly halves the time for large n.
#include "bench_util.hpp"

int main() {
  using namespace histcc;
  const auto profile = splitc::cm5();
  const std::uint32_t procs[] = {16, 32, 64, 128};
  const std::uint32_t sides[] = {128, 256, 512, 1024};

  std::printf("Figure 3 (top) — histogramming scalability on the CM-5, "
              "k = 256\n");
  bench::rule();
  std::printf("%8s", "n");
  for (const auto p : procs) std::printf("  p=%-3u model", p);
  std::printf("\n");
  bench::rule();
  for (const auto n : sides) {
    std::printf("%8u", n);
    const auto image = img::make_random_grey(n, 256, n);
    for (const auto p : procs) {
      splitc::Machine machine(p);
      (void)hist::histogram_parallel(machine, image, 256);
      std::printf("  %9.2fms", bench::model(machine, profile).total_s * 1e3);
    }
    std::printf("\n");
  }
  bench::rule();

  std::printf("\nFigure 3 (bottom) — connected components scalability on "
              "the CM-5 (DARPA-like)\n");
  bench::rule();
  std::printf("%8s", "n");
  for (const auto p : procs) std::printf("  p=%-3u model", p);
  std::printf("\n");
  bench::rule();
  for (const auto n : sides) {
    std::printf("%8u", n);
    const auto image = img::make_darpa_like(n);
    cc::CcOptions options;
    options.rule = ccseq::ColourRule::kSameColour;
    for (const auto p : procs) {
      splitc::Machine machine(p);
      (void)cc::connected_components_parallel(machine, image, options);
      std::printf("  %9.2fms", bench::model(machine, profile).total_s * 1e3);
    }
    std::printf("\n");
  }
  bench::rule();
  std::printf("shape checks: each column ~4x per row (time linear in n^2); "
              "each row ~halves\nleft-to-right for large n (scalability in "
              "p).\n");
  return 0;
}
