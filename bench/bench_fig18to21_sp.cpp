// Figures 18-21 reproduction: the SP-1 and SP-2 equivalents of the CM-5
// performance graphs — histogramming (Figures 18, 20) and connected
// components (Figures 19, 21) under the IBM machine profiles.
#include "bench_util.hpp"

namespace {

using namespace histcc;

void hist_figure(const char* title, const splitc::MachineProfile& profile,
                 std::uint32_t p) {
  std::printf("%s — histogramming (p = %u), modeled time\n", title, p);
  bench::rule();
  std::printf("%8s", "n");
  for (const std::uint32_t k : {2u, 8u, 32u, 128u, 256u}) {
    std::printf("   k=%-4u", k);
  }
  std::printf("\n");
  bench::rule();
  for (const std::uint32_t n : {128u, 256u, 512u, 1024u}) {
    std::printf("%8u", n);
    for (const std::uint32_t k : {2u, 8u, 32u, 128u, 256u}) {
      const auto image = img::make_random_grey(n, k, n * 31 + k);
      splitc::Machine machine(p);
      (void)hist::histogram_parallel(machine, image, k);
      std::printf(" %6.1fms", bench::model(machine, profile).total_s * 1e3);
    }
    std::printf("\n");
  }
  bench::rule();
  std::printf("\n");
}

void cc_figure(const char* title, const splitc::MachineProfile& profile,
               std::uint32_t p, std::initializer_list<std::uint32_t> sides) {
  std::printf("%s — connected components (p = %u), modeled time per "
              "catalog image\n",
              title, p);
  bench::rule();
  std::printf("%-20s", "image");
  for (const auto n : sides) std::printf(" %7ux%-5u", n, n);
  std::printf("\n");
  bench::rule();
  for (int id = 1; id <= img::kNumTestPatterns; ++id) {
    const auto pattern = static_cast<img::TestPattern>(id);
    std::printf("%-20s", std::string(img::pattern_name(pattern)).c_str());
    for (const auto n : sides) {
      const auto image = img::make_test_pattern(pattern, n);
      splitc::Machine machine(p);
      (void)cc::connected_components_parallel(machine, image);
      std::printf(" %10.1fms",
                  bench::model(machine, profile).total_s * 1e3);
    }
    std::printf("\n");
  }
  bench::rule();
  std::printf("\n");
}

}  // namespace

int main() {
  hist_figure("Figure 18 (SP-1)", histcc::splitc::sp1(), 16);
  cc_figure("Figure 19 (SP-1)", histcc::splitc::sp1(), 16, {512u, 1024u});
  hist_figure("Figure 20 (SP-2)", histcc::splitc::sp2(), 16);
  cc_figure("Figure 21 (SP-2)", histcc::splitc::sp2(), 32,
            {128u, 256u, 512u, 1024u});
  std::printf("paper anchors: SP-1 p=32 mean-of-images 412ms (512^2), "
              "863ms (1024^2);\nSP-2 p=32 284ms (512^2), 585ms (1024^2).  "
              "shape check: SP-2 beats SP-1 at\nequal configuration "
              "throughout.\n");
  return 0;
}
