// Google-benchmark microbenchmarks of the sequential kernels and runtime
// primitives on the host: sorting (footnotes 3-4), sequential labelers,
// tile labeling, border merging, and the hybrid-sort threshold ablation.
#include <benchmark/benchmark.h>

#include "histcc/histcc.hpp"

namespace {

using namespace histcc;

void BM_RadixSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n);
  std::vector<std::uint32_t> base(n);
  for (auto& k : base) k = static_cast<std::uint32_t>(rng.next_u64());
  for (auto _ : state) {
    auto keys = base;
    sortutil::radix_sort_by(keys, [](std::uint32_t k) { return k; });
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RadixSort)->Range(64, 1 << 16);

void BM_StdSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n);
  std::vector<std::uint32_t> base(n);
  for (auto& k : base) k = static_cast<std::uint32_t>(rng.next_u64());
  for (auto _ : state) {
    auto keys = base;
    std::sort(keys.begin(), keys.end());
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_StdSort)->Range(64, 1 << 16);

void BM_HybridSortThreshold(benchmark::State& state) {
  // Threshold ablation: sort many borders of length 96 (typical border
  // size q) with a given hybrid threshold.
  const auto threshold = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  std::vector<std::uint32_t> base(96);
  for (auto& k : base) k = static_cast<std::uint32_t>(rng.next_below(1u << 18));
  for (auto _ : state) {
    auto keys = base;
    sortutil::hybrid_sort_by(
        keys, [](std::uint32_t k) { return k; }, threshold);
    benchmark::DoNotOptimize(keys.data());
  }
}
BENCHMARK(BM_HybridSortThreshold)->Arg(0)->Arg(64)->Arg(96)->Arg(128)->Arg(1 << 20);

void BM_SequentialBfsLabel(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto image = img::make_percolation(n, 0.6, 3);
  for (auto _ : state) {
    auto labels = ccseq::label_components_bfs(image);
    benchmark::DoNotOptimize(labels.pixels().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * n);
}
BENCHMARK(BM_SequentialBfsLabel)->Arg(128)->Arg(256)->Arg(512);

void BM_SequentialUnionFind(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto image = img::make_percolation(n, 0.6, 3);
  for (auto _ : state) {
    auto labels = ccseq::label_components_unionfind(image);
    benchmark::DoNotOptimize(labels.pixels().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * n);
}
BENCHMARK(BM_SequentialUnionFind)->Arg(128)->Arg(256)->Arg(512);

void BM_MergeBorder(benchmark::State& state) {
  const auto s = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  std::vector<std::uint8_t> lo_px(s), hi_px(s);
  std::vector<std::uint32_t> lo_lb(s), hi_lb(s);
  std::uint32_t run = 2;
  for (std::size_t i = 0; i < s; ++i) {
    if (i % 6 == 0) run += 2;
    lo_px[i] = rng.next_bool(0.7);
    hi_px[i] = rng.next_bool(0.7);
    lo_lb[i] = lo_px[i] ? run : 0;
    hi_lb[i] = hi_px[i] ? run + 1001 : 0;
  }
  for (auto _ : state) {
    auto changes = cc::merge_border({lo_px, lo_lb}, {hi_px, hi_lb},
                                    ccseq::Connectivity::kEight,
                                    ccseq::ColourRule::kBinary);
    benchmark::DoNotOptimize(changes.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s));
}
BENCHMARK(BM_MergeBorder)->Range(256, 1 << 14);

void BM_ParallelCcWall(benchmark::State& state) {
  // Host wall-clock of the full parallel algorithm; p fixed to the host's
  // hardware concurrency rounded down to a power of two, n swept.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::uint32_t p = std::bit_floor(hw);
  const auto image = img::make_darpa_like(n);
  splitc::Machine machine(p);
  cc::CcOptions options;
  options.rule = ccseq::ColourRule::kSameColour;
  for (auto _ : state) {
    auto labels = cc::connected_components_parallel(machine, image, options);
    benchmark::DoNotOptimize(labels.pixels().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * n);
}
BENCHMARK(BM_ParallelCcWall)->Arg(256)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
