// Figures 12-14 (histogramming) and 15-17 (connected components) on the
// CM-5 profile: modeled execution time for p = 16, 32, 64 across image
// sizes — histogramming over grey-level counts 2..256, connected
// components over the nine-image catalog at 512^2 and 1024^2.
#include "bench_util.hpp"

int main() {
  using namespace histcc;
  const auto profile = splitc::cm5();

  // ---- Figures 12-14: histogramming ----
  for (const std::uint32_t p : {16u, 32u, 64u}) {
    std::printf("Figure %u — CM-5 histogramming (p = %u), modeled time\n",
                12 + (p == 32 ? 1u : p == 64 ? 2u : 0u), p);
    bench::rule();
    std::printf("%8s", "n");
    for (const std::uint32_t k : {2u, 8u, 32u, 128u, 256u}) {
      std::printf("   k=%-4u", k);
    }
    std::printf("\n");
    bench::rule();
    for (const std::uint32_t n : {128u, 256u, 512u, 1024u}) {
      std::printf("%8u", n);
      for (const std::uint32_t k : {2u, 8u, 32u, 128u, 256u}) {
        const auto image = img::make_random_grey(n, k, n * k);
        splitc::Machine machine(p);
        (void)hist::histogram_parallel(machine, image, k);
        std::printf(" %6.1fms", bench::model(machine, profile).total_s * 1e3);
      }
      std::printf("\n");
    }
    bench::rule();
    std::printf("\n");
  }

  // ---- Figures 15-17: connected components over the catalog ----
  for (const std::uint32_t p : {16u, 32u, 64u}) {
    std::printf("Figure %u — CM-5 connected components (p = %u), modeled "
                "time per catalog image\n",
                15 + (p == 32 ? 1u : p == 64 ? 2u : 0u), p);
    bench::rule();
    std::printf("%-20s %12s %12s\n", "image", "512x512", "1024x1024");
    bench::rule();
    for (int id = 1; id <= img::kNumTestPatterns; ++id) {
      const auto pattern = static_cast<img::TestPattern>(id);
      std::printf("%-20s", std::string(img::pattern_name(pattern)).c_str());
      for (const std::uint32_t n : {512u, 1024u}) {
        const auto image = img::make_test_pattern(pattern, n);
        splitc::Machine machine(p);
        (void)cc::connected_components_parallel(machine, image);
        std::printf(" %10.1fms", bench::model(machine, profile).total_s * 1e3);
      }
      std::printf("\n");
    }
    bench::rule();
    std::printf("\n");
  }
  std::printf("shape checks: histogramming times are nearly independent "
              "of k for large n;\nCC times are dominated by the n^2/p "
              "local phases, so per-image variation is\nmodest and the "
              "dual spiral is no worse than the rest (the paper's point: "
              "the\nmerge never relabels interiors, so 'difficult' images "
              "cost the same).\n");
  return 0;
}
