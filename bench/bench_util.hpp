#ifndef HISTCC_BENCH_UTIL_HPP
#define HISTCC_BENCH_UTIL_HPP

/// \file bench_util.hpp
/// Shared helpers for the paper-reproduction benchmark binaries.
///
/// Every table/figure bench reports two kinds of numbers:
///   * wall  — wall-clock seconds measured on this host (p virtual
///             processors on however many cores are available); meaningful
///             for relative comparisons at fixed p only;
///   * model — the BDM-modeled execution time obtained by replaying the
///             communication/computation ledger of the run against a
///             MachineProfile of one of the paper's machines.  This is the
///             number whose *shape* should match the paper's figures.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "histcc/histcc.hpp"

namespace histcc::bench {

/// Modeled total / comm / comp seconds for the max-over-processors ledger
/// of the last run on `machine`.
struct Modeled {
  double total_s;
  double comm_s;
  double comp_s;
};

inline Modeled model(const splitc::Machine& machine,
                     const splitc::MachineProfile& profile) {
  const auto stats = machine.max_stats();
  const double comm = stats.modeled_comm_seconds(profile);
  const double comp = stats.modeled_comp_seconds(profile);
  return Modeled{comm + comp, comm, comp};
}

/// work/pixel = time * p / n^2 — the normalization Tables 1 and 2 use.
inline double work_per_pixel_ns(double seconds, std::uint32_t p,
                                std::uint32_t n) {
  return seconds * 1e9 * static_cast<double>(p) /
         (static_cast<double>(n) * static_cast<double>(n));
}

/// The nine catalog images at side n.
inline std::vector<img::GreyImage> catalog_images(std::uint32_t n) {
  std::vector<img::GreyImage> images;
  images.reserve(static_cast<std::size_t>(img::kNumTestPatterns));
  for (int id = 1; id <= img::kNumTestPatterns; ++id) {
    images.push_back(
        img::make_test_pattern(static_cast<img::TestPattern>(id), n));
  }
  return images;
}

/// Pretty time: ms with 3 significant decimals.
inline std::string ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", seconds * 1e3);
  return buf;
}

inline void rule(char c = '-', int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace histcc::bench

#endif  // HISTCC_BENCH_UTIL_HPP
