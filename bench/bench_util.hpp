#ifndef HISTCC_BENCH_UTIL_HPP
#define HISTCC_BENCH_UTIL_HPP

/// \file bench_util.hpp
/// Shared helpers for the paper-reproduction benchmark binaries.
///
/// Every table/figure bench reports two kinds of numbers:
///   * wall  — wall-clock seconds measured on this host (p virtual
///             processors on however many cores are available); meaningful
///             for relative comparisons at fixed p only;
///   * model — the BDM-modeled execution time obtained by replaying the
///             communication/computation ledger of the run against a
///             MachineProfile of one of the paper's machines.  This is the
///             number whose *shape* should match the paper's figures.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "histcc/histcc.hpp"

namespace histcc::bench {

// Every number a bench reports must be immune to NTP steps and clock
// slews: the harness timers and the tracer must share one steady clock.
static_assert(util::Timer::clock::is_steady,
              "bench timings require a steady clock");
static_assert(util::PhaseTimer::clock::is_steady,
              "bench phase timings require a steady clock");

/// Mean and best wall-clock seconds over `reps` runs of `fn`.
struct Timing {
  double mean_s;
  double min_s;
};

template <typename Fn>
Timing sample(int reps, Fn&& fn) {
  double total = 0;
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    util::Timer timer;
    fn();
    const double s = timer.seconds();
    total += s;
    if (s < best) best = s;
  }
  return Timing{total / reps, best};
}

/// Machine-readable sink for benchmark results: BENCH_<tag>.json in the
/// working directory, one flat record per measured configuration so CI
/// and plotting scripts need no table scraping.  Core fields are always
/// (name, p, mean_ns, min_ns, throughput); a bench can append extra
/// numeric fields (percentiles, counters) per record.
///
/// Schema v2 adds run provenance so the perf trajectory is attributable
/// across PRs: `git_sha` (configure-time `git rev-parse --short HEAD`) and
/// `build_preset` (which CMake preset produced the binary), both
/// "unknown" when built outside the presets/git.
///
/// Schema v3 adds the optional `footprint_bytes` extra field: the Spread
/// payload bytes a run allocated (Machine::spread_bytes_allocated), used
/// by bench_host's packed-vs-strided allocation-mode records so the memory
/// reclaimed by SpreadLayout::kPacked is a measured number.
class JsonReport {
 public:
  /// \param bench short tag ("host", "pipeline"); the file becomes
  ///              BENCH_<bench>.json.
  explicit JsonReport(std::string bench)
      : bench_(std::move(bench)), path_("BENCH_" + bench_ + ".json") {}

  static constexpr int kSchemaVersion = 3;

  [[nodiscard]] static const char* git_sha() noexcept {
#ifdef HISTCC_GIT_SHA
    return HISTCC_GIT_SHA;
#else
    return "unknown";
#endif
  }

  [[nodiscard]] static const char* build_preset() noexcept {
#ifdef HISTCC_BUILD_PRESET
    return HISTCC_BUILD_PRESET;
#else
    return "unknown";
#endif
  }

  /// \param throughput work items per second (pixels, jobs, ...); the
  ///                   record's `name` says which.
  void add(std::string name, std::uint32_t p, double mean_ns, double min_ns,
           double throughput,
           std::vector<std::pair<std::string, double>> extra = {}) {
    entries_.push_back(Entry{std::move(name), p, mean_ns, min_ns, throughput,
                             std::move(extra)});
  }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Write the report; returns false (and prints to stderr) on I/O error.
  bool write() const {
    std::FILE* out = std::fopen(path_.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return false;
    }
    std::fprintf(out,
                 "{\n  \"bench\": \"%s\",\n  \"schema_version\": %d,\n"
                 "  \"git_sha\": \"%s\",\n  \"build_preset\": \"%s\",\n"
                 "  \"results\": [\n",
                 bench_.c_str(), kSchemaVersion, git_sha(), build_preset());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(out,
                   "    {\"name\": \"%s\", \"p\": %u, \"mean_ns\": %.1f, "
                   "\"min_ns\": %.1f, \"throughput\": %.6g",
                   e.name.c_str(), e.p, e.mean_ns, e.min_ns, e.throughput);
      for (const auto& [key, value] : e.extra) {
        std::fprintf(out, ", \"%s\": %.6g", key.c_str(), value);
      }
      std::fprintf(out, "}%s\n", i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    return true;
  }

 private:
  struct Entry {
    std::string name;
    std::uint32_t p;
    double mean_ns;
    double min_ns;
    double throughput;
    std::vector<std::pair<std::string, double>> extra;
  };

  std::string bench_;
  std::string path_;
  std::vector<Entry> entries_;
};

/// Modeled total / comm / comp seconds for the max-over-processors ledger
/// of the last run on `machine`.
struct Modeled {
  double total_s;
  double comm_s;
  double comp_s;
};

inline Modeled model(const splitc::Machine& machine,
                     const splitc::MachineProfile& profile) {
  const auto stats = machine.max_stats();
  const double comm = stats.modeled_comm_seconds(profile);
  const double comp = stats.modeled_comp_seconds(profile);
  return Modeled{comm + comp, comm, comp};
}

/// work/pixel = time * p / n^2 — the normalization Tables 1 and 2 use.
inline double work_per_pixel_ns(double seconds, std::uint32_t p,
                                std::uint32_t n) {
  return seconds * 1e9 * static_cast<double>(p) /
         (static_cast<double>(n) * static_cast<double>(n));
}

/// The nine catalog images at side n.
inline std::vector<img::GreyImage> catalog_images(std::uint32_t n) {
  std::vector<img::GreyImage> images;
  images.reserve(static_cast<std::size_t>(img::kNumTestPatterns));
  for (int id = 1; id <= img::kNumTestPatterns; ++id) {
    images.push_back(
        img::make_test_pattern(static_cast<img::TestPattern>(id), n));
  }
  return images;
}

/// Pretty time: ms with 3 significant decimals.
inline std::string ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", seconds * 1e3);
  return buf;
}

inline void rule(char c = '-', int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace histcc::bench

#endif  // HISTCC_BENCH_UTIL_HPP
