#include <cmath>
// Validation of the paper's complexity equations against the runtime's
// measured communication ledgers:
//   eq. (1)  transpose      Tcomm = tau + (q - q/p)
//   eq. (2)  broadcast      Tcomm = 2(tau + q - q/p)
//   eq. (3)  histogramming  Tcomm <= 2(tau + k)
//   eq. (11) conn. comp.    Tcomm <= (4 log p) tau + O(n^2/p) with the
//            word term in practice ~ 24n + 2p
// Every row prints measured words/batches next to the equation's
// prediction; PASS means measured <= predicted (the equations are upper
// bounds).
#include "bench_util.hpp"

namespace {

using namespace histcc;

int failures = 0;

void check(const char* what, double measured, double bound) {
  const bool ok = measured <= bound + 1e-9;
  if (!ok) ++failures;
  std::printf("  %-34s measured %12.1f  bound %12.1f  %s\n", what, measured,
              bound, ok ? "PASS" : "FAIL");
}

}  // namespace

int main() {
  std::printf("Model validation — measured BDM ledgers vs the paper's "
              "equations\n");
  bench::rule();

  // eq. (1) and (2): per-processor words and batches of the primitives.
  for (const std::uint32_t p : {4u, 8u, 32u}) {
    const std::size_t q = 1024;
    splitc::Machine machine(p);
    splitc::Spread<std::uint32_t> a(machine, q), b(machine, q),
        scratch(machine, q);
    machine.run([&](splitc::Proc& self) { bdm::transpose(self, b, a, q); });
    std::printf("transpose p=%u q=%zu:\n", p, q);
    check("words (q - q/p)",
          static_cast<double>(machine.max_stats().words),
          static_cast<double>(q - q / p));
    check("latency batches (1)",
          static_cast<double>(machine.max_stats().batches), 1.0);

    machine.run(
        [&](splitc::Proc& self) { bdm::broadcast(self, b, a, scratch, q); });
    std::printf("broadcast p=%u q=%zu:\n", p, q);
    check("words 2(q - q/p)",
          static_cast<double>(machine.max_stats().words),
          2.0 * static_cast<double>(q - q / p));
    check("latency batches (2)",
          static_cast<double>(machine.max_stats().batches), 2.0);
  }

  // eq. (3): histogramming communication, independent of n, <= 2k words.
  for (const std::uint32_t k : {16u, 256u}) {
    for (const std::uint32_t n : {128u, 512u}) {
      splitc::Machine machine(16);
      (void)hist::histogram_parallel(machine,
                                     img::make_random_grey(n, k, n), k);
      std::printf("histogram p=16 n=%u k=%u:\n", n, k);
      check("words (<= 2k)",
            static_cast<double>(machine.max_stats().words), 2.0 * k);
    }
  }

  // eq. (11): connected components — total words <= c1*n + c2*p with the
  // paper's practical constants (24n + 2p), and latency episodes bounded
  // by a small multiple of log p.
  for (const std::uint32_t p : {16u, 64u}) {
    for (const std::uint32_t n : {256u, 512u}) {
      splitc::Machine machine(p);
      const auto image = img::make_darpa_like(n);
      cc::CcOptions options;
      options.rule = ccseq::ColourRule::kSameColour;
      (void)cc::connected_components_parallel(machine, image, options);
      const auto stats = machine.max_stats();
      std::printf("connected components p=%u n=%u:\n", p, n);
      check("words (24n + 2p)", static_cast<double>(stats.words),
            24.0 * n + 2.0 * p);
      const double log_p = std::log2(static_cast<double>(p));
      check("latency episodes (8 log p)",
            static_cast<double>(stats.batches + stats.barriers),
            8.0 * log_p);
    }
  }

  bench::rule();
  std::printf("%s (%d failures)\n", failures == 0 ? "ALL PASS" : "FAILURES",
              failures);
  return failures == 0 ? 0 : 1;
}
