// Table 1 reproduction: histogramming a 512 x 512, 256-grey-level image on
// the five machines of the paper's own row ("Bader and JaJa (This paper)"),
// reporting execution time and normalized work per pixel next to the
// paper's published values.
#include "bench_util.hpp"

namespace {

using namespace histcc;

struct Row {
  const char* machine;
  std::uint32_t procs;
  double paper_ms;        // Table 1 "Time"
  double paper_work_ns;   // Table 1 "work per pixel"
};

// The paper's Table 1 entries for this paper (512 x 512 images).  The scan
// is ambiguous about SP-1 vs SP-2; we order by the machines' Table 2
// behaviour (SP-2 consistently faster).
constexpr Row kRows[] = {
    {"CM-5", 16, 12.0, 732.0},
    {"SP-1", 16, 20.0, 1220.0},
    {"SP-2", 16, 9.20, 562.0},
    {"Paragon", 8, 20.8, 635.0},
    {"CS-2", 4, 15.2, 231.0},
};

}  // namespace

int main() {
  const std::uint32_t n = 512;
  const std::uint32_t k = 256;
  const auto image = img::make_random_grey(n, k, 2024);

  std::printf("Table 1 — parallel histogramming of a %ux%u, %u grey-level "
              "image\n",
              n, n, k);
  std::printf("(model = BDM replay of the measured ledger under each "
              "machine profile)\n");
  bench::rule();
  std::printf("%-9s %5s | %10s %12s | %10s %12s | %9s\n", "machine", "p",
              "paper", "paper w/px", "model", "model w/px", "wall");
  bench::rule();

  for (const auto& row : kRows) {
    splitc::Machine machine(row.procs);
    util::Timer timer;
    const auto counts = hist::histogram_parallel(machine, image, k);
    const double wall = timer.seconds();
    if (counts.size() != k) return 1;

    const auto modeled =
        bench::model(machine, splitc::profile_by_name(row.machine));
    std::printf("%-9s %5u | %8.2fms %10.0fns | %8.2fms %10.0fns | %7.2fms\n",
                row.machine, row.procs, row.paper_ms, row.paper_work_ns,
                modeled.total_s * 1e3,
                bench::work_per_pixel_ns(modeled.total_s, row.procs, n),
                wall * 1e3);
  }
  bench::rule();
  std::printf("note: per-op CPU costs are calibrated against this table "
              "(DESIGN.md), so the\nmodel column validates scaling "
              "behaviour elsewhere, not these absolute entries.\n");
  return 0;
}
