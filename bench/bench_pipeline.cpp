// Serving-pipeline load generator: closed-loop throughput of the
// multi-tenant job pipeline (histcc/serve) on this host.
//
// Three experiments:
//   1. Scaling — a mixed-aspect workload (histogram + components jobs on
//      512x256, 128x128, and 320x240 frames, so routing picks different
//      machine widths per job) driven closed-loop (2 submitters per pool
//      worker, one job in flight per submitter) against pool sizes
//      {1, 2, 4}: throughput should grow with the pool while p50/p99
//      stay bounded.
//   2. Overload — a single submitter bursts fail-fast jobs at a pipeline
//      with one worker and a 4-deep queue: the bounded queue must shed
//      the excess as kRejected instead of buffering without limit, and
//      every accepted job must still complete.
//   3. Pool convergence — a single submitter cycles jobs of three
//      distinct machine widths (p = 16, 4, 2) through a one-slot pool.
//      With the heterogeneous per-slot LRU cache (machines_per_slot
//      auto) machines_built() stops growing after the first round; the
//      legacy one-machine-per-slot mode rebuilds on every width switch.
//   4. Sampled tracing — the same closed loop run twice with a live
//      tracer, once unsampled and once at the always-on production
//      preset (kernel spans 1/16 via trace_sample_every): per-job
//      serve/run spans must stay exact (one per job in both runs), the
//      kernel span inventory shrinks ~16x, and rescaling the sampled
//      counts by the rate lands within a few percent of the unsampled
//      inventory (docs/tracing.md).
//
// Results go to stdout and to BENCH_pipeline.json (name, p, mean/min ns
// per job, jobs/second, plus latency percentiles and outcome counters).
#include "bench_util.hpp"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "histcc/trace/export.hpp"
#include "histcc/trace/trace.hpp"

namespace {

using namespace histcc;

/// Deterministic H x W grey image (any aspect ratio) with k levels.
img::GreyImage make_shape_grey(std::uint32_t h, std::uint32_t w,
                               std::uint32_t k, std::uint64_t seed) {
  img::GreyImage image(h, w);
  std::uint64_t state = seed * 0x9e3779b97f4a7c15ull + 1;
  for (std::uint32_t i = 0; i < h; ++i) {
    for (std::uint32_t j = 0; j < w; ++j) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      image(i, j) = static_cast<std::uint8_t>((state >> 33) % k);
    }
  }
  return image;
}

struct LoadResult {
  double wall_s;         ///< whole-experiment wall time
  std::uint64_t jobs;    ///< jobs completed kOk
  serve::PoolMetrics metrics;
};

/// Closed-loop driver: `submitters` threads each keep exactly one job in
/// flight until `jobs_per_submitter` jobs have completed, rotating
/// through three mixed-aspect job kinds so the ragged layout's routing
/// exercises several machine widths at once.
LoadResult run_closed_loop(std::uint32_t pool_size, int submitters,
                           int jobs_per_submitter, trace::Tracer* trace_sink,
                           std::uint32_t trace_sample_every = 1) {
  // 512x256 -> p=16, 128x128 -> p=4, 320x240 -> p=16; nothing square
  // about the mix is required any more (docs/layout.md).
  const auto grey_wide = make_shape_grey(512, 256, 16, 17);
  const auto grey_small = img::make_random_grey(128, 16, 17);
  const auto binary_vga = make_shape_grey(320, 240, 2, 29);

  serve::PipelineOptions options;
  options.pool_size = pool_size;
  options.max_procs = 16;
  options.trace = trace_sink;
  options.trace_sample_every = trace_sample_every;
  serve::Pipeline pipeline(options);

  std::atomic<std::uint64_t> ok{0};
  util::Timer timer;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(submitters));
  for (int s = 0; s < submitters; ++s) {
    threads.emplace_back([&, s] {
      for (int i = 0; i < jobs_per_submitter; ++i) {
        const int kind = (s + i) % 3;
        serve::JobStatus status{};
        if (kind == 0) {
          status = pipeline.submit_histogram(grey_wide, 16).result.get().status;
        } else if (kind == 1) {
          status = pipeline.submit_histogram(grey_small, 16).result.get().status;
        } else {
          status = pipeline.submit_components(binary_vga).result.get().status;
        }
        if (status == serve::JobStatus::kOk) ok++;
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s = timer.seconds();
  return LoadResult{wall_s, ok.load(), pipeline.metrics()};
}

}  // namespace

int main(int argc, char** argv) {
  // `--trace OUT` attaches one tracer to every pipeline in the scaling
  // experiment (per-job serve spans + kernel phases on the leased
  // machines) and writes a Chrome/Perfetto trace to OUT at the end.
  std::string trace_path;
  std::uint32_t trace_sample = 1;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--trace" && a + 1 < argc) {
      trace_path = argv[++a];
      continue;
    }
    if (arg == "--trace-sample" && a + 1 < argc) {
      const long n = std::strtol(argv[++a], nullptr, 10);
      if (n < 1) {
        std::fprintf(stderr, "--trace-sample needs N >= 1\n");
        return 2;
      }
      trace_sample = static_cast<std::uint32_t>(n);
      continue;
    }
    std::fprintf(stderr, "usage: %s [--trace OUT.json] [--trace-sample N]\n",
                 argv[0]);
    return 2;
  }
  trace::Tracer tracer;
  trace::Tracer* const trace_sink = trace_path.empty() ? nullptr : &tracer;

  bench::JsonReport json("pipeline");
  std::printf("Serving pipeline — closed-loop load on this host (%u "
              "hardware threads)\n\n",
              std::max(1u, std::thread::hardware_concurrency()));

  // Experiment 1: throughput scaling with pool size over a mixed-aspect,
  // mixed-width workload (512x256 -> p=16, 128x128 -> p=4, 320x240 -> p=16).
  constexpr int kJobsPerSubmitter = 16;
  std::printf("scaling: mixed-aspect histogram+components jobs "
              "(512x256, 128x128, 320x240), closed loop\n");
  std::printf("  %-10s %-12s %-12s %-12s %-12s %s\n", "pool", "jobs/s",
              "p50 ms", "p99 ms", "queue ms", "machines");
  for (const std::uint32_t pool_size : {1u, 2u, 4u}) {
    const int submitters = static_cast<int>(pool_size) * 2;
    const auto r = run_closed_loop(pool_size, submitters, kJobsPerSubmitter,
                                   trace_sink, trace_sample);
    const auto total =
        static_cast<std::uint64_t>(submitters) * kJobsPerSubmitter;
    const double jobs_per_s = static_cast<double>(r.jobs) / r.wall_s;
    const double mean_job_ns =
        r.wall_s * 1e9 / static_cast<double>(total);
    std::printf("  %-10u %-12.1f %-12.3f %-12.3f %-12.3f %llu\n", pool_size,
                jobs_per_s, r.metrics.wall_p50_s * 1e3,
                r.metrics.wall_p99_s * 1e3, r.metrics.mean_queue_s * 1e3,
                static_cast<unsigned long long>(r.metrics.machines_built));
    json.add("closed_loop_pool" + std::to_string(pool_size), 16, mean_job_ns,
             mean_job_ns, jobs_per_s,
             {{"pool_size", static_cast<double>(pool_size)},
              {"jobs_ok", static_cast<double>(r.jobs)},
              {"jobs_total", static_cast<double>(total)},
              {"wall_p50_s", r.metrics.wall_p50_s},
              {"wall_p90_s", r.metrics.wall_p90_s},
              {"wall_p99_s", r.metrics.wall_p99_s},
              {"mean_queue_s", r.metrics.mean_queue_s},
              {"mean_run_s", r.metrics.mean_run_s},
              {"machines_built",
               static_cast<double>(r.metrics.machines_built)}});
  }

  // Experiment 2: overload against a bounded queue with fail-fast
  // submission — the queue sheds load instead of growing without bound.
  std::printf("\noverload: 1 worker, queue depth 4, burst of 64 fail-fast "
              "submissions\n");
  {
    const auto grey = img::make_random_grey(128, 16, 23);
    serve::PipelineOptions options;
    options.pool_size = 1;
    options.max_procs = 4;
    options.queue_capacity = 4;
    serve::Pipeline pipeline(options);
    serve::JobOptions fail_fast;
    fail_fast.overflow = serve::OverflowPolicy::kReject;

    constexpr int kBurst = 64;
    std::vector<serve::PendingJob<std::vector<std::uint32_t>>> jobs;
    jobs.reserve(kBurst);
    util::Timer timer;
    for (int i = 0; i < kBurst; ++i) {
      jobs.push_back(pipeline.submit_histogram(grey, 16, fail_fast));
    }
    std::uint64_t accepted_ok = 0;
    std::uint64_t rejected = 0;
    for (auto& job : jobs) {
      const auto result = job.result.get();
      if (result.status == serve::JobStatus::kRejected) {
        rejected++;
      } else if (result.status == serve::JobStatus::kOk) {
        accepted_ok++;
      }
    }
    const double wall_s = timer.seconds();
    const auto metrics = pipeline.metrics();
    std::printf("  accepted+completed %llu, rejected %llu (queue bounded at "
                "%zu), %.1f jobs/s served\n",
                static_cast<unsigned long long>(accepted_ok),
                static_cast<unsigned long long>(rejected),
                options.queue_capacity,
                static_cast<double>(accepted_ok) / wall_s);
    json.add("overload_burst", 4, wall_s * 1e9 / kBurst, wall_s * 1e9 / kBurst,
             static_cast<double>(accepted_ok) / wall_s,
             {{"burst", static_cast<double>(kBurst)},
              {"accepted_ok", static_cast<double>(accepted_ok)},
              {"rejected", static_cast<double>(rejected)},
              {"queue_capacity", static_cast<double>(options.queue_capacity)},
              {"metric_rejected", static_cast<double>(metrics.rejected)}});
  }

  // Experiment 3: machines_built() convergence under a mixed-width job
  // mix.  One slot, jobs cycling through three routed widths (512x256 ->
  // p=16, 128x128 -> p=4, 97x97 -> p=2).  The heterogeneous per-slot LRU
  // (machines_per_slot = 0, auto) keeps one warm machine per width, so
  // the build count converges to 3 after the first round; the legacy
  // one-machine-per-slot mode (machines_per_slot = 1) rebuilds on every
  // width switch, so it climbs by 3 per round.
  std::printf("\nconvergence: 1 slot, width mix p={16,4,2}, 4 rounds\n");
  {
    const auto grey_wide = make_shape_grey(512, 256, 16, 31);
    const auto grey_small = img::make_random_grey(128, 16, 37);
    const auto grey_odd = make_shape_grey(97, 97, 16, 41);
    constexpr int kRounds = 4;

    for (const std::uint32_t machines_per_slot : {1u, 0u}) {
      serve::PipelineOptions options;
      options.pool_size = 1;
      options.max_procs = 16;
      options.machines_per_slot = machines_per_slot;
      serve::Pipeline pipeline(options);

      std::uint64_t built_round1 = 0;
      std::uint64_t ok = 0;
      util::Timer timer;
      for (int round = 0; round < kRounds; ++round) {
        for (const auto* image : {&grey_wide, &grey_small, &grey_odd}) {
          const auto result = pipeline.submit_histogram(*image, 16).result.get();
          if (result.status == serve::JobStatus::kOk) ok++;
        }
        if (round == 0) built_round1 = pipeline.metrics().machines_built;
      }
      const double wall_s = timer.seconds();
      const auto metrics = pipeline.metrics();
      const char* mode = machines_per_slot == 1 ? "legacy" : "lru-auto";
      std::printf("  %-10s built after round 1: %llu, after round %d: %llu "
                  "(%s)\n",
                  mode, static_cast<unsigned long long>(built_round1), kRounds,
                  static_cast<unsigned long long>(metrics.machines_built),
                  metrics.machines_built == built_round1
                      ? "converged"
                      : "rebuilding every switch");
      const auto total = static_cast<std::uint64_t>(kRounds) * 3;
      json.add(std::string("convergence_") + mode, 16,
               wall_s * 1e9 / static_cast<double>(total),
               wall_s * 1e9 / static_cast<double>(total),
               static_cast<double>(ok) / wall_s,
               {{"machines_per_slot", static_cast<double>(machines_per_slot)},
                {"rounds", static_cast<double>(kRounds)},
                {"jobs_ok", static_cast<double>(ok)},
                {"machines_built_round1", static_cast<double>(built_round1)},
                {"machines_built_final",
                 static_cast<double>(metrics.machines_built)}});
    }
  }

  // Experiment 4: sampled tracing.  The pool-2 closed loop runs twice
  // against dedicated tracers — unsampled, then at the always-on preset
  // (kernel spans 1/16 via PipelineOptions::trace_sample_every).  The
  // serve layer's per-job spans must stay exact in both runs (one
  // serve/run per executed job — billing and SLO accounting depend on
  // it), while the kernel inventory shrinks ~16x and rescaling it by the
  // rate estimates the unsampled inventory within a few percent.
  std::printf("\nsampled tracing: pool 2 closed loop, kernel spans 1/16, "
              "serve spans exact\n");
  {
    constexpr std::uint32_t kSampleEvery = 16;
    constexpr std::uint32_t kPool = 2;
    constexpr int kSubmitters = 4;
    // Twice the scaling experiment's jobs: the rescaled estimate
    // overshoots by at most N-1 spans per (thread, category) stream
    // (the first span is always admitted), so relative error shrinks
    // with stream length — 2x the spans halves it.
    constexpr int kJobs = kJobsPerSubmitter * 2;
    const auto total = static_cast<std::uint64_t>(kSubmitters) * kJobs;

    const auto count_spans = [](const trace::Tracer& t, std::uint64_t* serve_run,
                                std::uint64_t* kernel) {
      *serve_run = 0;
      *kernel = 0;
      for (const auto& span : t.spans()) {
        if (std::string_view(span.name) == "serve/run") ++*serve_run;
        const auto cat = trace::category_of(span.name);
        if (cat == trace::Category::kBdm || cat == trace::Category::kHist ||
            cat == trace::Category::kCc || cat == trace::Category::kImg) {
          ++*kernel;
        }
      }
    };

    trace::Tracer full;
    const auto r_full = run_closed_loop(kPool, kSubmitters, kJobs, &full, 1);
    std::uint64_t serve_full = 0;
    std::uint64_t kernel_full = 0;
    count_spans(full, &serve_full, &kernel_full);

    trace::Tracer sampled;
    const auto r16 =
        run_closed_loop(kPool, kSubmitters, kJobs, &sampled, kSampleEvery);
    std::uint64_t serve16 = 0;
    std::uint64_t kernel16 = 0;
    count_spans(sampled, &serve16, &kernel16);

    // Nominal xN rescaling over-estimates (first spans are always
    // admitted); the phase report's measured rate (PhaseRow
    // effective_rate, seen/recorded) reproduces category totals.
    const double rescaled_nominal =
        static_cast<double>(kernel16) * static_cast<double>(kSampleEvery);
    double rescaled = 0.0;
    for (const auto& row : trace::phase_breakdown(sampled, splitc::host())) {
      const auto cat = trace::category_of(row.name.c_str());
      if (cat != trace::Category::kServe && cat != trace::Category::kOther) {
        rescaled += static_cast<double>(row.spans) * row.effective_rate;
      }
    }
    const auto err = [&](double estimate) {
      return kernel_full > 0
                 ? (estimate / static_cast<double>(kernel_full) - 1.0) * 100.0
                 : 0.0;
    };
    const double rescale_err_pct = err(rescaled);
    const double jobs_per_s = static_cast<double>(r16.jobs) / r16.wall_s;
    const double mean_job_ns = r16.wall_s * 1e9 / static_cast<double>(total);
    std::printf("  serve/run spans: %llu unsampled, %llu sampled (jobs %llu "
                "— %s)\n",
                static_cast<unsigned long long>(serve_full),
                static_cast<unsigned long long>(serve16),
                static_cast<unsigned long long>(total),
                serve16 == total ? "exact" : "MISMATCH");
    std::printf("  kernel spans: %llu unsampled -> %llu at 1/%u; measured-"
                "rate rescale = %.0f (%+.1f%%), nominal x%u = %.0f "
                "(%+.1f%%)\n",
                static_cast<unsigned long long>(kernel_full),
                static_cast<unsigned long long>(kernel16), kSampleEvery,
                rescaled, rescale_err_pct, kSampleEvery, rescaled_nominal,
                err(rescaled_nominal));
    json.add("closed_loop_traced16", 16, mean_job_ns, mean_job_ns, jobs_per_s,
             {{"sample_every", static_cast<double>(kSampleEvery)},
              {"jobs_ok", static_cast<double>(r16.jobs)},
              {"jobs_total", static_cast<double>(total)},
              {"serve_run_spans", static_cast<double>(serve16)},
              {"kernel_spans_unsampled", static_cast<double>(kernel_full)},
              {"kernel_spans_sampled", static_cast<double>(kernel16)},
              {"rescale_err_pct", rescale_err_pct},
              {"rescale_err_nominal_pct", err(rescaled_nominal)},
              {"wall_s_unsampled", r_full.wall_s},
              {"wall_s_sampled", r16.wall_s},
              {"wall_p99_s", r16.metrics.wall_p99_s}});
  }

  if (json.write()) {
    std::printf("\nmachine-readable results: %s\n", json.path().c_str());
  }
  if (trace_sink != nullptr) {
    if (trace::write_chrome_json(*trace_sink, trace_path)) {
      std::printf("trace written: %s\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write trace %s\n", trace_path.c_str());
      return 1;
    }
  }
  return 0;
}
