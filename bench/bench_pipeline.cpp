// Serving-pipeline load generator: closed-loop throughput of the
// multi-tenant job pipeline (histcc/serve) on this host.
//
// Two experiments:
//   1. Scaling — a fixed mixed workload (histogram + components jobs)
//      driven closed-loop (2 submitters per pool worker, one job in
//      flight per submitter) against pool sizes {1, 2, 4}: throughput
//      should grow with the pool while p50/p99 stay bounded.
//   2. Overload — a single submitter bursts fail-fast jobs at a pipeline
//      with one worker and a 4-deep queue: the bounded queue must shed
//      the excess as kRejected instead of buffering without limit, and
//      every accepted job must still complete.
//
// Results go to stdout and to BENCH_pipeline.json (name, p, mean/min ns
// per job, jobs/second, plus latency percentiles and outcome counters).
#include "bench_util.hpp"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace {

using namespace histcc;

struct LoadResult {
  double wall_s;         ///< whole-experiment wall time
  std::uint64_t jobs;    ///< jobs completed kOk
  serve::PoolMetrics metrics;
};

/// Closed-loop driver: `submitters` threads each keep exactly one job in
/// flight until `jobs_per_submitter` jobs have completed, alternating the
/// two job kinds per iteration.
LoadResult run_closed_loop(std::uint32_t pool_size, int submitters,
                           int jobs_per_submitter) {
  const auto grey = img::make_random_grey(128, 16, 17);
  const auto pattern =
      img::make_test_pattern(img::TestPattern::kFourSquares, 128);

  serve::PipelineOptions options;
  options.pool_size = pool_size;
  options.max_procs = 4;  // 128x128 routes to p=4
  serve::Pipeline pipeline(options);

  std::atomic<std::uint64_t> ok{0};
  util::Timer timer;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(submitters));
  for (int s = 0; s < submitters; ++s) {
    threads.emplace_back([&, s] {
      for (int i = 0; i < jobs_per_submitter; ++i) {
        if ((s + i) % 2 == 0) {
          auto result = pipeline.submit_histogram(grey, 16).result.get();
          if (result.status == serve::JobStatus::kOk) ok++;
        } else {
          auto result = pipeline.submit_components(pattern).result.get();
          if (result.status == serve::JobStatus::kOk) ok++;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s = timer.seconds();
  return LoadResult{wall_s, ok.load(), pipeline.metrics()};
}

}  // namespace

int main() {
  bench::JsonReport json("pipeline");
  std::printf("Serving pipeline — closed-loop load on this host (%u "
              "hardware threads)\n\n",
              std::max(1u, std::thread::hardware_concurrency()));

  // Experiment 1: throughput scaling with pool size.
  constexpr int kJobsPerSubmitter = 16;
  std::printf("scaling: mixed histogram+components jobs, 128x128 (p=4 per "
              "job), closed loop\n");
  std::printf("  %-10s %-12s %-12s %-12s %-12s %s\n", "pool", "jobs/s",
              "p50 ms", "p99 ms", "queue ms", "machines");
  for (const std::uint32_t pool_size : {1u, 2u, 4u}) {
    const int submitters = static_cast<int>(pool_size) * 2;
    const auto r =
        run_closed_loop(pool_size, submitters, kJobsPerSubmitter);
    const auto total =
        static_cast<std::uint64_t>(submitters) * kJobsPerSubmitter;
    const double jobs_per_s = static_cast<double>(r.jobs) / r.wall_s;
    const double mean_job_ns =
        r.wall_s * 1e9 / static_cast<double>(total);
    std::printf("  %-10u %-12.1f %-12.3f %-12.3f %-12.3f %llu\n", pool_size,
                jobs_per_s, r.metrics.wall_p50_s * 1e3,
                r.metrics.wall_p99_s * 1e3, r.metrics.mean_queue_s * 1e3,
                static_cast<unsigned long long>(r.metrics.machines_built));
    json.add("closed_loop_pool" + std::to_string(pool_size), 4, mean_job_ns,
             mean_job_ns, jobs_per_s,
             {{"pool_size", static_cast<double>(pool_size)},
              {"jobs_ok", static_cast<double>(r.jobs)},
              {"jobs_total", static_cast<double>(total)},
              {"wall_p50_s", r.metrics.wall_p50_s},
              {"wall_p90_s", r.metrics.wall_p90_s},
              {"wall_p99_s", r.metrics.wall_p99_s},
              {"mean_queue_s", r.metrics.mean_queue_s},
              {"mean_run_s", r.metrics.mean_run_s},
              {"machines_built",
               static_cast<double>(r.metrics.machines_built)}});
  }

  // Experiment 2: overload against a bounded queue with fail-fast
  // submission — the queue sheds load instead of growing without bound.
  std::printf("\noverload: 1 worker, queue depth 4, burst of 64 fail-fast "
              "submissions\n");
  {
    const auto grey = img::make_random_grey(128, 16, 23);
    serve::PipelineOptions options;
    options.pool_size = 1;
    options.max_procs = 4;
    options.queue_capacity = 4;
    serve::Pipeline pipeline(options);
    serve::JobOptions fail_fast;
    fail_fast.overflow = serve::OverflowPolicy::kReject;

    constexpr int kBurst = 64;
    std::vector<serve::PendingJob<std::vector<std::uint32_t>>> jobs;
    jobs.reserve(kBurst);
    util::Timer timer;
    for (int i = 0; i < kBurst; ++i) {
      jobs.push_back(pipeline.submit_histogram(grey, 16, fail_fast));
    }
    std::uint64_t accepted_ok = 0;
    std::uint64_t rejected = 0;
    for (auto& job : jobs) {
      const auto result = job.result.get();
      if (result.status == serve::JobStatus::kRejected) {
        rejected++;
      } else if (result.status == serve::JobStatus::kOk) {
        accepted_ok++;
      }
    }
    const double wall_s = timer.seconds();
    const auto metrics = pipeline.metrics();
    std::printf("  accepted+completed %llu, rejected %llu (queue bounded at "
                "%zu), %.1f jobs/s served\n",
                static_cast<unsigned long long>(accepted_ok),
                static_cast<unsigned long long>(rejected),
                options.queue_capacity,
                static_cast<double>(accepted_ok) / wall_s);
    json.add("overload_burst", 4, wall_s * 1e9 / kBurst, wall_s * 1e9 / kBurst,
             static_cast<double>(accepted_ok) / wall_s,
             {{"burst", static_cast<double>(kBurst)},
              {"accepted_ok", static_cast<double>(accepted_ok)},
              {"rejected", static_cast<double>(rejected)},
              {"queue_capacity", static_cast<double>(options.queue_capacity)},
              {"metric_rejected", static_cast<double>(metrics.rejected)}});
  }

  if (json.write()) {
    std::printf("\nmachine-readable results: %s\n", json.path().c_str());
  }
  return 0;
}
