// Figure 10 reproduction: connected components of the 512 x 512 DARPA
// Image Understanding Benchmark image (here: the seeded synthetic
// stand-in) across machines and processor counts.
#include "bench_util.hpp"

int main() {
  using namespace histcc;
  const std::uint32_t n = 512;
  const auto scene = img::make_darpa_like(n);
  cc::CcOptions options;
  options.rule = ccseq::ColourRule::kSameColour;

  std::printf("Figure 10 — connected components of the %ux%u DARPA-like "
              "scene (256 greys)\n",
              n, n);
  bench::rule();
  std::printf("%-9s", "machine");
  const std::uint32_t procs[] = {16, 32, 64, 128};
  for (const auto p : procs) std::printf("   p=%-3u model", p);
  std::printf("\n");
  bench::rule();

  for (const char* name : {"CM-5", "SP-1", "SP-2", "CS-2", "Paragon"}) {
    const auto profile = splitc::profile_by_name(name);
    std::printf("%-9s", name);
    for (const auto p : procs) {
      splitc::Machine machine(p);
      (void)cc::connected_components_parallel(machine, scene, options);
      std::printf("   %9.1fms", bench::model(machine, profile).total_s * 1e3);
    }
    std::printf("\n");
  }
  bench::rule();
  std::printf("paper anchors (512^2 DARPA II): CM-5 p=32 368ms; SP-1 p=4 "
              "370ms; SP-2 p=4 243ms;\nCS-2 p=2 809ms.  shape checks: "
              "time decreases with p on every machine; machine\nordering "
              "follows per-op speed (CS-2 < SP-2 < Paragon < CM-5 < SP-1).\n");
  return 0;
}
