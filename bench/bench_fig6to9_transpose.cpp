// Figures 6-9 reproduction: matrix transpose and broadcast execution time
// and attained per-processor bandwidth, as a function of the data volume,
// on the CM-5 / SP-2 / CS-2 (p = 32) and the Paragon (p = 8).
//
// The paper's claims reproduced here: time grows linearly with q once the
// latency is amortized; attained bandwidth saturates towards each
// machine's payload bandwidth; and broadcasting costs roughly twice a
// transpose (it is two transposes).
#include "bench_util.hpp"

namespace {

using namespace histcc;

void run_machine(const splitc::MachineProfile& profile, std::uint32_t p) {
  std::printf("\n%s (p = %u)\n", std::string(profile.name).c_str(), p);
  bench::rule();
  std::printf("%10s | %12s %12s | %12s %12s | %7s\n", "q (words)",
              "transpose", "BW/proc", "broadcast", "BW/proc", "ratio");
  bench::rule();
  splitc::Machine machine(p);
  for (std::size_t q = 256; q <= 256 * 1024; q *= 4) {
    splitc::Spread<std::uint32_t> a(machine, q), b(machine, q);
    splitc::Spread<std::uint32_t> scratch(machine, q);

    machine.run([&](splitc::Proc& self) { bdm::transpose(self, b, a, q); });
    const double tr_s =
        machine.max_stats().modeled_comm_seconds(profile);
    // Remote bytes moved per processor during the transpose.
    const double tr_bytes = static_cast<double>(machine.max_stats().words) * 4;

    machine.run(
        [&](splitc::Proc& self) { bdm::broadcast(self, b, a, scratch, q); });
    const double bc_s =
        machine.max_stats().modeled_comm_seconds(profile);
    const double bc_bytes = static_cast<double>(machine.max_stats().words) * 4;

    std::printf("%10zu | %10.3fms %9.2fMB/s | %10.3fms %9.2fMB/s | %7.2f\n",
                q, tr_s * 1e3, tr_bytes / tr_s / 1e6, bc_s * 1e3,
                bc_bytes / bc_s / 1e6, bc_s / tr_s);
  }
  bench::rule();
  std::printf("attainable payload bandwidth: %.1f MB/s per processor "
              "(peak %.1f)\n",
              profile.bandwidth_MBps, profile.peak_MBps);
}

}  // namespace

int main() {
  std::printf("Figures 6-9 — transpose & broadcast time and per-processor "
              "bandwidth\n");
  run_machine(splitc::cm5(), 32);      // Figure 6
  run_machine(splitc::sp2(), 32);      // Figure 7
  run_machine(splitc::cs2(), 32);      // Figure 8
  run_machine(splitc::paragon(), 8);   // Figure 9
  std::printf("\nshape checks: bandwidth rises towards the payload limit "
              "as q grows; the\nbroadcast/transpose ratio is ~2 at every "
              "size (Algorithm 2 is two transposes),\nas the paper "
              "observes in Section 2.4.\n");
  return 0;
}
