// Table 2 reproduction: connected components on the paper's own rows
// ("Bader and JaJa (This paper)") — DARPA II image and the mean over the
// test-image catalog, at 512 x 512 and 1024 x 1024, on each machine/p the
// paper reports, next to the published times.
#include "bench_util.hpp"

namespace {

using namespace histcc;

struct Row {
  const char* machine;
  std::uint32_t procs;
  std::uint32_t n;
  bool darpa;          // DARPA II image vs mean of test images
  double paper_ms;     // Table 2 "Time"
};

// The paper's Table 2 block for this paper.
constexpr Row kRows[] = {
    {"CM-5", 32, 512, true, 368.0},   {"CM-5", 32, 512, false, 292.0},
    {"CM-5", 32, 1024, false, 852.0}, {"SP-1", 4, 512, true, 370.0},
    {"SP-1", 32, 512, false, 412.0},  {"SP-1", 32, 1024, false, 863.0},
    {"SP-2", 4, 512, true, 243.0},    {"SP-2", 32, 512, false, 284.0},
    {"SP-2", 32, 1024, false, 585.0}, {"CS-2", 2, 512, true, 809.0},
    {"CS-2", 32, 512, false, 301.0},
};

double run_cc(splitc::Machine& machine, const img::GreyImage& image,
              ccseq::ColourRule rule, double* wall_s) {
  cc::CcOptions options;
  options.rule = rule;
  util::Timer timer;
  const auto labels = cc::connected_components_parallel(machine, image, options);
  *wall_s = timer.seconds();
  return static_cast<double>(labels.size());  // defeat dead-code elimination
}

}  // namespace

int main() {
  std::printf("Table 2 — parallel connected components (this paper's rows)\n");
  std::printf("workload: DARPA II -> seeded synthetic DARPA-like scene "
              "(grey CC);\n          mean     -> mean over the 9-image "
              "catalog (binary CC)\n");
  bench::rule();
  std::printf("%-8s %4s %6s %-7s | %10s | %10s %12s | %9s\n", "machine", "p",
              "n", "image", "paper", "model", "model w/px", "wall");
  bench::rule();

  for (const auto& row : kRows) {
    splitc::Machine machine(row.procs);
    const auto profile = splitc::profile_by_name(row.machine);
    double model_total = 0;
    double wall_total = 0;

    if (row.darpa) {
      const auto image = img::make_darpa_like(row.n);
      double wall = 0;
      (void)run_cc(machine, image, ccseq::ColourRule::kSameColour, &wall);
      model_total = bench::model(machine, profile).total_s;
      wall_total = wall;
    } else {
      // Mean over the nine catalog images.
      for (const auto& image : bench::catalog_images(row.n)) {
        double wall = 0;
        (void)run_cc(machine, image, ccseq::ColourRule::kBinary, &wall);
        model_total += bench::model(machine, profile).total_s;
        wall_total += wall;
      }
      model_total /= img::kNumTestPatterns;
      wall_total /= img::kNumTestPatterns;
    }

    std::printf("%-8s %4u %6u %-7s | %8.0fms | %8.0fms %10.1fus | %7.1fms\n",
                row.machine, row.procs, row.n,
                row.darpa ? "DARPA" : "mean", row.paper_ms,
                model_total * 1e3,
                bench::work_per_pixel_ns(model_total, row.procs, row.n) /
                    1e3,
                wall_total * 1e3);
  }
  bench::rule();
  std::printf("shape checks: SP-2 < SP-1 at equal p; 1024^2 ~ 3-4x the "
              "512^2 time at p=32;\nDARPA (grey, more components) >= "
              "catalog mean on the same machine/p.\n");
  return 0;
}
