// Host-native comparison: how the paper's algorithms (running on the
// virtual distributed machine) compare in raw wall-clock against the
// shared-memory OpenMP backend and the sequential references on this
// actual machine.  This is the "which one should a user call today"
// benchmark; the paper-shape results live in the other binaries.
//
// Besides the human-readable table, every measured configuration is
// appended to BENCH_host.json (bench_util.hpp JsonReport) so CI can diff
// runs without scraping stdout.
#include "bench_util.hpp"

#include <benchmark/benchmark.h>
#include <bit>
#include <cstdlib>
#include <string>
#include <thread>

#include "histcc/trace/export.hpp"
#include "histcc/trace/trace.hpp"

namespace {

using namespace histcc;

/// Record one (implementation, image) measurement: table row fields plus
/// a JSON record with pixels/second throughput.
void report(bench::JsonReport& json, const std::string& name,
            std::uint32_t p, std::uint32_t n, bench::Timing timing,
            std::vector<std::pair<std::string, double>> extra = {}) {
  const double pixels = static_cast<double>(n) * static_cast<double>(n);
  json.add(name + "_n" + std::to_string(n), p, timing.mean_s * 1e9,
           timing.min_s * 1e9, pixels / timing.mean_s, std::move(extra));
}

/// Sampling rate of the always-on production tracing preset measured by
/// the *_traced16 records: kernel spans decimated to every 16th call.
constexpr std::uint32_t kSampledEvery = 16;

/// Measure a VM bench untraced and with `sampled` attached (kernel
/// spans at 1/16 — the always-on production preset) in alternating
/// repetitions, so slow host drift (thermal throttling, co-tenants)
/// lands on both sides equally and the best-of-reps ratio is a fair
/// overhead estimate even on noisy shared machines (`overhead_pct`,
/// docs/tracing.md targets <= 2%).  The tracer is cleared per traced
/// repetition so span buffers never grow across reps and the per-thread
/// sampling counters restart, keeping the measured work identical rep
/// over rep; on return `sampled` holds exactly the final traced
/// repetition's spans, ready for the rescale check below.  Returns
/// {untraced, traced} timings.
template <typename Fn>
std::pair<bench::Timing, bench::Timing> sample_paired16(
    splitc::Machine& machine, histcc::trace::Tracer& sampled,
    histcc::trace::Tracer* restore, int reps, Fn&& fn) {
  sampled.set_sampling(
      histcc::trace::SamplingPolicy::kernels(kSampledEvery));
  double total_off = 0.0, best_off = 1e300;
  double total_on = 0.0, best_on = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    machine.set_trace(restore);
    {
      util::Timer timer;
      fn();
      const double s = timer.seconds();
      total_off += s;
      if (s < best_off) best_off = s;
    }
    machine.set_trace(&sampled);
    sampled.clear();
    {
      util::Timer timer;
      fn();
      const double s = timer.seconds();
      total_on += s;
      if (s < best_on) best_on = s;
    }
  }
  machine.set_trace(restore);
  return {bench::Timing{total_off / reps, best_off},
          bench::Timing{total_on / reps, best_on}};
}

/// Spans in the four sampled kernel categories.
[[nodiscard]] std::uint64_t kernel_span_count(
    const histcc::trace::Tracer& tracer) {
  std::uint64_t n = 0;
  for (const auto& span : tracer.spans()) {
    const auto cat = histcc::trace::category_of(span.name);
    if (cat != histcc::trace::Category::kServe &&
        cat != histcc::trace::Category::kOther) {
      ++n;
    }
  }
  return n;
}

/// How far the phase report's rescaled kernel span totals land from the
/// fully traced inventory of the identical run.  The report rescales by
/// the measured decimation factor (PhaseRow::effective_rate, category
/// spans-seen / spans-recorded), which reproduces per-category totals
/// exactly on a deterministic run — the docs/tracing.md "within 5%"
/// budget covers scheduling-dependent workloads, not this one.
[[nodiscard]] double rescale_err_pct(const histcc::trace::Tracer& sampled,
                                     const histcc::trace::Tracer& full) {
  double rescaled = 0.0;
  for (const auto& row :
       histcc::trace::phase_breakdown(sampled, splitc::host())) {
    const auto cat = histcc::trace::category_of(row.name.c_str());
    if (cat != histcc::trace::Category::kServe &&
        cat != histcc::trace::Category::kOther) {
      rescaled += static_cast<double>(row.spans) * row.effective_rate;
    }
  }
  const auto exact = static_cast<double>(kernel_span_count(full));
  return exact > 0 ? (rescaled / exact - 1.0) * 100.0 : 0.0;
}

/// Tracing overhead on the best-of-reps numbers — the same key
/// bench_diff gates on; means are too noisy on shared hosts for a
/// low-single-digit overhead target.
[[nodiscard]] double overhead_pct(bench::Timing traced,
                                  bench::Timing untraced) {
  return (traced.min_s / untraced.min_s - 1.0) * 100.0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t hw =
      std::max(1u, std::thread::hardware_concurrency());
  // Optional positional arg: virtual-machine size (power of two).  Lets
  // the race ledger's instrumented-vs-plain overhead be measured at a
  // fixed p regardless of the host's core count.  `--trace OUT` attaches
  // a tracer to every machine and writes a Chrome/Perfetto trace to OUT.
  std::uint32_t p = std::bit_floor(hw);
  std::string trace_path;
  std::uint32_t trace_sample = 1;
  const auto usage = [&] {
    std::fprintf(stderr,
                 "usage: %s [p] [--trace OUT.json] [--trace-sample N]   "
                 "(p a power of two; N samples kernel spans 1/N)\n",
                 argv[0]);
    return 2;
  };
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--trace" && a + 1 < argc) {
      trace_path = argv[++a];
      continue;
    }
    if (arg == "--trace-sample" && a + 1 < argc) {
      const long n = std::strtol(argv[++a], nullptr, 10);
      if (n < 1) return usage();
      trace_sample = static_cast<std::uint32_t>(n);
      continue;
    }
    const long requested = std::strtol(arg.c_str(), nullptr, 10);
    if (requested < 1 || std::bit_floor(static_cast<std::uint32_t>(
                             requested)) != requested) {
      return usage();
    }
    p = static_cast<std::uint32_t>(requested);
  }
  trace::Tracer tracer;
  if (trace_sample > 1) {
    tracer.set_sampling(trace::SamplingPolicy::kernels(trace_sample));
  }
  trace::Tracer* const trace_sink = trace_path.empty() ? nullptr : &tracer;
  std::printf("Host comparison — wall-clock on this machine (%u hardware "
              "threads, virtual machine p = %u)\n\n",
              hw, p);
  bench::JsonReport json("host");

  for (const std::uint32_t n : {256u, 512u, 1024u}) {
    const auto scene = img::make_darpa_like(n);
    splitc::Machine machine(p);
    machine.set_trace(trace_sink);
    cc::CcOptions options;
    options.rule = ccseq::ColourRule::kSameColour;

    const auto seq = bench::sample(3, [&] {
      benchmark::DoNotOptimize(ccseq::label_components_unionfind(
          scene, ccseq::Connectivity::kEight,
          ccseq::ColourRule::kSameColour));
    });
    const auto omp = bench::sample(3, [&] {
      benchmark::DoNotOptimize(omp::connected_components_omp(
          scene, ccseq::Connectivity::kEight,
          ccseq::ColourRule::kSameColour));
    });
    trace::Tracer sampled;
    const auto [vm, vm16] = sample_paired16(machine, sampled, trace_sink, 11, [&] {
      benchmark::DoNotOptimize(
          cc::connected_components_parallel(machine, scene, options));
    });
    // One fully traced rep of the same run: the rescale reference.
    trace::Tracer full;
    machine.set_trace(&full);
    benchmark::DoNotOptimize(
        cc::connected_components_parallel(machine, scene, options));
    machine.set_trace(trace_sink);
    report(json, "cc_seq_unionfind", 1, n, seq);
    report(json, "cc_omp", p, n, omp);
    report(json, "cc_splitc_vm", p, n, vm);
    report(json, "cc_splitc_vm_traced16", p, n, vm16,
           {{"sample_every", static_cast<double>(kSampledEvery)},
            {"overhead_pct", overhead_pct(vm16, vm)},
            {"rescale_err_pct", rescale_err_pct(sampled, full)}});

    std::printf("connected components, %ux%u DARPA-like scene:\n", n, n);
    std::printf("  sequential union-find    %8.2f ms\n", seq.min_s * 1e3);
    std::printf("  OpenMP strip union-find  %8.2f ms  (speedup %.2fx)\n",
                omp.min_s * 1e3, seq.min_s / omp.min_s);
    std::printf("  virtual machine (paper)  %8.2f ms  (simulation overhead "
                "%.1fx)\n",
                vm.min_s * 1e3, vm.min_s / seq.min_s);
    std::printf("  VM traced at 1/%-2u        %8.2f ms  (tracing overhead "
                "%+.1f%%, rescale err %+.1f%%)\n\n",
                kSampledEvery, vm16.min_s * 1e3, overhead_pct(vm16, vm),
                rescale_err_pct(sampled, full));
  }

  for (const std::uint32_t n : {512u, 1024u}) {
    const auto image = img::make_random_grey(n, 256, n);
    splitc::Machine machine(p);
    machine.set_trace(trace_sink);
    const auto seq = bench::sample(3, [&] {
      benchmark::DoNotOptimize(hist::histogram_seq(image, 256));
    });
    const auto omp = bench::sample(3, [&] {
      benchmark::DoNotOptimize(omp::histogram_omp(image, 256));
    });
    trace::Tracer sampled;
    const auto [vm, vm16] = sample_paired16(machine, sampled, trace_sink, 11, [&] {
      benchmark::DoNotOptimize(hist::histogram_parallel(machine, image, 256));
    });
    trace::Tracer full;
    machine.set_trace(&full);
    benchmark::DoNotOptimize(hist::histogram_parallel(machine, image, 256));
    machine.set_trace(trace_sink);
    report(json, "hist_seq", 1, n, seq);
    report(json, "hist_omp", p, n, omp);
    report(json, "hist_splitc_vm", p, n, vm);
    report(json, "hist_splitc_vm_traced16", p, n, vm16,
           {{"sample_every", static_cast<double>(kSampledEvery)},
            {"overhead_pct", overhead_pct(vm16, vm)},
            {"rescale_err_pct", rescale_err_pct(sampled, full)}});

    std::printf("histogram (k=256), %ux%u:\n", n, n);
    std::printf("  sequential               %8.2f ms\n", seq.min_s * 1e3);
    std::printf("  OpenMP                   %8.2f ms  (speedup %.2fx)\n",
                omp.min_s * 1e3, seq.min_s / omp.min_s);
    std::printf("  virtual machine (paper)  %8.2f ms\n", vm.min_s * 1e3);
    std::printf("  VM traced at 1/%-2u        %8.2f ms  (tracing overhead "
                "%+.1f%%, rescale err %+.1f%%)\n\n",
                kSampledEvery, vm16.min_s * 1e3, overhead_pct(vm16, vm),
                rescale_err_pct(sampled, full));
  }

  // Ragged-shape allocation footprint: the Spread payload bytes a cc +
  // histogram run constructs under each SpreadLayout.  Very wide / very
  // tall shapes carry the worst max_tile_size() padding, so packed mode
  // should land strictly below strided there (docs/layout.md); the
  // footprint_bytes extra field (schema v3) records both sides so the
  // reclaimed slack is a measured number, not an assertion.
  std::printf("allocation footprint, packed vs strided (ragged shapes):\n");
  for (const auto& [h, w] : {std::pair{7u, 513u}, std::pair{1000u, 3u}}) {
    img::GreyImage image(h, w);
    std::uint64_t state = 0x9E3779B97F4A7C15ull * (h * 131u + w);
    for (auto& px : image.pixels()) {
      state += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = state;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      px = static_cast<std::uint8_t>((z ^ (z >> 31)) & 255u);
    }
    const std::string shape =
        std::to_string(h) + "x" + std::to_string(w);
    double strided_bytes = 0;
    for (const auto mode : {splitc::SpreadLayout::kStrided,
                            splitc::SpreadLayout::kPacked}) {
      const bool packed = mode == splitc::SpreadLayout::kPacked;
      splitc::Machine machine(p);
      machine.set_trace(trace_sink);
      machine.set_spread_layout(mode);
      cc::CcOptions options;
      machine.reset_alloc_stats();
      const auto timing = bench::sample(3, [&] {
        benchmark::DoNotOptimize(
            cc::connected_components_parallel(machine, image, options));
        benchmark::DoNotOptimize(
            hist::histogram_parallel(machine, image, 256));
      });
      const auto bytes =
          static_cast<double>(machine.spread_bytes_allocated());
      if (!packed) strided_bytes = bytes;
      const double pixels = static_cast<double>(h) * w;
      json.add(std::string("footprint_") + (packed ? "packed" : "strided") +
                   "_" + shape,
               p, timing.mean_s * 1e9, timing.min_s * 1e9,
               pixels / timing.mean_s, {{"footprint_bytes", bytes}});
      std::printf("  %-9s %-8s %12.0f bytes%s\n", shape.c_str(),
                  packed ? "packed" : "strided", bytes,
                  packed && strided_bytes > 0
                      ? (" (" +
                         std::to_string(static_cast<int>(
                             100.0 * (1.0 - bytes / strided_bytes))) +
                         "% reclaimed)")
                            .c_str()
                      : "");
    }
  }
  std::printf("\n");

  if (json.write()) {
    std::printf("machine-readable results: %s\n\n", json.path().c_str());
  }
  if (trace_sink != nullptr) {
    if (trace::write_chrome_json(*trace_sink, trace_path)) {
      std::printf("trace written: %s\n\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write trace %s\n", trace_path.c_str());
      return 1;
    }
  }
  std::printf("note: the virtual machine exists to reproduce the paper's "
              "distributed\nexecution and cost model, not to win wall-clock "
              "races; the OpenMP backend is\nthe one to use for raw host "
              "performance.\n");
  return 0;
}
