// Host-native comparison: how the paper's algorithms (running on the
// virtual distributed machine) compare in raw wall-clock against the
// shared-memory OpenMP backend and the sequential references on this
// actual machine.  This is the "which one should a user call today"
// benchmark; the paper-shape results live in the other binaries.
#include "bench_util.hpp"

#include <benchmark/benchmark.h>
#include <bit>
#include <cstdlib>
#include <thread>

namespace {

using namespace histcc;

template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = 1e9;
  for (int rep = 0; rep < reps; ++rep) {
    util::Timer timer;
    fn();
    best = std::min(best, timer.seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t hw =
      std::max(1u, std::thread::hardware_concurrency());
  // Optional argv[1]: virtual-machine size (power of two).  Lets the race
  // ledger's instrumented-vs-plain overhead be measured at a fixed p
  // regardless of the host's core count.
  std::uint32_t p = std::bit_floor(hw);
  if (argc > 1) {
    const long requested = std::strtol(argv[1], nullptr, 10);
    if (requested < 1 || std::bit_floor(static_cast<std::uint32_t>(
                             requested)) != requested) {
      std::fprintf(stderr, "usage: %s [p]   (p a power of two)\n", argv[0]);
      return 2;
    }
    p = static_cast<std::uint32_t>(requested);
  }
  std::printf("Host comparison — wall-clock on this machine (%u hardware "
              "threads, virtual machine p = %u)\n\n",
              hw, p);

  for (const std::uint32_t n : {256u, 512u, 1024u}) {
    const auto scene = img::make_darpa_like(n);
    splitc::Machine machine(p);
    cc::CcOptions options;
    options.rule = ccseq::ColourRule::kSameColour;

    const double seq_s = best_of(3, [&] {
      benchmark::DoNotOptimize(ccseq::label_components_unionfind(
          scene, ccseq::Connectivity::kEight,
          ccseq::ColourRule::kSameColour));
    });
    const double omp_s = best_of(3, [&] {
      benchmark::DoNotOptimize(omp::connected_components_omp(
          scene, ccseq::Connectivity::kEight,
          ccseq::ColourRule::kSameColour));
    });
    const double vm_s = best_of(3, [&] {
      benchmark::DoNotOptimize(
          cc::connected_components_parallel(machine, scene, options));
    });

    std::printf("connected components, %ux%u DARPA-like scene:\n", n, n);
    std::printf("  sequential union-find    %8.2f ms\n", seq_s * 1e3);
    std::printf("  OpenMP strip union-find  %8.2f ms  (speedup %.2fx)\n",
                omp_s * 1e3, seq_s / omp_s);
    std::printf("  virtual machine (paper)  %8.2f ms  (simulation overhead "
                "%.1fx)\n\n",
                vm_s * 1e3, vm_s / seq_s);
  }

  for (const std::uint32_t n : {512u, 1024u}) {
    const auto image = img::make_random_grey(n, 256, n);
    splitc::Machine machine(p);
    const double seq_s = best_of(3, [&] {
      benchmark::DoNotOptimize(hist::histogram_seq(image, 256));
    });
    const double omp_s = best_of(3, [&] {
      benchmark::DoNotOptimize(omp::histogram_omp(image, 256));
    });
    const double vm_s = best_of(3, [&] {
      benchmark::DoNotOptimize(hist::histogram_parallel(machine, image, 256));
    });
    std::printf("histogram (k=256), %ux%u:\n", n, n);
    std::printf("  sequential               %8.2f ms\n", seq_s * 1e3);
    std::printf("  OpenMP                   %8.2f ms  (speedup %.2fx)\n",
                omp_s * 1e3, seq_s / omp_s);
    std::printf("  virtual machine (paper)  %8.2f ms\n\n", vm_s * 1e3);
  }

  std::printf("note: the virtual machine exists to reproduce the paper's "
              "distributed\nexecution and cost model, not to win wall-clock "
              "races; the OpenMP backend is\nthe one to use for raw host "
              "performance.\n");
  return 0;
}
