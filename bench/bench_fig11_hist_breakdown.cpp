// Figure 11 reproduction: histogramming computation time vs communication
// time, for 32-colour and 256-colour images, as a function of image size.
// The paper's claim: communication is independent of n (it depends only on
// k and p), so computation dominates for large images.
//
// Besides the modeled comp/comm split, each k gets a per-step breakdown
// taken from live trace spans (histcc::trace): the steps are exactly
// hist::kHistStepSpans — the same names the kernel's TRACE_SCOPE sites
// record and the trace tests assert on — so this table and a captured
// trace.json always agree on what the algorithm's steps are.
#include "bench_util.hpp"

#include <algorithm>

#include "histcc/trace/export.hpp"
#include "histcc/trace/trace.hpp"

int main() {
  using namespace histcc;
  const auto profile = splitc::cm5();
  const std::uint32_t p = 32;

  for (const std::uint32_t k : {32u, 256u}) {
    std::printf("Figure 11 — histogramming of a %u-colour image on the "
                "CM-5 (p = %u)\n",
                k, p);
    bench::rule();
    std::printf("%8s | %14s %14s | %10s\n", "n", "computation",
                "communication", "comm words");
    bench::rule();
    for (const std::uint32_t n : {128u, 256u, 512u, 1024u}) {
      const auto image = img::make_random_grey(n, k, n + k);
      splitc::Machine machine(p);
      (void)hist::histogram_parallel(machine, image, k);
      const auto modeled = bench::model(machine, profile);
      std::printf("%8u | %12.3fms %12.3fms | %10llu\n", n,
                  modeled.comp_s * 1e3, modeled.comm_s * 1e3,
                  static_cast<unsigned long long>(machine.max_stats().words));
    }
    bench::rule();

    // Per-step breakdown from one traced run at n = 512.
    const std::uint32_t n = 512;
    trace::Tracer tracer;
    const auto image = img::make_random_grey(n, k, n + k);
    splitc::Machine machine(p);
    machine.set_trace(&tracer);
    (void)hist::histogram_parallel(machine, image, k);
    const auto rows = trace::phase_breakdown(tracer, profile);
    std::printf("per-step breakdown, live trace spans (n = %u):\n", n);
    std::printf("%16s | %10s %10s | %12s\n", "step", "wall ms", "words",
                "modeled ms");
    for (const char* step : hist::kHistStepSpans) {
      const auto it =
          std::find_if(rows.begin(), rows.end(), [&](const auto& row) {
            return row.name == step;
          });
      if (it == rows.end()) {
        std::printf("%16s | %10s %10s | %12s\n", step, "-", "-", "-");
        continue;
      }
      std::printf("%16s | %10.3f %10llu | %12.4f\n", step, it->wall_s * 1e3,
                  static_cast<unsigned long long>(it->words),
                  it->modeled_comm_s * 1e3);
    }
    bench::rule();
    std::printf("\n");
  }
  std::printf("shape checks: the communication column is constant in n "
              "and grows with k;\nthe computation column scales with n^2 "
              "and dominates for large n.\n");
  return 0;
}
