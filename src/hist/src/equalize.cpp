#include "histcc/hist/equalize.hpp"

#include <cmath>

#include "histcc/bdm/primitives.hpp"
#include "histcc/hist/histogram.hpp"
#include "histcc/trace/trace.hpp"
#include "histcc/util/require.hpp"

namespace histcc::hist {

std::vector<std::uint8_t> equalization_map(
    std::span<const std::uint32_t> counts, std::uint64_t total) {
  const std::size_t k = counts.size();
  HISTCC_REQUIRE(k >= 2 && k <= 256, "histogram must have 2..256 bars");
  HISTCC_REQUIRE(total > 0, "image must be non-empty");

  // First nonzero CDF value; the classic formula anchors it at output 0.
  std::uint64_t cdf = 0;
  std::uint64_t cdf_min = 0;
  for (std::size_t g = 0; g < k; ++g) {
    if (counts[g] != 0) {
      cdf_min = counts[g];
      break;
    }
  }
  const std::uint64_t denom = total - cdf_min;

  std::vector<std::uint8_t> map(k, 0);
  for (std::size_t g = 0; g < k; ++g) {
    cdf += counts[g];
    if (denom == 0) {
      // Single-level image: identity-ish mapping, everything to 0.
      map[g] = 0;
      continue;
    }
    const double scaled = static_cast<double>(cdf - cdf_min) /
                          static_cast<double>(denom) *
                          static_cast<double>(k - 1);
    map[g] = static_cast<std::uint8_t>(std::lround(scaled));
  }
  return map;
}

void equalize_parallel(splitc::Machine& machine, const img::TileLayout& layout,
                       splitc::Spread<std::uint8_t>& tiles, std::uint32_t k) {
  const std::uint32_t p = machine.nprocs();
  HISTCC_REQUIRE(k % p == 0, "equalize_parallel requires p | k");

  // Phase 1: the paper's parallel histogram; the bars end on processor 0.
  const auto counts = hist::histogram_parallel(machine, layout, tiles, k);

  // Phase 2: processor 0 builds the remap table; Algorithm 2 broadcasts
  // it; every processor remaps its tile locally.
  const std::uint64_t total = layout.pixels();
  const auto map = equalization_map(counts, total);

  splitc::Spread<std::uint8_t> table_src(machine, k, "eq_table_src");
  splitc::Spread<std::uint8_t> table(machine, k, "eq_table");
  splitc::Spread<std::uint8_t> scratch(machine, k, "eq_scratch");
  std::copy(map.begin(), map.end(), table_src.block(0).begin());

  machine.run([&](splitc::Proc& self) {
    TRACE_SCOPE(self, "hist/equalize_remap");
    bdm::broadcast(self, table, table_src, scratch, k);
    auto my_map = table.local(self);
    auto px = tiles.local(self);
    const std::size_t count = layout.tile_size(self.rank());
    for (std::size_t idx = 0; idx < count; ++idx) {
      px[idx] = my_map[px[idx]];
    }
    if (count > 0) {
      tiles.note_local_write(self);  // race-ledger epoch annotation
    }
    self.charge_ops(count);
  });
}

img::GreyImage equalize(const img::GreyImage& image, std::uint32_t k) {
  const auto counts = histogram_seq(image, k);
  const auto map = equalization_map(counts, image.size());
  img::GreyImage out(image.height(), image.width());
  auto dst = out.pixels();
  const auto src = image.pixels();
  for (std::size_t idx = 0; idx < src.size(); ++idx) {
    dst[idx] = map[src[idx]];
  }
  return out;
}

}  // namespace histcc::hist
