#include "histcc/hist/histogram.hpp"

#include <algorithm>

#include "histcc/bdm/primitives.hpp"
#include "histcc/trace/trace.hpp"
#include "histcc/util/math.hpp"
#include "histcc/util/require.hpp"
#include "histcc/util/timer.hpp"

namespace histcc::hist {
namespace {

void require_k(std::uint32_t k) {
  HISTCC_REQUIRE(k >= 2 && k <= 256 && util::is_pow2(k),
                 "grey-level count must be a power of two in [2, 256]");
}

}  // namespace

std::vector<std::uint32_t> histogram_seq(const img::GreyImage& image,
                                         std::uint32_t k) {
  require_k(k);
  std::vector<std::uint32_t> counts(k, 0);
  for (const auto px : image.pixels()) {
    HISTCC_REQUIRE(px < k, "pixel value exceeds grey-level count");
    ++counts[px];
  }
  return counts;
}

std::vector<std::uint32_t> histogram_parallel(splitc::Machine& machine,
                                              const img::TileLayout& layout,
                                              splitc::Spread<std::uint8_t>& tiles,
                                              std::uint32_t k,
                                              HistPhases* phases) {
  require_k(k);
  HISTCC_REQUIRE(tiles.nprocs() == machine.nprocs() &&
                     layout.spread_fits(tiles),
                 "tiles spread does not fit layout (Spread '" +
                     tiles.name() + "')");
  const std::uint32_t p = machine.nprocs();

  // H_i[0..k): each processor's local tally.
  splitc::Spread<std::uint32_t> local_h(machine, k, "local_h");
  // Transpose destination: k/p-row blocks when k >= p, one full row (p
  // partial counts) when k < p.
  const std::size_t bars_per_proc = std::max<std::size_t>(k / p, 1);
  splitc::Spread<std::uint32_t> trans(machine, std::max<std::size_t>(k, p),
                                      "hist_trans");
  // Combined bars, ready for collection.
  splitc::Spread<std::uint32_t> combined(machine, bars_per_proc,
                                         "hist_combined");
  // The k-bar histogram, assembled on P0.
  splitc::Spread<std::uint32_t> result(machine, k, "hist_result");

  HistPhases local_phases;
  machine.run([&](splitc::Proc& self) {
    util::Timer timer;
    const bool timing = self.rank() == 0;

    // Step 1: tally my tile.  O(n^2 / p) local work.
    {
      TRACE_SCOPE(self, kHistStepSpans[0]);
      auto h = local_h.local(self);
      auto px = tiles.local(self);
      const std::size_t count = layout.tile_size(self.rank());
      for (std::size_t idx = 0; idx < count; ++idx) {
        HISTCC_REQUIRE(px[idx] < k, "pixel value exceeds grey-level count");
        ++h[px[idx]];
      }
      if (count > 0) {
        local_h.note_local_write(self);  // race-ledger epoch annotation
      }
      self.charge_ops(count);
      self.barrier();
      if (timing) local_phases.tally_s = timer.seconds();
    }

    // Step 2: rearrange tallies so each grey level's partial counts share a
    // processor.
    timer.reset();
    TRACE_SPAN(self, kHistStepSpans[1]) {
      if (k >= p) {
        bdm::transpose(self, trans, local_h, k);
      } else {
        bdm::truncated_transpose(self, trans, local_h, k);
      }
      self.barrier();
    }
    if (timing) local_phases.transpose_s = timer.seconds();

    // Step 3: combine partial counts locally.  O(k) per processor.
    timer.reset();
    {
      TRACE_SCOPE(self, kHistStepSpans[2]);
      auto in = trans.local(self);
      auto out = combined.local(self);
      if (k >= p) {
        const std::size_t blk = k / p;
        for (std::size_t j = 0; j < blk; ++j) {
          std::uint32_t sum = 0;
          for (std::uint32_t r = 0; r < p; ++r) {
            sum += in[static_cast<std::size_t>(r) * blk + j];
          }
          out[j] = sum;
        }
        combined.note_local_write(self, 0, blk);  // race-ledger annotation
        self.charge_ops(k);
      } else if (self.rank() < k) {
        std::uint32_t sum = 0;
        for (std::uint32_t r = 0; r < p; ++r) sum += in[r];
        out[0] = sum;
        combined.note_local_write(self, 0, 1);  // race-ledger annotation
        self.charge_ops(p);
      }
      self.barrier();
      if (timing) local_phases.combine_s = timer.seconds();
    }

    // Step 4: P0 collects the k bars with a circular prefetch.
    timer.reset();
    const std::uint32_t nblocks = k >= p ? p : k;
    TRACE_SPAN(self, kHistStepSpans[3]) {
      bdm::gather_to_root(self, result, combined, bars_per_proc, 0, 0,
                          nblocks);
      self.barrier();
    }
    if (timing) local_phases.gather_s = timer.seconds();
  });

  if (phases != nullptr) *phases = local_phases;
  auto root_block = result.block(0);
  return std::vector<std::uint32_t>(root_block.begin(), root_block.begin() + k);
}

std::vector<std::uint32_t> histogram_parallel(splitc::Machine& machine,
                                              const img::GreyImage& image,
                                              std::uint32_t k,
                                              HistPhases* phases) {
  const img::TileLayout layout(image.height(), image.width(),
                               machine.nprocs());
  splitc::Spread<std::uint8_t> tiles(machine, layout.tile_sizes(),
                                     "hist_tiles");
  layout.scatter(image, tiles);
  return histogram_parallel(machine, layout, tiles, k, phases);
}

}  // namespace histcc::hist
