#ifndef HISTCC_HIST_EQUALIZE_HPP
#define HISTCC_HIST_EQUALIZE_HPP

/// \file equalize.hpp
/// Histogram equalization — the application Section 4 motivates
/// histogramming with ("flattens the histogram and improves the contrast
/// of an image by spreading out colours").

#include <cstdint>
#include <span>
#include <vector>

#include "histcc/image/image.hpp"
#include "histcc/image/layout.hpp"
#include "histcc/splitc/machine.hpp"
#include "histcc/splitc/spread.hpp"

namespace histcc::hist {

/// The standard CDF remapping table: level g maps to
/// round((cdf(g) - cdf_min) / (n_pixels - cdf_min) * (k - 1)).
/// `counts` is a k-bar histogram of an image with `total` pixels.
[[nodiscard]] std::vector<std::uint8_t> equalization_map(
    std::span<const std::uint32_t> counts, std::uint64_t total);

/// Equalize `image` (k grey levels, power of two in [2, 256]) using its own
/// histogram; returns the remapped image.
[[nodiscard]] img::GreyImage equalize(const img::GreyImage& image,
                                      std::uint32_t k);

/// Fully parallel equalization over an already-distributed image: the
/// histogram is computed with the paper's parallel algorithm, processor 0
/// builds the k-entry remap table, the table is broadcast to every
/// processor with Algorithm 2 (two matrix transpositions), and each
/// processor remaps its own tile in place.
/// Tcomm <= 2(tau + k) + 2(tau + k - k/p); Tcomp = O(n^2/p + k).
/// Requires p | k (use the sequential path for k < p).  Collective.
void equalize_parallel(splitc::Machine& machine,
                       const img::TileLayout& layout,
                       splitc::Spread<std::uint8_t>& tiles, std::uint32_t k);

}  // namespace histcc::hist

#endif  // HISTCC_HIST_EQUALIZE_HPP
