#ifndef HISTCC_HIST_HISTOGRAM_HPP
#define HISTCC_HIST_HISTOGRAM_HPP

/// \file histogram.hpp
/// Image histogramming (Section 4 of the paper).
///
/// Sequential: one pass, O(n^2 + k).
///
/// Parallel (the paper's algorithm):
///   1. every processor tallies its q x r tile into a local array H_i[0..k);
///   2. a matrix transpose rearranges the tallies so all partial counts of
///      each grey level land on one processor — a truncated transpose when
///      k < p (one row per processor P_0..P_{k-1}), a k/p-row transpose
///      when k >= p;
///   3. each receiving processor combines its partial counts locally, O(k);
///   4. processor P_0 collects the k bars with a circular prefetch.
/// Tcomm <= 2(tau + k), Tcomp = O(n^2/p + k) — independent of n in the
/// communication term, which Figure 11 demonstrates and our benches check.
///
/// Counts are 32-bit: the largest image the paper uses (4096 x 4096) has
/// n^2 = 2^24 pixels, far below 2^32.

#include <array>
#include <cstdint>
#include <vector>

#include "histcc/image/image.hpp"
#include "histcc/image/layout.hpp"
#include "histcc/splitc/machine.hpp"
#include "histcc/splitc/spread.hpp"

namespace histcc::hist {

/// Wall-clock split of the parallel algorithm's phases, measured on
/// processor 0 between barriers; mirrors the computation-vs-communication
/// plots of Figure 11.
struct HistPhases {
  double tally_s = 0;      ///< local tallying (computation)
  double transpose_s = 0;  ///< (truncated) matrix transpose (communication)
  double combine_s = 0;    ///< local combining (computation)
  double gather_s = 0;     ///< circular collection onto P0 (communication)
};

/// Trace span names of the four steps, in execution order — the single
/// source of truth shared by the kernel's TRACE_SCOPE sites, the
/// Fig. 11 bench's step table, and the trace tests, so the live trace
/// breakdown and the bench report always list the same steps.
inline constexpr std::array<const char*, 4> kHistStepSpans = {
    "hist/tally", "hist/transpose", "hist/combine", "hist/gather"};

/// One-pass sequential histogram; the baseline for efficiency numbers.
/// k must be a power of two in [2, 256]; every pixel must be < k.
[[nodiscard]] std::vector<std::uint32_t> histogram_seq(
    const img::GreyImage& image, std::uint32_t k);

/// The paper's parallel histogramming algorithm over an already-distributed
/// image.  Collective: call from the host; it runs an SPMD program on
/// `machine`.  Returns H[0..k), the histogram as assembled on processor 0.
/// `tiles` must hold the image distributed per `layout`.
[[nodiscard]] std::vector<std::uint32_t> histogram_parallel(
    splitc::Machine& machine, const img::TileLayout& layout,
    splitc::Spread<std::uint8_t>& tiles, std::uint32_t k,
    HistPhases* phases = nullptr);

/// Convenience wrapper: distribute `image` over `machine` and histogram it.
[[nodiscard]] std::vector<std::uint32_t> histogram_parallel(
    splitc::Machine& machine, const img::GreyImage& image, std::uint32_t k,
    HistPhases* phases = nullptr);

}  // namespace histcc::hist

#endif  // HISTCC_HIST_HISTOGRAM_HPP
