#ifndef HISTCC_OMP_PARALLEL_HOST_HPP
#define HISTCC_OMP_PARALLEL_HOST_HPP

/// \file parallel_host.hpp
/// Shared-memory (OpenMP) implementations of the paper's two primitives.
///
/// The splitc runtime exists to *reproduce* the paper's distributed-memory
/// execution and cost model; these functions exist to be *used*: on a
/// modern multicore host, histogramming and connected components are
/// shared-memory problems, and the natural implementations below are what
/// a downstream user should call for raw wall-clock speed.  They are also
/// the harness's modern comparator: bench_host compares them against the
/// virtual machine running the paper's algorithms on the same images.
///
/// Both produce bit-identical results to the sequential references (the
/// canonical labeling / exact counts), so the test suite cross-checks
/// them against every other implementation.  They degrade gracefully to
/// serial execution when built without OpenMP.

#include <cstdint>
#include <vector>

#include "histcc/cc_seq/common.hpp"
#include "histcc/image/image.hpp"

#if defined(__SANITIZE_THREAD__)
#define HISTCC_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HISTCC_TSAN_ACTIVE 1
#endif
#endif
#ifndef HISTCC_TSAN_ACTIVE
#define HISTCC_TSAN_ACTIVE 0
#endif

namespace histcc::omp {

/// True when this build is instrumented by ThreadSanitizer.  libgomp is
/// not TSan-instrumented, so TSan cannot see the fork/join barriers of
/// `#pragma omp parallel` regions and reports false races between phases
/// that are correctly barrier-separated.  The backend therefore runs
/// single-threaded under TSan (num_threads is a request OpenMP may
/// legitimately shrink); thread-level verification of the OpenMP
/// algorithms is the epoch checker's job (epoch_check.hpp), which runs
/// with real teams in every non-TSan preset.
[[nodiscard]] constexpr bool tsan_active() noexcept {
  return HISTCC_TSAN_ACTIVE != 0;
}

/// Number of threads the OpenMP backend will use (1 when built serially
/// or under ThreadSanitizer — see tsan_active()).
[[nodiscard]] unsigned backend_threads() noexcept;

/// Histogram with per-thread tallies + parallel reduction.  Same contract
/// as hist::histogram_seq (k a power of two in [2, 256], pixels < k).
/// `threads` sets the team size explicitly — 0 means backend_threads();
/// any count (including non-powers-of-two and oversubscription) gives
/// bit-identical results.  Explicit counts are requests: under TSan the
/// team shrinks to 1 (see tsan_active()).  When the epoch checker is enabled
/// (epoch_check.hpp) the run self-verifies its barrier discipline.
[[nodiscard]] std::vector<std::uint32_t> histogram_omp(
    const img::GreyImage& image, std::uint32_t k, unsigned threads = 0);

/// Connected components by strip-parallel union-find:
///   1. the image is cut into horizontal strips, one per thread; each
///      thread runs the two-pass union-find first pass within its strip
///      (its unions touch only its own rows, so no synchronization);
///   2. a short serial pass unions each strip's first row with the row
///      above it (the strip boundaries);
///   3. a parallel read-only resolve assigns every pixel its root label.
/// Union-by-minimum keeps the canonical labeling, so the output equals
/// ccseq::label_components_* exactly.  `threads` sets the team size
/// explicitly (0 = backend_threads()); the count is clamped so every
/// strip spans at least two rows, and shrinks to 1 under TSan (see
/// tsan_active()).  When the epoch checker is enabled
/// (epoch_check.hpp) the run self-verifies its barrier discipline.
[[nodiscard]] img::LabelImage connected_components_omp(
    const img::GreyImage& image,
    ccseq::Connectivity conn = ccseq::Connectivity::kEight,
    ccseq::ColourRule rule = ccseq::ColourRule::kBinary,
    unsigned threads = 0);

}  // namespace histcc::omp

#endif  // HISTCC_OMP_PARALLEL_HOST_HPP
