#ifndef HISTCC_OMP_EPOCH_CHECK_HPP
#define HISTCC_OMP_EPOCH_CHECK_HPP

/// \file epoch_check.hpp
/// Barrier-epoch race checking for the OpenMP mirror.
///
/// The splitc race ledger (histcc/splitc/race_ledger.hpp) checks the BDM
/// publication protocol: accesses by different processors to the same
/// element are ordered only by a barrier both have crossed.  The OpenMP
/// implementations follow exactly the same discipline — per-thread
/// partials written, `#pragma omp barrier`, then reduced — but until now
/// only the splitc runtime was checked.  `EpochChecker` closes that gap by
/// reusing the same `splitc::RaceLedger` shadow store (always compiled,
/// independent of the HISTCC_RACE_LEDGER Spread instrumentation) with
/// OpenMP thread ids as ranks and `#pragma omp barrier`-delimited logical
/// epochs.
///
/// Usage inside a parallel region:
///
///     EpochChecker chk(threads);
///     auto shadow = chk.attach("partial");
///     #pragma omp parallel num_threads(threads)
///     {
///       const unsigned tid = ...;
///       ...write my chunk...
///       chk.note_write(*shadow, tid, my_off, my_len);
///       chk.epoch_barrier(tid);       // omp barrier + epoch bump
///       ...read everyone's chunks...
///       chk.note_read(*shadow, tid, 0, total);
///     }
///     chk.throw_if_conflicts();
///
/// `epoch_barrier` must be executed by every thread of the innermost
/// parallel region (it contains an orphaned `#pragma omp barrier`).  For
/// fork/join transitions — parallel region, serial stitch, parallel region
/// — call `advance_epoch_all()` between the regions from the serial part;
/// the implied barriers at region boundaries provide the ordering, and the
/// serial code records its accesses as thread 0.
///
/// Like the splitc ledger, detection is protocol-level and deterministic:
/// two same-epoch accesses by different threads with at least one write
/// are flagged on every run, regardless of how the OS scheduled them.
///
/// The built-in algorithms (`histogram_omp`, `connected_components_omp`)
/// self-instrument when the process-wide switch `set_epoch_check_enabled`
/// is on (default off: production runs pay nothing).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "histcc/splitc/race_ledger.hpp"

namespace histcc::omp {

/// Process-wide switch for self-instrumentation of the built-in OpenMP
/// algorithms.  Off by default; tests flip it on around the calls they
/// want checked.  Not thread-safe against concurrent algorithm calls.
void set_epoch_check_enabled(bool enabled) noexcept;
[[nodiscard]] bool epoch_check_enabled() noexcept;

/// Barrier-epoch happens-before checker for one OpenMP team.
///
/// One instance checks one algorithm invocation: construct with the team
/// size, attach a shadow per shared array, annotate accesses, and inspect
/// (or throw on) conflicts afterwards.  note_read/note_write are safe to
/// call concurrently from their own thread id; everything else is
/// host-side (outside or between parallel regions).
class EpochChecker {
 public:
  explicit EpochChecker(unsigned threads);

  EpochChecker(const EpochChecker&) = delete;
  EpochChecker& operator=(const EpochChecker&) = delete;

  /// Register a shared array under `name` (appears in diagnostics).
  [[nodiscard]] std::shared_ptr<splitc::ArrayShadow> attach(std::string name);

  // NOLINTBEGIN(bugprone-easily-swappable-parameters): (tid, off, len) is
  // the fixed access-tuple order shared with the Split-C race ledger;
  // declaration-only, so the joint use in the definitions is invisible
  // to SuppressParametersUsedTogether.

  /// Thread `tid` wrote elements [off, off+len) in its current epoch.
  void note_write(splitc::ArrayShadow& shadow, unsigned tid, std::size_t off,
                  std::size_t len);

  /// Thread `tid` read elements [off, off+len) in its current epoch.
  void note_read(splitc::ArrayShadow& shadow, unsigned tid, std::size_t off,
                 std::size_t len);

  // NOLINTEND(bugprone-easily-swappable-parameters)

  /// An `#pragma omp barrier` plus thread `tid`'s epoch bump.  Every
  /// thread of the innermost parallel region must call this (the OpenMP
  /// barrier requires it), keeping all epoch counters in lock-step.
  void epoch_barrier(unsigned tid);

  /// Host-side epoch bump for all threads, for the implied barrier at a
  /// parallel-region boundary (fork/join transitions).  Serial code
  /// between regions records its accesses as thread 0 in the epoch this
  /// call enters.
  void advance_epoch_all() noexcept;

  /// Thread `tid`'s current epoch (starts at 1).
  [[nodiscard]] std::uint64_t epoch(unsigned tid) const noexcept;

  [[nodiscard]] unsigned threads() const noexcept { return threads_; }
  [[nodiscard]] std::uint64_t conflict_count() const noexcept;
  [[nodiscard]] std::uint64_t check_count() const noexcept;
  [[nodiscard]] std::vector<splitc::RaceDiagnostic> diagnostics() const;
  [[nodiscard]] std::string format_report() const;

  /// Throw splitc::RaceLedgerViolation with the full report if any
  /// conflict was recorded.
  void throw_if_conflicts() const;

 private:
  /// Per-thread epoch counter, cache-line padded: epoch_barrier bumps it
  /// from its own thread while peers bump theirs.
  struct PaddedEpoch {
    alignas(64) std::uint64_t value = 1;
  };

  unsigned threads_;
  splitc::RaceLedger ledger_;
  std::vector<PaddedEpoch> epochs_;
};

}  // namespace histcc::omp

#endif  // HISTCC_OMP_EPOCH_CHECK_HPP
