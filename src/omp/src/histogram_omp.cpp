#include "histcc/omp/parallel_host.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#include <memory>

#include "histcc/omp/epoch_check.hpp"
#include "histcc/util/math.hpp"
#include "histcc/util/require.hpp"

namespace histcc::omp {

unsigned backend_threads() noexcept {
#ifdef _OPENMP
  if (tsan_active()) return 1;
  return static_cast<unsigned>(omp_get_max_threads());
#else
  return 1;
#endif
}

std::vector<std::uint32_t> histogram_omp(const img::GreyImage& image,
                                         std::uint32_t k, unsigned threads) {
  HISTCC_REQUIRE(k >= 2 && k <= 256 && util::is_pow2(k),
                 "grey-level count must be a power of two in [2, 256]");
  const auto px = image.pixels();
  // Host-side precondition check up front so the parallel loop is clean.
  for (const auto value : px) {
    HISTCC_REQUIRE(value < k, "pixel value exceeds grey-level count");
  }

  std::vector<std::uint32_t> counts(k, 0);
#ifdef _OPENMP
  // Explicit counts are requests, not guarantees: under TSan they shrink
  // to 1 like backend_threads() does (see tsan_active()).
  const unsigned nt =
      tsan_active() ? 1 : (threads == 0 ? backend_threads() : threads);
  // Flat per-thread tallies: thread t owns [t*k, (t+1)*k).  Epoch
  // structure is the paper's publication discipline verbatim: tally into
  // your own block, barrier, reduce everyone's blocks.
  std::vector<std::uint32_t> partial(static_cast<std::size_t>(nt) * k, 0);

  std::unique_ptr<EpochChecker> chk;
  std::shared_ptr<splitc::ArrayShadow> sh_partial;
  std::shared_ptr<splitc::ArrayShadow> sh_counts;
  if (epoch_check_enabled()) {
    chk = std::make_unique<EpochChecker>(nt);
    sh_partial = chk->attach("omp_hist_partial");
    sh_counts = chk->attach("omp_hist_counts");
  }

#pragma omp parallel num_threads(nt)
  {
    const auto t = static_cast<unsigned>(omp_get_thread_num());
    auto* mine = partial.data() + static_cast<std::size_t>(t) * k;
#pragma omp for schedule(static)
    for (std::int64_t idx = 0; idx < static_cast<std::int64_t>(px.size());
         ++idx) {
      ++mine[px[static_cast<std::size_t>(idx)]];
    }
    // (implied barrier at the end of the omp for)
    if (chk) {
      chk->note_write(*sh_partial, t, static_cast<std::size_t>(t) * k, k);
      chk->epoch_barrier(t);
    }
    // Parallel reduction over grey levels: thread t combines column g of
    // every tally block for its slice of [0, k).  Manual static ranges so
    // the slice is explicit for the epoch annotation.
    const std::uint32_t g_begin = k * t / nt;
    const std::uint32_t g_end = k * (t + 1) / nt;
    for (std::uint32_t g = g_begin; g < g_end; ++g) {
      std::uint32_t sum = 0;
      for (unsigned tt = 0; tt < nt; ++tt) {
        sum += partial[static_cast<std::size_t>(tt) * k + g];
      }
      counts[g] = sum;
    }
    if (chk) {
      chk->note_read(*sh_partial, t, 0, partial.size());
      chk->note_write(*sh_counts, t, g_begin, g_end - g_begin);
    }
  }
  if (chk) chk->throw_if_conflicts();
#else
  (void)threads;
  for (const auto value : px) ++counts[value];
#endif
  return counts;
}

}  // namespace histcc::omp
