#include "histcc/omp/parallel_host.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#include "histcc/util/math.hpp"
#include "histcc/util/require.hpp"

namespace histcc::omp {

unsigned backend_threads() noexcept {
#ifdef _OPENMP
  return static_cast<unsigned>(omp_get_max_threads());
#else
  return 1;
#endif
}

std::vector<std::uint32_t> histogram_omp(const img::GreyImage& image,
                                         std::uint32_t k) {
  HISTCC_REQUIRE(k >= 2 && k <= 256 && util::is_pow2(k),
                 "grey-level count must be a power of two in [2, 256]");
  const auto px = image.pixels();
  // Host-side precondition check up front so the parallel loop is clean.
  for (const auto value : px) {
    HISTCC_REQUIRE(value < k, "pixel value exceeds grey-level count");
  }

  std::vector<std::uint32_t> counts(k, 0);
#ifdef _OPENMP
  const auto threads = backend_threads();
  std::vector<std::vector<std::uint32_t>> partial(
      threads, std::vector<std::uint32_t>(k, 0));
#pragma omp parallel num_threads(threads)
  {
    auto& mine = partial[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(static)
    for (std::int64_t idx = 0; idx < static_cast<std::int64_t>(px.size());
         ++idx) {
      ++mine[px[static_cast<std::size_t>(idx)]];
    }
  }
  for (const auto& mine : partial) {
    for (std::uint32_t g = 0; g < k; ++g) counts[g] += mine[g];
  }
#else
  for (const auto value : px) ++counts[value];
#endif
  return counts;
}

}  // namespace histcc::omp
