#include "histcc/omp/epoch_check.hpp"

#include <atomic>
#include <utility>

#include "histcc/util/require.hpp"

namespace histcc::omp {

namespace {
std::atomic<bool> g_epoch_check_enabled{false};
}  // namespace

void set_epoch_check_enabled(bool enabled) noexcept {
  g_epoch_check_enabled.store(enabled, std::memory_order_relaxed);
}

bool epoch_check_enabled() noexcept {
  return g_epoch_check_enabled.load(std::memory_order_relaxed);
}

EpochChecker::EpochChecker(unsigned threads)
    // All shadows are single-owner (owner 0 = "the shared array"); thread
    // ids play the rank role in the underlying ledger.
    : threads_(threads), ledger_(1), epochs_(threads) {
  HISTCC_REQUIRE(threads >= 1, "EpochChecker needs at least one thread");
}

std::shared_ptr<splitc::ArrayShadow> EpochChecker::attach(std::string name) {
  return ledger_.attach(std::move(name));
}

void EpochChecker::note_write(splitc::ArrayShadow& shadow, unsigned tid,
                              std::size_t off, std::size_t len) {
  ledger_.record(shadow, 0, off, len, tid, epochs_[tid].value,
                 splitc::RaceAccess::kWrite);
}

void EpochChecker::note_read(splitc::ArrayShadow& shadow, unsigned tid,
                             std::size_t off, std::size_t len) {
  ledger_.record(shadow, 0, off, len, tid, epochs_[tid].value,
                 splitc::RaceAccess::kRead);
}

void EpochChecker::epoch_barrier(unsigned tid) {
  // Orphaned barrier: binds to the innermost enclosing parallel region,
  // so every team member synchronizes here before any of them records in
  // the next epoch.  Outside a parallel region (or in a serial build)
  // this is a no-op and the single caller just advances.
#ifdef _OPENMP
#pragma omp barrier
#endif
  epochs_[tid].value += 1;
}

void EpochChecker::advance_epoch_all() noexcept {
  for (auto& e : epochs_) e.value += 1;
}

std::uint64_t EpochChecker::epoch(unsigned tid) const noexcept {
  return epochs_[tid].value;
}

std::uint64_t EpochChecker::conflict_count() const noexcept {
  return ledger_.conflict_count();
}

std::uint64_t EpochChecker::check_count() const noexcept {
  return ledger_.check_count();
}

std::vector<splitc::RaceDiagnostic> EpochChecker::diagnostics() const {
  return ledger_.diagnostics();
}

std::string EpochChecker::format_report() const {
  return ledger_.format_report();
}

void EpochChecker::throw_if_conflicts() const {
  if (ledger_.conflict_count() > 0) {
    throw splitc::RaceLedgerViolation(ledger_.format_report());
  }
}

}  // namespace histcc::omp
