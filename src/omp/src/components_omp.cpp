#include "histcc/omp/parallel_host.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <memory>
#include <vector>

#include "histcc/omp/epoch_check.hpp"
#include "histcc/util/require.hpp"

namespace histcc::omp {
namespace {

/// Union-by-minimum disjoint sets over pixel indices, as in
/// ccseq::DisjointSets but with an additional read-only find for the
/// concurrent resolve pass.
class Forest {
 public:
  explicit Forest(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) {
      parent_[i] = static_cast<std::uint32_t>(i);
    }
  }

  std::uint32_t find(std::uint32_t x) noexcept {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Root lookup without path mutation — safe to call concurrently with
  /// other find_const calls (but not with unite/find).
  [[nodiscard]] std::uint32_t find_const(std::uint32_t x) const noexcept {
    while (parent_[x] != x) x = parent_[x];
    return x;
  }

  void unite(std::uint32_t a, std::uint32_t b) noexcept {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a < b) {
      parent_[b] = a;
    } else {
      parent_[a] = b;
    }
  }

 private:
  std::vector<std::uint32_t> parent_;
};

/// Run the raster-scan union pass over rows [row_begin, row_end), linking
/// each foreground pixel with its already-scanned neighbours.  When
/// `skip_up` is true the first row links only westwards (its upward
/// neighbours belong to another strip and are handled by the serial
/// boundary pass).
void scan_rows(const img::GreyImage& image, Forest& forest,
               std::uint32_t row_begin, std::uint32_t row_end, bool skip_up,
               ccseq::Connectivity conn, ccseq::ColourRule rule) {
  const std::uint32_t cols = image.width();
  const auto px = image.pixels();
  const bool eight = conn == ccseq::Connectivity::kEight;
  const bool same_colour = rule == ccseq::ColourRule::kSameColour;

  for (std::uint32_t i = row_begin; i < row_end; ++i) {
    const bool link_up = i > 0 && !(skip_up && i == row_begin);
    for (std::uint32_t j = 0; j < cols; ++j) {
      const std::size_t idx = static_cast<std::size_t>(i) * cols + j;
      const std::uint8_t colour = px[idx];
      if (colour == 0) continue;
      auto try_union = [&](std::size_t nidx) {
        if (px[nidx] == 0) return;
        if (same_colour && px[nidx] != colour) return;
        forest.unite(static_cast<std::uint32_t>(idx),
                     static_cast<std::uint32_t>(nidx));
      };
      if (j > 0) try_union(idx - 1);
      if (link_up) {
        try_union(idx - cols);
        if (eight) {
          if (j > 0) try_union(idx - cols - 1);
          if (j + 1 < cols) try_union(idx - cols + 1);
        }
      }
    }
  }
}

}  // namespace

img::LabelImage connected_components_omp(const img::GreyImage& image,
                                         ccseq::Connectivity conn,
                                         ccseq::ColourRule rule,
                                         unsigned threads) {
  const std::uint32_t rows = image.height();
  const std::uint32_t cols = image.width();
  img::LabelImage labels(rows, cols);
  if (image.empty()) return labels;

  Forest forest(static_cast<std::size_t>(rows) * cols);

#ifdef _OPENMP
  if (threads == 0) threads = backend_threads();
  // Explicit counts are requests, not guarantees: under TSan they shrink
  // to 1 like backend_threads() does (see tsan_active()).
  if (tsan_active()) threads = 1;
  // Every strip must span at least two rows so pass 1's "first row links
  // westwards only" rule keeps the strips' union-find updates disjoint.
  threads = std::min<unsigned>(threads, std::max(1u, rows / 2));
  std::vector<std::uint32_t> strip_begin(threads + 1);
  for (unsigned t = 0; t <= threads; ++t) {
    strip_begin[t] = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(rows) * t / threads);
  }

  const std::size_t total = static_cast<std::size_t>(rows) * cols;
  std::unique_ptr<EpochChecker> chk;
  std::shared_ptr<splitc::ArrayShadow> sh_parent;
  std::shared_ptr<splitc::ArrayShadow> sh_labels;
  if (epoch_check_enabled()) {
    chk = std::make_unique<EpochChecker>(threads);
    sh_parent = chk->attach("omp_cc_parent");
    sh_labels = chk->attach("omp_cc_labels");
  }

  // Pass 1 (parallel): each thread's unions touch only pixel indices in
  // its own rows, because the strip's first row links westwards only.
#pragma omp parallel num_threads(threads)
  {
    const auto t = static_cast<unsigned>(omp_get_thread_num());
    scan_rows(image, forest, strip_begin[t], strip_begin[t + 1],
              /*skip_up=*/true, conn, rule);
    if (chk) {
      const std::size_t lo = static_cast<std::size_t>(strip_begin[t]) * cols;
      const std::size_t hi =
          static_cast<std::size_t>(strip_begin[t + 1]) * cols;
      chk->note_write(*sh_parent, t, lo, hi - lo);
    }
  }
  // The fork/join boundary is the barrier that publishes the strips.
  if (chk) chk->advance_epoch_all();

  // Pass 2 (serial): stitch the strip boundaries — re-scan just each
  // strip's first row with upward links enabled.
  for (unsigned t = 1; t < threads; ++t) {
    scan_rows(image, forest, strip_begin[t], strip_begin[t] + 1,
              /*skip_up=*/false, conn, rule);
  }
  if (chk) {
    // Boundary unions may relink roots anywhere; recorded as thread 0,
    // alone in its epoch (the other threads are joined).
    chk->note_write(*sh_parent, 0, 0, total);
    chk->advance_epoch_all();
  }

  // Pass 3 (parallel, read-only): resolve every pixel to its root.
  // Manual static ranges (equivalent to schedule(static)) so each
  // thread's label slice is explicit for the epoch annotation.
  const auto px = image.pixels();
  auto out = labels.pixels();
#pragma omp parallel num_threads(threads)
  {
    const auto t = static_cast<unsigned>(omp_get_thread_num());
    const std::size_t lo = total * t / threads;
    const std::size_t hi = total * (t + 1) / threads;
    for (std::size_t i = lo; i < hi; ++i) {
      out[i] = px[i] == 0
                   ? ccseq::kBackgroundLabel
                   : forest.find_const(static_cast<std::uint32_t>(i)) + 1;
    }
    if (chk) {
      chk->note_read(*sh_parent, t, 0, total);
      chk->note_write(*sh_labels, t, lo, hi - lo);
    }
  }
  if (chk) chk->throw_if_conflicts();
#else
  (void)threads;
  scan_rows(image, forest, 0, rows, /*skip_up=*/false, conn, rule);
  const auto px = image.pixels();
  auto out = labels.pixels();
  for (std::size_t idx = 0; idx < px.size(); ++idx) {
    out[idx] = px[idx] == 0 ? ccseq::kBackgroundLabel
                            : forest.find(static_cast<std::uint32_t>(idx)) + 1;
  }
#endif
  return labels;
}

}  // namespace histcc::omp
