// primitives.hpp is header-only (templates); this translation unit
// instantiates the common cases once so errors surface in the library
// build rather than in every consumer.
#include "histcc/bdm/primitives.hpp"

namespace histcc::bdm {

template void transpose<std::uint32_t>(splitc::Proc&,
                                       splitc::Spread<std::uint32_t>&,
                                       splitc::Spread<std::uint32_t>&,
                                       std::size_t);
template void broadcast<std::uint32_t>(splitc::Proc&,
                                       splitc::Spread<std::uint32_t>&,
                                       splitc::Spread<std::uint32_t>&,
                                       splitc::Spread<std::uint32_t>&,
                                       std::size_t);

}  // namespace histcc::bdm
