#ifndef HISTCC_BDM_PRIMITIVES_HPP
#define HISTCC_BDM_PRIMITIVES_HPP

/// \file primitives.hpp
/// The BDM data-movement primitives of Section 2 of the paper.
///
/// * `transpose`            — Algorithm 1: q x p matrix transposition in p
///                            circular prefetch rounds;
///                            Tcomm = tau + (q - q/p).
/// * `truncated_transpose`  — the k < p variant used by histogramming: only
///                            the first k processors receive a row each.
/// * `broadcast`            — Algorithm 2: q elements from processor 0 to
///                            everyone via two transpositions;
///                            Tcomm = 2(tau + q - q/p).
/// * `gather_to_root`       — the circular collection processor P0 performs
///                            to assemble the final histogram.
/// * `scatter_group` /      — the transpose-based distribution of eq. (9)
///   `allgather_group`        used to hand a manager's change list to its
///                            f(i)-1 clients in Tcomm = 2 tau + c - c/f.
///
/// Barrier discipline: `transpose`, `truncated_transpose`, `broadcast`, and
/// `gather_to_root` begin with a global barrier (every processor of the
/// machine must call them) so the source data published by peers is stable.
/// The group primitives are *pull-only* and contain no barriers: they are
/// building blocks for the merge phase, which interleaves groups and places
/// the global barriers itself.  All prefetches inside one primitive form a
/// single pipelined batch (one tau) per the BDM model.

#include <cstddef>
#include <span>

#include "histcc/splitc/machine.hpp"
#include "histcc/splitc/spread.hpp"
#include "histcc/trace/trace.hpp"
#include "histcc/util/math.hpp"
#include "histcc/util/require.hpp"

namespace histcc::bdm {

/// Algorithm 1.  `src` holds a q x p matrix, column i (q elements) on
/// processor i.  After the call, processor i's block of `dst` holds, for
/// each source processor r, the sub-block src[r][i*q/p .. (i+1)*q/p - 1] at
/// offset r*q/p — i.e. rows [i*q/p, (i+1)*q/p) of the original matrix,
/// grouped by source column.  Requires p | q.  Collective.
template <typename T>
void transpose(splitc::Proc& self, splitc::Spread<T>& dst,
               splitc::Spread<T>& src, std::size_t q) {
  const std::uint32_t p = self.nprocs();
  HISTCC_REQUIRE(q % p == 0, "transpose requires p | q");
  // Every block of both arrays is addressed over [0, q), so the bound is
  // on the *smallest* block — uniform and packed spreads alike.
  HISTCC_REQUIRE(src.min_per_proc() >= q,
                 "transpose: source blocks too small for q (Spread '" +
                     src.name() + "')");
  HISTCC_REQUIRE(dst.min_per_proc() >= q,
                 "transpose: destination blocks too small for q (Spread '" +
                     dst.name() + "')");
  const std::size_t blk = q / p;
  const std::uint32_t i = self.rank();
  TRACE_SCOPE(self, "bdm/transpose");

  self.barrier();  // publish src
  auto mine = dst.local(self);
  for (std::uint32_t loop = 0; loop < p; ++loop) {
    const std::uint32_t r = (i + loop) % p;  // circular schedule
    src.prefetch(self, mine.subspan(static_cast<std::size_t>(r) * blk, blk),
                 r, static_cast<std::size_t>(i) * blk, blk);
  }
  dst.note_local_write(self, 0, q);  // race-ledger epoch annotation
  self.sync();
}

/// Truncated transpose for k < p rows (Section 4): processor i < k receives
/// element i of every column, so the k x p matrix ends with one full row on
/// each of the first k processors.  `dst` needs p elements per processor.
/// Collective.
template <typename T>
void truncated_transpose(splitc::Proc& self, splitc::Spread<T>& dst,
                         splitc::Spread<T>& src, std::size_t k) {
  const std::uint32_t p = self.nprocs();
  HISTCC_REQUIRE(k <= p, "truncated transpose requires k <= p");
  HISTCC_REQUIRE(src.min_per_proc() >= k,
                 "truncated transpose: source blocks too small for k "
                 "(Spread '" +
                     src.name() + "')");
  // Only the first k processors receive a row, so only their destination
  // blocks must hold p elements.
  for (std::uint32_t r = 0; r < k; ++r) {
    HISTCC_REQUIRE(dst.block_size(r) >= p,
                   "truncated transpose: destination block too small for p "
                   "(Spread '" +
                       dst.name() + "')");
  }
  const std::uint32_t i = self.rank();
  TRACE_SCOPE(self, "bdm/truncated_transpose");

  self.barrier();  // publish src
  if (i < k) {
    auto mine = dst.local(self);
    for (std::uint32_t loop = 0; loop < p; ++loop) {
      const std::uint32_t r = (i + loop) % p;
      src.prefetch(self, mine.subspan(r, 1), r, i, 1);
    }
    dst.note_local_write(self, 0, p);  // race-ledger epoch annotation
  }
  self.sync();
}

/// Algorithm 2.  Broadcast q elements held in processor 0's block of `src`
/// to every processor's block of `dst`, using two matrix transpositions
/// through `scratch`.  Step 1-2 is a *full* Algorithm 1 transpose (as in
/// the paper — only the block fetched from processor 0 carries valid
/// data); Step 3-4 is the transpose specialised to the first slot of every
/// column, since "at the end of Step 2, only the first q/p elements in
/// each column are valid".  Tcomm = 2(tau + q - q/p), i.e. twice a
/// transpose — which Figures 6-9 confirm experimentally.  Requires p | q
/// and q >= p.  Collective.
template <typename T>
void broadcast(splitc::Proc& self, splitc::Spread<T>& dst,
               splitc::Spread<T>& src, splitc::Spread<T>& scratch,
               std::size_t q) {
  const std::uint32_t p = self.nprocs();
  HISTCC_REQUIRE(q % p == 0 && q >= p, "broadcast requires p | q and q >= p");
  HISTCC_REQUIRE(src.min_per_proc() >= q,
                 "broadcast: source blocks too small for q (Spread '" +
                     src.name() + "')");
  HISTCC_REQUIRE(dst.min_per_proc() >= q,
                 "broadcast: destination blocks too small for q (Spread '" +
                     dst.name() + "')");
  HISTCC_REQUIRE(scratch.min_per_proc() >= q,
                 "broadcast: scratch blocks too small for q (Spread '" +
                     scratch.name() + "')");
  const std::size_t blk = q / p;
  const std::uint32_t i = self.rank();
  TRACE_SCOPE(self, "bdm/broadcast");

  // Step 1-2: full matrix transposition (includes the barrier publishing
  // src).  scratch[i][0 .. blk) now holds src[0][i*blk .. (i+1)*blk).
  transpose(self, scratch, src, q);

  // Step 3-4: second transposition, specialised to the first slot of every
  // column: processor i prefetches scratch[r][0 .. blk) into
  // dst[i][r*blk ...).
  self.barrier();  // publish scratch
  {
    auto mine = dst.local(self);
    for (std::uint32_t loop = 0; loop < p; ++loop) {
      const std::uint32_t r = (i + loop) % p;
      scratch.prefetch(self, mine.subspan(static_cast<std::size_t>(r) * blk, blk),
                       r, 0, blk);
    }
    dst.note_local_write(self, 0, q);  // race-ledger epoch annotation
    self.sync();
  }
}

/// Circular collection: the root prefetches `per_block` elements from the
/// first `nblocks` processors' blocks of `src` (at offset src_off, all p
/// processors when nblocks == 0) and concatenates them into its own block
/// of `dst` in rank order.  Used by histogramming to assemble H[0..k-1] on
/// P0 — nblocks = k when k < p.  Collective.
template <typename T>
void gather_to_root(splitc::Proc& self, splitc::Spread<T>& dst,
                    splitc::Spread<T>& src, std::size_t per_block,
                    std::size_t src_off = 0, std::uint32_t root = 0,
                    std::uint32_t nblocks = 0) {
  const std::uint32_t p = self.nprocs();
  if (nblocks == 0) nblocks = p;
  HISTCC_REQUIRE(root < p, "root out of range");
  HISTCC_REQUIRE(nblocks <= p, "more blocks than processors");
  // Only the first `nblocks` source blocks are read, and only the root's
  // destination block is written — per-rank bounds, not a uniform stride.
  for (std::uint32_t r = 0; r < nblocks; ++r) {
    HISTCC_REQUIRE(src.block_size(r) >= src_off + per_block,
                   "gather_to_root: source block too small (Spread '" +
                       src.name() + "')");
  }
  HISTCC_REQUIRE(dst.block_size(root) >= per_block * nblocks,
                 "gather_to_root: destination block too small on root "
                 "(Spread '" +
                     dst.name() + "')");

  TRACE_SCOPE(self, "bdm/gather_to_root");
  self.barrier();  // publish src
  if (self.rank() == root) {
    auto mine = dst.local(self);
    for (std::uint32_t loop = 0; loop < nblocks; ++loop) {
      const std::uint32_t r = (root + loop) % nblocks;
      src.prefetch(self, mine.subspan(static_cast<std::size_t>(r) * per_block,
                                      per_block),
                   r, src_off, per_block);
    }
    // race-ledger epoch annotation
    dst.note_local_write(self, 0, per_block * nblocks);
  }
  self.sync();
}

/// Phase 1 of the eq. (9) distribution: each of the f group members pulls
/// its 1/f slice of the root's c-element list into the front of its own
/// block of `stage`.  `members` lists the group's ranks; `my_index` is the
/// caller's position in it; `root_index` the root's.  The caller must have
/// crossed a barrier after the root published `data`.  Pull-only.
/// Returns the size of the slice this member now stages.
template <typename T>
std::size_t scatter_group(splitc::Proc& self,
                          std::span<const std::uint32_t> members,
                          std::size_t my_index, std::size_t root_index,
                          splitc::SpreadVec<T>& data,
                          splitc::SpreadVec<T>& stage) {
  const std::size_t f = members.size();
  HISTCC_REQUIRE(f >= 1 && my_index < f && root_index < f,
                 "bad group description");
  TRACE_SCOPE(self, "bdm/scatter_group");
  const std::uint32_t root = members[root_index];
  const std::size_t c = data.size_of(self, root);
  const std::size_t base = c / f;
  const std::size_t extra = c % f;
  // Slice s gets base (+1 for the first `extra` slices) elements.
  const std::size_t my_len = base + (my_index < extra ? 1 : 0);
  const std::size_t my_off =
      my_index * base + std::min<std::size_t>(my_index, extra);

  auto& mine = stage.local(self);
  mine.resize(my_len);
  data.prefetch(self, std::span<T>(mine), root, my_off, my_len);
  stage.note_local_write(self);  // race-ledger epoch annotation
  self.sync();
  return my_len;
}

/// Phase 2 of the eq. (9) distribution: every member pulls every member's
/// staged slice (circular order) and reassembles the full c-element list in
/// `out`.  The caller must have crossed a barrier after scatter_group.
/// Pull-only.
template <typename T>
void allgather_group(splitc::Proc& self,
                     std::span<const std::uint32_t> members,
                     std::size_t my_index, std::size_t total,
                     splitc::SpreadVec<T>& stage, std::vector<T>& out) {
  const std::size_t f = members.size();
  HISTCC_REQUIRE(f >= 1 && my_index < f, "bad group description");
  TRACE_SCOPE(self, "bdm/allgather_group");
  const std::size_t base = total / f;
  const std::size_t extra = total % f;
  out.resize(total);
  for (std::size_t loop = 0; loop < f; ++loop) {
    const std::size_t s = (my_index + loop) % f;
    const std::size_t len = base + (s < extra ? 1 : 0);
    const std::size_t off = s * base + std::min<std::size_t>(s, extra);
    stage.prefetch(self, std::span<T>(out).subspan(off, len), members[s], 0,
                   len);
  }
  self.sync();
}

}  // namespace histcc::bdm

#endif  // HISTCC_BDM_PRIMITIVES_HPP
