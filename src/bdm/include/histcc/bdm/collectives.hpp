#ifndef HISTCC_BDM_COLLECTIVES_HPP
#define HISTCC_BDM_COLLECTIVES_HPP

/// \file collectives.hpp
/// Reduction-style collectives in the BDM model.
///
/// The paper's two algorithms only need transpose / broadcast / gather
/// (primitives.hpp), but the BDM framework it builds on (JaJa & Ryu [21],
/// [22]) defines the full family; these are the members the library's
/// applications and extensions use:
///
/// * `reduce_to_root` — elementwise combine of every processor's block on
///   one processor, by circular prefetch; Tcomm = tau + (p-1)·count.
/// * `allreduce`      — transpose-style: processor i combines slice i of
///   every block, then everyone collects the combined slices;
///   Tcomm = 2(tau + count - count/p), the same volume as Algorithm 2.
/// * `exscan`         — exclusive prefix over one scalar per processor
///   (processor i receives op over ranks < i); Tcomm = tau + p - 1.
/// * `all_to_all`     — personalized exchange: slice j of processor i's
///   block lands at slice i of processor j's block.  This *is* the matrix
///   transpose of Algorithm 1 viewed per-processor; provided under its
///   conventional name.
///
/// All are collective over the whole machine and pull-based, with the
/// same barrier discipline as primitives.hpp (a leading barrier publishes
/// the source).

#include <cstddef>

#include "histcc/bdm/primitives.hpp"

namespace histcc::bdm {

/// Elementwise `op`-combine of each processor's `count`-element block of
/// `src` into the root's block of `dst`.  Collective.
template <typename T, typename Op>
void reduce_to_root(splitc::Proc& self, splitc::Spread<T>& dst,
                    splitc::Spread<T>& src, std::size_t count, Op op,
                    std::uint32_t root = 0) {
  const std::uint32_t p = self.nprocs();
  HISTCC_REQUIRE(root < p, "root out of range");
  // Every source block is read over [0, count); only the root's
  // destination block is written.
  HISTCC_REQUIRE(src.min_per_proc() >= count,
                 "reduce_to_root: source blocks too small (Spread '" +
                     src.name() + "')");
  HISTCC_REQUIRE(dst.block_size(root) >= count,
                 "reduce_to_root: destination block too small on root "
                 "(Spread '" +
                     dst.name() + "')");
  TRACE_SCOPE(self, "bdm/reduce_to_root");
  self.barrier();  // publish src
  if (self.rank() == root) {
    auto acc = dst.local(self);
    src.prefetch(self, acc.subspan(0, count), root, 0, count);
    std::vector<T> chunk(count);
    for (std::uint32_t loop = 1; loop < p; ++loop) {
      const std::uint32_t r = (root + loop) % p;
      src.prefetch(self, chunk, r, 0, count);
      for (std::size_t e = 0; e < count; ++e) {
        acc[e] = op(acc[e], chunk[e]);
      }
    }
    dst.note_local_write(self, 0, count);  // race-ledger epoch annotation
    self.charge_ops(static_cast<std::uint64_t>(p - 1) * count);
  }
  self.sync();
}

/// Elementwise `op`-combine of all blocks, result replicated everywhere.
/// Requires p | count.  Collective.
template <typename T, typename Op>
void allreduce(splitc::Proc& self, splitc::Spread<T>& dst,
               splitc::Spread<T>& src, splitc::Spread<T>& scratch,
               std::size_t count, Op op) {
  const std::uint32_t p = self.nprocs();
  HISTCC_REQUIRE(count % p == 0, "allreduce requires p | count");
  HISTCC_REQUIRE(src.min_per_proc() >= count,
                 "allreduce: source blocks too small (Spread '" +
                     src.name() + "')");
  HISTCC_REQUIRE(dst.min_per_proc() >= count,
                 "allreduce: destination blocks too small (Spread '" +
                     dst.name() + "')");
  HISTCC_REQUIRE(scratch.min_per_proc() >= count / p,
                 "allreduce: scratch blocks too small (Spread '" +
                     scratch.name() + "')");
  const std::size_t blk = count / p;
  const std::uint32_t i = self.rank();
  TRACE_SCOPE(self, "bdm/allreduce");

  // Phase 1 (transpose-shaped): I combine slice i of every processor's
  // block into my block of `scratch`.
  self.barrier();  // publish src
  {
    auto acc = scratch.local(self);
    src.prefetch(self, acc.subspan(0, blk), i,
                 static_cast<std::size_t>(i) * blk, blk);
    std::vector<T> chunk(blk);
    for (std::uint32_t loop = 1; loop < p; ++loop) {
      const std::uint32_t r = (i + loop) % p;
      src.prefetch(self, chunk, r, static_cast<std::size_t>(i) * blk, blk);
      for (std::size_t e = 0; e < blk; ++e) {
        acc[e] = op(acc[e], chunk[e]);
      }
    }
    scratch.note_local_write(self, 0, blk);  // race-ledger epoch annotation
    self.sync();
    self.charge_ops(static_cast<std::uint64_t>(p - 1) * blk);
  }
  // Phase 2: everyone collects every combined slice (the specialised
  // second transpose of Algorithm 2).
  self.barrier();  // publish scratch
  {
    auto mine = dst.local(self);
    for (std::uint32_t loop = 0; loop < p; ++loop) {
      const std::uint32_t r = (i + loop) % p;
      scratch.prefetch(self, mine.subspan(static_cast<std::size_t>(r) * blk, blk),
                       r, 0, blk);
    }
    dst.note_local_write(self, 0, count);  // race-ledger epoch annotation
    self.sync();
  }
}

/// Exclusive prefix of one scalar per processor: returns op over the
/// values of all ranks < mine (T{} identity for rank 0).  `slots` must be
/// a Spread with at least one element per processor.  Collective.
template <typename T, typename Op>
T exscan(splitc::Proc& self, splitc::Spread<T>& slots, T my_value, Op op) {
  HISTCC_REQUIRE(slots.min_per_proc() >= 1,
                 "exscan: spread blocks too small (Spread '" + slots.name() +
                     "')");
  TRACE_SCOPE(self, "bdm/exscan");
  slots.local(self)[0] = my_value;
  slots.note_local_write(self, 0, 1);  // race-ledger epoch annotation
  self.barrier();  // publish values
  T acc{};
  for (std::uint32_t r = 0; r < self.rank(); ++r) {
    acc = op(acc, slots.get(self, r, 0));
  }
  self.sync();
  self.charge_ops(self.rank());
  return acc;
}

/// Personalized all-to-all exchange: slice j of processor i's block of
/// `src` becomes slice i of processor j's block of `dst`, slices being
/// `slice` elements.  Exactly Algorithm 1 with q = p * slice.  Collective.
template <typename T>
void all_to_all(splitc::Proc& self, splitc::Spread<T>& dst,
                splitc::Spread<T>& src, std::size_t slice) {
  TRACE_SCOPE(self, "bdm/all_to_all");
  transpose(self, dst, src, static_cast<std::size_t>(self.nprocs()) * slice);
}

}  // namespace histcc::bdm

#endif  // HISTCC_BDM_COLLECTIVES_HPP
