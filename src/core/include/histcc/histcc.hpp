#ifndef HISTCC_HISTCC_HPP
#define HISTCC_HISTCC_HPP

/// \file histcc.hpp
/// Umbrella header and convenience API for the histcc library — a faithful
/// reproduction of Bader & JaJa, "Parallel Algorithms for Image
/// Histogramming and Connected Components with an Experimental Study"
/// (PPoPP 1995).
///
/// Layers (each usable on its own):
///   histcc/splitc/*   — SPMD runtime: virtual distributed-memory machine,
///                       split-phase transfers, BDM cost accounting
///   histcc/bdm/*      — transpose / broadcast / gather primitives
///   histcc/sortutil/* — the paper's radix + hybrid sorting kernels
///   histcc/image/*    — images, tile layout, test-image generators, I/O
///   histcc/cc_seq/*   — sequential labelers and labeling analysis
///   histcc/hist/*     — sequential + parallel histogramming, equalization
///   histcc/cc/*       — the parallel CC algorithm and baselines
///   histcc/morph/*    — binary morphology (halo-exchange stencils)
///   histcc/omp/*      — shared-memory (OpenMP) host implementations
///   histcc/serve/*    — multi-tenant job pipeline: machine pool, bounded
///                       queue, async jobs with deadlines (docs/serving.md)
///
/// The `histcc::` functions below are the one-call entry points most
/// applications want: construct a `Machine` with the desired virtual
/// processor count, then histogram / label host images directly.

#include "histcc/bdm/collectives.hpp"
#include "histcc/bdm/primitives.hpp"
#include "histcc/cc/border_graph.hpp"
#include "histcc/cc/hooks.hpp"
#include "histcc/cc/label_prop.hpp"
#include "histcc/cc/merge_schedule.hpp"
#include "histcc/cc/parallel_cc.hpp"
#include "histcc/cc/region_graph.hpp"
#include "histcc/cc/replicated.hpp"
#include "histcc/cc/stats_parallel.hpp"
#include "histcc/cc_seq/analysis.hpp"
#include "histcc/cc_seq/bfs_label.hpp"
#include "histcc/cc_seq/hoshen_kopelman.hpp"
#include "histcc/cc_seq/union_find.hpp"
#include "histcc/hist/equalize.hpp"
#include "histcc/hist/histogram.hpp"
#include "histcc/image/generators.hpp"
#include "histcc/image/image.hpp"
#include "histcc/image/layout.hpp"
#include "histcc/image/halo.hpp"
#include "histcc/image/pgm_io.hpp"
#include "histcc/morph/morphology.hpp"
#include "histcc/omp/parallel_host.hpp"
#include "histcc/serve/job.hpp"
#include "histcc/serve/job_queue.hpp"
#include "histcc/serve/machine_pool.hpp"
#include "histcc/serve/metrics.hpp"
#include "histcc/serve/pipeline.hpp"
#include "histcc/sortutil/radix.hpp"
#include "histcc/splitc/machine.hpp"
#include "histcc/splitc/profile.hpp"
#include "histcc/splitc/spread.hpp"
#include "histcc/trace/export.hpp"
#include "histcc/trace/trace.hpp"
#include "histcc/util/math.hpp"
#include "histcc/util/rng.hpp"
#include "histcc/util/timer.hpp"

namespace histcc {

/// Library version string ("major.minor.patch").
[[nodiscard]] const char* version() noexcept;

/// Histogram `image` (k grey levels) on a p-processor virtual machine.
[[nodiscard]] std::vector<std::uint32_t> histogram(const img::GreyImage& image,
                                                   std::uint32_t k,
                                                   std::uint32_t nprocs);

/// Label the connected components of `image` on a p-processor virtual
/// machine with the paper's algorithm.
[[nodiscard]] img::LabelImage connected_components(
    const img::GreyImage& image, std::uint32_t nprocs,
    const cc::CcOptions& options = {});

}  // namespace histcc

#endif  // HISTCC_HISTCC_HPP
