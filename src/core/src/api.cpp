#include "histcc/histcc.hpp"

namespace histcc {

std::vector<std::uint32_t> histogram(const img::GreyImage& image,
                                     std::uint32_t k, std::uint32_t nprocs) {
  splitc::Machine machine(nprocs);
  return hist::histogram_parallel(machine, image, k);
}

img::LabelImage connected_components(const img::GreyImage& image,
                                     std::uint32_t nprocs,
                                     const cc::CcOptions& options) {
  splitc::Machine machine(nprocs);
  return cc::connected_components_parallel(machine, image, options);
}

}  // namespace histcc
