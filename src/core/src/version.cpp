#include "histcc/histcc.hpp"

namespace histcc {

const char* version() noexcept { return "1.0.0"; }

}  // namespace histcc
