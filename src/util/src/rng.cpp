#include "histcc/util/rng.hpp"

namespace histcc::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  for (auto& s : state_) {
    s = splitmix64(seed);
  }
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() noexcept {
  // 53 high-quality bits into the mantissa.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double prob) noexcept {
  if (prob <= 0.0) return false;
  if (prob >= 1.0) return true;
  return next_double() < prob;
}

}  // namespace histcc::util
