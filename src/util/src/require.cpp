#include "histcc/util/require.hpp"

namespace histcc::util {

void throw_contract_error(const char* condition, const char* func,
                          const std::string& detail) {
  std::string msg = "histcc: requirement `";
  msg += condition;
  msg += "` violated in ";
  msg += func;
  if (!detail.empty()) {
    msg += ": ";
    msg += detail;
  }
  throw contract_error(msg);
}

}  // namespace histcc::util
