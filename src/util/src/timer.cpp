// timer.hpp is header-only; this translation unit exists so histcc_util is a
// normal static library and the headers get compiled at least once.
#include "histcc/util/timer.hpp"

namespace histcc::util {

static_assert(sizeof(Timer) > 0);
static_assert(sizeof(PhaseTimer) > 0);

}  // namespace histcc::util
