#ifndef HISTCC_UTIL_REQUIRE_HPP
#define HISTCC_UTIL_REQUIRE_HPP

/// \file require.hpp
/// Contract checking for the public API boundary.
///
/// Public entry points validate their preconditions with HISTCC_REQUIRE,
/// which throws std::invalid_argument with a message naming the violated
/// condition.  Internal hot paths use HISTCC_ASSERT, which compiles away
/// in release builds (NDEBUG).

#include <stdexcept>
#include <string>

namespace histcc::util {

/// Thrown when a documented precondition of a public API is violated.
class contract_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Implementation detail of HISTCC_REQUIRE: builds the message and throws.
[[noreturn]] void throw_contract_error(const char* condition, const char* func,
                                       const std::string& detail);

}  // namespace histcc::util

/// Validate a precondition at a public API boundary; throws contract_error.
#define HISTCC_REQUIRE(cond, detail)                                     \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::histcc::util::throw_contract_error(#cond, __func__, (detail));   \
    }                                                                    \
  } while (false)

/// Internal invariant check; disabled when NDEBUG is defined.
#ifdef NDEBUG
#define HISTCC_ASSERT(cond) ((void)0)
#else
#define HISTCC_ASSERT(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::histcc::util::throw_contract_error(#cond, __func__,              \
                                           "internal invariant");        \
    }                                                                    \
  } while (false)
#endif

#endif  // HISTCC_UTIL_REQUIRE_HPP
