#ifndef HISTCC_UTIL_RNG_HPP
#define HISTCC_UTIL_RNG_HPP

/// \file rng.hpp
/// Deterministic, seedable pseudo-random generator (splitmix64 +
/// xoshiro256**).  Used by the image generators and the randomized tests so
/// that every experiment in EXPERIMENTS.md is exactly reproducible; we do
/// not use std::mt19937 because its distributions are not guaranteed to be
/// identical across standard library implementations.

#include <cstdint>

namespace histcc::util {

/// xoshiro256** seeded via splitmix64; passes BigCrush, tiny state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform value in [0, bound) using Lemire's unbiased multiply-shift
  /// rejection method.  bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Bernoulli trial with probability prob (clamped to [0,1]).
  bool next_bool(double prob) noexcept;

 private:
  std::uint64_t state_[4];
};

}  // namespace histcc::util

#endif  // HISTCC_UTIL_RNG_HPP
