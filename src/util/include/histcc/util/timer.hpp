#ifndef HISTCC_UTIL_TIMER_HPP
#define HISTCC_UTIL_TIMER_HPP

/// \file timer.hpp
/// Monotonic wall-clock timer used by the benchmark harness to report the
/// per-phase execution times the paper plots (computation time vs
/// communication time).

#include <chrono>
#include <cstdint>

namespace histcc::util {

/// Simple monotonic stopwatch.
class Timer {
 public:
  /// Public so users can assert the monotonicity this header promises
  /// (the bench harness static_asserts clock::is_steady).
  using clock = std::chrono::steady_clock;

  Timer() noexcept : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed nanoseconds since construction or last reset().
  [[nodiscard]] std::int64_t nanoseconds() const noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                start_)
        .count();
  }

 private:
  clock::time_point start_;
};

/// Accumulates time across start/stop intervals; used to split an
/// algorithm's run into the paper's Tcomp / Tcomm buckets.
class PhaseTimer {
 public:
  using clock = std::chrono::steady_clock;

  void start() noexcept { mark_ = clock::now(); }
  void stop() noexcept {
    total_ += std::chrono::duration<double>(clock::now() - mark_).count();
  }
  [[nodiscard]] double seconds() const noexcept { return total_; }
  void reset() noexcept { total_ = 0.0; }

 private:
  clock::time_point mark_{};
  double total_ = 0.0;
};

}  // namespace histcc::util

#endif  // HISTCC_UTIL_TIMER_HPP
