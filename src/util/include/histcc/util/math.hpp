#ifndef HISTCC_UTIL_MATH_HPP
#define HISTCC_UTIL_MATH_HPP

/// \file math.hpp
/// Small integer helpers used throughout the library.  The paper assumes
/// power-of-two processor counts, grey-level counts, and image sides; these
/// helpers make those assumptions explicit and checkable.

#include <bit>
#include <concepts>
#include <cstdint>

namespace histcc::util {

/// True iff x is a power of two (x > 0).
template <std::unsigned_integral T>
[[nodiscard]] constexpr bool is_pow2(T x) noexcept {
  return std::has_single_bit(x);
}

/// floor(log2(x)) for x > 0.
template <std::unsigned_integral T>
[[nodiscard]] constexpr unsigned log2_floor(T x) noexcept {
  return static_cast<unsigned>(std::bit_width(x) - 1);
}

/// Exact log2 of a power of two.
template <std::unsigned_integral T>
[[nodiscard]] constexpr unsigned log2_exact(T x) noexcept {
  return log2_floor(x);
}

/// ceil(a / b) for b > 0.
template <std::unsigned_integral T>
[[nodiscard]] constexpr T ceil_div(T a, T b) noexcept {
  return (a + b - 1) / b;
}

/// Round x up to the next power of two (x > 0).
template <std::unsigned_integral T>
[[nodiscard]] constexpr T next_pow2(T x) noexcept {
  return std::bit_ceil(x);
}

/// The paper's logical processor grid (Section 3): for p = 2^d processors,
/// v = 2^floor(d/2) rows and w = 2^ceil(d/2) columns, so v*w = p and w >= v.
struct GridShape {
  std::uint32_t rows;  ///< v: number of rows of the logical processor grid
  std::uint32_t cols;  ///< w: number of columns of the logical processor grid
};

/// Compute the v x w logical grid for a power-of-two processor count.
[[nodiscard]] constexpr GridShape grid_shape(std::uint32_t p) noexcept {
  const unsigned d = log2_exact(p);
  const std::uint32_t v = std::uint32_t{1} << (d / 2);
  const std::uint32_t w = std::uint32_t{1} << (d - d / 2);
  return GridShape{v, w};
}

}  // namespace histcc::util

#endif  // HISTCC_UTIL_MATH_HPP
