#ifndef HISTCC_IMAGE_PGM_IO_HPP
#define HISTCC_IMAGE_PGM_IO_HPP

/// \file pgm_io.hpp
/// Minimal Netpbm I/O so examples can persist inputs and labelings.
///
/// * `write_pgm` / `read_pgm` — binary PGM (P5), 8-bit, for grey images.
/// * `write_label_ppm`        — binary PPM (P6) false-colour rendering of a
///                              labeling (hashed label -> RGB), background
///                              black; handy for eyeballing CC output.

#include <iosfwd>
#include <string>

#include "histcc/image/image.hpp"

namespace histcc::img {

/// Write `image` as binary PGM (P5) with maxval 255.
void write_pgm(std::ostream& out, const GreyImage& image);
void write_pgm_file(const std::string& path, const GreyImage& image);

/// Read a binary (P5) or ASCII (P2) PGM with maxval <= 255.
/// Throws util::contract_error on malformed input.
[[nodiscard]] GreyImage read_pgm(std::istream& in);
[[nodiscard]] GreyImage read_pgm_file(const std::string& path);

/// Write a false-colour PPM (P6) of a labeling: label 0 maps to black,
/// every other label to a deterministic pseudo-random colour.
void write_label_ppm(std::ostream& out, const LabelImage& labels);
void write_label_ppm_file(const std::string& path, const LabelImage& labels);

}  // namespace histcc::img

#endif  // HISTCC_IMAGE_PGM_IO_HPP
