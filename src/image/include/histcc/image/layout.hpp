#ifndef HISTCC_IMAGE_LAYOUT_HPP
#define HISTCC_IMAGE_LAYOUT_HPP

/// \file layout.hpp
/// The paper's data layout (Section 3): an n x n image is cut into p tiles
/// assigned to a v x w logical processor grid in row-major order, with
/// v = 2^floor(d/2), w = 2^ceil(d/2) for p = 2^d.  Each processor owns a
/// q x r tile, q = n/v rows and r = n/w columns.
///
/// `TileLayout` holds the arithmetic; `scatter`/`gather` move whole images
/// between host memory and the distributed `Spread` representation used by
/// the SPMD algorithms (tile pixels stored row-major within each block).

#include <cstdint>

#include "histcc/image/image.hpp"
#include "histcc/splitc/machine.hpp"
#include "histcc/splitc/spread.hpp"
#include "histcc/util/math.hpp"
#include "histcc/util/require.hpp"

namespace histcc::img {

/// Tile geometry for an n x n image on p processors.
class TileLayout {
 public:
  /// \param n image side; \param p processor count (power of two).
  /// Requires v | n and w | n, i.e. n a multiple of w (the larger grid
  /// dimension), as the paper assumes.
  // NOLINTNEXTLINE(bugprone-easily-swappable-parameters): (n, p) is the
  // paper's fixed problem-size order; n and p never meet in one expression.
  TileLayout(std::uint32_t n, std::uint32_t p)
      : n_(n), p_(p), grid_(util::grid_shape(p)) {
    HISTCC_REQUIRE(n > 0, "image side must be positive");
    HISTCC_REQUIRE(util::is_pow2(p), "processor count must be a power of two");
    HISTCC_REQUIRE(n % grid_.rows == 0 && n % grid_.cols == 0,
                   "image side must be divisible by both grid dimensions");
    q_ = n / grid_.rows;
    r_ = n / grid_.cols;
  }

  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t nprocs() const noexcept { return p_; }
  /// v: rows of the logical processor grid.
  [[nodiscard]] std::uint32_t grid_rows() const noexcept { return grid_.rows; }
  /// w: columns of the logical processor grid.
  [[nodiscard]] std::uint32_t grid_cols() const noexcept { return grid_.cols; }
  /// q = n/v: rows per tile.
  [[nodiscard]] std::uint32_t tile_rows() const noexcept { return q_; }
  /// r = n/w: columns per tile.
  [[nodiscard]] std::uint32_t tile_cols() const noexcept { return r_; }
  /// Pixels per tile (the Spread block size).
  [[nodiscard]] std::size_t tile_size() const noexcept {
    return static_cast<std::size_t>(q_) * r_;
  }

  /// Logical grid row I of processor `rank` (row-major assignment).
  [[nodiscard]] std::uint32_t proc_row(std::uint32_t rank) const noexcept {
    return rank / grid_.cols;
  }
  /// Logical grid column J of processor `rank`.
  [[nodiscard]] std::uint32_t proc_col(std::uint32_t rank) const noexcept {
    return rank % grid_.cols;
  }
  /// Rank of the processor at logical grid position (I, J).
  [[nodiscard]] std::uint32_t rank_at(std::uint32_t grid_row,
                                      std::uint32_t grid_col) const noexcept {
    return grid_row * grid_.cols + grid_col;
  }

  /// Global image row of local row i on processor `rank`.
  [[nodiscard]] std::uint32_t global_row(std::uint32_t rank,
                                         std::uint32_t i) const noexcept {
    return proc_row(rank) * q_ + i;
  }
  /// Global image column of local column j on processor `rank`.
  [[nodiscard]] std::uint32_t global_col(std::uint32_t rank,
                                         std::uint32_t j) const noexcept {
    return proc_col(rank) * r_ + j;
  }

  /// The paper's globally unique initial label of local pixel (i, j) on
  /// processor `rank`: (I*q + i)*n + (J*r + j) + 1 (Section 5.1).
  [[nodiscard]] std::uint32_t initial_label(std::uint32_t rank,
                                            std::uint32_t i,
                                            std::uint32_t j) const noexcept {
    return global_row(rank, i) * n_ + global_col(rank, j) + 1;
  }

  /// Cut a host image into tiles, one Spread block per processor, pixels
  /// row-major within the tile.
  template <typename T>
  void scatter(const Image<T>& image, splitc::Spread<T>& out) const {
    HISTCC_REQUIRE(image.height() == n_ && image.width() == n_,
                   "image shape does not match layout");
    HISTCC_REQUIRE(out.per_proc() >= tile_size() && out.nprocs() == p_,
                   "spread does not match layout");
    for (std::uint32_t rank = 0; rank < p_; ++rank) {
      auto block = out.block(rank);
      for (std::uint32_t i = 0; i < q_; ++i) {
        for (std::uint32_t j = 0; j < r_; ++j) {
          block[static_cast<std::size_t>(i) * r_ + j] =
              image(global_row(rank, i), global_col(rank, j));
        }
      }
    }
  }

  /// Reassemble a host image from tiles.
  template <typename T>
  [[nodiscard]] Image<T> gather(const splitc::Spread<T>& in) const {
    HISTCC_REQUIRE(in.per_proc() >= tile_size() && in.nprocs() == p_,
                   "spread does not match layout");
    Image<T> image(n_, n_);
    for (std::uint32_t rank = 0; rank < p_; ++rank) {
      auto block = in.block(rank);
      for (std::uint32_t i = 0; i < q_; ++i) {
        for (std::uint32_t j = 0; j < r_; ++j) {
          image(global_row(rank, i), global_col(rank, j)) =
              block[static_cast<std::size_t>(i) * r_ + j];
        }
      }
    }
    return image;
  }

 private:
  std::uint32_t n_;
  std::uint32_t p_;
  util::GridShape grid_;
  std::uint32_t q_ = 0;
  std::uint32_t r_ = 0;
};

}  // namespace histcc::img

#endif  // HISTCC_IMAGE_LAYOUT_HPP
