#ifndef HISTCC_IMAGE_LAYOUT_HPP
#define HISTCC_IMAGE_LAYOUT_HPP

/// \file layout.hpp
/// The paper's data layout (Section 3), generalized to ragged H x W
/// images.  The image is cut into p tiles assigned to a v x w logical
/// processor grid in row-major order, with v = 2^floor(d/2),
/// w = 2^ceil(d/2) for p = 2^d.
///
/// Where the paper assumes n x n with v | n and w | n (every tile exactly
/// q x r), this layout ceil-partitions both axes: grid row I owns global
/// rows [I*qmax, min((I+1)*qmax, H)) with qmax = ceil(H/v), and grid
/// column J owns global columns [J*rmax, min((J+1)*rmax, W)) with
/// rmax = ceil(W/w).  Interior processors own full qmax x rmax tiles;
/// processors on the trailing grid row/column own the (possibly smaller)
/// remainder, down to *zero* rows or columns when the grid outnumbers the
/// pixels (e.g. a 1000 x 3 image on a 4 x 4 grid leaves grid column 3
/// empty).  Two invariants follow from the ceil partition and hold
/// everywhere downstream:
///
///   1. If grid row I is non-empty, every grid row before it is full
///      (qmax rows) — empty rows/columns only trail.  In particular rank
///      0 always owns the largest tile, so max_tile_size() ==
///      tile_size(0).
///   2. Tiles in one grid row share tile_rows and tiles in one grid
///      column share tile_cols, so the two sides of any tile border have
///      equal length and facing halo lines match.
///
/// `TileLayout` holds the arithmetic; `scatter`/`gather` move whole
/// images between host memory and the distributed `Spread` representation
/// used by the SPMD algorithms (tile pixels stored row-major within each
/// block).
///
/// Spread contract: a Spread backing this layout must hold at least
/// `tile_size(rank)` elements on every rank — `spread_fits()` is the
/// check.  Packed arrays (`Spread(machine, layout.tile_sizes(), ...)`
/// under SpreadLayout::kPacked) meet it exactly; strided arrays pad every
/// block to `max_tile_size()` (the PR-5 uniform contract) and each rank
/// only uses the first tile_size(rank) elements.  `tile_offset(rank)` is
/// the prefix sum of tile sizes — the rank's position in a packed
/// whole-image enumeration.  Blocks of empty tiles stay value-initialized
/// (all zero = background), which is what the algorithms rely on when
/// they skip work on empty ranks.  See docs/layout.md.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "histcc/image/image.hpp"
#include "histcc/splitc/machine.hpp"
#include "histcc/splitc/spread.hpp"
#include "histcc/util/math.hpp"
#include "histcc/util/require.hpp"

namespace histcc::img {

/// Tile geometry for an H x W image on p processors.
class TileLayout {
 public:
  /// \param height image rows (> 0); \param width image columns (> 0);
  /// \param p processor count (power of two).  Any rectangular shape is
  /// accepted; edge tiles shrink (possibly to empty) instead of the
  /// paper's divisibility requirement.
  // NOLINTNEXTLINE(bugprone-easily-swappable-parameters): (height, width,
  // p) is the fixed problem-size order used across the library; the
  // definition never combines them in one expression.
  TileLayout(std::uint32_t height, std::uint32_t width, std::uint32_t p)
      : height_(height), width_(width), p_(p), grid_(util::grid_shape(p)) {
    HISTCC_REQUIRE(height > 0 && width > 0, "image must be non-empty");
    HISTCC_REQUIRE(util::is_pow2(p), "processor count must be a power of two");
    qmax_ = util::ceil_div(height, grid_.rows);
    rmax_ = util::ceil_div(width, grid_.cols);
  }

  /// Square convenience: an n x n image (the paper's shape).
  TileLayout(std::uint32_t n, std::uint32_t p) : TileLayout(n, n, p) {}

  [[nodiscard]] std::uint32_t height() const noexcept { return height_; }
  [[nodiscard]] std::uint32_t width() const noexcept { return width_; }
  /// Total pixels H * W.
  [[nodiscard]] std::uint64_t pixels() const noexcept {
    return static_cast<std::uint64_t>(height_) * width_;
  }
  [[nodiscard]] std::uint32_t nprocs() const noexcept { return p_; }
  /// v: rows of the logical processor grid.
  [[nodiscard]] std::uint32_t grid_rows() const noexcept { return grid_.rows; }
  /// w: columns of the logical processor grid.
  [[nodiscard]] std::uint32_t grid_cols() const noexcept { return grid_.cols; }

  /// First global image row owned by grid row I (clamped to H; grid row
  /// I's rows are [row_begin(I), row_begin(I + 1))).
  [[nodiscard]] std::uint32_t row_begin(std::uint32_t grid_row) const noexcept {
    return static_cast<std::uint32_t>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(grid_row) * qmax_, height_));
  }
  /// First global image column owned by grid column J (clamped to W).
  [[nodiscard]] std::uint32_t col_begin(std::uint32_t grid_col) const noexcept {
    return static_cast<std::uint32_t>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(grid_col) * rmax_, width_));
  }
  /// Image rows owned by grid row I (qmax interior, less — possibly 0 —
  /// on the trailing rows).
  [[nodiscard]] std::uint32_t rows_in(std::uint32_t grid_row) const noexcept {
    return row_begin(grid_row + 1) - row_begin(grid_row);
  }
  /// Image columns owned by grid column J.
  [[nodiscard]] std::uint32_t cols_in(std::uint32_t grid_col) const noexcept {
    return col_begin(grid_col + 1) - col_begin(grid_col);
  }

  /// qmax = ceil(H/v): rows of the largest tile (always rank 0's).
  [[nodiscard]] std::uint32_t max_tile_rows() const noexcept { return qmax_; }
  /// rmax = ceil(W/w): columns of the largest tile.
  [[nodiscard]] std::uint32_t max_tile_cols() const noexcept { return rmax_; }
  /// Pixels of the largest tile: the minimum Spread block size
  /// (max over ranks of tile_size(rank) == tile_size(0)).
  [[nodiscard]] std::size_t max_tile_size() const noexcept {
    return static_cast<std::size_t>(qmax_) * rmax_;
  }

  /// Rows of processor `rank`'s tile (0 on trailing empty grid rows).
  [[nodiscard]] std::uint32_t tile_rows(std::uint32_t rank) const noexcept {
    return rows_in(proc_row(rank));
  }
  /// Columns of processor `rank`'s tile.
  [[nodiscard]] std::uint32_t tile_cols(std::uint32_t rank) const noexcept {
    return cols_in(proc_col(rank));
  }
  /// Pixels of processor `rank`'s tile (0 for empty tiles).
  [[nodiscard]] std::size_t tile_size(std::uint32_t rank) const noexcept {
    return static_cast<std::size_t>(tile_rows(rank)) * tile_cols(rank);
  }

  /// Prefix sum of tile sizes: the first slot of `rank` in a packed
  /// enumeration of all tiles.  tile_offset(0) == 0,
  /// tile_offset(p) == H * W.
  [[nodiscard]] std::size_t tile_offset(std::uint32_t rank) const noexcept {
    std::size_t off = 0;
    for (std::uint32_t r = 0; r < rank; ++r) off += tile_size(r);
    return off;
  }

  /// The per-rank size table [tile_size(0), ..., tile_size(p-1)] — the
  /// argument for Spread's per-rank constructor.
  [[nodiscard]] std::vector<std::size_t> tile_sizes() const {
    std::vector<std::size_t> sizes(p_);
    for (std::uint32_t rank = 0; rank < p_; ++rank) {
      sizes[rank] = tile_size(rank);
    }
    return sizes;
  }

  /// The Spread contract: `spread` can back this layout — same processor
  /// count, and every rank's block holds at least its tile.
  template <typename T>
  [[nodiscard]] bool spread_fits(const splitc::Spread<T>& spread)
      const noexcept {
    if (spread.nprocs() != p_) return false;
    for (std::uint32_t rank = 0; rank < p_; ++rank) {
      if (spread.block_size(rank) < tile_size(rank)) return false;
    }
    return true;
  }

  /// Logical grid row I of processor `rank` (row-major assignment).
  [[nodiscard]] std::uint32_t proc_row(std::uint32_t rank) const noexcept {
    return rank / grid_.cols;
  }
  /// Logical grid column J of processor `rank`.
  [[nodiscard]] std::uint32_t proc_col(std::uint32_t rank) const noexcept {
    return rank % grid_.cols;
  }
  /// Rank of the processor at logical grid position (I, J).
  [[nodiscard]] std::uint32_t rank_at(std::uint32_t grid_row,
                                      std::uint32_t grid_col) const noexcept {
    return grid_row * grid_.cols + grid_col;
  }

  /// Global image row of local row i on processor `rank` (valid for
  /// i < tile_rows(rank)).
  [[nodiscard]] std::uint32_t global_row(std::uint32_t rank,
                                         std::uint32_t i) const noexcept {
    return proc_row(rank) * qmax_ + i;
  }
  /// Global image column of local column j on processor `rank`.
  [[nodiscard]] std::uint32_t global_col(std::uint32_t rank,
                                         std::uint32_t j) const noexcept {
    return proc_col(rank) * rmax_ + j;
  }

  /// The globally unique initial label of local pixel (i, j) on processor
  /// `rank`: raster order + 1, i.e. (I*qmax + i)*W + (J*rmax + j) + 1 —
  /// the paper's Section 5.1 formula with W in place of n.  Minimizing
  /// over a component therefore yields the library-wide canonical label.
  [[nodiscard]] std::uint32_t initial_label(std::uint32_t rank,
                                            std::uint32_t i,
                                            std::uint32_t j) const noexcept {
    return global_row(rank, i) * width_ + global_col(rank, j) + 1;
  }

  /// Cut a host image into tiles, one Spread block per processor, pixels
  /// row-major within the tile.  Requires `spread_fits(out)` (see the
  /// Spread contract in the file comment); blocks of empty tiles are left
  /// untouched (zero).
  template <typename T>
  void scatter(const Image<T>& image, splitc::Spread<T>& out) const {
    HISTCC_REQUIRE(image.height() == height_ && image.width() == width_,
                   "image shape does not match layout");
    HISTCC_REQUIRE(spread_fits(out),
                   "spread does not fit layout (Spread '" + out.name() +
                       "')");
    for (std::uint32_t rank = 0; rank < p_; ++rank) {
      auto block = out.block(rank);
      const std::uint32_t q = tile_rows(rank);
      const std::uint32_t r = tile_cols(rank);
      for (std::uint32_t i = 0; i < q; ++i) {
        for (std::uint32_t j = 0; j < r; ++j) {
          block[static_cast<std::size_t>(i) * r + j] =
              image(global_row(rank, i), global_col(rank, j));
        }
      }
    }
  }

  /// Reassemble a host image from tiles (same Spread contract as
  /// scatter).
  template <typename T>
  [[nodiscard]] Image<T> gather(const splitc::Spread<T>& in) const {
    HISTCC_REQUIRE(spread_fits(in),
                   "spread does not fit layout (Spread '" + in.name() +
                       "')");
    Image<T> image(height_, width_);
    for (std::uint32_t rank = 0; rank < p_; ++rank) {
      auto block = in.block(rank);
      const std::uint32_t q = tile_rows(rank);
      const std::uint32_t r = tile_cols(rank);
      for (std::uint32_t i = 0; i < q; ++i) {
        for (std::uint32_t j = 0; j < r; ++j) {
          image(global_row(rank, i), global_col(rank, j)) =
              block[static_cast<std::size_t>(i) * r + j];
        }
      }
    }
    return image;
  }

 private:
  std::uint32_t height_;
  std::uint32_t width_;
  std::uint32_t p_;
  util::GridShape grid_;
  std::uint32_t qmax_ = 0;
  std::uint32_t rmax_ = 0;
};

}  // namespace histcc::img

#endif  // HISTCC_IMAGE_LAYOUT_HPP
