#ifndef HISTCC_IMAGE_HALO_HPP
#define HISTCC_IMAGE_HALO_HPP

/// \file halo.hpp
/// One-pixel halo exchange over the tile layout.
///
/// Stencil-style algorithms (morphology, region adjacency, the
/// label-propagation baseline) need each tile's border neighbourhood: the
/// adjacent pixel line of each of the four neighbouring tiles plus the
/// four diagonal corner pixels.  `HaloExchangerT<T>` packs every
/// processor's border lines into a spread buffer, barriers, and pulls the
/// facing lines into a (q+2) x (r+2) halo whose outer ring is the
/// neighbours' data (zero outside the image).
/// Tcomm = tau + (2(q + r) + 4) * words(T) per exchange.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "histcc/image/layout.hpp"
#include "histcc/splitc/machine.hpp"
#include "histcc/splitc/spread.hpp"

namespace histcc::img {

/// Reusable halo exchange for tile data of type T (pixels, labels, ...).
/// Construct on the host; call `exchange` from inside the SPMD program
/// (collective).
template <typename T>
class HaloExchangerT {
 public:
  HaloExchangerT(splitc::Machine& machine, const TileLayout& layout)
      : layout_(layout),
        lines_(machine, 2ull * (layout.tile_rows() + layout.tile_cols()),
               "halo_lines") {}

  /// Rows of the halo buffer: q + 2.
  [[nodiscard]] std::uint32_t halo_rows() const noexcept {
    return layout_.tile_rows() + 2;
  }
  /// Columns of the halo buffer: r + 2.
  [[nodiscard]] std::uint32_t halo_cols() const noexcept {
    return layout_.tile_cols() + 2;
  }

  /// Fill `halo` (resized to halo_rows x halo_cols, row-major) with this
  /// processor's tile in the centre and its neighbours' adjacent lines in
  /// the outer ring (zeros beyond the image edge).  Collective.
  void exchange(splitc::Proc& self, splitc::Spread<T>& tiles,
                std::vector<T>& halo) {
    const std::uint32_t q = layout_.tile_rows();
    const std::uint32_t r = layout_.tile_cols();
    const std::uint32_t v = layout_.grid_rows();
    const std::uint32_t w = layout_.grid_cols();
    const std::size_t north = 0, south = r, west = 2ull * r,
                      east = 2ull * r + q;

    const std::uint32_t rank = self.rank();
    const std::uint32_t gi = layout_.proc_row(rank);
    const std::uint32_t gj = layout_.proc_col(rank);
    auto my_px = tiles.local(self);

    // Pack my four border lines.
    {
      auto mine = lines_.local(self);
      for (std::uint32_t j = 0; j < r; ++j) {
        mine[north + j] = my_px[j];
        mine[south + j] = my_px[static_cast<std::size_t>(q - 1) * r + j];
      }
      for (std::uint32_t i = 0; i < q; ++i) {
        mine[west + i] = my_px[static_cast<std::size_t>(i) * r];
        mine[east + i] = my_px[static_cast<std::size_t>(i) * r + r - 1];
      }
      lines_.note_local_write(self);  // race-ledger epoch annotation
    }
    self.barrier();  // publish lines

    const std::uint32_t hr = halo_cols();
    halo.assign(static_cast<std::size_t>(halo_rows()) * hr, T{});
    auto halo_at = [&](std::uint32_t i, std::uint32_t j) -> std::size_t {
      return static_cast<std::size_t>(i) * hr + j;
    };

    // Centre: my own tile.
    for (std::uint32_t i = 0; i < q; ++i) {
      std::copy_n(my_px.begin() + static_cast<std::ptrdiff_t>(
                                      static_cast<std::size_t>(i) * r),
                  r,
                  halo.begin() + static_cast<std::ptrdiff_t>(
                                     halo_at(i + 1, 1)));
    }

    // Facing lines from the four neighbours (plus diagonal corners).
    std::vector<T> tmp(std::max(q, r));
    auto pull = [&](std::uint32_t nbr, std::size_t src_off, std::size_t len,
                    std::uint32_t hi, std::uint32_t hj, bool row_dir) {
      lines_.prefetch(self, std::span<T>(tmp).subspan(0, len), nbr, src_off,
                      len);
      for (std::size_t s = 0; s < len; ++s) {
        halo[row_dir ? halo_at(hi, hj + static_cast<std::uint32_t>(s))
                     : halo_at(hi + static_cast<std::uint32_t>(s), hj)] =
            tmp[s];
      }
    };
    if (gi > 0) pull(layout_.rank_at(gi - 1, gj), south, r, 0, 1, true);
    if (gi + 1 < v) {
      pull(layout_.rank_at(gi + 1, gj), north, r, q + 1, 1, true);
    }
    if (gj > 0) pull(layout_.rank_at(gi, gj - 1), east, q, 1, 0, false);
    if (gj + 1 < w) {
      pull(layout_.rank_at(gi, gj + 1), west, q, 1, r + 1, false);
    }
    if (gi > 0 && gj > 0) {
      pull(layout_.rank_at(gi - 1, gj - 1), south + r - 1, 1, 0, 0, true);
    }
    if (gi > 0 && gj + 1 < w) {
      pull(layout_.rank_at(gi - 1, gj + 1), south, 1, 0, r + 1, true);
    }
    if (gi + 1 < v && gj > 0) {
      pull(layout_.rank_at(gi + 1, gj - 1), north + r - 1, 1, q + 1, 0, true);
    }
    if (gi + 1 < v && gj + 1 < w) {
      pull(layout_.rank_at(gi + 1, gj + 1), north, 1, q + 1, r + 1, true);
    }
    self.sync();
  }

 private:
  const TileLayout& layout_;
  // Packed per-processor border lines: [north r][south r][west q][east q].
  splitc::Spread<T> lines_;
};

/// The common pixel-data instantiation.
using HaloExchanger = HaloExchangerT<std::uint8_t>;

}  // namespace histcc::img

#endif  // HISTCC_IMAGE_HALO_HPP
