#ifndef HISTCC_IMAGE_HALO_HPP
#define HISTCC_IMAGE_HALO_HPP

/// \file halo.hpp
/// One-pixel halo exchange over the tile layout.
///
/// Stencil-style algorithms (morphology, region adjacency, the
/// label-propagation baseline) need each tile's border neighbourhood: the
/// adjacent pixel line of each of the four neighbouring tiles plus the
/// four diagonal corner pixels.  `HaloExchangerT<T>` packs every
/// processor's border lines into a spread buffer, barriers, and pulls the
/// facing lines into a (q+2) x (r+2) halo whose outer ring is the
/// neighbours' data (zero outside the image), with q and r the *caller's*
/// per-rank tile shape (docs/layout.md).  Under the ragged layout the
/// packed line offsets differ per rank, so pulls index with the
/// neighbour's geometry; facing lines still match in length because tiles
/// in one grid row/column share tile_rows/tile_cols.  Empty tiles pack
/// and pull nothing but still take part in the barrier, and an empty
/// neighbour reads as image edge (zeros).
/// Tcomm = tau + (2(q + r) + 4) * words(T) per exchange.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "histcc/image/layout.hpp"
#include "histcc/splitc/machine.hpp"
#include "histcc/splitc/spread.hpp"
#include "histcc/trace/trace.hpp"

namespace histcc::img {

/// Reusable halo exchange for tile data of type T (pixels, labels, ...).
/// Construct on the host; call `exchange` from inside the SPMD program
/// (collective).
template <typename T>
class HaloExchangerT {
 public:
  HaloExchangerT(splitc::Machine& machine, const TileLayout& layout)
      : layout_(layout),
        lines_(machine, line_sizes(layout), "halo_lines") {}

  /// Rows of `rank`'s halo buffer: tile_rows(rank) + 2.
  [[nodiscard]] std::uint32_t halo_rows(std::uint32_t rank) const noexcept {
    return layout_.tile_rows(rank) + 2;
  }
  /// Columns of `rank`'s halo buffer: tile_cols(rank) + 2.
  [[nodiscard]] std::uint32_t halo_cols(std::uint32_t rank) const noexcept {
    return layout_.tile_cols(rank) + 2;
  }

  /// Fill `halo` (resized to halo_rows x halo_cols of the calling rank,
  /// row-major) with this processor's tile in the centre and its
  /// neighbours' adjacent lines in the outer ring (zeros beyond the image
  /// edge).  Collective — every rank calls, including empty tiles.
  void exchange(splitc::Proc& self, splitc::Spread<T>& tiles,
                std::vector<T>& halo) {
    TRACE_SCOPE(self, "img/halo_exchange");
    const std::uint32_t rank = self.rank();
    const std::uint32_t q = layout_.tile_rows(rank);
    const std::uint32_t r = layout_.tile_cols(rank);
    const std::uint32_t v = layout_.grid_rows();
    const std::uint32_t w = layout_.grid_cols();
    const std::uint32_t gi = layout_.proc_row(rank);
    const std::uint32_t gj = layout_.proc_col(rank);
    auto my_px = tiles.local(self);

    // Packed per-rank line offsets: [north r][south r][west q][east q],
    // laid out by that rank's own tile shape.
    struct Offsets {
      std::size_t north, south, west, east;
    };
    auto offsets_of = [&](std::uint32_t who) -> Offsets {
      const std::size_t nr = layout_.tile_cols(who);
      const std::size_t nq = layout_.tile_rows(who);
      return {0, nr, 2 * nr, 2 * nr + nq};
    };
    const Offsets mine_off = offsets_of(rank);

    // Pack my four border lines (nothing to pack — or publish — for an
    // empty tile).
    if (q > 0 && r > 0) {
      auto mine = lines_.local(self);
      for (std::uint32_t j = 0; j < r; ++j) {
        mine[mine_off.north + j] = my_px[j];
        mine[mine_off.south + j] =
            my_px[static_cast<std::size_t>(q - 1) * r + j];
      }
      for (std::uint32_t i = 0; i < q; ++i) {
        mine[mine_off.west + i] = my_px[static_cast<std::size_t>(i) * r];
        mine[mine_off.east + i] =
            my_px[static_cast<std::size_t>(i) * r + r - 1];
      }
      lines_.note_local_write(self);  // race-ledger epoch annotation
    }
    self.barrier();  // publish lines (uniform: empty tiles barrier too)

    const std::uint32_t hr = halo_cols(rank);
    halo.assign(static_cast<std::size_t>(halo_rows(rank)) * hr, T{});
    auto halo_at = [&](std::uint32_t i, std::uint32_t j) -> std::size_t {
      return static_cast<std::size_t>(i) * hr + j;
    };

    // Centre: my own tile.
    for (std::uint32_t i = 0; i < q; ++i) {
      std::copy_n(my_px.begin() + static_cast<std::ptrdiff_t>(
                                      static_cast<std::size_t>(i) * r),
                  r,
                  halo.begin() + static_cast<std::ptrdiff_t>(
                                     halo_at(i + 1, 1)));
    }

    // Facing lines from the four neighbours (plus diagonal corners).
    // Offsets into a neighbour's packed lines use *its* geometry; a pull
    // is skipped when either side is empty (an empty neighbour means the
    // image ends there, so the zero ring is already correct).  Facing
    // line lengths agree: a north/south neighbour shares my grid column
    // (same r), an east/west neighbour my grid row (same q).
    std::vector<T> tmp(std::max<std::size_t>(1, std::max(q, r)));
    auto pull = [&](std::uint32_t nbr, std::size_t src_off, std::size_t len,
                    std::uint32_t hi, std::uint32_t hj, bool row_dir) {
      if (layout_.tile_size(nbr) == 0) return;
      lines_.prefetch(self, std::span<T>(tmp).subspan(0, len), nbr, src_off,
                      len);
      for (std::size_t s = 0; s < len; ++s) {
        halo[row_dir ? halo_at(hi, hj + static_cast<std::uint32_t>(s))
                     : halo_at(hi + static_cast<std::uint32_t>(s), hj)] =
            tmp[s];
      }
    };
    if (q > 0 && r > 0) {
      if (gi > 0) {
        const std::uint32_t nbr = layout_.rank_at(gi - 1, gj);
        pull(nbr, offsets_of(nbr).south, r, 0, 1, true);
      }
      if (gi + 1 < v) {
        const std::uint32_t nbr = layout_.rank_at(gi + 1, gj);
        pull(nbr, offsets_of(nbr).north, r, q + 1, 1, true);
      }
      if (gj > 0) {
        const std::uint32_t nbr = layout_.rank_at(gi, gj - 1);
        pull(nbr, offsets_of(nbr).east, q, 1, 0, false);
      }
      if (gj + 1 < w) {
        const std::uint32_t nbr = layout_.rank_at(gi, gj + 1);
        pull(nbr, offsets_of(nbr).west, q, 1, r + 1, false);
      }
      if (gi > 0 && gj > 0) {
        const std::uint32_t nbr = layout_.rank_at(gi - 1, gj - 1);
        const Offsets off = offsets_of(nbr);
        pull(nbr, off.south + layout_.tile_cols(nbr) - 1, 1, 0, 0, true);
      }
      if (gi > 0 && gj + 1 < w) {
        const std::uint32_t nbr = layout_.rank_at(gi - 1, gj + 1);
        pull(nbr, offsets_of(nbr).south, 1, 0, r + 1, true);
      }
      if (gi + 1 < v && gj > 0) {
        const std::uint32_t nbr = layout_.rank_at(gi + 1, gj - 1);
        const Offsets off = offsets_of(nbr);
        pull(nbr, off.north + layout_.tile_cols(nbr) - 1, 1, q + 1, 0, true);
      }
      if (gi + 1 < v && gj + 1 < w) {
        const std::uint32_t nbr = layout_.rank_at(gi + 1, gj + 1);
        pull(nbr, offsets_of(nbr).north, 1, q + 1, r + 1, true);
      }
    }
    self.sync();
  }

 private:
  /// Per-rank line capacity: rank r packs 2*(tile_rows(r) + tile_cols(r))
  /// border elements in its own geometry, so that is all its block needs
  /// (packed mode allocates exactly it; strided pads to the max).
  [[nodiscard]] static std::vector<std::size_t> line_sizes(
      const TileLayout& layout) {
    std::vector<std::size_t> sizes(layout.nprocs());
    for (std::uint32_t rank = 0; rank < layout.nprocs(); ++rank) {
      sizes[rank] =
          2ull * (layout.tile_rows(rank) + layout.tile_cols(rank));
    }
    return sizes;
  }

  const TileLayout& layout_;
  // Packed per-processor border lines: [north r][south r][west q][east q]
  // in each rank's own geometry.
  splitc::Spread<T> lines_;
};

/// The common pixel-data instantiation.
using HaloExchanger = HaloExchangerT<std::uint8_t>;

}  // namespace histcc::img

#endif  // HISTCC_IMAGE_HALO_HPP
