#ifndef HISTCC_IMAGE_IMAGE_HPP
#define HISTCC_IMAGE_IMAGE_HPP

/// \file image.hpp
/// Dense row-major image container.
///
/// The paper works on n x n images with k grey levels, k <= 256, where grey
/// level 0 is background and positive levels are foreground (Section 1).
/// `Image<T>` is deliberately minimal: a shaped vector with bounds-checked
/// and unchecked accessors.  `GreyImage` (8-bit pixels) holds inputs;
/// `LabelImage` (32-bit) holds connected-component labelings — initial
/// labels are (I*q + i)*n + (J*r + j) + 1 <= n^2, which fits 32 bits for
/// every image size the paper uses (n <= 4096).

#include <cstdint>
#include <span>
#include <vector>

#include "histcc/util/require.hpp"

namespace histcc::img {

/// Row-major 2-D array of pixels.
template <typename T>
class Image {
 public:
  Image() = default;

  /// Create a height x width image filled with `fill`.
  Image(std::uint32_t height, std::uint32_t width, T fill = T{})
      : height_(height),
        width_(width),
        pixels_(static_cast<std::size_t>(height) * width, fill) {}

  [[nodiscard]] std::uint32_t height() const noexcept { return height_; }
  [[nodiscard]] std::uint32_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t size() const noexcept { return pixels_.size(); }
  [[nodiscard]] bool empty() const noexcept { return pixels_.empty(); }

  /// Unchecked access (hot paths).
  [[nodiscard]] T& operator()(std::uint32_t row, std::uint32_t col) noexcept {
    return pixels_[static_cast<std::size_t>(row) * width_ + col];
  }
  [[nodiscard]] const T& operator()(std::uint32_t row,
                                    std::uint32_t col) const noexcept {
    return pixels_[static_cast<std::size_t>(row) * width_ + col];
  }

  /// Bounds-checked access (API boundary / tests).
  [[nodiscard]] T& at(std::uint32_t row, std::uint32_t col) {
    HISTCC_REQUIRE(row < height_ && col < width_, "pixel out of bounds");
    return (*this)(row, col);
  }
  [[nodiscard]] const T& at(std::uint32_t row, std::uint32_t col) const {
    HISTCC_REQUIRE(row < height_ && col < width_, "pixel out of bounds");
    return (*this)(row, col);
  }

  [[nodiscard]] std::span<T> pixels() noexcept {
    return std::span<T>(pixels_);
  }
  [[nodiscard]] std::span<const T> pixels() const noexcept {
    return std::span<const T>(pixels_);
  }

  friend bool operator==(const Image& a, const Image& b) {
    return a.height_ == b.height_ && a.width_ == b.width_ &&
           a.pixels_ == b.pixels_;
  }

 private:
  std::uint32_t height_ = 0;
  std::uint32_t width_ = 0;
  std::vector<T> pixels_;
};

/// 8-bit grey-level input image (k <= 256 levels; 0 = background).
using GreyImage = Image<std::uint8_t>;

/// 32-bit component labeling (0 = background label).
using LabelImage = Image<std::uint32_t>;

}  // namespace histcc::img

#endif  // HISTCC_IMAGE_IMAGE_HPP
