#ifndef HISTCC_IMAGE_GENERATORS_HPP
#define HISTCC_IMAGE_GENERATORS_HPP

/// \file generators.hpp
/// Runtime-generated test images (Section 3 of the paper).
///
/// The paper evaluates connected components on "a catalog of nine
/// automatically generated scalable images": horizontal, vertical, and
/// forward- and back-slanting diagonal bars, a cross, a filled disc,
/// concentric circles with thickness, four squares inset from the four
/// corners, and a dual-spiral pattern (the "difficult" image of Stout
/// [42]).  All nine are reproduced here as deterministic functions of the
/// image side n.
///
/// The paper's tenth input, the 512 x 512 256-grey-level DARPA Image
/// Understanding Benchmark image, is not redistributable; `darpa_like`
/// generates a seeded synthetic stand-in with the benchmark's character
/// (overlapping rectangular and elliptical "mobile" pieces over a textured
/// background — see DESIGN.md, Substitutions).
///
/// Extra generators support the application examples: site percolation
/// lattices and two-state Ising-like spin configurations.

#include <cstdint>
#include <string_view>

#include "histcc/image/image.hpp"

namespace histcc::img {

/// Identifier for the paper's nine catalog images (Figure 1).
enum class TestPattern : int {
  kHorizontalBars = 1,  ///< Image 1: horizontal bars
  kVerticalBars = 2,    ///< Image 2: vertical bars
  kForwardDiagonal = 3, ///< Image 3: forward-slanting diagonal bars
  kBackwardDiagonal = 4,///< Image 4: back-slanting diagonal bars
  kCross = 5,           ///< Image 5: a cross
  kDisc = 6,            ///< Image 6: a filled disc
  kCircles = 7,         ///< Image 7: concentric circles with thickness
  kFourSquares = 8,     ///< Image 8: four squares inset from the corners
  kDualSpiral = 9,      ///< Image 9: dual-spiral pattern ("difficult")
};

/// Total number of catalog patterns.
inline constexpr int kNumTestPatterns = 9;

/// Human-readable name of a catalog pattern ("horizontal-bars", ...).
[[nodiscard]] std::string_view pattern_name(TestPattern pattern) noexcept;

/// Generate catalog image `pattern` at side n (binary: 0 background,
/// 1 foreground).  n must be >= 32, matching the paper's smallest inputs.
[[nodiscard]] GreyImage make_test_pattern(TestPattern pattern,
                                          std::uint32_t n);

// NOLINTBEGIN(bugprone-easily-swappable-parameters): generator signatures
// share the positional (n, <shape params>, seed) convention; bodies live in
// generators.cpp, out of SuppressParametersUsedTogether's sight.

/// Synthetic stand-in for the DARPA IU Benchmark image: a 256-grey-level
/// scene of `pieces` overlapping rectangles and ellipses over a lightly
/// textured background.  Deterministic in (n, seed).
[[nodiscard]] GreyImage make_darpa_like(std::uint32_t n,
                                        std::uint64_t seed = 0x0DA52A5EULL,
                                        std::uint32_t pieces = 260);

/// Site-percolation lattice: each pixel is foreground (1) independently
/// with probability `occupancy`.  Used by the percolation example ([41] in
/// the paper) and as a worst-case-ish CC input.
[[nodiscard]] GreyImage make_percolation(std::uint32_t n, double occupancy,
                                         std::uint64_t seed = 1);

/// Two-colour spin configuration (values 1 and 2) with short-range
/// correlation produced by a few sweeps of Metropolis dynamics at inverse
/// temperature `beta`; the Ising cluster example labels its components
/// (the paper cites cluster Monte Carlo [2]-[4], [39], [40]).
[[nodiscard]] GreyImage make_ising(std::uint32_t n, double beta,
                                   std::uint32_t sweeps = 3,
                                   std::uint64_t seed = 7);

/// Uniformly random k-grey-level image (values 0..k-1); histogramming's
/// stress input.  k must be in [2, 256].
[[nodiscard]] GreyImage make_random_grey(std::uint32_t n, std::uint32_t k,
                                         std::uint64_t seed = 3);

/// Banded image where grey level g covers a known fraction of the area:
/// row bands of equal height cycling through 0..k-1.  Histogram tests use
/// the exact expected counts.
[[nodiscard]] GreyImage make_banded_grey(std::uint32_t n, std::uint32_t k);

// NOLINTEND(bugprone-easily-swappable-parameters)

}  // namespace histcc::img

#endif  // HISTCC_IMAGE_GENERATORS_HPP
