#include "histcc/image/pgm_io.hpp"

#include <cctype>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

#include "histcc/util/require.hpp"

namespace histcc::img {
namespace {

/// Skip whitespace and '#' comment lines between PGM header tokens.
void skip_pgm_separators(std::istream& in) {
  for (;;) {
    const int c = in.peek();
    if (c == '#') {
      in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
    } else if (std::isspace(c)) {
      in.get();
    } else {
      return;
    }
  }
}

std::uint32_t read_header_value(std::istream& in) {
  skip_pgm_separators(in);
  std::uint32_t value = 0;
  in >> value;
  HISTCC_REQUIRE(static_cast<bool>(in), "malformed PGM header");
  return value;
}

}  // namespace

void write_pgm(std::ostream& out, const GreyImage& image) {
  HISTCC_REQUIRE(!image.empty(), "cannot write an empty image");
  out << "P5\n" << image.width() << ' ' << image.height() << "\n255\n";
  out.write(reinterpret_cast<const char*>(image.pixels().data()),
            static_cast<std::streamsize>(image.size()));
}

void write_pgm_file(const std::string& path, const GreyImage& image) {
  std::ofstream out(path, std::ios::binary);
  HISTCC_REQUIRE(out.is_open(), "cannot open file for writing: " + path);
  write_pgm(out, image);
}

GreyImage read_pgm(std::istream& in) {
  char magic[2] = {};
  in.read(magic, 2);
  HISTCC_REQUIRE(static_cast<bool>(in) && magic[0] == 'P' &&
                     (magic[1] == '5' || magic[1] == '2'),
                 "not a P2/P5 PGM stream");
  const bool binary = magic[1] == '5';
  const std::uint32_t width = read_header_value(in);
  const std::uint32_t height = read_header_value(in);
  const std::uint32_t maxval = read_header_value(in);
  HISTCC_REQUIRE(width > 0 && height > 0, "degenerate PGM dimensions");
  // Bound dimensions before allocating: a corrupt header must not turn
  // into a multi-exabyte allocation.
  HISTCC_REQUIRE(width <= 65536 && height <= 65536,
                 "PGM dimensions exceed the supported 65536 x 65536");
  HISTCC_REQUIRE(maxval > 0 && maxval <= 255, "only 8-bit PGM is supported");

  GreyImage image(height, width);
  if (binary) {
    in.get();  // single whitespace after maxval
    in.read(reinterpret_cast<char*>(image.pixels().data()),
            static_cast<std::streamsize>(image.size()));
    HISTCC_REQUIRE(static_cast<bool>(in), "truncated PGM pixel data");
  } else {
    for (auto& px : image.pixels()) {
      std::uint32_t value = 0;
      in >> value;
      HISTCC_REQUIRE(static_cast<bool>(in) && value <= maxval,
                     "malformed P2 pixel data");
      px = static_cast<std::uint8_t>(value);
    }
  }
  return image;
}

GreyImage read_pgm_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  HISTCC_REQUIRE(in.is_open(), "cannot open file for reading: " + path);
  return read_pgm(in);
}

void write_label_ppm(std::ostream& out, const LabelImage& labels) {
  HISTCC_REQUIRE(!labels.empty(), "cannot write an empty labeling");
  out << "P6\n" << labels.width() << ' ' << labels.height() << "\n255\n";
  for (const auto label : labels.pixels()) {
    unsigned char rgb[3] = {0, 0, 0};
    if (label != 0) {
      // splitmix-style hash for a stable, well-spread colour per label.
      std::uint64_t z = label + 0x9E3779B97F4A7C15ULL;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      rgb[0] = static_cast<unsigned char>(64 + (z & 0xBF));
      rgb[1] = static_cast<unsigned char>(64 + ((z >> 8) & 0xBF));
      rgb[2] = static_cast<unsigned char>(64 + ((z >> 16) & 0xBF));
    }
    out.write(reinterpret_cast<const char*>(rgb), 3);
  }
}

void write_label_ppm_file(const std::string& path, const LabelImage& labels) {
  std::ofstream out(path, std::ios::binary);
  HISTCC_REQUIRE(out.is_open(), "cannot open file for writing: " + path);
  write_label_ppm(out, labels);
}

}  // namespace histcc::img
