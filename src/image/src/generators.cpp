#include "histcc/image/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "histcc/util/require.hpp"
#include "histcc/util/rng.hpp"

namespace histcc::img {
namespace {

constexpr std::uint8_t kBg = 0;
constexpr std::uint8_t kFg = 1;

// Stripe width used by the bar/ring patterns.  Section 3: images 1-4, 7,
// and 9 are "augmented to the needed image size" (the feature size stays
// fixed, so the number of bars/rings/turns grows with n), while images 5,
// 6, and 8 are "scaled appropriately".  A fixed 4-pixel stripe keeps the
// small sizes identical to a scaled pattern (n = 64 still has 8 bars) and
// makes the component count grow linearly with n beyond that.
std::uint32_t stripe(std::uint32_t n) { return std::min<std::uint32_t>(std::max<std::uint32_t>(n / 16, 2), 4); }

GreyImage horizontal_bars(std::uint32_t n) {
  GreyImage im(n, n, kBg);
  const std::uint32_t s = stripe(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if ((i / s) % 2 == 0) {
      for (std::uint32_t j = 0; j < n; ++j) im(i, j) = kFg;
    }
  }
  return im;
}

GreyImage vertical_bars(std::uint32_t n) {
  GreyImage im(n, n, kBg);
  const std::uint32_t s = stripe(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      if ((j / s) % 2 == 0) im(i, j) = kFg;
    }
  }
  return im;
}

GreyImage diagonal_bars(std::uint32_t n, bool forward) {
  GreyImage im(n, n, kBg);
  const std::uint32_t s = stripe(n);
  const std::uint32_t period = 2 * s;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      // Forward-slanting bars run along i+j = const; back-slanting along
      // i-j = const.
      const std::uint32_t d = forward ? (i + j) % period
                                      : (i + (n - 1 - j)) % period;
      if (d < s) im(i, j) = kFg;
    }
  }
  return im;
}

GreyImage cross(std::uint32_t n) {
  GreyImage im(n, n, kBg);
  const std::uint32_t thick = std::max<std::uint32_t>(n / 8, 2);
  const std::uint32_t lo = (n - thick) / 2;
  const std::uint32_t hi = lo + thick;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      if ((i >= lo && i < hi) || (j >= lo && j < hi)) im(i, j) = kFg;
    }
  }
  return im;
}

GreyImage disc(std::uint32_t n) {
  GreyImage im(n, n, kBg);
  const double c = (n - 1) / 2.0;
  const double radius = n / 3.0;
  const double r2 = radius * radius;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      const double di = i - c;
      const double dj = j - c;
      if (di * di + dj * dj <= r2) im(i, j) = kFg;
    }
  }
  return im;
}

GreyImage circles(std::uint32_t n) {
  GreyImage im(n, n, kBg);
  const double c = (n - 1) / 2.0;
  const double s = stripe(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      const double di = i - c;
      const double dj = j - c;
      const double rad = std::sqrt(di * di + dj * dj);
      if (rad <= c && static_cast<std::uint32_t>(rad / s) % 2 == 1) {
        im(i, j) = kFg;
      }
    }
  }
  return im;
}

GreyImage four_squares(std::uint32_t n) {
  GreyImage im(n, n, kBg);
  const std::uint32_t inset = n / 8;
  const std::uint32_t side = n / 4;
  const std::uint32_t corners[4][2] = {
      {inset, inset},
      {inset, n - inset - side},
      {n - inset - side, inset},
      {n - inset - side, n - inset - side}};
  for (const auto& corner : corners) {
    for (std::uint32_t i = corner[0]; i < corner[0] + side; ++i) {
      for (std::uint32_t j = corner[1]; j < corner[1] + side; ++j) {
        im(i, j) = kFg;
      }
    }
  }
  return im;
}

GreyImage dual_spiral(std::uint32_t n) {
  // Two interleaved Archimedean spiral arms (r = a*theta, arms pi apart),
  // drawn parametrically by stamping small discs along each arm so that
  // each arm is one long snaking component with no aliasing fragments.
  // This is the "difficult" image of Stout [42] for divide-and-conquer
  // labelers: both components cross every tile boundary many times.
  GreyImage im(n, n, kBg);
  const double c = (n - 1) / 2.0;
  // Pitch: radial distance between successive turns of the same arm.  The
  // stroke takes 0.3 * pitch, leaving an inter-arm gap of 0.2 * pitch
  // (> sqrt(2) pixels for pitch >= 8), so the arms never 8-connect.  The
  // pitch is capped (augmented image, Section 3): beyond n = 256 the
  // number of turns — and with it the tile-crossing difficulty — keeps
  // growing with the image size.
  const double pitch = std::clamp(n / 10.0, 8.0, 26.0);
  const double a = pitch / (2.0 * std::numbers::pi);
  const double half_width = 0.15 * pitch;
  const double max_radius = c - half_width - 1.0;

  auto stamp = [&](double ci, double cj) {
    const int lo_i = std::max(0, static_cast<int>(std::floor(ci - half_width)));
    const int hi_i = std::min(static_cast<int>(n) - 1,
                              static_cast<int>(std::ceil(ci + half_width)));
    const int lo_j = std::max(0, static_cast<int>(std::floor(cj - half_width)));
    const int hi_j = std::min(static_cast<int>(n) - 1,
                              static_cast<int>(std::ceil(cj + half_width)));
    for (int i = lo_i; i <= hi_i; ++i) {
      for (int j = lo_j; j <= hi_j; ++j) {
        const double di = i - ci;
        const double dj = j - cj;
        if (di * di + dj * dj <= half_width * half_width) {
          im(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j)) =
              kFg;
        }
      }
    }
  };

  for (int arm = 0; arm < 2; ++arm) {
    const double phase = arm * std::numbers::pi;
    // Start at theta = pi (radius pitch/2) so the two arm tips sit on
    // opposite sides of an empty central hole and never touch.
    double theta = std::numbers::pi;
    while (a * theta <= max_radius) {
      const double rad = a * theta;
      stamp(c + rad * std::sin(theta + phase),
            c + rad * std::cos(theta + phase));
      theta += 0.5 / std::max(rad, 1.0);  // ~0.5 px arc-length steps
    }
  }
  return im;
}

}  // namespace

std::string_view pattern_name(TestPattern pattern) noexcept {
  switch (pattern) {
    case TestPattern::kHorizontalBars: return "horizontal-bars";
    case TestPattern::kVerticalBars: return "vertical-bars";
    case TestPattern::kForwardDiagonal: return "forward-diagonal";
    case TestPattern::kBackwardDiagonal: return "backward-diagonal";
    case TestPattern::kCross: return "cross";
    case TestPattern::kDisc: return "disc";
    case TestPattern::kCircles: return "concentric-circles";
    case TestPattern::kFourSquares: return "four-squares";
    case TestPattern::kDualSpiral: return "dual-spiral";
  }
  return "unknown";
}

GreyImage make_test_pattern(TestPattern pattern, std::uint32_t n) {
  HISTCC_REQUIRE(n >= 32, "catalog images are defined for n >= 32");
  switch (pattern) {
    case TestPattern::kHorizontalBars: return horizontal_bars(n);
    case TestPattern::kVerticalBars: return vertical_bars(n);
    case TestPattern::kForwardDiagonal: return diagonal_bars(n, true);
    case TestPattern::kBackwardDiagonal: return diagonal_bars(n, false);
    case TestPattern::kCross: return cross(n);
    case TestPattern::kDisc: return disc(n);
    case TestPattern::kCircles: return circles(n);
    case TestPattern::kFourSquares: return four_squares(n);
    case TestPattern::kDualSpiral: return dual_spiral(n);
  }
  HISTCC_REQUIRE(false, "unknown test pattern");
  return GreyImage{};
}

GreyImage make_darpa_like(std::uint32_t n, std::uint64_t seed,
                          std::uint32_t pieces) {
  HISTCC_REQUIRE(n >= 64, "darpa-like images are defined for n >= 64");
  util::Rng rng(seed);
  GreyImage im(n, n, kBg);

  // Lightly textured background: sparse speckle of low grey values, so the
  // background contributes many tiny components like the benchmark's
  // textured regions.
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      if (rng.next_bool(0.02)) {
        im(i, j) = static_cast<std::uint8_t>(1 + rng.next_below(31));
      }
    }
  }

  // Overlapping "mobile" pieces: rectangles and ellipses of widely varying
  // size, each a uniform grey level in 32..255, later pieces painted over
  // earlier ones (occlusion).
  for (std::uint32_t piece = 0; piece < pieces; ++piece) {
    const auto grey = static_cast<std::uint8_t>(32 + rng.next_below(224));
    const auto ci = static_cast<std::uint32_t>(rng.next_below(n));
    const auto cj = static_cast<std::uint32_t>(rng.next_below(n));
    // Size distribution skewed to small pieces with a few large ones.
    const double scale = rng.next_double();
    const auto half = static_cast<std::uint32_t>(
        2 + static_cast<std::uint32_t>(scale * scale * (n / 8.0)));
    const bool ellipse = rng.next_bool(0.5);
    const std::uint32_t i0 = ci > half ? ci - half : 0;
    const std::uint32_t i1 = std::min(ci + half, n - 1);
    const std::uint32_t j0 = cj > half ? cj - half : 0;
    const std::uint32_t j1 = std::min(cj + half, n - 1);
    for (std::uint32_t i = i0; i <= i1; ++i) {
      for (std::uint32_t j = j0; j <= j1; ++j) {
        if (ellipse) {
          const double di = (static_cast<double>(i) - ci) / half;
          const double dj = (static_cast<double>(j) - cj) / half;
          if (di * di + dj * dj > 1.0) continue;
        }
        im(i, j) = grey;
      }
    }
  }
  return im;
}

GreyImage make_percolation(std::uint32_t n, double occupancy,
                           std::uint64_t seed) {
  HISTCC_REQUIRE(n >= 1, "image side must be positive");
  HISTCC_REQUIRE(occupancy >= 0.0 && occupancy <= 1.0,
                 "occupancy must be a probability");
  util::Rng rng(seed);
  GreyImage im(n, n, kBg);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      if (rng.next_bool(occupancy)) im(i, j) = kFg;
    }
  }
  return im;
}

GreyImage make_ising(std::uint32_t n, double beta, std::uint32_t sweeps,
                     std::uint64_t seed) {
  HISTCC_REQUIRE(n >= 2, "lattice side must be at least 2");
  util::Rng rng(seed);
  // Spins are 1 and 2 so that 0 stays reserved for background and the
  // labeler treats both phases as foreground.
  GreyImage im(n, n, kBg);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      im(i, j) = rng.next_bool(0.5) ? 1 : 2;
    }
  }
  // Metropolis sweeps (free boundary) to introduce spatial correlation.
  auto spin = [&](std::uint32_t i, std::uint32_t j) -> int {
    return im(i, j) == 1 ? -1 : 1;
  };
  for (std::uint32_t sweep = 0; sweep < sweeps; ++sweep) {
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = 0; j < n; ++j) {
        int neighbour_sum = 0;
        if (i > 0) neighbour_sum += spin(i - 1, j);
        if (i + 1 < n) neighbour_sum += spin(i + 1, j);
        if (j > 0) neighbour_sum += spin(i, j - 1);
        if (j + 1 < n) neighbour_sum += spin(i, j + 1);
        const double delta_e = 2.0 * spin(i, j) * neighbour_sum;
        if (delta_e <= 0.0 || rng.next_bool(std::exp(-beta * delta_e))) {
          im(i, j) = im(i, j) == 1 ? 2 : 1;
        }
      }
    }
  }
  return im;
}

GreyImage make_random_grey(std::uint32_t n, std::uint32_t k,
                           std::uint64_t seed) {
  HISTCC_REQUIRE(n >= 1, "image side must be positive");
  HISTCC_REQUIRE(k >= 2 && k <= 256, "grey-level count must be in [2, 256]");
  util::Rng rng(seed);
  GreyImage im(n, n);
  for (auto& px : im.pixels()) {
    px = static_cast<std::uint8_t>(rng.next_below(k));
  }
  return im;
}

GreyImage make_banded_grey(std::uint32_t n, std::uint32_t k) {
  HISTCC_REQUIRE(n >= 1, "image side must be positive");
  HISTCC_REQUIRE(k >= 1 && k <= 256, "grey-level count must be in [1, 256]");
  GreyImage im(n, n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto grey = static_cast<std::uint8_t>(i % k);
    for (std::uint32_t j = 0; j < n; ++j) im(i, j) = grey;
  }
  return im;
}

}  // namespace histcc::img
