// layout.hpp is header-only; instantiate the common cases once.
#include "histcc/image/layout.hpp"

namespace histcc::img {

template void TileLayout::scatter<std::uint8_t>(
    const Image<std::uint8_t>&, splitc::Spread<std::uint8_t>&) const;
template void TileLayout::scatter<std::uint32_t>(
    const Image<std::uint32_t>&, splitc::Spread<std::uint32_t>&) const;
template Image<std::uint8_t> TileLayout::gather<std::uint8_t>(
    const splitc::Spread<std::uint8_t>&) const;
template Image<std::uint32_t> TileLayout::gather<std::uint32_t>(
    const splitc::Spread<std::uint32_t>&) const;

}  // namespace histcc::img
