// halo.hpp is header-only (templates); instantiate the common cases once.
#include "histcc/image/halo.hpp"

namespace histcc::img {

template class HaloExchangerT<std::uint8_t>;
template class HaloExchangerT<std::uint32_t>;

}  // namespace histcc::img
