#include "histcc/splitc/machine.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>

#include "histcc/splitc/race_ledger.hpp"
#include "histcc/util/require.hpp"

namespace histcc::splitc {

void Proc::sync() noexcept {
  stats_->syncs += 1;
  if (pending_words_ > 0) {
    stats_->batches += 1;
    pending_words_ = 0;
  }
}

void Proc::barrier() {
  sync();
  stats_->barriers += 1;
  barrier_->arrive_and_wait();
  // Crossing a global barrier starts a new epoch on every processor; the
  // race ledger treats accesses in distinct epochs as ordered.
  epoch_ += 1;
}

Machine::Machine(std::uint32_t nprocs)
    : nprocs_(nprocs),
      grid_(util::GridShape{1, 1}),
      barrier_(nprocs),
      stats_(nprocs),
      served_(std::make_unique<std::atomic<std::uint64_t>[]>(nprocs)) {
  HISTCC_REQUIRE(nprocs >= 1 && util::is_pow2(nprocs),
                 "processor count must be a power of two");
  grid_ = util::grid_shape(nprocs);
#if HISTCC_RACE_LEDGER
  race_ledger_ = std::make_unique<RaceLedger>(nprocs);
  race_ledger_enabled_ = true;
#endif
  reset_stats();
}

Machine::~Machine() = default;

void Machine::run(const std::function<void(Proc&)>& program) {
  HISTCC_REQUIRE(static_cast<bool>(program), "program must be callable");
  HISTCC_REQUIRE(!running_, "Machine::run is not reentrant");
  running_ = true;
  struct RunningGuard {
    bool* flag;
    ~RunningGuard() { *flag = false; }
  } guard{&running_};
  reset_stats();
  barrier_.reset();
  if (race_ledger_) race_ledger_->reset();

  // Throws RaceLedgerViolation if the last program's accesses violated
  // the barrier-epoch publication discipline.
  auto check_race_ledger = [this] {
    if (race_ledger_enabled_ && race_policy_ == RacePolicy::kThrow &&
        race_ledger_->conflict_count() > 0) {
      throw RaceLedgerViolation(race_ledger_->format_report());
    }
  };

  if (nprocs_ == 1) {
    // Degenerate single-processor machine: run inline, no threads.
    Proc proc(0, 1, grid_, &barrier_, &stats_[0], served_.get());
    program(proc);
    check_race_ledger();
    return;
  }

  std::vector<std::thread> threads;
  threads.reserve(nprocs_);
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (std::uint32_t rank = 0; rank < nprocs_; ++rank) {
    threads.emplace_back([&, rank] {
      Proc proc(rank, nprocs_, grid_, &barrier_, &stats_[rank],
                served_.get());
      try {
        program(proc);
      } catch (const BarrierAborted&) {
        // A peer failed first; its exception is the one to report.
      } catch (...) {
        {
          std::scoped_lock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        // Unblock peers waiting at the barrier so the program tears down
        // instead of deadlocking.
        barrier_.abort_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  check_race_ledger();
}

const CommStats& Machine::stats(std::uint32_t rank) const {
  HISTCC_REQUIRE(rank < nprocs_, "rank out of range");
  return stats_[rank];
}

CommStats Machine::total_stats() const noexcept {
  CommStats total;
  for (const auto& s : stats_) total += s;
  return total;
}

CommStats Machine::max_stats() const noexcept {
  CommStats mx;
  for (const auto& s : stats_) mx.max_with(s);
  return mx;
}

std::uint64_t Machine::served_words(std::uint32_t rank) const {
  HISTCC_REQUIRE(rank < nprocs_, "rank out of range");
  return served_[rank].load(std::memory_order_relaxed);
}

std::uint64_t Machine::max_port_words() const noexcept {
  std::uint64_t mx = 0;
  for (std::uint32_t rank = 0; rank < nprocs_; ++rank) {
    mx = std::max(mx, stats_[rank].words +
                          served_[rank].load(std::memory_order_relaxed));
  }
  return mx;
}

void Machine::reset_stats() noexcept {
  for (auto& s : stats_) s = CommStats{};
  for (std::uint32_t rank = 0; rank < nprocs_; ++rank) {
    served_[rank].store(0, std::memory_order_relaxed);
  }
}

}  // namespace histcc::splitc
