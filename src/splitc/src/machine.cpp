#include "histcc/splitc/machine.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "histcc/splitc/race_ledger.hpp"
#include "histcc/util/require.hpp"

namespace histcc::splitc {

void Proc::sync() noexcept {
  stats_->syncs += 1;
  if (pending_words_ > 0) {
    stats_->batches += 1;
    pending_words_ = 0;
  }
}

void Proc::maybe_perturb() {
  if (perturb_state_ == 0) return;
  // splitmix64: high-quality 64-bit mixing with per-rank state.
  perturb_state_ += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = perturb_state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  if ((z & 3u) == 0) {
    // ~1/4 of crossings: sleep 0..127us, long enough to reorder arrivals
    // even when ranks are time-sliced on few cores.
    std::this_thread::sleep_for(std::chrono::microseconds((z >> 2) & 127u));
  } else {
    for (std::uint64_t n = (z >> 2) & 7u; n > 0; --n) {
      std::this_thread::yield();
    }
  }
}

void Proc::barrier() {
  sync();
  stats_->barriers += 1;
  maybe_perturb();
  barrier_->arrive_and_wait();
  // Crossing a global barrier starts a new epoch on every processor; the
  // race ledger treats accesses in distinct epochs as ordered.
  epoch_ += 1;
}

Machine::Machine(std::uint32_t nprocs)
    : nprocs_(nprocs),
      grid_(util::GridShape{1, 1}),
      barrier_(nprocs),
      stats_(nprocs),
      served_(std::make_unique<std::atomic<std::uint64_t>[]>(nprocs)) {
  HISTCC_REQUIRE(nprocs >= 1 && util::is_pow2(nprocs),
                 "processor count must be a power of two");
  grid_ = util::grid_shape(nprocs);
#if HISTCC_RACE_LEDGER
  race_ledger_ = std::make_unique<RaceLedger>(nprocs);
  race_ledger_enabled_ = true;
#endif
  reset_stats();
}

Machine::~Machine() = default;

void Machine::set_race_ledger_mode(LedgerMode mode) {
  HISTCC_REQUIRE(!running_, "cannot switch ledger mode mid-run");
  if (race_ledger_) race_ledger_->set_mode(mode);
}

void Machine::run(const std::function<void(Proc&)>& program) {
  HISTCC_REQUIRE(static_cast<bool>(program), "program must be callable");
  HISTCC_REQUIRE(!running_, "Machine::run is not reentrant");
  running_ = true;
  struct RunningGuard {
    bool* flag;
    ~RunningGuard() { *flag = false; }
  } guard{&running_};
  reset_stats();
  barrier_.reset();
  if (race_ledger_) race_ledger_->reset();

  // Throws RaceLedgerViolation if the last program's accesses violated
  // the barrier-epoch publication discipline.
  auto check_race_ledger = [this] {
    if (race_ledger_enabled_ && race_policy_ == RacePolicy::kThrow &&
        race_ledger_->conflict_count() > 0) {
      throw RaceLedgerViolation(race_ledger_->format_report());
    }
  };

  // Derive per-rank perturbation streams from the machine seed; | 1 keeps
  // the state nonzero (0 means "off") for every seed and rank.
  auto perturb_state_for = [this](std::uint32_t rank) -> std::uint64_t {
    if (perturb_seed_ == 0) return 0;
    return (perturb_seed_ ^
            (0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(rank) + 1))) |
           1u;
  };

  if (nprocs_ == 1) {
    // Degenerate single-processor machine: run inline, no threads.
    Proc proc(0, 1, grid_, &barrier_, &stats_[0], served_.get());
    proc.perturb_state_ = perturb_state_for(0);
    program(proc);
    check_race_ledger();
    return;
  }

  std::vector<std::thread> threads;
  threads.reserve(nprocs_);
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (std::uint32_t rank = 0; rank < nprocs_; ++rank) {
    threads.emplace_back([&, rank] {
      Proc proc(rank, nprocs_, grid_, &barrier_, &stats_[rank],
                served_.get());
      proc.perturb_state_ = perturb_state_for(rank);
      try {
        program(proc);
      } catch (const BarrierAborted&) {
        // A peer failed first; its exception is the one to report.
      } catch (...) {
        {
          std::scoped_lock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        // Unblock peers waiting at the barrier so the program tears down
        // instead of deadlocking.
        barrier_.abort_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  check_race_ledger();
}

const CommStats& Machine::stats(std::uint32_t rank) const {
  HISTCC_REQUIRE(rank < nprocs_, "rank out of range");
  return stats_[rank];
}

CommStats Machine::total_stats() const noexcept {
  CommStats total;
  for (const auto& s : stats_) total += s;
  return total;
}

CommStats Machine::max_stats() const noexcept {
  CommStats mx;
  for (const auto& s : stats_) mx.max_with(s);
  return mx;
}

std::uint64_t Machine::served_words(std::uint32_t rank) const {
  HISTCC_REQUIRE(rank < nprocs_, "rank out of range");
  return served_[rank].load(std::memory_order_relaxed);
}

std::uint64_t Machine::max_port_words() const noexcept {
  std::uint64_t mx = 0;
  for (std::uint32_t rank = 0; rank < nprocs_; ++rank) {
    mx = std::max(mx, stats_[rank].words +
                          served_[rank].load(std::memory_order_relaxed));
  }
  return mx;
}

void Machine::reset_stats() noexcept {
  for (auto& s : stats_) s = CommStats{};
  for (std::uint32_t rank = 0; rank < nprocs_; ++rank) {
    served_[rank].store(0, std::memory_order_relaxed);
  }
}

}  // namespace histcc::splitc
