#include "histcc/splitc/machine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string_view>
#include <thread>
#include <utility>

#include "histcc/splitc/race_ledger.hpp"
#include "histcc/util/require.hpp"

namespace histcc::splitc {

void Proc::sync() noexcept {
  stats_->syncs += 1;
  if (pending_words_ > 0) {
    stats_->batches += 1;
    pending_words_ = 0;
  }
}

void Proc::maybe_perturb() {
  if (perturb_state_ == 0) return;
  // splitmix64: high-quality 64-bit mixing with per-rank state.
  perturb_state_ += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = perturb_state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  if ((z & 3u) == 0) {
    // ~1/4 of crossings: sleep 0..127us, long enough to reorder arrivals
    // even when ranks are time-sliced on few cores.
    std::this_thread::sleep_for(std::chrono::microseconds((z >> 2) & 127u));
  } else {
    for (std::uint64_t n = (z >> 2) & 7u; n > 0; --n) {
      std::this_thread::yield();
    }
  }
}

void Proc::barrier() {
  sync();
  stats_->barriers += 1;
  maybe_perturb();
  barrier_->arrive_and_wait();
  // Crossing a global barrier starts a new epoch on every processor; the
  // race ledger treats accesses in distinct epochs as ordered.
  epoch_ += 1;
}

Machine::Machine(std::uint32_t nprocs, WorkerMode mode)
    : nprocs_(nprocs),
      grid_(util::GridShape{1, 1}),
      barrier_(nprocs),
      stats_(nprocs),
      served_(std::make_unique<std::atomic<std::uint64_t>[]>(nprocs)),
      mode_(mode) {
  HISTCC_REQUIRE(nprocs >= 1 && util::is_pow2(nprocs),
                 "processor count must be a power of two");
  grid_ = util::grid_shape(nprocs);
#if HISTCC_RACE_LEDGER
  race_ledger_ = std::make_unique<RaceLedger>(nprocs);
  race_ledger_enabled_ = true;
#endif
  // CI and test harnesses force a mode for the whole process without
  // touching call sites; anything other than the two known values keeps
  // the built-in default.
  if (const char* env = std::getenv("HISTCC_SPREAD_LAYOUT")) {
    const std::string_view v(env);
    if (v == "strided") spread_layout_ = SpreadLayout::kStrided;
    else if (v == "packed") spread_layout_ = SpreadLayout::kPacked;
  }
  reset_stats();
}

Machine::~Machine() { stop_workers(); }

void Machine::set_spread_layout(SpreadLayout layout) {
  HISTCC_REQUIRE(!running_, "cannot switch spread layout mid-run");
  spread_layout_ = layout;
}

void Machine::set_trace(trace::Tracer* tracer) {
  HISTCC_REQUIRE(!running_, "cannot attach a tracer mid-run");
  tracer_ = tracer;
}

void Machine::set_race_ledger_mode(LedgerMode mode) {
  HISTCC_REQUIRE(!running_, "cannot switch ledger mode mid-run");
  if (race_ledger_) race_ledger_->set_mode(mode);
}

std::uint64_t Machine::perturb_state_for(std::uint32_t rank) const noexcept {
  // Derive per-rank perturbation streams from the machine seed; | 1 keeps
  // the state nonzero (0 means "off") for every seed and rank.
  if (perturb_seed_ == 0) return 0;
  return (perturb_seed_ ^
          (0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(rank) + 1))) |
         1u;
}

void Machine::execute_as(std::uint32_t rank,
                         const std::function<void(Proc&)>& program) {
  Proc proc(rank, nprocs_, grid_, &barrier_, &stats_[rank], served_.get());
  proc.perturb_state_ = perturb_state_for(rank);
  proc.tracer_ = tracer_;
  try {
    program(proc);
  } catch (const BarrierAborted&) {
    // A peer failed first; its exception is the one to report.
  } catch (...) {
    {
      std::scoped_lock lock(error_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    // Unblock peers waiting at the barrier so the program tears down
    // instead of deadlocking.
    barrier_.abort_all();
  }
}

void Machine::run_per_run(const std::function<void(Proc&)>& program) {
  std::vector<std::thread> threads;
  threads.reserve(nprocs_);
  for (std::uint32_t rank = 0; rank < nprocs_; ++rank) {
    threads.emplace_back([&, rank] { execute_as(rank, program); });
  }
  for (auto& t : threads) t.join();
}

void Machine::start_workers() {
  if (!workers_.empty()) return;
  workers_.reserve(nprocs_);
  for (std::uint32_t rank = 0; rank < nprocs_; ++rank) {
    workers_.emplace_back([this, rank] {
      std::uint64_t seen = 0;
      for (;;) {
        const std::function<void(Proc&)>* program = nullptr;
        {
          std::unique_lock lock(ctl_mutex_);
          ctl_cv_.wait(lock, [&] {
            return workers_stop_ || job_generation_ != seen;
          });
          if (workers_stop_) return;
          seen = job_generation_;
          program = job_program_;
        }
        execute_as(rank, *program);
        {
          std::scoped_lock lock(ctl_mutex_);
          if (--job_remaining_ == 0) done_cv_.notify_all();
        }
      }
    });
  }
}

void Machine::stop_workers() noexcept {
  {
    std::scoped_lock lock(ctl_mutex_);
    workers_stop_ = true;
    ctl_cv_.notify_all();
  }
  for (auto& t : workers_) t.join();
  workers_.clear();
  workers_stop_ = false;
}

void Machine::run_persistent(const std::function<void(Proc&)>& program) {
  start_workers();
  std::unique_lock lock(ctl_mutex_);
  job_program_ = &program;
  job_remaining_ = nprocs_;
  ++job_generation_;
  ctl_cv_.notify_all();
  done_cv_.wait(lock, [&] { return job_remaining_ == 0; });
  job_program_ = nullptr;
}

void Machine::run(const std::function<void(Proc&)>& program) {
  HISTCC_REQUIRE(static_cast<bool>(program), "program must be callable");
  HISTCC_REQUIRE(!running_, "Machine::run is not reentrant");
  running_ = true;
  struct RunningGuard {
    bool* flag;
    ~RunningGuard() { *flag = false; }
  } guard{&running_};
  reset_stats();
  barrier_.reset();
  if (race_ledger_) race_ledger_->reset();
  first_error_ = nullptr;

  // Throws RaceLedgerViolation if the last program's accesses violated
  // the barrier-epoch publication discipline.
  auto check_race_ledger = [this] {
    if (race_ledger_enabled_ && race_policy_ == RacePolicy::kThrow &&
        race_ledger_->conflict_count() > 0) {
      throw RaceLedgerViolation(race_ledger_->format_report());
    }
  };

  if (nprocs_ == 1) {
    // Degenerate single-processor machine: run inline, no threads.
    Proc proc(0, 1, grid_, &barrier_, &stats_[0], served_.get());
    proc.perturb_state_ = perturb_state_for(0);
    proc.tracer_ = tracer_;
    program(proc);
    check_race_ledger();
    return;
  }

  if (mode_ == WorkerMode::kPersistent) {
    run_persistent(program);
  } else {
    run_per_run(program);
  }
  std::exception_ptr error;
  {
    std::scoped_lock lock(error_mutex_);
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
  check_race_ledger();
}

const CommStats& Machine::stats(std::uint32_t rank) const {
  HISTCC_REQUIRE(rank < nprocs_, "rank out of range");
  return stats_[rank];
}

CommStats Machine::total_stats() const noexcept {
  CommStats total;
  for (const auto& s : stats_) total += s;
  return total;
}

CommStats Machine::max_stats() const noexcept {
  CommStats mx;
  for (const auto& s : stats_) mx.max_with(s);
  return mx;
}

std::uint64_t Machine::served_words(std::uint32_t rank) const {
  HISTCC_REQUIRE(rank < nprocs_, "rank out of range");
  return served_[rank].load(std::memory_order_relaxed);
}

std::uint64_t Machine::max_port_words() const noexcept {
  std::uint64_t mx = 0;
  for (std::uint32_t rank = 0; rank < nprocs_; ++rank) {
    mx = std::max(mx, stats_[rank].words +
                          served_[rank].load(std::memory_order_relaxed));
  }
  return mx;
}

void Machine::reset_stats() noexcept {
  for (auto& s : stats_) s = CommStats{};
  for (std::uint32_t rank = 0; rank < nprocs_; ++rank) {
    served_[rank].store(0, std::memory_order_relaxed);
  }
}

}  // namespace histcc::splitc
