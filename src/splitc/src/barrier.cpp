// barrier.hpp is header-only; compiled once here for ODR hygiene.
#include "histcc/splitc/barrier.hpp"

namespace histcc::splitc {

static_assert(sizeof(Barrier) > 0);

}  // namespace histcc::splitc
