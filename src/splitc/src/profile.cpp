#include "histcc/splitc/profile.hpp"

namespace histcc::splitc {

// Latency/bandwidth constants: bandwidths are the per-processor figures the
// paper cites (Section 2.2 and its references [27], [28], [30], [33]);
// latencies are the published one-way message latencies for each network of
// that era.
//
// cpu_ns_per_op is *calibrated against the paper's own Table 1*: the
// histogramming kernel charges one abstract RAM operation per pixel
// tallied, and Table 1's work-per-pixel column (time x p / n^2) is exactly
// the per-operation cost that reproduces the paper's measured times:
// CM-5 732 ns, SP-1 1.22 us, SP-2 562 ns, Paragon 635 ns, CS-2 231 ns.
// (The scan of Table 1 is ambiguous about which of the 20.0 ms / 9.20 ms
// entries is SP-1 vs SP-2; we assign the faster time to the faster
// machine, consistent with the SP-2 winning every Table 2 comparison.)

MachineProfile cm5() noexcept {
  return MachineProfile{"CM-5", 6.0, 7.62, 12.0, 732.0};
}

MachineProfile sp1() noexcept {
  return MachineProfile{"SP-1", 30.0, 8.0, 12.5, 1220.0};
}

MachineProfile sp2() noexcept {
  return MachineProfile{"SP-2", 25.0, 24.8, 40.0, 562.0};
}

MachineProfile cs2() noexcept {
  return MachineProfile{"CS-2", 12.0, 10.7, 50.0, 231.0};
}

MachineProfile paragon() noexcept {
  return MachineProfile{"Paragon", 20.0, 88.6, 175.0, 635.0};
}

MachineProfile host() noexcept {
  // Rough modern-host constants; only used for modeled-vs-wall sanity
  // comparisons, never for the paper-shape figures.
  return MachineProfile{"host", 0.5, 4000.0, 8000.0, 1.0};
}

std::string_view build_analysis_info() noexcept {
  // Assembled at compile time; ASan and TSan are mutually exclusive, so
  // enumerating the combinations stays readable.
#if HISTCC_RACE_LEDGER && defined(__SANITIZE_ADDRESS__)
  return "analysis: race-ledger+asan";
#elif HISTCC_RACE_LEDGER && defined(__SANITIZE_THREAD__)
  return "analysis: race-ledger+tsan";
#elif HISTCC_RACE_LEDGER
  return "analysis: race-ledger";
#elif defined(__SANITIZE_ADDRESS__)
  return "analysis: asan";
#elif defined(__SANITIZE_THREAD__)
  return "analysis: tsan";
#else
  return "analysis: none";
#endif
}

MachineProfile profile_by_name(std::string_view name) noexcept {
  if (name == "CM-5" || name == "cm5") return cm5();
  if (name == "SP-1" || name == "sp1") return sp1();
  if (name == "SP-2" || name == "sp2") return sp2();
  if (name == "CS-2" || name == "cs2") return cs2();
  if (name == "Paragon" || name == "paragon") return paragon();
  return host();
}

}  // namespace histcc::splitc
