#include "histcc/splitc/race_ledger.hpp"

#include <sstream>
#include <utility>

namespace histcc::splitc {

std::string RaceDiagnostic::to_string() const {
  std::ostringstream os;
  os << "array '" << array << "' element " << offset << " (block of rank "
     << owner << "): " << splitc::to_string(first_kind) << " by rank "
     << first_rank << " conflicts with " << splitc::to_string(second_kind)
     << " by rank " << second_rank << " in epoch " << epoch
     << " (no barrier between the accesses)";
  return os.str();
}

std::shared_ptr<ArrayShadow> RaceLedger::attach(std::string name) {
  auto shadow = std::make_shared<ArrayShadow>(std::move(name), nprocs_);
  std::scoped_lock lock(registry_mutex_);
  arrays_.push_back(shadow);
  return shadow;
}

void RaceLedger::record(ArrayShadow& shadow, std::uint32_t owner,
                        std::size_t off, std::size_t len, std::uint32_t rank,
                        std::uint64_t epoch, RaceAccess kind) {
  if (len == 0 || owner >= nprocs_) return;
  checks_.fetch_add(len, std::memory_order_relaxed);
  std::scoped_lock lock(shadow.mutex_);
  auto& block = shadow.cells_[owner];
  if (block.size() < off + len) block.resize(off + len);
  for (std::size_t i = off; i < off + len; ++i) {
    ArrayShadow::Cell& cell = block[i];
    if (kind == RaceAccess::kWrite) {
      if (cell.write_epoch == epoch && cell.write_rank != rank) {
        log_conflict(shadow, owner, i, epoch, cell.write_rank,
                     RaceAccess::kWrite, rank, RaceAccess::kWrite);
      }
      if (cell.read_epoch == epoch &&
          (cell.read_shared || cell.read_rank != rank)) {
        // read_shared means several distinct ranks read this epoch, so at
        // least one reader is foreign even if the recorded one is `rank`.
        log_conflict(shadow, owner, i, epoch, cell.read_rank,
                     RaceAccess::kRead, rank, RaceAccess::kWrite);
      }
      cell.write_epoch = epoch;
      cell.write_rank = rank;
    } else {
      if (cell.write_epoch == epoch && cell.write_rank != rank) {
        log_conflict(shadow, owner, i, epoch, cell.write_rank,
                     RaceAccess::kWrite, rank, RaceAccess::kRead);
      }
      if (cell.read_epoch != epoch) {
        cell.read_epoch = epoch;
        cell.read_rank = rank;
        cell.read_shared = false;
      } else if (cell.read_rank != rank) {
        cell.read_shared = true;
      }
    }
  }
}

void RaceLedger::log_conflict(const ArrayShadow& shadow, std::uint32_t owner,
                              std::size_t off, std::uint64_t epoch,
                              std::uint32_t first_rank, RaceAccess first_kind,
                              std::uint32_t second_rank,
                              RaceAccess second_kind) {
  std::scoped_lock lock(log_mutex_);
  ++conflicts_;
  if (log_.size() >= kMaxDiagnostics) return;
  RaceDiagnostic d;
  d.array = shadow.name();
  d.owner = owner;
  d.offset = off;
  d.epoch = epoch;
  d.first_rank = first_rank;
  d.first_kind = first_kind;
  d.second_rank = second_rank;
  d.second_kind = second_kind;
  log_.push_back(std::move(d));
}

void RaceLedger::reset() {
  {
    std::scoped_lock lock(registry_mutex_);
    for (auto& shadow : arrays_) {
      std::scoped_lock cell_lock(shadow->mutex_);
      for (auto& block : shadow->cells_) block.clear();
    }
    // Shadows whose Spread died are no longer reachable by any record
    // call; drop our reference so they don't accumulate across runs.
    std::erase_if(arrays_,
                  [](const auto& shadow) { return shadow.use_count() == 1; });
  }
  std::scoped_lock lock(log_mutex_);
  log_.clear();
  conflicts_ = 0;
  checks_.store(0, std::memory_order_relaxed);
}

std::vector<RaceDiagnostic> RaceLedger::diagnostics() const {
  std::scoped_lock lock(log_mutex_);
  return log_;
}

std::uint64_t RaceLedger::conflict_count() const noexcept {
  std::scoped_lock lock(log_mutex_);
  return conflicts_;
}

std::uint64_t RaceLedger::check_count() const noexcept {
  return checks_.load(std::memory_order_relaxed);
}

std::string RaceLedger::format_report() const {
  std::scoped_lock lock(log_mutex_);
  if (conflicts_ == 0) return {};
  std::ostringstream os;
  os << "histcc race ledger: " << conflicts_
     << " conflicting access(es) detected:\n";
  for (const auto& d : log_) os << "  " << d.to_string() << "\n";
  if (conflicts_ > log_.size()) {
    os << "  ... and " << (conflicts_ - log_.size()) << " more\n";
  }
  return os.str();
}

}  // namespace histcc::splitc
