#include "histcc/splitc/race_ledger.hpp"

#include <bit>
#include <sstream>
#include <utility>

namespace histcc::splitc {
namespace {

// --- sharded-mode word packing -------------------------------------------
//
// write_word = epoch:48 | rank:16            (0 == never written)
// read_word  = epoch:47 | rank:16 | shared:1 (0 == never read)
//
// kHostRank is squeezed into the reserved 16-bit value 0xFFFF; real ranks
// are bounded by the machine size (<= a few hundred), far below it.

constexpr std::uint64_t kRank16Mask = 0xFFFFu;
constexpr std::uint64_t kHostRank16 = 0xFFFFu;

constexpr std::uint64_t encode_rank(std::uint32_t rank) noexcept {
  return rank == kHostRank ? kHostRank16 : (rank & kRank16Mask);
}
constexpr std::uint32_t decode_rank(std::uint64_t rank16) noexcept {
  return rank16 == kHostRank16 ? kHostRank
                               : static_cast<std::uint32_t>(rank16);
}

constexpr std::uint64_t pack_write(std::uint64_t epoch,
                                   std::uint64_t rank16) noexcept {
  return (epoch << 16) | rank16;
}
constexpr std::uint64_t write_epoch(std::uint64_t word) noexcept {
  return word >> 16;
}
constexpr std::uint64_t write_rank16(std::uint64_t word) noexcept {
  return word & kRank16Mask;
}

constexpr std::uint64_t pack_read(std::uint64_t epoch, std::uint64_t rank16,
                                  bool shared) noexcept {
  return (epoch << 17) | (rank16 << 1) | (shared ? 1u : 0u);
}
constexpr std::uint64_t read_epoch(std::uint64_t word) noexcept {
  return word >> 17;
}
constexpr std::uint64_t read_rank16(std::uint64_t word) noexcept {
  return (word >> 1) & kRank16Mask;
}
constexpr bool read_shared(std::uint64_t word) noexcept {
  return (word & 1u) != 0;
}

void append_rank(std::ostringstream& os, std::uint32_t rank) {
  if (rank == kHostRank) {
    os << "the host";
  } else {
    os << "rank " << rank;
  }
}

}  // namespace

std::string RaceDiagnostic::to_string() const {
  std::ostringstream os;
  os << "array '" << array << "' ";
  if (target == RaceTarget::kSize) {
    os << "size of rank " << owner << "'s block";
  } else {
    os << "element " << offset << " (block of rank " << owner << ")";
  }
  os << ": " << splitc::to_string(first_kind) << " by ";
  append_rank(os, first_rank);
  os << " conflicts with " << splitc::to_string(second_kind) << " by ";
  append_rank(os, second_rank);
  os << " in epoch " << epoch << " (no barrier between the accesses)";
  return os.str();
}

// --- ArrayShadow ----------------------------------------------------------

ArrayShadow::ArrayShadow(std::string name, std::uint32_t nprocs)
    : name_(std::move(name)),
      nprocs_(nprocs),
      cells_(nprocs),
      size_cells_(nprocs),
      shards_(nprocs),
      size_shards_(std::make_unique<AtomicCell[]>(nprocs)) {}

ArrayShadow::~ArrayShadow() = default;

ArrayShadow::AtomicCell& ArrayShadow::SegmentedCells::cell(std::size_t index) {
  std::size_t run_len = 0;
  return *run(index, run_len);
}

ArrayShadow::AtomicCell* ArrayShadow::SegmentedCells::run(
    std::size_t index, std::size_t& run_len) {
  unsigned seg = 0;
  std::size_t slot = index;
  std::size_t size = kSeg0;
  if (index >= kSeg0) {
    // Segment s >= 1 covers [kSeg0 << (s-1), kSeg0 << s).
    seg = static_cast<unsigned>(std::bit_width(index / kSeg0));
    const std::size_t base = kSeg0 << (seg - 1);
    slot = index - base;
    size = base;
  }
  auto& entry = segments_[seg];
  AtomicCell* cells = entry.load(std::memory_order_acquire);
  if (cells == nullptr) {
    auto* fresh = new AtomicCell[size]();
    if (entry.compare_exchange_strong(cells, fresh, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      cells = fresh;
    } else {
      delete[] fresh;  // a peer installed first; `cells` now holds theirs
    }
  }
  run_len = size - slot;
  return cells + slot;
}

void ArrayShadow::SegmentedCells::clear() noexcept {
  for (auto& entry : segments_) {
    delete[] entry.load(std::memory_order_acquire);
    entry.store(nullptr, std::memory_order_release);
  }
}

// --- RaceLedger -----------------------------------------------------------

std::shared_ptr<ArrayShadow> RaceLedger::attach(std::string name) {
  auto shadow = std::make_shared<ArrayShadow>(std::move(name), nprocs_);
  std::scoped_lock lock(registry_mutex_);
  arrays_.push_back(shadow);
  return shadow;
}

void RaceLedger::record(ArrayShadow& shadow, std::uint32_t owner,
                        std::size_t off, std::size_t len, std::uint32_t rank,
                        std::uint64_t epoch, RaceAccess kind) {
  if (len == 0 || owner >= nprocs_) return;
  checks_.fetch_add(len, std::memory_order_relaxed);
  if (mode_ == LedgerMode::kSharded) {
    record_sharded(shadow, owner, off, len, rank, epoch, kind,
                   RaceTarget::kPayload);
  } else {
    record_mutex(shadow, owner, off, len, rank, epoch, kind,
                 RaceTarget::kPayload);
  }
}

void RaceLedger::record_size(ArrayShadow& shadow, std::uint32_t owner,
                             std::uint32_t rank, std::uint64_t epoch,
                             RaceAccess kind) {
  if (owner >= nprocs_) return;
  checks_.fetch_add(1, std::memory_order_relaxed);
  if (mode_ == LedgerMode::kSharded) {
    record_sharded(shadow, owner, 0, 1, rank, epoch, kind, RaceTarget::kSize);
  } else {
    record_mutex(shadow, owner, 0, 1, rank, epoch, kind, RaceTarget::kSize);
  }
}

void RaceLedger::check_cell_mutex(ArrayShadow& shadow, ArrayShadow::Cell& cell,
                                  std::uint32_t owner, std::size_t off,
                                  std::uint32_t rank, std::uint64_t epoch,
                                  RaceAccess kind, RaceTarget target) {
  if (kind == RaceAccess::kWrite) {
    if (cell.write_epoch == epoch && cell.write_rank != rank) {
      log_conflict(shadow, owner, off, epoch, cell.write_rank,
                   RaceAccess::kWrite, rank, RaceAccess::kWrite, target);
    }
    if (cell.read_epoch == epoch &&
        (cell.read_shared || cell.read_rank != rank)) {
      // read_shared means several distinct ranks read this epoch, so at
      // least one reader is foreign even if the recorded one is `rank`.
      log_conflict(shadow, owner, off, epoch, cell.read_rank,
                   RaceAccess::kRead, rank, RaceAccess::kWrite, target);
    }
    cell.write_epoch = epoch;
    cell.write_rank = rank;
  } else {
    if (cell.write_epoch == epoch && cell.write_rank != rank) {
      log_conflict(shadow, owner, off, epoch, cell.write_rank,
                   RaceAccess::kWrite, rank, RaceAccess::kRead, target);
    }
    if (cell.read_epoch != epoch) {
      cell.read_epoch = epoch;
      cell.read_rank = rank;
      cell.read_shared = false;
    } else if (cell.read_rank != rank) {
      cell.read_shared = true;
    }
  }
}

void RaceLedger::record_mutex(ArrayShadow& shadow, std::uint32_t owner,
                              std::size_t off, std::size_t len,
                              std::uint32_t rank, std::uint64_t epoch,
                              RaceAccess kind, RaceTarget target) {
  std::scoped_lock lock(shadow.mutex_);
  if (target == RaceTarget::kSize) {
    check_cell_mutex(shadow, shadow.size_cells_[owner], owner, 0, rank, epoch,
                     kind, target);
    return;
  }
  auto& block = shadow.cells_[owner];
  if (block.size() < off + len) block.resize(off + len);
  for (std::size_t i = off; i < off + len; ++i) {
    check_cell_mutex(shadow, block[i], owner, i, rank, epoch, kind, target);
  }
}

void RaceLedger::record_sharded(ArrayShadow& shadow, std::uint32_t owner,
                                std::size_t off, std::size_t len,
                                std::uint32_t rank, std::uint64_t epoch,
                                RaceAccess kind, RaceTarget target) {
  auto& shard = shadow.shards_[owner];
  const std::uint64_t r16 = encode_rank(rank);
  const std::size_t end = off + len;

  // Visit the affected cells as contiguous segment runs: `fn` receives a
  // raw cell pointer, the first element index it covers, and the run
  // length, so the hot loops below skip the per-element segment lookup.
  // The size target lives in its dedicated one-cell-per-owner store.
  auto for_cells = [&](auto&& fn) {
    if (target == RaceTarget::kSize) {
      fn(&shadow.size_shards_[owner], off, std::size_t{1});
      return;
    }
    std::size_t i = off;
    while (i < end) {
      std::size_t run_len = 0;
      ArrayShadow::AtomicCell* cells = shard.run(i, run_len);
      const std::size_t n = std::min(run_len, end - i);
      fn(cells, i, n);
      i += n;
    }
  };

  if (kind == RaceAccess::kWrite) {
    // Pass A: publish my write record per element.  The exchange returns
    // the true previous record (RMWs read the latest value in modification
    // order), so same-epoch foreign writes are detected exactly as under
    // the mutex.
    const std::uint64_t mine = pack_write(epoch, r16);
    for_cells([&](ArrayShadow::AtomicCell* cells, std::size_t base,
                  std::size_t n) {
      for (std::size_t k = 0; k < n; ++k) {
        const std::uint64_t prev =
            cells[k].write_word.exchange(mine, std::memory_order_relaxed);
        if (write_epoch(prev) == epoch && write_rank16(prev) != r16) {
          log_conflict(shadow, owner, base + k, epoch,
                       decode_rank(write_rank16(prev)), RaceAccess::kWrite,
                       rank, RaceAccess::kWrite, target);
        }
      }
    });
    // Store-buffering fence: my write records are globally visible before
    // I look for concurrent readers, and vice versa on the read side, so
    // of two concurrent conflicting accesses at least one sees the other.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // Pass B: cross-check against readers of the same epoch.
    for_cells([&](ArrayShadow::AtomicCell* cells, std::size_t base,
                  std::size_t n) {
      for (std::size_t k = 0; k < n; ++k) {
        const std::uint64_t r =
            cells[k].read_word.load(std::memory_order_relaxed);
        if (read_epoch(r) == epoch &&
            (read_shared(r) || read_rank16(r) != r16)) {
          log_conflict(shadow, owner, base + k, epoch,
                       decode_rank(read_rank16(r)), RaceAccess::kRead, rank,
                       RaceAccess::kWrite, target);
        }
      }
    });
  } else {
    // Pass A: merge my read into the per-epoch reader record.  First
    // reader of an epoch installs (epoch, rank); a second distinct rank
    // sets the shared bit but keeps the first reader for diagnostics,
    // matching the mutex cells.
    const std::uint64_t fresh = pack_read(epoch, r16, false);
    for_cells([&](ArrayShadow::AtomicCell* cells, std::size_t base,
                  std::size_t n) {
      (void)base;
      for (std::size_t k = 0; k < n; ++k) {
        auto& word = cells[k].read_word;
        std::uint64_t cur = word.load(std::memory_order_relaxed);
        for (;;) {
          std::uint64_t desired;
          if (read_epoch(cur) == epoch) {
            if (read_shared(cur) || read_rank16(cur) == r16) break;
            desired = cur | 1u;
          } else {
            desired = fresh;
          }
          if (word.compare_exchange_weak(cur, desired,
                                         std::memory_order_relaxed)) {
            break;
          }
        }
      }
    });
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // Pass B: cross-check against a same-epoch foreign write.
    for_cells([&](ArrayShadow::AtomicCell* cells, std::size_t base,
                  std::size_t n) {
      for (std::size_t k = 0; k < n; ++k) {
        const std::uint64_t w =
            cells[k].write_word.load(std::memory_order_relaxed);
        if (write_epoch(w) == epoch && write_rank16(w) != r16) {
          log_conflict(shadow, owner, base + k, epoch,
                       decode_rank(write_rank16(w)), RaceAccess::kWrite, rank,
                       RaceAccess::kRead, target);
        }
      }
    });
  }
}

void RaceLedger::log_conflict(const ArrayShadow& shadow, std::uint32_t owner,
                              std::size_t off, std::uint64_t epoch,
                              std::uint32_t first_rank, RaceAccess first_kind,
                              std::uint32_t second_rank,
                              RaceAccess second_kind, RaceTarget target) {
  std::scoped_lock lock(log_mutex_);
  ++conflicts_;
  if (log_.size() >= kMaxDiagnostics) return;
  RaceDiagnostic d;
  d.array = shadow.name();
  d.owner = owner;
  d.offset = off;
  d.epoch = epoch;
  d.first_rank = first_rank;
  d.first_kind = first_kind;
  d.second_rank = second_rank;
  d.second_kind = second_kind;
  d.target = target;
  log_.push_back(std::move(d));
}

void RaceLedger::reset() {
  {
    std::scoped_lock lock(registry_mutex_);
    for (auto& shadow : arrays_) {
      std::scoped_lock cell_lock(shadow->mutex_);
      for (auto& block : shadow->cells_) block.clear();
      for (auto& cell : shadow->size_cells_) cell = ArrayShadow::Cell{};
      for (auto& shard : shadow->shards_) shard.clear();
      for (std::uint32_t r = 0; r < shadow->nprocs_; ++r) {
        shadow->size_shards_[r].write_word.store(0, std::memory_order_relaxed);
        shadow->size_shards_[r].read_word.store(0, std::memory_order_relaxed);
      }
    }
    // Shadows whose Spread died are no longer reachable by any record
    // call; drop our reference so they don't accumulate across runs.
    std::erase_if(arrays_,
                  [](const auto& shadow) { return shadow.use_count() == 1; });
  }
  std::scoped_lock lock(log_mutex_);
  log_.clear();
  conflicts_ = 0;
  checks_.store(0, std::memory_order_relaxed);
}

std::vector<RaceDiagnostic> RaceLedger::diagnostics() const {
  std::scoped_lock lock(log_mutex_);
  return log_;
}

std::uint64_t RaceLedger::conflict_count() const noexcept {
  std::scoped_lock lock(log_mutex_);
  return conflicts_;
}

std::uint64_t RaceLedger::check_count() const noexcept {
  return checks_.load(std::memory_order_relaxed);
}

std::string RaceLedger::format_report() const {
  std::scoped_lock lock(log_mutex_);
  if (conflicts_ == 0) return {};
  std::ostringstream os;
  os << "histcc race ledger: " << conflicts_
     << " conflicting access(es) detected:\n";
  for (const auto& d : log_) os << "  " << d.to_string() << "\n";
  if (conflicts_ > log_.size()) {
    os << "  ... and " << (conflicts_ - log_.size()) << " more\n";
  }
  return os.str();
}

}  // namespace histcc::splitc
