// stats.hpp is header-only; compiled once here for ODR hygiene.
#include "histcc/splitc/stats.hpp"

namespace histcc::splitc {

static_assert(sizeof(CommStats) > 0);

}  // namespace histcc::splitc
