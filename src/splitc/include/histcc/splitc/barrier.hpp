#ifndef HISTCC_SPLITC_BARRIER_HPP
#define HISTCC_SPLITC_BARRIER_HPP

/// \file barrier.hpp
/// Reusable sense-reversing barrier for the virtual processors.
///
/// We run up to 128 virtual processors on a host with far fewer cores, so a
/// spin barrier would livelock the scheduler; this barrier blocks on a
/// condition variable.  Sense reversal makes it safely reusable across the
/// many consecutive barrier episodes the merge algorithm performs.
///
/// The barrier is abortable: if one virtual processor throws, the runtime
/// calls `abort_all()` so peers blocked here unwind (with BarrierAborted)
/// instead of deadlocking; `reset()` rearms it for the next SPMD program.

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>

namespace histcc::splitc {

/// Thrown out of arrive_and_wait() on the non-faulting processors when a
/// peer aborts the SPMD program.  The runtime swallows it and reports the
/// original error.
class BarrierAborted : public std::exception {
 public:
  [[nodiscard]] const char* what() const noexcept override {
    return "histcc: SPMD barrier aborted because a peer processor failed";
  }
};

/// Blocking, reusable, abortable barrier for a fixed number of
/// participants.
class Barrier {
 public:
  explicit Barrier(std::uint32_t participants) noexcept
      : participants_(participants) {}

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Block until all participants have arrived, or throw BarrierAborted if
  /// a peer called abort_all().
  void arrive_and_wait() {
    std::unique_lock lock(mutex_);
    if (aborted_) throw BarrierAborted{};
    const bool my_sense = sense_;
    if (++waiting_ == participants_) {
      waiting_ = 0;
      sense_ = !sense_;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return sense_ != my_sense || aborted_; });
    if (aborted_ && sense_ == my_sense) throw BarrierAborted{};
  }

  /// Release every blocked participant with BarrierAborted and make all
  /// future arrivals fail until reset().
  void abort_all() {
    std::scoped_lock lock(mutex_);
    aborted_ = true;
    cv_.notify_all();
  }

  /// Rearm after an abort; only call when no participant is inside.
  void reset() {
    std::scoped_lock lock(mutex_);
    aborted_ = false;
    waiting_ = 0;
    sense_ = false;
    generation_ = 0;
  }

  [[nodiscard]] std::uint32_t participants() const noexcept {
    return participants_;
  }

  /// Completed barrier episodes since the last reset().  Equal to
  /// `Proc::epoch() - 1` on every processor between two episodes; the race
  /// ledger's epoch numbering is anchored to this count.
  [[nodiscard]] std::uint64_t generation() const {
    std::scoped_lock lock(mutex_);
    return generation_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::uint32_t participants_;
  std::uint32_t waiting_ = 0;
  std::uint64_t generation_ = 0;
  bool sense_ = false;
  bool aborted_ = false;
};

}  // namespace histcc::splitc

#endif  // HISTCC_SPLITC_BARRIER_HPP
