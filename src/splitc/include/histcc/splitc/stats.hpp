#ifndef HISTCC_SPLITC_STATS_HPP
#define HISTCC_SPLITC_STATS_HPP

/// \file stats.hpp
/// Per-processor communication ledger for the BDM cost model.
///
/// Every remote access issued through the splitc runtime is recorded here.
/// Under the BDM model a single remote access costs tau + 1 and a pipelined
/// batch of l prefetched words issued between two sync() points costs
/// tau + l; we therefore record both the raw word count and the number of
/// sync-delimited batches, and a MachineProfile turns the pair into modeled
/// communication time.

#include <cstdint>

#include "histcc/splitc/profile.hpp"

namespace histcc::splitc {

/// Communication ledger for one virtual processor (or an aggregate).
struct CommStats {
  std::uint64_t messages = 0;   ///< prefetch / get / put initiations
  std::uint64_t words = 0;      ///< remote 4-byte words moved
  std::uint64_t batches = 0;    ///< sync-delimited pipelined batches
  std::uint64_t syncs = 0;      ///< sync() calls (incl. empty ones)
  std::uint64_t barriers = 0;   ///< barrier() calls
  std::uint64_t local_ops = 0;  ///< optional Tcomp meter (charge_ops)
  /// Element accesses this processor pushed through the race-ledger
  /// shadow check (always 0 in builds without HISTCC_RACE_LEDGER).
  /// Never part of modeled time — it meters the checker, not the program.
  std::uint64_t ledger_checks = 0;

  /// Elementwise sum; used to aggregate across processors.
  CommStats& operator+=(const CommStats& o) noexcept {
    messages += o.messages;
    words += o.words;
    batches += o.batches;
    syncs += o.syncs;
    barriers += o.barriers;
    local_ops += o.local_ops;
    ledger_checks += o.ledger_checks;
    return *this;
  }

  /// Elementwise max; the BDM complexity of an SPMD phase is the maximum
  /// over processors, so figures use this aggregate.
  void max_with(const CommStats& o) noexcept {
    if (o.messages > messages) messages = o.messages;
    if (o.words > words) words = o.words;
    if (o.batches > batches) batches = o.batches;
    if (o.syncs > syncs) syncs = o.syncs;
    if (o.barriers > barriers) barriers = o.barriers;
    if (o.local_ops > local_ops) local_ops = o.local_ops;
    if (o.ledger_checks > ledger_checks) ledger_checks = o.ledger_checks;
  }

  /// Modeled Tcomm in seconds under the given machine profile.  Barriers are
  /// charged one latency each (the paper's (log p)*tau terms come out of the
  /// explicit barrier structure of the algorithms).
  [[nodiscard]] double modeled_comm_seconds(
      const MachineProfile& m) const noexcept {
    return m.comm_seconds(batches + barriers, words);
  }

  /// Modeled Tcomp in seconds under the given machine profile.
  [[nodiscard]] double modeled_comp_seconds(
      const MachineProfile& m) const noexcept {
    return m.comp_seconds(local_ops);
  }
};

}  // namespace histcc::splitc

#endif  // HISTCC_SPLITC_STATS_HPP
