#ifndef HISTCC_SPLITC_RACE_LEDGER_HPP
#define HISTCC_SPLITC_RACE_LEDGER_HPP

/// \file race_ledger.hpp
/// Barrier-epoch happens-before checking for the SPMD runtime.
///
/// The paper's algorithms are race-free by a *protocol*: a processor may
/// read remote data only if its owner last wrote it before a barrier both
/// processors have since crossed (docs/runtime.md, "publication
/// discipline").  ThreadSanitizer can only observe one physical
/// interleaving per run, so a protocol violation that happens to be
/// serialized by scheduling luck goes unreported.  The race ledger checks
/// the protocol itself: every element access performed through a
/// `Spread`/`SpreadVec` records (rank, barrier epoch, read/write) in a
/// shadow ledger, and two accesses to the same element from different
/// ranks in the same epoch — at least one a write — are a conflict no
/// matter how the OS scheduled the threads.  Detection is therefore
/// deterministic: if a schedule exists under which the accesses race, the
/// ledger reports it on every run.
///
/// The ledger sees transfers issued through the Spread API and the
/// explicit `note_local_write` / `note_local_read` annotations algorithms
/// place around direct writes to their `local()` span.  A missing
/// annotation can hide a race (no record, no conflict) but can never
/// invent one, so the checker is sound against false positives by
/// construction.
///
/// Compiled in only under the `HISTCC_RACE_LEDGER` CMake option (a PUBLIC
/// compile definition of the splitc target); release builds pay zero
/// cost.  Within an instrumented build, `Machine::set_race_ledger_enabled`
/// is the runtime switch.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace histcc::splitc {

/// Kind of element access recorded in the shadow ledger.
enum class RaceAccess : std::uint8_t { kRead, kWrite };

[[nodiscard]] constexpr const char* to_string(RaceAccess a) noexcept {
  return a == RaceAccess::kRead ? "read" : "write";
}

/// One detected protocol violation: two accesses to the same element of
/// the same distributed array, from different ranks, in the same barrier
/// epoch, at least one of them a write.
struct RaceDiagnostic {
  std::string array;        ///< name given at Spread construction
  std::uint32_t owner = 0;  ///< rank owning the block the element lives in
  std::size_t offset = 0;   ///< element offset within the owner's block
  std::uint64_t epoch = 0;  ///< barrier epoch both accesses fall in
  std::uint32_t first_rank = 0;
  RaceAccess first_kind = RaceAccess::kWrite;
  std::uint32_t second_rank = 0;
  RaceAccess second_kind = RaceAccess::kWrite;

  /// "array 'chg' element 12 (block of rank 3): write by rank 1 conflicts
  ///  with read by rank 0 in epoch 5 (no barrier between the accesses)"
  [[nodiscard]] std::string to_string() const;
};

/// Thrown from Machine::run when the ledger recorded conflicts and the
/// machine's policy is RacePolicy::kThrow.
class RaceLedgerViolation : public std::runtime_error {
 public:
  explicit RaceLedgerViolation(const std::string& what)
      : std::runtime_error(what) {}
};

/// Per-array shadow state: one (last write, last reads) cell per element
/// of every rank's block.  Owned jointly by the Spread that registered it
/// and the RaceLedger (diagnostics may outlive the array).
class ArrayShadow {
 public:
  ArrayShadow(std::string name, std::uint32_t nprocs)
      : name_(std::move(name)), cells_(nprocs) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  friend class RaceLedger;

  /// Epoch value meaning "never accessed".  Real epochs start at 1.
  static constexpr std::uint64_t kNever = 0;

  struct Cell {
    std::uint64_t write_epoch = kNever;
    std::uint32_t write_rank = 0;
    std::uint64_t read_epoch = kNever;
    std::uint32_t read_rank = 0;
    bool read_shared = false;  ///< >1 distinct rank read in read_epoch
  };

  std::string name_;
  std::mutex mutex_;
  std::vector<std::vector<Cell>> cells_;  ///< [owner rank][element]
};

/// The machine-wide checker: registry of array shadows plus the conflict
/// log.  Thread-safe; every method may be called from any virtual
/// processor's thread.
class RaceLedger {
 public:
  explicit RaceLedger(std::uint32_t nprocs) : nprocs_(nprocs) {}

  RaceLedger(const RaceLedger&) = delete;
  RaceLedger& operator=(const RaceLedger&) = delete;

  /// Register a distributed array; called from Spread/SpreadVec
  /// constructors (host side, before Machine::run).
  [[nodiscard]] std::shared_ptr<ArrayShadow> attach(std::string name);

  /// Record `len` element accesses [off, off+len) in `owner`'s block of
  /// the array behind `shadow`, performed by `rank` in barrier `epoch`.
  /// Detected conflicts are appended to the diagnostic log.
  void record(ArrayShadow& shadow, std::uint32_t owner, std::size_t off,
              std::size_t len, std::uint32_t rank, std::uint64_t epoch,
              RaceAccess kind);

  /// Clear all shadow cells and diagnostics; Machine::run calls this on
  /// entry so consecutive SPMD programs don't see each other's accesses.
  void reset();

  /// Conflicts recorded since the last reset (capped at kMaxDiagnostics;
  /// conflict_count() keeps the true total).
  [[nodiscard]] std::vector<RaceDiagnostic> diagnostics() const;

  /// Total conflicts since the last reset, including ones past the cap.
  [[nodiscard]] std::uint64_t conflict_count() const noexcept;

  /// Element checks performed since the last reset.
  [[nodiscard]] std::uint64_t check_count() const noexcept;

  /// Multi-line human-readable report of all retained diagnostics
  /// (empty string when there are none).
  [[nodiscard]] std::string format_report() const;

  /// Retain at most this many full diagnostics (the count is exact).
  static constexpr std::size_t kMaxDiagnostics = 64;

 private:
  void log_conflict(const ArrayShadow& shadow, std::uint32_t owner,
                    std::size_t off, std::uint64_t epoch,
                    std::uint32_t first_rank, RaceAccess first_kind,
                    std::uint32_t second_rank, RaceAccess second_kind);

  std::uint32_t nprocs_;

  mutable std::mutex registry_mutex_;
  std::vector<std::shared_ptr<ArrayShadow>> arrays_;

  mutable std::mutex log_mutex_;
  std::vector<RaceDiagnostic> log_;
  std::uint64_t conflicts_ = 0;
  std::atomic<std::uint64_t> checks_{0};
};

}  // namespace histcc::splitc

#endif  // HISTCC_SPLITC_RACE_LEDGER_HPP
