#ifndef HISTCC_SPLITC_RACE_LEDGER_HPP
#define HISTCC_SPLITC_RACE_LEDGER_HPP

/// \file race_ledger.hpp
/// Barrier-epoch happens-before checking for the SPMD runtime.
///
/// The paper's algorithms are race-free by a *protocol*: a processor may
/// read remote data only if its owner last wrote it before a barrier both
/// processors have since crossed (docs/runtime.md, "publication
/// discipline").  ThreadSanitizer can only observe one physical
/// interleaving per run, so a protocol violation that happens to be
/// serialized by scheduling luck goes unreported.  The race ledger checks
/// the protocol itself: every element access performed through a
/// `Spread`/`SpreadVec` records (rank, barrier epoch, read/write) in a
/// shadow ledger, and two accesses to the same element from different
/// ranks in the same epoch — at least one a write — are a conflict no
/// matter how the OS scheduled the threads.  Detection is therefore
/// deterministic: if a schedule exists under which the accesses race, the
/// ledger reports it on every run.
///
/// Beyond payload elements the ledger also tracks, per block:
///   * the block's *size* as a pseudo-element, so a `SpreadVec` whose size
///     is probed (`size_of`) in the same epoch its owner published it
///     (`note_local_write`) is diagnosed — a size must cross a barrier
///     before peers may rely on it, exactly like the payload it describes;
///   * *host probes*: `block()` access while an SPMD program is running is
///     recorded under the sentinel `kHostRank` at the machine's current
///     epoch, closing the bypass around the instrumented access paths.
///
/// The ledger sees transfers issued through the Spread API and the
/// explicit `note_local_write` / `note_local_read` annotations algorithms
/// place around direct writes to their `local()` span.  A missing
/// annotation can hide a race (no record, no conflict) but can never
/// invent one, so the checker is sound against false positives by
/// construction.
///
/// Two interchangeable shadow stores implement the same check:
///   * `LedgerMode::kSharded` (default): striped atomics keyed by element
///     index — one exchange/CAS per element plus two fences per recorded
///     range, no locks on the hot path, so instrumented runs stay within a
///     small factor of uninstrumented wall-clock even at p=16;
///   * `LedgerMode::kMutex`: the original per-array mutex walk, kept as
///     the oracle the sharded store is differentially tested against
///     (tests/test_race_ledger.cpp asserts identical diagnostics).
///
/// Compiled in only under the `HISTCC_RACE_LEDGER` CMake option (a PUBLIC
/// compile definition of the splitc target); release builds pay zero
/// cost.  Within an instrumented build, `Machine::set_race_ledger_enabled`
/// is the runtime switch.  The RaceLedger class itself is always built —
/// the OpenMP mirror reuses it for its own epoch checking (see
/// histcc/omp/epoch_check.hpp) independently of the Spread instrumentation.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace histcc::splitc {

/// Kind of element access recorded in the shadow ledger.
enum class RaceAccess : std::uint8_t { kRead, kWrite };

[[nodiscard]] constexpr const char* to_string(RaceAccess a) noexcept {
  return a == RaceAccess::kRead ? "read" : "write";
}

/// What a recorded access touched: a payload element, or the block's size
/// word (SpreadVec::size_of / resize publication).
enum class RaceTarget : std::uint8_t { kPayload, kSize };

/// Which shadow-store implementation the ledger uses (see file comment).
enum class LedgerMode : std::uint8_t { kSharded, kMutex };

/// Sentinel rank for host-side probes (`block()` during a run): conflicts
/// with every real rank's same-epoch access, and is rendered as "host" in
/// diagnostics.
inline constexpr std::uint32_t kHostRank = 0xFFFFFFFFu;

/// One detected protocol violation: two accesses to the same element (or
/// size word) of the same distributed array, from different ranks, in the
/// same barrier epoch, at least one of them a write.
struct RaceDiagnostic {
  std::string array;        ///< name given at Spread construction
  std::uint32_t owner = 0;  ///< rank owning the block the element lives in
  std::size_t offset = 0;   ///< element offset within the owner's block
  std::uint64_t epoch = 0;  ///< barrier epoch both accesses fall in
  std::uint32_t first_rank = 0;
  RaceAccess first_kind = RaceAccess::kWrite;
  std::uint32_t second_rank = 0;
  RaceAccess second_kind = RaceAccess::kWrite;
  RaceTarget target = RaceTarget::kPayload;

  /// "array 'chg' element 12 (block of rank 3): write by rank 1 conflicts
  ///  with read by rank 0 in epoch 5 (no barrier between the accesses)";
  /// size probes render as "size of rank 3's block" instead of an element.
  [[nodiscard]] std::string to_string() const;
};

/// Thrown from Machine::run when the ledger recorded conflicts and the
/// machine's policy is RacePolicy::kThrow.
class RaceLedgerViolation : public std::runtime_error {
 public:
  explicit RaceLedgerViolation(const std::string& what)
      : std::runtime_error(what) {}
};

/// Per-array shadow state: one (last write, last reads) cell per element
/// of every rank's block, plus one size cell per rank.  Owned jointly by
/// the Spread that registered it and the RaceLedger (diagnostics may
/// outlive the array).  Holds both the sharded (striped-atomic) and the
/// mutex representation; RaceLedger::mode() picks which one records.
class ArrayShadow {
 public:
  ArrayShadow(std::string name, std::uint32_t nprocs);
  ~ArrayShadow();

  ArrayShadow(const ArrayShadow&) = delete;
  ArrayShadow& operator=(const ArrayShadow&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  friend class RaceLedger;

  /// Epoch value meaning "never accessed".  Real epochs start at 1.
  static constexpr std::uint64_t kNever = 0;

  /// Mutex-mode cell: plain fields guarded by mutex_.
  struct Cell {
    std::uint64_t write_epoch = kNever;
    std::uint32_t write_rank = 0;
    std::uint64_t read_epoch = kNever;
    std::uint32_t read_rank = 0;
    bool read_shared = false;  ///< >1 distinct rank read in read_epoch
  };

  /// Sharded-mode cell: the same five fields packed into two words.
  ///   write_word = epoch:48 | rank:16          (0 = never written)
  ///   read_word  = epoch:47 | rank:16 | shared:1  (0 = never read)
  /// kHostRank packs as 0xFFFF.  Updated with one relaxed RMW; the
  /// cross-kind check (writer looks at readers and vice versa) is ordered
  /// by a seq_cst fence per recorded range, which is the store-buffering
  /// fence pattern: of two concurrent conflicting accesses, at least one
  /// is guaranteed to observe the other's record.
  struct AtomicCell {
    std::atomic<std::uint64_t> write_word{0};
    std::atomic<std::uint64_t> read_word{0};
  };

  /// Lock-free growable cell array for one rank's block: a fixed table of
  /// segment pointers installed on demand with CAS.  Segment 0 holds
  /// kSeg0 cells; segment s >= 1 holds kSeg0 * 2^(s-1) cells covering
  /// element indices [kSeg0 * 2^(s-1), kSeg0 * 2^s).  Readers never block
  /// and installed segments are never moved, so cell references stay
  /// valid for the lifetime of the shadow (until reset()).
  class SegmentedCells {
   public:
    SegmentedCells() = default;
    ~SegmentedCells() { clear(); }

    SegmentedCells(const SegmentedCells&) = delete;
    SegmentedCells& operator=(const SegmentedCells&) = delete;

    /// The cell for element `index`, allocating its segment if needed.
    [[nodiscard]] AtomicCell& cell(std::size_t index);

    /// The cell for `index` plus the count of contiguous cells from it to
    /// the end of its segment, so range records resolve the segment
    /// lookup once per run instead of once per element.
    [[nodiscard]] AtomicCell* run(std::size_t index, std::size_t& run_len);

    /// Free all segments.  Host-side only (no concurrent record calls).
    void clear() noexcept;

   private:
    static constexpr std::size_t kSeg0 = 1024;
    static constexpr unsigned kSegments = 40;  ///< covers ~5.6e14 elements

    std::array<std::atomic<AtomicCell*>, kSegments> segments_{};
  };

  std::string name_;
  std::uint32_t nprocs_;

  // Mutex-mode state.
  std::mutex mutex_;
  std::vector<std::vector<Cell>> cells_;  ///< [owner rank][element]
  std::vector<Cell> size_cells_;          ///< [owner rank]

  // Sharded-mode state.
  std::vector<SegmentedCells> shards_;            ///< [owner rank]
  std::unique_ptr<AtomicCell[]> size_shards_;     ///< [owner rank]
};

/// The machine-wide checker: registry of array shadows plus the conflict
/// log.  Thread-safe; every method except set_mode/reset may be called
/// from any virtual processor's thread.
class RaceLedger {
 public:
  explicit RaceLedger(std::uint32_t nprocs) : nprocs_(nprocs) {}

  RaceLedger(const RaceLedger&) = delete;
  RaceLedger& operator=(const RaceLedger&) = delete;

  /// Register a distributed array; called from Spread/SpreadVec
  /// constructors (host side, before Machine::run).
  [[nodiscard]] std::shared_ptr<ArrayShadow> attach(std::string name);

  // NOLINTBEGIN(bugprone-easily-swappable-parameters): the (owner, off,
  // len, rank, epoch) order mirrors the Split-C access tuple everywhere in
  // the ledger; declaration-only, so SuppressParametersUsedTogether cannot
  // see the bodies that use them jointly.

  /// Record `len` element accesses [off, off+len) in `owner`'s block of
  /// the array behind `shadow`, performed by `rank` in barrier `epoch`.
  /// Detected conflicts are appended to the diagnostic log.
  void record(ArrayShadow& shadow, std::uint32_t owner, std::size_t off,
              std::size_t len, std::uint32_t rank, std::uint64_t epoch,
              RaceAccess kind);

  /// Record an access to the *size* of `owner`'s block (a SpreadVec
  /// size_of probe reads it; the owner's note_local_write publishes it).
  void record_size(ArrayShadow& shadow, std::uint32_t owner,
                   std::uint32_t rank, std::uint64_t epoch, RaceAccess kind);

  // NOLINTEND(bugprone-easily-swappable-parameters)

  /// Select the shadow-store implementation.  Host-side only, between
  /// runs; kSharded is the default.
  void set_mode(LedgerMode mode) noexcept { mode_ = mode; }
  [[nodiscard]] LedgerMode mode() const noexcept { return mode_; }

  /// Clear all shadow cells and diagnostics; Machine::run calls this on
  /// entry so consecutive SPMD programs don't see each other's accesses.
  void reset();

  /// Conflicts recorded since the last reset (capped at kMaxDiagnostics;
  /// conflict_count() keeps the true total).
  [[nodiscard]] std::vector<RaceDiagnostic> diagnostics() const;

  /// Total conflicts since the last reset, including ones past the cap.
  [[nodiscard]] std::uint64_t conflict_count() const noexcept;

  /// Element checks performed since the last reset (size probes count as
  /// one check each).  Exact in both ledger modes.
  [[nodiscard]] std::uint64_t check_count() const noexcept;

  /// Multi-line human-readable report of all retained diagnostics
  /// (empty string when there are none).
  [[nodiscard]] std::string format_report() const;

  /// Retain at most this many full diagnostics (the count is exact).
  static constexpr std::size_t kMaxDiagnostics = 64;

 private:
  // NOLINTBEGIN(bugprone-easily-swappable-parameters): same access-tuple
  // order as the public record(); declaration-only.
  void record_mutex(ArrayShadow& shadow, std::uint32_t owner, std::size_t off,
                    std::size_t len, std::uint32_t rank, std::uint64_t epoch,
                    RaceAccess kind, RaceTarget target);
  void record_sharded(ArrayShadow& shadow, std::uint32_t owner,
                      std::size_t off, std::size_t len, std::uint32_t rank,
                      std::uint64_t epoch, RaceAccess kind, RaceTarget target);
  void check_cell_mutex(ArrayShadow& shadow, ArrayShadow::Cell& cell,
                        std::uint32_t owner, std::size_t off,
                        std::uint32_t rank, std::uint64_t epoch,
                        RaceAccess kind, RaceTarget target);
  void log_conflict(const ArrayShadow& shadow, std::uint32_t owner,
                    std::size_t off, std::uint64_t epoch,
                    std::uint32_t first_rank, RaceAccess first_kind,
                    std::uint32_t second_rank, RaceAccess second_kind,
                    RaceTarget target);
  // NOLINTEND(bugprone-easily-swappable-parameters)

  std::uint32_t nprocs_;
  LedgerMode mode_ = LedgerMode::kSharded;

  mutable std::mutex registry_mutex_;
  std::vector<std::shared_ptr<ArrayShadow>> arrays_;

  mutable std::mutex log_mutex_;
  std::vector<RaceDiagnostic> log_;
  std::uint64_t conflicts_ = 0;
  std::atomic<std::uint64_t> checks_{0};
};

}  // namespace histcc::splitc

#endif  // HISTCC_SPLITC_RACE_LEDGER_HPP
