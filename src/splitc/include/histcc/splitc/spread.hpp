#ifndef HISTCC_SPLITC_SPREAD_HPP
#define HISTCC_SPLITC_SPREAD_HPP

/// \file spread.hpp
/// Distributed (spread) arrays — the global address space of the runtime.
///
/// A `Spread<T>` is the analogue of a Split-C spread array `T A[p]::[m]`:
/// each of the p processors owns a block of `per_proc` elements, and any
/// processor can read or write any block through split-phase transfers.
/// `prefetch` mirrors the Split-C `:=` assignment: it initiates a bulk get
/// and is charged to the caller's BDM ledger; completion is guaranteed
/// after `Proc::sync()`.  In this runtime the copy happens eagerly, which
/// is race-free under the algorithms' barrier discipline (a transfer only
/// reads data its owner wrote before the last barrier, exactly as the
/// paper's algorithms are structured).
///
/// `SpreadVec<T>` is the dynamically-sized variant used for the merge
/// phase's change arrays, whose sizes are data-dependent: the owner
/// resizes its block, peers read it after the next barrier.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "histcc/splitc/machine.hpp"
#include "histcc/splitc/race_ledger.hpp"
#include "histcc/util/require.hpp"

namespace histcc::splitc {

namespace detail {
/// BDM word accounting: a "word" is 4 bytes; an element of type T counts as
/// ceil(sizeof(T)/4) words.
template <typename T>
constexpr std::uint64_t words_per_element() noexcept {
  return (sizeof(T) + 3) / 4;
}

/// memcpy for the bulk-transfer paths.  Every call site REQUIREs
/// len <= vector::size() <= max_size(), but GCC's range propagation only
/// sees the size_t comparison and still explores a len ~ SIZE_MAX/sizeof(T)
/// path, tripping -Wstringop-overflow / -Wrestrict on the byte count.  The
/// explicit bound below is unreachable in practice and hands the optimizer
/// the invariant the REQUIREs already guarantee.
template <typename T>
inline void raw_copy(T* dst, const T* src, std::size_t len) noexcept {
  constexpr std::size_t kMaxLen =
      static_cast<std::size_t>(std::numeric_limits<std::ptrdiff_t>::max()) /
      sizeof(T);
  if (len > kMaxLen) return;  // unreachable: callers bound len by a vector size
  std::memcpy(dst, src, len * sizeof(T));
}

/// Shared race-ledger plumbing of Spread and SpreadVec.  In builds without
/// HISTCC_RACE_LEDGER every member below compiles to nothing the optimizer
/// keeps: `shadow_` stays null and `record` is an empty inline function.
class ShadowBase {
 public:
  /// Name given at construction (appears in race diagnostics).
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 protected:
  ShadowBase(Machine& machine, std::string_view name)
      : machine_(&machine), name_(name) {
#if HISTCC_RACE_LEDGER
    if (auto* registry = machine.race_ledger_registry()) {
      shadow_ = registry->attach(name_);
    }
#endif
  }

  /// Record `len` accesses at [off, off+len) of `owner`'s block by the
  /// calling processor in its current barrier epoch.
  void record(Proc& self, std::uint32_t owner, std::size_t off,
              std::size_t len, RaceAccess kind) {
#if HISTCC_RACE_LEDGER
    if (auto* ledger = machine_->race_ledger(); ledger && shadow_) {
      self.stats().ledger_checks += len;
      ledger->record(*shadow_, owner, off, len, self.rank(), self.epoch(),
                     kind);
    }
#else
    (void)self;
    (void)owner;
    (void)off;
    (void)len;
    (void)kind;
#endif
  }

  /// Record an access to the one-word *size* of `owner`'s block (the value
  /// SpreadVec::size_of reads).  The size is a publication channel of its
  /// own: resizing publishes it, so a peer reading it in the same epoch as
  /// the resize races even if it never touches the payload.
  void record_size(Proc& self, std::uint32_t owner, RaceAccess kind) {
#if HISTCC_RACE_LEDGER
    if (auto* ledger = machine_->race_ledger(); ledger && shadow_) {
      self.stats().ledger_checks += 1;
      ledger->record_size(*shadow_, owner, self.rank(), self.epoch(), kind);
    }
#else
    (void)self;
    (void)owner;
    (void)kind;
#endif
  }

  /// Record a host-side probe of `owner`'s payload.  Outside Machine::run
  /// the host cannot race with anything and nothing is recorded; during a
  /// run the access is timestamped with the machine's current barrier
  /// generation and attributed to the pseudo-rank kHostRank.
  void record_host(std::uint32_t owner, std::size_t off, std::size_t len,
                   RaceAccess kind) {
#if HISTCC_RACE_LEDGER
    if (!machine_->running()) return;
    if (auto* ledger = machine_->race_ledger(); ledger && shadow_) {
      ledger->record(*shadow_, owner, off, len, kHostRank,
                     machine_->current_epoch(), kind);
    }
#else
    (void)owner;
    (void)off;
    (void)len;
    (void)kind;
#endif
  }

  /// Host-side probe of `owner`'s block size (SpreadVec only).
  void record_host_size(std::uint32_t owner, RaceAccess kind) {
#if HISTCC_RACE_LEDGER
    if (!machine_->running()) return;
    if (auto* ledger = machine_->race_ledger(); ledger && shadow_) {
      ledger->record_size(*shadow_, owner, kHostRank,
                          machine_->current_epoch(), kind);
    }
#else
    (void)owner;
    (void)kind;
#endif
  }

  Machine* machine_;
  std::string name_;
  std::shared_ptr<ArrayShadow> shadow_;
};
}  // namespace detail

/// Passing this as `len` to note_local_write/note_local_read means "to the
/// end of the block".
inline constexpr std::size_t kWholeBlock =
    std::numeric_limits<std::size_t>::max();

/// Fixed-size distributed array: `per_proc` elements owned by each of the
/// machine's processors.  Construct on the host (outside `Machine::run`),
/// use from inside the SPMD program.
template <typename T>
class Spread : public detail::ShadowBase {
  static_assert(std::is_trivially_copyable_v<T>,
                "Spread elements cross the (virtual) network; they must be "
                "trivially copyable");

 public:
  /// Allocate a block of `per_proc` elements on every processor,
  /// value-initialized.  `name` identifies the array in race-ledger
  /// diagnostics.  Uniform arrays are identical under both SpreadLayouts.
  Spread(Machine& machine, std::size_t per_proc,
         std::string_view name = "Spread")
      : detail::ShadowBase(machine, name),
        nprocs_(machine.nprocs()),
        per_proc_(per_proc),
        blocks_(nprocs_) {
    for (auto& b : blocks_) b.assign(per_proc_, T{});
    machine.note_spread_alloc(footprint_bytes());
  }

  /// Allocate `per_rank[r]` elements on processor r (value-initialized).
  /// Under SpreadLayout::kPacked each block is exactly that size; under
  /// kStrided every block is padded to max(per_rank) — the differential
  /// oracle for the packed mode.  `per_proc()` reports the max either way,
  /// so stride-based *capacity* reasoning stays valid; per-rank bounds are
  /// what the accessors actually enforce.
  Spread(Machine& machine, std::span<const std::size_t> per_rank,
         std::string_view name = "Spread")
      : detail::ShadowBase(machine, name),
        nprocs_(machine.nprocs()),
        blocks_(nprocs_) {
    HISTCC_REQUIRE(per_rank.size() == nprocs_,
                   "per-rank size table must have one entry per processor "
                   "(Spread '" +
                       name_ + "')");
    for (std::size_t size : per_rank) per_proc_ = std::max(per_proc_, size);
    for (std::uint32_t r = 0; r < nprocs_; ++r) {
      const bool packed = machine.spread_layout() == SpreadLayout::kPacked;
      blocks_[r].assign(packed ? per_rank[r] : per_proc_, T{});
    }
    machine.note_spread_alloc(footprint_bytes());
  }

  /// The uniform stride: the size of the *largest* block.  Every block
  /// holds exactly this many elements under kStrided (and under the
  /// uniform constructor); under kPacked it is an upper bound only — use
  /// block_size() for the per-rank truth.
  [[nodiscard]] std::size_t per_proc() const noexcept { return per_proc_; }
  [[nodiscard]] std::uint32_t nprocs() const noexcept { return nprocs_; }

  /// Elements actually allocated on processor `rank`.
  [[nodiscard]] std::size_t block_size(std::uint32_t rank) const {
    HISTCC_REQUIRE(rank < nprocs_,
                   "rank out of range (Spread '" + name_ + "')");
    return blocks_[rank].size();
  }

  /// The size of the *smallest* block — what a collective touching a fixed
  /// prefix of every block must bound its count by.
  [[nodiscard]] std::size_t min_per_proc() const noexcept {
    // Start from the max: every block is <= per_proc_, so this is exact
    // (and keeps the result bounded on every path the optimizer explores).
    std::size_t mn = per_proc_;
    for (const auto& b : blocks_) mn = std::min(mn, b.size());
    return mn;
  }

  /// Total payload bytes across all blocks (excludes shadow/bookkeeping).
  [[nodiscard]] std::size_t footprint_bytes() const noexcept {
    std::size_t total = 0;
    for (const auto& b : blocks_) total += b.size() * sizeof(T);
    return total;
  }

  /// The calling processor's own block; local access, never metered.
  [[nodiscard]] std::span<T> local(const Proc& self) noexcept {
    return std::span<T>(blocks_[self.rank()]);
  }
  [[nodiscard]] std::span<const T> local(const Proc& self) const noexcept {
    return std::span<const T>(blocks_[self.rank()]);
  }

  /// Host-side access to processor `rank`'s block (for initialization and
  /// verification outside the SPMD region).  A mutable probe taken *while*
  /// the machine is running is recorded in the race ledger as a host write
  /// of the whole block (a const probe as a host read), so an un-barriered
  /// host peek at in-flight data is diagnosed like any other race.
  [[nodiscard]] std::span<T> block(std::uint32_t rank) {
    HISTCC_REQUIRE(rank < nprocs_,
                   "rank out of range (Spread '" + name_ + "')");
    record_host(rank, 0, blocks_[rank].size(), RaceAccess::kWrite);
    return std::span<T>(blocks_[rank]);
  }
  [[nodiscard]] std::span<const T> block(std::uint32_t rank) const {
    HISTCC_REQUIRE(rank < nprocs_,
                   "rank out of range (Spread '" + name_ + "')");
    const_cast<Spread*>(this)->record_host(rank, 0, blocks_[rank].size(),
                                           RaceAccess::kRead);
    return std::span<const T>(blocks_[rank]);
  }

  /// Split-phase bulk get (Split-C `dst := A[src_rank][src_off .. +len]`).
  /// Copies `len` elements from the owner's block into `dst`, charging one
  /// message of len words to the caller's ledger unless the source is
  /// local.  Completion is guaranteed after self.sync().
  void prefetch(Proc& self, std::span<T> dst, std::uint32_t src_rank,
                std::size_t src_off, std::size_t len) {
    HISTCC_REQUIRE(src_rank < nprocs_,
                   "source rank out of range (Spread '" + name_ + "')");
    // Overflow-safe form of src_off + len <= size (also hands the
    // optimizer a hard bound on the memcpy length).
    const std::size_t src_size = blocks_[src_rank].size();
    HISTCC_REQUIRE(src_off <= src_size && len <= src_size - src_off,
                   "source range out of bounds (Spread '" + name_ + "')");
    HISTCC_REQUIRE(dst.size() >= len,
                   "destination too small (Spread '" + name_ + "')");
    if (len == 0) return;
    record(self, src_rank, src_off, len, RaceAccess::kRead);
    detail::raw_copy(dst.data(), blocks_[src_rank].data() + src_off, len);
    if (src_rank != self.rank()) {
      self.charge_transfer(src_rank, len * detail::words_per_element<T>());
    }
  }

  /// Split-phase bulk put: copy `len` elements from `src` into the block of
  /// `dst_rank` at `dst_off`.  The caller must own the destination range in
  /// the sense of the algorithms' barrier discipline (no concurrent writer).
  void put_block(Proc& self, std::uint32_t dst_rank, std::size_t dst_off,
                 std::span<const T> src) {
    HISTCC_REQUIRE(dst_rank < nprocs_,
                   "destination rank out of range (Spread '" + name_ + "')");
    const std::size_t dst_size = blocks_[dst_rank].size();
    HISTCC_REQUIRE(dst_off <= dst_size && src.size() <= dst_size - dst_off,
                   "destination range out of bounds (Spread '" + name_ +
                       "')");
    if (src.empty()) return;
    record(self, dst_rank, dst_off, src.size(), RaceAccess::kWrite);
    detail::raw_copy(blocks_[dst_rank].data() + dst_off, src.data(),
                     src.size());
    if (dst_rank != self.rank()) {
      self.charge_transfer(dst_rank, src.size() * detail::words_per_element<T>());
    }
  }

  /// Single-element remote read (costs tau + 1 unless batched).
  [[nodiscard]] T get(Proc& self, std::uint32_t rank, std::size_t off) {
    HISTCC_REQUIRE(rank < nprocs_,
                   "rank out of range (Spread '" + name_ + "')");
    HISTCC_REQUIRE(off < blocks_[rank].size(),
                   "offset out of bounds (Spread '" + name_ + "')");
    record(self, rank, off, 1, RaceAccess::kRead);
    if (rank != self.rank()) {
      self.charge_transfer(rank, detail::words_per_element<T>());
    }
    return blocks_[rank][off];
  }

  /// Single-element remote write.
  void put(Proc& self, std::uint32_t rank, std::size_t off, T value) {
    HISTCC_REQUIRE(rank < nprocs_,
                   "rank out of range (Spread '" + name_ + "')");
    HISTCC_REQUIRE(off < blocks_[rank].size(),
                   "offset out of bounds (Spread '" + name_ + "')");
    record(self, rank, off, 1, RaceAccess::kWrite);
    if (rank != self.rank()) {
      self.charge_transfer(rank, detail::words_per_element<T>());
    }
    blocks_[rank][off] = value;
  }

  /// Race-ledger epoch annotation: the calling processor wrote
  /// [off, off+len) of its own block directly through the local() span in
  /// the current epoch.  Place it next to the writes it describes, before
  /// the barrier that publishes them.  No-op without HISTCC_RACE_LEDGER.
  void note_local_write(Proc& self, std::size_t off = 0,
                        std::size_t len = kWholeBlock) {
    const std::size_t size = blocks_[self.rank()].size();
    HISTCC_REQUIRE(off <= size,
                   "annotation offset out of bounds (Spread '" + name_ +
                       "')");
    if (len == kWholeBlock) len = size - off;
    HISTCC_REQUIRE(off + len <= size,
                   "annotation range out of bounds (Spread '" + name_ + "')");
    record(self, self.rank(), off, len, RaceAccess::kWrite);
  }

  /// Same for direct reads of the local block (rarely needed: reading
  /// one's own data races only with a remote put in the same epoch).
  void note_local_read(Proc& self, std::size_t off = 0,
                       std::size_t len = kWholeBlock) {
    const std::size_t size = blocks_[self.rank()].size();
    HISTCC_REQUIRE(off <= size,
                   "annotation offset out of bounds (Spread '" + name_ +
                       "')");
    if (len == kWholeBlock) len = size - off;
    HISTCC_REQUIRE(off + len <= size,
                   "annotation range out of bounds (Spread '" + name_ + "')");
    record(self, self.rank(), off, len, RaceAccess::kRead);
  }

 private:
  std::uint32_t nprocs_;
  std::size_t per_proc_ = 0;
  std::vector<std::vector<T>> blocks_;
};

/// Dynamically-sized distributed array: each processor owns a vector it may
/// resize.  Peers may only read a block that its owner last resized before
/// a barrier both have crossed (the usual SPMD publication discipline).
template <typename T>
class SpreadVec : public detail::ShadowBase {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  explicit SpreadVec(Machine& machine, std::string_view name = "SpreadVec")
      : detail::ShadowBase(machine, name), blocks_(machine.nprocs()) {
    // Starts empty; counted so the alloc counter sees every distributed
    // array, not just the fixed-size ones.
    machine.note_spread_alloc(0);
  }

  [[nodiscard]] std::uint32_t nprocs() const noexcept {
    return static_cast<std::uint32_t>(blocks_.size());
  }

  /// Current total payload bytes across all blocks.  Unlike Spread this is
  /// a moving target (owners resize); meaningful between runs.
  [[nodiscard]] std::size_t footprint_bytes() const noexcept {
    std::size_t total = 0;
    for (const auto& b : blocks_) total += b.size() * sizeof(T);
    return total;
  }

  /// The calling processor's own vector (resizable).
  [[nodiscard]] std::vector<T>& local(const Proc& self) noexcept {
    return blocks_[self.rank()];
  }

  /// Host-side access.  A probe taken while the machine is running is
  /// recorded as a host write of the payload *and* the size (the reference
  /// allows resizing); a const probe as a host read of both.
  [[nodiscard]] std::vector<T>& block(std::uint32_t rank) {
    HISTCC_REQUIRE(rank < nprocs(), "rank out of range");
    record_host(rank, 0, blocks_[rank].size(), RaceAccess::kWrite);
    record_host_size(rank, RaceAccess::kWrite);
    return blocks_[rank];
  }
  [[nodiscard]] const std::vector<T>& block(std::uint32_t rank) const {
    HISTCC_REQUIRE(rank < nprocs(), "rank out of range");
    auto* self = const_cast<SpreadVec*>(this);
    self->record_host(rank, 0, blocks_[rank].size(), RaceAccess::kRead);
    self->record_host_size(rank, RaceAccess::kRead);
    return blocks_[rank];
  }

  /// Remote size query (one word).  Reads the owner's published size, so
  /// the race ledger treats it like a one-word prefetch of the size cell: a
  /// size resized in the same epoch (note_local_write without an
  /// intervening barrier) is diagnosed even when the payload is untouched.
  [[nodiscard]] std::size_t size_of(Proc& self, std::uint32_t rank) {
    HISTCC_REQUIRE(rank < nprocs(), "rank out of range");
    record_size(self, rank, RaceAccess::kRead);
    if (rank != self.rank()) self.charge_transfer(rank, 1);
    return blocks_[rank].size();
  }

  /// Split-phase bulk get of [src_off, src_off+len) from `rank`'s block.
  void prefetch(Proc& self, std::span<T> dst, std::uint32_t src_rank,
                std::size_t src_off, std::size_t len) {
    HISTCC_REQUIRE(src_rank < nprocs(), "source rank out of range");
    HISTCC_REQUIRE(src_off + len <= blocks_[src_rank].size(),
                   "source range out of bounds");
    HISTCC_REQUIRE(dst.size() >= len, "destination too small");
    if (len == 0) return;
    record(self, src_rank, src_off, len, RaceAccess::kRead);
    detail::raw_copy(dst.data(), blocks_[src_rank].data() + src_off, len);
    if (src_rank != self.rank()) {
      self.charge_transfer(src_rank, len * detail::words_per_element<T>());
    }
  }

  /// Race-ledger epoch annotation: the calling processor resized and/or
  /// wrote [off, off+len) of its own block in the current epoch (default:
  /// the whole current contents).  Place it after the writes, before the
  /// publishing barrier.  No-op without HISTCC_RACE_LEDGER.
  void note_local_write(Proc& self, std::size_t off = 0,
                        std::size_t len = kWholeBlock) {
    const std::size_t size = blocks_[self.rank()].size();
    HISTCC_REQUIRE(off <= size, "annotation offset out of bounds");
    if (len == kWholeBlock) len = size - off;
    HISTCC_REQUIRE(off + len <= size, "annotation range out of bounds");
    // A resize republishes the size alongside the payload, so the size
    // cell is marked written even when the payload range is empty.
    record_size(self, self.rank(), RaceAccess::kWrite);
    record(self, self.rank(), off, len, RaceAccess::kWrite);
  }

 private:
  std::vector<std::vector<T>> blocks_;
};

}  // namespace histcc::splitc

#endif  // HISTCC_SPLITC_SPREAD_HPP
