#ifndef HISTCC_SPLITC_MACHINE_HPP
#define HISTCC_SPLITC_MACHINE_HPP

/// \file machine.hpp
/// The SPMD execution substrate: a virtual distributed-memory machine.
///
/// The paper's algorithms are written in Split-C, an SPMD dialect of C with
/// a global address space over distributed local memories.  `Machine`
/// reproduces that programming model on a single host: it runs `p` virtual
/// processors as OS threads, gives each a `Proc` handle carrying its rank,
/// logical grid position (Section 3 of the paper), barrier, and a BDM
/// communication ledger.  Remote data is reached through `Spread` arrays
/// (spread.hpp), whose split-phase transfers mirror Split-C's `:=` /
/// `sync()` pair.
///
/// Correctness never depends on the host core count: with p virtual
/// processors on c < p cores the algorithms execute identically, only
/// slower in wall-clock terms.  The benchmark harness therefore reports
/// modeled BDM time (stats + MachineProfile) for the paper-shape figures
/// and wall-clock time only for host-scale runs.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "histcc/splitc/barrier.hpp"
#include "histcc/splitc/stats.hpp"
#include "histcc/util/math.hpp"

namespace histcc::trace {
// Span recorder (histcc/trace/trace.hpp).  Only a pointer crosses this
// boundary: splitc stays trace-agnostic and histcc::trace depends on
// splitc, not the other way round.
class Tracer;
}  // namespace histcc::trace

namespace histcc::splitc {

class Machine;
class RaceLedger;
enum class LedgerMode : std::uint8_t;

/// What Machine::run does when the race ledger recorded conflicts.
enum class RacePolicy : std::uint8_t {
  kThrow,   ///< rethrow as RaceLedgerViolation after the program finishes
  kRecord,  ///< only record; inspect via Machine::race_ledger_registry()
};

/// How Machine::run provides its p threads.
enum class WorkerMode : std::uint8_t {
  /// Spawn p OS threads per run() and join them before returning — the
  /// historical behaviour, cheapest for a machine that runs one program.
  kPerRun,
  /// Spawn p worker threads on the first run() and park them on a
  /// condition variable between programs; run() hands the program to the
  /// warm workers.  This is what a serving pool wants: consecutive jobs
  /// on the same machine pay a wakeup, not p thread creations
  /// (histcc/serve/machine_pool.hpp).  Observable behaviour of run() is
  /// identical in both modes.
  kPersistent,
};

/// How Spread/SpreadVec size the per-rank blocks of layout-driven arrays
/// (the constructors that take a per-rank size table).
enum class SpreadLayout : std::uint8_t {
  /// Every block padded to the largest requested size — a uniform stride,
  /// the PR-5 contract.  Kept as the differential oracle for kPacked.
  kStrided,
  /// Each block sized exactly as requested; remote addressing becomes
  /// non-uniform (prefix-sum offsets instead of rank * stride).  Default.
  kPacked,
};

/// Per-processor handle passed to the SPMD program.  One `Proc` exists per
/// virtual processor for the duration of `Machine::run`; all its methods
/// are called only by that processor's thread.
class Proc {
 public:
  /// My processor number, 0..p-1 (row-major in the logical grid).
  [[nodiscard]] std::uint32_t rank() const noexcept { return rank_; }

  /// Total number of processors.
  [[nodiscard]] std::uint32_t nprocs() const noexcept { return nprocs_; }

  /// My row I in the v x w logical processor grid.
  [[nodiscard]] std::uint32_t grid_row() const noexcept {
    return rank_ / grid_.cols;
  }

  /// My column J in the v x w logical processor grid.
  [[nodiscard]] std::uint32_t grid_col() const noexcept {
    return rank_ % grid_.cols;
  }

  /// Shape of the logical processor grid (v rows, w cols).
  [[nodiscard]] util::GridShape grid() const noexcept { return grid_; }

  /// Split-C barrier(): global synchronization of all processors.  Also
  /// completes any outstanding prefetch batch (the algorithms in the paper
  /// always sync before a barrier; folding sync into barrier keeps the
  /// ledger exact even if a caller forgets).
  void barrier();

  /// Split-C sync(): stall until all outstanding split-phase transfers have
  /// completed.  In this runtime the data is already in place (transfers
  /// copy eagerly); sync() closes the current pipelined batch in the BDM
  /// ledger, charging tau + l for the l words prefetched since the last
  /// sync.
  void sync() noexcept;

  /// My barrier epoch: 1 on entry to the SPMD program, +1 per barrier()
  /// crossed.  Between two consecutive global barriers every processor is
  /// in the same epoch, which is what the race ledger's happens-before
  /// check keys on (race_ledger.hpp).
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// My communication ledger.
  [[nodiscard]] CommStats& stats() noexcept { return *stats_; }
  [[nodiscard]] const CommStats& stats() const noexcept { return *stats_; }

  /// The span recorder attached to the owning machine, or nullptr when
  /// tracing is off — the hot-path guard every TRACE_SCOPE site checks.
  [[nodiscard]] trace::Tracer* tracer() const noexcept { return tracer_; }

  /// Charge `n` local RAM operations to the Tcomp meter.  Algorithms call
  /// this around their local phases so modeled Tcomp can be reported next
  /// to modeled Tcomm.
  void charge_ops(std::uint64_t n) noexcept { stats_->local_ops += n; }

  /// Record a remote transfer of `words` 4-byte words (one message) from
  /// processor `source`.  Used by Spread; public so that additional
  /// distributed containers can participate in the same ledger.  The words
  /// are charged to the caller's movement ledger and to the source's
  /// *served* counter — the BDM model allows no processor to send or
  /// receive more than one word at a time, so a processor serving many
  /// peers is a congestion point even if it initiates nothing (this is
  /// what eq. (9)'s distribution scheme relieves).
  void charge_transfer(std::uint32_t source, std::uint64_t words) noexcept {
    stats_->messages += 1;
    stats_->words += words;
    pending_words_ += words;
    served_[source].fetch_add(words, std::memory_order_relaxed);
  }

 private:
  friend class Machine;
  Proc(std::uint32_t rank, std::uint32_t nprocs, util::GridShape grid,
       Barrier* barrier, CommStats* stats,
       std::atomic<std::uint64_t>* served) noexcept
      : rank_(rank),
        nprocs_(nprocs),
        grid_(grid),
        barrier_(barrier),
        stats_(stats),
        served_(served) {}

  /// Inject a seeded random delay (yields or a short sleep) before the
  /// barrier rendezvous when schedule perturbation is on.  Exercises
  /// arrival-order interleavings TSan-style scheduling never explores.
  void maybe_perturb();

  std::uint32_t rank_;
  std::uint32_t nprocs_;
  util::GridShape grid_;
  Barrier* barrier_;
  CommStats* stats_;
  std::atomic<std::uint64_t>* served_;
  std::uint64_t pending_words_ = 0;
  std::uint64_t epoch_ = 1;
  std::uint64_t perturb_state_ = 0;  // splitmix64 state; 0 = perturbation off
  trace::Tracer* tracer_ = nullptr;  // owning machine's recorder, if any
};

/// A virtual distributed-memory machine with p processors (p a power of
/// two, as the paper assumes).  Construct once, `run` any number of SPMD
/// programs on it.
class Machine {
 public:
  /// \param nprocs number of virtual processors; must be a power of two.
  /// \param mode   per-run thread spawning (default) or warm persistent
  ///               workers (see WorkerMode).
  explicit Machine(std::uint32_t nprocs,
                   WorkerMode mode = WorkerMode::kPerRun);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] std::uint32_t nprocs() const noexcept { return nprocs_; }

  [[nodiscard]] WorkerMode worker_mode() const noexcept { return mode_; }

  /// Logical processor grid shape (Section 3): v = 2^floor(d/2) rows,
  /// w = 2^ceil(d/2) columns for p = 2^d.
  [[nodiscard]] util::GridShape grid() const noexcept { return grid_; }

  /// Execute `program` in SPMD style: p threads each call program(proc)
  /// with their own Proc.  Blocks until all processors finish.  If any
  /// processor throws, the first exception is rethrown here after all
  /// threads have been joined.  Not reentrant.
  void run(const std::function<void(Proc&)>& program);

  /// Communication ledger of processor `rank` from the last run().
  [[nodiscard]] const CommStats& stats(std::uint32_t rank) const;

  /// Elementwise sum of all processors' ledgers.
  [[nodiscard]] CommStats total_stats() const noexcept;

  /// Elementwise max of all processors' ledgers — the BDM complexity of the
  /// program, since the model charges the maximum over processors.
  [[nodiscard]] CommStats max_stats() const noexcept;

  /// Words processor `rank` *served* to remote peers in the last run —
  /// the per-port outbound load eq. (9) balances.
  [[nodiscard]] std::uint64_t served_words(std::uint32_t rank) const;

  /// Maximum over processors of (words moved + words served): the BDM
  /// port-congestion bound of the last run.
  [[nodiscard]] std::uint64_t max_port_words() const noexcept;

  /// Zero all ledgers (run() also does this on entry).
  void reset_stats() noexcept;

  /// True when the library was compiled with -DHISTCC_RACE_LEDGER=ON and
  /// the per-element shadow instrumentation exists at all.
  [[nodiscard]] static constexpr bool race_ledger_compiled() noexcept {
#if HISTCC_RACE_LEDGER
    return true;
#else
    return false;
#endif
  }

  /// Runtime switch for the race ledger (default: enabled when compiled
  /// in).  A no-op in builds without HISTCC_RACE_LEDGER.
  void set_race_ledger_enabled(bool enabled) noexcept {
    race_ledger_enabled_ = enabled && race_ledger_compiled();
  }

  /// What run() does when conflicts were recorded (default kThrow).
  void set_race_policy(RacePolicy policy) noexcept { race_policy_ = policy; }

  /// Select the ledger's shadow representation (default LedgerMode::kSharded;
  /// kMutex keeps the PR-1 serialized store as a differential oracle).  A
  /// no-op in builds without HISTCC_RACE_LEDGER.  Not callable mid-run.
  void set_race_ledger_mode(LedgerMode mode);

  /// How per-rank-sized Spreads allocate their blocks (default kPacked;
  /// overridable at construction by the HISTCC_SPREAD_LAYOUT environment
  /// variable, values "packed"/"strided").  Not callable mid-run: changing
  /// the mode under live Spreads would desynchronize their geometry.
  void set_spread_layout(SpreadLayout layout);

  [[nodiscard]] SpreadLayout spread_layout() const noexcept {
    return spread_layout_;
  }

  /// Spread/SpreadVec construction footprint since the last
  /// reset_alloc_stats(): total payload bytes and number of arrays.
  /// Deliberately *not* cleared by run()/reset_stats(), so a harness can
  /// build arrays, run, and then read what the build cost.
  void note_spread_alloc(std::uint64_t bytes) noexcept {
    spread_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    spread_allocs_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t spread_bytes_allocated() const noexcept {
    return spread_bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t spread_alloc_count() const noexcept {
    return spread_allocs_.load(std::memory_order_relaxed);
  }
  void reset_alloc_stats() noexcept {
    spread_bytes_.store(0, std::memory_order_relaxed);
    spread_allocs_.store(0, std::memory_order_relaxed);
  }

  /// Seeded schedule perturbation: every barrier() crossing first spends a
  /// per-rank pseudo-random delay (a few yields, or a sleep of up to ~128us)
  /// derived deterministically from `seed` and the rank.  Seed 0 turns
  /// perturbation off (the default).  Changes which interleavings the OS
  /// scheduler realises without changing program semantics — the race
  /// ledger's epoch bookkeeping is unaffected.
  void set_schedule_perturbation(std::uint64_t seed) noexcept {
    perturb_seed_ = seed;
  }

  /// Attach a span recorder (histcc/trace/trace.hpp); every Proc handed
  /// to subsequent run()s carries the pointer, so TRACE_SCOPE sites in
  /// kernels start recording.  Non-owning — the tracer must outlive its
  /// attachment; nullptr detaches.  Not callable mid-run.
  void set_trace(trace::Tracer* tracer);

  /// The attached span recorder, or nullptr when tracing is off.
  [[nodiscard]] trace::Tracer* tracer() const noexcept { return tracer_; }

  /// True while run() is executing the SPMD program.  Host-side Spread
  /// probes use this to decide whether an access can race at all.
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// The barrier epoch the machine is currently in: 1 on entry to run(),
  /// +1 per completed global barrier.  Meaningful only while running();
  /// used to timestamp host-side block()/size probes in the race ledger.
  [[nodiscard]] std::uint64_t current_epoch() const noexcept {
    return barrier_.generation() + 1;
  }

  /// The checker, or nullptr when compiled out or disabled at runtime.
  /// This is the hot-path guard the Spread instrumentation uses.
  [[nodiscard]] RaceLedger* race_ledger() const noexcept {
    return race_ledger_enabled_ ? race_ledger_.get() : nullptr;
  }

  /// The checker object itself regardless of the runtime switch (nullptr
  /// only when compiled out).  Spread constructors attach shadows here so
  /// that toggling the switch mid-lifetime still checks every array;
  /// tests use it to inspect diagnostics under RacePolicy::kRecord.
  [[nodiscard]] RaceLedger* race_ledger_registry() const noexcept {
    return race_ledger_.get();
  }

 private:
  /// Per-rank perturbation stream derived from the machine seed (0 = off).
  [[nodiscard]] std::uint64_t perturb_state_for(
      std::uint32_t rank) const noexcept;
  void run_per_run(const std::function<void(Proc&)>& program);
  void run_persistent(const std::function<void(Proc&)>& program);
  void execute_as(std::uint32_t rank,
                  const std::function<void(Proc&)>& program);
  void start_workers();
  void stop_workers() noexcept;

  std::uint32_t nprocs_;
  util::GridShape grid_;
  Barrier barrier_;
  std::vector<CommStats> stats_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> served_;
  std::unique_ptr<RaceLedger> race_ledger_;
  bool race_ledger_enabled_ = false;
  RacePolicy race_policy_ = RacePolicy::kThrow;
  SpreadLayout spread_layout_ = SpreadLayout::kPacked;
  trace::Tracer* tracer_ = nullptr;
  std::atomic<std::uint64_t> spread_bytes_{0};
  std::atomic<std::uint64_t> spread_allocs_{0};
  std::uint64_t perturb_seed_ = 0;
  bool running_ = false;

  // First exception thrown by any rank in the current run (both modes).
  std::mutex error_mutex_;
  std::exception_ptr first_error_;

  // Persistent-worker state: workers park on ctl_cv_ until job_generation_
  // advances, execute job_program_, then decrement job_remaining_ (the
  // last one signals done_cv_).  All guarded by ctl_mutex_.
  WorkerMode mode_;
  std::vector<std::thread> workers_;
  std::mutex ctl_mutex_;
  std::condition_variable ctl_cv_;
  std::condition_variable done_cv_;
  const std::function<void(Proc&)>* job_program_ = nullptr;
  std::uint64_t job_generation_ = 0;
  std::uint32_t job_remaining_ = 0;
  bool workers_stop_ = false;
};

}  // namespace histcc::splitc

#endif  // HISTCC_SPLITC_MACHINE_HPP
