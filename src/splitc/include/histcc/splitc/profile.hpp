#ifndef HISTCC_SPLITC_PROFILE_HPP
#define HISTCC_SPLITC_PROFILE_HPP

/// \file profile.hpp
/// BDM machine profiles.
///
/// The paper evaluates on five machines (TMC CM-5, IBM SP-1, IBM SP-2,
/// Meiko CS-2, Intel Paragon).  We do not have that hardware; instead every
/// remote access performed through the splitc runtime is metered, and a
/// MachineProfile converts the meter readings into *modeled* execution time
/// under the Block Distributed Memory model: a batch of l prefetched words
/// costs tau + l word-times (JaJa & Ryu, 1994).  The constants below are the
/// per-processor user-payload bandwidths and message latencies the paper and
/// its citations report, so the modeled curves reproduce the shape of the
/// paper's per-machine figures.

#include <cstdint>
#include <string_view>

namespace histcc::splitc {

/// Cost-model constants describing one of the paper's target machines.
struct MachineProfile {
  std::string_view name;     ///< machine name as used in the paper's figures
  double latency_us;         ///< message startup latency tau, microseconds
  double bandwidth_MBps;     ///< attainable per-processor bandwidth, 1e6 B/s
  double peak_MBps;          ///< vendor peak per-processor bandwidth, 1e6 B/s
  double cpu_ns_per_op;      ///< modeled cost of one local RAM operation

  /// Seconds to move `words` 4-byte words in `batches` pipelined batches.
  [[nodiscard]] double comm_seconds(std::uint64_t batches,
                                    std::uint64_t words) const noexcept {
    const double word_bytes = 4.0;
    return static_cast<double>(batches) * latency_us * 1e-6 +
           static_cast<double>(words) * word_bytes / (bandwidth_MBps * 1e6);
  }

  /// Seconds to execute `ops` local operations.
  [[nodiscard]] double comp_seconds(std::uint64_t ops) const noexcept {
    return static_cast<double>(ops) * cpu_ns_per_op * 1e-9;
  }
};

/// TMC CM-5: 12 MB/s user-payload per processor (Leiserson et al.), the
/// paper measures 7.62 MB/s through Split-C.
[[nodiscard]] MachineProfile cm5() noexcept;

/// IBM SP-1 with MPL over EUIH.
[[nodiscard]] MachineProfile sp1() noexcept;

/// IBM SP-2 wide nodes: 40 MB/s peak node-to-node, paper measures >24.8.
[[nodiscard]] MachineProfile sp2() noexcept;

/// Meiko CS-2: 50 MB/s peak, paper measures >10.7 (unoptimized Elan port).
[[nodiscard]] MachineProfile cs2() noexcept;

/// Intel Paragon with PAM: 175 MB/s hardware peak, paper measures >88.6.
[[nodiscard]] MachineProfile paragon() noexcept;

/// Profile of the host this library actually runs on (used when reporting
/// wall-clock rather than modeled results).
[[nodiscard]] MachineProfile host() noexcept;

/// Look a profile up by its figure name ("CM-5", "SP-1", "SP-2", "CS-2",
/// "Paragon", "host"); returns host() for unknown names.
[[nodiscard]] MachineProfile profile_by_name(std::string_view name) noexcept;

/// One-line description of the correctness instrumentation compiled into
/// this build (race ledger, AddressSanitizer, ThreadSanitizer), e.g.
/// "analysis: race-ledger" or "analysis: none".  tools/check.sh and the
/// test logs print it so a matrix run is self-identifying.
[[nodiscard]] std::string_view build_analysis_info() noexcept;

}  // namespace histcc::splitc

#endif  // HISTCC_SPLITC_PROFILE_HPP
