#ifndef HISTCC_SERVE_METRICS_HPP
#define HISTCC_SERVE_METRICS_HPP

/// \file metrics.hpp
/// Pool observability: lock-free counters and a log-bucketed latency
/// histogram recorded on the job path, exported as an immutable
/// `PoolMetrics` snapshot (Pipeline::metrics()).
///
/// Latency percentiles come from a 64-bucket power-of-two histogram of
/// end-to-end wall latency (submission -> completion) in nanoseconds:
/// bucket b counts latencies in [2^b, 2^(b+1)) ns.  quantile() returns
/// the geometric midpoint of the bucket holding the requested rank, so a
/// reported p99 is exact to within a factor of sqrt(2) — plenty to steer
/// pool sizing, with a recording cost of one relaxed fetch_add.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "histcc/serve/job.hpp"

namespace histcc::serve {

/// Point-in-time view of a pipeline's health.  All counters are
/// monotonically increasing since construction except the two gauges
/// (queue_depth, in_flight).
struct PoolMetrics {
  // Admission.
  std::uint64_t submitted = 0;  ///< accepted into the queue
  std::uint64_t rejected = 0;   ///< refused: queue full (fail-fast) or shut down

  // Terminal outcomes of accepted jobs.
  std::uint64_t completed = 0;  ///< kOk
  std::uint64_t degraded = 0;   ///< kDegraded
  std::uint64_t timed_out = 0;  ///< kTimedOut
  std::uint64_t cancelled = 0;  ///< kCancelled
  std::uint64_t failed = 0;     ///< kFailed

  // Gauges.
  std::size_t queue_depth = 0;   ///< jobs waiting in the bounded queue
  std::uint32_t in_flight = 0;   ///< jobs a pool worker is processing

  // Pool shape.
  std::uint32_t pool_size = 0;       ///< machine slots / worker threads
  std::uint64_t machines_built = 0;  ///< Machine constructions (incl. rebuilds)

  // Latency, in seconds.
  double mean_queue_s = 0;  ///< mean submission -> dequeue
  double mean_run_s = 0;    ///< mean dequeue -> completion
  double wall_p50_s = 0;    ///< end-to-end wall latency percentiles
  double wall_p90_s = 0;
  double wall_p99_s = 0;

  /// Accepted jobs whose future has resolved.
  [[nodiscard]] std::uint64_t finished() const noexcept {
    return completed + degraded + timed_out + cancelled + failed;
  }
};

/// Thread-safe recorder behind PoolMetrics; one per Pipeline.  All record
/// methods are wait-free (relaxed atomics); snapshot() is approximate
/// under concurrent updates in the usual monitoring sense (each field is
/// individually coherent).
class MetricsRecorder {
 public:
  void on_submit() noexcept {
    submitted_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_reject() noexcept {
    rejected_.fetch_add(1, std::memory_order_relaxed);
  }

  /// A worker dequeued a job after `queue_s` seconds in the queue.
  void on_dequeue(double queue_s) noexcept;

  /// The dequeued job reached a terminal status after `run_s` seconds of
  /// processing (`wall_s` = queue + run).
  void on_finish(JobStatus status, double wall_s, double run_s) noexcept;

  /// Live value of the in-flight gauge (jobs between dequeue and finish);
  /// the trace-counter bridge samples it without assembling a snapshot.
  [[nodiscard]] std::uint32_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_relaxed);
  }

  /// Assemble a snapshot; the gauges owned by the pipeline (queue depth)
  /// and pool (size, builds) are passed in.
  [[nodiscard]] PoolMetrics snapshot(std::size_t queue_depth,
                                     std::uint32_t pool_size,
                                     std::uint64_t machines_built) const;

 private:
  static constexpr std::size_t kBuckets = 64;

  /// Wall-latency quantile in seconds from the bucket histogram.
  [[nodiscard]] double quantile(double q) const noexcept;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> timed_out_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint32_t> in_flight_{0};
  std::atomic<std::uint64_t> dequeued_{0};
  std::atomic<std::uint64_t> queue_ns_total_{0};
  std::atomic<std::uint64_t> run_ns_total_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> wall_hist_{};
};

}  // namespace histcc::serve

#endif  // HISTCC_SERVE_METRICS_HPP
