#ifndef HISTCC_SERVE_MACHINE_POOL_HPP
#define HISTCC_SERVE_MACHINE_POOL_HPP

/// \file machine_pool.hpp
/// A pool of persistent, reusable SPMD machines.
///
/// Every `Machine` here is built in WorkerMode::kPersistent: its p worker
/// threads are spawned once and parked between jobs, so consecutive jobs
/// on a slot pay a condition-variable wakeup instead of p thread
/// creations.  acquire(p) hands out an idle slot as a RAII lease,
/// preferring a slot that already holds a machine of the requested size.
/// Each slot keeps a small cache of warm machines, one per distinct
/// virtual-processor count, up to `machines_per_slot` entries with the
/// least-recently-used machine evicted when a new size needs room — so
/// under a mixed-width job mix a slot serves every recurring width
/// without rebuilding (size-heterogeneous mode).  machines_per_slot == 1
/// reproduces the original one-machine-per-slot behaviour exactly.
/// machines_built() counts every construction, first builds and rebuilds
/// alike, so tests and benchmarks can assert that a steady workload stops
/// churning.  When every slot is busy, acquire blocks — the pool is the
/// concurrency limiter; the bounded JobQueue in front of it is the memory
/// limiter.

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "histcc/splitc/machine.hpp"

namespace histcc::serve {

class MachinePool {
 public:
  /// \param slots             concurrently leasable machines (>= 1).
  /// \param max_procs         largest virtual-processor count a lease may
  ///                          ask for (power of two).
  /// \param machines_per_slot warm machines each slot caches (>= 1), one
  ///                          per distinct size, LRU-evicted.
  /// \param spread_layout     allocation mode every pooled machine is
  ///                          built with (packed by default; strided is
  ///                          the differential oracle).
  // NOLINTNEXTLINE(bugprone-easily-swappable-parameters): declaration-only;
  // the definition checks the three independently (no joint expression).
  MachinePool(std::uint32_t slots, std::uint32_t max_procs,
              std::uint32_t machines_per_slot = 1,
              splitc::SpreadLayout spread_layout =
                  splitc::SpreadLayout::kPacked);

  MachinePool(const MachinePool&) = delete;
  MachinePool& operator=(const MachinePool&) = delete;

  /// Exclusive use of one pooled machine; releases the slot on
  /// destruction.  Movable, not copyable.
  class Lease {
   public:
    Lease(Lease&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          slot_(std::exchange(other.slot_, 0)),
          machine_(std::exchange(other.machine_, nullptr)) {}
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    [[nodiscard]] splitc::Machine& machine() const noexcept {
      return *machine_;
    }

    /// Give the slot back early (idempotent; the destructor also does —
    /// and a moved-from lease is fully inert: no pool, slot, or machine).
    void release() noexcept;

   private:
    friend class MachinePool;
    Lease(MachinePool* pool, std::size_t slot,
          splitc::Machine* machine) noexcept
        : pool_(pool), slot_(slot), machine_(machine) {}

    MachinePool* pool_;
    std::size_t slot_;
    splitc::Machine* machine_;
  };

  /// Lease a warm machine with exactly `procs` virtual processors
  /// (a power of two <= max_procs), blocking until a slot is free.
  [[nodiscard]] Lease acquire(std::uint32_t procs);

  [[nodiscard]] std::uint32_t slots() const noexcept {
    return static_cast<std::uint32_t>(slots_.size());
  }
  [[nodiscard]] std::uint32_t max_procs() const noexcept { return max_procs_; }
  [[nodiscard]] std::uint32_t machines_per_slot() const noexcept {
    return machines_per_slot_;
  }
  /// Allocation mode pooled machines are built with.
  [[nodiscard]] splitc::SpreadLayout spread_layout() const noexcept {
    return spread_layout_;
  }

  /// Machines constructed so far, first builds and rebuilds alike.  A
  /// steady workload converges: once every slot holds the sizes the mix
  /// needs, this stops moving.
  [[nodiscard]] std::uint64_t machines_built() const;

  /// Slots not currently leased.
  [[nodiscard]] std::uint32_t idle() const;

 private:
  /// One cached warm machine and its LRU stamp.
  struct Entry {
    std::unique_ptr<splitc::Machine> machine;
    std::uint64_t last_used = 0;
  };
  struct Slot {
    std::vector<Entry> cache;  ///< distinct sizes, <= machines_per_slot_
    bool busy = false;
  };

  void release_slot(std::size_t index) noexcept;

  mutable std::mutex mutex_;
  std::condition_variable slot_free_;
  std::vector<Slot> slots_;
  std::uint32_t max_procs_;
  std::uint32_t machines_per_slot_;
  splitc::SpreadLayout spread_layout_;
  std::uint64_t built_ = 0;
  std::uint64_t tick_ = 0;  ///< LRU clock, bumped per acquire
};

}  // namespace histcc::serve

#endif  // HISTCC_SERVE_MACHINE_POOL_HPP
