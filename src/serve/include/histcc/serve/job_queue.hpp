#ifndef HISTCC_SERVE_JOB_QUEUE_HPP
#define HISTCC_SERVE_JOB_QUEUE_HPP

/// \file job_queue.hpp
/// Bounded MPMC queue with backpressure — the admission control of the
/// serving layer.  Any number of submitters push concurrently (blocking on
/// a full queue, or failing fast via try_push), any number of pool workers
/// pop.  close() starts shutdown: pushes are refused, pops drain what is
/// already queued and then return nullopt, and drain() lets an aborting
/// shutdown claim the leftovers so every queued job can still be resolved.
///
/// A mutex + two condition variables is deliberately boring: submissions
/// are orders of magnitude rarer than the element accesses the sharded
/// race-ledger store optimises for, and a lock-free MPMC ring would buy
/// nothing measurable at serving rates (see docs/serving.md).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "histcc/util/require.hpp"

namespace histcc::serve {

template <typename T>
class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity) : capacity_(capacity) {
    HISTCC_REQUIRE(capacity >= 1, "queue capacity must be positive");
  }

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Block until there is room (backpressure), then enqueue.  Returns
  /// false — leaving `item` untouched — if the queue was closed.
  bool push(T&& item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Fail-fast enqueue: returns false — leaving `item` untouched — when
  /// the queue is full or closed.
  bool try_push(T&& item) {
    std::scoped_lock lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Block until an item is available and return it; nullopt once the
  /// queue is closed *and* empty (a closed queue still drains).
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop; nullopt when nothing is queued.
  std::optional<T> try_pop() {
    std::scoped_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Refuse all future pushes and wake every waiter.  Idempotent.
  void close() {
    std::scoped_lock lock(mutex_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Remove and return everything still queued (an aborting shutdown
  /// resolves these as cancelled instead of running them).
  [[nodiscard]] std::vector<T> drain() {
    std::scoped_lock lock(mutex_);
    std::vector<T> out;
    out.reserve(items_.size());
    while (!items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_all();
    return out;
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] bool closed() const {
    std::scoped_lock lock(mutex_);
    return closed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace histcc::serve

#endif  // HISTCC_SERVE_JOB_QUEUE_HPP
