#ifndef HISTCC_SERVE_JOB_HPP
#define HISTCC_SERVE_JOB_HPP

/// \file job.hpp
/// Vocabulary types of the serving layer: job outcomes, per-job options
/// (deadline, overflow policy, processor override), and the cancellation
/// handle a submission returns alongside its future.
///
/// A job is never dropped silently: every submitted job's future resolves
/// to a JobResult whose status says exactly what happened — completed on
/// the parallel machine (kOk), completed on the sequential fallback after
/// the parallel path failed (kDegraded, with the reason), finished past
/// its deadline (kTimedOut, value still attached when one was computed),
/// cancelled before execution (kCancelled), refused at submission because
/// the queue was full or the pipeline shut down (kRejected), or failed on
/// both paths (kFailed, with the error).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <future>

namespace histcc::serve {

/// Steady clock used for deadlines and latency accounting.
using Clock = std::chrono::steady_clock;

/// Terminal state of a job; see the file comment for the full semantics.
enum class JobStatus : std::uint8_t {
  kOk,         ///< completed on the intended path
  kDegraded,   ///< parallel path failed; sequential fallback completed
  kTimedOut,   ///< deadline expired (value present if the run finished)
  kCancelled,  ///< cancelled (or pipeline aborted) before execution
  kRejected,   ///< refused at submission: queue full or pipeline shut down
  kFailed,     ///< both parallel and fallback paths threw
};

[[nodiscard]] constexpr const char* to_string(JobStatus s) noexcept {
  switch (s) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kDegraded: return "degraded";
    case JobStatus::kTimedOut: return "timed-out";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kRejected: return "rejected";
    case JobStatus::kFailed: return "failed";
  }
  return "unknown";
}

/// What submit does when the bounded job queue is full.
enum class OverflowPolicy : std::uint8_t {
  kBlock,   ///< block the submitting thread until a slot frees
  kReject,  ///< fail fast: resolve the future immediately with kRejected
};

/// Per-job knobs.  Defaults: no deadline, blocking backpressure, processor
/// count chosen from the image size (the paper's n^2/p tradeoff).
struct JobOptions {
  /// Wall-clock budget measured from submission.  Expires in the queue:
  /// the job is resolved kTimedOut without running.  A job already
  /// executing is never interrupted mid-run (an SPMD program cannot be
  /// safely torn down at an arbitrary point); if it finishes past the
  /// deadline the result is kTimedOut with the value attached.
  std::optional<Clock::duration> deadline{};
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  /// 0 = route automatically.  Otherwise run the splitc parallel path on
  /// exactly this many virtual processors (rounded down to a power of
  /// two, capped at the pipeline's max_procs); an incompatible image
  /// shape then degrades to the sequential path rather than erroring.
  std::uint32_t force_procs = 0;
};

/// Cancellation handle, shared between the submitter and the pipeline.
/// cancel() is advisory: it wins only while the job is still queued.
class JobControl {
 public:
  explicit JobControl(std::uint64_t id) noexcept : id_(id) {}

  /// Monotonic per-pipeline job id (submission order).
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }

  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::uint64_t id_;
  std::atomic<bool> cancelled_{false};
};

/// What a job's future resolves to.
template <typename T>
struct JobResult {
  JobStatus status = JobStatus::kFailed;
  /// The computed value; absent when the job never ran (cancelled,
  /// rejected, queue-expired deadline) or failed on both paths.
  std::optional<T> value{};
  /// Failure/degradation explanation (what() of the triggering exception).
  std::string error{};
  /// Virtual processors the completed path used (1 = sequential).
  std::uint32_t procs = 0;
  double queue_s = 0;  ///< submission -> dequeue
  double run_s = 0;    ///< dequeue -> completion

  /// True when a value was produced (kOk, kDegraded, or a kTimedOut run
  /// that finished late).
  [[nodiscard]] bool has_value() const noexcept { return value.has_value(); }
};

/// A submitted job: the future carrying its result plus its cancellation
/// handle.
template <typename T>
struct PendingJob {
  std::future<JobResult<T>> result;
  std::shared_ptr<JobControl> control;
};

}  // namespace histcc::serve

#endif  // HISTCC_SERVE_JOB_HPP
