#ifndef HISTCC_SERVE_PIPELINE_HPP
#define HISTCC_SERVE_PIPELINE_HPP

/// \file pipeline.hpp
/// The multi-tenant job pipeline over the SPMD runtime: many independent
/// images in flight at once, served by a MachinePool of warm machines
/// behind a bounded JobQueue.
///
///   submit_* (any thread)          pool workers (pool_size threads)
///   ───────────────────────        ──────────────────────────────────
///   route: pick p from n^2/p  ──>  bounded JobQueue  ──>  pop, check
///   (or sequential fallback)       (backpressure)         deadline +
///                                                         cancellation,
///                                                         lease machine,
///                                                         execute,
///                                                         resolve future
///
/// Routing picks the virtual-processor count from the image size — the
/// paper's n^2/p tradeoff: each processor should get about grain_pixels
/// of tile, capped at max_procs.  The ragged tile layout (docs/layout.md)
/// hosts any H x W shape, so only images at or below sequential_pixels
/// skip the machine and run the sequential reference path.  Related CCL
/// work (Gupta et al.; Chen et al.) makes the same point: the right
/// algorithm/width is a per-workload choice, so the serving layer makes
/// it per job.
///
/// Robustness: a failed parallel run (including a race-ledger violation
/// in instrumented builds) degrades to the sequential path and reports
/// kDegraded rather than dropping the job; deadlines expire jobs still in
/// the queue; shutdown either drains or aborts, but every accepted job's
/// future always resolves.

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "histcc/cc/parallel_cc.hpp"
#include "histcc/cc_seq/analysis.hpp"
#include "histcc/image/image.hpp"
#include "histcc/serve/job.hpp"
#include "histcc/serve/job_queue.hpp"
#include "histcc/serve/machine_pool.hpp"
#include "histcc/serve/metrics.hpp"

namespace histcc::trace {
class Tracer;
}  // namespace histcc::trace

namespace histcc::serve {

/// Pipeline-wide configuration (per-job knobs live in JobOptions).
struct PipelineOptions {
  /// Machine slots == pool worker threads: jobs concurrently executing.
  std::uint32_t pool_size = 2;
  /// Cap on virtual processors per job (power of two).
  std::uint32_t max_procs = 16;
  /// Bounded queue: at most this many jobs waiting beyond the pool.
  std::size_t queue_capacity = 64;
  /// Routing target: pixels of tile per virtual processor (n^2/p).
  std::uint32_t grain_pixels = 64 * 64;
  /// Images with at most this many pixels run the sequential path.
  std::uint32_t sequential_pixels = 64 * 64;
  /// Warm machines cached per pool slot (one per distinct processor
  /// count, LRU-evicted).  0 = auto: enough for every power-of-two width
  /// up to max_procs, so a mixed-width job mix stops rebuilding once each
  /// width has been seen.  1 = the original one-machine-per-slot mode.
  std::uint32_t machines_per_slot = 0;
  /// Allocation mode for Spreads on the pooled machines (docs/layout.md).
  /// Packed reclaims the ragged-layout padding; strided is the
  /// differential oracle the tests compare against.
  splitc::SpreadLayout spread_layout = splitc::SpreadLayout::kPacked;
  /// Test/instrumentation hook: when set, called on the pool worker
  /// immediately before every parallel execution.  Throwing from it
  /// exercises the degradation path; sleeping in it exercises deadlines.
  std::function<void()> before_parallel{};
  /// Span/counter sink (docs/tracing.md): per-job queue/lease/run/degrade
  /// spans on the worker's track, queue-depth and in-flight counter
  /// samples, and attachment of the tracer to every leased machine so
  /// kernel phases land in the same trace.  nullptr falls back to
  /// `trace::env_tracer()` (the HISTCC_TRACE environment variable), which
  /// is itself null when tracing was not requested.
  trace::Tracer* trace = nullptr;
  /// Sampling rate for *kernel* spans (bdm/hist/cc/img categories) on the
  /// resolved tracer: > 1 installs SamplingPolicy::kernels(N) at pipeline
  /// construction, recording every Nth kernel span per thread — the
  /// always-on production preset (docs/tracing.md).  Per-job serve spans
  /// are never touched by this knob: they stay exact at rate 1 so job
  /// observability remains complete.  0/1 leaves the tracer's existing
  /// policy (e.g. one installed via HISTCC_TRACE=...:bdm=16) unchanged.
  std::uint32_t trace_sample_every = 1;
};

/// The virtual-processor count routing gives an image of this shape under
/// `options` (1 = sequential path): the largest power of two p with
/// p <= max_procs and pixels/p >= grain_pixels, or 1 for images at or
/// below sequential_pixels.  Any H x W shape is machine-eligible — the
/// ragged tile layout imposes no squareness or divisibility constraint.
[[nodiscard]] std::uint32_t choose_procs(std::uint32_t height,
                                         std::uint32_t width,
                                         const PipelineOptions& options);

/// How shutdown treats jobs still in the queue.
enum class DrainMode : std::uint8_t {
  kDrain,  ///< run every queued job to completion, then stop
  kAbort,  ///< resolve queued jobs kCancelled; in-flight jobs finish
};

class Pipeline {
 public:
  explicit Pipeline(PipelineOptions options = {});

  /// Drains outstanding work (shutdown(kDrain)) unless shutdown was
  /// already called.
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Histogram `image` with k grey bars (k a power of two in [2, 256]).
  [[nodiscard]] PendingJob<std::vector<std::uint32_t>> submit_histogram(
      img::GreyImage image, std::uint32_t k, JobOptions job = {});

  /// Label the connected components of `image` (canonical labeling).
  [[nodiscard]] PendingJob<img::LabelImage> submit_components(
      img::GreyImage image, cc::CcOptions options = {}, JobOptions job = {});

  /// Histogram-equalize `image` over k grey levels.
  [[nodiscard]] PendingJob<img::GreyImage> submit_equalize(
      img::GreyImage image, std::uint32_t k, JobOptions job = {});

  /// Label `image` and measure every component (area, bounding box,
  /// centroid), sorted by label.
  [[nodiscard]] PendingJob<std::vector<ccseq::ComponentStats>> submit_stats(
      img::GreyImage image, cc::CcOptions options = {}, JobOptions job = {});

  /// Stop accepting jobs and finish (kDrain) or cancel (kAbort) the
  /// queued ones; blocks until the pool workers have exited.  Idempotent;
  /// later submissions resolve kRejected.
  void shutdown(DrainMode mode = DrainMode::kDrain);

  /// Observability snapshot (queue depth, in-flight, outcome counters,
  /// latency percentiles, machine churn).
  [[nodiscard]] PoolMetrics metrics() const;

  [[nodiscard]] const PipelineOptions& options() const noexcept {
    return options_;
  }

 private:
  struct QueuedJob;

  /// Shared submit tail: route, wrap, enqueue (or reject).
  template <typename T, typename ParallelFn, typename SequentialFn>
  PendingJob<T> enqueue(img::GreyImage image, const JobOptions& job,
                        std::uint32_t procs_cap, ParallelFn parallel,
                        SequentialFn sequential);

  void worker_loop(std::uint32_t worker);
  void finish_cancelled(QueuedJob& job);

  PipelineOptions options_;
  trace::Tracer* tracer_ = nullptr;  ///< resolved from options/environment
  MachinePool pool_;
  std::unique_ptr<JobQueue<QueuedJob>> queue_;
  MetricsRecorder metrics_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> next_id_{0};
  std::mutex shutdown_mutex_;
  bool shut_down_ = false;
};

}  // namespace histcc::serve

#endif  // HISTCC_SERVE_PIPELINE_HPP
