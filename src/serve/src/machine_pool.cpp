#include "histcc/serve/machine_pool.hpp"

#include <algorithm>

#include "histcc/util/math.hpp"
#include "histcc/util/require.hpp"

namespace histcc::serve {

MachinePool::MachinePool(std::uint32_t slots, std::uint32_t max_procs,
                         std::uint32_t machines_per_slot,
                         splitc::SpreadLayout spread_layout)
    : slots_(slots), max_procs_(max_procs),
      machines_per_slot_(machines_per_slot),
      spread_layout_(spread_layout) {
  HISTCC_REQUIRE(slots >= 1, "pool needs at least one slot");
  HISTCC_REQUIRE(max_procs >= 1 && util::is_pow2(max_procs),
                 "max_procs must be a power of two");
  HISTCC_REQUIRE(machines_per_slot >= 1,
                 "each slot caches at least one machine");
}

MachinePool::Lease MachinePool::acquire(std::uint32_t procs) {
  HISTCC_REQUIRE(procs >= 1 && util::is_pow2(procs) && procs <= max_procs_,
                 "lease size must be a power of two within max_procs");
  std::unique_lock lock(mutex_);
  for (;;) {
    // Best idle slot: one already caching an exact-size machine beats one
    // with spare cache room beats one that must evict its LRU entry.
    std::size_t chosen = slots_.size();
    bool chosen_exact = false;
    bool chosen_spare = false;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const Slot& slot = slots_[i];
      if (slot.busy) continue;
      const bool exact = std::any_of(
          slot.cache.begin(), slot.cache.end(), [&](const Entry& e) {
            return e.machine->nprocs() == procs;
          });
      if (exact) {
        chosen = i;
        chosen_exact = true;
        break;
      }
      const bool spare = slot.cache.size() < machines_per_slot_;
      if (chosen == slots_.size() || (spare && !chosen_spare)) {
        chosen = i;
        chosen_spare = spare;
      }
    }
    if (chosen < slots_.size()) {
      Slot& slot = slots_[chosen];
      Entry* entry = nullptr;
      if (chosen_exact) {
        for (Entry& e : slot.cache) {
          if (e.machine->nprocs() == procs) {
            entry = &e;
            break;
          }
        }
      } else if (slot.cache.size() < machines_per_slot_) {
        entry = &slot.cache.emplace_back();
      } else {
        // Evict the least-recently-used size to make room.
        entry = &*std::min_element(
            slot.cache.begin(), slot.cache.end(),
            [](const Entry& a, const Entry& b) {
              return a.last_used < b.last_used;
            });
        entry->machine.reset();
      }
      if (!entry->machine) {
        entry->machine = std::make_unique<splitc::Machine>(
            procs, splitc::WorkerMode::kPersistent);
        entry->machine->set_spread_layout(spread_layout_);
        built_ += 1;
      }
      entry->last_used = ++tick_;
      slot.busy = true;
      return Lease(this, chosen, entry->machine.get());
    }
    slot_free_.wait(lock);
  }
}

void MachinePool::release_slot(std::size_t index) noexcept {
  {
    std::scoped_lock lock(mutex_);
    slots_[index].busy = false;
  }
  slot_free_.notify_one();
}

void MachinePool::Lease::release() noexcept {
  if (pool_ == nullptr) return;
  pool_->release_slot(slot_);
  pool_ = nullptr;
  machine_ = nullptr;
}

std::uint64_t MachinePool::machines_built() const {
  std::scoped_lock lock(mutex_);
  return built_;
}

std::uint32_t MachinePool::idle() const {
  std::scoped_lock lock(mutex_);
  std::uint32_t n = 0;
  for (const Slot& slot : slots_) n += slot.busy ? 0u : 1u;
  return n;
}

}  // namespace histcc::serve
