#include "histcc/serve/machine_pool.hpp"

#include "histcc/util/math.hpp"
#include "histcc/util/require.hpp"

namespace histcc::serve {

MachinePool::MachinePool(std::uint32_t slots, std::uint32_t max_procs)
    : slots_(slots), max_procs_(max_procs) {
  HISTCC_REQUIRE(slots >= 1, "pool needs at least one slot");
  HISTCC_REQUIRE(max_procs >= 1 && util::is_pow2(max_procs),
                 "max_procs must be a power of two");
}

MachinePool::Lease MachinePool::acquire(std::uint32_t procs) {
  HISTCC_REQUIRE(procs >= 1 && util::is_pow2(procs) && procs <= max_procs_,
                 "lease size must be a power of two within max_procs");
  std::unique_lock lock(mutex_);
  for (;;) {
    // Best idle slot: exact-size machine beats an empty slot beats
    // rebuilding a differently-sized one.
    std::size_t chosen = slots_.size();
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const Slot& slot = slots_[i];
      if (slot.busy) continue;
      if (slot.machine && slot.machine->nprocs() == procs) {
        chosen = i;
        break;
      }
      if (chosen == slots_.size() || (slots_[chosen].machine && !slot.machine)) {
        chosen = i;
      }
    }
    if (chosen < slots_.size()) {
      Slot& slot = slots_[chosen];
      if (!slot.machine || slot.machine->nprocs() != procs) {
        slot.machine = std::make_unique<splitc::Machine>(
            procs, splitc::WorkerMode::kPersistent);
        built_ += 1;
      }
      slot.busy = true;
      return Lease(this, chosen, slot.machine.get());
    }
    slot_free_.wait(lock);
  }
}

void MachinePool::release_slot(std::size_t index) noexcept {
  {
    std::scoped_lock lock(mutex_);
    slots_[index].busy = false;
  }
  slot_free_.notify_one();
}

void MachinePool::Lease::release() noexcept {
  if (pool_ == nullptr) return;
  pool_->release_slot(slot_);
  pool_ = nullptr;
}

std::uint64_t MachinePool::machines_built() const {
  std::scoped_lock lock(mutex_);
  return built_;
}

std::uint32_t MachinePool::idle() const {
  std::scoped_lock lock(mutex_);
  std::uint32_t n = 0;
  for (const Slot& slot : slots_) n += slot.busy ? 0u : 1u;
  return n;
}

}  // namespace histcc::serve
