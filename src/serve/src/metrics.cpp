#include "histcc/serve/metrics.hpp"

#include <bit>
#include <cmath>

namespace histcc::serve {

namespace {

/// Histogram bucket of a wall latency: floor(log2(ns)), clamped.
std::size_t bucket_of(double seconds) noexcept {
  const double ns = seconds * 1e9;
  if (ns < 1.0) return 0;
  const auto n = static_cast<std::uint64_t>(ns);
  const auto b = static_cast<std::size_t>(std::bit_width(n) - 1);
  return b < 63 ? b : 63;
}

}  // namespace

void MetricsRecorder::on_dequeue(double queue_s) noexcept {
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  dequeued_.fetch_add(1, std::memory_order_relaxed);
  queue_ns_total_.fetch_add(static_cast<std::uint64_t>(queue_s * 1e9),
                            std::memory_order_relaxed);
}

void MetricsRecorder::on_finish(JobStatus status, double wall_s,
                                double run_s) noexcept {
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  run_ns_total_.fetch_add(static_cast<std::uint64_t>(run_s * 1e9),
                          std::memory_order_relaxed);
  wall_hist_[bucket_of(wall_s)].fetch_add(1, std::memory_order_relaxed);
  switch (status) {
    case JobStatus::kOk:
      completed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobStatus::kDegraded:
      degraded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobStatus::kTimedOut:
      timed_out_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobStatus::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobStatus::kRejected:  // rejected jobs never reach a worker
    case JobStatus::kFailed:
      failed_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

double MetricsRecorder::quantile(double q) const noexcept {
  std::uint64_t total = 0;
  for (const auto& b : wall_hist_) total += b.load(std::memory_order_relaxed);
  if (total == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(total - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += wall_hist_[b].load(std::memory_order_relaxed);
    if (seen > rank) {
      // Geometric midpoint of [2^b, 2^(b+1)) ns.
      return std::exp2(static_cast<double>(b) + 0.5) * 1e-9;
    }
  }
  return 0;
}

PoolMetrics MetricsRecorder::snapshot(std::size_t queue_depth,
                                      std::uint32_t pool_size,
                                      std::uint64_t machines_built) const {
  PoolMetrics m;
  m.submitted = submitted_.load(std::memory_order_relaxed);
  m.rejected = rejected_.load(std::memory_order_relaxed);
  m.completed = completed_.load(std::memory_order_relaxed);
  m.degraded = degraded_.load(std::memory_order_relaxed);
  m.timed_out = timed_out_.load(std::memory_order_relaxed);
  m.cancelled = cancelled_.load(std::memory_order_relaxed);
  m.failed = failed_.load(std::memory_order_relaxed);
  m.queue_depth = queue_depth;
  m.in_flight = in_flight_.load(std::memory_order_relaxed);
  m.pool_size = pool_size;
  m.machines_built = machines_built;
  const std::uint64_t dequeued = dequeued_.load(std::memory_order_relaxed);
  if (dequeued > 0) {
    m.mean_queue_s =
        static_cast<double>(queue_ns_total_.load(std::memory_order_relaxed)) *
        1e-9 / static_cast<double>(dequeued);
    m.mean_run_s =
        static_cast<double>(run_ns_total_.load(std::memory_order_relaxed)) *
        1e-9 / static_cast<double>(dequeued);
  }
  m.wall_p50_s = quantile(0.50);
  m.wall_p90_s = quantile(0.90);
  m.wall_p99_s = quantile(0.99);
  return m;
}

}  // namespace histcc::serve
