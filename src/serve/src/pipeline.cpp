#include "histcc/serve/pipeline.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <utility>

#include "histcc/cc/stats_parallel.hpp"
#include "histcc/cc_seq/bfs_label.hpp"
#include "histcc/hist/equalize.hpp"
#include "histcc/hist/histogram.hpp"
#include "histcc/image/layout.hpp"
#include "histcc/splitc/spread.hpp"
#include "histcc/trace/trace.hpp"
#include "histcc/util/math.hpp"

namespace histcc::serve {

namespace {

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Attaches the pipeline's tracer to a leased machine for the duration of
/// one job and detaches on every exit path: leased machines outlive the
/// job and may serve a later pipeline with a different (or no) tracer.
class MachineTraceGuard {
 public:
  MachineTraceGuard(splitc::Machine& machine, trace::Tracer* tracer)
      : machine_(machine) {
    machine_.set_trace(tracer);
  }
  ~MachineTraceGuard() {
    if (!machine_.running()) machine_.set_trace(nullptr);
  }
  MachineTraceGuard(const MachineTraceGuard&) = delete;
  MachineTraceGuard& operator=(const MachineTraceGuard&) = delete;

 private:
  splitc::Machine& machine_;
};

/// Distributed equalization over a host image: scatter, equalize in
/// place, gather.  Requires p | k; violations throw and degrade.
img::GreyImage equalize_parallel_image(splitc::Machine& machine,
                                       const img::GreyImage& image,
                                       std::uint32_t k) {
  const img::TileLayout layout(image.height(), image.width(),
                               machine.nprocs());
  splitc::Spread<std::uint8_t> tiles(machine, layout.tile_sizes(),
                                     "serve_eq_tiles");
  layout.scatter(image, tiles);
  hist::equalize_parallel(machine, layout, tiles, k);
  return layout.gather(tiles);
}

/// Distributed label + measure: one scatter feeds both the CC algorithm
/// and the per-component statistics reduction.
std::vector<ccseq::ComponentStats> stats_parallel_image(
    splitc::Machine& machine, const img::GreyImage& image,
    const cc::CcOptions& options) {
  const img::TileLayout layout(image.height(), image.width(),
                               machine.nprocs());
  splitc::Spread<std::uint8_t> tiles(machine, layout.tile_sizes(),
                                     "serve_stats_tiles");
  layout.scatter(image, tiles);
  splitc::Spread<std::uint32_t> labels(machine, layout.tile_sizes(),
                                       "serve_stats_labels");
  cc::connected_components_parallel(machine, layout, tiles, labels, options);
  return cc::component_stats_parallel(machine, layout, tiles, labels);
}

}  // namespace

std::uint32_t choose_procs(std::uint32_t height, std::uint32_t width,
                           const PipelineOptions& options) {
  // The ragged tile layout hosts any H x W shape, so routing is by pixel
  // count alone: only tiny images take the sequential reference path.
  const std::uint64_t pixels = static_cast<std::uint64_t>(height) * width;
  if (pixels <= options.sequential_pixels) return 1;
  const std::uint64_t grain = std::max<std::uint32_t>(1, options.grain_pixels);
  const std::uint64_t target =
      std::min<std::uint64_t>(pixels / grain, options.max_procs);
  const auto p = static_cast<std::uint32_t>(std::bit_floor(target));
  return p == 0 ? 1 : p;
}

/// A type-erased job as it sits in the bounded queue.  The closures share
/// a per-job state block holding the promise and the computed value;
/// `finish` is the single exit point that resolves the future.
struct Pipeline::QueuedJob {
  std::uint64_t id = 0;
  std::shared_ptr<JobControl> control;
  Clock::time_point submitted{};
  std::optional<Clock::time_point> deadline{};
  /// Virtual processors the parallel path will use; meaningful only when
  /// `parallel` is set.
  std::uint32_t procs = 1;
  std::function<void(splitc::Machine&)> parallel;  ///< null = sequential job
  std::function<void()> sequential;
  std::function<void(JobStatus, std::string, std::uint32_t, double, double)>
      finish;  ///< (status, error, procs_used, queue_s, run_s)
};

namespace {

/// 0 = auto: one cached machine per power-of-two width in [1, max_procs].
std::uint32_t resolve_machines_per_slot(const PipelineOptions& options) {
  if (options.machines_per_slot > 0) return options.machines_per_slot;
  return util::log2_floor(std::max(1u, options.max_procs)) + 1;
}

}  // namespace

Pipeline::Pipeline(PipelineOptions options)
    : options_(std::move(options)),
      pool_(options_.pool_size, options_.max_procs,
            resolve_machines_per_slot(options_), options_.spread_layout),
      queue_(std::make_unique<JobQueue<QueuedJob>>(options_.queue_capacity)) {
  tracer_ = options_.trace != nullptr ? options_.trace : trace::env_tracer();
  if (tracer_ != nullptr && options_.trace_sample_every > 1) {
    // Kernel spans sampled, serve job spans exact (docs/tracing.md).
    tracer_->set_sampling(
        trace::SamplingPolicy::kernels(options_.trace_sample_every));
  }
  workers_.reserve(options_.pool_size);
  for (std::uint32_t i = 0; i < options_.pool_size; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

Pipeline::~Pipeline() { shutdown(DrainMode::kDrain); }

template <typename T, typename ParallelFn, typename SequentialFn>
PendingJob<T> Pipeline::enqueue(img::GreyImage image, const JobOptions& job,
                                std::uint32_t procs_cap, ParallelFn parallel,
                                SequentialFn sequential) {
  struct State {
    std::promise<JobResult<T>> promise;
    std::optional<T> value;
  };
  auto state = std::make_shared<State>();
  auto control = std::make_shared<JobControl>(
      next_id_.fetch_add(1, std::memory_order_relaxed));
  PendingJob<T> pending{state->promise.get_future(), control};

  // Routing: an explicit force_procs runs the parallel path at exactly
  // that width (shape incompatibilities degrade); otherwise pick p from
  // the image size, additionally capped by the job kind (procs_cap).
  std::uint32_t procs;
  bool parallel_path;
  if (job.force_procs > 0) {
    procs = std::min(std::bit_floor(job.force_procs), options_.max_procs);
    parallel_path = true;
  } else {
    procs = std::min(choose_procs(image.height(), image.width(), options_),
                     procs_cap);
    parallel_path = procs > 1;
  }

  auto shared_image =
      std::make_shared<const img::GreyImage>(std::move(image));

  QueuedJob queued;
  queued.id = control->id();
  queued.control = control;
  queued.submitted = Clock::now();
  if (job.deadline) queued.deadline = queued.submitted + *job.deadline;
  queued.procs = procs;
  if (parallel_path) {
    queued.parallel = [state, shared_image,
                       parallel](splitc::Machine& machine) {
      state->value = parallel(machine, *shared_image);
    };
  }
  queued.sequential = [state, shared_image, sequential] {
    state->value = sequential(*shared_image);
  };
  queued.finish = [state](JobStatus status, std::string error,
                          std::uint32_t procs_used, double queue_s,
                          double run_s) {
    JobResult<T> result;
    result.status = status;
    result.error = std::move(error);
    result.procs = procs_used;
    result.queue_s = queue_s;
    result.run_s = run_s;
    result.value = std::move(state->value);
    state->promise.set_value(std::move(result));
  };

  const bool accepted = job.overflow == OverflowPolicy::kBlock
                            ? queue_->push(std::move(queued))
                            : queue_->try_push(std::move(queued));
  if (accepted) {
    metrics_.on_submit();
  } else {
    metrics_.on_reject();
    queued.finish(JobStatus::kRejected,
                  queue_->closed() ? "pipeline is shut down"
                                   : "job queue is full",
                  0, 0, 0);
  }
  return pending;
}

PendingJob<std::vector<std::uint32_t>> Pipeline::submit_histogram(
    img::GreyImage image, std::uint32_t k, JobOptions job) {
  return enqueue<std::vector<std::uint32_t>>(
      std::move(image), job, options_.max_procs,
      [k](splitc::Machine& machine, const img::GreyImage& im) {
        return hist::histogram_parallel(machine, im, k);
      },
      [k](const img::GreyImage& im) { return hist::histogram_seq(im, k); });
}

PendingJob<img::LabelImage> Pipeline::submit_components(img::GreyImage image,
                                                        cc::CcOptions options,
                                                        JobOptions job) {
  return enqueue<img::LabelImage>(
      std::move(image), job, options_.max_procs,
      [options](splitc::Machine& machine, const img::GreyImage& im) {
        return cc::connected_components_parallel(machine, im, options);
      },
      [options](const img::GreyImage& im) {
        return ccseq::label_components_bfs(im, options.connectivity,
                                           options.rule);
      });
}

PendingJob<img::GreyImage> Pipeline::submit_equalize(img::GreyImage image,
                                                     std::uint32_t k,
                                                     JobOptions job) {
  // equalize_parallel needs p | k, so auto-routing additionally caps p at
  // k (both powers of two).
  const std::uint32_t cap =
      std::max(1u, std::min(std::bit_floor(k), options_.max_procs));
  return enqueue<img::GreyImage>(
      std::move(image), job, cap,
      [k](splitc::Machine& machine, const img::GreyImage& im) {
        return equalize_parallel_image(machine, im, k);
      },
      [k](const img::GreyImage& im) { return hist::equalize(im, k); });
}

PendingJob<std::vector<ccseq::ComponentStats>> Pipeline::submit_stats(
    img::GreyImage image, cc::CcOptions options, JobOptions job) {
  return enqueue<std::vector<ccseq::ComponentStats>>(
      std::move(image), job, options_.max_procs,
      [options](splitc::Machine& machine, const img::GreyImage& im) {
        return stats_parallel_image(machine, im, options);
      },
      [options](const img::GreyImage& im) {
        const auto labels = ccseq::label_components_bfs(
            im, options.connectivity, options.rule);
        return ccseq::component_stats(im, labels);
      });
}

void Pipeline::worker_loop(std::uint32_t worker) {
  const std::uint32_t tid = trace::serve_tid(worker);
  // Serve-layer spans are recorded after the fact from the job's own
  // timestamps (the same ones the latency metrics use), so the trace and
  // the metrics always agree on every interval.
  const auto record = [&](const char* name, Clock::time_point from,
                          Clock::time_point to, std::uint64_t arg) {
    // Serve spans bypass trace::Scope (recorded after the fact from the
    // job's timestamps), so they consult the sampling gate themselves.
    // The serve category defaults to rate 1 — exact per-job spans — and
    // trace_sample_every never touches it, but an explicit
    // HISTCC_TRACE=...:serve=N is still honored here.
    if (tracer_ == nullptr || !tracer_->enabled() ||
        !tracer_->should_record(name)) {
      return;
    }
    trace::Span span;
    span.name = name;
    span.tid = tid;
    span.t0_ns = tracer_->to_ns(from);
    span.t1_ns = tracer_->to_ns(to);
    span.arg = arg;
    tracer_->record_span(span);
  };
  // PoolMetrics -> trace bridge: sample the two gauges at the points
  // they change so the counter tracks mirror Pipeline::metrics().
  const auto sample_gauges = [&] {
    if (tracer_ == nullptr || !tracer_->enabled()) return;
    const std::int64_t now = tracer_->now_ns();
    tracer_->record_counter({"serve/queue_depth", tid, now,
                             static_cast<double>(queue_->size())});
    tracer_->record_counter({"serve/in_flight", tid, now,
                             static_cast<double>(metrics_.in_flight())});
  };
  for (;;) {
    auto popped = queue_->pop();
    if (!popped) return;  // closed and drained
    QueuedJob job = std::move(*popped);
    const auto dequeued = Clock::now();
    const double queue_s = seconds_between(job.submitted, dequeued);
    metrics_.on_dequeue(queue_s);
    record("serve/queue", job.submitted, dequeued, job.id);
    sample_gauges();

    JobStatus status = JobStatus::kOk;
    std::string error;
    std::uint32_t procs_used = 0;
    double run_s = 0;

    if (job.control && job.control->cancelled()) {
      status = JobStatus::kCancelled;
      error = "cancelled while queued";
    } else if (job.deadline && dequeued > *job.deadline) {
      status = JobStatus::kTimedOut;
      error = "deadline expired while queued";
    } else {
      const auto started = Clock::now();
      auto run_sequential = [&] {
        try {
          job.sequential();
          procs_used = 1;
          return true;
        } catch (const std::exception& e) {
          status = JobStatus::kFailed;
          error += error.empty() ? "" : "; sequential fallback: ";
          error += e.what();
        } catch (...) {
          status = JobStatus::kFailed;
          error += error.empty() ? "" : "; ";
          error += "sequential path threw a non-standard exception";
        }
        return false;
      };
      if (job.parallel) {
        bool parallel_ok = false;
        std::string parallel_error;
        try {
          auto lease = pool_.acquire(job.procs);
          record("serve/lease", started, Clock::now(), job.id);
          MachineTraceGuard trace_guard(lease.machine(), tracer_);
          if (options_.before_parallel) options_.before_parallel();
          job.parallel(lease.machine());
          procs_used = job.procs;
          parallel_ok = true;
        } catch (const std::exception& e) {
          parallel_error = e.what();
        } catch (...) {
          parallel_error = "parallel path threw a non-standard exception";
        }
        if (!parallel_ok) {
          // Degrade, never drop: the sequential reference serves the job.
          error = parallel_error;
          const auto degrade_started = Clock::now();
          if (run_sequential()) status = JobStatus::kDegraded;
          record("serve/degrade", degrade_started, Clock::now(), job.id);
        }
      } else {
        run_sequential();
      }
      const auto finished = Clock::now();
      run_s = seconds_between(started, finished);
      record("serve/run", started, finished, job.id);
      if (status != JobStatus::kFailed && job.deadline &&
          finished > *job.deadline) {
        status = JobStatus::kTimedOut;
        if (error.empty()) error = "run completed past its deadline";
      }
    }

    // Record before resolving the future: a caller that has observed the
    // result must also observe its effect on the metrics.
    metrics_.on_finish(status, queue_s + run_s, run_s);
    sample_gauges();
    job.finish(status, std::move(error), procs_used, queue_s, run_s);
  }
}

void Pipeline::finish_cancelled(QueuedJob& job) {
  const double queue_s = seconds_between(job.submitted, Clock::now());
  metrics_.on_dequeue(queue_s);
  metrics_.on_finish(JobStatus::kCancelled, queue_s, 0);
  job.finish(JobStatus::kCancelled, "pipeline shut down before execution", 0,
             queue_s, 0);
}

void Pipeline::shutdown(DrainMode mode) {
  {
    std::scoped_lock lock(shutdown_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  queue_->close();
  if (mode == DrainMode::kAbort) {
    for (auto& job : queue_->drain()) finish_cancelled(job);
  }
  for (auto& t : workers_) t.join();
  workers_.clear();
}

PoolMetrics Pipeline::metrics() const {
  return metrics_.snapshot(queue_->size(), pool_.slots(),
                           pool_.machines_built());
}

}  // namespace histcc::serve
