#include "histcc/sortutil/radix.hpp"

namespace histcc::sortutil {

void radix_sort(std::span<std::uint32_t> keys) {
  std::vector<std::uint32_t> v(keys.begin(), keys.end());
  radix_sort_by(v, [](std::uint32_t k) { return k; });
  std::copy(v.begin(), v.end(), keys.begin());
}

void hybrid_sort(std::span<std::uint32_t> keys, std::size_t threshold) {
  std::vector<std::uint32_t> v(keys.begin(), keys.end());
  hybrid_sort_by(
      v, [](std::uint32_t k) { return k; }, threshold);
  std::copy(v.begin(), v.end(), keys.begin());
}

}  // namespace histcc::sortutil
