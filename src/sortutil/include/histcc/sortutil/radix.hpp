#ifndef HISTCC_SORTUTIL_RADIX_HPP
#define HISTCC_SORTUTIL_RADIX_HPP

/// \file radix.hpp
/// The paper's sorting kernels (Section 5.3, footnotes 3 and 4).
///
/// Footnote 4: "Our radix sort uses four passes; each pass will sort on one
/// byte of the 32-bit key by using 256 buckets."  Footnote 3: "whenever
/// radix sort is mentioned in this paper, the actual coding uses the
/// standard UNIX quicker-sort function for smaller sorts, and radix sort
/// for larger sorts, using whichever sorting method is fastest for the
/// given input size."
///
/// `radix_sort_by` is the four-pass LSD byte radix sort over any record
/// type with a 32-bit key projection; `hybrid_sort_by` switches to
/// comparison sort below a size threshold, exactly as the footnote
/// describes.  The threshold default was tuned with bench_ablation_sort.

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace histcc::sortutil {

/// Input size below which comparison sort beats the four-pass radix sort.
/// Measured with bench_micro's BM_HybridSortThreshold / BM_RadixSort vs
/// BM_StdSort sweep: the crossover sits near ~1000 keys on current
/// hardware (radix pays four full passes regardless of size).
inline constexpr std::size_t kHybridThreshold = 512;

/// Stable LSD radix sort of `records` by the 32-bit key `key(record)`.
/// Four passes of 256 buckets; passes whose byte is constant across the
/// whole input are skipped (a standard optimization that matters for the
/// merge step, where labels share high bytes).
template <typename Record, typename KeyFn>
void radix_sort_by(std::vector<Record>& records, KeyFn key) {
  const std::size_t n = records.size();
  if (n < 2) return;
  std::vector<Record> scratch(n);
  Record* src = records.data();
  Record* dst = scratch.data();
  bool swapped = false;

  for (unsigned pass = 0; pass < 4; ++pass) {
    const unsigned shift = pass * 8;
    std::array<std::uint32_t, 256> count{};
    for (std::size_t i = 0; i < n; ++i) {
      count[(key(src[i]) >> shift) & 0xFFu]++;
    }
    // Skip passes where every key shares this byte.
    const std::uint8_t first_byte =
        static_cast<std::uint8_t>((key(src[0]) >> shift) & 0xFFu);
    if (count[first_byte] == n) continue;

    std::uint32_t running = 0;
    std::array<std::uint32_t, 256> offset{};
    for (std::size_t b = 0; b < 256; ++b) {
      offset[b] = running;
      running += count[b];
    }
    for (std::size_t i = 0; i < n; ++i) {
      dst[offset[(key(src[i]) >> shift) & 0xFFu]++] = src[i];
    }
    std::swap(src, dst);
    swapped = !swapped;
  }
  if (swapped) {
    std::copy(scratch.begin(), scratch.end(), records.begin());
  }
}

/// The paper's hybrid: comparison sort ("UNIX quicker-sort") for small
/// inputs, four-pass radix sort for large ones.  Stable in both regimes.
template <typename Record, typename KeyFn>
void hybrid_sort_by(std::vector<Record>& records, KeyFn key,
                    std::size_t threshold = kHybridThreshold) {
  if (records.size() < threshold) {
    std::stable_sort(records.begin(), records.end(),
                     [&](const Record& a, const Record& b) {
                       return key(a) < key(b);
                     });
  } else {
    radix_sort_by(records, key);
  }
}

/// Convenience overloads for plain 32-bit keys.
void radix_sort(std::span<std::uint32_t> keys);
void hybrid_sort(std::span<std::uint32_t> keys,
                 std::size_t threshold = kHybridThreshold);

}  // namespace histcc::sortutil

#endif  // HISTCC_SORTUTIL_RADIX_HPP
