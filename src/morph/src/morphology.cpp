#include "histcc/morph/morphology.hpp"

#include <vector>

#include "histcc/image/halo.hpp"
#include "histcc/util/require.hpp"

namespace histcc::morph {
namespace {

/// Apply the 3x3 stencil at (i, j) of a padded buffer: `erosion` = all
/// element pixels foreground, else (dilation) = any foreground.  `stride`
/// is the padded row length; (i, j) are padded coordinates >= 1.
template <bool Erosion>
std::uint8_t stencil_at(const std::uint8_t* padded, std::size_t stride,
                        std::size_t i, std::size_t j, bool square) {
  const std::size_t c = i * stride + j;
  auto fg = [&](std::size_t idx) { return padded[idx] != 0; };
  bool all = fg(c) && fg(c - stride) && fg(c + stride) && fg(c - 1) &&
             fg(c + 1);
  bool any = fg(c) || fg(c - stride) || fg(c + stride) || fg(c - 1) ||
             fg(c + 1);
  if (square) {
    all = all && fg(c - stride - 1) && fg(c - stride + 1) &&
          fg(c + stride - 1) && fg(c + stride + 1);
    any = any || fg(c - stride - 1) || fg(c - stride + 1) ||
          fg(c + stride - 1) || fg(c + stride + 1);
  }
  return Erosion ? (all ? 1 : 0) : (any ? 1 : 0);
}

/// Sequential stencil over a whole image via a zero-padded copy.
template <bool Erosion>
img::GreyImage sequential(const img::GreyImage& image, Structuring element) {
  HISTCC_REQUIRE(!image.empty(), "cannot transform an empty image");
  const std::uint32_t rows = image.height();
  const std::uint32_t cols = image.width();
  const std::size_t stride = cols + 2;
  std::vector<std::uint8_t> padded((rows + 2) * stride, 0);
  for (std::uint32_t i = 0; i < rows; ++i) {
    for (std::uint32_t j = 0; j < cols; ++j) {
      padded[(i + 1) * stride + (j + 1)] = image(i, j);
    }
  }
  const bool square = element == Structuring::kSquare;
  img::GreyImage out(rows, cols);
  for (std::uint32_t i = 0; i < rows; ++i) {
    for (std::uint32_t j = 0; j < cols; ++j) {
      out(i, j) = stencil_at<Erosion>(padded.data(), stride, i + 1, j + 1,
                                      square);
    }
  }
  return out;
}

/// Parallel stencil: one halo exchange, then the same kernel over the
/// (q+2) x (r+2) halo buffer.
template <bool Erosion>
void parallel(splitc::Machine& machine, const img::TileLayout& layout,
              splitc::Spread<std::uint8_t>& tiles,
              splitc::Spread<std::uint8_t>& out, Structuring element) {
  HISTCC_REQUIRE(tiles.nprocs() == machine.nprocs() &&
                     layout.spread_fits(tiles),
                 "tiles spread does not fit layout (Spread '" +
                     tiles.name() + "')");
  HISTCC_REQUIRE(out.nprocs() == machine.nprocs() &&
                     layout.spread_fits(out),
                 "output spread does not fit layout (Spread '" + out.name() +
                     "')");
  const bool square = element == Structuring::kSquare;
  img::HaloExchanger halos(machine, layout);

  machine.run([&](splitc::Proc& self) {
    const std::uint32_t rank = self.rank();
    const std::uint32_t q = layout.tile_rows(rank);
    const std::uint32_t r = layout.tile_cols(rank);
    std::vector<std::uint8_t> halo;
    halos.exchange(self, tiles, halo);
    const std::size_t stride = halos.halo_cols(rank);
    auto result = out.local(self);
    for (std::uint32_t i = 0; i < q; ++i) {
      for (std::uint32_t j = 0; j < r; ++j) {
        result[static_cast<std::size_t>(i) * r + j] = stencil_at<Erosion>(
            halo.data(), stride, i + 1, j + 1, square);
      }
    }
    if (q > 0 && r > 0) {
      out.note_local_write(self);  // race-ledger epoch annotation
    }
    self.charge_ops(static_cast<std::uint64_t>(square ? 9 : 5) *
                    layout.tile_size(rank));
  });
}

}  // namespace

img::GreyImage erode(const img::GreyImage& image, Structuring element) {
  return sequential<true>(image, element);
}

img::GreyImage dilate(const img::GreyImage& image, Structuring element) {
  return sequential<false>(image, element);
}

img::GreyImage open(const img::GreyImage& image, Structuring element) {
  return dilate(erode(image, element), element);
}

img::GreyImage close(const img::GreyImage& image, Structuring element) {
  return erode(dilate(image, element), element);
}

void erode_parallel(splitc::Machine& machine, const img::TileLayout& layout,
                    splitc::Spread<std::uint8_t>& tiles,
                    splitc::Spread<std::uint8_t>& out, Structuring element) {
  parallel<true>(machine, layout, tiles, out, element);
}

void dilate_parallel(splitc::Machine& machine, const img::TileLayout& layout,
                     splitc::Spread<std::uint8_t>& tiles,
                     splitc::Spread<std::uint8_t>& out, Structuring element) {
  parallel<false>(machine, layout, tiles, out, element);
}

}  // namespace histcc::morph
