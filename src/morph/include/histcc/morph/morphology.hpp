#ifndef HISTCC_MORPH_MORPHOLOGY_HPP
#define HISTCC_MORPH_MORPHOLOGY_HPP

/// \file morphology.hpp
/// Binary mathematical morphology on the tile layout.
///
/// Erosion / dilation with a 3x3 structuring element are the classic
/// companions of connected-component labeling in image-processing
/// pipelines (the DARPA benchmarks' "shrink/expand" entries in Table 2
/// are exactly repeated erosions/dilations).  The parallel versions are
/// single-halo stencils over the paper's tile layout: one HaloExchanger
/// round (Tcomm = tau + 2(q+r) + 4) plus an O(n^2/p) local sweep — a
/// template for adding further stencil primitives to the library.
///
/// Convention: pixels are foreground iff nonzero; outputs are 0/1; pixels
/// outside the image behave as background (zero padding), so erosion
/// shrinks shapes touching the image edge.

#include <cstdint>

#include "histcc/image/image.hpp"
#include "histcc/image/layout.hpp"
#include "histcc/splitc/machine.hpp"
#include "histcc/splitc/spread.hpp"

namespace histcc::morph {

/// 3x3 structuring elements.
enum class Structuring : int {
  kCross = 4,   ///< centre + N/E/S/W
  kSquare = 8,  ///< full 3x3 neighbourhood
};

/// Sequential erosion: out = 1 iff every pixel under the element is
/// foreground.
[[nodiscard]] img::GreyImage erode(const img::GreyImage& image,
                                   Structuring element = Structuring::kSquare);

/// Sequential dilation: out = 1 iff any pixel under the element is
/// foreground.
[[nodiscard]] img::GreyImage dilate(const img::GreyImage& image,
                                    Structuring element = Structuring::kSquare);

/// Opening (erode then dilate): removes specks smaller than the element.
[[nodiscard]] img::GreyImage open(const img::GreyImage& image,
                                  Structuring element = Structuring::kSquare);

/// Closing (dilate then erode): fills pinholes smaller than the element.
[[nodiscard]] img::GreyImage close(const img::GreyImage& image,
                                   Structuring element = Structuring::kSquare);

/// Parallel erosion over distributed tiles: one halo exchange + local
/// sweep; `out` receives 0/1 tiles.  Bit-identical to `erode`.
/// Collective.
void erode_parallel(splitc::Machine& machine, const img::TileLayout& layout,
                    splitc::Spread<std::uint8_t>& tiles,
                    splitc::Spread<std::uint8_t>& out,
                    Structuring element = Structuring::kSquare);

/// Parallel dilation; bit-identical to `dilate`.  Collective.
void dilate_parallel(splitc::Machine& machine, const img::TileLayout& layout,
                     splitc::Spread<std::uint8_t>& tiles,
                     splitc::Spread<std::uint8_t>& out,
                     Structuring element = Structuring::kSquare);

}  // namespace histcc::morph

#endif  // HISTCC_MORPH_MORPHOLOGY_HPP
