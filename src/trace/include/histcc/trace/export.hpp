#ifndef HISTCC_TRACE_EXPORT_HPP
#define HISTCC_TRACE_EXPORT_HPP

/// \file export.hpp
/// Exporters for a Tracer's recorded data.
///
/// Two formats:
///  - Chrome/Perfetto trace-event JSON ("X" complete events for spans,
///    "C" counter events, "M" thread-name metadata) — load the file in
///    ui.perfetto.dev or chrome://tracing.
///  - A plain-text per-phase breakdown: for every span name, wall time
///    on the critical rank, communication volume, and the modeled BDM
///    communication time under a MachineProfile — the paper's Fig. 11
///    style histogram decomposition produced from a live run instead of
///    the cost model alone.
///
/// Both read a snapshot via Tracer::spans()/counters(), so they inherit
/// the same quiescence requirement: export after Machine::run returned
/// or the pipeline drained, never mid-run.

#include <iosfwd>
#include <string>
#include <vector>

#include "histcc/splitc/profile.hpp"
#include "histcc/trace/trace.hpp"

namespace histcc::trace {

/// Write the Chrome/Perfetto trace-event JSON to `out`.
void write_chrome_json(const Tracer& tracer, std::ostream& out);

/// Write the Chrome/Perfetto trace-event JSON to the file at `path`.
/// \return false when the file could not be opened or written.
[[nodiscard]] bool write_chrome_json(const Tracer& tracer,
                                     const std::string& path);

/// One aggregated row of the per-phase breakdown (one per span name,
/// in order of first appearance — i.e. execution order).
struct PhaseRow {
  std::string name;
  std::uint64_t spans = 0;        ///< span records aggregated (recorded only)
  double wall_s = 0.0;            ///< max over tracks of summed durations
  double total_wall_s = 0.0;      ///< sum over all spans (cpu-seconds)
  std::uint64_t words = 0;        ///< remote words moved, all ranks
  std::uint64_t messages = 0;     ///< remote transfers, all ranks
  std::uint64_t barriers = 0;     ///< barrier crossings, all ranks
  double modeled_comm_s = 0.0;    ///< max over tracks of modeled Tcomm
  /// The tracer's sampling rate for this phase's category at export time:
  /// only every Nth span (per thread) was recorded, so every aggregate
  /// above is a sample of the phase.  Consumers must rescale to estimate
  /// phase totals — write_phase_report does, and flags the rescaled rows
  /// — or risk silently under-reporting sampled phases by up to N.
  std::uint32_t sample_every = 1;
  /// The *measured* decimation factor to rescale by: category-wide
  /// spans-seen / spans-recorded (Tracer::sampled_seen()), so rescaled
  /// span totals summed over a category equal the unsampled totals
  /// exactly; the nominal sample_every is only an upper bound because
  /// the first span per thread is always admitted.  1.0 for unsampled
  /// categories.
  double effective_rate = 1.0;
};

/// Aggregate the tracer's spans into per-phase rows.  Wall time per
/// phase is the maximum over tracks of that track's summed span
/// durations (ranks run concurrently, so the slowest rank is the phase
/// cost — the same max-over-processors aggregate the BDM model charges);
/// modeled time applies `profile` to each track's CommStats delta the
/// same way.
[[nodiscard]] std::vector<PhaseRow> phase_breakdown(
    const Tracer& tracer, const splitc::MachineProfile& profile);

/// Write the plain-text per-phase report (modeled-vs-wall side by side).
/// Rows of sampled categories (sample_every > 1) are printed rescaled —
/// every total multiplied by the rate — with an `xN` marker column and a
/// trailing note, so a sampled trace reports estimated phase totals
/// instead of silently under-reporting by N.
void write_phase_report(const Tracer& tracer,
                        const splitc::MachineProfile& profile,
                        std::ostream& out);

}  // namespace histcc::trace

#endif  // HISTCC_TRACE_EXPORT_HPP
