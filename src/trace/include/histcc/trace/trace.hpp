#ifndef HISTCC_TRACE_TRACE_HPP
#define HISTCC_TRACE_TRACE_HPP

/// \file trace.hpp
/// Barrier-epoch span tracing for the SPMD runtime.
///
/// The source paper is an experimental study: its figures are per-phase
/// breakdowns (histogram step timings, CC phase decomposition, transpose
/// communication volume).  This subsystem makes those breakdowns
/// observable on a live run instead of reconstructed from ad-hoc timers:
///
///  - `Tracer` collects `Span` records into lock-free per-thread buffers.
///    Each span carries wall-clock interval, the *barrier epoch* interval
///    (`Proc::epoch()` — the same counter the race ledger keys its
///    happens-before check on), and the CommStats delta accumulated while
///    the span was open, so bytes/messages per BDM primitive fall out of
///    the same ledger the cost model reads.
///  - `Scope` is the RAII recorder; the `TRACE_SCOPE(owner, "name")`
///    macro plants one in a block.  When no tracer is attached (the
///    default) the constructor is a pointer load and a branch; when a
///    tracer is attached but disabled it is additionally one relaxed
///    atomic load.  Kernels therefore stay instrumented in every build.
///  - Exporters (export.hpp) turn a tracer's buffers into a
///    Chrome/Perfetto `trace.json` or a plain-text per-phase breakdown.
///
/// Attachment points: `Machine::set_trace(&tracer)` for direct use,
/// `serve::PipelineOptions::trace` for the serving layer, and the
/// `HISTCC_TRACE` environment variable (see `env_tracer()`) for
/// harnesses that should not need a code change.
///
/// Sampling: always-on production tracing cannot afford one span per BDM
/// primitive call (≈6–14% on the VM benches), so a `SamplingPolicy` on
/// the tracer records only every Nth span per *category* (the `prefix/`
/// of the span name: bdm, hist, cc, img, serve).  The per-category call
/// counters live in the calling thread's buffer, so hot call sites stay
/// lock-free; a skipped span costs the category lookup plus one TLS
/// counter increment — no clock read, no CommStats snapshot, no record.
/// Category counters are deterministic per thread, so a fixed schedule
/// reproduces the same sampled span inventory run over run.
///
/// Epoch alignment: between two consecutive global barriers every rank is
/// in the same epoch, so spans from different ranks with overlapping
/// [begin_epoch, end_epoch] intervals describe the same algorithmic
/// phase even when the OS scheduler skews their wall-clock intervals.
///
/// Thread-safety contract: recording is safe from any number of threads
/// concurrently (each writes its own buffer).  Reading a snapshot
/// (`spans()`, `counters()`, `clear()`, the exporters) is safe only while
/// no traced program is mid-run — after `Machine::run` returns or the
/// serve pipeline is shut down; both joins/parks provide the needed
/// happens-before edge.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "histcc/splitc/machine.hpp"

namespace histcc::trace {

/// All trace timestamps come from one steady clock (never wall time:
/// spans must be immune to NTP steps, same as the bench timers).
using Clock = std::chrono::steady_clock;
static_assert(Clock::is_steady, "trace timestamps require a steady clock");

/// Track (Perfetto "tid") conventions: the host/control thread is track
/// 0, virtual processor r is track r + 1.
inline constexpr std::uint32_t kHostTid = 0;
[[nodiscard]] constexpr std::uint32_t rank_tid(std::uint32_t rank) noexcept {
  return rank + 1;
}
/// Serving-layer pool workers get their own tracks, numbered from a base
/// comfortably above any plausible virtual-processor count.
inline constexpr std::uint32_t kServeTidBase = 1000;
[[nodiscard]] constexpr std::uint32_t serve_tid(std::uint32_t worker) noexcept {
  return kServeTidBase + worker;
}

/// One closed instrumentation interval.  `name` must point to storage
/// that outlives the tracer (the macros pass string literals).
struct Span {
  const char* name = "";
  std::uint32_t tid = kHostTid;
  /// Barrier epoch at open/close; 0 on host-side spans recorded while no
  /// SPMD program is running.
  std::uint64_t begin_epoch = 0;
  std::uint64_t end_epoch = 0;
  /// Nanoseconds since the tracer's origin (Tracer::now_ns()).
  std::int64_t t0_ns = 0;
  std::int64_t t1_ns = 0;
  /// CommStats delta of the owning rank while the span was open.
  std::uint64_t words = 0;
  std::uint64_t messages = 0;
  std::uint64_t batches = 0;
  std::uint64_t barriers = 0;
  /// Free-form correlation id (the serve layer records the job id here).
  std::uint64_t arg = 0;
};

/// One sample of a named counter (exported as a Perfetto "C" event);
/// the serve layer bridges PoolMetrics gauges through these.
struct CounterSample {
  const char* name = "";
  std::uint32_t tid = kHostTid;
  std::int64_t t_ns = 0;
  double value = 0.0;
};

/// Span categories for sampling, keyed by the `prefix/` of the span
/// name.  Spans outside the known prefixes (tests, ad-hoc host spans)
/// fall into kOther.
enum class Category : std::uint8_t {
  kBdm = 0,    ///< "bdm/..." — the BDM primitive layer (hottest sites)
  kHist = 1,   ///< "hist/..." — histogram/equalize kernel phases
  kCc = 2,     ///< "cc/..." — connected-components / label-prop phases
  kImg = 3,    ///< "img/..." — stencil halo exchanges
  kServe = 4,  ///< "serve/..." — per-job pipeline stages
  kOther = 5,  ///< anything else
};
inline constexpr std::size_t kNumCategories = 6;

/// Human name of a category ("bdm", "hist", ...), for exporters and the
/// HISTCC_TRACE `cat=N` syntax.
[[nodiscard]] const char* category_name(Category cat) noexcept;

/// The category of a span name, by matching its `prefix/`.  Span names
/// are static literals, so the few byte compares are the whole cost.
[[nodiscard]] inline Category category_of(const char* name) noexcept {
  switch (name[0]) {
    case 'b':
      if (name[1] == 'd' && name[2] == 'm' && name[3] == '/') {
        return Category::kBdm;
      }
      break;
    case 'h':
      if (name[1] == 'i' && name[2] == 's' && name[3] == 't' &&
          name[4] == '/') {
        return Category::kHist;
      }
      break;
    case 'c':
      if (name[1] == 'c' && name[2] == '/') return Category::kCc;
      break;
    case 'i':
      if (name[1] == 'm' && name[2] == 'g' && name[3] == '/') {
        return Category::kImg;
      }
      break;
    case 's':
      if (name[1] == 'e' && name[2] == 'r' && name[3] == 'v' &&
          name[4] == 'e' && name[5] == '/') {
        return Category::kServe;
      }
      break;
    default: break;
  }
  return Category::kOther;
}

/// Deterministic per-category span sampling: record every Nth span of a
/// category (per thread), skip the rest.  1 records everything (the
/// default); 0 is treated as 1.  The first span of a category on each
/// thread is always recorded, then every Nth after it, so even N much
/// larger than the call count leaves one representative span.
struct SamplingPolicy {
  std::array<std::uint32_t, kNumCategories> every{1, 1, 1, 1, 1, 1};

  [[nodiscard]] std::uint32_t of(Category cat) const noexcept {
    return every[static_cast<std::size_t>(cat)];
  }
  void set(Category cat, std::uint32_t n) noexcept {
    every[static_cast<std::size_t>(cat)] = n == 0 ? 1 : n;
  }

  /// Sample the kernel categories (bdm/hist/cc/img) at N, keeping serve
  /// job spans and uncategorised spans exact — the always-on production
  /// preset: per-job observability stays complete while the per-primitive
  /// firehose is decimated.
  [[nodiscard]] static SamplingPolicy kernels(std::uint32_t n) noexcept {
    SamplingPolicy policy;
    policy.set(Category::kBdm, n);
    policy.set(Category::kHist, n);
    policy.set(Category::kCc, n);
    policy.set(Category::kImg, n);
    return policy;
  }

  /// Every category at N, including serve.
  [[nodiscard]] static SamplingPolicy all(std::uint32_t n) noexcept {
    SamplingPolicy policy;
    for (std::size_t c = 0; c < kNumCategories; ++c) {
      policy.set(static_cast<Category>(c), n);
    }
    return policy;
  }

  [[nodiscard]] bool operator==(const SamplingPolicy& other) const noexcept {
    return every == other.every;
  }
};

/// Span/counter collector.  One tracer can serve any number of machines
/// and threads; see the thread-safety contract in the file comment.
class Tracer {
 public:
  Tracer();
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Master switch, read with a relaxed load on every instrumentation
  /// site.  A disabled tracer records nothing but stays attached.
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Install a sampling policy (all categories exact by default).  Safe
  /// to call while spans are being recorded (the per-category rates are
  /// relaxed atomics), but for a deterministic sampled inventory set the
  /// policy while no traced program is mid-run.
  void set_sampling(const SamplingPolicy& policy) noexcept {
    for (std::size_t c = 0; c < kNumCategories; ++c) {
      sampling_[c].store(policy.every[c] == 0 ? 1 : policy.every[c],
                         std::memory_order_relaxed);
    }
  }
  [[nodiscard]] SamplingPolicy sampling() const noexcept {
    SamplingPolicy policy;
    for (std::size_t c = 0; c < kNumCategories; ++c) {
      policy.every[c] = sampling_[c].load(std::memory_order_relaxed);
    }
    return policy;
  }
  [[nodiscard]] std::uint32_t sample_every(Category cat) const noexcept {
    return sampling_[static_cast<std::size_t>(cat)].load(
        std::memory_order_relaxed);
  }

  /// Sampling gate for a span about to open: true when the span must be
  /// recorded.  At rate 1 (the default) this is one relaxed load; at
  /// rate N it additionally bumps the calling thread's category counter
  /// and admits every Nth call — the whole cost of a skipped span.
  [[nodiscard]] bool should_record(const char* name) noexcept {
    const Category cat = category_of(name);
    const std::uint32_t every =
        sampling_[static_cast<std::size_t>(cat)].load(
            std::memory_order_relaxed);
    if (every <= 1) return true;
    return admit_sampled(cat, every);
  }

  /// Nanoseconds since this tracer was constructed.
  [[nodiscard]] std::int64_t now_ns() const noexcept {
    return to_ns(Clock::now());
  }
  /// Convert a caller-held steady timestamp to tracer time (the serve
  /// layer timestamps jobs itself and records spans after the fact).
  [[nodiscard]] std::int64_t to_ns(Clock::time_point t) const noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(t - origin_)
        .count();
  }

  /// Append one record to the calling thread's buffer.  Lock-free after
  /// the thread's first record (registration takes the registry mutex
  /// once).  Ignores the enabled() switch — callers check it first so
  /// the disabled path pays nothing.
  void record_span(const Span& span);
  void record_counter(const CounterSample& sample);

  /// Snapshot across all thread buffers, ordered by start time.  Only
  /// valid while no traced program is mid-run.
  [[nodiscard]] std::vector<Span> spans() const;
  [[nodiscard]] std::vector<CounterSample> counters() const;

  /// Per-category spans *seen* (recorded + skipped) while that category
  /// was sampled, summed over threads.  Together with the recorded span
  /// counts this gives the measured sampling ratio, which rescales a
  /// sampled trace exactly: seen / recorded is the true decimation
  /// factor of what actually ran, where the nominal policy rate N is
  /// only an upper bound (the first span per thread is always admitted,
  /// so short streams record proportionally more).  Categories at rate 1
  /// never bump these counters — their spans are already exact.  Same
  /// quiescence requirement as spans().
  [[nodiscard]] std::array<std::uint64_t, kNumCategories> sampled_seen()
      const;

  /// Drop all recorded data and reset the per-thread sampling counters
  /// (buffers stay registered).  Same quiescence requirement as spans().
  void clear();

  /// Registered per-thread buffers — one per thread that ever recorded
  /// through this tracer, never more (a thread switching between live
  /// tracers reuses its buffer on return).  Observability hook for the
  /// buffer-reuse tests; same quiescence requirement as spans().
  [[nodiscard]] std::size_t buffer_count() const;

 private:
  struct Buffer {
    std::thread::id owner;  ///< registering thread, for TLS-miss re-lookup
    /// Per-category spans seen (recorded + skipped) by the owner thread —
    /// the sampling counters.  Only the owner touches them.
    std::array<std::uint64_t, kNumCategories> seen{};
    std::vector<Span> spans;
    std::vector<CounterSample> counters;
  };

  /// The calling thread's buffer, registering it on first use.
  Buffer& local_buffer();

  /// Slow path of should_record(): bump the thread's category counter
  /// and admit every `every`th call (the first call always records).
  [[nodiscard]] bool admit_sampled(Category cat, std::uint32_t every);

  Clock::time_point origin_;
  std::atomic<bool> enabled_{true};
  std::array<std::atomic<std::uint32_t>, kNumCategories> sampling_{
      1u, 1u, 1u, 1u, 1u, 1u};
  const std::uint64_t id_;  ///< process-unique, guards stale TLS caches
  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

/// Parsed form of a `HISTCC_TRACE` value.  Grammar (case-insensitive,
/// surrounding whitespace ignored):
///
///   HISTCC_TRACE=0 | off | false | ""        tracing disabled
///   HISTCC_TRACE=OUT.json[:cat=N,...]        Chrome/Perfetto JSON to OUT
///   HISTCC_TRACE=report[:cat=N,...]          phase report to stderr
///   HISTCC_TRACE=ANY[:cat=N,...]             any other word: stderr report
///
/// `cat` is a category name (bdm, hist, cc, img, serve, other) or the
/// presets `kernels` (bdm+hist+cc+img) and `all`; `N` is the sampling
/// rate (record every Nth span of that category per thread).  Pairs are
/// separated by ',' or ':'.  Example: `HISTCC_TRACE=trace.json:bdm=16`.
struct EnvSpec {
  bool enabled = false;
  std::string json_path;  ///< empty = phase report to stderr at exit
  SamplingPolicy sampling;
  std::string error;  ///< non-empty: diagnostic for a malformed suffix
};

/// Parse a HISTCC_TRACE value.  Never throws; a malformed `cat=N` pair
/// sets `error` (and is otherwise ignored) so a typo degrades to exact
/// tracing with a warning instead of silently disabling the trace.
[[nodiscard]] EnvSpec parse_trace_env(std::string_view value);

/// The process-wide tracer requested by the `HISTCC_TRACE` environment
/// variable, or nullptr when the variable is unset/empty/"0"/"off"/
/// "false" (case- and whitespace-insensitive).  Any other value enables
/// tracing; a value whose destination ends in ".json" (any case) writes
/// a Chrome/Perfetto trace there at process exit, anything else writes
/// the plain-text phase report to stderr at exit.  A `:cat=N` suffix
/// installs a SamplingPolicy (see parse_trace_env).  The tracer lives
/// for the whole process (intentionally leaked: worker threads may still
/// hold buffer references during static destruction).
[[nodiscard]] Tracer* env_tracer();

/// RAII span recorder.  Constructed against a `Proc` it tags the span
/// with the rank's track, barrier epochs, and CommStats deltas; against
/// a `Machine` or bare `Tracer*` it records a host-track span.
class Scope {
 public:
  Scope(splitc::Proc& self, const char* name, std::uint64_t arg = 0) noexcept
      : Scope(self.tracer(), name, arg) {
    if (tracer_ == nullptr) return;
    proc_ = &self;
    span_.tid = rank_tid(self.rank());
    span_.begin_epoch = self.epoch();
    const splitc::CommStats& s = self.stats();
    base_words_ = s.words;
    base_messages_ = s.messages;
    base_batches_ = s.batches;
    base_barriers_ = s.barriers;
  }

  Scope(splitc::Machine& machine, const char* name,
        std::uint64_t arg = 0) noexcept
      : Scope(machine.tracer(), name, arg) {
    if (tracer_ == nullptr) return;
    machine_ = &machine;
    span_.begin_epoch = machine.running() ? machine.current_epoch() : 0;
  }

  Scope(Tracer* tracer, const char* name, std::uint64_t arg = 0) noexcept {
    if (tracer == nullptr || !tracer->enabled() ||
        !tracer->should_record(name)) {
      return;  // skipped spans never read the clock or CommStats
    }
    tracer_ = tracer;
    span_.name = name;
    span_.arg = arg;
    span_.t0_ns = tracer->now_ns();
  }

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  ~Scope() {
    if (tracer_ == nullptr) return;
    span_.t1_ns = tracer_->now_ns();
    if (proc_ != nullptr) {
      span_.end_epoch = proc_->epoch();
      const splitc::CommStats& s = proc_->stats();
      span_.words = s.words - base_words_;
      span_.messages = s.messages - base_messages_;
      span_.batches = s.batches - base_batches_;
      span_.barriers = s.barriers - base_barriers_;
    } else if (machine_ != nullptr) {
      span_.end_epoch =
          machine_->running() ? machine_->current_epoch() : span_.begin_epoch;
    }
    tracer_->record_span(span_);
  }

  /// True when this scope is actually recording.
  [[nodiscard]] bool active() const noexcept { return tracer_ != nullptr; }

 private:
  Tracer* tracer_ = nullptr;
  const splitc::Proc* proc_ = nullptr;
  const splitc::Machine* machine_ = nullptr;
  std::uint64_t base_words_ = 0;
  std::uint64_t base_messages_ = 0;
  std::uint64_t base_batches_ = 0;
  std::uint64_t base_barriers_ = 0;
  Span span_;
};

namespace detail {

[[nodiscard]] inline Tracer* tracer_of(splitc::Proc& self) noexcept {
  return self.tracer();
}
[[nodiscard]] inline Tracer* tracer_of(splitc::Machine& machine) noexcept {
  return machine.tracer();
}
[[nodiscard]] inline Tracer* tracer_of(Tracer* tracer) noexcept {
  return tracer;
}
[[nodiscard]] inline std::uint32_t tid_of(splitc::Proc& self) noexcept {
  return rank_tid(self.rank());
}
[[nodiscard]] inline std::uint32_t tid_of(splitc::Machine&) noexcept {
  return kHostTid;
}
[[nodiscard]] inline std::uint32_t tid_of(Tracer*) noexcept {
  return kHostTid;
}

template <typename Owner>
inline void counter(Owner&& owner, const char* name, double value) noexcept {
  Tracer* tracer = tracer_of(owner);
  if (tracer == nullptr || !tracer->enabled()) return;
  tracer->record_counter(
      CounterSample{name, tid_of(owner), tracer->now_ns(), value});
}

}  // namespace detail
}  // namespace histcc::trace

#define HISTCC_TRACE_CAT2(a, b) a##b
#define HISTCC_TRACE_CAT(a, b) HISTCC_TRACE_CAT2(a, b)

/// Statement form: plants a span covering the rest of the enclosing
/// block.  `owner` is a Proc&, Machine&, or Tracer*; extra arguments are
/// forwarded to Scope (the optional correlation arg).
///   TRACE_SCOPE(self, "hist/tally");
#define TRACE_SCOPE(owner, ...)                                     \
  ::histcc::trace::Scope HISTCC_TRACE_CAT(histcc_trace_scope_,      \
                                          __LINE__)((owner), __VA_ARGS__)

/// Block form: the span covers exactly the attached compound statement.
///   TRACE_SPAN(self, "hist/transpose") { bdm::transpose(...); }
/// Spelled as an if-with-initializer, so an unbraced dangling `else`
/// after it would bind here — always brace the body.
#define TRACE_SPAN(owner, ...)                                   \
  if (::histcc::trace::Scope HISTCC_TRACE_CAT(histcc_trace_span_, \
                                              __LINE__){(owner), __VA_ARGS__}; \
      true)

/// Record one sample of a named counter on the owner's track.
///   TRACE_COUNTER(tracer, "serve/queue_depth", depth);
#define TRACE_COUNTER(owner, name, value) \
  ::histcc::trace::detail::counter((owner), (name), (value))

#endif  // HISTCC_TRACE_TRACE_HPP
