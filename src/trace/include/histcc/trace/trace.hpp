#ifndef HISTCC_TRACE_TRACE_HPP
#define HISTCC_TRACE_TRACE_HPP

/// \file trace.hpp
/// Barrier-epoch span tracing for the SPMD runtime.
///
/// The source paper is an experimental study: its figures are per-phase
/// breakdowns (histogram step timings, CC phase decomposition, transpose
/// communication volume).  This subsystem makes those breakdowns
/// observable on a live run instead of reconstructed from ad-hoc timers:
///
///  - `Tracer` collects `Span` records into lock-free per-thread buffers.
///    Each span carries wall-clock interval, the *barrier epoch* interval
///    (`Proc::epoch()` — the same counter the race ledger keys its
///    happens-before check on), and the CommStats delta accumulated while
///    the span was open, so bytes/messages per BDM primitive fall out of
///    the same ledger the cost model reads.
///  - `Scope` is the RAII recorder; the `TRACE_SCOPE(owner, "name")`
///    macro plants one in a block.  When no tracer is attached (the
///    default) the constructor is a pointer load and a branch; when a
///    tracer is attached but disabled it is additionally one relaxed
///    atomic load.  Kernels therefore stay instrumented in every build.
///  - Exporters (export.hpp) turn a tracer's buffers into a
///    Chrome/Perfetto `trace.json` or a plain-text per-phase breakdown.
///
/// Attachment points: `Machine::set_trace(&tracer)` for direct use,
/// `serve::PipelineOptions::trace` for the serving layer, and the
/// `HISTCC_TRACE` environment variable (see `env_tracer()`) for
/// harnesses that should not need a code change.
///
/// Epoch alignment: between two consecutive global barriers every rank is
/// in the same epoch, so spans from different ranks with overlapping
/// [begin_epoch, end_epoch] intervals describe the same algorithmic
/// phase even when the OS scheduler skews their wall-clock intervals.
///
/// Thread-safety contract: recording is safe from any number of threads
/// concurrently (each writes its own buffer).  Reading a snapshot
/// (`spans()`, `counters()`, `clear()`, the exporters) is safe only while
/// no traced program is mid-run — after `Machine::run` returns or the
/// serve pipeline is shut down; both joins/parks provide the needed
/// happens-before edge.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "histcc/splitc/machine.hpp"

namespace histcc::trace {

/// All trace timestamps come from one steady clock (never wall time:
/// spans must be immune to NTP steps, same as the bench timers).
using Clock = std::chrono::steady_clock;
static_assert(Clock::is_steady, "trace timestamps require a steady clock");

/// Track (Perfetto "tid") conventions: the host/control thread is track
/// 0, virtual processor r is track r + 1.
inline constexpr std::uint32_t kHostTid = 0;
[[nodiscard]] constexpr std::uint32_t rank_tid(std::uint32_t rank) noexcept {
  return rank + 1;
}
/// Serving-layer pool workers get their own tracks, numbered from a base
/// comfortably above any plausible virtual-processor count.
inline constexpr std::uint32_t kServeTidBase = 1000;
[[nodiscard]] constexpr std::uint32_t serve_tid(std::uint32_t worker) noexcept {
  return kServeTidBase + worker;
}

/// One closed instrumentation interval.  `name` must point to storage
/// that outlives the tracer (the macros pass string literals).
struct Span {
  const char* name = "";
  std::uint32_t tid = kHostTid;
  /// Barrier epoch at open/close; 0 on host-side spans recorded while no
  /// SPMD program is running.
  std::uint64_t begin_epoch = 0;
  std::uint64_t end_epoch = 0;
  /// Nanoseconds since the tracer's origin (Tracer::now_ns()).
  std::int64_t t0_ns = 0;
  std::int64_t t1_ns = 0;
  /// CommStats delta of the owning rank while the span was open.
  std::uint64_t words = 0;
  std::uint64_t messages = 0;
  std::uint64_t batches = 0;
  std::uint64_t barriers = 0;
  /// Free-form correlation id (the serve layer records the job id here).
  std::uint64_t arg = 0;
};

/// One sample of a named counter (exported as a Perfetto "C" event);
/// the serve layer bridges PoolMetrics gauges through these.
struct CounterSample {
  const char* name = "";
  std::uint32_t tid = kHostTid;
  std::int64_t t_ns = 0;
  double value = 0.0;
};

/// Span/counter collector.  One tracer can serve any number of machines
/// and threads; see the thread-safety contract in the file comment.
class Tracer {
 public:
  Tracer();
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Master switch, read with a relaxed load on every instrumentation
  /// site.  A disabled tracer records nothing but stays attached.
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since this tracer was constructed.
  [[nodiscard]] std::int64_t now_ns() const noexcept {
    return to_ns(Clock::now());
  }
  /// Convert a caller-held steady timestamp to tracer time (the serve
  /// layer timestamps jobs itself and records spans after the fact).
  [[nodiscard]] std::int64_t to_ns(Clock::time_point t) const noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(t - origin_)
        .count();
  }

  /// Append one record to the calling thread's buffer.  Lock-free after
  /// the thread's first record (registration takes the registry mutex
  /// once).  Ignores the enabled() switch — callers check it first so
  /// the disabled path pays nothing.
  void record_span(const Span& span);
  void record_counter(const CounterSample& sample);

  /// Snapshot across all thread buffers, ordered by start time.  Only
  /// valid while no traced program is mid-run.
  [[nodiscard]] std::vector<Span> spans() const;
  [[nodiscard]] std::vector<CounterSample> counters() const;

  /// Drop all recorded data (buffers stay registered).  Same quiescence
  /// requirement as spans().
  void clear();

 private:
  struct Buffer {
    std::vector<Span> spans;
    std::vector<CounterSample> counters;
  };

  /// The calling thread's buffer, registering it on first use.
  Buffer& local_buffer();

  Clock::time_point origin_;
  std::atomic<bool> enabled_{true};
  const std::uint64_t id_;  ///< process-unique, guards stale TLS caches
  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

/// The process-wide tracer requested by the `HISTCC_TRACE` environment
/// variable, or nullptr when the variable is unset/"0"/"off".  Any other
/// value enables tracing; a value ending in ".json" additionally writes
/// a Chrome/Perfetto trace there at process exit, anything else writes
/// the plain-text phase report to stderr at exit.  The tracer lives for
/// the whole process (intentionally leaked: worker threads may still
/// hold buffer references during static destruction).
[[nodiscard]] Tracer* env_tracer();

/// RAII span recorder.  Constructed against a `Proc` it tags the span
/// with the rank's track, barrier epochs, and CommStats deltas; against
/// a `Machine` or bare `Tracer*` it records a host-track span.
class Scope {
 public:
  Scope(splitc::Proc& self, const char* name, std::uint64_t arg = 0) noexcept
      : Scope(self.tracer(), name, arg) {
    if (tracer_ == nullptr) return;
    proc_ = &self;
    span_.tid = rank_tid(self.rank());
    span_.begin_epoch = self.epoch();
    const splitc::CommStats& s = self.stats();
    base_words_ = s.words;
    base_messages_ = s.messages;
    base_batches_ = s.batches;
    base_barriers_ = s.barriers;
  }

  Scope(splitc::Machine& machine, const char* name,
        std::uint64_t arg = 0) noexcept
      : Scope(machine.tracer(), name, arg) {
    if (tracer_ == nullptr) return;
    machine_ = &machine;
    span_.begin_epoch = machine.running() ? machine.current_epoch() : 0;
  }

  Scope(Tracer* tracer, const char* name, std::uint64_t arg = 0) noexcept {
    if (tracer == nullptr || !tracer->enabled()) return;
    tracer_ = tracer;
    span_.name = name;
    span_.arg = arg;
    span_.t0_ns = tracer->now_ns();
  }

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  ~Scope() {
    if (tracer_ == nullptr) return;
    span_.t1_ns = tracer_->now_ns();
    if (proc_ != nullptr) {
      span_.end_epoch = proc_->epoch();
      const splitc::CommStats& s = proc_->stats();
      span_.words = s.words - base_words_;
      span_.messages = s.messages - base_messages_;
      span_.batches = s.batches - base_batches_;
      span_.barriers = s.barriers - base_barriers_;
    } else if (machine_ != nullptr) {
      span_.end_epoch =
          machine_->running() ? machine_->current_epoch() : span_.begin_epoch;
    }
    tracer_->record_span(span_);
  }

  /// True when this scope is actually recording.
  [[nodiscard]] bool active() const noexcept { return tracer_ != nullptr; }

 private:
  Tracer* tracer_ = nullptr;
  const splitc::Proc* proc_ = nullptr;
  const splitc::Machine* machine_ = nullptr;
  std::uint64_t base_words_ = 0;
  std::uint64_t base_messages_ = 0;
  std::uint64_t base_batches_ = 0;
  std::uint64_t base_barriers_ = 0;
  Span span_;
};

namespace detail {

[[nodiscard]] inline Tracer* tracer_of(splitc::Proc& self) noexcept {
  return self.tracer();
}
[[nodiscard]] inline Tracer* tracer_of(splitc::Machine& machine) noexcept {
  return machine.tracer();
}
[[nodiscard]] inline Tracer* tracer_of(Tracer* tracer) noexcept {
  return tracer;
}
[[nodiscard]] inline std::uint32_t tid_of(splitc::Proc& self) noexcept {
  return rank_tid(self.rank());
}
[[nodiscard]] inline std::uint32_t tid_of(splitc::Machine&) noexcept {
  return kHostTid;
}
[[nodiscard]] inline std::uint32_t tid_of(Tracer*) noexcept {
  return kHostTid;
}

template <typename Owner>
inline void counter(Owner&& owner, const char* name, double value) noexcept {
  Tracer* tracer = tracer_of(owner);
  if (tracer == nullptr || !tracer->enabled()) return;
  tracer->record_counter(
      CounterSample{name, tid_of(owner), tracer->now_ns(), value});
}

}  // namespace detail
}  // namespace histcc::trace

#define HISTCC_TRACE_CAT2(a, b) a##b
#define HISTCC_TRACE_CAT(a, b) HISTCC_TRACE_CAT2(a, b)

/// Statement form: plants a span covering the rest of the enclosing
/// block.  `owner` is a Proc&, Machine&, or Tracer*; extra arguments are
/// forwarded to Scope (the optional correlation arg).
///   TRACE_SCOPE(self, "hist/tally");
#define TRACE_SCOPE(owner, ...)                                     \
  ::histcc::trace::Scope HISTCC_TRACE_CAT(histcc_trace_scope_,      \
                                          __LINE__)((owner), __VA_ARGS__)

/// Block form: the span covers exactly the attached compound statement.
///   TRACE_SPAN(self, "hist/transpose") { bdm::transpose(...); }
/// Spelled as an if-with-initializer, so an unbraced dangling `else`
/// after it would bind here — always brace the body.
#define TRACE_SPAN(owner, ...)                                   \
  if (::histcc::trace::Scope HISTCC_TRACE_CAT(histcc_trace_span_, \
                                              __LINE__){(owner), __VA_ARGS__}; \
      true)

/// Record one sample of a named counter on the owner's track.
///   TRACE_COUNTER(tracer, "serve/queue_depth", depth);
#define TRACE_COUNTER(owner, name, value) \
  ::histcc::trace::detail::counter((owner), (name), (value))

#endif  // HISTCC_TRACE_TRACE_HPP
