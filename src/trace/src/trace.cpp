#include "histcc/trace/trace.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>

#include "histcc/trace/export.hpp"

namespace histcc::trace {

namespace {

/// Process-unique tracer ids.  The per-thread buffer cache keys on the
/// id, not the address, so a new tracer reusing a destroyed tracer's
/// address can never satisfy a stale cache entry.
std::atomic<std::uint64_t> g_next_tracer_id{1};

/// Per-thread cache of (tracer id -> buffer).  A small direct-mapped
/// table instead of the old single entry: a pool worker alternating
/// between two live tracers (a per-job test tracer and the env tracer)
/// must hit its existing buffers, not register a fresh one per switch.
/// Eviction is harmless — the slow path re-finds the thread's buffer in
/// the tracer's registry by owning thread id, so a tracer holds at most
/// one buffer per thread no matter how the cache churns.
struct TlsBufferRef {
  std::uint64_t tracer_id = 0;
  void* buffer = nullptr;
};
struct TlsBufferCache {
  static constexpr std::size_t kEntries = 8;
  std::array<TlsBufferRef, kEntries> entries{};
  std::size_t next_victim = 0;
};
thread_local TlsBufferCache t_buffer_cache;

}  // namespace

const char* category_name(Category cat) noexcept {
  switch (cat) {
    case Category::kBdm: return "bdm";
    case Category::kHist: return "hist";
    case Category::kCc: return "cc";
    case Category::kImg: return "img";
    case Category::kServe: return "serve";
    case Category::kOther: return "other";
  }
  return "other";
}

Tracer::Tracer()
    : origin_(Clock::now()),
      id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {}

Tracer::~Tracer() = default;

Tracer::Buffer& Tracer::local_buffer() {
  for (const TlsBufferRef& ref : t_buffer_cache.entries) {
    if (ref.tracer_id == id_) return *static_cast<Buffer*>(ref.buffer);
  }
  std::scoped_lock lock(registry_mutex_);
  const std::thread::id me = std::this_thread::get_id();
  Buffer* buffer = nullptr;
  for (const auto& registered : buffers_) {
    if (registered->owner == me) {
      buffer = registered.get();
      break;
    }
  }
  if (buffer == nullptr) {
    buffers_.push_back(std::make_unique<Buffer>());
    buffer = buffers_.back().get();
    buffer->owner = me;
  }
  TlsBufferRef& slot =
      t_buffer_cache.entries[t_buffer_cache.next_victim++ %
                             TlsBufferCache::kEntries];
  slot = TlsBufferRef{id_, buffer};
  return *buffer;
}

bool Tracer::admit_sampled(Category cat, std::uint32_t every) {
  Buffer& buffer = local_buffer();
  return buffer.seen[static_cast<std::size_t>(cat)]++ % every == 0;
}

void Tracer::record_span(const Span& span) {
  local_buffer().spans.push_back(span);
}

void Tracer::record_counter(const CounterSample& sample) {
  local_buffer().counters.push_back(sample);
}

std::vector<Span> Tracer::spans() const {
  std::vector<Span> all;
  {
    std::scoped_lock lock(registry_mutex_);
    for (const auto& buffer : buffers_) {
      all.insert(all.end(), buffer->spans.begin(), buffer->spans.end());
    }
  }
  std::sort(all.begin(), all.end(), [](const Span& a, const Span& b) {
    if (a.t0_ns != b.t0_ns) return a.t0_ns < b.t0_ns;
    return a.tid < b.tid;
  });
  return all;
}

std::vector<CounterSample> Tracer::counters() const {
  std::vector<CounterSample> all;
  {
    std::scoped_lock lock(registry_mutex_);
    for (const auto& buffer : buffers_) {
      all.insert(all.end(), buffer->counters.begin(), buffer->counters.end());
    }
  }
  std::sort(all.begin(), all.end(),
            [](const CounterSample& a, const CounterSample& b) {
              return a.t_ns < b.t_ns;
            });
  return all;
}

void Tracer::clear() {
  std::scoped_lock lock(registry_mutex_);
  for (auto& buffer : buffers_) {
    buffer->spans.clear();
    buffer->counters.clear();
    buffer->seen.fill(0);  // restart the deterministic sampling sequence
  }
}

std::size_t Tracer::buffer_count() const {
  std::scoped_lock lock(registry_mutex_);
  return buffers_.size();
}

std::array<std::uint64_t, kNumCategories> Tracer::sampled_seen() const {
  std::array<std::uint64_t, kNumCategories> totals{};
  std::scoped_lock lock(registry_mutex_);
  for (const auto& buffer : buffers_) {
    for (std::size_t c = 0; c < kNumCategories; ++c) {
      totals[c] += buffer->seen[c];
    }
  }
  return totals;
}

namespace {

[[nodiscard]] std::string_view trim(std::string_view s) {
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  return s;
}

[[nodiscard]] std::string lowered(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

[[nodiscard]] bool iends_with(std::string_view s, std::string_view suffix) {
  if (s.size() < suffix.size()) return false;
  const std::string_view tail = s.substr(s.size() - suffix.size());
  for (std::size_t i = 0; i < suffix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(tail[i])) !=
        std::tolower(static_cast<unsigned char>(suffix[i]))) {
      return false;
    }
  }
  return true;
}

/// Apply one `cat=N` pair to `spec`; false (with spec.error set) on a
/// malformed pair.
bool apply_sampling_pair(std::string_view pair, EnvSpec& spec) {
  const auto eq = pair.find('=');
  if (eq == std::string_view::npos) {
    spec.error = "expected cat=N, got \"" + std::string(pair) + "\"";
    return false;
  }
  const std::string cat = lowered(trim(pair.substr(0, eq)));
  const std::string_view value = trim(pair.substr(eq + 1));
  char* end = nullptr;
  const std::string value_str(value);
  const unsigned long n = std::strtoul(value_str.c_str(), &end, 10);
  if (value_str.empty() || end != value_str.c_str() + value_str.size() ||
      n == 0 || n > 0xFFFFFFFFul) {
    spec.error = "bad sampling rate in \"" + std::string(pair) + "\"";
    return false;
  }
  const auto every = static_cast<std::uint32_t>(n);
  if (cat == "kernels") {
    spec.sampling.set(Category::kBdm, every);
    spec.sampling.set(Category::kHist, every);
    spec.sampling.set(Category::kCc, every);
    spec.sampling.set(Category::kImg, every);
    return true;
  }
  if (cat == "all") {
    spec.sampling = SamplingPolicy::all(every);
    return true;
  }
  for (std::size_t c = 0; c < kNumCategories; ++c) {
    if (cat == category_name(static_cast<Category>(c))) {
      spec.sampling.set(static_cast<Category>(c), every);
      return true;
    }
  }
  spec.error = "unknown trace category \"" + cat + "\"";
  return false;
}

}  // namespace

EnvSpec parse_trace_env(std::string_view value) {
  EnvSpec spec;
  const std::string_view trimmed = trim(value);
  if (trimmed.empty()) return spec;
  {
    const std::string off = lowered(trimmed);
    if (off == "0" || off == "off" || off == "false") return spec;
  }
  spec.enabled = true;

  // First ':'-delimited token is the destination; the rest are cat=N
  // pairs (',' and ':' both separate pairs, so `out.json:bdm=16,hist=8`
  // and `out.json:bdm=16:hist=8` are equivalent).
  const auto colon = trimmed.find(':');
  const std::string_view destination = trim(trimmed.substr(0, colon));
  if (iends_with(destination, ".json")) {
    spec.json_path.assign(destination);
  }
  // A bare destination of "report" (or anything non-.json) keeps
  // json_path empty: phase report to stderr.

  std::string_view rest =
      colon == std::string_view::npos ? std::string_view{}
                                      : trimmed.substr(colon + 1);
  while (!rest.empty()) {
    const auto sep = rest.find_first_of(",:");
    const std::string_view pair = trim(rest.substr(0, sep));
    if (!pair.empty()) {
      apply_sampling_pair(pair, spec);  // keeps going: typo != trace off
    }
    if (sep == std::string_view::npos) break;
    rest.remove_prefix(sep + 1);
  }
  return spec;
}

namespace {

/// Flush destination parsed from HISTCC_TRACE; empty path means "text
/// report to stderr".
std::string g_env_trace_path;  // NOLINT(cert-err58-cpp): std::string{} is noexcept

void flush_env_tracer() {
  Tracer* tracer = env_tracer();
  if (tracer == nullptr) return;
  if (!g_env_trace_path.empty()) {
    if (!write_chrome_json(*tracer, g_env_trace_path)) {
      std::cerr << "histcc::trace: failed to write HISTCC_TRACE output to "
                << g_env_trace_path << "\n";
    }
    return;
  }
  write_phase_report(*tracer, splitc::host(), std::cerr);
}

}  // namespace

Tracer* env_tracer() {
  // Leaked on purpose: pool worker threads may outlive static destructors
  // and must never observe a destroyed tracer through Machine pointers.
  static Tracer* const tracer = []() -> Tracer* {
    const char* env = std::getenv("HISTCC_TRACE");
    if (env == nullptr) return nullptr;
    const EnvSpec spec = parse_trace_env(env);
    if (!spec.enabled) return nullptr;
    if (!spec.error.empty()) {
      std::cerr << "histcc::trace: HISTCC_TRACE: " << spec.error
                << " (pair ignored)\n";
    }
    g_env_trace_path = spec.json_path;
    auto* t = new Tracer();  // NOLINT(cppcoreguidelines-owning-memory)
    t->set_sampling(spec.sampling);
    std::atexit(flush_env_tracer);
    return t;
  }();
  return tracer;
}

}  // namespace histcc::trace
