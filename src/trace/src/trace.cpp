#include "histcc/trace/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>

#include "histcc/trace/export.hpp"

namespace histcc::trace {

namespace {

/// Process-unique tracer ids.  The per-thread buffer cache keys on the
/// id, not the address, so a new tracer reusing a destroyed tracer's
/// address can never satisfy a stale cache entry.
std::atomic<std::uint64_t> g_next_tracer_id{1};

struct TlsBufferRef {
  std::uint64_t tracer_id = 0;
  void* buffer = nullptr;
};
thread_local TlsBufferRef t_buffer_ref;

}  // namespace

Tracer::Tracer()
    : origin_(Clock::now()),
      id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {}

Tracer::~Tracer() = default;

Tracer::Buffer& Tracer::local_buffer() {
  if (t_buffer_ref.tracer_id == id_) {
    return *static_cast<Buffer*>(t_buffer_ref.buffer);
  }
  std::scoped_lock lock(registry_mutex_);
  buffers_.push_back(std::make_unique<Buffer>());
  Buffer& buffer = *buffers_.back();
  t_buffer_ref = TlsBufferRef{id_, &buffer};
  return buffer;
}

void Tracer::record_span(const Span& span) {
  local_buffer().spans.push_back(span);
}

void Tracer::record_counter(const CounterSample& sample) {
  local_buffer().counters.push_back(sample);
}

std::vector<Span> Tracer::spans() const {
  std::vector<Span> all;
  {
    std::scoped_lock lock(registry_mutex_);
    for (const auto& buffer : buffers_) {
      all.insert(all.end(), buffer->spans.begin(), buffer->spans.end());
    }
  }
  std::sort(all.begin(), all.end(), [](const Span& a, const Span& b) {
    if (a.t0_ns != b.t0_ns) return a.t0_ns < b.t0_ns;
    return a.tid < b.tid;
  });
  return all;
}

std::vector<CounterSample> Tracer::counters() const {
  std::vector<CounterSample> all;
  {
    std::scoped_lock lock(registry_mutex_);
    for (const auto& buffer : buffers_) {
      all.insert(all.end(), buffer->counters.begin(), buffer->counters.end());
    }
  }
  std::sort(all.begin(), all.end(),
            [](const CounterSample& a, const CounterSample& b) {
              return a.t_ns < b.t_ns;
            });
  return all;
}

void Tracer::clear() {
  std::scoped_lock lock(registry_mutex_);
  for (auto& buffer : buffers_) {
    buffer->spans.clear();
    buffer->counters.clear();
  }
}

namespace {

/// Flush destination parsed from HISTCC_TRACE; empty path means "text
/// report to stderr".
std::string g_env_trace_path;  // NOLINT(cert-err58-cpp): std::string{} is noexcept

void flush_env_tracer() {
  Tracer* tracer = env_tracer();
  if (tracer == nullptr) return;
  if (!g_env_trace_path.empty()) {
    if (!write_chrome_json(*tracer, g_env_trace_path)) {
      std::cerr << "histcc::trace: failed to write HISTCC_TRACE output to "
                << g_env_trace_path << "\n";
    }
    return;
  }
  write_phase_report(*tracer, splitc::host(), std::cerr);
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace

Tracer* env_tracer() {
  // Leaked on purpose: pool worker threads may outlive static destructors
  // and must never observe a destroyed tracer through Machine pointers.
  static Tracer* const tracer = []() -> Tracer* {
    const char* env = std::getenv("HISTCC_TRACE");
    if (env == nullptr) return nullptr;
    const std::string_view value(env);
    if (value.empty() || value == "0" || value == "off") return nullptr;
    if (ends_with(value, ".json")) g_env_trace_path.assign(value);
    auto* t = new Tracer();  // NOLINT(cppcoreguidelines-owning-memory)
    std::atexit(flush_env_tracer);
    return t;
  }();
  return tracer;
}

}  // namespace histcc::trace
