#include "histcc/trace/export.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace histcc::trace {

namespace {

/// JSON string escaping.  Span names are static literals under our
/// control, but the exporter must emit valid JSON for any input.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Microsecond timestamp with sub-microsecond precision (the trace-event
/// format's `ts`/`dur` unit).
double us(std::int64_t ns) { return static_cast<double>(ns) / 1000.0; }

std::string track_name(std::uint32_t tid) {
  if (tid == kHostTid) return "host";
  if (tid >= kServeTidBase) {
    return "serve worker " + std::to_string(tid - kServeTidBase);
  }
  return "rank " + std::to_string(tid - 1);
}

}  // namespace

void write_chrome_json(const Tracer& tracer, std::ostream& out) {
  const std::vector<Span> spans = tracer.spans();
  const std::vector<CounterSample> counters = tracer.counters();

  std::set<std::uint32_t> tids;
  for (const Span& s : spans) tids.insert(s.tid);
  for (const CounterSample& c : counters) tids.insert(c.tid);

  out << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };

  for (const std::uint32_t tid : tids) {
    sep();
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
        << json_escape(track_name(tid)) << "\"}}";
  }

  out << std::setprecision(15);
  for (const Span& s : spans) {
    sep();
    out << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << s.tid << ",\"name\":\""
        << json_escape(s.name) << "\",\"ts\":" << us(s.t0_ns)
        << ",\"dur\":" << us(std::max<std::int64_t>(s.t1_ns - s.t0_ns, 0))
        << ",\"args\":{\"begin_epoch\":" << s.begin_epoch
        << ",\"end_epoch\":" << s.end_epoch << ",\"words\":" << s.words
        << ",\"messages\":" << s.messages << ",\"batches\":" << s.batches
        << ",\"barriers\":" << s.barriers << ",\"arg\":" << s.arg << "}}";
  }

  for (const CounterSample& c : counters) {
    sep();
    out << "{\"ph\":\"C\",\"pid\":1,\"tid\":" << c.tid << ",\"name\":\""
        << json_escape(c.name) << "\",\"ts\":" << us(c.t_ns)
        << ",\"args\":{\"value\":" << c.value << "}}";
  }

  out << "],\n\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":"
         "\"histcc::trace\",\"schema\":2";
  // Sampled categories carry their rate so a consumer can rescale span
  // counts/volumes: only every Nth span per thread was recorded.
  const SamplingPolicy sampling = tracer.sampling();
  bool any_sampled = false;
  for (std::size_t c = 0; c < kNumCategories; ++c) {
    if (sampling.every[c] > 1) any_sampled = true;
  }
  if (any_sampled) {
    out << ",\"sampling\":{";
    bool first_cat = true;
    for (std::size_t c = 0; c < kNumCategories; ++c) {
      if (sampling.every[c] <= 1) continue;
      if (!first_cat) out << ",";
      first_cat = false;
      out << "\"" << category_name(static_cast<Category>(c))
          << "\":" << sampling.every[c];
    }
    out << "}";
  }
  out << "}}\n";
}

bool write_chrome_json(const Tracer& tracer, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_json(tracer, out);
  out.flush();
  return static_cast<bool>(out);
}

std::vector<PhaseRow> phase_breakdown(const Tracer& tracer,
                                      const splitc::MachineProfile& profile) {
  const std::vector<Span> spans = tracer.spans();

  struct TrackAccum {
    std::int64_t wall_ns = 0;
    std::uint64_t words = 0;
    std::uint64_t batches = 0;
    std::uint64_t barriers = 0;
  };
  struct PhaseAccum {
    std::size_t order = 0;  ///< first-appearance index (execution order)
    PhaseRow row;
    std::map<std::uint32_t, TrackAccum> tracks;
  };

  std::map<std::string, PhaseAccum> phases;
  std::size_t next_order = 0;
  for (const Span& s : spans) {
    auto [it, inserted] = phases.try_emplace(s.name);
    PhaseAccum& acc = it->second;
    if (inserted) {
      acc.order = next_order++;
      acc.row.name = s.name;
    }
    const std::int64_t dur = std::max<std::int64_t>(s.t1_ns - s.t0_ns, 0);
    acc.row.spans += 1;
    acc.row.total_wall_s += static_cast<double>(dur) * 1e-9;
    acc.row.words += s.words;
    acc.row.messages += s.messages;
    acc.row.barriers += s.barriers;
    TrackAccum& track = acc.tracks[s.tid];
    track.wall_ns += dur;
    track.words += s.words;
    track.batches += s.batches;
    track.barriers += s.barriers;
  }

  std::vector<PhaseRow> rows;
  rows.reserve(phases.size());
  std::vector<const PhaseAccum*> ordered;
  ordered.reserve(phases.size());
  for (const auto& [name, acc] : phases) ordered.push_back(&acc);
  std::sort(ordered.begin(), ordered.end(),
            [](const PhaseAccum* a, const PhaseAccum* b) {
              return a->order < b->order;
            });
  const SamplingPolicy sampling = tracer.sampling();
  // Measured decimation per category: seen / recorded.  Summing a
  // category's rescaled span counts then reproduces the unsampled count
  // exactly, which the nominal rate N cannot (first spans are always
  // admitted, so short streams record more than 1/N).
  const std::array<std::uint64_t, kNumCategories> seen =
      tracer.sampled_seen();
  std::array<std::uint64_t, kNumCategories> recorded{};
  for (const Span& s : spans) {
    recorded[static_cast<std::size_t>(category_of(s.name))] += 1;
  }
  for (const PhaseAccum* acc : ordered) {
    PhaseRow row = acc->row;
    const Category cat = category_of(row.name.c_str());
    row.sample_every = sampling.of(cat);
    const std::uint64_t cat_seen = seen[static_cast<std::size_t>(cat)];
    const std::uint64_t cat_recorded =
        recorded[static_cast<std::size_t>(cat)];
    if (row.sample_every > 1 && cat_seen > 0 && cat_recorded > 0) {
      row.effective_rate = static_cast<double>(cat_seen) /
                           static_cast<double>(cat_recorded);
    }
    for (const auto& [tid, track] : acc->tracks) {
      row.wall_s =
          std::max(row.wall_s, static_cast<double>(track.wall_ns) * 1e-9);
      row.modeled_comm_s = std::max(
          row.modeled_comm_s,
          profile.comm_seconds(track.batches + track.barriers, track.words));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void write_phase_report(const Tracer& tracer,
                        const splitc::MachineProfile& profile,
                        std::ostream& out) {
  const std::vector<PhaseRow> rows = phase_breakdown(tracer, profile);
  bool any_sampled = false;
  for (const PhaseRow& row : rows) {
    if (row.sample_every > 1) any_sampled = true;
  }
  out << "histcc::trace per-phase breakdown (profile: " << profile.name
      << ")\n";
  out << std::left << std::setw(28) << "phase" << std::right << std::setw(8)
      << "spans" << std::setw(12) << "wall ms" << std::setw(12) << "cpu ms"
      << std::setw(12) << "words" << std::setw(10) << "msgs" << std::setw(14)
      << "modeled ms";
  if (any_sampled) out << std::setw(8) << "rate";
  out << "\n";
  out << std::string(any_sampled ? 104 : 96, '-') << "\n";
  std::ostringstream body;
  body << std::fixed;
  for (const PhaseRow& row : rows) {
    // Sampled rows are rescaled by the *measured* decimation factor
    // (spans seen / spans recorded for the row's category): the recorded
    // aggregates are a 1-in-N sample of the phase, and raw sampled
    // numbers would silently under-report.  Category-wide rescaled span
    // totals are exact by construction; per-row numbers are estimates.
    const double n = row.effective_rate;
    const auto scale_count = [n](std::uint64_t count) {
      return static_cast<std::uint64_t>(
          static_cast<double>(count) * n + 0.5);
    };
    body << std::left << std::setw(28) << row.name << std::right
         << std::setw(8) << scale_count(row.spans) << std::setw(12)
         << std::setprecision(3) << row.wall_s * n * 1e3 << std::setw(12)
         << std::setprecision(3) << row.total_wall_s * n * 1e3
         << std::setw(12) << scale_count(row.words) << std::setw(10)
         << scale_count(row.messages) << std::setw(14)
         << std::setprecision(4) << row.modeled_comm_s * n * 1e3;
    if (any_sampled) {
      if (row.sample_every > 1) {
        body << std::setw(8) << ("x" + std::to_string(row.sample_every));
      } else {
        body << std::setw(8) << "";
      }
    }
    body << "\n";
  }
  out << body.str();
  if (any_sampled) {
    out << "(xN rows are sampled at nominal 1/N and rescaled by the "
           "measured rate: estimated per-phase totals, exact per-category "
           "span totals)\n";
  }
}

}  // namespace histcc::trace
