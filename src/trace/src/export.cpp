#include "histcc/trace/export.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace histcc::trace {

namespace {

/// JSON string escaping.  Span names are static literals under our
/// control, but the exporter must emit valid JSON for any input.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Microsecond timestamp with sub-microsecond precision (the trace-event
/// format's `ts`/`dur` unit).
double us(std::int64_t ns) { return static_cast<double>(ns) / 1000.0; }

std::string track_name(std::uint32_t tid) {
  if (tid == kHostTid) return "host";
  if (tid >= kServeTidBase) {
    return "serve worker " + std::to_string(tid - kServeTidBase);
  }
  return "rank " + std::to_string(tid - 1);
}

}  // namespace

void write_chrome_json(const Tracer& tracer, std::ostream& out) {
  const std::vector<Span> spans = tracer.spans();
  const std::vector<CounterSample> counters = tracer.counters();

  std::set<std::uint32_t> tids;
  for (const Span& s : spans) tids.insert(s.tid);
  for (const CounterSample& c : counters) tids.insert(c.tid);

  out << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };

  for (const std::uint32_t tid : tids) {
    sep();
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
        << json_escape(track_name(tid)) << "\"}}";
  }

  out << std::setprecision(15);
  for (const Span& s : spans) {
    sep();
    out << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << s.tid << ",\"name\":\""
        << json_escape(s.name) << "\",\"ts\":" << us(s.t0_ns)
        << ",\"dur\":" << us(std::max<std::int64_t>(s.t1_ns - s.t0_ns, 0))
        << ",\"args\":{\"begin_epoch\":" << s.begin_epoch
        << ",\"end_epoch\":" << s.end_epoch << ",\"words\":" << s.words
        << ",\"messages\":" << s.messages << ",\"batches\":" << s.batches
        << ",\"barriers\":" << s.barriers << ",\"arg\":" << s.arg << "}}";
  }

  for (const CounterSample& c : counters) {
    sep();
    out << "{\"ph\":\"C\",\"pid\":1,\"tid\":" << c.tid << ",\"name\":\""
        << json_escape(c.name) << "\",\"ts\":" << us(c.t_ns)
        << ",\"args\":{\"value\":" << c.value << "}}";
  }

  out << "],\n\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":"
         "\"histcc::trace\",\"schema\":1}}\n";
}

bool write_chrome_json(const Tracer& tracer, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_json(tracer, out);
  out.flush();
  return static_cast<bool>(out);
}

std::vector<PhaseRow> phase_breakdown(const Tracer& tracer,
                                      const splitc::MachineProfile& profile) {
  const std::vector<Span> spans = tracer.spans();

  struct TrackAccum {
    std::int64_t wall_ns = 0;
    std::uint64_t words = 0;
    std::uint64_t batches = 0;
    std::uint64_t barriers = 0;
  };
  struct PhaseAccum {
    std::size_t order = 0;  ///< first-appearance index (execution order)
    PhaseRow row;
    std::map<std::uint32_t, TrackAccum> tracks;
  };

  std::map<std::string, PhaseAccum> phases;
  std::size_t next_order = 0;
  for (const Span& s : spans) {
    auto [it, inserted] = phases.try_emplace(s.name);
    PhaseAccum& acc = it->second;
    if (inserted) {
      acc.order = next_order++;
      acc.row.name = s.name;
    }
    const std::int64_t dur = std::max<std::int64_t>(s.t1_ns - s.t0_ns, 0);
    acc.row.spans += 1;
    acc.row.total_wall_s += static_cast<double>(dur) * 1e-9;
    acc.row.words += s.words;
    acc.row.messages += s.messages;
    acc.row.barriers += s.barriers;
    TrackAccum& track = acc.tracks[s.tid];
    track.wall_ns += dur;
    track.words += s.words;
    track.batches += s.batches;
    track.barriers += s.barriers;
  }

  std::vector<PhaseRow> rows;
  rows.reserve(phases.size());
  std::vector<const PhaseAccum*> ordered;
  ordered.reserve(phases.size());
  for (const auto& [name, acc] : phases) ordered.push_back(&acc);
  std::sort(ordered.begin(), ordered.end(),
            [](const PhaseAccum* a, const PhaseAccum* b) {
              return a->order < b->order;
            });
  for (const PhaseAccum* acc : ordered) {
    PhaseRow row = acc->row;
    for (const auto& [tid, track] : acc->tracks) {
      row.wall_s =
          std::max(row.wall_s, static_cast<double>(track.wall_ns) * 1e-9);
      row.modeled_comm_s = std::max(
          row.modeled_comm_s,
          profile.comm_seconds(track.batches + track.barriers, track.words));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void write_phase_report(const Tracer& tracer,
                        const splitc::MachineProfile& profile,
                        std::ostream& out) {
  const std::vector<PhaseRow> rows = phase_breakdown(tracer, profile);
  out << "histcc::trace per-phase breakdown (profile: " << profile.name
      << ")\n";
  out << std::left << std::setw(28) << "phase" << std::right << std::setw(8)
      << "spans" << std::setw(12) << "wall ms" << std::setw(12) << "cpu ms"
      << std::setw(12) << "words" << std::setw(10) << "msgs" << std::setw(14)
      << "modeled ms" << "\n";
  out << std::string(96, '-') << "\n";
  std::ostringstream body;
  body << std::fixed;
  for (const PhaseRow& row : rows) {
    body << std::left << std::setw(28) << row.name << std::right
         << std::setw(8) << row.spans << std::setw(12) << std::setprecision(3)
         << row.wall_s * 1e3 << std::setw(12) << std::setprecision(3)
         << row.total_wall_s * 1e3 << std::setw(12) << row.words
         << std::setw(10) << row.messages << std::setw(14)
         << std::setprecision(4) << row.modeled_comm_s * 1e3 << "\n";
  }
  out << body.str();
}

}  // namespace histcc::trace
