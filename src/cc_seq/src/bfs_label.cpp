#include "histcc/cc_seq/bfs_label.hpp"

namespace histcc::ccseq {

img::LabelImage label_components_bfs(const img::GreyImage& image,
                                     Connectivity conn, ColourRule rule) {
  img::LabelImage labels(image.height(), image.width());
  if (image.empty()) return labels;
  BfsScratch scratch;
  const std::uint32_t width = image.width();
  label_tile(
      image.pixels(), labels.pixels(), image.height(), width, conn, rule,
      [width](std::uint32_t i, std::uint32_t j) { return i * width + j + 1; },
      scratch);
  return labels;
}

}  // namespace histcc::ccseq
