#include "histcc/cc_seq/analysis.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "histcc/cc_seq/bfs_label.hpp"
#include "histcc/util/require.hpp"

namespace histcc::ccseq {

std::size_t count_components(const img::LabelImage& labels) {
  std::unordered_set<std::uint32_t> seen;
  for (const auto label : labels.pixels()) {
    if (label != kBackgroundLabel) seen.insert(label);
  }
  return seen.size();
}

std::vector<ComponentSize> component_sizes(const img::LabelImage& labels) {
  std::unordered_map<std::uint32_t, std::uint64_t> counts;
  for (const auto label : labels.pixels()) {
    if (label != kBackgroundLabel) ++counts[label];
  }
  std::vector<ComponentSize> sizes;
  sizes.reserve(counts.size());
  for (const auto& [label, pixels] : counts) {
    sizes.push_back(ComponentSize{label, pixels});
  }
  std::sort(sizes.begin(), sizes.end(),
            [](const ComponentSize& a, const ComponentSize& b) {
              if (a.pixels != b.pixels) return a.pixels > b.pixels;
              return a.label < b.label;
            });
  return sizes;
}

bool partitions_equal(const img::LabelImage& a, const img::LabelImage& b) {
  if (a.height() != b.height() || a.width() != b.width()) return false;
  std::unordered_map<std::uint32_t, std::uint32_t> a_to_b;
  std::unordered_map<std::uint32_t, std::uint32_t> b_to_a;
  const auto pa = a.pixels();
  const auto pb = b.pixels();
  for (std::size_t idx = 0; idx < pa.size(); ++idx) {
    const std::uint32_t la = pa[idx];
    const std::uint32_t lb = pb[idx];
    if ((la == kBackgroundLabel) != (lb == kBackgroundLabel)) return false;
    if (la == kBackgroundLabel) continue;
    if (const auto [it, inserted] = a_to_b.try_emplace(la, lb);
        !inserted && it->second != lb) {
      return false;
    }
    if (const auto [it, inserted] = b_to_a.try_emplace(lb, la);
        !inserted && it->second != la) {
      return false;
    }
  }
  return true;
}

bool is_valid_labeling(const img::GreyImage& image,
                       const img::LabelImage& labels, Connectivity conn,
                       ColourRule rule) {
  if (image.height() != labels.height() || image.width() != labels.width()) {
    return false;
  }
  // Background must map to 0 and foreground must not.
  const auto px = image.pixels();
  const auto lb = labels.pixels();
  for (std::size_t idx = 0; idx < px.size(); ++idx) {
    if ((px[idx] == 0) != (lb[idx] == kBackgroundLabel)) return false;
  }
  // An independently computed reference partition must match.
  return partitions_equal(labels, label_components_bfs(image, conn, rule));
}

void ComponentStats::merge(const ComponentStats& o) noexcept {
  if (o.pixels == 0) return;
  if (pixels == 0) {
    *this = o;
    return;
  }
  pixels += o.pixels;
  min_row = std::min(min_row, o.min_row);
  min_col = std::min(min_col, o.min_col);
  max_row = std::max(max_row, o.max_row);
  max_col = std::max(max_col, o.max_col);
  sum_row += o.sum_row;
  sum_col += o.sum_col;
}

std::vector<ComponentStats> component_stats(const img::GreyImage& image,
                                            const img::LabelImage& labels) {
  HISTCC_REQUIRE(image.height() == labels.height() &&
                     image.width() == labels.width(),
                 "image/labels shape mismatch");
  std::unordered_map<std::uint32_t, ComponentStats> by_label;
  for (std::uint32_t i = 0; i < labels.height(); ++i) {
    for (std::uint32_t j = 0; j < labels.width(); ++j) {
      const std::uint32_t label = labels(i, j);
      if (label == kBackgroundLabel) continue;
      auto& s = by_label[label];
      if (s.pixels == 0) {
        s.label = label;
        s.colour = image(i, j);
        s.min_row = s.max_row = i;
        s.min_col = s.max_col = j;
      } else {
        s.min_row = std::min(s.min_row, i);
        s.min_col = std::min(s.min_col, j);
        s.max_row = std::max(s.max_row, i);
        s.max_col = std::max(s.max_col, j);
      }
      s.pixels += 1;
      s.sum_row += i;
      s.sum_col += j;
    }
  }
  std::vector<ComponentStats> stats;
  stats.reserve(by_label.size());
  for (const auto& [label, s] : by_label) stats.push_back(s);
  std::sort(stats.begin(), stats.end(),
            [](const ComponentStats& a, const ComponentStats& b) {
              return a.label < b.label;
            });
  return stats;
}

std::size_t relabel_consecutive(img::LabelImage& labels) {
  std::unordered_map<std::uint32_t, std::uint32_t> remap;
  std::uint32_t next = 1;
  for (auto& label : labels.pixels()) {
    if (label == kBackgroundLabel) continue;
    const auto [it, inserted] = remap.try_emplace(label, next);
    if (inserted) ++next;
    label = it->second;
  }
  return remap.size();
}

}  // namespace histcc::ccseq
