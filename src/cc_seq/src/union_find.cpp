#include "histcc/cc_seq/union_find.hpp"

namespace histcc::ccseq {

img::LabelImage label_components_unionfind(const img::GreyImage& image,
                                           Connectivity conn,
                                           ColourRule rule) {
  const std::uint32_t rows = image.height();
  const std::uint32_t cols = image.width();
  img::LabelImage labels(rows, cols);
  if (image.empty()) return labels;

  const auto pixels = image.pixels();
  DisjointSets sets(static_cast<std::size_t>(rows) * cols);
  const bool eight = conn == Connectivity::kEight;
  const bool same_colour = rule == ColourRule::kSameColour;

  // First pass: union each foreground pixel with its already-scanned
  // (west / north-west / north / north-east) like-coloured neighbours.
  for (std::uint32_t i = 0; i < rows; ++i) {
    for (std::uint32_t j = 0; j < cols; ++j) {
      const std::size_t idx = static_cast<std::size_t>(i) * cols + j;
      const std::uint8_t colour = pixels[idx];
      if (colour == 0) continue;
      auto try_union = [&](std::size_t nidx) {
        if (pixels[nidx] == 0) return;
        if (same_colour && pixels[nidx] != colour) return;
        sets.unite(static_cast<std::uint32_t>(idx),
                   static_cast<std::uint32_t>(nidx));
      };
      if (j > 0) try_union(idx - 1);                       // west
      if (i > 0) {
        try_union(idx - cols);                             // north
        if (eight) {
          if (j > 0) try_union(idx - cols - 1);            // north-west
          if (j + 1 < cols) try_union(idx - cols + 1);     // north-east
        }
      }
    }
  }

  // Second pass: the root of each set is its minimum pixel index (union by
  // index), so root + 1 is exactly the canonical label.
  auto out = labels.pixels();
  for (std::size_t idx = 0; idx < pixels.size(); ++idx) {
    out[idx] = pixels[idx] == 0
                   ? kBackgroundLabel
                   : sets.find(static_cast<std::uint32_t>(idx)) + 1;
  }
  return labels;
}

}  // namespace histcc::ccseq
