#include "histcc/cc_seq/hoshen_kopelman.hpp"

#include <vector>

namespace histcc::ccseq {
namespace {

/// Classic HK label-equivalence array: entry c holds either itself (a
/// proper cluster label) or the smaller cluster it was merged into.
class Equivalences {
 public:
  /// Register a brand-new cluster whose canonical id is `pixel_index`.
  std::uint32_t fresh(std::uint32_t pixel_index) {
    const auto cluster = static_cast<std::uint32_t>(proper_.size());
    proper_.push_back(pixel_index);
    parent_.push_back(cluster);
    return cluster;
  }

  /// Canonical cluster of c, with path compression.
  std::uint32_t find(std::uint32_t c) {
    std::uint32_t root = c;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[c] != root) {
      const std::uint32_t next = parent_[c];
      parent_[c] = root;
      c = next;
    }
    return root;
  }

  /// Merge two clusters; the one with the smaller canonical pixel index
  /// (= canonical label) survives.
  std::uint32_t unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return a;
    if (proper_[b] < proper_[a]) std::swap(a, b);
    parent_[b] = a;
    return a;
  }

  /// Minimum pixel index of cluster c's equivalence class.
  [[nodiscard]] std::uint32_t canonical_pixel(std::uint32_t c) {
    return proper_[find(c)];
  }

 private:
  std::vector<std::uint32_t> proper_;  ///< min pixel index per root
  std::vector<std::uint32_t> parent_;
};

}  // namespace

img::LabelImage label_components_hoshen_kopelman(const img::GreyImage& image,
                                                 Connectivity conn,
                                                 ColourRule rule) {
  const std::uint32_t rows = image.height();
  const std::uint32_t cols = image.width();
  img::LabelImage labels(rows, cols);
  if (image.empty()) return labels;

  const auto px = image.pixels();
  const bool eight = conn == Connectivity::kEight;
  const bool same_colour = rule == ColourRule::kSameColour;

  // cluster[idx] = equivalence-class id of pixel idx (temporary).
  constexpr std::uint32_t kNone = 0xFFFFFFFFu;
  std::vector<std::uint32_t> cluster(px.size(), kNone);
  Equivalences eq;

  for (std::uint32_t i = 0; i < rows; ++i) {
    for (std::uint32_t j = 0; j < cols; ++j) {
      const std::size_t idx = static_cast<std::size_t>(i) * cols + j;
      const std::uint8_t colour = px[idx];
      if (colour == 0) continue;

      std::uint32_t mine = kNone;
      auto absorb = [&](std::size_t nidx) {
        if (px[nidx] == 0) return;
        if (same_colour && px[nidx] != colour) return;
        const std::uint32_t theirs = cluster[nidx];
        mine = mine == kNone ? eq.find(theirs) : eq.unite(mine, theirs);
      };
      if (j > 0) absorb(idx - 1);              // west
      if (i > 0) {
        absorb(idx - cols);                    // north
        if (eight) {
          if (j > 0) absorb(idx - cols - 1);   // north-west
          if (j + 1 < cols) absorb(idx - cols + 1);  // north-east
        }
      }
      if (mine == kNone) {
        mine = eq.fresh(static_cast<std::uint32_t>(idx));
      }
      cluster[idx] = mine;
    }
  }

  // Second pass: resolve each pixel's class to its canonical label.
  auto out = labels.pixels();
  for (std::size_t idx = 0; idx < px.size(); ++idx) {
    out[idx] = px[idx] == 0 ? kBackgroundLabel
                            : eq.canonical_pixel(cluster[idx]) + 1;
  }
  return labels;
}

}  // namespace histcc::ccseq
