#ifndef HISTCC_CC_SEQ_COMMON_HPP
#define HISTCC_CC_SEQ_COMMON_HPP

/// \file common.hpp
/// Shared vocabulary of the connected-components labelers.
///
/// The paper uses both 4-connectivity (N/E/S/W neighbours) and
/// 8-connectivity (all surrounding positions), and two colour rules:
/// binary images (Section 5: every nonzero pixel is foreground and
/// mutually connectable) and grey-level images (Section 6: only
/// equal-nonzero-colour pixels connect).  All labelers in this library are
/// parameterized by both.
///
/// Canonical labeling: every foreground pixel receives
/// 1 + (row-major index of the smallest-indexed pixel of its component);
/// background pixels receive 0.  The paper's sequential BFS labeler
/// produces this by construction (the BFS seed is the first component
/// pixel in row-major scan order and labels are derived from pixel
/// position), and the parallel algorithm reproduces it exactly when merge
/// steps keep the minimum label of each merged component — which ours do.
/// Exact-equality testing of independent implementations falls out.

#include <cstdint>

namespace histcc::ccseq {

/// Neighbourhood definition.
enum class Connectivity : int {
  kFour = 4,   ///< north, east, south, west
  kEight = 8,  ///< the eight surrounding positions
};

/// Which pixels may join the same component.
enum class ColourRule : int {
  kBinary = 0,      ///< any two nonzero pixels may connect (Section 5)
  kSameColour = 1,  ///< only equal nonzero colours connect (Section 6)
};

/// Label assigned to background (grey level 0) pixels.
inline constexpr std::uint32_t kBackgroundLabel = 0;

}  // namespace histcc::ccseq

#endif  // HISTCC_CC_SEQ_COMMON_HPP
