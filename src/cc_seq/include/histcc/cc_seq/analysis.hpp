#ifndef HISTCC_CC_SEQ_ANALYSIS_HPP
#define HISTCC_CC_SEQ_ANALYSIS_HPP

/// \file analysis.hpp
/// Inspection helpers over labelings: component counting, size statistics,
/// labeling validity, and partition equivalence.  These serve the paper's
/// correctness arguments (Section 3: "Verifying the connected components
/// algorithm is more difficult") and the application examples.

#include <cstdint>
#include <vector>

#include "histcc/cc_seq/common.hpp"
#include "histcc/image/image.hpp"

namespace histcc::ccseq {

/// Number of distinct nonzero labels.
[[nodiscard]] std::size_t count_components(const img::LabelImage& labels);

/// (label, pixel count) for every component, sorted by descending size then
/// ascending label.
struct ComponentSize {
  std::uint32_t label;
  std::uint64_t pixels;
  friend bool operator==(const ComponentSize&, const ComponentSize&) = default;
};
[[nodiscard]] std::vector<ComponentSize> component_sizes(
    const img::LabelImage& labels);

/// True iff the two labelings induce the same partition of pixels: equal
/// zero sets and a label bijection between them.  Weaker than equality —
/// used to compare labelers that pick different representatives.
[[nodiscard]] bool partitions_equal(const img::LabelImage& a,
                                    const img::LabelImage& b);

/// True iff `labels` is a *valid* connected-components labeling of `image`
/// under the given connectivity and colour rule: zero exactly on
/// background, constant on each connected region, and distinct across
/// regions that are not connected.  Verified independently (by BFS over the
/// image), so it can vet any labeler.
[[nodiscard]] bool is_valid_labeling(const img::GreyImage& image,
                                     const img::LabelImage& labels,
                                     Connectivity conn, ColourRule rule);

/// Rewrite labels to consecutive 1..C in order of first appearance
/// (row-major); returns C.  Display/statistics helper.
std::size_t relabel_consecutive(img::LabelImage& labels);

/// Per-component object statistics — the measurements the DARPA Image
/// Understanding benchmark asks of each recognized piece (the paper cites
/// connected components as "an important object recognition problem" in
/// those benchmarks).
struct ComponentStats {
  std::uint32_t label = 0;
  std::uint8_t colour = 0;      ///< the component's grey level
  std::uint64_t pixels = 0;     ///< area
  std::uint32_t min_row = 0;    ///< bounding box
  std::uint32_t min_col = 0;
  std::uint32_t max_row = 0;    ///< inclusive
  std::uint32_t max_col = 0;
  double sum_row = 0;           ///< centroid accumulators
  double sum_col = 0;

  [[nodiscard]] double centroid_row() const noexcept {
    return pixels == 0 ? 0.0 : sum_row / static_cast<double>(pixels);
  }
  [[nodiscard]] double centroid_col() const noexcept {
    return pixels == 0 ? 0.0 : sum_col / static_cast<double>(pixels);
  }

  /// Fold another partial record for the same component into this one.
  void merge(const ComponentStats& o) noexcept;
};

/// Statistics of every component of a labeled image, sorted by label.
/// `image` supplies the colours; shapes must match.
[[nodiscard]] std::vector<ComponentStats> component_stats(
    const img::GreyImage& image, const img::LabelImage& labels);

}  // namespace histcc::ccseq

#endif  // HISTCC_CC_SEQ_ANALYSIS_HPP
