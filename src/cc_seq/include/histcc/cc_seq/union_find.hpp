#ifndef HISTCC_CC_SEQ_UNION_FIND_HPP
#define HISTCC_CC_SEQ_UNION_FIND_HPP

/// \file union_find.hpp
/// Classical two-pass union-find connected-components labeler.
///
/// This is the standard sequential algorithm (Rosenfeld-Pfaltz style first
/// pass + union-find equivalence resolution) included as an independent
/// baseline: it must produce exactly the same canonical labeling as the
/// paper's BFS labeler, which the test suite exploits, and it anchors the
/// sequential-time denominator in the efficiency numbers the benchmark
/// harness reports.

#include <cstdint>
#include <vector>

#include "histcc/cc_seq/common.hpp"
#include "histcc/image/image.hpp"

namespace histcc::ccseq {

/// Array-based disjoint-set forest with path halving and union by index
/// (smaller index wins), sized for one slot per pixel.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) {
      parent_[i] = static_cast<std::uint32_t>(i);
    }
  }

  /// Root of x's set, with path halving.
  [[nodiscard]] std::uint32_t find(std::uint32_t x) noexcept {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merge the sets of a and b; the smaller root index becomes the root,
  /// so the root of every set is its minimum member — this is what makes
  /// the final labeling canonical.
  void unite(std::uint32_t a, std::uint32_t b) noexcept {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a < b) {
      parent_[b] = a;
    } else {
      parent_[a] = b;
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return parent_.size(); }

 private:
  std::vector<std::uint32_t> parent_;
};

/// Label a whole image with the canonical labeling via two-pass union-find.
[[nodiscard]] img::LabelImage label_components_unionfind(
    const img::GreyImage& image, Connectivity conn = Connectivity::kEight,
    ColourRule rule = ColourRule::kBinary);

}  // namespace histcc::ccseq

#endif  // HISTCC_CC_SEQ_UNION_FIND_HPP
