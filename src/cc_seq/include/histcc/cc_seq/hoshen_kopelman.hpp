#ifndef HISTCC_CC_SEQ_HOSHEN_KOPELMAN_HPP
#define HISTCC_CC_SEQ_HOSHEN_KOPELMAN_HPP

/// \file hoshen_kopelman.hpp
/// The Hoshen-Kopelman cluster labeler (1976) — the sequential algorithm
/// the paper's computational-physics citations (percolation [41], cluster
/// Monte Carlo [2]-[4]) use for cluster identification.  A single raster
/// scan with run-based union-find: each foreground pixel links to its
/// already-scanned neighbours through a label-equivalence array rather
/// than a per-pixel forest, which makes it the fastest sequential
/// technique on dense lattices and the natural third cross-check for the
/// labelers in this library.
///
/// Output is the library-wide canonical labeling (common.hpp), so results
/// compare exactly against every other labeler.

#include "histcc/cc_seq/common.hpp"
#include "histcc/image/image.hpp"

namespace histcc::ccseq {

/// Label `image` with Hoshen-Kopelman.  Canonical labeling; 0 stays
/// background.
[[nodiscard]] img::LabelImage label_components_hoshen_kopelman(
    const img::GreyImage& image, Connectivity conn = Connectivity::kEight,
    ColourRule rule = ColourRule::kBinary);

}  // namespace histcc::ccseq

#endif  // HISTCC_CC_SEQ_HOSHEN_KOPELMAN_HPP
