#ifndef HISTCC_CC_SEQ_BFS_LABEL_HPP
#define HISTCC_CC_SEQ_BFS_LABEL_HPP

/// \file bfs_label.hpp
/// The paper's sequential connected-components labeler (Section 5.1).
///
/// Pixels are examined in row-major order; each unmarked foreground pixel
/// seeds a breadth-first search that labels every like-coloured connected
/// pixel with a label derived from the seed's position.  Because the seed
/// is the first component pixel in scan order, the resulting labeling is
/// the canonical one described in common.hpp.  Runs in O(|V| + |E|) =
/// O(rows * cols).
///
/// `label_tile` is the reusable core: it labels a rows x cols pixel block
/// and lets the caller choose the label each seed position produces — the
/// parallel algorithm passes the paper's globally unique tile label
/// (I*q + i)*n + (J*r + j) + 1, the whole-image wrapper passes
/// row*width + col + 1.

#include <cstdint>
#include <span>
#include <vector>

#include "histcc/cc_seq/common.hpp"
#include "histcc/image/image.hpp"
#include "histcc/util/require.hpp"

namespace histcc::ccseq {

/// Reusable BFS scratch (queue) so tile labeling does not allocate per call.
class BfsScratch {
 public:
  std::vector<std::uint32_t> queue;
};

/// Label the rows x cols block `pixels` (row-major) into `labels`
/// (pre-sized, will be overwritten; background pixels get 0).  The label of
/// each component is seed_label(i, j) evaluated at the component's first
/// pixel in row-major order.
template <typename LabelFn>
void label_tile(std::span<const std::uint8_t> pixels,
                std::span<std::uint32_t> labels, std::uint32_t rows,
                std::uint32_t cols, Connectivity conn, ColourRule rule,
                LabelFn&& seed_label, BfsScratch& scratch) {
  const std::size_t count = static_cast<std::size_t>(rows) * cols;
  HISTCC_REQUIRE(pixels.size() >= count && labels.size() >= count,
                 "tile spans too small");
  std::fill(labels.begin(), labels.begin() + static_cast<std::ptrdiff_t>(count),
            kBackgroundLabel);
  auto& queue = scratch.queue;
  queue.clear();

  const bool eight = conn == Connectivity::kEight;
  const bool same_colour = rule == ColourRule::kSameColour;

  for (std::uint32_t si = 0; si < rows; ++si) {
    for (std::uint32_t sj = 0; sj < cols; ++sj) {
      const std::size_t seed = static_cast<std::size_t>(si) * cols + sj;
      if (pixels[seed] == 0 || labels[seed] != kBackgroundLabel) continue;

      const std::uint32_t label = seed_label(si, sj);
      const std::uint8_t colour = pixels[seed];
      labels[seed] = label;
      queue.clear();
      queue.push_back(static_cast<std::uint32_t>(seed));
      for (std::size_t head = 0; head < queue.size(); ++head) {
        const std::uint32_t idx = queue[head];
        const std::uint32_t i = idx / cols;
        const std::uint32_t j = idx % cols;
        auto visit = [&](std::uint32_t ni, std::uint32_t nj) {
          const std::size_t nidx = static_cast<std::size_t>(ni) * cols + nj;
          if (pixels[nidx] == 0 || labels[nidx] != kBackgroundLabel) return;
          if (same_colour && pixels[nidx] != colour) return;
          labels[nidx] = label;
          queue.push_back(static_cast<std::uint32_t>(nidx));
        };
        const bool has_n = i > 0;
        const bool has_s = i + 1 < rows;
        const bool has_w = j > 0;
        const bool has_e = j + 1 < cols;
        if (has_n) visit(i - 1, j);
        if (has_s) visit(i + 1, j);
        if (has_w) visit(i, j - 1);
        if (has_e) visit(i, j + 1);
        if (eight) {
          if (has_n && has_w) visit(i - 1, j - 1);
          if (has_n && has_e) visit(i - 1, j + 1);
          if (has_s && has_w) visit(i + 1, j - 1);
          if (has_s && has_e) visit(i + 1, j + 1);
        }
      }
    }
  }
}

/// Label a whole image with the canonical labeling (common.hpp).
[[nodiscard]] img::LabelImage label_components_bfs(
    const img::GreyImage& image, Connectivity conn = Connectivity::kEight,
    ColourRule rule = ColourRule::kBinary);

}  // namespace histcc::ccseq

#endif  // HISTCC_CC_SEQ_BFS_LABEL_HPP
