#include "histcc/cc/merge_schedule.hpp"

namespace histcc::cc {

std::vector<MergePhase> merge_schedule(util::GridShape grid) {
  HISTCC_REQUIRE(util::is_pow2(grid.rows) && util::is_pow2(grid.cols),
                 "grid dimensions must be powers of two");
  HISTCC_REQUIRE(grid.cols == grid.rows || grid.cols == 2 * grid.rows,
                 "grid must be the paper's v x w shape (w = v or 2v)");
  const unsigned log_v = util::log2_exact(grid.rows);
  const unsigned log_w = util::log2_exact(grid.cols);
  const unsigned log_p = log_v + log_w;

  std::vector<MergePhase> schedule;
  schedule.reserve(log_p);
  for (std::uint32_t t = 1; t <= log_p; ++t) {
    MergePhase phase{};
    phase.t = t;
    phase.horizontal = (t % 2) == 1;
    if (phase.horizontal) {
      const std::uint32_t h = (t + 1) / 2;  // horizontal merge number
      phase.region_rows = std::uint32_t{1} << (h - 1);
      phase.region_cols = std::uint32_t{1} << (h - 1);
      phase.group_rows = phase.region_rows;
      phase.group_cols = phase.region_cols * 2;
    } else {
      const std::uint32_t u = t / 2;  // vertical merge number
      phase.region_rows = std::uint32_t{1} << (u - 1);
      phase.region_cols = std::uint32_t{1} << u;
      phase.group_rows = phase.region_rows * 2;
      phase.group_cols = phase.region_cols;
    }
    HISTCC_ASSERT(phase.group_rows <= grid.rows &&
                  phase.group_cols <= grid.cols);
    schedule.push_back(phase);
  }
  return schedule;
}

GroupInfo group_of(const MergePhase& phase, util::GridShape grid,
                   std::uint32_t grid_row, std::uint32_t grid_col) {
  HISTCC_REQUIRE(grid_row < grid.rows && grid_col < grid.cols,
                 "grid position out of range");
  GroupInfo group{};
  group.rows = phase.group_rows;
  group.cols = phase.group_cols;
  group.row0 = (grid_row / phase.group_rows) * phase.group_rows;
  group.col0 = (grid_col / phase.group_cols) * phase.group_cols;
  group.horizontal = phase.horizontal;

  const auto rank_at = [&](std::uint32_t i, std::uint32_t j) {
    return i * grid.cols + j;
  };
  if (phase.horizontal) {
    // Vertical border between the group's two side-by-side regions.
    group.border_lo = group.col0 + phase.region_cols - 1;
    group.side_procs = group.rows;
    group.manager = rank_at(group.row0, group.border_lo);
    group.shadow = rank_at(group.row0, group.border_lo + 1);
  } else {
    // Horizontal border between the group's two stacked regions.
    group.border_lo = group.row0 + phase.region_rows - 1;
    group.side_procs = group.cols;
    group.manager = rank_at(group.border_lo, group.col0);
    group.shadow = rank_at(group.border_lo + 1, group.col0);
  }
  return group;
}

std::vector<std::uint32_t> group_members(const GroupInfo& group,
                                         util::GridShape grid) {
  std::vector<std::uint32_t> members;
  members.reserve(static_cast<std::size_t>(group.rows) * group.cols);
  for (std::uint32_t i = group.row0; i < group.row0 + group.rows; ++i) {
    for (std::uint32_t j = group.col0; j < group.col0 + group.cols; ++j) {
      members.push_back(i * grid.cols + j);
    }
  }
  return members;
}

}  // namespace histcc::cc
