#include "histcc/cc/label_prop.hpp"

#include <vector>

#include "histcc/cc_seq/bfs_label.hpp"
#include "histcc/trace/trace.hpp"
#include "histcc/util/require.hpp"

namespace histcc::cc {
namespace {

/// Packed halo line layout per processor: [north r][south r][west q][east q],
/// in each rank's *own* tile shape (ragged layout: offsets differ per rank,
/// so pulls compute the neighbour's offsets from the neighbour's geometry).
struct LineOffsets {
  std::size_t north, south, west, east, total;
};
LineOffsets line_offsets(std::uint32_t q, std::uint32_t r) {
  return LineOffsets{0, r, 2ull * r, 2ull * r + q, 2ull * r + 2ull * q};
}

}  // namespace

img::LabelImage connected_components_label_prop(splitc::Machine& machine,
                                                const img::TileLayout& layout,
                                                splitc::Spread<std::uint8_t>& tiles,
                                                ccseq::Connectivity conn,
                                                ccseq::ColourRule rule,
                                                LabelPropStats* stats) {
  HISTCC_REQUIRE(tiles.nprocs() == machine.nprocs() &&
                     layout.spread_fits(tiles),
                 "tiles spread does not fit layout (Spread '" +
                     tiles.name() + "')");
  const std::uint32_t p = machine.nprocs();
  const std::uint32_t v = layout.grid_rows();
  const std::uint32_t w = layout.grid_cols();
  // Per-rank line capacity: each rank packs its four border lines in its
  // *own* tile shape, so rank r needs exactly 2*(q_r + r_r) slots (packed
  // mode allocates just that; strided pads to the max).
  std::vector<std::size_t> line_sizes(p);
  for (std::uint32_t rank = 0; rank < p; ++rank) {
    line_sizes[rank] =
        line_offsets(layout.tile_rows(rank), layout.tile_cols(rank)).total;
  }

  splitc::Spread<std::uint32_t> labels(machine, layout.tile_sizes(),
                                       "labels");
  splitc::Spread<std::uint32_t> line_lb(machine, line_sizes, "line_lb");
  splitc::Spread<std::uint8_t> line_px(machine, line_sizes, "line_px");
  splitc::Spread<std::uint32_t> flags(machine, 1, "flags");

  std::uint32_t rounds = 0;

  machine.run([&](splitc::Proc& self) {
    const std::uint32_t rank = self.rank();
    const std::uint32_t q = layout.tile_rows(rank);
    const std::uint32_t r = layout.tile_cols(rank);
    const bool nonempty = q > 0 && r > 0;
    const auto lines = line_offsets(q, r);
    const std::uint32_t gi = layout.proc_row(rank);
    const std::uint32_t gj = layout.proc_col(rank);
    auto my_px = tiles.local(self);

    // Local components: comp_id per pixel (1-based; 0 = background) and the
    // current (monotonically decreasing) label per component.
    std::vector<std::uint32_t> comp_id(layout.tile_size(rank));
    std::vector<std::uint32_t> comp_labels;
    if (nonempty) {
      TRACE_SCOPE(self, "cc/prop_init");
      ccseq::BfsScratch scratch;
      std::uint32_t next_id = 0;
      ccseq::label_tile(
          my_px, std::span<std::uint32_t>(comp_id), q, r, conn, rule,
          [&](std::uint32_t i, std::uint32_t j) {
            comp_labels.push_back(layout.initial_label(rank, i, j));
            return ++next_id;
          },
          scratch);
      self.charge_ops(12 * layout.tile_size(rank));  // BFS init, as in
                                                     // parallel_cc
    }
    auto current_label = [&](std::size_t idx) -> std::uint32_t {
      return comp_id[idx] == 0 ? 0 : comp_labels[comp_id[idx] - 1];
    };

    // Halo ring of (q+2) x (r+2); we only ever read its outer ring.
    const std::uint32_t hq = q + 2;
    const std::uint32_t hr = r + 2;
    std::vector<std::uint32_t> halo_lb(static_cast<std::size_t>(hq) * hr);
    std::vector<std::uint8_t> halo_px(static_cast<std::size_t>(hq) * hr);
    auto halo_at = [&](std::uint32_t i, std::uint32_t j) -> std::size_t {
      return static_cast<std::size_t>(i) * hr + j;
    };

    const bool eight = conn == ccseq::Connectivity::kEight;
    const bool same_colour = rule == ccseq::ColourRule::kSameColour;

    for (;;) {
      TRACE_SCOPE(self, "cc/prop_round");
      // Step 1: pack my four border lines with current labels (empty tiles
      // have no lines to publish but still join every barrier below).
      if (nonempty) {
        auto plb = line_lb.local(self);
        auto ppx = line_px.local(self);
        for (std::uint32_t j = 0; j < r; ++j) {
          plb[lines.north + j] = current_label(j);
          ppx[lines.north + j] = my_px[j];
          const std::size_t s = static_cast<std::size_t>(q - 1) * r + j;
          plb[lines.south + j] = current_label(s);
          ppx[lines.south + j] = my_px[s];
        }
        for (std::uint32_t i = 0; i < q; ++i) {
          const std::size_t west = static_cast<std::size_t>(i) * r;
          plb[lines.west + i] = current_label(west);
          ppx[lines.west + i] = my_px[west];
          plb[lines.east + i] = current_label(west + r - 1);
          ppx[lines.east + i] = my_px[west + r - 1];
        }
        // race-ledger epoch annotations
        line_lb.note_local_write(self);
        line_px.note_local_write(self);
      }
      self.barrier();  // publish lines (and, on later rounds, order flag
                       // reads before this round's flag writes)

      // Step 2: pull facing lines from the 4 (+4 diagonal) neighbours into
      // the halo ring.
      std::fill(halo_lb.begin(), halo_lb.end(), 0u);
      std::fill(halo_px.begin(), halo_px.end(), std::uint8_t{0});
      // Offsets into a neighbour's packed lines use *its* tile shape; a
      // pull is skipped when either side is empty (an empty neighbour is
      // the image edge).  Facing lines match in length because grid
      // rows/columns share tile_rows/tile_cols.
      auto nbr_lines = [&](std::uint32_t nbr) {
        return line_offsets(layout.tile_rows(nbr), layout.tile_cols(nbr));
      };
      auto pull_line = [&](std::uint32_t nbr, std::size_t src_off,
                           std::size_t len, std::uint32_t hi,
                           std::uint32_t hj, bool row_dir) {
        if (layout.tile_size(nbr) == 0) return;
        // Fetch into temporaries, then place along a halo row or column.
        std::vector<std::uint32_t> tmp_lb(len);
        std::vector<std::uint8_t> tmp_px(len);
        line_lb.prefetch(self, tmp_lb, nbr, src_off, len);
        line_px.prefetch(self, tmp_px, nbr, src_off, len);
        for (std::size_t s = 0; s < len; ++s) {
          const std::size_t slot = row_dir
                                       ? halo_at(hi, hj + static_cast<std::uint32_t>(s))
                                       : halo_at(hi + static_cast<std::uint32_t>(s), hj);
          halo_lb[slot] = tmp_lb[s];
          halo_px[slot] = tmp_px[s];
        }
      };
      if (nonempty) {
        if (gi > 0) {
          const std::uint32_t nbr = layout.rank_at(gi - 1, gj);
          pull_line(nbr, nbr_lines(nbr).south, r, 0, 1, true);
        }
        if (gi + 1 < v) {
          const std::uint32_t nbr = layout.rank_at(gi + 1, gj);
          pull_line(nbr, nbr_lines(nbr).north, r, q + 1, 1, true);
        }
        if (gj > 0) {
          const std::uint32_t nbr = layout.rank_at(gi, gj - 1);
          pull_line(nbr, nbr_lines(nbr).east, q, 1, 0, false);
        }
        if (gj + 1 < w) {
          const std::uint32_t nbr = layout.rank_at(gi, gj + 1);
          pull_line(nbr, nbr_lines(nbr).west, q, 1, r + 1, false);
        }
        if (eight) {
          if (gi > 0 && gj > 0) {
            const std::uint32_t nbr = layout.rank_at(gi - 1, gj - 1);
            pull_line(nbr, nbr_lines(nbr).south + layout.tile_cols(nbr) - 1,
                      1, 0, 0, true);
          }
          if (gi > 0 && gj + 1 < w) {
            const std::uint32_t nbr = layout.rank_at(gi - 1, gj + 1);
            pull_line(nbr, nbr_lines(nbr).south, 1, 0, r + 1, true);
          }
          if (gi + 1 < v && gj > 0) {
            const std::uint32_t nbr = layout.rank_at(gi + 1, gj - 1);
            pull_line(nbr, nbr_lines(nbr).north + layout.tile_cols(nbr) - 1,
                      1, q + 1, 0, true);
          }
          if (gi + 1 < v && gj + 1 < w) {
            const std::uint32_t nbr = layout.rank_at(gi + 1, gj + 1);
            pull_line(nbr, nbr_lines(nbr).north, 1, q + 1, r + 1, true);
          }
        }
      }
      self.sync();

      // Step 3: relax every border pixel against its remote neighbours.
      bool changed = false;
      auto relax = [&](std::uint32_t i, std::uint32_t j) {
        const std::size_t idx = static_cast<std::size_t>(i) * r + j;
        const std::uint8_t colour = my_px[idx];
        if (colour == 0) return;
        const std::uint32_t cid = comp_id[idx] - 1;
        for (int di = -1; di <= 1; ++di) {
          for (int dj = -1; dj <= 1; ++dj) {
            if (di == 0 && dj == 0) continue;
            if (!eight && di != 0 && dj != 0) continue;
            const std::int64_t ni = static_cast<std::int64_t>(i) + di;
            const std::int64_t nj = static_cast<std::int64_t>(j) + dj;
            if (ni >= 0 && ni < q && nj >= 0 && nj < r) continue;  // local
            const std::size_t slot =
                halo_at(static_cast<std::uint32_t>(ni + 1),
                        static_cast<std::uint32_t>(nj + 1));
            const std::uint8_t ncolour = halo_px[slot];
            if (ncolour == 0) continue;
            if (same_colour && ncolour != colour) continue;
            const std::uint32_t nlabel = halo_lb[slot];
            if (nlabel != 0 && nlabel < comp_labels[cid]) {
              comp_labels[cid] = nlabel;
              changed = true;
            }
          }
        }
      };
      if (nonempty) {
        for (std::uint32_t j = 0; j < r; ++j) {
          relax(0, j);
          if (q > 1) relax(q - 1, j);
        }
        for (std::uint32_t i = 1; i + 1 < q; ++i) {
          relax(i, 0);
          if (r > 1) relax(i, r - 1);
        }
        self.charge_ops(2ull * 9 * (q + r));  // up to 8 neighbours +
                                              // bookkeeping
      }
      // Every rank (empty tiles included: changed == false) votes, so the
      // fixpoint read below sees a fresh word from all p processors.
      flags.local(self)[0] = changed ? 1u : 0u;
      flags.note_local_write(self, 0, 1);  // race-ledger epoch annotation
      self.barrier();  // publish flags

      // Step 4: global fixpoint test (every processor reads all flags).
      bool any_changed = false;
      for (std::uint32_t t = 0; t < p; ++t) {
        if (flags.get(self, t, 0) != 0) {
          any_changed = true;
        }
      }
      self.sync();
      if (rank == 0) ++rounds;
      if (!any_changed) break;
    }

    // Materialize the final labeling.
    auto out = labels.local(self);
    const std::size_t count = layout.tile_size(rank);
    for (std::size_t idx = 0; idx < count; ++idx) {
      out[idx] = current_label(idx);
    }
    if (count > 0) {
      labels.note_local_write(self);  // race-ledger epoch annotation
    }
    self.barrier();
  });

  if (stats != nullptr) stats->rounds = rounds;
  return layout.gather(labels);
}

img::LabelImage connected_components_label_prop(splitc::Machine& machine,
                                                const img::GreyImage& image,
                                                ccseq::Connectivity conn,
                                                ccseq::ColourRule rule,
                                                LabelPropStats* stats) {
  const img::TileLayout layout(image.height(), image.width(),
                               machine.nprocs());
  splitc::Spread<std::uint8_t> tiles(machine, layout.tile_sizes(),
                                     "prop_tiles");
  layout.scatter(image, tiles);
  return connected_components_label_prop(machine, layout, tiles, conn, rule,
                                         stats);
}

}  // namespace histcc::cc
