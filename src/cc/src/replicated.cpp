#include "histcc/cc/replicated.hpp"

#include "histcc/bdm/primitives.hpp"
#include "histcc/cc_seq/bfs_label.hpp"
#include "histcc/util/math.hpp"
#include "histcc/util/require.hpp"

namespace histcc::cc {

img::LabelImage connected_components_replicated(splitc::Machine& machine,
                                                const img::GreyImage& image,
                                                ccseq::Connectivity conn,
                                                ccseq::ColourRule rule) {
  const std::uint32_t h = image.height();
  const std::uint32_t w = image.width();
  const std::uint32_t p = machine.nprocs();
  const std::size_t total = image.size();
  HISTCC_REQUIRE(total > 0, "image must be non-empty");

  // The whole image starts on processor 0 and is broadcast to everyone.
  // `broadcast` requires p | q, so the blocks are padded up to the next
  // multiple of p (the pad words are value-initialized and never read).
  const std::size_t padded = util::ceil_div(total, std::size_t{p}) * p;
  splitc::Spread<std::uint8_t> src(machine, padded, "img_src");
  splitc::Spread<std::uint8_t> replica(machine, padded, "img_replica");
  splitc::Spread<std::uint8_t> scratch(machine, padded, "img_scratch");
  std::copy(image.pixels().begin(), image.pixels().end(),
            src.block(0).begin());

  img::LabelImage result(h, w);
  machine.run([&](splitc::Proc& self) {
    bdm::broadcast(self, replica, src, scratch, padded);

    // Every processor labels the complete image — that is the point of
    // the baseline: the sequential work is fully replicated.
    std::vector<std::uint32_t> labels(total);
    ccseq::BfsScratch bfs;
    ccseq::label_tile(
        replica.local(self), labels, h, w, conn, rule,
        [w](std::uint32_t i, std::uint32_t j) { return i * w + j + 1; },
        bfs);
    self.charge_ops(12 * total);  // same per-pixel BFS cost as parallel_cc

    if (self.rank() == 0) {
      std::copy(labels.begin(), labels.end(), result.pixels().begin());
    }
  });
  return result;
}

}  // namespace histcc::cc
