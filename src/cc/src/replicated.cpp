#include "histcc/cc/replicated.hpp"

#include "histcc/bdm/primitives.hpp"
#include "histcc/cc_seq/bfs_label.hpp"
#include "histcc/util/require.hpp"

namespace histcc::cc {

img::LabelImage connected_components_replicated(splitc::Machine& machine,
                                                const img::GreyImage& image,
                                                ccseq::Connectivity conn,
                                                ccseq::ColourRule rule) {
  const std::uint32_t n = image.height();
  HISTCC_REQUIRE(n == image.width(), "image must be square");
  const std::uint32_t p = machine.nprocs();
  const std::size_t total = image.size();
  HISTCC_REQUIRE(total % p == 0, "p must divide n^2");

  // The whole image starts on processor 0 and is broadcast to everyone.
  splitc::Spread<std::uint8_t> src(machine, total, "img_src");
  splitc::Spread<std::uint8_t> replica(machine, total, "img_replica");
  splitc::Spread<std::uint8_t> scratch(machine, total, "img_scratch");
  std::copy(image.pixels().begin(), image.pixels().end(),
            src.block(0).begin());

  img::LabelImage result(n, n);
  machine.run([&](splitc::Proc& self) {
    bdm::broadcast(self, replica, src, scratch, total);

    // Every processor labels the complete image — that is the point of
    // the baseline: the sequential work is fully replicated.
    std::vector<std::uint32_t> labels(total);
    ccseq::BfsScratch bfs;
    ccseq::label_tile(
        replica.local(self), labels, n, n, conn, rule,
        [n](std::uint32_t i, std::uint32_t j) { return i * n + j + 1; },
        bfs);
    self.charge_ops(12 * total);  // same per-pixel BFS cost as parallel_cc

    if (self.rank() == 0) {
      std::copy(labels.begin(), labels.end(), result.pixels().begin());
    }
  });
  return result;
}

}  // namespace histcc::cc
