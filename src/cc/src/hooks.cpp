#include "histcc/cc/hooks.hpp"

#include "histcc/sortutil/radix.hpp"
#include "histcc/util/require.hpp"

namespace histcc::cc {

std::vector<std::uint32_t> tile_border_offsets(std::uint32_t rows,
                                               std::uint32_t cols) {
  std::vector<std::uint32_t> offsets;
  if (rows == 0 || cols == 0) return offsets;  // empty tile: no border
  if (rows == 1) {
    offsets.reserve(cols);
    for (std::uint32_t j = 0; j < cols; ++j) offsets.push_back(j);
    return offsets;
  }
  if (cols == 1) {
    offsets.reserve(rows);
    for (std::uint32_t i = 0; i < rows; ++i) offsets.push_back(i);
    return offsets;
  }
  offsets.reserve(2 * (static_cast<std::size_t>(rows) + cols) - 4);
  for (std::uint32_t j = 0; j < cols; ++j) offsets.push_back(j);  // top row
  for (std::uint32_t i = 1; i + 1 < rows; ++i) {
    offsets.push_back(i * cols);              // west column
    offsets.push_back(i * cols + cols - 1);   // east column
  }
  for (std::uint32_t j = 0; j < cols; ++j) {
    offsets.push_back((rows - 1) * cols + j);  // bottom row
  }
  return offsets;
}

std::vector<TileHook> make_tile_hooks(
    std::span<const std::uint8_t> pixels, std::span<const std::uint32_t> labels,
    std::span<const std::uint32_t> border_offsets) {
  // Step 1: collect (label, offset) for every coloured border pixel.
  std::vector<TileHook> hooks;
  for (const auto offset : border_offsets) {
    if (pixels[offset] != 0) {
      hooks.push_back(TileHook{labels[offset], offset});
    }
  }
  // Step 2: radix sort by label.
  sortutil::hybrid_sort_by(hooks, [](const TileHook& h) { return h.label; });
  // Step 3: keep one hook per label.
  std::size_t unique = 0;
  for (std::size_t i = 0; i < hooks.size(); ++i) {
    if (unique == 0 || hooks[unique - 1].label != hooks[i].label) {
      hooks[unique++] = hooks[i];
    }
  }
  hooks.resize(unique);
  return hooks;
}

void update_border_labels(std::span<std::uint32_t> labels,
                          std::span<const std::uint8_t> pixels,
                          std::span<const std::uint32_t> border_offsets,
                          std::span<const ChangePair> changes) {
  if (changes.empty()) return;
  for (const auto offset : border_offsets) {
    if (pixels[offset] == 0) continue;
    labels[offset] = apply_changes(changes, labels[offset]);
  }
}

void update_all_labels(std::span<std::uint32_t> labels,
                       std::span<const std::uint8_t> pixels,
                       std::span<const ChangePair> changes) {
  if (changes.empty()) return;
  for (std::size_t idx = 0; idx < labels.size(); ++idx) {
    if (pixels[idx] == 0) continue;
    labels[idx] = apply_changes(changes, labels[idx]);
  }
}

void relabel_interior(std::span<std::uint32_t> labels, std::uint32_t rows,
                      std::uint32_t cols, std::span<const TileHook> hooks,
                      ccseq::Connectivity conn,
                      std::vector<std::uint8_t>& visited) {
  const std::size_t count = static_cast<std::size_t>(rows) * cols;
  HISTCC_REQUIRE(labels.size() >= count, "label span too small");
  visited.assign(count, 0);
  const bool eight = conn == ccseq::Connectivity::kEight;

  std::vector<std::uint32_t> queue;
  for (const auto& hook : hooks) {
    const std::uint32_t current = labels[hook.offset];
    if (current == hook.label) continue;  // component label survived
    const std::uint32_t stale = hook.label;
    if (visited[hook.offset]) continue;

    // BFS through the component: pixels still carrying the stale label or
    // already carrying the final one.  Labels are unique per component, so
    // the walk cannot escape into a neighbouring component.
    queue.clear();
    queue.push_back(hook.offset);
    visited[hook.offset] = 1;
    labels[hook.offset] = current;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::uint32_t idx = queue[head];
      const std::uint32_t i = idx / cols;
      const std::uint32_t j = idx % cols;
      auto visit = [&](std::uint32_t ni, std::uint32_t nj) {
        const std::uint32_t nidx = ni * cols + nj;
        if (visited[nidx]) return;
        if (labels[nidx] != stale && labels[nidx] != current) return;
        visited[nidx] = 1;
        labels[nidx] = current;
        queue.push_back(nidx);
      };
      const bool has_n = i > 0;
      const bool has_s = i + 1 < rows;
      const bool has_w = j > 0;
      const bool has_e = j + 1 < cols;
      if (has_n) visit(i - 1, j);
      if (has_s) visit(i + 1, j);
      if (has_w) visit(i, j - 1);
      if (has_e) visit(i, j + 1);
      if (eight) {
        if (has_n && has_w) visit(i - 1, j - 1);
        if (has_n && has_e) visit(i - 1, j + 1);
        if (has_s && has_w) visit(i + 1, j - 1);
        if (has_s && has_e) visit(i + 1, j + 1);
      }
    }
  }
}

}  // namespace histcc::cc
