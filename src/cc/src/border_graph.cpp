#include "histcc/cc/border_graph.hpp"

#include <algorithm>

#include "histcc/sortutil/radix.hpp"
#include "histcc/util/require.hpp"

namespace histcc::cc {
namespace {

/// Record used to sort coloured border pixels by label.
struct LabelPos {
  std::uint32_t label;
  std::uint32_t pos;
};

/// Vertex numbering: coloured pixel at position i on the lo side is vertex
/// i; on the hi side it is vertex s + i, where s is the side length.
/// Background positions simply have no edges and are never seeded.
class BorderGraph {
 public:
  BorderGraph(std::size_t side_len) : side_len_(side_len) {
    adjacency_.resize(2 * side_len);
  }

  void add_edge(std::uint32_t a, std::uint32_t b) {
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
  }

  [[nodiscard]] std::span<const std::uint32_t> neighbours(
      std::uint32_t vertex) const noexcept {
    return adjacency_[vertex];
  }

  [[nodiscard]] std::size_t vertex_count() const noexcept {
    return 2 * side_len_;
  }

 private:
  std::size_t side_len_;
  // At most 5 edges per vertex (2 same-label chain + 3 across-border), so
  // the small vectors stay tiny.
  std::vector<std::vector<std::uint32_t>> adjacency_;
};

/// Chain consecutive same-label entries of a label-sorted side (edge type 1).
void add_chain_edges(BorderGraph& graph, const BorderSide& side,
                     std::span<const std::uint32_t> sorted,
                     std::uint32_t vertex_base) {
  for (std::size_t s = 1; s < sorted.size(); ++s) {
    const std::uint32_t prev = sorted[s - 1];
    const std::uint32_t cur = sorted[s];
    if (side.labels[prev] == side.labels[cur]) {
      graph.add_edge(vertex_base + prev, vertex_base + cur);
    }
  }
}

}  // namespace

std::vector<std::uint32_t> sort_side_by_label(const BorderSide& side) {
  HISTCC_REQUIRE(side.pixels.size() == side.labels.size(),
                 "border side pixel/label length mismatch");
  std::vector<LabelPos> records;
  records.reserve(side.pixels.size());
  for (std::uint32_t i = 0; i < side.pixels.size(); ++i) {
    if (side.pixels[i] != 0) {
      records.push_back(LabelPos{side.labels[i], i});
    }
  }
  sortutil::hybrid_sort_by(records,
                           [](const LabelPos& r) { return r.label; });
  std::vector<std::uint32_t> sorted;
  sorted.reserve(records.size());
  for (const auto& r : records) sorted.push_back(r.pos);
  return sorted;
}

std::vector<ChangePair> merge_border(const BorderSide& lo,
                                     std::span<const std::uint32_t> lo_sorted,
                                     const BorderSide& hi,
                                     std::span<const std::uint32_t> hi_sorted,
                                     ccseq::Connectivity conn,
                                     ccseq::ColourRule rule) {
  HISTCC_REQUIRE(lo.pixels.size() == hi.pixels.size(),
                 "border sides must have equal length");
  HISTCC_REQUIRE(lo.pixels.size() == lo.labels.size() &&
                     hi.pixels.size() == hi.labels.size(),
                 "border side pixel/label length mismatch");
  const std::size_t s = lo.pixels.size();
  const auto side_len = static_cast<std::uint32_t>(s);
  BorderGraph graph(s);

  // Edge type 1: same-label chains within each side.
  add_chain_edges(graph, lo, lo_sorted, 0);
  add_chain_edges(graph, hi, hi_sorted, side_len);

  // Edge type 2: like-coloured pixels adjacent across the border.
  const bool eight = conn == ccseq::Connectivity::kEight;
  const bool same_colour = rule == ccseq::ColourRule::kSameColour;
  for (std::uint32_t i = 0; i < s; ++i) {
    if (lo.pixels[i] == 0) continue;
    auto link = [&](std::uint32_t j) {
      if (hi.pixels[j] == 0) return;
      if (same_colour && hi.pixels[j] != lo.pixels[i]) return;
      graph.add_edge(i, side_len + j);
    };
    if (eight && i > 0) link(i - 1);
    link(i);
    if (eight && i + 1 < s) link(i + 1);
  }

  // Sequential BFS connected components over the graph; each component
  // keeps its minimum label.
  auto label_of = [&](std::uint32_t vertex) {
    return vertex < side_len ? lo.labels[vertex]
                             : hi.labels[vertex - side_len];
  };
  auto colour_of = [&](std::uint32_t vertex) {
    return vertex < side_len ? lo.pixels[vertex]
                             : hi.pixels[vertex - side_len];
  };

  std::vector<std::uint8_t> visited(graph.vertex_count(), 0);
  std::vector<std::uint32_t> queue;
  std::vector<ChangePair> raw_changes;

  for (std::uint32_t seed = 0; seed < graph.vertex_count(); ++seed) {
    if (visited[seed] || colour_of(seed) == 0) continue;
    queue.clear();
    queue.push_back(seed);
    visited[seed] = 1;
    std::uint32_t rep = label_of(seed);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      for (const auto next : graph.neighbours(queue[head])) {
        if (visited[next]) continue;
        visited[next] = 1;
        rep = std::min(rep, label_of(next));
        queue.push_back(next);
      }
    }
    for (const auto vertex : queue) {
      const std::uint32_t old_label = label_of(vertex);
      if (old_label != rep) {
        raw_changes.push_back(ChangePair{old_label, rep});
      }
    }
  }

  // Procedure 1: radix sort the pairs by alpha, scan out unique pairs.
  sortutil::hybrid_sort_by(raw_changes,
                           [](const ChangePair& c) { return c.alpha; });
  std::vector<ChangePair> changes;
  changes.reserve(raw_changes.size());
  for (const auto& c : raw_changes) {
    if (changes.empty() || changes.back().alpha != c.alpha) {
      changes.push_back(c);
    } else {
      // All occurrences of one alpha live in one graph component, so they
      // must agree on beta.
      HISTCC_ASSERT(changes.back().beta == c.beta);
    }
  }
  return changes;
}

std::vector<ChangePair> merge_border(const BorderSide& lo,
                                     const BorderSide& hi,
                                     ccseq::Connectivity conn,
                                     ccseq::ColourRule rule) {
  const auto lo_sorted = sort_side_by_label(lo);
  const auto hi_sorted = sort_side_by_label(hi);
  return merge_border(lo, lo_sorted, hi, hi_sorted, conn, rule);
}

std::uint32_t apply_changes(std::span<const ChangePair> changes,
                            std::uint32_t label) noexcept {
  auto it = std::lower_bound(
      changes.begin(), changes.end(), label,
      [](const ChangePair& c, std::uint32_t value) { return c.alpha < value; });
  if (it != changes.end() && it->alpha == label) return it->beta;
  return label;
}

}  // namespace histcc::cc
