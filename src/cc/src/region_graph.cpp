#include "histcc/cc/region_graph.hpp"

#include <algorithm>

#include "histcc/image/halo.hpp"
#include "histcc/sortutil/radix.hpp"
#include "histcc/util/require.hpp"

namespace histcc::cc {
namespace {

/// Emit the edge (a, b) normalized to a < b if both labels are distinct
/// foreground.
void emit(std::vector<RegionEdge>& edges, std::uint32_t a, std::uint32_t b) {
  if (a == 0 || b == 0 || a == b) return;
  edges.push_back(a < b ? RegionEdge{a, b} : RegionEdge{b, a});
}

/// Scan the centre of a padded label buffer, emitting each adjacency
/// exactly once via the forward stencil (E, S, SE, SW).  `rows` x `cols`
/// is the unpadded extent; `stride` the padded row length; the buffer's
/// origin is the padded (0,0).
void forward_scan(const std::uint32_t* padded, std::size_t stride,
                  std::uint32_t rows, std::uint32_t cols, bool eight,
                  std::vector<RegionEdge>& edges) {
  for (std::uint32_t i = 1; i <= rows; ++i) {
    for (std::uint32_t j = 1; j <= cols; ++j) {
      const std::size_t c = i * stride + j;
      const std::uint32_t me = padded[c];
      if (me == 0) continue;
      emit(edges, me, padded[c + 1]);        // east
      emit(edges, me, padded[c + stride]);   // south
      if (eight) {
        emit(edges, me, padded[c + stride + 1]);  // south-east
        emit(edges, me, padded[c + stride - 1]);  // south-west
      }
    }
  }
}

/// Sort + unique (Procedure 1 idiom over 64-bit keys).
void dedupe(std::vector<RegionEdge>& edges) {
  sortutil::hybrid_sort_by(edges,
                           [](const RegionEdge& e) { return e.b; });
  sortutil::hybrid_sort_by(edges,
                           [](const RegionEdge& e) { return e.a; });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
}

}  // namespace

std::vector<RegionEdge> region_adjacency(const img::LabelImage& labels,
                                         ccseq::Connectivity conn) {
  const std::uint32_t rows = labels.height();
  const std::uint32_t cols = labels.width();
  std::vector<RegionEdge> edges;
  if (labels.empty()) return edges;

  // Zero-padded copy so the stencil needs no bounds checks.
  const std::size_t stride = cols + 2;
  std::vector<std::uint32_t> padded((rows + 2) * stride, 0);
  for (std::uint32_t i = 0; i < rows; ++i) {
    for (std::uint32_t j = 0; j < cols; ++j) {
      padded[(i + 1) * stride + (j + 1)] = labels(i, j);
    }
  }
  forward_scan(padded.data(), stride, rows, cols,
               conn == ccseq::Connectivity::kEight, edges);
  dedupe(edges);
  return edges;
}

std::vector<RegionEdge> region_adjacency_parallel(
    splitc::Machine& machine, const img::TileLayout& layout,
    splitc::Spread<std::uint32_t>& labels, ccseq::Connectivity conn) {
  HISTCC_REQUIRE(labels.nprocs() == machine.nprocs() &&
                     layout.spread_fits(labels),
                 "labels spread does not fit layout (Spread '" +
                     labels.name() + "')");
  const std::uint32_t p = machine.nprocs();
  const bool eight = conn == ccseq::Connectivity::kEight;

  img::HaloExchangerT<std::uint32_t> halos(machine, layout);
  splitc::SpreadVec<RegionEdge> partial(machine, "rag_partial");
  std::vector<RegionEdge> merged;

  machine.run([&](splitc::Proc& self) {
    // The one-pixel label halo turns every cross-tile adjacency into a
    // local stencil application.  The forward stencil assigns each pair
    // to exactly one owner globally, so no edge is counted twice — except
    // that a pair straddling a tile border is seen by the forward scan of
    // exactly the tile owning its first endpoint, which is what the halo
    // (rather than a double-width exchange) guarantees.
    const std::uint32_t rank = self.rank();
    std::vector<std::uint32_t> halo;
    halos.exchange(self, labels, halo);
    auto& mine = partial.local(self);
    mine.clear();
    forward_scan(halo.data(), halos.halo_cols(rank), layout.tile_rows(rank),
                 layout.tile_cols(rank), eight, mine);
    dedupe(mine);
    partial.note_local_write(self);  // race-ledger epoch annotation
    self.charge_ops((eight ? 4ull : 2ull) * layout.tile_size(rank));
    self.barrier();  // publish partial edge lists

    if (self.rank() == 0) {
      for (std::uint32_t from = 0; from < p; ++from) {
        const std::size_t count = partial.size_of(self, from);
        const std::size_t base = merged.size();
        merged.resize(base + count);
        partial.prefetch(
            self, std::span<RegionEdge>(merged).subspan(base, count), from,
            0, count);
      }
      self.sync();
      dedupe(merged);
      self.charge_ops(3 * merged.size());
    }
    self.barrier();
  });
  return merged;
}

std::vector<RegionEdge> region_adjacency_parallel(splitc::Machine& machine,
                                                  const img::LabelImage& labels,
                                                  ccseq::Connectivity conn) {
  const img::TileLayout layout(labels.height(), labels.width(),
                               machine.nprocs());
  splitc::Spread<std::uint32_t> tiles(machine, layout.tile_sizes(),
                                      "rag_tiles");
  layout.scatter(labels, tiles);
  return region_adjacency_parallel(machine, layout, tiles, conn);
}

}  // namespace histcc::cc
