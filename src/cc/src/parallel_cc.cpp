#include "histcc/cc/parallel_cc.hpp"

#include <algorithm>
#include <vector>

#include "histcc/bdm/primitives.hpp"
#include "histcc/cc/border_graph.hpp"
#include "histcc/cc/hooks.hpp"
#include "histcc/cc/merge_schedule.hpp"
#include "histcc/cc_seq/bfs_label.hpp"
#include "histcc/trace/trace.hpp"
#include "histcc/util/require.hpp"
#include "histcc/util/timer.hpp"

namespace histcc::cc {
namespace {

// Abstract RAM operations charged per unit of work, so modeled Tcomp is
// comparable with the calibrated per-op costs in splitc::MachineProfile
// (one op = one histogram-tally pixel visit).  A BFS pixel visit touches
// the queue, the mark, and up to eight neighbours; sorting and graph
// construction cost a few ops per element.
constexpr std::uint64_t kOpsPerLabeledPixel = 12;   // init BFS + hooks
constexpr std::uint64_t kOpsPerSortedBorderElem = 3;   // pack + radix sort
constexpr std::uint64_t kOpsPerMergedBorderElem = 10;  // graph + BFS + changes
constexpr std::uint64_t kOpsPerBorderUpdate = 4;       // binary search step
constexpr std::uint64_t kOpsPerRelabeledPixel = 6;     // final BFS visit

/// Everything one virtual processor needs across the merge iterations.
struct ProcState {
  std::vector<std::uint32_t> border_offsets;  ///< my tile's border pixels
  std::vector<TileHook> hooks;
  ccseq::BfsScratch bfs;
  std::vector<std::uint8_t> visited;
  // Manager-side staging for one merge.
  std::vector<std::uint8_t> lo_px, hi_px;
  std::vector<std::uint32_t> lo_lb, hi_lb;
  std::vector<std::uint32_t> lo_sorted, hi_sorted;
  std::vector<ChangePair> changes;
};

}  // namespace

void connected_components_parallel(splitc::Machine& machine,
                                   const img::TileLayout& layout,
                                   splitc::Spread<std::uint8_t>& tiles,
                                   splitc::Spread<std::uint32_t>& labels,
                                   const CcOptions& options,
                                   CcPhases* phases) {
  HISTCC_REQUIRE(tiles.nprocs() == machine.nprocs() &&
                     layout.spread_fits(tiles),
                 "tiles spread does not fit layout (Spread '" +
                     tiles.name() + "')");
  HISTCC_REQUIRE(labels.nprocs() == machine.nprocs() &&
                     layout.spread_fits(labels),
                 "labels spread does not fit layout (Spread '" +
                     labels.name() + "')");
  const util::GridShape grid{layout.grid_rows(), layout.grid_cols()};
  const auto schedule = merge_schedule(grid);

  // Distributed state shared by the SPMD program.
  splitc::SpreadVec<std::uint8_t> pack_px(machine, "pack_px");   // packed border pixels
  splitc::SpreadVec<std::uint32_t> pack_lb(machine, "pack_lb");  // packed border labels
  splitc::SpreadVec<std::uint8_t> agg_px(machine, "agg_px");     // shadow's far side
  splitc::SpreadVec<std::uint32_t> agg_lb(machine, "agg_lb");
  splitc::SpreadVec<std::uint32_t> agg_sorted(machine, "agg_sorted");
  splitc::SpreadVec<ChangePair> chg(machine, "chg");        // manager's change list
  splitc::SpreadVec<ChangePair> stage(machine, "stage");    // eq. (9) staging

  CcPhases local_phases;
  local_phases.merge_phases = static_cast<std::uint32_t>(schedule.size());

  machine.run([&](splitc::Proc& self) {
    ProcState st;
    const std::uint32_t rank = self.rank();
    // Ragged layout: every rank works in its own tile shape (possibly
    // empty); barriers and collective phases below stay uniform.
    const std::uint32_t q = layout.tile_rows(rank);
    const std::uint32_t r = layout.tile_cols(rank);
    const bool nonempty = q > 0 && r > 0;
    const std::uint32_t grid_row = layout.proc_row(rank);
    const std::uint32_t grid_col = layout.proc_col(rank);
    const bool timing = rank == 0;
    util::Timer timer;

    // -------- Phase 0: initialization (Section 5.1) --------
    auto my_px = tiles.local(self);
    auto my_lb = labels.local(self);
    TRACE_SPAN(self, "cc/init") {
      if (nonempty) {
        ccseq::label_tile(
            my_px, my_lb, q, r, options.connectivity, options.rule,
            [&](std::uint32_t i, std::uint32_t j) {
              return layout.initial_label(rank, i, j);
            },
            st.bfs);
        st.border_offsets = tile_border_offsets(q, r);
        st.hooks = make_tile_hooks(my_px, my_lb, st.border_offsets);
        labels.note_local_write(self);  // race-ledger epoch annotation
        self.charge_ops(kOpsPerLabeledPixel * layout.tile_size(rank));
      }
      self.barrier();
    }
    if (timing) local_phases.init_s = timer.seconds();

    // -------- log p merge iterations (Sections 5.2-5.4) --------
    for (const auto& phase : schedule) {
      const GroupInfo group = group_of(phase, grid, grid_row, grid_col);
      // Ragged geometry: the border between grid columns border_lo and
      // border_lo+1 (or grid rows, vertically) only carries pixels when
      // *both* sides own any; and each of the side_procs strips along it
      // has its own length (rows_in/cols_in of its grid row/column — zero
      // for trailing empty ones).  Both sides share the same strip
      // lengths, so merge_border's equal-length precondition holds.
      const bool live_border =
          phase.horizontal
              ? (layout.cols_in(group.border_lo) > 0 &&
                 layout.cols_in(group.border_lo + 1) > 0)
              : (layout.rows_in(group.border_lo) > 0 &&
                 layout.rows_in(group.border_lo + 1) > 0);
      auto strip_words = [&](std::uint32_t idx) -> std::size_t {
        if (!live_border) return 0;
        return phase.horizontal ? layout.rows_in(group.row0 + idx)
                                : layout.cols_in(group.col0 + idx);
      };
      std::vector<std::size_t> strip_off(group.side_procs + 1, 0);
      for (std::uint32_t idx = 0; idx < group.side_procs; ++idx) {
        strip_off[idx + 1] = strip_off[idx] + strip_words(idx);
      }
      const std::size_t side_len = strip_off[group.side_procs];

      // Pack my strip of the border, if I own one (and it is live).
      timer.reset();
      const bool is_manager = rank == group.manager;
      const bool is_shadow =
          options.use_shadow_manager && rank == group.shadow;
      TRACE_SPAN(self, "cc/border") {
        {
          auto& ppx = pack_px.local(self);
          auto& plb = pack_lb.local(self);
          ppx.clear();
          plb.clear();
          if (phase.horizontal) {
            if (live_border && nonempty && grid_col == group.border_lo) {
              // east column of my tile
              ppx.resize(q);
              plb.resize(q);
              for (std::uint32_t i = 0; i < q; ++i) {
                ppx[i] = my_px[static_cast<std::size_t>(i) * r + r - 1];
                plb[i] = my_lb[static_cast<std::size_t>(i) * r + r - 1];
              }
            } else if (live_border && nonempty &&
                       grid_col == group.border_lo + 1) {  // west column
              ppx.resize(q);
              plb.resize(q);
              for (std::uint32_t i = 0; i < q; ++i) {
                ppx[i] = my_px[static_cast<std::size_t>(i) * r];
                plb[i] = my_lb[static_cast<std::size_t>(i) * r];
              }
            }
          } else {
            if (live_border && nonempty && grid_row == group.border_lo) {
              // south row of my tile
              const std::size_t base = static_cast<std::size_t>(q - 1) * r;
              ppx.assign(my_px.begin() + static_cast<std::ptrdiff_t>(base),
                         my_px.begin() + static_cast<std::ptrdiff_t>(base + r));
              plb.assign(my_lb.begin() + static_cast<std::ptrdiff_t>(base),
                         my_lb.begin() + static_cast<std::ptrdiff_t>(base + r));
            } else if (live_border && nonempty &&
                       grid_row == group.border_lo + 1) {  // north row
              ppx.assign(my_px.begin(), my_px.begin() + r);
              plb.assign(my_lb.begin(), my_lb.begin() + r);
            }
          }
          // race-ledger epoch annotations (cover the clear() case too)
          pack_px.note_local_write(self);
          pack_lb.note_local_write(self);
        }
        self.barrier();  // publish packed strips

        // Fetch and sort the border sides.
        auto strip_owner = [&](bool lo_side, std::uint32_t idx) {
          const std::uint32_t fixed =
              lo_side ? group.border_lo : group.border_lo + 1;
          if (phase.horizontal) {
            return layout.rank_at(group.row0 + idx, fixed);
          }
          return layout.rank_at(fixed, group.col0 + idx);
        };
        auto pull_side = [&](bool lo_side, std::vector<std::uint8_t>& px,
                             std::vector<std::uint32_t>& lb) {
          px.resize(side_len);
          lb.resize(side_len);
          for (std::uint32_t idx = 0; idx < group.side_procs; ++idx) {
            const std::size_t words = strip_off[idx + 1] - strip_off[idx];
            if (words == 0) continue;  // empty strip (trailing grid row/col)
            const std::uint32_t owner = strip_owner(lo_side, idx);
            const std::size_t off = strip_off[idx];
            pack_px.prefetch(self,
                             std::span<std::uint8_t>(px).subspan(off, words),
                             owner, 0, words);
            pack_lb.prefetch(self,
                             std::span<std::uint32_t>(lb).subspan(off, words),
                             owner, 0, words);
          }
          self.sync();
        };

        if (is_manager) {
          pull_side(true, st.lo_px, st.lo_lb);
          st.lo_sorted =
              sort_side_by_label(BorderSide{st.lo_px, st.lo_lb});
          if (!options.use_shadow_manager) {
            pull_side(false, st.hi_px, st.hi_lb);
            st.hi_sorted =
                sort_side_by_label(BorderSide{st.hi_px, st.hi_lb});
          }
        }
        if (is_shadow) {
          // The shadow manager fetches and sorts its own side, then exposes
          // the results for the manager (Section 5.3).
          pull_side(false, st.hi_px, st.hi_lb);
          st.hi_sorted = sort_side_by_label(BorderSide{st.hi_px, st.hi_lb});
          agg_px.local(self) = st.hi_px;
          agg_lb.local(self) = st.hi_lb;
          agg_sorted.local(self) = st.hi_sorted;
          // race-ledger epoch annotations
          agg_px.note_local_write(self);
          agg_lb.note_local_write(self);
          agg_sorted.note_local_write(self);
          self.charge_ops(kOpsPerSortedBorderElem * side_len);
        }
        // Without a shadow manager the group manager fetches and sorts both
        // sides itself, doubling its critical-path sort work (Section 5.3).
        if (is_manager) {
          self.charge_ops(kOpsPerSortedBorderElem * side_len *
                          (options.use_shadow_manager ? 1 : 2));
        }
        self.barrier();  // publish shadow aggregates
      }
      if (timing) local_phases.border_s += timer.seconds();

      // Manager: solve the border-graph problem, publish the change array.
      timer.reset();
      TRACE_SPAN(self, "cc/graph") {
        if (is_manager) {
          if (options.use_shadow_manager) {
            st.hi_px.resize(side_len);
            st.hi_lb.resize(side_len);
            agg_px.prefetch(self, st.hi_px, group.shadow, 0, side_len);
            agg_lb.prefetch(self, st.hi_lb, group.shadow, 0, side_len);
            const std::size_t sorted_len =
                agg_sorted.size_of(self, group.shadow);
            st.hi_sorted.resize(sorted_len);
            agg_sorted.prefetch(self, st.hi_sorted, group.shadow, 0, sorted_len);
            self.sync();
          }
          st.changes = merge_border(BorderSide{st.lo_px, st.lo_lb},
                                    st.lo_sorted,
                                    BorderSide{st.hi_px, st.hi_lb},
                                    st.hi_sorted, options.connectivity,
                                    options.rule);
          chg.local(self) = st.changes;
          chg.note_local_write(self);  // race-ledger epoch annotation
          self.charge_ops(kOpsPerMergedBorderElem * side_len);
        }
        self.barrier();  // publish change array
      }
      if (timing) local_phases.graph_s += timer.seconds();

      // Distribute the change array to the group and update borders.
      timer.reset();
      TRACE_SPAN(self, "cc/update") {
        const std::size_t total_changes = chg.size_of(self, group.manager);
        if (options.eq9_distribution) {
          const auto members = group_members(group, grid);
          const std::size_t my_index = static_cast<std::size_t>(
              std::find(members.begin(), members.end(), rank) -
              members.begin());
          HISTCC_ASSERT(my_index < members.size());
          const std::size_t root_index = static_cast<std::size_t>(
              std::find(members.begin(), members.end(), group.manager) -
              members.begin());
          bdm::scatter_group(self, members, my_index, root_index, chg, stage);
          self.barrier();  // publish staged slices
          bdm::allgather_group(self, members, my_index, total_changes, stage,
                               st.changes);
        } else {
          st.changes.resize(total_changes);
          chg.prefetch(self, st.changes, group.manager, 0, total_changes);
          self.sync();
        }

        if (nonempty) {
          if (options.full_relabel_each_phase) {
            update_all_labels(my_lb.subspan(0, layout.tile_size(rank)), my_px,
                              st.changes);
            self.charge_ops(kOpsPerBorderUpdate * layout.tile_size(rank));
          } else {
            update_border_labels(my_lb, my_px, st.border_offsets, st.changes);
            self.charge_ops(kOpsPerBorderUpdate * st.border_offsets.size());
          }
          labels.note_local_write(self);  // race-ledger epoch annotation
        }
        self.barrier();  // end of merge iteration
      }
      if (timing) local_phases.update_s += timer.seconds();
    }

    // -------- Total consistency update --------
    timer.reset();
    TRACE_SPAN(self, "cc/final") {
      if (!options.full_relabel_each_phase && nonempty) {
        relabel_interior(my_lb, q, r, st.hooks, options.connectivity,
                         st.visited);
        labels.note_local_write(self);  // race-ledger epoch annotation
        self.charge_ops(kOpsPerRelabeledPixel * layout.tile_size(rank));
      }
      self.barrier();
    }
    if (timing) local_phases.final_s = timer.seconds();
  });

  if (phases != nullptr) *phases = local_phases;
}

img::LabelImage connected_components_parallel(splitc::Machine& machine,
                                              const img::TileLayout& layout,
                                              splitc::Spread<std::uint8_t>& tiles,
                                              const CcOptions& options,
                                              CcPhases* phases) {
  splitc::Spread<std::uint32_t> labels(machine, layout.tile_sizes(),
                                       "labels");
  connected_components_parallel(machine, layout, tiles, labels, options,
                                phases);
  return layout.gather(labels);
}

img::LabelImage connected_components_parallel(splitc::Machine& machine,
                                              const img::GreyImage& image,
                                              const CcOptions& options,
                                              CcPhases* phases) {
  const img::TileLayout layout(image.height(), image.width(),
                               machine.nprocs());
  splitc::Spread<std::uint8_t> tiles(machine, layout.tile_sizes(), "tiles");
  layout.scatter(image, tiles);
  return connected_components_parallel(machine, layout, tiles, options,
                                       phases);
}

}  // namespace histcc::cc
