#include "histcc/cc/stats_parallel.hpp"

#include <unordered_map>

#include "histcc/sortutil/radix.hpp"
#include "histcc/util/require.hpp"

namespace histcc::cc {

std::vector<ccseq::ComponentStats> component_stats_parallel(
    splitc::Machine& machine, const img::TileLayout& layout,
    splitc::Spread<std::uint8_t>& tiles,
    splitc::Spread<std::uint32_t>& labels) {
  HISTCC_REQUIRE(tiles.nprocs() == machine.nprocs() &&
                     layout.spread_fits(tiles),
                 "tiles spread does not fit layout (Spread '" +
                     tiles.name() + "')");
  HISTCC_REQUIRE(labels.nprocs() == machine.nprocs() &&
                     layout.spread_fits(labels),
                 "labels spread does not fit layout (Spread '" +
                     labels.name() + "')");
  const std::uint32_t p = machine.nprocs();

  splitc::SpreadVec<ccseq::ComponentStats> partials(machine,
                                                    "stats_partials");
  std::vector<ccseq::ComponentStats> merged;

  machine.run([&](splitc::Proc& self) {
    const std::uint32_t rank = self.rank();
    const std::uint32_t q = layout.tile_rows(rank);
    const std::uint32_t r = layout.tile_cols(rank);
    auto px = tiles.local(self);
    auto lb = labels.local(self);

    // Fold my tile into per-label partial records in global coordinates.
    std::unordered_map<std::uint32_t, ccseq::ComponentStats> by_label;
    for (std::uint32_t i = 0; i < q; ++i) {
      const std::uint32_t gi = layout.global_row(rank, i);
      for (std::uint32_t j = 0; j < r; ++j) {
        const std::size_t idx = static_cast<std::size_t>(i) * r + j;
        const std::uint32_t label = lb[idx];
        if (label == ccseq::kBackgroundLabel) continue;
        const std::uint32_t gj = layout.global_col(rank, j);
        auto& s = by_label[label];
        if (s.pixels == 0) {
          s.label = label;
          s.colour = px[idx];
          s.min_row = s.max_row = gi;
          s.min_col = s.max_col = gj;
        } else {
          s.min_row = std::min(s.min_row, gi);
          s.min_col = std::min(s.min_col, gj);
          s.max_row = std::max(s.max_row, gi);
          s.max_col = std::max(s.max_col, gj);
        }
        s.pixels += 1;
        s.sum_row += gi;
        s.sum_col += gj;
      }
    }
    auto& mine = partials.local(self);
    mine.clear();
    mine.reserve(by_label.size());
    for (const auto& [label, s] : by_label) mine.push_back(s);
    // Sort so the merged gather is deterministic regardless of hash order.
    sortutil::hybrid_sort_by(
        mine, [](const ccseq::ComponentStats& s) { return s.label; });
    partials.note_local_write(self);  // race-ledger epoch annotation
    self.charge_ops(2 * layout.tile_size(rank));
    self.barrier();  // publish partials

    // Root collects every partial list circularly and merges by label.
    if (rank == 0) {
      std::vector<ccseq::ComponentStats> all;
      for (std::uint32_t loop = 0; loop < p; ++loop) {
        const std::uint32_t from = loop % p;
        const std::size_t count = partials.size_of(self, from);
        const std::size_t base = all.size();
        all.resize(base + count);
        partials.prefetch(self,
                          std::span<ccseq::ComponentStats>(all).subspan(
                              base, count),
                          from, 0, count);
      }
      self.sync();
      // Procedure 1 idiom: sort by label, fold equal-label runs.
      sortutil::hybrid_sort_by(
          all, [](const ccseq::ComponentStats& s) { return s.label; });
      for (const auto& s : all) {
        if (merged.empty() || merged.back().label != s.label) {
          merged.push_back(s);
        } else {
          merged.back().merge(s);
        }
      }
      self.charge_ops(3 * all.size());
    }
    self.barrier();
  });
  return merged;
}

std::vector<ccseq::ComponentStats> component_stats_parallel(
    splitc::Machine& machine, const img::GreyImage& image,
    const img::LabelImage& labels) {
  const img::TileLayout layout(image.height(), image.width(),
                               machine.nprocs());
  splitc::Spread<std::uint8_t> tiles(machine, layout.tile_sizes(),
                                     "stats_tiles");
  splitc::Spread<std::uint32_t> label_tiles(machine, layout.tile_sizes(),
                                            "stats_labels");
  layout.scatter(image, tiles);
  layout.scatter(labels, label_tiles);
  return component_stats_parallel(machine, layout, tiles, label_tiles);
}

}  // namespace histcc::cc
