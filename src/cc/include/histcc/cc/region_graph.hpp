#ifndef HISTCC_CC_REGION_GRAPH_HPP
#define HISTCC_CC_REGION_GRAPH_HPP

/// \file region_graph.hpp
/// Region adjacency graph (RAG) over a component labeling.
///
/// Object-recognition pipelines built on connected components (the DARPA
/// benchmarks the paper cites) next ask which recognized regions *touch*:
/// the RAG has one vertex per component and an edge wherever two
/// differently-labeled foreground pixels are adjacent.  The parallel
/// construction follows the library's stencil pattern: each processor
/// finds the edges incident to its tile (one halo exchange of the label
/// tiles supplies cross-tile adjacencies), locally dedupes, and the root
/// gathers and merges the per-processor edge lists with the radix-sort +
/// unique-scan idiom.  Tcomm = tau + 2(q+r)+4 label-words for the halo
/// plus tau + O(E) for the gather.

#include <vector>

#include "histcc/cc_seq/common.hpp"
#include "histcc/image/image.hpp"
#include "histcc/image/layout.hpp"
#include "histcc/splitc/machine.hpp"
#include "histcc/splitc/spread.hpp"

namespace histcc::cc {

/// An undirected adjacency between two components; a < b always.
struct RegionEdge {
  std::uint32_t a;
  std::uint32_t b;
  friend bool operator==(const RegionEdge&, const RegionEdge&) = default;
  friend auto operator<=>(const RegionEdge&, const RegionEdge&) = default;
};

/// Sequential RAG of a labeling: every unordered pair of distinct nonzero
/// labels with adjacent pixels, sorted ascending, no duplicates.
[[nodiscard]] std::vector<RegionEdge> region_adjacency(
    const img::LabelImage& labels,
    ccseq::Connectivity conn = ccseq::Connectivity::kEight);

/// Parallel RAG over distributed label tiles; result assembled on the
/// host, identical to the sequential version.  Collective.
[[nodiscard]] std::vector<RegionEdge> region_adjacency_parallel(
    splitc::Machine& machine, const img::TileLayout& layout,
    splitc::Spread<std::uint32_t>& labels,
    ccseq::Connectivity conn = ccseq::Connectivity::kEight);

/// Convenience wrapper over a host labeling.
[[nodiscard]] std::vector<RegionEdge> region_adjacency_parallel(
    splitc::Machine& machine, const img::LabelImage& labels,
    ccseq::Connectivity conn = ccseq::Connectivity::kEight);

}  // namespace histcc::cc

#endif  // HISTCC_CC_REGION_GRAPH_HPP
