#ifndef HISTCC_CC_BORDER_GRAPH_HPP
#define HISTCC_CC_BORDER_GRAPH_HPP

/// \file border_graph.hpp
/// The group manager's merge computation (Section 5.3).
///
/// The merge of two region labelings is converted into connected
/// components of a graph over the two border strips (one pixel line per
/// side).  Vertices are the coloured border pixels.  Two edge types:
///   1. after radix-sorting each side by label, consecutive same-label
///      pixels are chained ("edges strung linearly down the list"), so all
///      occurrences of one label form one graph component;
///   2. like-coloured pixels adjacent *across* the border are linked —
///      positions i <-> i for 4-connectivity, i <-> {i-1, i, i+1} for
///      8-connectivity.
/// Each vertex has at most five incident edges, exactly as the paper
/// argues.  A sequential BFS labels the graph; every component keeps its
/// minimum label (which preserves the library-wide canonical labeling),
/// and every other label in the component yields a change pair
/// (alpha -> beta).  Procedure 1 (radix sort by alpha + unique scan)
/// produces the sorted change array the clients consume.

#include <cstdint>
#include <span>
#include <vector>

#include "histcc/cc_seq/common.hpp"

namespace histcc::cc {

/// A label change: every border pixel labeled `alpha` must become `beta`
/// (beta < alpha always, since merges keep minimum labels).
struct ChangePair {
  std::uint32_t alpha;  ///< obsolete label
  std::uint32_t beta;   ///< replacement label
  friend bool operator==(const ChangePair&, const ChangePair&) = default;
};

/// One side of the border to be merged: pixel colours and current labels in
/// positional order along the border (top-to-bottom for a vertical border,
/// left-to-right for a horizontal one).
struct BorderSide {
  std::span<const std::uint8_t> pixels;
  std::span<const std::uint32_t> labels;
};

/// A pre-sorted permutation of one side: indices of the coloured pixels
/// ordered by label.  The shadow manager computes this for its side and
/// ships it to the group manager (Section 5.3); `sort_side_by_label` is
/// that computation.
[[nodiscard]] std::vector<std::uint32_t> sort_side_by_label(
    const BorderSide& side);

/// Build the border graph from the two sides and their label-sorted
/// permutations, run sequential BFS connected components on it, and return
/// the sorted unique change array (Procedure 1).  `lo` is the left/upper
/// side, `hi` the right/lower side; both must have equal length.
[[nodiscard]] std::vector<ChangePair> merge_border(
    const BorderSide& lo, std::span<const std::uint32_t> lo_sorted,
    const BorderSide& hi, std::span<const std::uint32_t> hi_sorted,
    ccseq::Connectivity conn, ccseq::ColourRule rule);

/// Convenience overload that sorts both sides itself (used when the shadow
/// manager optimization is disabled).
[[nodiscard]] std::vector<ChangePair> merge_border(
    const BorderSide& lo, const BorderSide& hi, ccseq::Connectivity conn,
    ccseq::ColourRule rule);

/// Binary-search `label` in the alpha-sorted `changes`; returns the
/// replacement, or `label` itself when unchanged.
[[nodiscard]] std::uint32_t apply_changes(
    std::span<const ChangePair> changes, std::uint32_t label) noexcept;

}  // namespace histcc::cc

#endif  // HISTCC_CC_BORDER_GRAPH_HPP
