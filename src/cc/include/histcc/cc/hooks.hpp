#ifndef HISTCC_CC_HOOKS_HPP
#define HISTCC_CC_HOOKS_HPP

/// \file hooks.hpp
/// Tile hooks and the paper's drastically-limited label updating.
///
/// The key novelty of the paper's connected-components algorithm is that
/// merge iterations never relabel tile interiors: each processor keeps one
/// *hook* per local component that touches its tile border — the
/// component's initial label plus the offset of one of its border pixels
/// (Procedure 2, Figure 5).  During the log p merges only border-pixel
/// labels are kept current (binary search over the change array); after
/// the final merge each hook whose border pixel now carries a different
/// label seeds one breadth-first relabeling of the component's stale
/// interior — the "total consistency update at the final step".

#include <cstdint>
#include <span>
#include <vector>

#include "histcc/cc/border_graph.hpp"
#include "histcc/cc_seq/common.hpp"

namespace histcc::cc {

/// One hook: a component's initial label and the tile offset of one of its
/// border pixels.
struct TileHook {
  std::uint32_t label;   ///< label the component had after initialization
  std::uint32_t offset;  ///< row-major tile offset of a border pixel of it
  friend bool operator==(const TileHook&, const TileHook&) = default;
};

/// Row-major offsets of every pixel on the boundary of a rows x cols tile
/// (each corner once).
[[nodiscard]] std::vector<std::uint32_t> tile_border_offsets(
    std::uint32_t rows, std::uint32_t cols);

/// Procedure 2: one hook per distinct label among the coloured border
/// pixels of the tile, sorted by label (radix sort + unique scan).
[[nodiscard]] std::vector<TileHook> make_tile_hooks(
    std::span<const std::uint8_t> pixels, std::span<const std::uint32_t> labels,
    std::span<const std::uint32_t> border_offsets);

/// Per-merge-iteration update: binary search each coloured border pixel's
/// label in the alpha-sorted change array and replace it.  O(B log C) for
/// B border pixels and C changes.
void update_border_labels(std::span<std::uint32_t> labels,
                          std::span<const std::uint8_t> pixels,
                          std::span<const std::uint32_t> border_offsets,
                          std::span<const ChangePair> changes);

/// Ablation variant: relabel *every* tile pixel against the change array —
/// what the paper's "drastically limited updating" avoids.  O(qr log C).
void update_all_labels(std::span<std::uint32_t> labels,
                       std::span<const std::uint8_t> pixels,
                       std::span<const ChangePair> changes);

/// Final total-consistency update: for every hook whose border pixel now
/// carries a label different from the hook's, BFS from that pixel through
/// the component (labels equal to either the stale or the new value),
/// rewriting to the new value.  `visited` is caller-provided scratch of at
/// least rows*cols bytes, zeroed on entry by this function.
void relabel_interior(std::span<std::uint32_t> labels, std::uint32_t rows,
                      std::uint32_t cols, std::span<const TileHook> hooks,
                      ccseq::Connectivity conn,
                      std::vector<std::uint8_t>& visited);

}  // namespace histcc::cc

#endif  // HISTCC_CC_HOOKS_HPP
