#ifndef HISTCC_CC_STATS_PARALLEL_HPP
#define HISTCC_CC_STATS_PARALLEL_HPP

/// \file stats_parallel.hpp
/// Parallel per-component object statistics.
///
/// The DARPA Image Understanding benchmarks the paper cites do not stop
/// at labeling — each recognized piece is measured (area, bounding box,
/// centroid).  This extension computes those measurements on the
/// distributed labeling the parallel CC algorithm produces: every
/// processor folds its tile into per-label partial records (in global
/// coordinates), the root collects the p partial lists with the circular
/// prefetch of Section 2, and merges them by label with the paper's
/// radix-sort + scan idiom.  Tcomm = tau + O(total partial records);
/// Tcomp = O(n^2/p + C log C) for C components.

#include <vector>

#include "histcc/cc_seq/analysis.hpp"
#include "histcc/image/layout.hpp"
#include "histcc/splitc/machine.hpp"
#include "histcc/splitc/spread.hpp"

namespace histcc::cc {

/// Statistics of every component of a distributed labeling, assembled on
/// the host, sorted by label.  `tiles` and `labels` must both match
/// `layout`.  Collective.
[[nodiscard]] std::vector<ccseq::ComponentStats> component_stats_parallel(
    splitc::Machine& machine, const img::TileLayout& layout,
    splitc::Spread<std::uint8_t>& tiles,
    splitc::Spread<std::uint32_t>& labels);

/// Convenience wrapper over host images (scatters, computes, returns).
[[nodiscard]] std::vector<ccseq::ComponentStats> component_stats_parallel(
    splitc::Machine& machine, const img::GreyImage& image,
    const img::LabelImage& labels);

}  // namespace histcc::cc

#endif  // HISTCC_CC_STATS_PARALLEL_HPP
