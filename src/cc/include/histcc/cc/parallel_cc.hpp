#ifndef HISTCC_CC_PARALLEL_CC_HPP
#define HISTCC_CC_PARALLEL_CC_HPP

/// \file parallel_cc.hpp
/// The paper's parallel connected-components algorithm (Sections 5 and 6).
///
/// Structure (binary and grey-level images share all of it; only the
/// colour rule differs):
///   1. *Initialization* (5.1): each processor labels its own q x r tile
///      with the sequential BFS labeler, using the globally unique initial
///      labels (I*q + i)*n + (J*r + j) + 1, and creates its tile hooks
///      (Procedure 2).
///   2. *log p merge iterations* (5.2-5.4), alternating horizontal and
///      vertical merges.  In each, the group manager (with its shadow
///      manager across the border) fetches the two border strips, sorts
///      them by label, solves the border-graph connected-components
///      problem, and publishes the sorted change array; every group member
///      then updates only its tile-border labels by binary search.
///   3. *Total consistency update*: after the last merge, each processor
///      relabels its stale interiors from its hooks.
///
/// The labeling returned is the library-wide canonical one (see
/// cc_seq/common.hpp), so it equals the sequential labelers' output
/// pixel-for-pixel — the test suite checks exactly that.
///
/// Options expose the paper's implementation choices as ablations:
/// shadow manager on/off, eq. (9) transpose-based change distribution vs
/// naive direct fetch, and limited (borders-only) vs full per-iteration
/// relabeling.

#include <cstdint>

#include "histcc/cc_seq/common.hpp"
#include "histcc/image/image.hpp"
#include "histcc/image/layout.hpp"
#include "histcc/splitc/machine.hpp"
#include "histcc/splitc/spread.hpp"

namespace histcc::cc {

/// Algorithm variants.  Defaults reproduce the paper's algorithm.
struct CcOptions {
  ccseq::Connectivity connectivity = ccseq::Connectivity::kEight;
  ccseq::ColourRule rule = ccseq::ColourRule::kBinary;
  /// Use the shadow manager to fetch/sort the far side of each border
  /// (Section 5.3).  Off: the group manager does both sides itself.
  bool use_shadow_manager = true;
  /// Distribute change arrays with the transpose-based scheme of eq. (9).
  /// Off: every client fetches the whole list from the manager directly
  /// (the paper's "not optimal for large p" variant of Section 5.4).
  bool eq9_distribution = true;
  /// Ablation of the paper's core novelty: relabel every tile pixel in
  /// every merge iteration instead of only border pixels + final update.
  bool full_relabel_each_phase = false;
};

/// Wall-clock phase split measured on processor 0 between barriers.
struct CcPhases {
  double init_s = 0;    ///< tile labeling + hook creation
  double border_s = 0;  ///< border packing, fetching, sorting (comm-heavy)
  double graph_s = 0;   ///< border-graph connected components + Procedure 1
  double update_s = 0;  ///< change distribution + border label updates
  double final_s = 0;   ///< total consistency update of interiors
  std::uint32_t merge_phases = 0;  ///< log p
};

/// Run the parallel algorithm over an already-distributed image, leaving
/// the labeling distributed in `labels` (one tile block per processor,
/// matching `layout`).  This is the primitive the other overloads wrap;
/// use it to keep a pipeline distributed (e.g. followed by
/// component_stats_parallel).  Collective: call from the host.
void connected_components_parallel(splitc::Machine& machine,
                                   const img::TileLayout& layout,
                                   splitc::Spread<std::uint8_t>& tiles,
                                   splitc::Spread<std::uint32_t>& labels,
                                   const CcOptions& options = {},
                                   CcPhases* phases = nullptr);

/// Run the parallel algorithm over an already-distributed image; returns
/// the assembled labeling.  Collective: call from the host.
[[nodiscard]] img::LabelImage connected_components_parallel(
    splitc::Machine& machine, const img::TileLayout& layout,
    splitc::Spread<std::uint8_t>& tiles, const CcOptions& options = {},
    CcPhases* phases = nullptr);

/// Convenience wrapper: distribute `image` over `machine` and label it.
[[nodiscard]] img::LabelImage connected_components_parallel(
    splitc::Machine& machine, const img::GreyImage& image,
    const CcOptions& options = {}, CcPhases* phases = nullptr);

}  // namespace histcc::cc

#endif  // HISTCC_CC_PARALLEL_CC_HPP
