#ifndef HISTCC_CC_MERGE_SCHEDULE_HPP
#define HISTCC_CC_MERGE_SCHEDULE_HPP

/// \file merge_schedule.hpp
/// Geometry of the log p merge iterations (Sections 5.2-5.3).
///
/// The algorithm alternates horizontal merges (combining regions across a
/// vertical border) and vertical merges (across a horizontal border),
/// starting horizontal: phase t odd is horizontal merge number (t+1)/2,
/// phase t even is vertical merge number t/2.  With w = 2^ceil(d/2) >=
/// v = 2^floor(d/2) this gives exactly log w horizontal and log v vertical
/// merges, as the paper requires.
///
/// Before horizontal merge h, regions are 2^(h-1) x 2^(h-1) processor
/// blocks; pairs of horizontally adjacent regions merge into
/// 2^(h-1) x 2^h groups.  Before vertical merge u, regions are
/// 2^(u-1) x 2^u; pairs merge into 2^u x 2^u groups.  A group at phase t
/// therefore contains 2^t processors — the group manager plus 2^t - 1
/// clients, matching Section 5.4.
///
/// The group manager is the processor adjacent to the border at its first
/// position (top of a vertical border / left end of a horizontal border)
/// on the lower-indexed side; the shadow manager is its neighbour directly
/// across the border (Section 5.3).
///
/// NOTE The extended abstract specifies manager positions as bit patterns
/// of the grid coordinates; the scanned text is ambiguous about which
/// pattern applies to rows vs columns at odd phases.  Our placement
/// satisfies every structural property the paper states (one manager per
/// group, adjacent to the border, shadow directly across) and reproduces
/// the Figure 4 example for t = 2.

#include <cstdint>
#include <vector>

#include "histcc/util/math.hpp"
#include "histcc/util/require.hpp"

namespace histcc::cc {

/// One of the log p merge iterations.
struct MergePhase {
  std::uint32_t t;            ///< 1-based phase index
  bool horizontal;            ///< true: merge across a vertical border
  std::uint32_t region_rows;  ///< region height before the merge, in procs
  std::uint32_t region_cols;  ///< region width before the merge, in procs
  std::uint32_t group_rows;   ///< merged-group height, in procs
  std::uint32_t group_cols;   ///< merged-group width, in procs
};

/// The full schedule for a v x w logical processor grid (log p phases).
[[nodiscard]] std::vector<MergePhase> merge_schedule(util::GridShape grid);

/// A processor's group in one merge phase.
struct GroupInfo {
  std::uint32_t row0;          ///< group origin row in the processor grid
  std::uint32_t col0;          ///< group origin column
  std::uint32_t rows;          ///< group extent in rows
  std::uint32_t cols;          ///< group extent in columns
  std::uint32_t manager;       ///< rank of the group manager
  std::uint32_t shadow;        ///< rank of the shadow manager
  bool horizontal;             ///< copied from the phase
  /// For a horizontal merge: the processor grid *column* owning the left
  /// side of the border (the right side is border_lo + 1).  For a vertical
  /// merge: the processor grid *row* owning the upper side.
  std::uint32_t border_lo;
  /// Processors per border side (group rows for horizontal merges, group
  /// columns for vertical ones).
  std::uint32_t side_procs;
};

/// Group of processor (grid_row, grid_col) during `phase` on grid `grid`.
[[nodiscard]] GroupInfo group_of(const MergePhase& phase,
                                 util::GridShape grid, std::uint32_t grid_row,
                                 std::uint32_t grid_col);

/// Ranks of every member of `group` on `grid`, row-major.
[[nodiscard]] std::vector<std::uint32_t> group_members(const GroupInfo& group,
                                                       util::GridShape grid);

}  // namespace histcc::cc

#endif  // HISTCC_CC_MERGE_SCHEDULE_HPP
