#ifndef HISTCC_CC_LABEL_PROP_HPP
#define HISTCC_CC_LABEL_PROP_HPP

/// \file label_prop.hpp
/// Baseline: iterative halo-exchange label propagation.
///
/// This is the classic data-parallel connected-components scheme many of
/// the Table 2 entries use (Shiloach-Vishkin-style min-label propagation,
/// adapted to tiles): each processor labels its tile locally, then rounds
/// of boundary exchange propagate the minimum label of each component
/// across tile borders until a global fixpoint.  The number of rounds is
/// the eccentricity of the component adjacency across tiles — O(v + w)
/// for images like the dual spiral — versus the paper's fixed log p merge
/// iterations.  The benchmark harness uses it as the "who wins and why"
/// comparison.
///
/// Produces the same canonical labeling as every other labeler here.

#include <cstdint>

#include "histcc/cc_seq/common.hpp"
#include "histcc/image/image.hpp"
#include "histcc/image/layout.hpp"
#include "histcc/splitc/machine.hpp"
#include "histcc/splitc/spread.hpp"

namespace histcc::cc {

/// Statistics of one propagation run.
struct LabelPropStats {
  std::uint32_t rounds = 0;  ///< halo-exchange rounds until fixpoint
};

/// Label an already-distributed image by iterative label propagation.
/// Collective: call from the host.
[[nodiscard]] img::LabelImage connected_components_label_prop(
    splitc::Machine& machine, const img::TileLayout& layout,
    splitc::Spread<std::uint8_t>& tiles,
    ccseq::Connectivity conn = ccseq::Connectivity::kEight,
    ccseq::ColourRule rule = ccseq::ColourRule::kBinary,
    LabelPropStats* stats = nullptr);

/// Convenience wrapper over a host image.
[[nodiscard]] img::LabelImage connected_components_label_prop(
    splitc::Machine& machine, const img::GreyImage& image,
    ccseq::Connectivity conn = ccseq::Connectivity::kEight,
    ccseq::ColourRule rule = ccseq::ColourRule::kBinary,
    LabelPropStats* stats = nullptr);

}  // namespace histcc::cc

#endif  // HISTCC_CC_LABEL_PROP_HPP
