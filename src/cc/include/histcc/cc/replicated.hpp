#ifndef HISTCC_CC_REPLICATED_HPP
#define HISTCC_CC_REPLICATED_HPP

/// \file replicated.hpp
/// Baseline: the "complete image per PE" divide-and-conquer variant that
/// Table 2 quotes from Choudhary & Thakur.  The whole image is broadcast
/// to every processor (Algorithm 2 over n^2 pixels), each processor
/// labels the complete image sequentially, and processor 0's labeling is
/// the answer.  No merge phase is needed — and no speedup is possible:
/// Tcomp = O(n^2) regardless of p, and Tcomm = 2(tau + n^2 - n^2/p).
/// Included so the benchmark harness can show where the paper's
/// partitioned-input algorithm overtakes it (it always does for p >= 2
/// once the broadcast is amortized — exactly the paper's argument).

#include "histcc/cc_seq/common.hpp"
#include "histcc/image/image.hpp"
#include "histcc/splitc/machine.hpp"

namespace histcc::cc {

/// Label `image` with the replicated baseline.  Produces the canonical
/// labeling, like every labeler in this library.  Collective.
[[nodiscard]] img::LabelImage connected_components_replicated(
    splitc::Machine& machine, const img::GreyImage& image,
    ccseq::Connectivity conn = ccseq::Connectivity::kEight,
    ccseq::ColourRule rule = ccseq::ColourRule::kBinary);

}  // namespace histcc::cc

#endif  // HISTCC_CC_REPLICATED_HPP
