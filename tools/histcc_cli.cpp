// histcc — command-line driver for the library.
//
//   histcc generate  --kind <pattern>   --n 512 [--seed S] [--occ 0.6]
//                    [--beta 0.4] [--k 256] --out image.pgm
//   histcc histogram --in image.pgm     --k 256 --p 16 [--phases]
//   histcc components --in image.pgm    --p 16 [--conn 8] [--rule grey]
//                    [--algo merge|prop|replicated] [--stats]
//                    [--labels out.ppm]
//   histcc equalize  --in image.pgm     --k 256 --p 16 --out equalized.pgm
//   histcc morph     --in image.pgm     --op erode|dilate|open|close
//                    [--p 16] [--se 8] --out cleaned.pgm
//   histcc info      --in image.pgm
//
// `--kind` is one of the nine catalog names (horizontal-bars,
// vertical-bars, forward-diagonal, backward-diagonal, cross, disc,
// concentric-circles, four-squares, dual-spiral) or darpa, percolation,
// ising, random, banded.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>

#include "histcc/histcc.hpp"

namespace {

using namespace histcc;

/// Tiny --flag value parser: every option is `--name value` except the
/// boolean switches listed in kSwitches.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "histcc: unexpected argument '%s'\n",
                     key.c_str());
        std::exit(2);
      }
      key = key.substr(2);
      if (is_switch(key)) {
        // std::string(1, '1') rather than = "1": the const char* assignment
        // path trips GCC 12's -Wrestrict false positive (PR105329).
        values_[key] = std::string(1, '1');
      } else if (i + 1 < argc) {
        values_[key] = argv[++i];
      } else {
        std::fprintf(stderr, "histcc: option --%s needs a value\n",
                     key.c_str());
        std::exit(2);
      }
    }
  }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::string require(const std::string& key) const {
    const auto v = get(key);
    if (!v) {
      std::fprintf(stderr, "histcc: missing required option --%s\n",
                   key.c_str());
      std::exit(2);
    }
    return *v;
  }

  [[nodiscard]] std::uint32_t get_u32(const std::string& key,
                                      std::uint32_t fallback) const {
    const auto v = get(key);
    return v ? static_cast<std::uint32_t>(std::strtoul(v->c_str(), nullptr, 10))
             : fallback;
  }

  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    const auto v = get(key);
    return v ? std::strtod(v->c_str(), nullptr) : fallback;
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.contains(key);
  }

 private:
  static bool is_switch(const std::string& key) {
    return key == "phases" || key == "stats";
  }
  std::map<std::string, std::string> values_;
};

img::GreyImage generate_image(const std::string& kind, const Args& args) {
  const std::uint32_t n = args.get_u32("n", 512);
  const std::uint64_t seed = args.get_u32("seed", 42);
  for (int id = 1; id <= img::kNumTestPatterns; ++id) {
    const auto pattern = static_cast<img::TestPattern>(id);
    if (kind == img::pattern_name(pattern)) {
      return img::make_test_pattern(pattern, n);
    }
  }
  if (kind == "darpa") return img::make_darpa_like(n, seed);
  if (kind == "percolation") {
    return img::make_percolation(n, args.get_double("occ", 0.6), seed);
  }
  if (kind == "ising") {
    return img::make_ising(n, args.get_double("beta", 0.4407), 5, seed);
  }
  if (kind == "random") {
    return img::make_random_grey(n, args.get_u32("k", 256), seed);
  }
  if (kind == "banded") {
    return img::make_banded_grey(n, args.get_u32("k", 256));
  }
  std::fprintf(stderr, "histcc: unknown image kind '%s'\n", kind.c_str());
  std::exit(2);
}

img::GreyImage load_input(const Args& args) {
  if (const auto kind = args.get("kind")) {
    return generate_image(*kind, args);
  }
  return img::read_pgm_file(args.require("in"));
}

/// Honour the HISTCC_TRACE environment variable (docs/tracing.md) on
/// every machine the CLI builds: HISTCC_TRACE=out.json writes a
/// Chrome/Perfetto trace at exit, any other truthy value prints the
/// per-phase report to stderr, unset/off attaches nothing.
void attach_env_trace(splitc::Machine& machine) {
  machine.set_trace(trace::env_tracer());
}

int cmd_generate(const Args& args) {
  const auto image = generate_image(args.require("kind"), args);
  img::write_pgm_file(args.require("out"), image);
  std::printf("wrote %ux%u image to %s\n", image.height(), image.width(),
              args.require("out").c_str());
  return 0;
}

int cmd_histogram(const Args& args) {
  const auto image = load_input(args);
  const std::uint32_t k = args.get_u32("k", 256);
  const std::uint32_t p = args.get_u32("p", 16);
  splitc::Machine machine(p);
  attach_env_trace(machine);
  hist::HistPhases phases;
  const auto counts = hist::histogram_parallel(machine, image, k, &phases);
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  std::printf("histogram of %ux%u image, k=%u, p=%u (%llu pixels)\n",
              image.height(), image.width(), k, p,
              static_cast<unsigned long long>(total));
  for (std::uint32_t g = 0; g < k; ++g) {
    if (counts[g] != 0) std::printf("%4u %u\n", g, counts[g]);
  }
  if (args.has("phases")) {
    std::printf("phases: tally %.3fms transpose %.3fms combine %.3fms "
                "gather %.3fms\n",
                phases.tally_s * 1e3, phases.transpose_s * 1e3,
                phases.combine_s * 1e3, phases.gather_s * 1e3);
  }
  return 0;
}

int cmd_components(const Args& args) {
  const auto image = load_input(args);
  const std::uint32_t p = args.get_u32("p", 16);
  const auto conn = args.get_u32("conn", 8) == 4 ? ccseq::Connectivity::kFour
                                                 : ccseq::Connectivity::kEight;
  const auto rule = args.get("rule").value_or("binary") == std::string("grey")
                        ? ccseq::ColourRule::kSameColour
                        : ccseq::ColourRule::kBinary;
  const auto algo = args.get("algo").value_or("merge");

  splitc::Machine machine(p);
  attach_env_trace(machine);
  util::Timer timer;
  img::LabelImage labels;
  if (algo == "merge") {
    cc::CcOptions options;
    options.connectivity = conn;
    options.rule = rule;
    labels = cc::connected_components_parallel(machine, image, options);
  } else if (algo == "prop") {
    cc::LabelPropStats lp;
    labels = cc::connected_components_label_prop(machine, image, conn, rule,
                                                 &lp);
    std::printf("label propagation converged in %u rounds\n", lp.rounds);
  } else if (algo == "replicated") {
    labels = cc::connected_components_replicated(machine, image, conn, rule);
  } else if (algo == "omp") {
    labels = omp::connected_components_omp(image, conn, rule);
  } else {
    std::fprintf(stderr, "histcc: unknown --algo '%s'\n", algo.c_str());
    return 2;
  }
  const double wall = timer.seconds();

  const auto sizes = ccseq::component_sizes(labels);
  std::printf("%zu components in %.2f ms (p=%u, %s, %u-connectivity)\n",
              sizes.size(), wall * 1e3, p,
              rule == ccseq::ColourRule::kSameColour ? "grey" : "binary",
              conn == ccseq::Connectivity::kFour ? 4 : 8);
  const auto stats = machine.max_stats();
  std::printf("BDM ledger (max/proc): %llu words, %llu batches, %llu "
              "barriers\n",
              static_cast<unsigned long long>(stats.words),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.barriers));

  if (args.has("stats")) {
    auto object_stats = cc::component_stats_parallel(machine, image, labels);
    std::sort(object_stats.begin(), object_stats.end(),
              [](const ccseq::ComponentStats& a,
                 const ccseq::ComponentStats& b) { return a.pixels > b.pixels; });
    std::printf("%-8s %-6s %-9s %-22s %-16s\n", "label", "grey", "area",
                "bbox", "centroid");
    for (std::size_t i = 0; i < object_stats.size() && i < 20; ++i) {
      const auto& s = object_stats[i];
      std::printf("%-8u %-6u %-9llu (%u,%u)-(%u,%u) (%.1f,%.1f)\n", s.label,
                  s.colour, static_cast<unsigned long long>(s.pixels),
                  s.min_row, s.min_col, s.max_row, s.max_col,
                  s.centroid_row(), s.centroid_col());
    }
  }
  if (const auto out = args.get("labels")) {
    img::write_label_ppm_file(*out, labels);
    std::printf("wrote false-colour labeling to %s\n", out->c_str());
  }
  return 0;
}

int cmd_equalize(const Args& args) {
  const auto image = load_input(args);
  const std::uint32_t k = args.get_u32("k", 256);
  const std::uint32_t p = args.get_u32("p", 16);
  splitc::Machine machine(p);
  attach_env_trace(machine);
  const img::TileLayout layout(image.height(), image.width(), p);
  splitc::Spread<std::uint8_t> tiles(machine, layout.tile_sizes());
  layout.scatter(image, tiles);
  hist::equalize_parallel(machine, layout, tiles, k);
  img::write_pgm_file(args.require("out"), layout.gather(tiles));
  std::printf("equalized (k=%u, p=%u) -> %s\n", k, p,
              args.require("out").c_str());
  return 0;
}

int cmd_morph(const Args& args) {
  const auto image = load_input(args);
  const auto op = args.require("op");
  const std::uint32_t p = args.get_u32("p", 16);
  const auto element = args.get_u32("se", 8) == 4
                           ? morph::Structuring::kCross
                           : morph::Structuring::kSquare;
  img::GreyImage result;
  if (op == "open") {
    result = morph::open(image, element);
  } else if (op == "close") {
    result = morph::close(image, element);
  } else if (op == "erode" || op == "dilate") {
    // Single-step operations run on the virtual machine.
    splitc::Machine machine(p);
    attach_env_trace(machine);
    const img::TileLayout layout(image.height(), image.width(), p);
    splitc::Spread<std::uint8_t> tiles(machine, layout.tile_sizes());
    splitc::Spread<std::uint8_t> out(machine, layout.tile_sizes());
    layout.scatter(image, tiles);
    if (op == "erode") {
      morph::erode_parallel(machine, layout, tiles, out, element);
    } else {
      morph::dilate_parallel(machine, layout, tiles, out, element);
    }
    result = layout.gather(out);
  } else {
    std::fprintf(stderr, "histcc: unknown --op '%s'\n", op.c_str());
    return 2;
  }
  img::write_pgm_file(args.require("out"), result);
  std::size_t fg = 0;
  for (const auto px : result.pixels()) fg += px != 0;
  std::printf("%s (3x3 %s) -> %s (%zu foreground px)\n", op.c_str(),
              element == morph::Structuring::kCross ? "cross" : "square",
              args.require("out").c_str(), fg);
  return 0;
}

int cmd_info(const Args& args) {
  const auto image = load_input(args);
  const auto counts = hist::histogram_seq(image, 256);
  std::uint32_t used = 0, max_level = 0;
  std::uint64_t foreground = 0;
  for (std::uint32_t g = 0; g < 256; ++g) {
    if (counts[g] != 0) {
      ++used;
      max_level = g;
      if (g > 0) foreground += counts[g];
    }
  }
  std::printf("%ux%u image: %u grey levels used (max %u), %llu foreground "
              "pixels (%.1f%%)\n",
              image.height(), image.width(), used, max_level,
              static_cast<unsigned long long>(foreground),
              100.0 * static_cast<double>(foreground) /
                  static_cast<double>(image.size()));
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: histcc "
               "<generate|histogram|components|equalize|morph|info> "
               "[--opt value ...]\n"
               "see the header of tools/histcc_cli.cpp for the full list\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  const Args args(argc, argv, 2);
  try {
    if (command == "generate") return cmd_generate(args);
    if (command == "histogram") return cmd_histogram(args);
    if (command == "components") return cmd_components(args);
    if (command == "equalize") return cmd_equalize(args);
    if (command == "morph") return cmd_morph(args);
    if (command == "info") return cmd_info(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "histcc: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
