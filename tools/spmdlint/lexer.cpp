/// \file lexer.cpp
/// Tokenizer behind spmdlint.  Deliberately smaller than a real C++ lexer:
/// it only has to be exact about the things the rules key on — comments
/// (suppressions live there), string literals (array names, and so that
/// code-looking text inside strings is never analyzed), `#pragma omp
/// parallel` directives, and identifier/punctuation boundaries.  Notable
/// simplifications, all deliberate:
///   * `>>` lexes as two `>` tokens so template argument lists close
///     without a parser (no rule cares about shift expressions);
///   * all other preprocessor lines are skipped (continuations honoured);
///   * raw strings support the R"delim(...)delim" form only.

#include <cctype>

#include "spmdlint.hpp"

namespace spmdlint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character punctuators the scanner wants as single tokens.  `>>`
/// is intentionally absent (see file comment); `>=` never appears inside
/// a template argument list the rules inspect.
const char* const kPuncts2[] = {"::", "->", "++", "--", "&&", "||", "==",
                                "!=", "<=", ">=", "+=", "-=", "*=", "/=",
                                "%=", "&=", "|=", "^=", "<<"};

}  // namespace

LexedFile lex(std::string path, const std::string& content) {
  LexedFile out;
  out.path = std::move(path);
  const std::size_t n = content.size();
  std::size_t i = 0;
  int line = 1;
  bool line_has_code = false;  // a token already emitted on this line

  auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
      if (content[i] == '\n') {
        ++line;
        line_has_code = false;
      }
    }
  };
  auto push = [&](TokKind kind, std::string text, int at) {
    out.tokens.push_back(Token{kind, std::move(text), at});
    line_has_code = true;
  };

  while (i < n) {
    const char c = content[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
        c == '\v') {
      advance(1);
      continue;
    }

    // Line comment.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      const int at = line;
      const bool trailing = line_has_code;
      std::size_t j = i + 2;
      while (j < n && content[j] != '\n') ++j;
      out.comments.push_back(
          Comment{content.substr(i + 2, j - i - 2), at, trailing});
      advance(j - i);
      continue;
    }

    // Block comment.
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      const int at = line;
      const bool trailing = line_has_code;
      std::size_t j = i + 2;
      while (j + 1 < n && !(content[j] == '*' && content[j + 1] == '/')) ++j;
      const std::size_t end = (j + 1 < n) ? j + 2 : n;
      out.comments.push_back(
          Comment{content.substr(i + 2, j - i - 2), at, trailing});
      advance(end - i);
      continue;
    }

    // Preprocessor directive: only the start-of-line `#` counts.
    if (c == '#' && !line_has_code) {
      const int at = line;
      std::size_t j = i;
      std::string directive;
      while (j < n) {
        if (content[j] == '\\' && j + 1 < n && content[j + 1] == '\n') {
          directive += ' ';
          j += 2;
          continue;
        }
        if (content[j] == '\n') break;
        directive += content[j];
        ++j;
      }
      // Normalize interior whitespace for matching.
      std::string squeezed;
      for (char dc : directive) {
        if (dc == '\t') dc = ' ';
        if (dc == ' ' && !squeezed.empty() && squeezed.back() == ' ') continue;
        squeezed += dc;
      }
      if (squeezed.rfind("# pragma omp parallel", 0) == 0 ||
          squeezed.rfind("#pragma omp parallel", 0) == 0) {
        push(TokKind::kPragmaOmpParallel, squeezed, at);
        line_has_code = false;  // the pragma is not code on its line
      }
      advance(j - i);
      continue;
    }

    // Raw string literal (R"delim(...)delim").
    if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && content[j] != '(') delim += content[j++];
      const std::string close = ")" + delim + "\"";
      const std::size_t at_pos = content.find(close, j);
      const std::size_t end = at_pos == std::string::npos ? n : at_pos + close.size();
      push(TokKind::kString, content.substr(i, end - i), line);
      advance(end - i);
      continue;
    }

    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int at = line;
      std::size_t j = i + 1;
      while (j < n && content[j] != quote) {
        if (content[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      const std::size_t end = j < n ? j + 1 : n;
      push(quote == '"' ? TokKind::kString : TokKind::kChar,
           content.substr(i, end - i), at);
      advance(end - i);
      continue;
    }

    // Identifier / keyword.
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(content[j])) ++j;
      push(TokKind::kIdent, content.substr(i, j - i), line);
      advance(j - i);
      continue;
    }

    // Number (we never inspect the value; pp-number-ish scan).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(content[i + 1])))) {
      std::size_t j = i + 1;
      while (j < n && (ident_char(content[j]) || content[j] == '.' ||
                       content[j] == '\'' ||
                       ((content[j] == '+' || content[j] == '-') &&
                        (content[j - 1] == 'e' || content[j - 1] == 'E' ||
                         content[j - 1] == 'p' || content[j - 1] == 'P')))) {
        ++j;
      }
      push(TokKind::kNumber, content.substr(i, j - i), line);
      advance(j - i);
      continue;
    }

    // Punctuation: longest match among the two-char set, else one char.
    bool matched = false;
    for (const char* p2 : kPuncts2) {
      if (c == p2[0] && i + 1 < n && content[i + 1] == p2[1]) {
        push(TokKind::kPunct, p2, line);
        advance(2);
        matched = true;
        break;
      }
    }
    if (matched) continue;
    push(TokKind::kPunct, std::string(1, c), line);
    advance(1);
  }
  return out;
}

}  // namespace spmdlint
