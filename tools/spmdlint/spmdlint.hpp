#ifndef HISTCC_TOOLS_SPMDLINT_HPP
#define HISTCC_TOOLS_SPMDLINT_HPP

/// \file spmdlint.hpp
/// A dependency-free static analyzer for the repo's SPMD barrier/collective
/// discipline (docs/spmdlint.md).
///
/// The runtime race ledger (docs/analysis.md) verifies the barrier-epoch
/// publication protocol on *executed* schedules; spmdlint checks the same
/// discipline *lexically*, on every machine tier-1 runs on, with no
/// libclang/clang-tidy dependency: a hand-rolled C++ lexer plus a
/// brace/control-flow scanner, in the spirit of MPI collective-matching
/// verifiers (MPI-Checker, Droste et al.).  It is a lint, not a proof:
/// each rule is a lexical approximation with documented blind spots, and
/// every rule is individually suppressible with
///   `// spmdlint: allow(<rule>) -- <reason>`.

#include <cstddef>
#include <string>
#include <vector>

namespace spmdlint {

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

enum class Rule {
  kBarrierDivergence,  ///< R1: barrier/collective under rank-dependent flow
  kNoteLocalWrite,     ///< R2: local spread write without epoch annotation
  kNamedSpread,        ///< R3: Spread/SpreadVec constructed without a name
  kOmpEpochHooks,      ///< R4: omp parallel region without epoch_check hooks
  kStaleSuppression,   ///< R5: allow() comment that suppresses nothing
};

inline constexpr std::size_t kNumRules = 5;

/// Stable rule identifier used in allow() comments, baseline entries, and
/// the JSON report.
const char* rule_name(Rule rule);

/// One-line description (for --list-rules and diagnostics).
const char* rule_doc(Rule rule);

/// Parse a rule name; returns false if unknown.
bool rule_from_name(const std::string& name, Rule* out);

// ---------------------------------------------------------------------------
// Tokens
// ---------------------------------------------------------------------------

enum class TokKind {
  kIdent,
  kNumber,
  kString,
  kChar,
  kPunct,
  kPragmaOmpParallel,  ///< one token per `#pragma omp parallel` directive
};

struct Token {
  TokKind kind;
  std::string text;  ///< for pragmas: the full directive text
  int line;
};

struct Comment {
  std::string text;  ///< without the // or /* */ delimiters
  int line;          ///< line the comment starts on
  bool trailing;     ///< code precedes it on the same line
};

/// Lexed view of one translation unit.  Comments and preprocessor
/// directives are kept out of `tokens` (except omp-parallel pragmas, which
/// become kPragmaOmpParallel markers in stream order).
struct LexedFile {
  std::string path;  ///< as reported in diagnostics (root-relative)
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Lex `content`; never fails (unterminated constructs are closed at EOF).
LexedFile lex(std::string path, const std::string& content);

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

enum class Status {
  kActive,      ///< reported, fails the run
  kSuppressed,  ///< matched by an allow() comment
  kBaselined,   ///< matched by a baseline entry
};

struct Finding {
  Rule rule;
  std::string file;
  int line;
  std::string message;
  Status status = Status::kActive;
};

/// Severity is per-rule: R1 is an error (a divergent barrier deadlocks or
/// corrupts every epoch after it), the rest are warnings.  The exit status
/// does not distinguish: any active finding fails the run.
const char* severity(Rule rule);

/// Run all rules over one lexed file.  Suppression comments are applied
/// here (so stale-suppression can be computed per file); baseline matching
/// is the caller's job.  Appends to `out`.
void analyze(const LexedFile& file, std::vector<Finding>* out);

}  // namespace spmdlint

#endif  // HISTCC_TOOLS_SPMDLINT_HPP
