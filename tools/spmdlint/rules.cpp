/// \file rules.cpp
/// The five spmdlint rules, implemented over the token stream with a
/// brace/control-flow scope stack — no AST.  Each rule is a lexical
/// approximation; the blind spots are documented in docs/spmdlint.md and
/// the corpus under tests/lint_corpus/ pins both the hits and the
/// near-misses.

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "spmdlint.hpp"

namespace spmdlint {

// ---------------------------------------------------------------------------
// Rule metadata
// ---------------------------------------------------------------------------

const char* rule_name(Rule rule) {
  switch (rule) {
    case Rule::kBarrierDivergence: return "barrier-divergence";
    case Rule::kNoteLocalWrite: return "note-local-write";
    case Rule::kNamedSpread: return "named-spread";
    case Rule::kOmpEpochHooks: return "omp-epoch-hooks";
    case Rule::kStaleSuppression: return "stale-suppression";
  }
  return "?";
}

const char* rule_doc(Rule rule) {
  switch (rule) {
    case Rule::kBarrierDivergence:
      return "barrier()/bdm collective reached under rank-dependent control "
             "flow (divergent barrier sequence deadlocks the machine)";
    case Rule::kNoteLocalWrite:
      return "write through Spread/SpreadVec local() storage with no "
             "note_local_write in the same barrier-delimited region";
    case Rule::kNamedSpread:
      return "Spread/SpreadVec constructed without a debug name (race-ledger "
             "diagnostics identify arrays by name)";
    case Rule::kOmpEpochHooks:
      return "#pragma omp parallel region touches shared state but has no "
             "epoch_check hooks (note_write/note_read/epoch_barrier)";
    case Rule::kStaleSuppression:
      return "spmdlint allow() comment that is malformed or suppresses "
             "nothing";
  }
  return "?";
}

bool rule_from_name(const std::string& name, Rule* out) {
  for (std::size_t i = 0; i < kNumRules; ++i) {
    const Rule r = static_cast<Rule>(i);
    if (name == rule_name(r)) {
      *out = r;
      return true;
    }
  }
  return false;
}

const char* severity(Rule rule) {
  // A divergent barrier is a machine-wide deadlock or epoch corruption;
  // everything else degrades diagnostics rather than correctness.
  return rule == Rule::kBarrierDivergence ? "error" : "warning";
}

namespace {

// ---------------------------------------------------------------------------
// Vocabulary
// ---------------------------------------------------------------------------

/// Machine-wide collectives (every processor must call them): the bdm
/// primitives that contain internal barriers.  The group primitives
/// (scatter_group/allgather_group) are pull-only and deliberately absent.
const std::set<std::string>& collectives() {
  static const std::set<std::string> kSet = {
      "transpose",      "truncated_transpose",
      "broadcast",      "gather_to_root",
      "reduce_to_root", "allreduce",
      "exscan",         "all_to_all"};
  return kSet;
}

/// Identifiers whose value is rank-dependent by construction.
const std::set<std::string>& rank_roots() {
  static const std::set<std::string> kSet = {"rank", "grid_row", "grid_col"};
  return kSet;
}

/// Container methods that mutate a SpreadVec block through local().
const std::set<std::string>& mutating_methods() {
  static const std::set<std::string> kSet = {
      "resize",       "assign", "clear", "push_back",
      "emplace_back", "insert", "erase"};
  return kSet;
}

const std::set<std::string>& assign_ops() {
  static const std::set<std::string> kSet = {"=",  "+=", "-=", "*=", "/=",
                                             "%=", "&=", "|=", "^="};
  return kSet;
}

/// Epoch-checker hook spellings (histcc/omp/epoch_check.hpp).
const std::set<std::string>& epoch_hooks() {
  static const std::set<std::string> kSet = {"note_write", "note_read",
                                             "epoch_barrier",
                                             "advance_epoch_all"};
  return kSet;
}

/// Tokens that start (or continue) a type in a declaration.
const std::set<std::string>& typeish() {
  static const std::set<std::string> kSet = {
      "auto",      "const",     "constexpr", "static",  "unsigned",
      "signed",    "int",       "long",      "short",   "float",
      "double",    "bool",      "char",      "void",    "std",
      "size_t",    "ptrdiff_t", "int8_t",    "int16_t", "int32_t",
      "int64_t",   "uint8_t",   "uint16_t",  "uint32_t", "uint64_t",
      "uintptr_t", "intptr_t"};
  return kSet;
}

/// Identifiers that never make an omp region "touch shared state".
const std::set<std::string>& neutral_idents() {
  static const std::set<std::string> kSet = {
      "if",       "else",    "for",     "while",   "do",
      "switch",   "case",    "default", "return",  "break",
      "continue", "sizeof",  "true",    "false",   "nullptr",
      "this",     "new",     "delete",  "static_cast",
      "reinterpret_cast",    "const_cast",         "dynamic_cast",
      "omp_get_thread_num",  "omp_get_num_threads",
      "omp_get_max_threads", "omp_get_wtime"};
  return kSet;
}

bool is_neutral(const std::string& s) {
  return typeish().count(s) != 0 || neutral_idents().count(s) != 0;
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

using Tokens = std::vector<Token>;

bool is_punct(const Tokens& t, std::size_t i, const char* p) {
  return i < t.size() && t[i].kind == TokKind::kPunct && t[i].text == p;
}
bool is_ident(const Tokens& t, std::size_t i) {
  return i < t.size() && t[i].kind == TokKind::kIdent;
}
bool is_ident(const Tokens& t, std::size_t i, const char* name) {
  return is_ident(t, i) && t[i].text == name;
}

/// Index of the token matching the opener at `i` (t[i] must be `open`).
/// Returns t.size() when unbalanced.
std::size_t match_forward(const Tokens& t, std::size_t i, const char* open,
                          const char* close) {
  int depth = 0;
  for (std::size_t k = i; k < t.size(); ++k) {
    if (is_punct(t, k, open)) ++depth;
    if (is_punct(t, k, close)) {
      if (--depth == 0) return k;
    }
  }
  return t.size();
}

/// Match a template argument list opened by `<` at `i`.  The lexer emits
/// `>` one character at a time, so nesting balances; the 64-token cap
/// bails out of comparison expressions that merely look like one.
std::size_t match_template(const Tokens& t, std::size_t i) {
  int depth = 0;
  for (std::size_t k = i; k < t.size() && k < i + 64; ++k) {
    if (is_punct(t, k, "<")) ++depth;
    if (is_punct(t, k, ">")) {
      if (--depth == 0) return k;
    }
  }
  return t.size();
}

// ---------------------------------------------------------------------------
// Taint: identifiers assigned from rank-dependent expressions
// ---------------------------------------------------------------------------

/// One-level-per-round data-flow: `x = ...rank...` taints x, iterated to a
/// fixpoint so `is_manager = rank == m` then `go = is_manager && ...`
/// chains resolve.  Assignments through members (`a.b = ...`) are ignored.
std::set<std::string> compute_taint(const Tokens& t) {
  std::set<std::string> tainted;
  auto rank_dep = [&](const std::string& s) {
    return rank_roots().count(s) != 0 || tainted.count(s) != 0;
  };
  for (int round = 0; round < 8; ++round) {
    bool changed = false;
    for (std::size_t i = 1; i + 1 < t.size(); ++i) {
      if (!is_punct(t, i, "=")) continue;
      if (!is_ident(t, i - 1)) continue;
      if (i >= 2 && (is_punct(t, i - 2, ".") || is_punct(t, i - 2, "->"))) {
        continue;  // member write; base-object taint not tracked
      }
      const std::string& lhs = t[i - 1].text;
      if (tainted.count(lhs) != 0) continue;
      // RHS: to `;` or `,` at relative depth 0, or a closer that leaves
      // the expression.
      int depth = 0;
      for (std::size_t k = i + 1; k < t.size(); ++k) {
        if (t[k].kind == TokKind::kPunct) {
          const std::string& p = t[k].text;
          if (p == "(" || p == "[" || p == "{") ++depth;
          if (p == ")" || p == "]" || p == "}") {
            if (--depth < 0) break;
          }
          if (depth == 0 && (p == ";" || p == ",")) break;
        }
        if (is_ident(t, k) && rank_dep(t[k].text)) {
          tainted.insert(lhs);
          changed = true;
          break;
        }
      }
    }
    if (!changed) break;
  }
  return tainted;
}

// ---------------------------------------------------------------------------
// R4: omp parallel regions
// ---------------------------------------------------------------------------

using AddFn = std::function<void(Rule, int, std::string)>;

/// An omp parallel region "touches shared state" when it references any
/// identifier that is neither declared inside the region, nor a type/
/// keyword/omp-runtime name, nor a member name (`.x` / `->x`).  Calling a
/// helper function counts — the helper can reach anything.  Such regions
/// must carry at least one epoch_check hook.
void analyze_omp_region(const Tokens& t, int pragma_line, std::size_t begin,
                        std::size_t end, const AddFn& add) {
  std::set<std::string> declared;
  bool touches_shared = false;
  bool has_hooks = false;

  // Pass 1: declarations.  A statement starting with a type-ish token
  // declares the last plain identifier of its type/declarator chain —
  // good enough for the loop indices and locals these regions contain.
  bool stmt_start = true;
  for (std::size_t k = begin; k <= end && k < t.size(); ++k) {
    const Token& tok = t[k];
    if (tok.kind == TokKind::kPunct &&
        (tok.text == ";" || tok.text == "{" || tok.text == "}")) {
      stmt_start = true;
      continue;
    }
    // for-init clauses are statements too.
    if (tok.kind == TokKind::kIdent && tok.text == "for" &&
        is_punct(t, k + 1, "(")) {
      stmt_start = true;
      ++k;  // step onto `(`; the next token starts the init statement
      continue;
    }
    if (!stmt_start) continue;
    if (tok.kind != TokKind::kIdent || typeish().count(tok.text) == 0) {
      stmt_start = false;
      continue;
    }
    // Walk the type + declarator: idents, ::, <...>, *, &.
    std::size_t j = k;
    std::string last_ident;
    while (j <= end && j < t.size()) {
      const Token& d = t[j];
      if (d.kind == TokKind::kIdent) {
        last_ident = d.text;
        ++j;
        continue;
      }
      if (d.kind == TokKind::kPunct &&
          (d.text == "::" || d.text == "*" || d.text == "&")) {
        ++j;
        continue;
      }
      if (d.kind == TokKind::kPunct && d.text == "<") {
        j = match_template(t, j) + 1;
        continue;
      }
      break;
    }
    if (!last_ident.empty() && typeish().count(last_ident) == 0) {
      declared.insert(last_ident);
    }
    stmt_start = false;
    k = j > k ? j - 1 : k;
  }

  // Pass 2: shared references and hooks.
  for (std::size_t k = begin; k <= end && k < t.size(); ++k) {
    const Token& tok = t[k];
    if (tok.kind != TokKind::kIdent) continue;
    if (epoch_hooks().count(tok.text) != 0) {
      has_hooks = true;
      continue;
    }
    if (k > begin &&
        (is_punct(t, k - 1, ".") || is_punct(t, k - 1, "->") ||
         is_punct(t, k - 1, "::"))) {
      continue;  // member / qualified name, not an entity by itself
    }
    if (declared.count(tok.text) != 0 || is_neutral(tok.text)) continue;
    touches_shared = true;
  }

  if (touches_shared && !has_hooks) {
    add(Rule::kOmpEpochHooks, pragma_line,
        "omp parallel region references state declared outside it but has "
        "no epoch_check hooks (note_write/note_read/epoch_barrier); the "
        "epoch checker cannot audit this region");
  }
}

// ---------------------------------------------------------------------------
// Main scan: R1, R2, R3 (+ dispatch to R4)
// ---------------------------------------------------------------------------

struct Scope {
  bool rank_dep = false;  ///< control condition is rank-dependent
  bool is_if = false;     ///< participates in else-inheritance
  bool implicit = false;  ///< single-statement control body (no braces)
  bool is_callable = false;
  bool is_loop = false;    ///< for/while/do body: `continue` target
  bool is_switch = false;  ///< switch body: `break` target (with loops)
  int scope_id = 0;      ///< unique id, for bounding break/continue
  int callable_id = 0;   ///< innermost enclosing callable (self if callable)
  int saved_region = 0;  ///< for callables: the enclosing region to restore
  int header_line = 0;   ///< line of the controlling condition
};

struct Pending {
  bool active = false;
  bool rank_dep = false;
  bool is_if = false;
  bool is_loop = false;
  bool is_switch = false;
  int header_line = 0;
};

struct BarrierEvent {
  std::size_t tok;
  int callable_id;
};

struct EarlyExit {
  std::size_t tok;
  int line;
  int callable_id;
  int guard_line;
  /// For `break`/`continue`: id of the loop/switch scope the jump lands at
  /// the end of; 0 for `return` (bounded by the callable instead).  A
  /// barrier *after* that scope is crossed by every rank regardless of the
  /// jump, so only barriers inside the bound scope count as skipped.
  int bound_scope_id;
  std::string keyword;
};

struct Mutation {
  std::string spread;
  int region;
  int line;
};

/// Is `name(` at token i a *call* (not a function definition/declaration)?
/// Definitions are preceded by a type token (identifier, `>`, `*`, `&`);
/// calls by punctuation/keywords (`;`, `{`, `}`, `(`, `,`, `::`, `=`, ...).
bool looks_like_call(const Tokens& t, std::size_t i) {
  if (i == 0) return true;
  const Token& prev = t[i - 1];
  if (prev.kind == TokKind::kIdent) {
    return prev.text == "return" || prev.text == "co_return";
  }
  if (prev.kind == TokKind::kPunct) {
    return prev.text != ">" && prev.text != "*" && prev.text != "&";
  }
  return false;
}

void scan_file(const LexedFile& file, std::vector<Finding>* out) {
  const Tokens& t = file.tokens;
  const std::set<std::string> tainted = compute_taint(t);
  auto rank_dep_ident = [&](const std::string& s) {
    return rank_roots().count(s) != 0 || tainted.count(s) != 0;
  };

  AddFn add = [&](Rule rule, int line, std::string message) {
    out->push_back(
        Finding{rule, file.path, line, std::move(message), Status::kActive});
  };

  // ---- Spread variable set + R3 (named arrays) --------------------------
  std::set<std::string> spread_vars;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!is_ident(t, i) ||
        (t[i].text != "Spread" && t[i].text != "SpreadVec") ||
        !is_punct(t, i + 1, "<")) {
      continue;
    }
    const std::size_t close = match_template(t, i + 1);
    if (close >= t.size()) continue;
    std::size_t k = close + 1;
    // Reference/pointer declarators: `Spread<T>& name` binds, not constructs.
    bool ref = false;
    while (is_punct(t, k, "&") || is_punct(t, k, "*")) {
      ref = true;
      ++k;
    }
    if (!is_ident(t, k)) continue;
    const std::string& var = t[k].text;
    spread_vars.insert(var);
    if (ref || !is_punct(t, k + 1, "(")) continue;
    // Construction: require a string literal among the top-level args.
    const std::size_t args_close = match_forward(t, k + 1, "(", ")");
    bool named = false;
    for (std::size_t a = k + 2; a < args_close; ++a) {
      if (t[a].kind == TokKind::kString) {
        named = true;
        break;
      }
    }
    if (!named) {
      add(Rule::kNamedSpread, t[k].line,
          t[i].text + " `" + var +
              "` is constructed without a debug name; race-ledger "
              "diagnostics identify arrays by name");
    }
  }

  // ---- Structural walk --------------------------------------------------
  std::vector<Scope> scopes;
  Pending pending;
  bool else_pending = false;
  bool else_rank_dep = false;
  int else_line = 0;
  bool last_if_rank_dep = false;
  int last_if_line = 0;
  int callable_counter = 0;
  int scope_counter = 0;
  // Token index of a `{` that opens a TRACE_SPAN body (always the token
  // right after the macro's `)`, so a stale value can never collide).
  std::size_t trace_brace = 0;
  // Barrier-delimited region id.  Barriers/collectives start a fresh id;
  // entering a nested callable starts a fresh id and leaving it restores
  // the enclosing one, so an inline lambda (a sort comparator, say) does
  // not sever the region around it.
  int region = 0;
  int next_region = 0;
  std::vector<BarrierEvent> barriers;
  std::vector<EarlyExit> exits;
  std::map<int, std::size_t> callable_end;   // callable id -> closing tok
  std::map<int, std::size_t> scope_end;      // scope id -> closing tok
  std::map<std::string, std::string> alias;  // local-span var -> spread
  std::vector<Mutation> mutations;
  std::set<std::pair<std::string, int>> annotations;  // (spread, region)

  auto cur_callable = [&]() {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->is_callable) return it->callable_id;
    }
    return 0;
  };
  auto innermost_rank_guard = [&]() -> const Scope* {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->is_callable) break;  // do not look past the enclosing callable
      if (it->rank_dep) return &*it;
    }
    return nullptr;
  };
  auto pop_scope = [&](std::size_t tok_idx) {
    if (scopes.empty()) return;
    const Scope s = scopes.back();
    scopes.pop_back();
    scope_end[s.scope_id] = tok_idx;
    if (s.is_if) {
      last_if_rank_dep = s.rank_dep;
      last_if_line = s.header_line;
    }
    if (s.is_callable) {
      callable_end[s.callable_id] = tok_idx;
      region = s.saved_region;
    }
  };

  auto parse_condition = [&](std::size_t open_paren, std::size_t close) {
    for (std::size_t k = open_paren + 1; k < close; ++k) {
      if (is_ident(t, k) && rank_dep_ident(t[k].text)) return true;
    }
    return false;
  };

  // Does the `{` at token i open a callable body?  Directly after a
  // parameter list / lambda introducer, or after a trailing return type
  // (`) -> T {` with T built from identifiers, `::`, `<`/`>`, `*`, `&`).
  auto is_callable_brace = [&](std::size_t i) {
    if (i == 0) return false;
    if (is_punct(t, i - 1, ")") || is_punct(t, i - 1, "]")) return true;
    std::size_t j = i - 1;
    for (int steps = 0; j > 0 && steps < 24; ++steps, --j) {
      const Token& tk = t[j];
      if (tk.kind == TokKind::kIdent) continue;
      if (tk.kind == TokKind::kPunct &&
          (tk.text == "::" || tk.text == "<" || tk.text == ">" ||
           tk.text == "*" || tk.text == "&" || tk.text == ",")) {
        continue;
      }
      return tk.kind == TokKind::kPunct && tk.text == "->" && j > 0 &&
             is_punct(t, j - 1, ")");
    }
    return false;
  };

  // `break`/`continue` jump to the end of the innermost enclosing loop
  // (or switch, for break) — not out of the callable.
  auto jump_bound_scope = [&](bool is_break) {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->is_callable) break;
      if (it->is_loop || (is_break && it->is_switch)) return it->scope_id;
    }
    return 0;
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];

    // ---- omp parallel regions (R4) ------------------------------------
    if (tok.kind == TokKind::kPragmaOmpParallel) {
      std::size_t begin = i + 1;
      std::size_t end = begin;
      if (is_punct(t, begin, "{")) {
        end = match_forward(t, begin, "{", "}");
      } else {
        // Statement form (`parallel for` etc.): to the first `;` at depth
        // 0, or through the braced body if one opens first.
        int depth = 0;
        for (std::size_t k = begin; k < t.size(); ++k) {
          if (t[k].kind == TokKind::kPunct) {
            const std::string& p = t[k].text;
            if (p == "(" || p == "[") ++depth;
            if (p == ")" || p == "]") --depth;
            if (p == "{") {
              end = match_forward(t, k, "{", "}");
              break;
            }
            if (p == ";" && depth == 0) {
              end = k;
              break;
            }
          }
        }
      }
      analyze_omp_region(t, tok.line, begin, end, add);
      continue;  // the scope walk still sees the region's tokens normally
    }

    if (tok.kind != TokKind::kIdent && tok.kind != TokKind::kPunct) continue;

    // ---- control headers ----------------------------------------------
    if ((is_ident(t, i, "if") || is_ident(t, i, "for") ||
         is_ident(t, i, "while") || is_ident(t, i, "switch")) &&
        (is_punct(t, i + 1, "(") ||
         (is_ident(t, i, "if") && is_ident(t, i + 1, "constexpr") &&
          is_punct(t, i + 2, "(")))) {
      const std::size_t open = is_punct(t, i + 1, "(") ? i + 1 : i + 2;
      const std::size_t close = match_forward(t, open, "(", ")");
      bool dep = parse_condition(open, close);
      if (else_pending) {
        dep = dep || else_rank_dep;  // `else if` inherits divergence
        else_pending = false;
      }
      const bool loop = is_ident(t, i, "for") || is_ident(t, i, "while");
      pending = Pending{true,
                        dep,
                        t[i].text == "if",
                        loop,
                        t[i].text == "switch",
                        t[i].line};
      i = close;  // conditions are expressions; no barriers inside
      continue;
    }
    if (is_ident(t, i, "else")) {
      else_pending = true;
      else_rank_dep = last_if_rank_dep;
      else_line = last_if_line;
      continue;
    }
    if (is_ident(t, i, "do") && is_punct(t, i + 1, "{")) {
      pending = Pending{true, false, false, true, false, t[i].line};
      continue;
    }

    // ---- TRACE_* instrumentation macros (histcc/trace/trace.hpp) --------
    // TRACE_SCOPE(...) declares an RAII object and TRACE_SPAN(...) { ... }
    // wraps its block in an if-with-initializer; neither changes control
    // flow or rank-uniformity.  Skip the argument list without consuming a
    // `pending` control header (so `if (c) TRACE_SPAN(...) { ... }` still
    // attaches the brace as the control body), and remember where a
    // TRACE_SPAN body would open: that brace follows `)` and would
    // otherwise be misread as a lambda body, severing the barrier region
    // and hiding divergent barriers inside the span (R1 false negatives).
    if (tok.kind == TokKind::kIdent && tok.text.rfind("TRACE_", 0) == 0 &&
        is_punct(t, i + 1, "(")) {
      const std::size_t close = match_forward(t, i + 1, "(", ")");
      trace_brace = close + 1;
      i = close;
      continue;
    }

    // ---- braces / statement ends --------------------------------------
    if (is_punct(t, i, "{")) {
      Scope s;
      s.scope_id = ++scope_counter;
      s.callable_id = cur_callable();
      if (pending.active) {
        s.rank_dep = pending.rank_dep;
        s.is_if = pending.is_if;
        s.is_loop = pending.is_loop;
        s.is_switch = pending.is_switch;
        s.header_line = pending.header_line;
        pending = Pending{};
      } else if (else_pending) {
        s.rank_dep = else_rank_dep;
        s.header_line = else_line;
        else_pending = false;
      } else if (i == trace_brace) {
        // TRACE_SPAN body at statement level: a transparent block scope,
        // not a callable (see the TRACE_* handler above).
      } else if (is_callable_brace(i)) {
        // Function or lambda body: a new callable with its own regions.
        s.is_callable = true;
        s.callable_id = ++callable_counter;
        s.saved_region = region;
        region = ++next_region;
      }
      scopes.push_back(s);
      continue;
    }
    if (is_punct(t, i, "}")) {
      pop_scope(i);
      continue;
    }
    if (is_punct(t, i, ";")) {
      if (pending.active) pending = Pending{};  // `while (...);` etc.
      else_pending = false;
      while (!scopes.empty() && scopes.back().implicit) pop_scope(i);
      continue;
    }

    // A control header followed by a statement (no braces) opens an
    // implicit scope that the next `;` closes; the current token is then
    // processed as part of that statement.
    if (pending.active || else_pending) {
      Scope s;
      s.scope_id = ++scope_counter;
      s.callable_id = cur_callable();
      s.implicit = true;
      if (pending.active) {
        s.rank_dep = pending.rank_dep;
        s.is_if = pending.is_if;
        s.is_loop = pending.is_loop;
        s.is_switch = pending.is_switch;
        s.header_line = pending.header_line;
        pending = Pending{};
      } else {
        s.rank_dep = else_rank_dep;
        s.header_line = else_line;
        else_pending = false;
      }
      scopes.push_back(s);
      // fall through: the token itself still needs processing
    }

    // ---- early exits under rank guards (R1, deferred) ------------------
    if (is_ident(t, i, "return") || is_ident(t, i, "break") ||
        is_ident(t, i, "continue")) {
      if (const Scope* guard = innermost_rank_guard()) {
        const int bound = tok.text == "return"
                              ? 0
                              : jump_bound_scope(tok.text == "break");
        exits.push_back(EarlyExit{i, tok.line, cur_callable(),
                                  guard->header_line, bound, tok.text});
      }
      continue;
    }

    if (tok.kind != TokKind::kIdent) continue;

    // ---- barriers and collectives (R1 + region segmentation) -----------
    const bool is_barrier_call =
        tok.text == "barrier" && is_punct(t, i + 1, "(") && i > 0 &&
        (is_punct(t, i - 1, ".") || is_punct(t, i - 1, "->"));
    const bool is_collective_call = collectives().count(tok.text) != 0 &&
                                    is_punct(t, i + 1, "(") &&
                                    looks_like_call(t, i);
    if (is_barrier_call || is_collective_call) {
      if (const Scope* guard = innermost_rank_guard()) {
        add(Rule::kBarrierDivergence, tok.line,
            (is_barrier_call ? std::string("barrier()")
                             : "collective `" + tok.text + "`") +
                " is lexically inside rank-dependent control flow "
                "(condition at line " +
                std::to_string(guard->header_line) +
                "); every processor must cross the same barrier sequence");
      }
      barriers.push_back(BarrierEvent{i, cur_callable()});
      region = ++next_region;
      continue;
    }

    // ---- local() aliases, mutations, annotations (R2) -------------------
    if (tok.text == "local" && i >= 2 && is_punct(t, i - 1, ".") &&
        is_ident(t, i - 2) && spread_vars.count(t[i - 2].text) != 0 &&
        is_punct(t, i + 1, "(")) {
      const std::string& spread = t[i - 2].text;
      // Binding: `auto& v = S.local(self)`.
      if (i >= 4 && is_punct(t, i - 3, "=") && is_ident(t, i - 4)) {
        alias[t[i - 4].text] = spread;
      }
      // Direct use: S.local(self)[...] op=, S.local(self) = ..., or
      // S.local(self).mutator(...).
      const std::size_t close = match_forward(t, i + 1, "(", ")");
      std::size_t k = close + 1;
      if (is_punct(t, k, "[")) {
        k = match_forward(t, k, "[", "]") + 1;
        if (k < t.size() && t[k].kind == TokKind::kPunct &&
            (assign_ops().count(t[k].text) != 0 || t[k].text == "++" ||
             t[k].text == "--")) {
          mutations.push_back(Mutation{spread, region, tok.line});
        }
      } else if (k < t.size() && t[k].kind == TokKind::kPunct &&
                 assign_ops().count(t[k].text) != 0) {
        mutations.push_back(Mutation{spread, region, tok.line});
      } else if (is_punct(t, k, ".") && is_ident(t, k + 1) &&
                 mutating_methods().count(t[k + 1].text) != 0) {
        mutations.push_back(Mutation{spread, region, tok.line});
      }
      i = close;
      continue;
    }
    if (tok.text == "note_local_write" && i >= 2 && is_punct(t, i - 1, ".") &&
        is_ident(t, i - 2)) {
      annotations.insert({t[i - 2].text, region});
      continue;
    }
    // Mutation through an alias of S.local(self).
    const auto alias_it = alias.find(tok.text);
    if (alias_it != alias.end() &&
        !(i > 0 && (is_punct(t, i - 1, ".") || is_punct(t, i - 1, "->") ||
                    is_punct(t, i - 1, "::")))) {
      const std::string& spread = alias_it->second;
      std::size_t k = i + 1;
      const bool prefix_incdec =
          i > 0 && (is_punct(t, i - 1, "++") || is_punct(t, i - 1, "--"));
      if (is_punct(t, k, "[")) {
        k = match_forward(t, k, "[", "]") + 1;
        if (prefix_incdec ||
            (k < t.size() && t[k].kind == TokKind::kPunct &&
             (assign_ops().count(t[k].text) != 0 || t[k].text == "++" ||
              t[k].text == "--"))) {
          mutations.push_back(Mutation{spread, region, tok.line});
        }
      } else if (is_punct(t, k, ".") && is_ident(t, k + 1) &&
                 mutating_methods().count(t[k + 1].text) != 0) {
        mutations.push_back(Mutation{spread, region, tok.line});
      } else if (k < t.size() && t[k].kind == TokKind::kPunct &&
                 assign_ops().count(t[k].text) != 0 && t[k].text != "=") {
        // Compound assignment writes through the span; a plain `=` on the
        // alias itself rebinds it (handled at the local() site above).
        mutations.push_back(Mutation{spread, region, tok.line});
      }
      continue;
    }
  }

  // ---- R1: early exits followed by a barrier the jump skips -------------
  // `return` skips everything to the end of the callable; `break` and
  // `continue` only skip to the end of their loop (or switch), so a
  // barrier after the loop is crossed by every rank and is not a finding.
  for (const EarlyExit& e : exits) {
    std::size_t end = t.size();
    if (e.bound_scope_id != 0) {
      const auto scope_it = scope_end.find(e.bound_scope_id);
      if (scope_it != scope_end.end()) end = scope_it->second;
    } else {
      const auto end_it = callable_end.find(e.callable_id);
      if (end_it != callable_end.end()) end = end_it->second;
    }
    for (const BarrierEvent& b : barriers) {
      if (b.callable_id == e.callable_id && b.tok > e.tok && b.tok < end) {
        add(Rule::kBarrierDivergence, e.line,
            "`" + e.keyword +
                "` guarded by rank-dependent control flow (condition at "
                "line " +
                std::to_string(e.guard_line) +
                ") skips a later barrier/collective in the same function "
                "body");
        break;
      }
    }
  }

  // ---- R2: mutations without an annotation in the same region -----------
  std::set<std::pair<std::string, int>> reported;
  for (const Mutation& m : mutations) {
    if (annotations.count({m.spread, m.region}) != 0) continue;
    if (!reported.insert({m.spread, m.region}).second) continue;
    add(Rule::kNoteLocalWrite, m.line,
        "local write to spread `" + m.spread + "` has no `" + m.spread +
            ".note_local_write(...)` in the same barrier-delimited region; "
            "the race ledger cannot see direct local() stores");
  }
}

// ---------------------------------------------------------------------------
// R5 + suppression application
// ---------------------------------------------------------------------------

struct Allow {
  Rule rule;
  int comment_line;
  bool trailing;
};

/// Parse `spmdlint: allow(<rule>) -- <reason>` out of a comment.  Returns
/// 0 on success (allow filled in), 1 if the comment does not mention
/// spmdlint, 2 on a malformed/unknown directive (error filled in).
int parse_allow(const Comment& c, Allow* allow, std::string* error) {
  const std::size_t at = c.text.find("spmdlint:");
  if (at == std::string::npos) return 1;
  std::size_t p = at + 9;
  auto skip_ws = [&] {
    while (p < c.text.size() && (c.text[p] == ' ' || c.text[p] == '\t')) ++p;
  };
  skip_ws();
  if (c.text.compare(p, 6, "allow(") != 0) {
    *error =
        "malformed spmdlint directive (expected `spmdlint: allow(<rule>) -- "
        "<reason>`)";
    return 2;
  }
  p += 6;
  const std::size_t close = c.text.find(')', p);
  if (close == std::string::npos) {
    *error = "malformed spmdlint directive (unclosed allow(...))";
    return 2;
  }
  const std::string name = c.text.substr(p, close - p);
  Rule rule;
  if (!rule_from_name(name, &rule)) {
    *error = "unknown rule `" + name + "` in spmdlint allow() directive";
    return 2;
  }
  p = close + 1;
  skip_ws();
  if (c.text.compare(p, 2, "--") != 0) {
    *error = "spmdlint allow(" + name +
             ") has no justification (append ` -- <reason>`)";
    return 2;
  }
  p += 2;
  skip_ws();
  if (p >= c.text.size()) {
    *error =
        "spmdlint allow(" + name + ") has an empty justification after `--`";
    return 2;
  }
  allow->rule = rule;
  allow->comment_line = c.line;
  allow->trailing = c.trailing;
  return 0;
}

/// First token line strictly after `line` (target of a standalone allow
/// comment); 0 when none.
int next_code_line(const Tokens& t, int line) {
  int best = 0;
  for (const Token& tok : t) {
    if (tok.line > line && (best == 0 || tok.line < best)) best = tok.line;
  }
  return best;
}

}  // namespace

void analyze(const LexedFile& file, std::vector<Finding>* out) {
  std::vector<Finding> raw;
  scan_file(file, &raw);

  // Suppressions: a trailing comment targets its own line; a standalone
  // comment targets the next line carrying code.
  std::vector<Allow> allows;
  for (const Comment& c : file.comments) {
    Allow a;
    std::string error;
    const int rc = parse_allow(c, &a, &error);
    if (rc == 1) continue;
    if (rc == 2) {
      raw.push_back(Finding{Rule::kStaleSuppression, file.path, c.line,
                            std::move(error), Status::kActive});
      continue;
    }
    allows.push_back(a);
  }
  for (const Allow& a : allows) {
    const int target =
        a.trailing ? a.comment_line : next_code_line(file.tokens, a.comment_line);
    int hits = 0;
    for (Finding& f : raw) {
      if (f.rule == a.rule && f.line == target && f.status == Status::kActive) {
        f.status = Status::kSuppressed;
        ++hits;
      }
    }
    if (hits == 0) {
      raw.push_back(Finding{
          Rule::kStaleSuppression, file.path, a.comment_line,
          std::string("stale suppression: `allow(") + rule_name(a.rule) +
              ")` matches no " + rule_name(a.rule) + " finding on line " +
              std::to_string(target),
          Status::kActive});
    }
  }

  std::sort(raw.begin(), raw.end(), [](const Finding& x, const Finding& y) {
    if (x.line != y.line) return x.line < y.line;
    return static_cast<int>(x.rule) < static_cast<int>(y.rule);
  });
  out->insert(out->end(), std::make_move_iterator(raw.begin()),
              std::make_move_iterator(raw.end()));
}

}  // namespace spmdlint
